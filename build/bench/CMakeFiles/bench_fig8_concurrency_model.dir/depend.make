# Empty dependencies file for bench_fig8_concurrency_model.
# This may be replaced when dependencies are built.
