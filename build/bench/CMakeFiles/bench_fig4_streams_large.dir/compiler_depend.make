# Empty compiler generated dependencies file for bench_fig4_streams_large.
# This may be replaced when dependencies are built.
