# Empty compiler generated dependencies file for bench_fig7_concurrency_timeline.
# This may be replaced when dependencies are built.
