# Empty compiler generated dependencies file for bench_table8_year_analysis.
# This may be replaced when dependencies are built.
