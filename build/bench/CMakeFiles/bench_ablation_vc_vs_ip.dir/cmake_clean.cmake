file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vc_vs_ip.dir/bench_ablation_vc_vs_ip.cpp.o"
  "CMakeFiles/bench_ablation_vc_vs_ip.dir/bench_ablation_vc_vs_ip.cpp.o.d"
  "bench_ablation_vc_vs_ip"
  "bench_ablation_vc_vs_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vc_vs_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
