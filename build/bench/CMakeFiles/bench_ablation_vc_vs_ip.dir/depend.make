# Empty dependencies file for bench_ablation_vc_vs_ip.
# This may be replaced when dependencies are built.
