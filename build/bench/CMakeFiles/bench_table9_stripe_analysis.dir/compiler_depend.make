# Empty compiler generated dependencies file for bench_table9_stripe_analysis.
# This may be replaced when dependencies are built.
