file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_time_of_day.dir/bench_fig6_time_of_day.cpp.o"
  "CMakeFiles/bench_fig6_time_of_day.dir/bench_fig6_time_of_day.cpp.o.d"
  "bench_fig6_time_of_day"
  "bench_fig6_time_of_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_time_of_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
