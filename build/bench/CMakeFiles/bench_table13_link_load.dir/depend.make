# Empty dependencies file for bench_table13_link_load.
# This may be replaced when dependencies are built.
