file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_link_load.dir/bench_table13_link_load.cpp.o"
  "CMakeFiles/bench_table13_link_load.dir/bench_table13_link_load.cpp.o.d"
  "bench_table13_link_load"
  "bench_table13_link_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_link_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
