file(REMOVE_RECURSE
  "CMakeFiles/gridvc_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/gridvc_bench_common.dir/bench_common.cpp.o.d"
  "libgridvc_bench_common.a"
  "libgridvc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
