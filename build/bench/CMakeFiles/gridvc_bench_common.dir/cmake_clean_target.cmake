file(REMOVE_RECURSE
  "libgridvc_bench_common.a"
)
