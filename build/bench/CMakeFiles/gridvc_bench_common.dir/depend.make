# Empty dependencies file for gridvc_bench_common.
# This may be replaced when dependencies are built.
