file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rate_advisor.dir/bench_ablation_rate_advisor.cpp.o"
  "CMakeFiles/bench_ablation_rate_advisor.dir/bench_ablation_rate_advisor.cpp.o.d"
  "bench_ablation_rate_advisor"
  "bench_ablation_rate_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rate_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
