file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_cross_traffic.dir/bench_table12_cross_traffic.cpp.o"
  "CMakeFiles/bench_table12_cross_traffic.dir/bench_table12_cross_traffic.cpp.o.d"
  "bench_table12_cross_traffic"
  "bench_table12_cross_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_cross_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
