# Empty dependencies file for bench_table12_cross_traffic.
# This may be replaced when dependencies are built.
