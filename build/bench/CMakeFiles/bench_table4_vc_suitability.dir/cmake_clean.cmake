file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_vc_suitability.dir/bench_table4_vc_suitability.cpp.o"
  "CMakeFiles/bench_table4_vc_suitability.dir/bench_table4_vc_suitability.cpp.o.d"
  "bench_table4_vc_suitability"
  "bench_table4_vc_suitability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_vc_suitability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
