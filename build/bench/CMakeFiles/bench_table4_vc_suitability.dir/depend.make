# Empty dependencies file for bench_table4_vc_suitability.
# This may be replaced when dependencies are built.
