# Empty compiler generated dependencies file for bench_table3_gap_parameter.
# This may be replaced when dependencies are built.
