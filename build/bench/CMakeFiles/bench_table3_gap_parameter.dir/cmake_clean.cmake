file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gap_parameter.dir/bench_table3_gap_parameter.cpp.o"
  "CMakeFiles/bench_table3_gap_parameter.dir/bench_table3_gap_parameter.cpp.o.d"
  "bench_table3_gap_parameter"
  "bench_table3_gap_parameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gap_parameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
