# Empty dependencies file for bench_table11_snmp_correlation.
# This may be replaced when dependencies are built.
