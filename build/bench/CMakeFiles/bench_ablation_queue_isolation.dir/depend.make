# Empty dependencies file for bench_ablation_queue_isolation.
# This may be replaced when dependencies are built.
