file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_queue_isolation.dir/bench_ablation_queue_isolation.cpp.o"
  "CMakeFiles/bench_ablation_queue_isolation.dir/bench_ablation_queue_isolation.cpp.o.d"
  "bench_ablation_queue_isolation"
  "bench_ablation_queue_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_queue_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
