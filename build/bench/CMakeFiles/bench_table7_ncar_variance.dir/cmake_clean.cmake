file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_ncar_variance.dir/bench_table7_ncar_variance.cpp.o"
  "CMakeFiles/bench_table7_ncar_variance.dir/bench_table7_ncar_variance.cpp.o.d"
  "bench_table7_ncar_variance"
  "bench_table7_ncar_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_ncar_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
