# Empty dependencies file for bench_table7_ncar_variance.
# This may be replaced when dependencies are built.
