file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_nersc_ornl.dir/bench_table5_nersc_ornl.cpp.o"
  "CMakeFiles/bench_table5_nersc_ornl.dir/bench_table5_nersc_ornl.cpp.o.d"
  "bench_table5_nersc_ornl"
  "bench_table5_nersc_ornl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_nersc_ornl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
