# Empty dependencies file for bench_table5_nersc_ornl.
# This may be replaced when dependencies are built.
