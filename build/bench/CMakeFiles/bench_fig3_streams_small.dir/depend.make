# Empty dependencies file for bench_fig3_streams_small.
# This may be replaced when dependencies are built.
