# Empty compiler generated dependencies file for bench_ablation_setup_delay.
# This may be replaced when dependencies are built.
