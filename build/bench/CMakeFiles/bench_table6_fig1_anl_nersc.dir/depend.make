# Empty dependencies file for bench_table6_fig1_anl_nersc.
# This may be replaced when dependencies are built.
