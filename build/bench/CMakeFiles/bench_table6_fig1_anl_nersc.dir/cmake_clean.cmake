file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fig1_anl_nersc.dir/bench_table6_fig1_anl_nersc.cpp.o"
  "CMakeFiles/bench_table6_fig1_anl_nersc.dir/bench_table6_fig1_anl_nersc.cpp.o.d"
  "bench_table6_fig1_anl_nersc"
  "bench_table6_fig1_anl_nersc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fig1_anl_nersc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
