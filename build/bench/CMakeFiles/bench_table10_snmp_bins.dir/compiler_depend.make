# Empty compiler generated dependencies file for bench_table10_snmp_bins.
# This may be replaced when dependencies are built.
