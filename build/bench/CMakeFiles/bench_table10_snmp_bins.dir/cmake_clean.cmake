file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_snmp_bins.dir/bench_table10_snmp_bins.cpp.o"
  "CMakeFiles/bench_table10_snmp_bins.dir/bench_table10_snmp_bins.cpp.o.d"
  "bench_table10_snmp_bins"
  "bench_table10_snmp_bins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_snmp_bins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
