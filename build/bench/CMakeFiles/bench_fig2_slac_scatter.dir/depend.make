# Empty dependencies file for bench_fig2_slac_scatter.
# This may be replaced when dependencies are built.
