# Empty dependencies file for bench_table1_ncar_sessions.
# This may be replaced when dependencies are built.
