file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ncar_sessions.dir/bench_table1_ncar_sessions.cpp.o"
  "CMakeFiles/bench_table1_ncar_sessions.dir/bench_table1_ncar_sessions.cpp.o.d"
  "bench_table1_ncar_sessions"
  "bench_table1_ncar_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ncar_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
