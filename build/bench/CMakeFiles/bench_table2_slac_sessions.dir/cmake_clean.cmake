file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_slac_sessions.dir/bench_table2_slac_sessions.cpp.o"
  "CMakeFiles/bench_table2_slac_sessions.dir/bench_table2_slac_sessions.cpp.o.d"
  "bench_table2_slac_sessions"
  "bench_table2_slac_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_slac_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
