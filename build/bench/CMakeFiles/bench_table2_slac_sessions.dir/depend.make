# Empty dependencies file for bench_table2_slac_sessions.
# This may be replaced when dependencies are built.
