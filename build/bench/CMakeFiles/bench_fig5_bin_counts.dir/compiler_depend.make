# Empty compiler generated dependencies file for bench_fig5_bin_counts.
# This may be replaced when dependencies are built.
