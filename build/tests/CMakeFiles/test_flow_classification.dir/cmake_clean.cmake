file(REMOVE_RECURSE
  "CMakeFiles/test_flow_classification.dir/test_flow_classification.cpp.o"
  "CMakeFiles/test_flow_classification.dir/test_flow_classification.cpp.o.d"
  "test_flow_classification"
  "test_flow_classification.pdb"
  "test_flow_classification[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
