# Empty dependencies file for test_flow_classification.
# This may be replaced when dependencies are built.
