# Empty dependencies file for test_link_utilization.
# This may be replaced when dependencies are built.
