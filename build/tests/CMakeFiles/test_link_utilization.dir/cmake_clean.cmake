file(REMOVE_RECURSE
  "CMakeFiles/test_link_utilization.dir/test_link_utilization.cpp.o"
  "CMakeFiles/test_link_utilization.dir/test_link_utilization.cpp.o.d"
  "test_link_utilization"
  "test_link_utilization.pdb"
  "test_link_utilization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
