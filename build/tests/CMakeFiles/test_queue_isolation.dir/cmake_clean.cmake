file(REMOVE_RECURSE
  "CMakeFiles/test_queue_isolation.dir/test_queue_isolation.cpp.o"
  "CMakeFiles/test_queue_isolation.dir/test_queue_isolation.cpp.o.d"
  "test_queue_isolation"
  "test_queue_isolation.pdb"
  "test_queue_isolation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
