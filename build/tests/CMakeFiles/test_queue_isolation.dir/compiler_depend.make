# Empty compiler generated dependencies file for test_queue_isolation.
# This may be replaced when dependencies are built.
