file(REMOVE_RECURSE
  "CMakeFiles/test_idc_extensions.dir/test_idc_extensions.cpp.o"
  "CMakeFiles/test_idc_extensions.dir/test_idc_extensions.cpp.o.d"
  "test_idc_extensions"
  "test_idc_extensions.pdb"
  "test_idc_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idc_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
