# Empty compiler generated dependencies file for test_idc_extensions.
# This may be replaced when dependencies are built.
