file(REMOVE_RECURSE
  "CMakeFiles/test_transfer_engine.dir/test_transfer_engine.cpp.o"
  "CMakeFiles/test_transfer_engine.dir/test_transfer_engine.cpp.o.d"
  "test_transfer_engine"
  "test_transfer_engine.pdb"
  "test_transfer_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfer_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
