file(REMOVE_RECURSE
  "CMakeFiles/test_interdomain.dir/test_interdomain.cpp.o"
  "CMakeFiles/test_interdomain.dir/test_interdomain.cpp.o.d"
  "test_interdomain"
  "test_interdomain.pdb"
  "test_interdomain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interdomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
