# Empty compiler generated dependencies file for test_interdomain.
# This may be replaced when dependencies are built.
