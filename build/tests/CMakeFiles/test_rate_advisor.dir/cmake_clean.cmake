file(REMOVE_RECURSE
  "CMakeFiles/test_rate_advisor.dir/test_rate_advisor.cpp.o"
  "CMakeFiles/test_rate_advisor.dir/test_rate_advisor.cpp.o.d"
  "test_rate_advisor"
  "test_rate_advisor.pdb"
  "test_rate_advisor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
