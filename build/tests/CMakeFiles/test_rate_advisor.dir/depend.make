# Empty dependencies file for test_rate_advisor.
# This may be replaced when dependencies are built.
