# Empty compiler generated dependencies file for test_retries.
# This may be replaced when dependencies are built.
