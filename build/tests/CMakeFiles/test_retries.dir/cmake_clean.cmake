file(REMOVE_RECURSE
  "CMakeFiles/test_retries.dir/test_retries.cpp.o"
  "CMakeFiles/test_retries.dir/test_retries.cpp.o.d"
  "test_retries"
  "test_retries.pdb"
  "test_retries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
