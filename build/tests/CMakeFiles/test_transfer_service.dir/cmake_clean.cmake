file(REMOVE_RECURSE
  "CMakeFiles/test_transfer_service.dir/test_transfer_service.cpp.o"
  "CMakeFiles/test_transfer_service.dir/test_transfer_service.cpp.o.d"
  "test_transfer_service"
  "test_transfer_service.pdb"
  "test_transfer_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfer_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
