# Empty compiler generated dependencies file for test_transfer_service.
# This may be replaced when dependencies are built.
