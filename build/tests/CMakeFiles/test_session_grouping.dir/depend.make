# Empty dependencies file for test_session_grouping.
# This may be replaced when dependencies are built.
