file(REMOVE_RECURSE
  "CMakeFiles/test_session_grouping.dir/test_session_grouping.cpp.o"
  "CMakeFiles/test_session_grouping.dir/test_session_grouping.cpp.o.d"
  "test_session_grouping"
  "test_session_grouping.pdb"
  "test_session_grouping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
