file(REMOVE_RECURSE
  "CMakeFiles/test_bandwidth_calendar.dir/test_bandwidth_calendar.cpp.o"
  "CMakeFiles/test_bandwidth_calendar.dir/test_bandwidth_calendar.cpp.o.d"
  "test_bandwidth_calendar"
  "test_bandwidth_calendar.pdb"
  "test_bandwidth_calendar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bandwidth_calendar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
