# Empty dependencies file for test_bandwidth_calendar.
# This may be replaced when dependencies are built.
