# Empty compiler generated dependencies file for test_snmp_cross.
# This may be replaced when dependencies are built.
