file(REMOVE_RECURSE
  "CMakeFiles/test_snmp_cross.dir/test_snmp_cross.cpp.o"
  "CMakeFiles/test_snmp_cross.dir/test_snmp_cross.cpp.o.d"
  "test_snmp_cross"
  "test_snmp_cross.pdb"
  "test_snmp_cross[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snmp_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
