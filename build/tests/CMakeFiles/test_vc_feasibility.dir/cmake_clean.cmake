file(REMOVE_RECURSE
  "CMakeFiles/test_vc_feasibility.dir/test_vc_feasibility.cpp.o"
  "CMakeFiles/test_vc_feasibility.dir/test_vc_feasibility.cpp.o.d"
  "test_vc_feasibility"
  "test_vc_feasibility.pdb"
  "test_vc_feasibility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vc_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
