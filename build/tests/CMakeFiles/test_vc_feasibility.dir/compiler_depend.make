# Empty compiler generated dependencies file for test_vc_feasibility.
# This may be replaced when dependencies are built.
