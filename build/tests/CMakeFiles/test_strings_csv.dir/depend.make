# Empty dependencies file for test_strings_csv.
# This may be replaced when dependencies are built.
