
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_idc.cpp" "tests/CMakeFiles/test_idc.dir/test_idc.cpp.o" "gcc" "tests/CMakeFiles/test_idc.dir/test_idc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gridvc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/gridvc_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/gridftp/CMakeFiles/gridvc_gridftp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gridvc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gridvc_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
