file(REMOVE_RECURSE
  "CMakeFiles/test_idc.dir/test_idc.cpp.o"
  "CMakeFiles/test_idc.dir/test_idc.cpp.o.d"
  "test_idc"
  "test_idc.pdb"
  "test_idc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
