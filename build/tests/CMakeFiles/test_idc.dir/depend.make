# Empty dependencies file for test_idc.
# This may be replaced when dependencies are built.
