# Empty dependencies file for test_alpha_detector.
# This may be replaced when dependencies are built.
