file(REMOVE_RECURSE
  "CMakeFiles/test_alpha_detector.dir/test_alpha_detector.cpp.o"
  "CMakeFiles/test_alpha_detector.dir/test_alpha_detector.cpp.o.d"
  "test_alpha_detector"
  "test_alpha_detector.pdb"
  "test_alpha_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alpha_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
