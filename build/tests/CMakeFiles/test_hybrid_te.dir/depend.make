# Empty dependencies file for test_hybrid_te.
# This may be replaced when dependencies are built.
