file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_te.dir/test_hybrid_te.cpp.o"
  "CMakeFiles/test_hybrid_te.dir/test_hybrid_te.cpp.o.d"
  "test_hybrid_te"
  "test_hybrid_te.pdb"
  "test_hybrid_te[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
