file(REMOVE_RECURSE
  "CMakeFiles/hybrid_network.dir/hybrid_network.cpp.o"
  "CMakeFiles/hybrid_network.dir/hybrid_network.cpp.o.d"
  "hybrid_network"
  "hybrid_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
