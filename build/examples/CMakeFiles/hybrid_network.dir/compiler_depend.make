# Empty compiler generated dependencies file for hybrid_network.
# This may be replaced when dependencies are built.
