file(REMOVE_RECURSE
  "CMakeFiles/vc_feasibility_study.dir/vc_feasibility_study.cpp.o"
  "CMakeFiles/vc_feasibility_study.dir/vc_feasibility_study.cpp.o.d"
  "vc_feasibility_study"
  "vc_feasibility_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_feasibility_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
