# Empty compiler generated dependencies file for vc_feasibility_study.
# This may be replaced when dependencies are built.
