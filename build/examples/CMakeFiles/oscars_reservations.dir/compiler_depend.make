# Empty compiler generated dependencies file for oscars_reservations.
# This may be replaced when dependencies are built.
