file(REMOVE_RECURSE
  "CMakeFiles/oscars_reservations.dir/oscars_reservations.cpp.o"
  "CMakeFiles/oscars_reservations.dir/oscars_reservations.cpp.o.d"
  "oscars_reservations"
  "oscars_reservations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oscars_reservations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
