file(REMOVE_RECURSE
  "CMakeFiles/managed_transfers.dir/managed_transfers.cpp.o"
  "CMakeFiles/managed_transfers.dir/managed_transfers.cpp.o.d"
  "managed_transfers"
  "managed_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/managed_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
