# Empty dependencies file for managed_transfers.
# This may be replaced when dependencies are built.
