# Empty dependencies file for gridvc-analyze.
# This may be replaced when dependencies are built.
