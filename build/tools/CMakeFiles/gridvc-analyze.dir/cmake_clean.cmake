file(REMOVE_RECURSE
  "CMakeFiles/gridvc-analyze.dir/gridvc-analyze.cpp.o"
  "CMakeFiles/gridvc-analyze.dir/gridvc-analyze.cpp.o.d"
  "gridvc-analyze"
  "gridvc-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
