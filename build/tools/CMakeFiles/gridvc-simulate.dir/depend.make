# Empty dependencies file for gridvc-simulate.
# This may be replaced when dependencies are built.
