file(REMOVE_RECURSE
  "CMakeFiles/gridvc-simulate.dir/gridvc-simulate.cpp.o"
  "CMakeFiles/gridvc-simulate.dir/gridvc-simulate.cpp.o.d"
  "gridvc-simulate"
  "gridvc-simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc-simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
