# Empty compiler generated dependencies file for gridvc-synth.
# This may be replaced when dependencies are built.
