file(REMOVE_RECURSE
  "CMakeFiles/gridvc-synth.dir/gridvc-synth.cpp.o"
  "CMakeFiles/gridvc-synth.dir/gridvc-synth.cpp.o.d"
  "gridvc-synth"
  "gridvc-synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc-synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
