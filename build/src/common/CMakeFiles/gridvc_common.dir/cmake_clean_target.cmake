file(REMOVE_RECURSE
  "libgridvc_common.a"
)
