file(REMOVE_RECURSE
  "CMakeFiles/gridvc_common.dir/csv.cpp.o"
  "CMakeFiles/gridvc_common.dir/csv.cpp.o.d"
  "CMakeFiles/gridvc_common.dir/distributions.cpp.o"
  "CMakeFiles/gridvc_common.dir/distributions.cpp.o.d"
  "CMakeFiles/gridvc_common.dir/rng.cpp.o"
  "CMakeFiles/gridvc_common.dir/rng.cpp.o.d"
  "CMakeFiles/gridvc_common.dir/strings.cpp.o"
  "CMakeFiles/gridvc_common.dir/strings.cpp.o.d"
  "libgridvc_common.a"
  "libgridvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
