# Empty compiler generated dependencies file for gridvc_common.
# This may be replaced when dependencies are built.
