# Empty dependencies file for gridvc_gridftp.
# This may be replaced when dependencies are built.
