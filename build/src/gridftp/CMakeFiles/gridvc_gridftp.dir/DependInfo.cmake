
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gridftp/server.cpp" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/server.cpp.o" "gcc" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/server.cpp.o.d"
  "/root/repo/src/gridftp/session.cpp" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/session.cpp.o" "gcc" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/session.cpp.o.d"
  "/root/repo/src/gridftp/transfer_engine.cpp" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/transfer_engine.cpp.o" "gcc" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/transfer_engine.cpp.o.d"
  "/root/repo/src/gridftp/transfer_log.cpp" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/transfer_log.cpp.o" "gcc" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/transfer_log.cpp.o.d"
  "/root/repo/src/gridftp/transfer_service.cpp" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/transfer_service.cpp.o" "gcc" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/transfer_service.cpp.o.d"
  "/root/repo/src/gridftp/usage_stats.cpp" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/usage_stats.cpp.o" "gcc" "src/gridftp/CMakeFiles/gridvc_gridftp.dir/usage_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/gridvc_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
