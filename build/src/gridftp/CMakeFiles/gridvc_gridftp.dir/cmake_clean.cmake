file(REMOVE_RECURSE
  "CMakeFiles/gridvc_gridftp.dir/server.cpp.o"
  "CMakeFiles/gridvc_gridftp.dir/server.cpp.o.d"
  "CMakeFiles/gridvc_gridftp.dir/session.cpp.o"
  "CMakeFiles/gridvc_gridftp.dir/session.cpp.o.d"
  "CMakeFiles/gridvc_gridftp.dir/transfer_engine.cpp.o"
  "CMakeFiles/gridvc_gridftp.dir/transfer_engine.cpp.o.d"
  "CMakeFiles/gridvc_gridftp.dir/transfer_log.cpp.o"
  "CMakeFiles/gridvc_gridftp.dir/transfer_log.cpp.o.d"
  "CMakeFiles/gridvc_gridftp.dir/transfer_service.cpp.o"
  "CMakeFiles/gridvc_gridftp.dir/transfer_service.cpp.o.d"
  "CMakeFiles/gridvc_gridftp.dir/usage_stats.cpp.o"
  "CMakeFiles/gridvc_gridftp.dir/usage_stats.cpp.o.d"
  "libgridvc_gridftp.a"
  "libgridvc_gridftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_gridftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
