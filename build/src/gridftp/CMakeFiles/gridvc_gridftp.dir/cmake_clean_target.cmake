file(REMOVE_RECURSE
  "libgridvc_gridftp.a"
)
