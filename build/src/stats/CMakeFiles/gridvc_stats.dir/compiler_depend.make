# Empty compiler generated dependencies file for gridvc_stats.
# This may be replaced when dependencies are built.
