file(REMOVE_RECURSE
  "libgridvc_stats.a"
)
