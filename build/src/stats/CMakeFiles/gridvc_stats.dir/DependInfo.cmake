
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/binning.cpp" "src/stats/CMakeFiles/gridvc_stats.dir/binning.cpp.o" "gcc" "src/stats/CMakeFiles/gridvc_stats.dir/binning.cpp.o.d"
  "/root/repo/src/stats/boxplot.cpp" "src/stats/CMakeFiles/gridvc_stats.dir/boxplot.cpp.o" "gcc" "src/stats/CMakeFiles/gridvc_stats.dir/boxplot.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/gridvc_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/gridvc_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/gridvc_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/gridvc_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/stats/CMakeFiles/gridvc_stats.dir/quantile.cpp.o" "gcc" "src/stats/CMakeFiles/gridvc_stats.dir/quantile.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/gridvc_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/gridvc_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/stats/CMakeFiles/gridvc_stats.dir/table.cpp.o" "gcc" "src/stats/CMakeFiles/gridvc_stats.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridvc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
