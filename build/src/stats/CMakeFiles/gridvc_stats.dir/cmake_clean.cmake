file(REMOVE_RECURSE
  "CMakeFiles/gridvc_stats.dir/binning.cpp.o"
  "CMakeFiles/gridvc_stats.dir/binning.cpp.o.d"
  "CMakeFiles/gridvc_stats.dir/boxplot.cpp.o"
  "CMakeFiles/gridvc_stats.dir/boxplot.cpp.o.d"
  "CMakeFiles/gridvc_stats.dir/correlation.cpp.o"
  "CMakeFiles/gridvc_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/gridvc_stats.dir/histogram.cpp.o"
  "CMakeFiles/gridvc_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/gridvc_stats.dir/quantile.cpp.o"
  "CMakeFiles/gridvc_stats.dir/quantile.cpp.o.d"
  "CMakeFiles/gridvc_stats.dir/summary.cpp.o"
  "CMakeFiles/gridvc_stats.dir/summary.cpp.o.d"
  "CMakeFiles/gridvc_stats.dir/table.cpp.o"
  "CMakeFiles/gridvc_stats.dir/table.cpp.o.d"
  "libgridvc_stats.a"
  "libgridvc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
