file(REMOVE_RECURSE
  "CMakeFiles/gridvc_vc.dir/alpha_detector.cpp.o"
  "CMakeFiles/gridvc_vc.dir/alpha_detector.cpp.o.d"
  "CMakeFiles/gridvc_vc.dir/bandwidth_calendar.cpp.o"
  "CMakeFiles/gridvc_vc.dir/bandwidth_calendar.cpp.o.d"
  "CMakeFiles/gridvc_vc.dir/hybrid_te.cpp.o"
  "CMakeFiles/gridvc_vc.dir/hybrid_te.cpp.o.d"
  "CMakeFiles/gridvc_vc.dir/idc.cpp.o"
  "CMakeFiles/gridvc_vc.dir/idc.cpp.o.d"
  "CMakeFiles/gridvc_vc.dir/interdomain.cpp.o"
  "CMakeFiles/gridvc_vc.dir/interdomain.cpp.o.d"
  "CMakeFiles/gridvc_vc.dir/path_computation.cpp.o"
  "CMakeFiles/gridvc_vc.dir/path_computation.cpp.o.d"
  "CMakeFiles/gridvc_vc.dir/queue_isolation.cpp.o"
  "CMakeFiles/gridvc_vc.dir/queue_isolation.cpp.o.d"
  "libgridvc_vc.a"
  "libgridvc_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
