file(REMOVE_RECURSE
  "libgridvc_vc.a"
)
