
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vc/alpha_detector.cpp" "src/vc/CMakeFiles/gridvc_vc.dir/alpha_detector.cpp.o" "gcc" "src/vc/CMakeFiles/gridvc_vc.dir/alpha_detector.cpp.o.d"
  "/root/repo/src/vc/bandwidth_calendar.cpp" "src/vc/CMakeFiles/gridvc_vc.dir/bandwidth_calendar.cpp.o" "gcc" "src/vc/CMakeFiles/gridvc_vc.dir/bandwidth_calendar.cpp.o.d"
  "/root/repo/src/vc/hybrid_te.cpp" "src/vc/CMakeFiles/gridvc_vc.dir/hybrid_te.cpp.o" "gcc" "src/vc/CMakeFiles/gridvc_vc.dir/hybrid_te.cpp.o.d"
  "/root/repo/src/vc/idc.cpp" "src/vc/CMakeFiles/gridvc_vc.dir/idc.cpp.o" "gcc" "src/vc/CMakeFiles/gridvc_vc.dir/idc.cpp.o.d"
  "/root/repo/src/vc/interdomain.cpp" "src/vc/CMakeFiles/gridvc_vc.dir/interdomain.cpp.o" "gcc" "src/vc/CMakeFiles/gridvc_vc.dir/interdomain.cpp.o.d"
  "/root/repo/src/vc/path_computation.cpp" "src/vc/CMakeFiles/gridvc_vc.dir/path_computation.cpp.o" "gcc" "src/vc/CMakeFiles/gridvc_vc.dir/path_computation.cpp.o.d"
  "/root/repo/src/vc/queue_isolation.cpp" "src/vc/CMakeFiles/gridvc_vc.dir/queue_isolation.cpp.o" "gcc" "src/vc/CMakeFiles/gridvc_vc.dir/queue_isolation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridvc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
