# Empty dependencies file for gridvc_vc.
# This may be replaced when dependencies are built.
