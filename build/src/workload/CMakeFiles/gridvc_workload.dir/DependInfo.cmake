
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/profiles.cpp" "src/workload/CMakeFiles/gridvc_workload.dir/profiles.cpp.o" "gcc" "src/workload/CMakeFiles/gridvc_workload.dir/profiles.cpp.o.d"
  "/root/repo/src/workload/scenarios.cpp" "src/workload/CMakeFiles/gridvc_workload.dir/scenarios.cpp.o" "gcc" "src/workload/CMakeFiles/gridvc_workload.dir/scenarios.cpp.o.d"
  "/root/repo/src/workload/synth.cpp" "src/workload/CMakeFiles/gridvc_workload.dir/synth.cpp.o" "gcc" "src/workload/CMakeFiles/gridvc_workload.dir/synth.cpp.o.d"
  "/root/repo/src/workload/testbed.cpp" "src/workload/CMakeFiles/gridvc_workload.dir/testbed.cpp.o" "gcc" "src/workload/CMakeFiles/gridvc_workload.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridvc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/gridvc_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/gridftp/CMakeFiles/gridvc_gridftp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
