# Empty compiler generated dependencies file for gridvc_workload.
# This may be replaced when dependencies are built.
