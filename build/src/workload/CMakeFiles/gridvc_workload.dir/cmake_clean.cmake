file(REMOVE_RECURSE
  "CMakeFiles/gridvc_workload.dir/profiles.cpp.o"
  "CMakeFiles/gridvc_workload.dir/profiles.cpp.o.d"
  "CMakeFiles/gridvc_workload.dir/scenarios.cpp.o"
  "CMakeFiles/gridvc_workload.dir/scenarios.cpp.o.d"
  "CMakeFiles/gridvc_workload.dir/synth.cpp.o"
  "CMakeFiles/gridvc_workload.dir/synth.cpp.o.d"
  "CMakeFiles/gridvc_workload.dir/testbed.cpp.o"
  "CMakeFiles/gridvc_workload.dir/testbed.cpp.o.d"
  "libgridvc_workload.a"
  "libgridvc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
