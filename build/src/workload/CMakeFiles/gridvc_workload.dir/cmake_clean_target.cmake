file(REMOVE_RECURSE
  "libgridvc_workload.a"
)
