file(REMOVE_RECURSE
  "libgridvc_analysis.a"
)
