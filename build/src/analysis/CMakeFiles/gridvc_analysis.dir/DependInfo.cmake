
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/burstiness.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/burstiness.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/burstiness.cpp.o.d"
  "/root/repo/src/analysis/concurrency.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/concurrency.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/concurrency.cpp.o.d"
  "/root/repo/src/analysis/flow_classification.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/flow_classification.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/flow_classification.cpp.o.d"
  "/root/repo/src/analysis/link_utilization.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/link_utilization.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/link_utilization.cpp.o.d"
  "/root/repo/src/analysis/rate_advisor.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/rate_advisor.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/rate_advisor.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/session_grouping.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/session_grouping.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/session_grouping.cpp.o.d"
  "/root/repo/src/analysis/stream_analysis.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/stream_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/stream_analysis.cpp.o.d"
  "/root/repo/src/analysis/throughput_analysis.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/throughput_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/throughput_analysis.cpp.o.d"
  "/root/repo/src/analysis/timeofday_analysis.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/timeofday_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/timeofday_analysis.cpp.o.d"
  "/root/repo/src/analysis/vc_feasibility.cpp" "src/analysis/CMakeFiles/gridvc_analysis.dir/vc_feasibility.cpp.o" "gcc" "src/analysis/CMakeFiles/gridvc_analysis.dir/vc_feasibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gridvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gridvc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridvc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gridftp/CMakeFiles/gridvc_gridftp.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/gridvc_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridvc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
