# Empty dependencies file for gridvc_analysis.
# This may be replaced when dependencies are built.
