file(REMOVE_RECURSE
  "CMakeFiles/gridvc_analysis.dir/burstiness.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/burstiness.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/concurrency.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/concurrency.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/flow_classification.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/flow_classification.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/link_utilization.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/link_utilization.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/rate_advisor.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/rate_advisor.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/report.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/report.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/session_grouping.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/session_grouping.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/stream_analysis.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/stream_analysis.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/throughput_analysis.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/throughput_analysis.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/timeofday_analysis.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/timeofday_analysis.cpp.o.d"
  "CMakeFiles/gridvc_analysis.dir/vc_feasibility.cpp.o"
  "CMakeFiles/gridvc_analysis.dir/vc_feasibility.cpp.o.d"
  "libgridvc_analysis.a"
  "libgridvc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
