# Empty dependencies file for gridvc_net.
# This may be replaced when dependencies are built.
