file(REMOVE_RECURSE
  "libgridvc_net.a"
)
