# Empty compiler generated dependencies file for gridvc_net.
# This may be replaced when dependencies are built.
