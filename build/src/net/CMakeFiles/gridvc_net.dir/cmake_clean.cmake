file(REMOVE_RECURSE
  "CMakeFiles/gridvc_net.dir/cross_traffic.cpp.o"
  "CMakeFiles/gridvc_net.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/gridvc_net.dir/fair_share.cpp.o"
  "CMakeFiles/gridvc_net.dir/fair_share.cpp.o.d"
  "CMakeFiles/gridvc_net.dir/network.cpp.o"
  "CMakeFiles/gridvc_net.dir/network.cpp.o.d"
  "CMakeFiles/gridvc_net.dir/routing.cpp.o"
  "CMakeFiles/gridvc_net.dir/routing.cpp.o.d"
  "CMakeFiles/gridvc_net.dir/snmp.cpp.o"
  "CMakeFiles/gridvc_net.dir/snmp.cpp.o.d"
  "CMakeFiles/gridvc_net.dir/tcp_model.cpp.o"
  "CMakeFiles/gridvc_net.dir/tcp_model.cpp.o.d"
  "CMakeFiles/gridvc_net.dir/topology.cpp.o"
  "CMakeFiles/gridvc_net.dir/topology.cpp.o.d"
  "libgridvc_net.a"
  "libgridvc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
