# Empty dependencies file for gridvc_sim.
# This may be replaced when dependencies are built.
