file(REMOVE_RECURSE
  "libgridvc_sim.a"
)
