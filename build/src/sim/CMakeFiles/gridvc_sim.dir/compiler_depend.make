# Empty compiler generated dependencies file for gridvc_sim.
# This may be replaced when dependencies are built.
