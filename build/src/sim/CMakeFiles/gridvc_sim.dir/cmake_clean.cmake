file(REMOVE_RECURSE
  "CMakeFiles/gridvc_sim.dir/simulator.cpp.o"
  "CMakeFiles/gridvc_sim.dir/simulator.cpp.o.d"
  "libgridvc_sim.a"
  "libgridvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
