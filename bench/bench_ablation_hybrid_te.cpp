// Ablation E: HNTES-style alpha-flow redirection (§IV intra-domain story).
//
// "With automatic α flow identification, packets from α flows can be
// redirected to intra-domain VCs … that have been preconfigured between
// ingress-egress router pairs." We run a mixed workload — alpha transfers
// plus mouse cross traffic — with and without the hybrid traffic
// engineer, and measure (a) how much alpha traffic the circuits absorb
// and (b) what redirection does to alpha-flow throughput variance.
#include <cstdio>

#include <memory>
#include <set>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "net/cross_traffic.hpp"
#include "net/network.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "vc/hybrid_te.hpp"
#include "workload/testbed.hpp"

using namespace gridvc;

namespace {

struct Outcome {
  stats::Summary alpha_gbps;
  std::size_t redirected = 0;
  std::size_t denied = 0;
  double redirected_gb = 0.0;
};

Outcome run(bool enable_te, std::uint64_t seed) {
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  net::Network network(sim, tb.topo);
  const net::Path path = tb.path(tb.slac, tb.bnl);

  // Mice: Poisson web-scale flows, individually far below the alpha bar,
  // collectively a moving background.
  net::CrossTrafficConfig mice;
  mice.mean_interarrival = 0.5;
  mice.flow_cap = mbps(200);
  net::CrossTrafficSource cross(network, path, mice, Rng(seed + 1));

  // A recurring fluctuating competitor that surges to most of the link.
  Rng surge_rng(seed + 2);
  net::FlowOptions comp;
  comp.cap = gbps(1);
  const auto competitor =
      network.start_flow(path, static_cast<Bytes>(1) << 60, comp, nullptr);
  sim.schedule_periodic(120.0, 120.0, [&] {
    network.update_cap(competitor, surge_rng.bernoulli(0.5) ? gbps(8) : gbps(1));
    return true;
  });

  // HNTES scopes detection to flows between known DTN address pairs; the
  // bench marks the science flows as it launches them.
  auto science_flows = std::make_shared<std::set<net::FlowId>>();
  vc::HybridTeConfig te_cfg;
  te_cfg.detector.min_bytes = 512 * MiB;
  te_cfg.detector.min_rate = mbps(500);
  te_cfg.detector.window = 10.0;
  te_cfg.poll_period = 5.0;
  te_cfg.circuit_pool = gbps(6);
  te_cfg.per_flow_guarantee = gbps(6);
  te_cfg.eligible = [science_flows](net::FlowId id) {
    return science_flows->contains(id);
  };
  std::unique_ptr<vc::HybridTrafficEngineer> te;
  if (enable_te) te = std::make_unique<vc::HybridTrafficEngineer>(network, te_cfg);

  // The alpha population: one 16 GiB flow every ~4 minutes.
  std::vector<double> alpha_gbps;
  Rng arrivals(seed + 3);
  constexpr int kAlphas = 50;
  for (int i = 0; i < kAlphas; ++i) {
    const Seconds when = 240.0 * (i + 1) + arrivals.uniform(0.0, 60.0);
    sim.schedule_at(when, [&, science_flows] {
      const auto id =
          network.start_flow(path, 16 * GiB, {}, [&](const net::FlowRecord& r) {
            alpha_gbps.push_back(to_gbps(r.average_rate()));
          });
      science_flows->insert(id);
    });
  }
  sim.run_until(240.0 * (kAlphas + 4));
  cross.stop();

  Outcome out;
  out.alpha_gbps = stats::summarize(alpha_gbps);
  if (te) {
    out.redirected = te->stats().flows_redirected;
    out.denied = te->stats().redirections_denied;
    out.redirected_gb = te->stats().redirected_bytes / 1e9;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "ablation_hybrid_te");

  bench::print_exhibit_header(
      "Ablation E: HNTES-style automatic alpha-flow redirection",
      "Section IV (qualitative): preconfigured intra-domain circuits +"
      " online alpha identification isolate science flows without end-user "
      "signaling");

  const Outcome off = run(false, 2024);
  const Outcome on = run(true, 2024);

  stats::Table table("50x 16 GiB alpha flows under mice + a surging competitor (Gbps)");
  table.set_header(analysis::summary_header("Mode", /*with_stddev=*/true,
                                            /*with_count=*/true));
  table.add_row(analysis::summary_row("IP-routed only", off.alpha_gbps, 2, true, true));
  table.add_row(analysis::summary_row("Hybrid TE (redirection)", on.alpha_gbps, 2, true,
                                      true));
  std::printf("%s\n", table.render().c_str());

  std::printf("redirections: %zu of 50 alpha flows (%zu denied for pool headroom); "
              "%.1f GB carried on the circuit pool after promotion\n",
              on.redirected, on.denied, on.redirected_gb);
  std::printf("alpha throughput CV: %s (IP) -> %s (hybrid TE)\n",
              format_percent(off.alpha_gbps.cv(), 1).c_str(),
              format_percent(on.alpha_gbps.cv(), 1).c_str());
  std::printf(
      "\nThe engineer detects each alpha flow within one or two polling\n"
      "periods and grants it a circuit-pool guarantee, flooring its rate\n"
      "during competitor surges -- the paper's intra-domain deployment\n"
      "path that needs no per-user reservations.\n");
  return 0;
}
