// Table VIII: year-based analysis of the NCAR 16GB / 4GB transfer
// throughput. The NCAR "frost" GridFTP cluster shrank from 3 servers
// (2009) to mostly 2 (2010) to 1 (2011), which shows up as a declining
// yearly throughput trend.
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/throughput_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"

using namespace gridvc;

namespace {

void year_table(const char* label, const gridftp::TransferLog& class_log,
                const workload::SessionTraceProfile& profile) {
  stats::Table table(std::string("Year-based analysis of ") + label +
                     " transfers (Mbps, measured)");
  table.set_header(
      analysis::summary_header("Year", /*with_stddev=*/true, /*with_count=*/true));
  const auto groups = analysis::throughput_by_year(
      class_log, [&](Seconds t) { return workload::year_of(profile, t); });
  for (const auto& [year, summary] : groups) {
    table.add_row(
        analysis::summary_row(std::to_string(year), summary, 1, true, true));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table8_year_analysis");

  bench::print_exhibit_header(
      "Table VIII: Throughput of 16GB/4GB transfers in NCAR data set, by year",
      "The NCAR GridFTP cluster capacity fell 3 servers (2009) -> ~2 (2010) -> "
      "1 (2011); yearly medians decline accordingly");

  const auto profile = workload::ncar_nics_profile();
  const auto& log = bench::ncar_log();
  year_table("16GB", analysis::filter_by_size(log, 16 * GiB, 17 * GiB), profile);
  year_table("4GB", analysis::filter_by_size(log, 4 * GiB, 5 * GiB), profile);

  std::printf(
      "Reading: the median column falls with the server-pool shrink; Table IX\n"
      "shows the per-stripe mechanism behind it.\n");
  return 0;
}
