// Fig 4: median throughput of 8-stream vs 1-stream SLAC-BNL transfers,
// over the full (0, 4 GB) range (100-MB bins above 1 GB).
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/stream_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig4_streams_large");

  bench::print_exhibit_header(
      "Fig 4: Throughput of 8-stream and 1-stream transfers of size (0, 4GB)",
      "For files > 1 GB the two groups' medians are roughly the same -- the "
      "paper's evidence that packet losses are rare on these R&E paths "
      "(losses would depress the 1-stream group)");

  analysis::StreamAnalysisOptions opt;
  opt.max_size = 4 * GiB;
  opt.min_bin_count = 5;
  const auto cmp = analysis::compare_streams(bench::slac_log(), opt);

  stats::Table table("Median throughput, bins above 1 GB (Mbps, measured)");
  table.set_header({"Bin center (MB)", "1-stream median", "(n)", "8-stream median", "(n)"});
  double ratio_sum = 0.0;
  int ratio_n = 0;
  std::size_t ia = 0;
  for (const auto& pb : cmp.group_b.points) {
    if (pb.size_mb < 1024.0) continue;
    while (ia < cmp.group_a.points.size() && cmp.group_a.points[ia].size_mb < pb.size_mb) {
      ++ia;
    }
    if (ia >= cmp.group_a.points.size() ||
        cmp.group_a.points[ia].size_mb != pb.size_mb) {
      continue;
    }
    const auto& pa = cmp.group_a.points[ia];
    table.add_row({bench::fmt1(pb.size_mb), bench::fmt1(pa.median),
                   std::to_string(pa.count), bench::fmt1(pb.median),
                   std::to_string(pb.count)});
    ratio_sum += pb.median / pa.median;
    ++ratio_n;
  }
  std::printf("%s\n", table.render().c_str());
  if (ratio_n > 0) {
    std::printf("mean 8-stream / 1-stream median ratio above 1 GB: %.2f "
                "(paper: ~1, i.e. stream count stops mattering)\n",
                ratio_sum / ratio_n);
  }

  std::printf(
      "\nImplication reproduced: no 1-stream penalty at large sizes =>\n"
      "packet losses are rare, a finding that informs transport design for\n"
      "high bandwidth-delay-product paths.\n");
  return 0;
}
