// Ablation B: sweep of VC setup delay vs the fraction of sessions (and
// transfers) that can amortize it. The paper evaluates only two points
// (1 min, the ESnet IDC; 50 ms, hypothetical hardware signaling); the
// sweep fills in the curve between and beyond them.
#include <cstdio>

#include "analysis/session_grouping.hpp"
#include "analysis/vc_feasibility.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "ablation_setup_delay");

  bench::print_exhibit_header(
      "Ablation B: VC setup delay sweep vs session suitability (g = 1 min)",
      "Paper anchor points -- SLAC: 12.54% (78.38%) at 1 min, 93.56% (99.73%) "
      "at 50 ms; NCAR: 56.87% (90.54%) at 1 min, 92.89% (98.04%) at 50 ms");

  const struct {
    const char* name;
    const gridftp::TransferLog* log;
  } datasets[] = {
      {"NCAR-NICS", &bench::ncar_log()},
      {"SLAC-BNL", &bench::slac_log()},
  };

  stats::Table table("Suitable fraction vs setup delay (measured)");
  table.set_header({"Data set", "Setup delay", "% sessions", "% transfers",
                    "min session size (MB)"});
  for (const auto& d : datasets) {
    const auto sessions = analysis::group_sessions(*d.log, {.gap = 60.0});
    for (double setup : {0.05, 1.0, 5.0, 15.0, 60.0, 120.0, 300.0}) {
      const auto r = analysis::analyze_vc_feasibility(
          sessions, *d.log, {.setup_delay = setup, .overhead_fraction = 0.1});
      const std::string label = setup < 1.0
                                    ? format_fixed(setup * 1000.0, 0) + " ms"
                                    : format_fixed(setup, 0) + " s";
      table.add_row({d.name, label, format_percent(r.session_fraction(), 2),
                     format_percent(r.transfer_fraction(), 2),
                     bench::fmt1(to_megabytes(r.min_suitable_size))});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading: transfer coverage saturates early -- by ~15 s setup delay\n"
      "nearly all transfers live in amortizable sessions -- so cutting the\n"
      "IDC's batching latency below a minute has diminishing returns for\n"
      "bulk data movement, while interactive-scale (sub-second) setup mainly\n"
      "rescues the long tail of small sessions.\n");
  return 0;
}
