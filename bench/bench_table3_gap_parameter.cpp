// Table III: impact of the g parameter on the number of sessions.
#include <cstdio>

#include "analysis/session_grouping.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "stats/table.hpp"

using namespace gridvc;

namespace {

void add_rows(stats::Table& table, const std::string& dataset,
              const gridftp::TransferLog& log) {
  for (double g : {0.0, 60.0, 120.0}) {
    const auto sessions = analysis::group_sessions(log, {.gap = g});
    const auto c = analysis::census(sessions);
    table.add_row({dataset, "g = " + format_fixed(g / 60.0, 0) + " min",
                   bench::fmt_int(static_cast<double>(c.single_transfer_sessions)),
                   bench::fmt_int(static_cast<double>(c.multi_transfer_sessions)),
                   format_percent(c.fraction_with_le2, 1),
                   bench::fmt_int(static_cast<double>(c.max_transfers_in_session)),
                   bench::fmt_int(static_cast<double>(c.sessions_with_100_or_more))});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table3_gap_parameter");

  bench::print_exhibit_header(
      "Table III: Impact of the g parameter on number of sessions",
      "NCAR g=0: 25,xxx single-transfer sessions; g=1min: ~211 sessions total, "
      "max ~19,xxx transfers/session. SLAC g=1min: 779 single + 9,420 multi "
      "(10,199), max 30,153 transfers, 1,412 sessions with >=100 transfers; "
      "g=2min: 358 single + ~5,7xx multi, 1,068 with >=100");

  stats::Table table("Session census under g = 0 / 1 min / 2 min (measured)");
  table.set_header({"Data set", "g", "Single-transfer", "Multi-transfer",
                    "% with 1-2 transfers", "Max transfers", ">=100 transfers"});
  add_rows(table, "NCAR-NICS", bench::ncar_log());
  add_rows(table, "SLAC-BNL", bench::slac_log());
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading: raising g merges batches separated by short idle gaps, so the\n"
      "session count falls and single-transfer sessions nearly disappear --\n"
      "the property that makes dynamic VCs amortizable (Section VI-A).\n");
  return 0;
}
