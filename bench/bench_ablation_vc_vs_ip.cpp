// Ablation A: rate-guaranteed virtual circuits vs IP-routed best effort.
//
// The paper's motivating claim (Section I, positive #1): VCs "have the
// potential for reducing throughput variance for the large data transfers
// as they can be provisioned with rate guarantees". We run the same
// sequence of large transfers over a path with fluctuating competing
// traffic, once best-effort and once with a per-transfer circuit, and
// compare the throughput distributions.
#include <cstdio>

#include <memory>

#include "bench_common.hpp"
#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "vc/idc.hpp"
#include "workload/testbed.hpp"
#include "analysis/report.hpp"
#include "common/strings.hpp"

using namespace gridvc;

namespace {

std::vector<double> run_mode(bool use_circuit, std::uint64_t seed) {
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  net::Network network(sim, tb.topo);

  gridftp::ServerConfig sc;
  sc.name = "nersc-dtn";
  sc.nic_rate = gbps(9);
  gridftp::Server nersc(sc);
  sc.name = "anl-dtn";
  gridftp::Server anl(sc);

  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig ecfg;
  ecfg.server_noise_sigma = 0.10;
  ecfg.tcp.stream_buffer = 64 * MiB;
  gridftp::TransferEngine engine(network, collector, ecfg, Rng(seed));

  const net::Path path = tb.path(tb.nersc, tb.anl);
  const Seconds rtt = tb.rtt(tb.nersc, tb.anl);

  // Fluctuating competitor: a best-effort aggregate whose demand jumps
  // between light and heavy every few minutes.
  Rng comp_rng(seed + 17);
  net::FlowOptions comp_opts;
  comp_opts.cap = gbps(2);
  const net::FlowId competitor =
      network.start_flow(path, static_cast<Bytes>(1) << 60, comp_opts, nullptr);
  sim.schedule_periodic(120.0, 120.0, [&] {
    network.update_cap(competitor, comp_rng.bernoulli(0.5) ? gbps(8) : gbps(1));
    return true;
  });

  vc::IdcConfig icfg;
  icfg.mode = vc::SignalingMode::kImmediate;
  vc::Idc idc(sim, tb.topo, icfg);

  std::vector<double> throughput_gbps;
  constexpr int kTransfers = 60;
  for (int i = 0; i < kTransfers; ++i) {
    const Seconds when = 300.0 * (i + 1);
    sim.schedule_at(when, [&, when] {
      gridftp::TransferSpec spec;
      spec.src = {&nersc, gridftp::IoMode::kMemory};
      spec.dst = {&anl, gridftp::IoMode::kMemory};
      spec.path = path;
      spec.rtt = rtt;
      spec.size = 8 * GiB;
      spec.streams = 8;
      spec.remote_host = "anl-dtn";
      if (use_circuit) {
        idc.request_immediate(tb.nersc, tb.anl, gbps(6), 240.0,
                              [&, spec](const vc::Circuit& circuit) {
                                auto s = spec;
                                s.guarantee = circuit.request.bandwidth;
                                engine.submit(s, [&](const gridftp::TransferRecord& r) {
                                  throughput_gbps.push_back(to_gbps(r.throughput()));
                                });
                              });
      } else {
        engine.submit(spec, [&](const gridftp::TransferRecord& r) {
          throughput_gbps.push_back(to_gbps(r.throughput()));
        });
      }
      (void)when;
    });
  }
  sim.run_until(300.0 * (kTransfers + 4));
  return throughput_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "ablation_vc_vs_ip");

  bench::print_exhibit_header(
      "Ablation A: IP-routed best effort vs rate-guaranteed dynamic circuit",
      "Section I, positive #1: rate guarantees reduce throughput variance for "
      "alpha flows (qualitative claim; no table in the paper)");

  const auto best_effort = run_mode(false, 1001);
  const auto circuit = run_mode(true, 1001);

  stats::Table table("60x 8 GiB transfers under a fluctuating competitor (Gbps)");
  table.set_header(analysis::summary_header("Service", /*with_stddev=*/true,
                                            /*with_count=*/true));
  table.add_row(analysis::summary_row("IP-routed (best effort)",
                                      stats::summarize(best_effort), 2, true, true));
  table.add_row(analysis::summary_row("Dynamic VC (6 Gbps guarantee)",
                                      stats::summarize(circuit), 2, true, true));
  std::printf("%s\n", table.render().c_str());

  const auto be = stats::summarize(best_effort);
  const auto vc = stats::summarize(circuit);
  std::printf("coefficient of variation: best effort %s vs circuit %s\n",
              format_percent(be.cv(), 1).c_str(), format_percent(vc.cv(), 1).c_str());
  std::printf("IQR: best effort %.2f Gbps vs circuit %.2f Gbps\n", be.iqr(), vc.iqr());
  std::printf("\nThe guarantee floors the transfer at its reserved rate while the\n"
              "competitor fluctuates, collapsing the variance -- the paper's case\n"
              "for carrying alpha flows on circuits.\n");
  return 0;
}
