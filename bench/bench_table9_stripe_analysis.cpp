// Table IX: stripes-based analysis of the NCAR 16GB / 4GB transfer
// throughput. "The median column is the one to consider. This is higher
// when the number of stripes is higher."
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/throughput_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

namespace {

void stripe_table(const char* label, const gridftp::TransferLog& class_log) {
  stats::Table table(std::string("Stripes-based analysis of ") + label +
                     " transfers (Mbps, measured)");
  table.set_header(
      analysis::summary_header("Stripes", /*with_stddev=*/true, /*with_count=*/true));
  for (const auto& [stripes, summary] : analysis::throughput_by_stripes(class_log)) {
    table.add_row(
        analysis::summary_row(std::to_string(stripes), summary, 1, true, true));
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table9_stripe_analysis");

  bench::print_exhibit_header(
      "Table IX: Throughput of 16GB/4GB transfers in NCAR data set, by stripes",
      "Median throughput is higher when the number of stripes is higher, for "
      "both the 16 GB and 4 GB classes; min/max are not meaningful per group");

  const auto& log = bench::ncar_log();
  stripe_table("16GB", analysis::filter_by_size(log, 16 * GiB, 17 * GiB));
  stripe_table("4GB", analysis::filter_by_size(log, 4 * GiB, 5 * GiB));

  std::printf(
      "Reading: each stripe engages another physical server, so the median\n"
      "rises with stripe count -- the direct mechanism behind Table VIII's\n"
      "year trend.\n");
  return 0;
}
