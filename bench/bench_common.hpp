// Shared infrastructure for the reproduction harness.
//
// Each bench binary regenerates one exhibit of the paper (a table or a
// figure) from the synthetic workloads / simulated scenarios, prints the
// measured rows through stats::Table, and prints the paper's published
// values alongside where the OCR'd text preserves them, so the comparison
// is visible directly in the program output (EXPERIMENTS.md records the
// same numbers).
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "analysis/link_utilization.hpp"
#include "gridftp/transfer_log.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "workload/scenarios.hpp"

namespace gridvc::bench {

/// One fixed seed for every bench: runs are exactly reproducible.
inline constexpr std::uint64_t kSeed = 0x5EED2012ULL;

/// Per-binary bench harness. Construct first thing in main():
///
///   int main(int argc, char** argv) {
///     bench::Harness harness(argc, argv, "table4_vc_suitability");
///     ...
///
/// Parses the shared flags --threads N (execution-pool width; 0 or absent
/// keeps the hardware default), --json-out PATH, and --no-json, then on
/// destruction writes BENCH_<exhibit>.json into the working directory:
/// exhibit name, thread count, wall-clock seconds, and whatever counters
/// the bench noted. GRIDVC_BENCH_NO_JSON=1 in the environment suppresses
/// the file (CI smoke runs that only care about stdout).
class Harness {
 public:
  Harness(int argc, char** argv, std::string exhibit);
  ~Harness();
  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  /// Attach a named counter to the JSON report.
  void note(const std::string& key, double value);

  /// Record the standard event/recompute counters from a metrics
  /// snapshot (missing counters read as zero).
  void note_metrics(const obs::MetricsSnapshot& snapshot);

  /// Execution-pool width in force for this run.
  unsigned threads() const;

 private:
  std::string exhibit_;
  std::string json_path_;
  bool write_json_ = true;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> counters_;
};

/// The synthesized NCAR-NICS log (full 52,454 transfers), memoized per
/// process.
const gridftp::TransferLog& ncar_log();

/// The synthesized SLAC-BNL log. `scale` in (0,1]; 1.0 = 1,021,999
/// transfers. Memoized per (process, first requested scale).
const gridftp::TransferLog& slac_log(double scale = 1.0);

/// The NERSC-ORNL 32 GB test-transfer scenario (145 transfers, SNMP),
/// memoized per process.
const workload::NerscOrnlResult& nersc_ornl_result();

/// The ANL-NERSC four-type test scenario (334 tests), memoized.
const workload::AnlNerscResult& anl_nersc_result();

/// Per-transfer eq.(1) bytes against router `router_idx`, using the
/// direction-appropriate interface for each record (forward series for
/// RETR = NERSC->ORNL, reverse for STOR).
std::vector<double> directional_attributed_bytes(const workload::NerscOrnlResult& result,
                                                 std::size_t router_idx);

/// Counter deltas a run left in a simulator's metrics registry: event
/// churn plus the network-layer recompute work. Benches divide these by
/// completed flows and publish them through state.counters, so perf
/// regressions in the scheduling path show up as counter drift even when
/// wall time is noisy.
struct ObsDeltas {
  double scheduled = 0;
  double cancelled = 0;
  double dispatched = 0;
  double recomputes = 0;
  double rate_changes = 0;
};
ObsDeltas read_obs_deltas(const sim::Simulator& sim);

/// Print a header naming the exhibit and, when known, the paper's values.
void print_exhibit_header(const std::string& exhibit, const std::string& paper_reference);

/// "123.4 Mbps"-style formatting helpers.
std::string fmt1(double v);
std::string fmt2(double v);
std::string fmt_int(double v);

}  // namespace gridvc::bench
