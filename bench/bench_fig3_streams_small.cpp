// Fig 3: median throughput of 8-stream vs 1-stream SLAC-BNL transfers,
// per 1-MB file-size bin, sizes in (0, 1 GB).
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/stream_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig3_streams_small");

  bench::print_exhibit_header(
      "Fig 3: Throughput of 8-stream and 1-stream transfers of size (0, 1GB)",
      "For small files the 8-stream median beats the 1-stream median (Slow "
      "Start); medians converge at ~200 Mbps above ~146 MB (8-stream) and "
      "~575 MB (1-stream). Path BDP = 10 Gbps x 80 ms = 95.4 MB");

  analysis::StreamAnalysisOptions opt;
  opt.max_size = GiB;
  opt.min_bin_count = 5;
  const auto cmp = analysis::compare_streams(bench::slac_log(), opt);

  // Print the series at decimated sizes.
  stats::Table table("Median throughput per file-size bin (Mbps, measured)");
  table.set_header({"Bin center (MB)", "1-stream median", "(n)", "8-stream median", "(n)"});
  std::size_t ia = 0;
  double next_print = 1.0;
  for (const auto& pb : cmp.group_b.points) {
    if (pb.size_mb < next_print) continue;
    next_print = pb.size_mb * 1.6;  // geometric decimation
    while (ia < cmp.group_a.points.size() && cmp.group_a.points[ia].size_mb < pb.size_mb) {
      ++ia;
    }
    std::string one = "-", n_one = "-";
    if (ia < cmp.group_a.points.size() &&
        cmp.group_a.points[ia].size_mb - pb.size_mb < 8.0) {
      one = bench::fmt1(cmp.group_a.points[ia].median);
      n_one = std::to_string(cmp.group_a.points[ia].count);
    }
    table.add_row({bench::fmt1(pb.size_mb), one, n_one, bench::fmt1(pb.median),
                   std::to_string(pb.count)});
  }
  std::printf("%s\n", table.render().c_str());

  const double conv = analysis::convergence_size_mb(cmp);
  std::printf("groups converge (within 15%%) above ~%.0f MB (paper: 1-stream "
              "reaches the plateau by ~575 MB)\n\n",
              conv);

  std::vector<double> x1, y1, x8, y8;
  for (const auto& p : cmp.group_a.points) {
    x1.push_back(p.size_mb);
    y1.push_back(p.median);
  }
  for (const auto& p : cmp.group_b.points) {
    x8.push_back(p.size_mb);
    y8.push_back(p.median);
  }
  std::printf("overlay ('1' = 1-stream, '8' = 8-stream; x = MB, y = Mbps):\n%s",
              analysis::ascii_two_series(x1, y1, '1', x8, y8, '8', 72, 18).c_str());
  return 0;
}
