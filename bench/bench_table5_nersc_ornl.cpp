// Table V: the 32 GB NERSC-ORNL test transfers (145): duration and
// throughput five-number summaries.
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/throughput_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table5_nersc_ornl");
  harness.note_metrics(bench::nersc_ornl_result().metrics);

  bench::print_exhibit_header(
      "Table V: The 32GB NERSC-ORNL transfers (145)",
      "Throughput min = 758 Mbps, max = 3,640 Mbps (3.64 Gbps), "
      "inter-quartile range = 695 Mbps (Section I); same path for all, yet "
      "considerable variance");

  const auto& result = bench::nersc_ornl_result();
  std::printf("simulated test transfers: %zu\n\n", result.log.size());

  stats::Table table("32 GB test transfers (measured)");
  table.set_header(analysis::summary_header("Quantity"));
  table.add_row(analysis::summary_row("Duration (s)",
                                      analysis::duration_summary_seconds(result.log), 1));
  const auto tput = analysis::throughput_summary_mbps(result.log);
  table.add_row(analysis::summary_row("Throughput (Mbps)", tput, 1));
  std::printf("%s\n", table.render().c_str());

  std::printf("inter-quartile range: %.0f Mbps (paper: 695 Mbps)\n", tput.iqr());
  std::printf(
      "Same path, same size, same 8-stream/1-stripe configuration -- the\n"
      "spread comes from server-side contention and CPU/disk jitter, not the\n"
      "network (cf. Tables XI-XIII).\n");
  return 0;
}
