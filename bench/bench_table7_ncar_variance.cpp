// Table VII: throughput variance of the 16GB / 4GB transfer classes in
// the NCAR data set.
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/throughput_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table7_ncar_variance");

  bench::print_exhibit_header(
      "Table VII: Throughput variance of 16GB/4GB transfers in NCAR data set",
      "The [16,17) GB and [4,5) GB transfers constitute 87% of the top-5% "
      "largest sizes; both classes show significant variance");

  const auto& log = bench::ncar_log();
  const auto sixteen = analysis::filter_by_size(log, 16 * GiB, 17 * GiB);
  const auto four = analysis::filter_by_size(log, 4 * GiB, 5 * GiB);

  stats::Table table("Throughput of the large-transfer classes (Mbps, measured)");
  table.set_header(
      analysis::summary_header("Class", /*with_stddev=*/true, /*with_count=*/true));
  table.add_row(analysis::summary_row("16G", analysis::throughput_summary_mbps(sixteen),
                                      1, true, true));
  table.add_row(analysis::summary_row("4G", analysis::throughput_summary_mbps(four), 1,
                                      true, true));
  std::printf("%s\n", table.render().c_str());

  // The "87% of the top 5%" framing.
  std::vector<double> sizes;
  sizes.reserve(log.size());
  for (const auto& r : log) sizes.push_back(static_cast<double>(r.size));
  std::sort(sizes.begin(), sizes.end());
  const double top5_cut = sizes[static_cast<std::size_t>(0.95 * sizes.size())];
  std::size_t top5 = 0, top5_in_classes = 0;
  for (const auto& r : log) {
    if (static_cast<double>(r.size) < top5_cut) continue;
    ++top5;
    const bool in16 = r.size >= 16 * GiB && r.size < 17 * GiB;
    const bool in4 = r.size >= 4 * GiB && r.size < 5 * GiB;
    if (in16 || in4) ++top5_in_classes;
  }
  std::printf("16G+4G classes cover %.1f%% of the top-5%% largest transfers "
              "(paper: 87%%)\n",
              100.0 * static_cast<double>(top5_in_classes) / static_cast<double>(top5));
  return 0;
}
