// Table XII: correlation between GridFTP bytes and the bytes from other
// flows (B_i minus the transfer's own bytes), per router and quartile.
#include <cstdio>

#include "analysis/link_utilization.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table12_cross_traffic");

  bench::print_exhibit_header(
      "Table XII: Correlation between GridFTP bytes and bytes from other flows "
      "(NERSC-ORNL)",
      "Paper values are low across routers/quartiles: the remaining traffic "
      "does not affect GridFTP transfer throughput");

  const auto& result = bench::nersc_ornl_result();
  stats::Table table(
      "corr(GridFTP transfer bytes, B_i - GridFTP bytes) (measured)");
  std::vector<std::string> header{"Quartile"};
  for (const auto& name : result.router_names) header.push_back(name);
  table.set_header(header);

  std::vector<analysis::LinkCorrelation> per_router;
  for (std::size_t k = 0; k < result.router_names.size(); ++k) {
    per_router.push_back(analysis::correlate_attributed(
        bench::directional_attributed_bytes(result, k), result.log));
  }
  const char* quartiles[] = {"1st Qu.", "2nd Qu.", "3rd Qu.", "4th Qu."};
  for (int q = 0; q < 4; ++q) {
    std::vector<std::string> row{quartiles[q]};
    for (const auto& lc : per_router) {
      row.push_back(bench::fmt2(lc.gridftp_vs_other.by_quartile[static_cast<std::size_t>(q)]));
    }
    table.add_row(row);
  }
  std::vector<std::string> all_row{"All"};
  for (const auto& lc : per_router) all_row.push_back(bench::fmt2(lc.gridftp_vs_other.overall));
  table.add_row(all_row);
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Low correlations reproduced: the general-purpose cross traffic is\n"
      "independent of the transfers and far from saturating the links, so it\n"
      "neither tracks nor perturbs GridFTP throughput.\n");
  return 0;
}
