// Fig 8: actual vs predicted (eq. 2) throughput for the ANL->NERSC
// memory-to-memory transfers, with R = the 90th-percentile observed
// throughput. The paper reports rho = 0.62 overall and per-quartile
// correlations 0.141 / 0.051 / 0.191 / 0.347.
#include <cstdio>

#include "analysis/concurrency.hpp"
#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig8_concurrency_model");

  bench::print_exhibit_header(
      "Fig 8: Actual and predicted throughput for mem-to-mem ANL->NERSC transfers",
      "rho = 0.6237 with R = 2.19 Gbps (the 90th percentile of observed "
      "throughput); per-quartile rho = 0.141, 0.051, 0.191, 0.347 -- "
      "concurrent transfers have a weak (but real) impact");

  const auto& result = bench::anl_nersc_result();
  const auto prediction = analysis::predict_throughput(result.all_log, result.mem_mem,
                                                       {.r_quantile = 0.90});

  std::printf("mem-mem transfers: %zu\n", result.mem_mem.size());
  std::printf("R (90th pct of observed throughput): %.2f Gbps (paper: 2.19 Gbps)\n",
              to_gbps(prediction.r));
  std::printf("rho(predicted, actual) = %.4f (paper: 0.6237)\n", prediction.rho);
  std::printf("per-quartile rho: %.3f, %.3f, %.3f, %.3f (paper: 0.141, 0.051, "
              "0.191, 0.347)\n\n",
              prediction.rho_by_quartile[0], prediction.rho_by_quartile[1],
              prediction.rho_by_quartile[2], prediction.rho_by_quartile[3]);

  std::vector<double> actual_mbps, predicted_mbps;
  for (std::size_t i = 0; i < prediction.actual.size(); ++i) {
    actual_mbps.push_back(to_mbps(prediction.actual[i]));
    predicted_mbps.push_back(to_mbps(prediction.predicted[i]));
  }
  std::printf("scatter (x = actual Mbps, y = predicted Mbps):\n%s",
              analysis::ascii_series(actual_mbps, predicted_mbps, 72, 16, "actual",
                                     "predicted")
                  .c_str());

  std::printf(
      "\nConclusion reproduced: predictions from server-concurrency residuals\n"
      "correlate positively but imperfectly with actuals -- concurrency\n"
      "matters, but per-transfer CPU/disk jitter adds unexplained variance\n"
      "(the paper's case for scheduling *server* resources, finding (v)).\n");
  return 0;
}
