// Ablation D: advance-reservation admission control.
//
// Section II: "advance-reservation service is required when the requested
// circuit rate is a significant portion of link capacity if the network
// is to be operated at high utilization and with low call blocking
// probability." We drive the IDC with Poisson circuit requests of varying
// rate fractions and measure the blocking probability.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "stats/table.hpp"
#include "vc/idc.hpp"
#include "workload/testbed.hpp"

using namespace gridvc;

namespace {

struct Outcome {
  double blocking = 0.0;
  double utilization = 0.0;  // mean reserved fraction of the bottleneck
};

Outcome run(double rate_fraction, double offered_load, bool advance, std::uint64_t seed) {
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  vc::IdcConfig cfg;
  cfg.mode = vc::SignalingMode::kImmediate;
  vc::Idc idc(sim, tb.topo, cfg);

  Rng rng(seed);
  const BitsPerSecond rate = gbps(10) * rate_fraction;
  const Seconds hold = 600.0;  // mean circuit duration
  // offered_load = lambda * hold * rate_fraction (erlangs of the link).
  const Seconds mean_interarrival = hold * rate_fraction / offered_load;

  const net::NodeId endpoints[] = {tb.ncar, tb.slac, tb.nersc, tb.anl, tb.ornl,
                                   tb.nics, tb.bnl};
  const Seconds horizon = 100000.0;
  double reserved_time_product = 0.0;

  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival] {
    const Seconds next = sim.now() + rng.exponential(mean_interarrival);
    if (next >= horizon) return;
    sim.schedule_at(next, [&, arrival] {
      vc::ReservationRequest req;
      req.src = endpoints[rng.uniform_int(0, 6)];
      do {
        req.dst = endpoints[rng.uniform_int(0, 6)];
      } while (req.dst == req.src);
      req.bandwidth = rate;
      // Advance reservations book a future window; immediate ones start now.
      const Seconds lead = advance ? rng.uniform(600.0, 7200.0) : 0.0;
      req.start_time = sim.now() + lead;
      req.end_time = req.start_time + rng.exponential(hold);
      const auto result = idc.create_reservation(req);
      if (result.accepted()) {
        reserved_time_product += (req.end_time - req.start_time) * rate_fraction;
      }
      (*arrival)();
    });
  };
  (*arrival)();
  sim.run_until(horizon + 20000.0);

  Outcome out;
  out.blocking = idc.stats().blocking_probability();
  out.utilization = reserved_time_product / horizon /
                    3.0;  // rough: ~3 bottleneck-ish core links
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "ablation_admission");

  bench::print_exhibit_header(
      "Ablation D: circuit admission -- blocking probability vs requested rate",
      "Section II (qualitative): high per-circuit rates need advance "
      "reservations to keep blocking low at high utilization");

  stats::Table table("Blocking probability of dynamic circuit requests (measured)");
  table.set_header({"Rate (fraction of 10G)", "Offered load (erlang)",
                    "Immediate-use blocking", "Advance-booked blocking"});
  for (double fraction : {0.05, 0.2, 0.5, 0.8}) {
    for (double load : {0.3, 0.7}) {
      const auto imm = run(fraction, load, /*advance=*/false, 31);
      const auto adv = run(fraction, load, /*advance=*/true, 31);
      table.add_row({format_fixed(fraction, 2), format_fixed(load, 1),
                     format_percent(imm.blocking, 1),
                     format_percent(adv.blocking, 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading: small circuits almost never block; once a single request\n"
      "asks for a large fraction of a link, blocking rises steeply with\n"
      "offered load -- the regime where admission control is essential.\n"
      "Advance booking does not lower the blocking rate at equal load (it\n"
      "holds future windows, fragmenting the calendar slightly); its value\n"
      "is that an accepted request is *guaranteed* its future slot, which\n"
      "is what lets the provider run links at high utilization without\n"
      "over-promising -- the paper's rationale for OSCARS' design.\n");
  return 0;
}
