// Table I: NCAR-NICS sessions and transfers; g = 1 min.
//
// Session sizes (MB), session durations (s), transfer throughput (Mbps).
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/session_grouping.hpp"
#include "analysis/throughput_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table1_ncar_sessions");

  bench::print_exhibit_header(
      "Table I: NCAR-NICS sessions and transfers; g = 1 min",
      "52,454 transfers; size max ~2,873,868.5 MB; duration max 48,420 s; "
      "throughput Q3 = 682.2 Mbps, max = 4,227 Mbps (4.23 Gbps)");

  const auto& log = bench::ncar_log();
  const auto sessions = analysis::group_sessions(log, {.gap = 60.0});
  std::printf("synthesized transfers: %zu, sessions at g=1min: %zu\n\n", log.size(),
              sessions.size());

  stats::Table table("NCAR-NICS characterization (measured)");
  table.set_header(analysis::summary_header("Quantity"));
  table.add_row(analysis::summary_row(
      "Session size (MB)", stats::summarize(analysis::session_sizes_megabytes(sessions)),
      1));
  table.add_row(analysis::summary_row(
      "Session duration (s)",
      stats::summarize(analysis::session_durations_seconds(sessions)), 1));
  table.add_row(analysis::summary_row("Transfer throughput (Mbps)",
                                      analysis::throughput_summary_mbps(log), 1));
  std::printf("%s\n", table.render().c_str());

  // The headline session anecdotes of §VI-A.
  const analysis::Session* largest = &sessions.front();
  const analysis::Session* longest = &sessions.front();
  for (const auto& s : sessions) {
    if (s.total_bytes > largest->total_bytes) largest = &s;
    if (s.duration() > longest->duration()) longest = &s;
  }
  std::printf("largest session : %.1f GB over %.0f s (effective %.0f Mbps)\n",
              to_gigabytes(largest->total_bytes), largest->duration(),
              to_mbps(largest->effective_rate()));
  std::printf("longest session : %.0f s moving %.1f GB (effective %.0f Mbps)\n",
              longest->duration(), to_gigabytes(longest->total_bytes),
              to_mbps(longest->effective_rate()));
  return 0;
}
