// Ablation F: circuit-sizing from history (§VII's second motivation).
//
// Backtest of the RateAdvisor on the synthesized SLAC-BNL log: train on
// the first half (by time), advise a circuit (rate, duration) for every
// transfer in the second half, and measure (a) the fraction that would
// have finished within the advised window — which should track the
// requested confidence — and (b) how much bandwidth-time the advice
// reserves relative to what the transfer actually used
// (over-provisioning factor).
#include <cstdio>

#include <cmath>
#include <map>
#include <optional>
#include <tuple>

#include "analysis/rate_advisor.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "ablation_rate_advisor");

  bench::print_exhibit_header(
      "Ablation F: advising circuit rate/duration from transfer history",
      "Section VII (motivation, not evaluated in the paper): 'provide a "
      "mechanism for the data transfer application to estimate the rate and "
      "duration it should specify when requesting a virtual circuit'");

  const auto& log = bench::slac_log();
  // Chronological split: the log is sorted by start time.
  const std::size_t half = log.size() / 2;
  gridftp::TransferLog train(log.begin(), log.begin() + static_cast<std::ptrdiff_t>(half));
  gridftp::TransferLog test(log.begin() + static_cast<std::ptrdiff_t>(half), log.end());
  std::printf("training on %zu transfers, backtesting on %zu\n\n", train.size(),
              test.size());

  analysis::RateAdvisor advisor(train);

  stats::Table table("Backtest of advised (rate, duration) on held-out transfers");
  table.set_header({"Confidence", "Finished in window", "Median over-provision (rate x "
                    "time / bytes)", "Median advised rate (Mbps)", "Fallback advice"});
  for (double confidence : {0.5, 0.75, 0.9, 0.99}) {
    std::size_t advised = 0, within = 0, fallback = 0;
    std::vector<double> overprovision, rates;
    // Sample the held-out set and memoize advice per size bucket: the
    // advisor's answer is identical within a bucket, and the backtest
    // only needs per-transfer pass/fail.
    std::map<std::tuple<int, int, int>, analysis::CircuitAdvice> cache;
    const std::size_t stride = std::max<std::size_t>(1, test.size() / 20000);
    for (std::size_t i = 0; i < test.size(); i += stride) {
      const auto& r = test[i];
      // Half-decade size buckets.
      const int bucket = static_cast<int>(std::log10(static_cast<double>(r.size)) * 2.0);
      const auto key = std::make_tuple(r.streams, r.stripes, bucket);
      const auto hit = cache.find(key);
      std::optional<analysis::CircuitAdvice> advice;
      if (hit != cache.end()) {
        advice = hit->second;
        // Scale the cached duration to this transfer's exact size (the
        // advised pessimistic rate is the bucket's property).
      } else {
        analysis::AdviceRequest req;
        req.size = static_cast<Bytes>(std::pow(10.0, (bucket + 0.5) / 2.0));
        req.streams = r.streams;
        req.stripes = r.stripes;
        req.confidence = confidence;
        advice = advisor.advise(req);
        if (advice) cache.emplace(key, *advice);
      }
      if (!advice) continue;
      // Re-derive the per-transfer window from the bucket's pessimistic
      // rate: duration = size / pessimistic_rate.
      const double pessimistic =
          static_cast<double>(std::pow(10.0, (bucket + 0.5) / 2.0)) * 8.0 /
          advice->duration;
      advice->duration = static_cast<double>(r.size) * 8.0 / pessimistic;
      ++advised;
      if (advice->fallback) ++fallback;
      if (r.duration <= advice->duration) ++within;
      overprovision.push_back(advice->rate * advice->duration /
                              (static_cast<double>(r.size) * 8.0));
      rates.push_back(to_mbps(advice->rate));
    }
    const auto over = stats::summarize(overprovision);
    const auto rate = stats::summarize(rates);
    table.add_row({format_percent(confidence, 0),
                   format_percent(static_cast<double>(within) /
                                      static_cast<double>(advised),
                                  1),
                   format_fixed(over.median, 1) + "x", bench::fmt1(rate.median),
                   format_percent(static_cast<double>(fallback) /
                                      static_cast<double>(advised),
                                  1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading: the advised windows hit their confidence targets out of\n"
      "sample -- per-configuration history is a workable basis for the\n"
      "createReservation parameters. The price of confidence is reserved\n"
      "bandwidth-time: the over-provision factor grows with the confidence\n"
      "level, which is exactly the provider's utilization-vs-guarantee\n"
      "trade-off (Section II).\n");
  return 0;
}
