// Table XIII: average link load (Gbps) during the 32 GB transfers, per
// monitored router.
#include <cstdio>

#include "analysis/link_utilization.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table13_link_load");

  bench::print_exhibit_header(
      "Table XIII: Average link load (Gbps) during the 32GB transfers",
      "Even the maximum loads are only slightly more than half the 10 Gbps "
      "link capacities -- the backbone is lightly loaded");

  const auto& result = bench::nersc_ornl_result();
  stats::Table table("B_i / D_i per router (Gbps, measured)");
  table.set_header({"Statistic", "rt1", "rt2", "rt3", "rt4", "rt5"});

  std::vector<analysis::LinkCorrelation> per_router;
  for (std::size_t k = 0; k < result.router_names.size(); ++k) {
    per_router.push_back(analysis::correlate_attributed(
        bench::directional_attributed_bytes(result, k), result.log));
  }

  const auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& lc : per_router) cells.push_back(bench::fmt2(getter(lc.load_gbps)));
    table.add_row(cells);
  };
  row("Min", [](const stats::Summary& s) { return s.min; });
  row("1st Qu.", [](const stats::Summary& s) { return s.q1; });
  row("Median", [](const stats::Summary& s) { return s.median; });
  row("Mean", [](const stats::Summary& s) { return s.mean; });
  row("3rd Qu.", [](const stats::Summary& s) { return s.q3; });
  row("Max", [](const stats::Summary& s) { return s.max; });
  std::printf("%s\n", table.render().c_str());

  double global_max = 0.0;
  for (const auto& lc : per_router) global_max = std::max(global_max, lc.load_gbps.max);
  std::printf("maximum observed load: %.2f Gbps of 10 Gbps capacity "
              "(paper: loads peak slightly above half capacity)\n",
              global_max);
  return 0;
}
