// Ablation: malleable (volume-preserving) reservations vs fixed-window
// admission.
//
// Chen & Primet-style malleable scheduling reads a reservation as a
// volume demand — preferred rate times window — that the IDC may deliver
// as any stepwise profile inside the window. This exhibit drives the
// ESnet testbed with Poisson advance reservations at 2-10x offered load
// and compares fixed-window vs malleable admission on two axes:
// acceptance ratio (malleable must dominate: the flat shape is always
// among the shaper's candidates) and mean completion time of accepted
// demands (greedy earliest-fill usually delivers the volume before the
// nominal deadline).
//
// The emitted BENCH_ablation_malleable.json carries lower-is-better
// ratio_* keys (rejection fractions and the malleable/fixed completion
// ratio) that gridvc-perf-gate compares against the checked-in baseline:
// the whole simulation is deterministic in (config, seed), so any drift
// is a behavioral regression, not noise. CI runs --quick; the baseline
// is generated with --quick too.
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "stats/table.hpp"
#include "vc/idc.hpp"
#include "workload/testbed.hpp"

using namespace gridvc;

namespace {

struct Outcome {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shaped = 0;
  std::uint64_t defragmented = 0;
  std::uint64_t rerouted = 0;
  double completion_sum = 0.0;  // booked delivery end - requested start

  double acceptance() const {
    return offered > 0 ? static_cast<double>(accepted) / static_cast<double>(offered)
                       : 0.0;
  }
  double rejection() const { return 1.0 - acceptance(); }
  double mean_completion() const {
    return accepted > 0 ? completion_sum / static_cast<double>(accepted) : 0.0;
  }
};

Outcome run(double load_multiplier, bool malleable, Seconds horizon,
            std::uint64_t seed) {
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  vc::IdcConfig cfg;
  cfg.mode = vc::SignalingMode::kImmediate;
  vc::Idc idc(sim, tb.topo, cfg);

  Rng rng(seed);
  const Seconds hold = 600.0;       // mean reserved window
  const double rate_fraction = 0.4; // preferred rate as a fraction of 10G
  // offered erlangs of a link = multiplier; lambda = load / (hold * frac).
  const Seconds mean_interarrival = hold * rate_fraction / load_multiplier;

  const net::NodeId endpoints[] = {tb.ncar, tb.slac, tb.nersc, tb.anl, tb.ornl,
                                   tb.nics, tb.bnl};
  Outcome out;

  auto arrival = std::make_shared<std::function<void()>>();
  *arrival = [&, arrival] {
    const Seconds next = sim.now() + rng.exponential(mean_interarrival);
    if (next >= horizon) return;
    sim.schedule_at(next, [&, arrival] {
      vc::ReservationRequest req;
      req.src = endpoints[rng.uniform_int(0, 6)];
      do {
        req.dst = endpoints[rng.uniform_int(0, 6)];
      } while (req.dst == req.src);
      req.bandwidth = gbps(10) * rate_fraction;
      // Advance booking with lead time: the live reservation set is a mix
      // of scheduled and active circuits, so shaping, defragmentation
      // (scheduled-only), and reroute all get exercised.
      req.start_time = sim.now() + rng.uniform(60.0, 3600.0);
      req.end_time = req.start_time + rng.exponential(hold);
      req.malleable = malleable;
      ++out.offered;
      const auto result = idc.create_reservation(req);
      if (result.accepted()) {
        ++out.accepted;
        const vc::Circuit& c = idc.circuit(*result.circuit_id);
        const Seconds done =
            c.profile.empty() ? c.request.end_time : c.profile.back().end;
        out.completion_sum += done - req.start_time;
      }
      (*arrival)();
    });
  };
  (*arrival)();
  sim.run_until(horizon + 20000.0);

  out.shaped = idc.stats().shaped;
  out.defragmented = idc.stats().defragmented;
  out.rerouted = idc.stats().rerouted;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "ablation_malleable");
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const Seconds horizon = quick ? 20000.0 : 100000.0;

  bench::print_exhibit_header(
      "Ablation: malleable reservations -- acceptance and completion vs "
      "fixed-window",
      "Extension of the SectionII admission study: volume-preserving shaped "
      "profiles (Chen & Primet) instead of reject-on-no-flat-fit");

  stats::Table table(
      "Fixed-window vs malleable admission under overload (measured)");
  table.set_header({"Load (x)", "Fixed accept", "Malleable accept", "Shaped",
                    "Defrag", "Rerouted", "Fixed MCT (s)", "Malleable MCT (s)"});

  bool dominance_held = true;
  for (double load : {2.0, 4.0, 6.0, 10.0}) {
    const auto fixed = run(load, /*malleable=*/false, horizon, 2012);
    const auto flex = run(load, /*malleable=*/true, horizon, 2012);
    table.add_row({format_fixed(load, 0), format_percent(fixed.acceptance(), 1),
                   format_percent(flex.acceptance(), 1),
                   std::to_string(flex.shaped), std::to_string(flex.defragmented),
                   std::to_string(flex.rerouted),
                   format_fixed(fixed.mean_completion(), 1),
                   format_fixed(flex.mean_completion(), 1)});
    if (flex.acceptance() < fixed.acceptance()) dominance_held = false;

    const std::string suffix = "load" + std::to_string(static_cast<int>(load));
    harness.note("accept_fixed_" + suffix, fixed.acceptance());
    harness.note("accept_malleable_" + suffix, flex.acceptance());
    harness.note("mct_fixed_" + suffix, fixed.mean_completion());
    harness.note("mct_malleable_" + suffix, flex.mean_completion());
    harness.note("shaped_" + suffix, static_cast<double>(flex.shaped));
    // Gated keys (lower is better, deterministic in seed): the malleable
    // rejection fraction, and its completion time relative to fixed.
    harness.note("ratio_malleable_reject_" + suffix, flex.rejection());
    harness.note("ratio_mct_malleable_vs_fixed_" + suffix,
                 fixed.mean_completion() > 0.0
                     ? flex.mean_completion() / fixed.mean_completion()
                     : 1.0);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Reading: at every overload level the malleable scheduler admits at\n"
      "least what fixed-window admission does -- the flat shape is always\n"
      "among its candidates -- and converts calendar fragmentation into\n"
      "extra admissions via shaping, defragmentation, and detour routing.\n"
      "Accepted volumes also tend to *finish sooner* than their nominal\n"
      "deadline: greedy earliest-fill grabs high-rate slack up front.\n");

  if (!dominance_held) {
    std::fprintf(stderr,
                 "FAIL: malleable acceptance fell below fixed-window at some "
                 "load -- the dominance invariant is broken\n");
    return 1;
  }
  return 0;
}
