// Fig 6: throughput of the 32 GB NERSC-ORNL transfers as a function of
// time of day (all tests start at 2 AM or 8 AM).
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/timeofday_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig6_time_of_day");

  bench::print_exhibit_header(
      "Fig 6: Throughput of the 32GB NERSC-ORNL transfers vs time of day",
      "All transfers start at 2 AM or 8 AM; some 2 AM transfers reach higher "
      "throughput, but there is significant variance within each set -- the "
      "time-of-day factor has a minor impact");

  const auto& result = bench::nersc_ornl_result();

  stats::Table table("Throughput by start hour (Mbps, measured)");
  table.set_header(
      analysis::summary_header("Start hour", /*with_stddev=*/true, /*with_count=*/true));
  for (const auto& [hour, summary] :
       analysis::throughput_by_start_hour(result.log)) {
    table.add_row(analysis::summary_row(std::to_string(hour) + ":00", summary, 1, true,
                                        true));
  }
  std::printf("%s\n", table.render().c_str());

  const auto scatter = analysis::time_of_day_scatter(result.log);
  std::vector<double> xs, ys;
  for (const auto& p : scatter) {
    xs.push_back(p.hour);
    ys.push_back(p.throughput_mbps);
  }
  std::printf("%s", analysis::ascii_series(xs, ys, 72, 16, "hour of day",
                                           "throughput (Mbps)")
                        .c_str());
  std::printf(
      "\nReading: within-hour variance dwarfs the between-hour difference, so\n"
      "time of day is not the main cause of throughput variance (Section VII-C).\n");
  return 0;
}
