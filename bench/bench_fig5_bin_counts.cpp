// Fig 5: number of observations per file-size bin for the 1-stream and
// 8-stream groups. The paper uses this to flag that 1-stream bins above
// ~2.3 GB hold too few transfers (< 300) for their medians to be
// representative.
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/stream_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig5_bin_counts");

  bench::print_exhibit_header(
      "Fig 5: Number of observations for each file size bin",
      "1-stream counts fall below ~300 per bin for sizes above ~2.3 GB, so "
      "those medians may not be representative; the (2.2-2.3 GB) 1-stream bin "
      "still held 618 observations");

  analysis::StreamAnalysisOptions opt;
  opt.max_size = 4 * GiB;
  opt.min_bin_count = 1;
  const auto cmp = analysis::compare_streams(bench::slac_log(), opt);

  stats::Table table("Observations per bin (selected sizes, measured)");
  table.set_header({"Bin center (MB)", "1-stream n", "8-stream n"});
  double next_print = 1.0;
  std::size_t ia = 0;
  for (const auto& pb : cmp.group_b.points) {
    if (pb.size_mb < next_print) continue;
    next_print = std::max(pb.size_mb * 1.7, pb.size_mb + 1.0);
    while (ia < cmp.group_a.points.size() && cmp.group_a.points[ia].size_mb < pb.size_mb) {
      ++ia;
    }
    std::string one = "0";
    if (ia < cmp.group_a.points.size() &&
        cmp.group_a.points[ia].size_mb == pb.size_mb) {
      one = std::to_string(cmp.group_a.points[ia].count);
    }
    table.add_row({bench::fmt1(pb.size_mb), one, std::to_string(pb.count)});
  }
  std::printf("%s\n", table.render().c_str());

  // Where does the 1-stream group drop below 300 observations per bin?
  double below300_from = -1.0;
  for (const auto& p : cmp.group_a.points) {
    if (p.size_mb < 1024.0) continue;  // the paper's concern is the >1 GB bins
    if (p.count < 300 && below300_from < 0.0) below300_from = p.size_mb;
    if (p.count >= 300) below300_from = -1.0;
  }
  if (below300_from > 0.0) {
    std::printf("1-stream bins hold < 300 observations above ~%.0f MB "
                "(paper: ~2.3 GB)\n",
                below300_from);
  }
  return 0;
}
