// Table IV: percentage of sessions suitable for using dynamic VCs
// (percentage of transfers), under setup delay 1 min / 50 ms and
// g = 0 / 1 min / 2 min.
#include <cstdio>

#include "analysis/session_grouping.hpp"
#include "analysis/vc_feasibility.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "stats/table.hpp"

using namespace gridvc;

namespace {

void add_rows(stats::Table& table, const std::string& dataset,
              const gridftp::TransferLog& log) {
  for (double g : {0.0, 60.0, 120.0}) {
    const auto sessions = analysis::group_sessions(log, {.gap = g});
    std::vector<std::string> row{dataset, "g = " + format_fixed(g / 60.0, 0) + " min"};
    for (double setup : {60.0, 0.05}) {
      const auto r = analysis::analyze_vc_feasibility(
          sessions, log, {.setup_delay = setup, .overhead_fraction = 0.1});
      row.push_back(format_percent(r.session_fraction(), 2) + " (" +
                    format_percent(r.transfer_fraction(), 2) + ")");
    }
    const auto ref = analysis::analyze_vc_feasibility(sessions, log, {.setup_delay = 60.0});
    row.push_back(bench::fmt1(to_mbps(ref.reference_throughput)));
    row.push_back(bench::fmt1(to_megabytes(ref.min_suitable_size)));
    table.add_row(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table4_vc_suitability");

  bench::print_exhibit_header(
      "Table IV: Percentage of sessions suitable for using VCs (percentage of "
      "transfers)",
      "NCAR: g=0 -> ~2.1% (2.14%) @1min, 87.09% (89.33%) @50ms; g=1min -> 56.87% "
      "(90.54%) @1min, 92.89% (98.04%) @50ms; g=2min -> 62.16% (90.71%) @1min. "
      "SLAC: g=1min -> 12.54% (78.38%) @1min, 93.56% (99.73%) @50ms. "
      "Reference throughputs: NCAR Q3 = 682.2 Mbps; 50 ms setup admits NCAR "
      "sessions >= 42 MB");

  stats::Table table(
      "Sessions suitable for dynamic VCs: setup <= 1/10 of hypothetical duration\n"
      "(session size / Q3 transfer throughput); '% sessions (% transfers)'");
  table.set_header({"Data set", "g", "setup = 1 min", "setup = 50 ms",
                    "Q3 ref (Mbps)", "min size @1min (MB)"});
  add_rows(table, "NCAR-NICS", bench::ncar_log());
  add_rows(table, "SLAC-BNL", bench::slac_log());
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Key finding reproduced: even where few *sessions* qualify under the\n"
      "1-min setup delay, those sessions hold the bulk of all *transfers*\n"
      "(parenthesized numbers), so dynamic VCs can serve most of the traffic.\n");
  return 0;
}
