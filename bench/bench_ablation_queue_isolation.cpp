// Ablation C: virtual-queue isolation of alpha flows.
//
// Section I, positive #3: isolating alpha-flow packets into their own
// virtual queues "will prevent packets of general-purpose flows from
// getting stuck behind a large-sized burst of packets from an alpha flow.
// The result is a reduction in delay variance (jitter) for the
// general-purpose flows." The paper asserts this qualitatively; here we
// quantify it with the interface queueing model.
#include <cstdio>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "vc/queue_isolation.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "ablation_queue_isolation");

  bench::print_exhibit_header(
      "Ablation C: GP-packet delay with vs without alpha-flow queue isolation",
      "Section I, positive #3 (qualitative in the paper): isolation reduces "
      "jitter for general-purpose flows");

  stats::Table table("GP packet delay on a 10 Gbps interface (microseconds)");
  table.set_header({"Alpha bursts/s", "Burst size", "Mode", "Mean", "Std dev (jitter)",
                    "p99"});

  Rng rng(77);
  for (double bursts_per_s : {10.0, 50.0, 150.0}) {
    for (Bytes burst : {Bytes(MiB), Bytes(4 * MiB)}) {
      vc::InterfaceModel m;
      m.capacity = gbps(10);
      m.gp_utilization = 0.08;
      m.alpha_burst_per_second = bursts_per_s;
      m.alpha_burst_bytes = burst;
      vc::QueueIsolationModel model(m);

      const auto add = [&](const char* mode, const vc::DelaySummary& d) {
        table.add_row({bench::fmt_int(bursts_per_s),
                       bench::fmt_int(to_megabytes(burst)) + " MB", mode,
                       bench::fmt2(d.mean * 1e6), bench::fmt2(d.stddev * 1e6),
                       bench::fmt2(d.p99 * 1e6)});
      };
      add("shared FIFO", model.shared_fifo_analytic());
      add("isolated VQ", model.isolated_analytic());
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Monte-Carlo spot check of the heaviest configuration.
  vc::InterfaceModel heavy;
  heavy.capacity = gbps(10);
  heavy.gp_utilization = 0.08;
  heavy.alpha_burst_per_second = 150.0;
  heavy.alpha_burst_bytes = 4 * MiB;
  vc::QueueIsolationModel model(heavy);
  const auto shared = stats::summarize(model.sample_shared_fifo(200000, rng));
  const auto isolated = stats::summarize(model.sample_isolated(200000, rng));
  std::printf("Monte-Carlo (200k packets, heaviest config): jitter %1.2f us shared "
              "vs %1.2f us isolated (%.1fx reduction)\n",
              shared.stddev * 1e6, isolated.stddev * 1e6,
              shared.stddev / isolated.stddev);
  return 0;
}
