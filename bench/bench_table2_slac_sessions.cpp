// Table II: SLAC-BNL sessions and transfers; g = 1 min.
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/session_grouping.hpp"
#include "analysis/throughput_analysis.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table2_slac_sessions");

  bench::print_exhibit_header(
      "Table II: SLAC-BNL sessions and transfers; g = 1 min",
      "1,021,999 transfers; session size Q1=273 / median=1,195 / mean=24,045 / "
      "max=12,037,604 MB; duration max ~95,080 s; throughput max 2,560 Mbps; "
      "largest session 12 TB in 26h24m at 1.06 Gbps");

  const auto& log = bench::slac_log();
  const auto sessions = analysis::group_sessions(log, {.gap = 60.0});
  std::printf("synthesized transfers: %zu, sessions at g=1min: %zu\n\n", log.size(),
              sessions.size());

  stats::Table table("SLAC-BNL characterization (measured)");
  table.set_header(analysis::summary_header("Quantity"));
  table.add_row(analysis::summary_row(
      "Session size (MB)", stats::summarize(analysis::session_sizes_megabytes(sessions)),
      1));
  table.add_row(analysis::summary_row(
      "Session duration (s)",
      stats::summarize(analysis::session_durations_seconds(sessions)), 1));
  table.add_row(analysis::summary_row("Transfer throughput (Mbps)",
                                      analysis::throughput_summary_mbps(log), 1));
  std::printf("%s\n", table.render().c_str());

  const analysis::Session* largest = &sessions.front();
  for (const auto& s : sessions) {
    if (s.total_bytes > largest->total_bytes) largest = &s;
  }
  std::printf("largest session : %.2f TB over %.1f h (effective %.2f Gbps)\n",
              to_gigabytes(largest->total_bytes) / 1024.0, largest->duration() / kHour,
              to_gbps(largest->effective_rate()));
  return 0;
}
