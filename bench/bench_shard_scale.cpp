// Shard-scale exhibit: the federation workload through ShardedSimulation
// at 1/2/4/8 executor lanes.
//
// Reports wall-clock events/sec and speedup versus the shards=1 serial
// reference, cross-checks that every lane count produced the
// byte-identical digest, and publishes machine-independent ratio_* keys
// (work per transfer, barrier density, lookahead-stall fraction, digest
// mismatches) for gridvc-perf-gate. Wall-clock numbers are noted but
// never gated: they depend on the host.
//
//   --quick   CI-sized run (the checked-in baseline is generated from it)
//   --full    24 sites x 48 hosts, 1.05M users, 10 files each = 10.5M
//             transfers; the scale point EXPERIMENTS.md records
//
// Default is --quick so a casual invocation finishes in seconds.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "shard/sharded_simulation.hpp"
#include "workload/federation.hpp"

namespace {

using gridvc::bench::Harness;
using gridvc::shard::ShardedSimulation;
using gridvc::workload::FederationConfig;

struct LaneResult {
  unsigned lanes = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double speedup = 0.0;
  double stall_fraction = 0.0;
  std::string digest;
};

FederationConfig quick_config() {
  FederationConfig config;
  config.sites = 10;
  config.hosts_per_site = 2;
  config.users = 400;
  config.transfers_per_user = 2;
  config.file_size = 16ULL << 20;
  config.arrival_horizon = 120.0;
  config.think_time = 2.0;
  config.remote_fraction = 0.5;
  config.vc_fraction = 0.4;
  return config;
}

FederationConfig full_config() {
  FederationConfig config;
  config.sites = 24;
  config.hosts_per_site = 48;
  config.users = 1'050'000;
  config.transfers_per_user = 10;
  config.file_size = 32ULL << 20;
  // The fluid data plane's recompute cost grows with *concurrent* flows,
  // so the million-user run spreads arrivals instead of stacking them:
  // ~52 user-sessions/s against 1,152 hosts keeps per-domain flow counts
  // in the regime the paper's DTN sites actually operate in (tens of
  // concurrent transfers per site), not a thundering herd.
  config.arrival_horizon = 20000.0;
  config.think_time = 1.0;
  config.remote_fraction = 0.4;
  config.vc_fraction = 0.25;
  config.host_concurrency = 4;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness(argc, argv, "shard_scale");

  bool full = false;
  std::uint64_t user_override = 0;  // --users N scales a run up or down
  std::vector<unsigned> lane_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--quick") == 0) full = false;
    if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      user_override = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      // Comma-separated lane counts, e.g. --lanes 1,4 to trim a full run.
      lane_counts.clear();
      for (const char* p = argv[i + 1]; *p != '\0';) {
        lane_counts.push_back(static_cast<unsigned>(std::strtoul(p, nullptr, 10)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    }
  }

  FederationConfig config = full ? full_config() : quick_config();
  if (user_override > 0) config.users = user_override;
  const auto scenario = gridvc::workload::build_federation(config, gridvc::bench::kSeed);
  const double transfers = static_cast<double>(scenario.total_transfers());

  gridvc::bench::print_exhibit_header(
      full ? "shard scale (full: 10.5M transfers)" : "shard scale (quick)",
      "sharded federation, conservative lookahead (no paper analogue)");
  std::printf("  sites %zu  hosts/site %zu  users %" PRIu64 "  transfers %.0f\n\n",
              config.sites, config.hosts_per_site, config.users, transfers);

  std::vector<LaneResult> results;
  gridvc::shard::ShardStats serial_stats;
  for (const unsigned lanes : lane_counts) {
    ShardedSimulation sim(scenario, lanes);
    const auto t0 = std::chrono::steady_clock::now();
    sim.run();
    const auto t1 = std::chrono::steady_clock::now();

    LaneResult r;
    r.lanes = lanes;
    r.wall_s = std::chrono::duration<double>(t1 - t0).count();
    r.events_per_sec =
        static_cast<double>(sim.stats().events_dispatched) / (r.wall_s > 0 ? r.wall_s : 1e-9);
    r.stall_fraction = sim.stats().stall_fraction();
    r.digest = sim.digest();
    // Stats are lane-invariant (that is the whole point); keep the first
    // run's copy for the ratio keys.
    if (results.empty()) serial_stats = sim.stats();
    r.speedup = results.empty() ? 1.0 : results.front().wall_s / r.wall_s;
    results.push_back(r);

    std::printf("  shards %u:  wall %8.3f s   %12.0f events/s   speedup %5.2fx   stall %.3f\n",
                lanes, r.wall_s, r.events_per_sec, r.speedup, r.stall_fraction);
    std::fflush(stdout);  // full runs take minutes per lane count
    if (!sim.violations().empty()) {
      std::fprintf(stderr, "shards %u: %zu invariant violations\n", lanes,
                   sim.violations().size());
      return 1;
    }
  }

  std::size_t digest_mismatches = 0;
  for (const auto& r : results) {
    if (r.digest != results.front().digest) ++digest_mismatches;
  }
  std::printf("\n  digest: %s\n", results.front().digest.c_str());
  if (digest_mismatches > 0) {
    std::fprintf(stderr, "%zu lane counts diverged from the shards=1 digest\n",
                 digest_mismatches);
    for (const auto& r : results) {
      std::fprintf(stderr, "  shards %u: %s\n", r.lanes, r.digest.c_str());
    }
  }

  // Host-dependent observations (reported, never gated).
  for (const auto& r : results) {
    const std::string tag = std::to_string(r.lanes);
    harness.note("wall_s_shards" + tag, r.wall_s);
    harness.note("events_per_sec_shards" + tag, r.events_per_sec);
    harness.note("speedup_shards" + tag, r.speedup);
  }
  harness.note("transfers", transfers);
  harness.note("domains", static_cast<double>(scenario.sites.size()));
  harness.note("barriers", static_cast<double>(serial_stats.barriers));
  harness.note("messages", static_cast<double>(serial_stats.messages));
  harness.note("peak_open_sessions", static_cast<double>(serial_stats.peak_open_sessions));

  // Machine-independent gate keys: per-transfer work and protocol density
  // are pure functions of (config, seed), so any drift is an algorithmic
  // change, not host noise. digest_mismatches must stay exactly zero.
  harness.note("ratio_events_per_transfer",
               static_cast<double>(serial_stats.events_dispatched) / transfers);
  harness.note("ratio_messages_per_transfer",
               static_cast<double>(serial_stats.messages) / transfers);
  harness.note("ratio_barriers_per_kilo_transfer",
               static_cast<double>(serial_stats.barriers) / transfers * 1000.0);
  harness.note("ratio_lookahead_stall_fraction", serial_stats.stall_fraction());
  harness.note("ratio_digest_mismatches", static_cast<double>(digest_mismatches));

  return digest_mismatches == 0 ? 0 : 1;
}
