// Table XI: correlation between GridFTP bytes and the total SNMP bytes
// B_i on each monitored router, per throughput quartile.
#include <cstdio>

#include "analysis/link_utilization.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table11_snmp_correlation");

  bench::print_exhibit_header(
      "Table XI: Correlation between GridFTP bytes and total bytes B_i (NERSC-ORNL)",
      "Paper values (rt1..rt5, per quartile and All) are high -- e.g. 'All' row "
      "~0.9+ -- showing the 32GB transfers dominate total traffic on the ESnet "
      "links, surprisingly even in the lowest throughput quartile");

  const auto& result = bench::nersc_ornl_result();
  stats::Table table("corr(GridFTP transfer bytes, attributed link bytes B_i) (measured)");
  std::vector<std::string> header{"Quartile"};
  for (const auto& name : result.router_names) header.push_back(name);
  table.set_header(header);

  std::vector<analysis::LinkCorrelation> per_router;
  for (std::size_t k = 0; k < result.router_names.size(); ++k) {
    per_router.push_back(analysis::correlate_attributed(
        bench::directional_attributed_bytes(result, k), result.log));
  }
  const char* quartiles[] = {"1st Qu.", "2nd Qu.", "3rd Qu.", "4th Qu."};
  for (int q = 0; q < 4; ++q) {
    std::vector<std::string> row{quartiles[q]};
    for (const auto& lc : per_router) {
      row.push_back(bench::fmt2(lc.gridftp_vs_total.by_quartile[static_cast<std::size_t>(q)]));
    }
    table.add_row(row);
  }
  std::vector<std::string> all_row{"All"};
  for (const auto& lc : per_router) all_row.push_back(bench::fmt2(lc.gridftp_vs_total.overall));
  table.add_row(all_row);
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "High correlations reproduced: the alpha flows dominate the backbone\n"
      "byte counts -- science flows are most of the traffic on these links.\n"
      "(All 145 transfers are the same 32 GB size in this scenario, so the\n"
      "per-quartile coefficients mostly reflect cross-traffic noise; the\n"
      "'All' row carries the paper's headline result.)\n");
  return 0;
}
