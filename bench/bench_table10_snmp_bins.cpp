// Table X: SNMP byte counts within the duration of one example 32GB
// transfer (30-second bins on a monitored interface).
#include <cstdio>

#include "analysis/link_utilization.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table10_snmp_bins");

  bench::print_exhibit_header(
      "Table X: SNMP byte counts within the duration of an example 32GB transfer",
      "ESnet routers report byte counts per interface every 30 s; transfer "
      "boundaries do not align with the bins, so eq. (1) pro-rates the edge "
      "bins by overlap");

  const auto& result = bench::nersc_ornl_result();
  // Pick the longest RETR transfer as the example (more bins to show).
  const gridftp::TransferRecord* example = nullptr;
  for (const auto& r : result.log) {
    if (r.type != gridftp::TransferType::kRetrieve) continue;
    if (example == nullptr || r.duration > example->duration) example = &r;
  }
  if (example == nullptr) {
    std::printf("no RETR transfer in the scenario log\n");
    return 1;
  }
  std::printf("example transfer: start=%.1f s, duration=%.1f s, size=%.1f GB, "
              "throughput=%.2f Gbps\n\n",
              example->start_time, example->duration, to_gigabytes(example->size),
              to_gbps(example->throughput()));

  const auto& series = result.forward_series[0];  // rt1 egress
  stats::Table table("rt1 egress interface, 30 s bins overlapping the transfer");
  table.set_header({"Bin start (s)", "Bytes", "Overlap (s)", "Attributed bytes"});
  const Seconds t0 = example->start_time;
  const Seconds t1 = example->end_time();
  double total_bytes = 0.0, total_attr = 0.0;
  for (std::size_t i = 0; i < series.bins.size(); ++i) {
    const Seconds b0 = series.bin_start(i);
    const Seconds b1 = b0 + series.bin_seconds;
    if (b1 <= t0 || b0 >= t1) continue;
    const Seconds overlap = std::min(b1, t1) - std::max(b0, t0);
    const double attributed = series.bins[i] * overlap / series.bin_seconds;
    table.add_row({bench::fmt_int(b0), bench::fmt_int(series.bins[i]),
                   bench::fmt1(overlap), bench::fmt_int(attributed)});
    total_bytes += series.bins[i];
    total_attr += attributed;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("raw bin total: %s bytes; eq.(1) attributed B_i: %s bytes; "
              "transfer's own bytes: %s\n",
              bench::fmt_int(total_bytes).c_str(), bench::fmt_int(total_attr).c_str(),
              bench::fmt_int(static_cast<double>(example->size)).c_str());
  return 0;
}
