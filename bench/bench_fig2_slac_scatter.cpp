// Fig 2: throughput of SLAC-BNL transfers versus file size (scatter).
#include <cstdio>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig2_slac_scatter");

  bench::print_exhibit_header(
      "Fig 2: Throughput of SLAC-BNL transfers vs file size",
      "Considerable variance among same-size transfers; peak 2.56 Gbps at "
      "302.5 MB; 84.615% of transfers multi-stream");

  const auto& log = bench::slac_log();

  // Summarize the scatter by size decade (a faithful rendering of a
  // million-point cloud in text form).
  struct Decade {
    Bytes lo, hi;
    const char* label;
  };
  const Decade decades[] = {
      {0, MiB, "< 1 MB"},
      {MiB, 10 * MiB, "1-10 MB"},
      {10 * MiB, 100 * MiB, "10-100 MB"},
      {100 * MiB, GiB, "100 MB-1 GB"},
      {GiB, 4 * GiB, "1-4 GB"},
  };
  stats::Table table("Throughput by size decade (Mbps, measured)");
  table.set_header(
      analysis::summary_header("Size range", /*with_stddev=*/false, /*with_count=*/true));
  for (const auto& d : decades) {
    std::vector<double> v;
    for (const auto& r : log) {
      if (r.size >= d.lo && r.size < d.hi) v.push_back(to_mbps(r.throughput()));
    }
    if (v.empty()) continue;
    table.add_row(analysis::summary_row(d.label, stats::summarize(v), 1, false, true));
  }
  std::printf("%s\n", table.render().c_str());

  // Peak transfer.
  const gridftp::TransferRecord* peak = &log.front();
  for (const auto& r : log) {
    if (r.throughput() > peak->throughput()) peak = &r;
  }
  std::printf("peak transfer: %.2f Gbps at size %.1f MB with %d streams "
              "(paper: 2.56 Gbps at 302.5 MB)\n\n",
              to_gbps(peak->throughput()), to_megabytes(peak->size), peak->streams);

  // ASCII scatter of a systematic sample.
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < log.size(); i += std::max<std::size_t>(1, log.size() / 1500)) {
    if (log[i].size >= 4 * GiB) continue;
    xs.push_back(to_megabytes(log[i].size));
    ys.push_back(to_mbps(log[i].throughput()));
  }
  std::printf("%s", analysis::ascii_series(xs, ys, 72, 18, "file size (MB)",
                                           "throughput (Mbps)")
                        .c_str());
  return 0;
}
