// Micro-benchmarks of the hot substrate operations (google-benchmark):
// the max-min allocator, session grouping, the bandwidth calendar, the
// TCP model, and trace synthesis throughput.
#include <benchmark/benchmark.h>

#include "analysis/session_grouping.hpp"
#include "common/rng.hpp"
#include "net/fair_share.hpp"
#include "net/tcp_model.hpp"
#include "vc/bandwidth_calendar.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"
#include "workload/testbed.hpp"

namespace {

using namespace gridvc;

void BM_MaxMinAllocate(benchmark::State& state) {
  const auto tb = workload::build_esnet_testbed();
  Rng rng(1);
  std::vector<net::FlowDemand> flows;
  const net::NodeId hosts[] = {tb.ncar, tb.nics, tb.slac, tb.bnl, tb.nersc, tb.ornl,
                               tb.anl};
  for (int i = 0; i < state.range(0); ++i) {
    net::NodeId a = hosts[rng.uniform_int(0, 6)];
    net::NodeId b;
    do {
      b = hosts[rng.uniform_int(0, 6)];
    } while (a == b);
    net::FlowDemand d;
    d.path = *net::shortest_path(tb.topo, a, b);
    d.cap = rng.bernoulli(0.5) ? mbps(rng.uniform(100.0, 4000.0)) : 0.0;
    flows.push_back(std::move(d));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::max_min_allocate(tb.topo, flows));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MaxMinAllocate)->Arg(8)->Arg(64)->Arg(256);

void BM_SessionGrouping(benchmark::State& state) {
  auto profile = workload::slac_bnl_profile(
      static_cast<double>(state.range(0)) / 1021999.0);
  const auto log = workload::synthesize_trace(profile, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::group_sessions(log, {.gap = 60.0}));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.size()));
}
BENCHMARK(BM_SessionGrouping)->Arg(10000)->Arg(100000);

void BM_CalendarBookRelease(benchmark::State& state) {
  const auto tb = workload::build_esnet_testbed();
  vc::BandwidthCalendar cal(tb.topo);
  const auto path = *net::shortest_path(tb.topo, tb.nersc, tb.ornl);
  Rng rng(5);
  for (auto _ : state) {
    const double t0 = rng.uniform(0.0, 1e6);
    const double t1 = t0 + rng.uniform(60.0, 3600.0);
    if (cal.fits(path, t0, t1, mbps(500))) {
      const auto id = cal.book(path, t0, t1, mbps(500));
      cal.release(id);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalendarBookRelease);

void BM_TcpTransferDuration(benchmark::State& state) {
  net::TcpConfig cfg;
  cfg.ssthresh_per_stream = 192 * KiB;
  cfg.ca_mss_per_rtt = 4.0;
  const net::TcpModel tcp(cfg);
  Rng rng(7);
  for (auto _ : state) {
    const Bytes size = static_cast<Bytes>(rng.uniform(1e5, 4e9));
    benchmark::DoNotOptimize(
        tcp.transfer_duration(size, 8, 0.08, mbps(rng.uniform(10.0, 2000.0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpTransferDuration);

void BM_TraceSynthesis(benchmark::State& state) {
  auto profile = workload::slac_bnl_profile(
      static_cast<double>(state.range(0)) / 1021999.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::synthesize_trace(profile, 9));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(profile.target_transfers));
}
BENCHMARK(BM_TraceSynthesis)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
