// Micro-benchmarks of the hot substrate operations (google-benchmark):
// the max-min allocator, session grouping, the bandwidth calendar, the
// TCP model, trace synthesis throughput, and the simulator/network
// scheduling path under heavy flow concurrency.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "analysis/session_grouping.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "gridftp/transfer_engine.hpp"
#include "gridftp/usage_stats.hpp"
#include "net/fair_share.hpp"
#include "net/network.hpp"
#include "net/tcp_model.hpp"
#include "obs/profile_io.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "vc/bandwidth_calendar.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"
#include "workload/testbed.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace gridvc;

void BM_MaxMinAllocate(benchmark::State& state) {
  const auto tb = workload::build_esnet_testbed();
  Rng rng(1);
  std::vector<net::FlowDemand> flows;
  const net::NodeId hosts[] = {tb.ncar, tb.nics, tb.slac, tb.bnl, tb.nersc, tb.ornl,
                               tb.anl};
  for (int i = 0; i < state.range(0); ++i) {
    net::NodeId a = hosts[rng.uniform_int(0, 6)];
    net::NodeId b;
    do {
      b = hosts[rng.uniform_int(0, 6)];
    } while (a == b);
    net::FlowDemand d;
    d.path = *net::shortest_path(tb.topo, a, b);
    d.cap = rng.bernoulli(0.5) ? mbps(rng.uniform(100.0, 4000.0)) : 0.0;
    flows.push_back(std::move(d));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::max_min_allocate(tb.topo, flows));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MaxMinAllocate)->Arg(8)->Arg(64)->Arg(256);

void BM_SessionGrouping(benchmark::State& state) {
  auto profile = workload::slac_bnl_profile(
      static_cast<double>(state.range(0)) / 1021999.0);
  const auto log = workload::synthesize_trace(profile, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::group_sessions(log, {.gap = 60.0}));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.size()));
}
BENCHMARK(BM_SessionGrouping)->Arg(10000)->Arg(100000);

void BM_CalendarBookRelease(benchmark::State& state) {
  const auto tb = workload::build_esnet_testbed();
  vc::BandwidthCalendar cal(tb.topo);
  const auto path = *net::shortest_path(tb.topo, tb.nersc, tb.ornl);
  Rng rng(5);
  for (auto _ : state) {
    const double t0 = rng.uniform(0.0, 1e6);
    const double t1 = t0 + rng.uniform(60.0, 3600.0);
    if (cal.fits(path, t0, t1, mbps(500))) {
      const auto id = cal.book(path, t0, t1, mbps(500));
      cal.release(id);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalendarBookRelease);

void BM_TcpTransferDuration(benchmark::State& state) {
  net::TcpConfig cfg;
  cfg.ssthresh_per_stream = 192 * KiB;
  cfg.ca_mss_per_rtt = 4.0;
  const net::TcpModel tcp(cfg);
  Rng rng(7);
  for (auto _ : state) {
    const Bytes size = static_cast<Bytes>(rng.uniform(1e5, 4e9));
    benchmark::DoNotOptimize(
        tcp.transfer_duration(size, 8, 0.08, mbps(rng.uniform(10.0, 2000.0))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpTransferDuration);

void BM_TraceSynthesis(benchmark::State& state) {
  auto profile = workload::slac_bnl_profile(
      static_cast<double>(state.range(0)) / 1021999.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::synthesize_trace(profile, 9));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(profile.target_transfers));
}
BENCHMARK(BM_TraceSynthesis)->Arg(10000)->Arg(100000);

// Concurrency-heavy scheduling scenario: hundreds of long, overlapping,
// cap-limited flows on the NERSC-ANL path. This is the regime where the
// incremental recompute pays off — an arrival or completion leaves most
// other flows' rates untouched, so their completion events must not be
// cancelled and re-pushed. The counters report event churn per completed
// flow; wall time is the google-benchmark measurement.
void BM_NetworkConcurrentFlows(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tb = workload::build_esnet_testbed();
  const net::Path path = tb.path(tb.nersc, tb.anl);
  std::uint64_t scheduled = 0, cancelled = 0, recomputes = 0, completed = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network network(sim, tb.topo);
    Rng rng(bench::kSeed);
    std::uint64_t done = 0;
    for (int i = 0; i < n; ++i) {
      // Arrivals over one minute; 0.5-2 GB at a 10-25 Mbps cap keeps each
      // flow alive for minutes, so essentially all n flows overlap while
      // total demand stays below the 10 Gbps backbone.
      const Seconds at = rng.uniform(0.0, 60.0);
      const Bytes size = static_cast<Bytes>(rng.uniform(5e8, 2e9));
      net::FlowOptions opts;
      opts.cap = mbps(rng.uniform(10.0, 25.0));
      sim.schedule_at(at, [&network, &done, &path, size, opts] {
        network.start_flow(path, size, opts,
                           [&done](const net::FlowRecord&) { ++done; });
      });
    }
    sim.run();
    const bench::ObsDeltas d = bench::read_obs_deltas(sim);
    scheduled += static_cast<std::uint64_t>(d.scheduled);
    cancelled += static_cast<std::uint64_t>(d.cancelled);
    recomputes += static_cast<std::uint64_t>(d.recomputes);
    completed += done;
  }
  state.counters["sched_per_flow"] =
      static_cast<double>(scheduled) / static_cast<double>(completed);
  state.counters["cancel_per_flow"] =
      static_cast<double>(cancelled) / static_cast<double>(completed);
  state.counters["recompute_per_flow"] =
      static_cast<double>(recomputes) / static_cast<double>(completed);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NetworkConcurrentFlows)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

// The same regime through the full GridFTP engine: server shares shrink
// and grow as transfers register/deregister, so every submit/finish pushes
// refreshed caps into the network — the recompute storm the incremental
// diff exists to absorb.
// `traced` attaches a ring-buffer trace sink, measuring the
// observability overhead against the untraced run (the acceptance bar is
// <5%; compiling with GRIDVC_OBS_NO_TRACE removes even the null-pointer
// branch and is the true no-op baseline).
void run_engine_concurrent(benchmark::State& state, bool traced) {
  const int n = static_cast<int>(state.range(0));
  const auto tb = workload::build_esnet_testbed();
  bench::ObsDeltas deltas;
  std::uint64_t completed = 0;
  std::uint64_t trace_events = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    obs::RingBufferTraceSink ring(1024);
    if (traced) sim.obs().set_trace_sink(&ring);
    net::Network network(sim, tb.topo);
    gridftp::ServerConfig sc;
    sc.nic_rate = gbps(10);
    sc.pool_size = 4;
    sc.name = "nersc-dtn";
    gridftp::Server src(sc);
    sc.name = "anl-dtn";
    gridftp::Server dst(sc);
    gridftp::UsageStatsCollector collector;
    gridftp::TransferEngineConfig cfg;
    cfg.server_noise_sigma = 0.25;
    gridftp::TransferEngine engine(network, collector, cfg, Rng(bench::kSeed));
    gridftp::TransferSpec proto;
    proto.src = {&src, gridftp::IoMode::kMemory};
    proto.dst = {&dst, gridftp::IoMode::kMemory};
    proto.path = tb.path(tb.nersc, tb.anl);
    proto.rtt = tb.rtt(tb.nersc, tb.anl);
    proto.streams = 4;
    proto.remote_host = "anl";
    Rng rng(bench::kSeed ^ 1);
    for (int i = 0; i < n; ++i) {
      gridftp::TransferSpec s = proto;
      const Seconds at = rng.uniform(0.0, 120.0);
      s.size = static_cast<Bytes>(rng.uniform(1e8, 4e9));
      s.stripes = static_cast<int>(rng.uniform_int(1, 4));
      sim.schedule_at(at, [&engine, s] { engine.submit(s); });
    }
    sim.run();
    const bench::ObsDeltas d = bench::read_obs_deltas(sim);
    deltas.scheduled += d.scheduled;
    deltas.cancelled += d.cancelled;
    deltas.recomputes += d.recomputes;
    deltas.rate_changes += d.rate_changes;
    completed += engine.stats().completed;
    trace_events += ring.total_emitted();
  }
  const double done = static_cast<double>(completed);
  state.counters["sched_per_flow"] = deltas.scheduled / done;
  state.counters["cancel_per_flow"] = deltas.cancelled / done;
  state.counters["recompute_per_flow"] = deltas.recomputes / done;
  state.counters["rate_chg_per_flow"] = deltas.rate_changes / done;
  if (traced) {
    state.counters["trace_ev_per_flow"] = static_cast<double>(trace_events) / done;
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_EngineConcurrentTransfers(benchmark::State& state) {
  run_engine_concurrent(state, /*traced=*/false);
}
BENCHMARK(BM_EngineConcurrentTransfers)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_EngineConcurrentTransfersTraced(benchmark::State& state) {
  run_engine_concurrent(state, /*traced=*/true);
}
BENCHMARK(BM_EngineConcurrentTransfersTraced)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMillisecond);


// Steady-state allocator hot path: caller-owned workspace, borrowed
// paths. The heap counter must read zero per call once the workspace is
// warm — that is the whole point of the FlowDemandRef/AllocWorkspace API.
void BM_MaxMinAllocateWorkspace(benchmark::State& state) {
  const auto tb = workload::build_esnet_testbed();
  Rng rng(1);
  std::vector<net::Path> paths;
  std::vector<net::FlowDemandRef> demands;
  const net::NodeId hosts[] = {tb.ncar, tb.nics, tb.slac, tb.bnl, tb.nersc, tb.ornl,
                               tb.anl};
  for (int i = 0; i < state.range(0); ++i) {
    net::NodeId a = hosts[rng.uniform_int(0, 6)];
    net::NodeId b;
    do {
      b = hosts[rng.uniform_int(0, 6)];
    } while (a == b);
    paths.push_back(*net::shortest_path(tb.topo, a, b));
  }
  for (const auto& p : paths) {
    net::FlowDemandRef d;
    d.path = &p;
    d.cap = rng.bernoulli(0.5) ? mbps(rng.uniform(100.0, 4000.0)) : 0.0;
    demands.push_back(d);
  }
  const std::vector<char> link_up(tb.topo.link_count(), 1);
  net::AllocWorkspace ws;
  // Warm-up: first call sizes the workspace vectors.
  benchmark::DoNotOptimize(net::max_min_allocate(tb.topo, demands, link_up, ws));
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(net::max_min_allocate(tb.topo, demands, link_up, ws));
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
  }
  state.counters["heap_allocs_per_call"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MaxMinAllocateWorkspace)->Arg(64)->Arg(256);

// Synthesis throughput across execution-pool widths. On a multicore
// machine transfers/s should scale with the Arg; the output is
// byte-identical at every width (pinned by test_exec).
void BM_SynthThroughput(benchmark::State& state) {
  exec::set_default_threads(static_cast<unsigned>(state.range(0)));
  const auto profile = workload::slac_bnl_profile(20000.0 / 1021999.0);
  for (auto _ : state) {
    const auto log = workload::synthesize_trace(profile, 9);
    benchmark::DoNotOptimize(log.data());
  }
  state.counters["threads"] = static_cast<double>(exec::default_threads());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(profile.target_transfers));
  exec::set_default_threads(0);
}
BENCHMARK(BM_SynthThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Calendar point/window queries against a populated profile: these are
// the binary-search paths the prefix-level cache exists for.
void BM_CalendarPeakQuery(benchmark::State& state) {
  const auto tb = workload::build_esnet_testbed();
  vc::BandwidthCalendar cal(tb.topo);
  const auto path = *net::shortest_path(tb.topo, tb.nersc, tb.ornl);
  Rng rng(11);
  for (int i = 0; i < state.range(0); ++i) {
    const double t0 = rng.uniform(0.0, 1e6);
    const double t1 = t0 + rng.uniform(60.0, 3600.0);
    if (cal.fits(path, t0, t1, mbps(40))) cal.book(path, t0, t1, mbps(40));
  }
  const net::LinkId link = path.front();
  for (auto _ : state) {
    const double t0 = rng.uniform(0.0, 1e6);
    benchmark::DoNotOptimize(cal.available(link, t0, t0 + 600.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalendarPeakQuery)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Scale curves (--scale): hand-rolled timing sweeps of the calendar and
// max-min hot paths across reservation/flow counts, emitted as
// BENCH_perf_scale.json and gated in CI by gridvc-perf-gate against the
// checked-in baseline. Unlike the google-benchmark microbenches above,
// these measure the *growth* of µs/op with structure size — the curve
// that distinguishes the O(log n) calendar from a linear rebuild.

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScaleReport {
  std::vector<std::pair<std::string, double>> counters;
  void note(const std::string& key, double value) { counters.emplace_back(key, value); }
  double get(const std::string& key) const {
    for (const auto& [k, v] : counters) {
      if (k == key) return v;
    }
    return 0.0;
  }
};

// Steady-state calendar churn at `n` live reservations: book one, release
// a random one, so the structure size stays pinned while we time the
// admit/free pair. A separate pass times windowed availability queries.
void scale_calendar(std::size_t n, ScaleReport& report) {
  net::Topology topo;
  const net::NodeId a = topo.add_node("a", net::NodeKind::kHost);
  const net::NodeId b = topo.add_node("b", net::NodeKind::kHost);
  // Capacity far above the expected reserved peak: we are timing the
  // structure, not admission rejects.
  const net::LinkId link = topo.add_link(a, b, gbps(100000), 0.001);
  vc::BandwidthCalendar cal(topo);
  const net::Path path{link};
  Rng rng(bench::kSeed ^ n);
  auto draw_window = [&rng](double& t0, double& t1) {
    t0 = rng.uniform(0.0, 1e6);
    t1 = t0 + rng.uniform(60.0, 3600.0);
  };
  std::vector<vc::ReservationId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double t0, t1;
    draw_window(t0, t1);
    ids.push_back(cal.book(path, t0, t1, mbps(rng.uniform(1.0, 100.0))));
  }
  // Best of several repetitions: the curve is a property of the data
  // structure, and the minimum is the measurement least polluted by
  // whatever else the machine was doing.
  const std::size_t ops = 20000;
  const int reps = 5;
  double admit_free_us = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double start = now_us();
    for (std::size_t i = 0; i < ops; ++i) {
      double t0, t1;
      draw_window(t0, t1);
      const auto id = cal.book(path, t0, t1, mbps(rng.uniform(1.0, 100.0)));
      const std::size_t victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
      cal.release(ids[victim]);
      ids[victim] = id;
    }
    admit_free_us = std::min(admit_free_us,
                             (now_us() - start) / (2.0 * static_cast<double>(ops)));
  }

  const std::size_t queries = 50000;
  double sink = 0.0;
  double query_us = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const double qstart = now_us();
    for (std::size_t i = 0; i < queries; ++i) {
      const double t0 = rng.uniform(0.0, 1e6);
      sink += cal.available(link, t0, t0 + 600.0);
    }
    query_us = std::min(query_us, (now_us() - qstart) / static_cast<double>(queries));
  }
  benchmark::DoNotOptimize(sink);

  const std::string suffix = "_n" + std::to_string(n);
  report.note("calendar_admit_free_us" + suffix, admit_free_us);
  report.note("calendar_query_us" + suffix, query_us);
  std::printf("  calendar  n=%8zu   admit+free %8.3f us/op   query %8.3f us/op\n", n,
              admit_free_us, query_us);
}

// Full max-min recompute at `n` concurrent flows on the ESnet testbed.
// Paths are memoized per host pair (42 pairs), mirroring how the Network
// borrows stable path storage per flow.
void scale_maxmin(std::size_t n, ScaleReport& report) {
  const auto tb = workload::build_esnet_testbed();
  const net::NodeId hosts[] = {tb.ncar, tb.nics, tb.slac, tb.bnl, tb.nersc, tb.ornl,
                               tb.anl};
  std::vector<net::Path> pair_paths;
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 7; ++j) {
      if (i == j) continue;
      pairs.emplace_back(i, j);
      pair_paths.push_back(*net::shortest_path(tb.topo, hosts[i], hosts[j]));
    }
  }
  Rng rng(bench::kSeed ^ (n * 31));
  std::vector<net::FlowDemandRef> demands;
  demands.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::FlowDemandRef d;
    d.path = &pair_paths[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pair_paths.size()) - 1))];
    d.cap = rng.bernoulli(0.5) ? mbps(rng.uniform(100.0, 4000.0)) : 0.0;
    demands.push_back(d);
  }
  const std::vector<char> link_up(tb.topo.link_count(), 1);
  net::AllocWorkspace ws;
  benchmark::DoNotOptimize(net::max_min_allocate(tb.topo, demands, link_up, ws));
  // Best of several repetition blocks (see scale_calendar).
  const std::size_t calls = std::max<std::size_t>(2, 1000000 / n);
  double per_call_us = std::numeric_limits<double>::infinity();
  for (int r = 0; r < 3; ++r) {
    const double start = now_us();
    for (std::size_t c = 0; c < calls; ++c) {
      benchmark::DoNotOptimize(net::max_min_allocate(tb.topo, demands, link_up, ws));
    }
    per_call_us = std::min(per_call_us, (now_us() - start) / static_cast<double>(calls));
  }
  const double per_flow_us = per_call_us / static_cast<double>(n);
  const std::string suffix = "_n" + std::to_string(n);
  report.note("maxmin_recompute_us" + suffix, per_call_us);
  report.note("maxmin_us_per_flow" + suffix, per_flow_us);
  std::printf("  maxmin    n=%8zu   recompute %10.1f us/call   %8.4f us/flow\n", n,
              per_call_us, per_flow_us);
}

int run_scale(bool full, const std::string& json_path) {
  std::vector<std::size_t> sizes{1000, 10000, 100000};
  if (full) sizes.push_back(1000000);
  std::printf("perf_scale: calendar admit/free/query and max-min recompute curves\n");
  ScaleReport report;
  const double wall_start = now_us();
  for (const std::size_t n : sizes) scale_calendar(n, report);
  for (const std::size_t n : sizes) scale_maxmin(n, report);

  // Scaling ratios from 10k up to the largest size measured: the gated
  // signal. An O(log n) admit/free grows ~1.5x from 10k to 1M; a linear
  // rebuild grows ~100x. Per-flow max-min cost should stay flat.
  const std::size_t top = sizes.back();
  const auto ratio = [&](const std::string& stem) {
    const double at_10k = report.get(stem + "_n10000");
    const double at_top = report.get(stem + "_n" + std::to_string(top));
    return at_10k > 0.0 ? at_top / at_10k : 0.0;
  };
  report.note("ratio_calendar_admit_free_10k_to_top", ratio("calendar_admit_free_us"));
  report.note("ratio_calendar_query_10k_to_top", ratio("calendar_query_us"));
  report.note("ratio_maxmin_us_per_flow_10k_to_top", ratio("maxmin_us_per_flow"));
  report.note("scale_top_n", static_cast<double>(top));
  std::printf("  ratios (10k -> %zu): admit+free %.2fx  query %.2fx  maxmin/flow %.2fx\n",
              top, report.get("ratio_calendar_admit_free_10k_to_top"),
              report.get("ratio_calendar_query_10k_to_top"),
              report.get("ratio_maxmin_us_per_flow_10k_to_top"));

  const double wall = (now_us() - wall_start) / 1e6;
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "perf_scale: cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"exhibit\": \"perf_scale\",\n  \"wall_seconds\": " << wall
      << ",\n  \"counters\": {";
  for (std::size_t i = 0; i < report.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << report.counters[i].first
        << "\": " << report.counters[i].second;
  }
  out << "\n  }\n}\n";
  std::printf("perf_scale: wrote %s\n", json_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Profiler overhead gate (--prof-gate): the same instrumented workload
// timed with the zone profiler disabled and enabled, interleaved
// best-of-reps so machine noise hits both sides equally. The CI
// acceptance bar is <5% wall-clock overhead enabled; disabled, a zone is
// one relaxed atomic load.

constexpr double kProfGateLimit = 1.05;

// Calendar churn, trace synthesis, and a full engine run: touches every
// GRIDVC_PROF_ZONE on the simulation hot path (sim dispatch, net
// recompute/max-min, calendar book/release, engine phases) mixed with
// the un-instrumented compute the full suite also spends time in, so
// the ratio reflects a representative workload rather than a pure
// zone-entry stress loop.
void prof_gate_workload() {
  const auto tb = workload::build_esnet_testbed();
  Rng rng(bench::kSeed ^ 77);
  {
    const auto profile = workload::slac_bnl_profile(20000.0 / 1021999.0);
    const auto log = workload::synthesize_trace(profile, 9);
    benchmark::DoNotOptimize(log.data());
  }
  {
    vc::BandwidthCalendar cal(tb.topo);
    const auto path = *net::shortest_path(tb.topo, tb.nersc, tb.ornl);
    std::vector<vc::ReservationId> ids;
    for (int i = 0; i < 20000; ++i) {
      const double t0 = rng.uniform(0.0, 1e6);
      const double t1 = t0 + rng.uniform(60.0, 3600.0);
      if (!cal.fits(path, t0, t1, mbps(40))) continue;
      ids.push_back(cal.book(path, t0, t1, mbps(40)));
      if (ids.size() > 512) {
        cal.release(ids.back());
        ids.pop_back();
      }
    }
    for (const auto id : ids) cal.release(id);
  }

  sim::Simulator sim;
  net::Network network(sim, tb.topo);
  gridftp::ServerConfig sc;
  sc.nic_rate = gbps(10);
  sc.pool_size = 4;
  sc.name = "nersc-dtn";
  gridftp::Server src(sc);
  sc.name = "anl-dtn";
  gridftp::Server dst(sc);
  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig cfg;
  cfg.server_noise_sigma = 0.25;
  gridftp::TransferEngine engine(network, collector, cfg, Rng(bench::kSeed));
  gridftp::TransferSpec proto;
  proto.src = {&src, gridftp::IoMode::kMemory};
  proto.dst = {&dst, gridftp::IoMode::kMemory};
  proto.path = tb.path(tb.nersc, tb.anl);
  proto.rtt = tb.rtt(tb.nersc, tb.anl);
  proto.streams = 4;
  proto.remote_host = "anl";
  for (int i = 0; i < 150; ++i) {
    gridftp::TransferSpec s = proto;
    const Seconds at = rng.uniform(0.0, 120.0);
    s.size = static_cast<Bytes>(rng.uniform(1e8, 4e9));
    s.stripes = static_cast<int>(rng.uniform_int(1, 4));
    sim.schedule_at(at, [&engine, s] { engine.submit(s); });
  }
  sim.run();
  benchmark::DoNotOptimize(engine.stats().completed);
}

int run_prof_gate() {
#ifdef GRIDVC_PROF_DISABLED
  std::printf("prof_gate: zones compiled out (GRIDVC_PROFILING=OFF); nothing to gate\n");
  return 0;
#else
  prof_gate_workload();  // warm-up: fault in code paths and testbed data
  const int reps = 5;
  double best_off = std::numeric_limits<double>::infinity();
  double best_on = best_off;
  for (int r = 0; r < reps; ++r) {
    obs::Profiler::disable();
    double start = now_us();
    prof_gate_workload();
    best_off = std::min(best_off, now_us() - start);

    obs::Profiler::enable();
    start = now_us();
    prof_gate_workload();
    best_on = std::min(best_on, now_us() - start);
    obs::Profiler::disable();
  }
  (void)obs::Profiler::collect();  // drain the per-thread sample rings
  const double ratio = best_on / best_off;
  std::printf("prof_gate: disabled %.1f ms  enabled %.1f ms  ratio %.4f (limit %.2f)\n",
              best_off / 1e3, best_on / 1e3, ratio, kProfGateLimit);
  if (ratio > kProfGateLimit) {
    std::fprintf(stderr, "prof_gate: profiling overhead %.1f%% exceeds %.0f%%\n",
                 (ratio - 1.0) * 100.0, (kProfGateLimit - 1.0) * 100.0);
    return 1;
  }
  return 0;
#endif
}

}  // namespace

// Custom main: --quick caps google-benchmark's sampling time for CI
// smoke runs, --threads pins the execution pool (BM_SynthThroughput
// overrides it per-Arg), --scale [--scale-full] [--scale-out PATH]
// runs the calendar/max-min scale sweeps instead of google-benchmark,
// --prof-gate runs the profiler overhead check, and --profile-out
// enables the zone profiler for the whole run and writes a Chrome
// trace-event JSON profile; everything else passes through to benchmark.
int main(int argc, char** argv) {
  bool scale = false;
  bool scale_full = false;
  bool prof_gate = false;
  std::string scale_out = "BENCH_perf_scale.json";
  std::string profile_out;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc) + 1);
  passthrough.push_back(argv[0]);
  static char quick_flag[] = "--benchmark_min_time=0.05";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      scale = true;
    } else if (std::strcmp(argv[i], "--scale-full") == 0) {
      scale = true;
      scale_full = true;
    } else if (std::strcmp(argv[i], "--scale-out") == 0 && i + 1 < argc) {
      scale_out = argv[++i];
    } else if (std::strcmp(argv[i], "--prof-gate") == 0) {
      prof_gate = true;
    } else if (std::strcmp(argv[i], "--profile-out") == 0 && i + 1 < argc) {
      profile_out = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      passthrough.push_back(quick_flag);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      gridvc::exec::set_default_threads(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (prof_gate) return run_prof_gate();
  gridvc::obs::ProfileScope profile;
  if (!profile_out.empty()) profile.arm(profile_out);
  if (scale) return run_scale(scale_full, scale_out);
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
