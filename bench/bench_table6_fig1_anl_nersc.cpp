// Table VI + Fig 1: throughput of the ANL->NERSC test transfers by type
// (mem->mem / mem->disk / disk->mem / disk->disk), with CV row and the
// box plots of Fig 1.
#include <cstdio>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "stats/boxplot.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

using namespace gridvc;

namespace {

std::vector<double> throughputs(const gridftp::TransferLog& log,
                                const std::vector<std::size_t>& idx) {
  std::vector<double> v;
  v.reserve(idx.size());
  for (std::size_t i : idx) v.push_back(to_mbps(log[i].throughput()));
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "table6_fig1_anl_nersc");
  harness.note_metrics(bench::anl_nersc_result().metrics);

  bench::print_exhibit_header(
      "Table VI + Fig 1: Throughput of ANL-NERSC transfers (Mbps)",
      "334 tests: mem-mem 84, mem-disk 78, disk-mem 87, disk-disk 85. CVs: "
      "35.69% / 31.63% / 30.80% / 33.10%. Fig 1: the NERSC disk I/O system is "
      "the bottleneck -- mem->disk and disk->disk show lower medians");

  const auto& result = bench::anl_nersc_result();
  const struct {
    const char* label;
    const std::vector<std::size_t>* idx;
  } classes[] = {
      {"mem-mem", &result.mem_mem},
      {"mem-disk", &result.mem_disk},
      {"disk-mem", &result.disk_mem},
      {"disk-disk", &result.disk_disk},
  };

  stats::Table table("ANL->NERSC test transfers by type (measured)");
  auto header = analysis::summary_header("Type", /*with_stddev=*/false,
                                         /*with_count=*/true);
  header.push_back("CV");
  table.set_header(header);
  std::vector<stats::BoxGroup> groups;
  for (const auto& c : classes) {
    const auto v = throughputs(result.all_log, *c.idx);
    const auto s = stats::summarize(v);
    auto row = analysis::summary_row(c.label, s, 1, false, true);
    row.push_back(format_percent(s.cv(), 2));
    table.add_row(row);
    groups.push_back({c.label, stats::box_stats(v)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Fig 1 (box plots, throughput in Mbps; M = median, [==] = IQR):\n%s\n",
              stats::render_boxplots(groups).c_str());
  std::printf(
      "Disk-destination classes (mem->disk, disk->disk) sit below the\n"
      "memory-destination classes: the NERSC disk *write* path is the\n"
      "bottleneck, exactly the Fig 1 reading.\n");
  return 0;
}
