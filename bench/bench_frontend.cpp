// Multi-tenant admission front-end under overload.
//
// Three tenants with DRR weights 1/2/4 submit identical 256 MiB tasks
// through the admission front-end at 1x/5x/10x the backend's service
// capacity (equal offered load per tenant). The exhibit shows the
// overload curve the front-end is supposed to produce: at 1x everything
// is accepted and queue waits are negligible; past saturation the
// queued-bytes quotas turn the excess into fast rejections (not
// unbounded queues), and the DRR dispatcher splits the backend's
// capacity by weight, so the weight-4 tenant completes ~4x the weight-1
// tenant's work off the same offered load.
//
// The emitted BENCH_frontend.json carries machine-independent ratio_*
// keys (rejection fractions, weight-share fairness error, p99 queue
// wait normalized by the horizon — all in sim time, so identical on any
// host) that gridvc-perf-gate compares against the checked-in baseline.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "frontend/admission.hpp"
#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "stats/table.hpp"

using namespace gridvc;

namespace {

constexpr Bytes kTaskBytes = 256 * MiB;
constexpr Seconds kHorizon = 600.0;
constexpr double kWeights[3] = {1.0, 2.0, 4.0};

/// Collects per-dispatch queue waits from the trace stream.
class WaitSink final : public obs::TraceSink {
 public:
  void emit(const obs::TraceEvent& event) override {
    if (event.type == obs::TraceEventType::kFrontDispatch) {
      waits_.push_back(event.value);
    }
  }
  std::vector<double>& waits() { return waits_; }

 private:
  std::vector<double> waits_;
};

struct LoadOutcome {
  frontend::TenantStats tenant[3];
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  double p99_wait = 0.0;
};

LoadOutcome run_load(double multiplier) {
  sim::Simulator sim;
  WaitSink waits;
  sim.obs().set_trace_sink(&waits);

  net::Topology topo;
  const auto a = topo.add_node("a", net::NodeKind::kHost);
  const auto b = topo.add_node("b", net::NodeKind::kHost);
  const auto ab = topo.add_link(a, b, gbps(10), 0.005);
  net::Network network(sim, topo);

  gridftp::ServerConfig sc;
  sc.name = "src";
  sc.nic_rate = gbps(8);
  gridftp::Server src(sc);
  sc.name = "dst";
  gridftp::Server dst(sc);
  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig ecfg;
  ecfg.server_noise_sigma = 0.0;
  gridftp::TransferEngine engine(network, collector, ecfg, Rng(bench::kSeed));

  gridftp::TransferServiceConfig scfg;
  scfg.max_active_tasks = 4;
  scfg.queue_limit = 0;  // all waiting happens in the front-end
  gridftp::TransferService service(sim, engine, scfg);

  frontend::FrontEndConfig fcfg;
  for (int t = 0; t < 3; ++t) {
    frontend::TenantConfig tc;
    tc.name = "w" + std::to_string(static_cast<int>(kWeights[t]));
    tc.weight = kWeights[t];
    tc.max_queued_bytes = 2 * GiB;  // overload becomes rejection, not backlog
    fcfg.tenants.push_back(tc);
  }
  frontend::FrontEnd front(sim, service, fcfg);

  gridftp::TransferSpec tmpl;
  tmpl.src = {&src, gridftp::IoMode::kMemory};
  tmpl.dst = {&dst, gridftp::IoMode::kMemory};
  tmpl.path = {ab};
  tmpl.rtt = 0.01;
  tmpl.streams = 8;
  tmpl.remote_host = "b";

  // Aggregate service capacity is NIC-bound: tasks/sec = nic / task size.
  const double capacity = gbps(8) / 8.0 / static_cast<double>(kTaskBytes);
  const double per_tenant_rate = multiplier * capacity / 3.0;

  std::uint64_t sessions[3];
  for (int t = 0; t < 3; ++t) {
    sessions[t] = front.connect(fcfg.tenants[t].name);
  }
  const std::vector<Bytes> files = {kTaskBytes};
  for (int t = 0; t < 3; ++t) {
    Rng rng(bench::kSeed ^ (0x9E3779B9ULL * static_cast<std::uint64_t>(t + 1)));
    Seconds when = rng.exponential(1.0 / per_tenant_rate);
    while (when < kHorizon) {
      sim.schedule_at(when, [&front, &tmpl, &files, session = sessions[t]] {
        front.submit(session, "bench", files, tmpl);
      });
      when += rng.exponential(1.0 / per_tenant_rate);
    }
  }

  sim.run();  // horizon + drain of the bounded backlog

  LoadOutcome out;
  for (int t = 0; t < 3; ++t) {
    out.tenant[t] = front.tenant_stats(fcfg.tenants[t].name);
    out.submitted += out.tenant[t].submitted;
    out.rejected += out.tenant[t].rejected;
  }
  std::vector<double>& w = waits.waits();
  if (!w.empty()) {
    std::sort(w.begin(), w.end());
    out.p99_wait = w[static_cast<std::size_t>(
        static_cast<double>(w.size() - 1) * 0.99)];
  }
  sim.obs().set_trace_sink(nullptr);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "frontend");
  bench::print_exhibit_header(
      "frontend overload curve",
      "multi-tenant admission: weighted fairness + quota-bounded rejection");

  stats::Table table("Multi-tenant overload curve (sim time, deterministic)");
  table.set_header({"load", "tenant", "weight", "submitted", "accept rate",
                    "rejected", "dispatched", "p99 wait (s)"});
  for (const double load : {1.0, 5.0, 10.0}) {
    const LoadOutcome out = run_load(load);
    const std::string suffix = "load" + std::to_string(static_cast<int>(load));

    std::uint64_t dispatched_total = 0;
    for (int t = 0; t < 3; ++t) dispatched_total += out.tenant[t].dispatched;
    double share_err = 0.0;
    const double weight_sum = kWeights[0] + kWeights[1] + kWeights[2];
    for (int t = 0; t < 3; ++t) {
      const auto& st = out.tenant[t];
      const double share =
          dispatched_total > 0
              ? static_cast<double>(st.dispatched) / static_cast<double>(dispatched_total)
              : 0.0;
      share_err += std::abs(share - kWeights[t] / weight_sum) / 2.0;
      const double accept =
          st.submitted > 0
              ? static_cast<double>(st.accepted) / static_cast<double>(st.submitted)
              : 0.0;
      table.add_row({bench::fmt1(load), "w" + bench::fmt_int(kWeights[t]),
                     bench::fmt_int(kWeights[t]), bench::fmt_int(st.submitted),
                     bench::fmt2(accept), bench::fmt_int(st.rejected),
                     bench::fmt_int(st.dispatched), bench::fmt2(out.p99_wait)});
      harness.note("accept_w" + bench::fmt_int(kWeights[t]) + "_" + suffix, accept);
    }
    const double reject_frac =
        out.submitted > 0
            ? static_cast<double>(out.rejected) / static_cast<double>(out.submitted)
            : 0.0;
    harness.note("submitted_" + suffix, static_cast<double>(out.submitted));
    harness.note("p99_wait_" + suffix, out.p99_wait);
    // Fairness error only means anything once every tenant has standing
    // backlog; below saturation acceptance is the interesting number.
    harness.note("ratio_reject_" + suffix, reject_frac);
    harness.note("ratio_p99_wait_norm_" + suffix, out.p99_wait / kHorizon);
    if (load > 1.0) {
      harness.note("ratio_share_err_" + suffix, share_err);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPast saturation the quota turns excess load into rejections and the\n"
      "DRR split converges on the 1:2:4 weight shares (ratio_share_err -> 0).\n");
  return 0;
}
