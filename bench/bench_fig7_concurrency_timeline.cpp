// Fig 7: number of concurrent transfers within the duration of one
// particular ANL->NERSC memory-to-memory transfer.
#include <cstdio>

#include "analysis/concurrency.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "fig7_concurrency_timeline");

  bench::print_exhibit_header(
      "Fig 7: Concurrent transfers within the duration of a particular transfer",
      "Example from the paper: 7 concurrent transfers during the first "
      "6.56 s, 6 during the next 3.98 s, etc. -- the transfer's duration is "
      "split into constant-concurrency intervals");

  const auto& result = bench::anl_nersc_result();

  // Pick the mem-mem test with the busiest timeline.
  std::size_t best = result.mem_mem.front();
  std::size_t best_peak = 0;
  for (std::size_t idx : result.mem_mem) {
    const auto timeline = analysis::concurrency_timeline(result.all_log, idx);
    std::size_t peak = 0;
    for (const auto& iv : timeline) peak = std::max(peak, iv.concurrent);
    if (peak > best_peak) {
      best_peak = peak;
      best = idx;
    }
  }

  const auto& target = result.all_log[best];
  std::printf("chosen transfer: start=%.1f s, duration=%.2f s, size=%.1f GB, "
              "throughput=%.0f Mbps (peak concurrency %zu)\n\n",
              target.start_time, target.duration, to_gigabytes(target.size),
              to_mbps(target.throughput()), best_peak);

  stats::Table table("Constant-concurrency intervals of the chosen transfer");
  table.set_header({"Interval", "Offset (s)", "Duration (s)", "Concurrent transfers",
                    "Sum of concurrent throughput (Mbps)"});
  const auto timeline = analysis::concurrency_timeline(result.all_log, best);
  int i = 1;
  for (const auto& iv : timeline) {
    table.add_row({std::to_string(i++), bench::fmt2(iv.start - target.start_time),
                   bench::fmt2(iv.duration), std::to_string(iv.concurrent),
                   bench::fmt1(to_mbps(iv.concurrent_throughput_sum))});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
