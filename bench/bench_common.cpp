#include "bench_common.hpp"

#include <cstdio>
#include <memory>

#include "common/strings.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"

namespace gridvc::bench {

const gridftp::TransferLog& ncar_log() {
  static const gridftp::TransferLog log =
      workload::synthesize_trace(workload::ncar_nics_profile(), kSeed);
  return log;
}

const gridftp::TransferLog& slac_log(double scale) {
  static const gridftp::TransferLog log =
      workload::synthesize_trace(workload::slac_bnl_profile(scale), kSeed + 1);
  return log;
}

const workload::NerscOrnlResult& nersc_ornl_result() {
  static const workload::NerscOrnlResult result =
      workload::run_nersc_ornl_tests(workload::NerscOrnlConfig{}, kSeed + 2);
  return result;
}

const workload::AnlNerscResult& anl_nersc_result() {
  static const workload::AnlNerscResult result =
      workload::run_anl_nersc_tests(workload::AnlNerscConfig{}, kSeed + 3);
  return result;
}

std::vector<double> directional_attributed_bytes(const workload::NerscOrnlResult& result,
                                                 std::size_t router_idx) {
  std::vector<double> out;
  out.reserve(result.log.size());
  for (const auto& r : result.log) {
    const net::SnmpSeries& series = r.type == gridftp::TransferType::kRetrieve
                                        ? result.forward_series.at(router_idx)
                                        : result.reverse_series.at(router_idx);
    out.push_back(analysis::attributed_bytes(series, r.start_time, r.duration));
  }
  return out;
}

ObsDeltas read_obs_deltas(const sim::Simulator& sim) {
  const obs::MetricsSnapshot snap = sim.obs().registry().snapshot();
  ObsDeltas d;
  d.scheduled = snap.value("gridvc_sim_events_scheduled");
  d.cancelled = snap.value("gridvc_sim_events_cancelled");
  d.dispatched = snap.value("gridvc_sim_events_dispatched");
  d.recomputes = snap.value("gridvc_net_recomputes");
  d.rate_changes = snap.value("gridvc_net_rate_changes");
  return d;
}

void print_exhibit_header(const std::string& exhibit, const std::string& paper_reference) {
  std::printf("================================================================\n");
  std::printf("%s\n", exhibit.c_str());
  if (!paper_reference.empty()) {
    std::printf("Paper: %s\n", paper_reference.c_str());
  }
  std::printf("================================================================\n");
}

std::string fmt1(double v) { return format_grouped(v, 1); }
std::string fmt2(double v) { return format_grouped(v, 2); }
std::string fmt_int(double v) { return format_grouped(v, 0); }

}  // namespace gridvc::bench
