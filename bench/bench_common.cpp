#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>

#include "common/strings.hpp"
#include "exec/thread_pool.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"

namespace gridvc::bench {

const gridftp::TransferLog& ncar_log() {
  static const gridftp::TransferLog log =
      workload::synthesize_trace(workload::ncar_nics_profile(), kSeed);
  return log;
}

const gridftp::TransferLog& slac_log(double scale) {
  // Memoized per scale: a bench that warms up at scale 0.05 and then
  // asks for 1.0 must not be served the small log again.
  static std::map<double, gridftp::TransferLog> logs;
  auto it = logs.find(scale);
  if (it == logs.end()) {
    it = logs.emplace(scale, workload::synthesize_trace(workload::slac_bnl_profile(scale),
                                                        kSeed + 1))
             .first;
  }
  return it->second;
}

const workload::NerscOrnlResult& nersc_ornl_result() {
  static const workload::NerscOrnlResult result =
      workload::run_nersc_ornl_tests(workload::NerscOrnlConfig{}, kSeed + 2);
  return result;
}

const workload::AnlNerscResult& anl_nersc_result() {
  static const workload::AnlNerscResult result =
      workload::run_anl_nersc_tests(workload::AnlNerscConfig{}, kSeed + 3);
  return result;
}

std::vector<double> directional_attributed_bytes(const workload::NerscOrnlResult& result,
                                                 std::size_t router_idx) {
  std::vector<double> out;
  out.reserve(result.log.size());
  for (const auto& r : result.log) {
    const net::SnmpSeries& series = r.type == gridftp::TransferType::kRetrieve
                                        ? result.forward_series.at(router_idx)
                                        : result.reverse_series.at(router_idx);
    out.push_back(analysis::attributed_bytes(series, r.start_time, r.duration));
  }
  return out;
}

ObsDeltas read_obs_deltas(const sim::Simulator& sim) {
  const obs::MetricsSnapshot snap = sim.obs().registry().snapshot();
  ObsDeltas d;
  d.scheduled = snap.value("gridvc_sim_events_scheduled");
  d.cancelled = snap.value("gridvc_sim_events_cancelled");
  d.dispatched = snap.value("gridvc_sim_events_dispatched");
  d.recomputes = snap.value("gridvc_net_recomputes");
  d.rate_changes = snap.value("gridvc_net_rate_changes");
  return d;
}

void print_exhibit_header(const std::string& exhibit, const std::string& paper_reference) {
  std::printf("================================================================\n");
  std::printf("%s\n", exhibit.c_str());
  if (!paper_reference.empty()) {
    std::printf("Paper: %s\n", paper_reference.c_str());
  }
  std::printf("================================================================\n");
}

Harness::Harness(int argc, char** argv, std::string exhibit)
    : exhibit_(std::move(exhibit)), start_(std::chrono::steady_clock::now()) {
  json_path_ = "BENCH_" + exhibit_ + ".json";
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--json-out") == 0 && i + 1 < argc) {
      json_path_ = argv[++i];
    } else if (std::strcmp(arg, "--no-json") == 0) {
      write_json_ = false;
    }
  }
  if (const char* env = std::getenv("GRIDVC_BENCH_NO_JSON");
      env != nullptr && *env != '\0' && *env != '0') {
    write_json_ = false;
  }
  if (threads > 0) exec::set_default_threads(threads);
}

unsigned Harness::threads() const { return exec::default_threads(); }

void Harness::note(const std::string& key, double value) {
  counters_.emplace_back(key, value);
}

void Harness::note_metrics(const obs::MetricsSnapshot& snapshot) {
  for (const char* name :
       {"gridvc_sim_events_scheduled", "gridvc_sim_events_cancelled",
        "gridvc_sim_events_dispatched", "gridvc_net_recomputes",
        "gridvc_net_rate_changes"}) {
    note(name, snapshot.value(name));
  }
}

Harness::~Harness() {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  if (!write_json_) return;
  std::ofstream out(json_path_);
  if (!out) {
    std::fprintf(stderr, "bench harness: cannot write %s\n", json_path_.c_str());
    return;
  }
  out << "{\n"
      << "  \"exhibit\": \"" << exhibit_ << "\",\n"
      << "  \"threads\": " << threads() << ",\n"
      << "  \"wall_seconds\": " << wall << ",\n"
      << "  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << counters_[i].first
        << "\": " << counters_[i].second;
  }
  if (!counters_.empty()) out << "\n  ";
  out << "}\n}\n";
}

std::string fmt1(double v) { return format_grouped(v, 1); }
std::string fmt2(double v) { return format_grouped(v, 2); }
std::string fmt_int(double v) { return format_grouped(v, 0); }

}  // namespace gridvc::bench
