#include "vc/queue_isolation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "stats/summary.hpp"

namespace gridvc::vc {
namespace {

InterfaceModel alpha_heavy() {
  InterfaceModel m;
  m.capacity = gbps(10);
  m.gp_utilization = 0.05;
  m.gp_packet_size = 1500;
  m.alpha_burst_per_second = 50.0;     // α flow bursts
  m.alpha_burst_bytes = 4 * MiB;       // large bursts at line rate
  m.gp_weight = 0.5;
  return m;
}

TEST(QueueIsolation, IsolationReducesJitterAnalytically) {
  QueueIsolationModel model(alpha_heavy());
  const DelaySummary shared = model.shared_fifo_analytic();
  const DelaySummary isolated = model.isolated_analytic();
  EXPECT_LT(isolated.stddev, shared.stddev);
  EXPECT_LT(isolated.mean, shared.mean);
  EXPECT_LT(isolated.p99, shared.p99);
}

TEST(QueueIsolation, NoAlphaTrafficMakesModesEquivalent) {
  InterfaceModel m = alpha_heavy();
  m.alpha_burst_per_second = 0.0;
  m.alpha_burst_bytes = 0;
  QueueIsolationModel model(m);
  const DelaySummary shared = model.shared_fifo_analytic();
  const DelaySummary isolated = model.isolated_analytic();
  EXPECT_NEAR(shared.mean, isolated.mean, 1e-9);
  EXPECT_NEAR(shared.stddev, isolated.stddev, 1e-9);
}

TEST(QueueIsolation, MonteCarloAgreesWithAnalyticOrdering) {
  QueueIsolationModel model(alpha_heavy());
  gridvc::Rng rng(11);
  const auto shared = model.sample_shared_fifo(40000, rng);
  const auto isolated = model.sample_isolated(40000, rng);
  const auto s_shared = stats::summarize(shared);
  const auto s_isolated = stats::summarize(isolated);
  EXPECT_LT(s_isolated.stddev, s_shared.stddev);
  EXPECT_LT(s_isolated.mean, s_shared.mean);
}

TEST(QueueIsolation, MonteCarloMeanTracksAnalytic) {
  QueueIsolationModel model(alpha_heavy());
  gridvc::Rng rng(13);
  const auto samples = model.sample_shared_fifo(200000, rng);
  double sum = 0.0;
  for (double d : samples) sum += d;
  const double mc_mean = sum / static_cast<double>(samples.size());
  const DelaySummary analytic = model.shared_fifo_analytic();
  EXPECT_NEAR(mc_mean / analytic.mean, 1.0, 0.05);
}

TEST(QueueIsolation, DelaysArePositive) {
  QueueIsolationModel model(alpha_heavy());
  gridvc::Rng rng(17);
  for (double d : model.sample_shared_fifo(1000, rng)) ASSERT_GT(d, 0.0);
  for (double d : model.sample_isolated(1000, rng)) ASSERT_GT(d, 0.0);
}

TEST(QueueIsolation, HeavierBurstsMeanMoreSharedJitter) {
  InterfaceModel small = alpha_heavy();
  small.alpha_burst_bytes = MiB;
  InterfaceModel large = alpha_heavy();
  large.alpha_burst_bytes = 16 * MiB;
  const DelaySummary s = QueueIsolationModel(small).shared_fifo_analytic();
  const DelaySummary l = QueueIsolationModel(large).shared_fifo_analytic();
  EXPECT_GT(l.stddev, s.stddev);
}

TEST(QueueIsolation, InvalidConfigThrows) {
  InterfaceModel m = alpha_heavy();
  m.capacity = 0.0;
  EXPECT_THROW(QueueIsolationModel{m}, gridvc::PreconditionError);
  InterfaceModel m2 = alpha_heavy();
  m2.gp_utilization = 1.0;
  EXPECT_THROW(QueueIsolationModel{m2}, gridvc::PreconditionError);
  InterfaceModel m3 = alpha_heavy();
  m3.gp_weight = 0.0;
  EXPECT_THROW(QueueIsolationModel{m3}, gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::vc
