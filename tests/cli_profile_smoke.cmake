# Smoke test of the profiling pipeline: simulate with --profile-out,
# validate and inspect the Chrome trace with gridvc-profile, prove the
# profile digest is byte-identical across thread counts via gridvc-chaos,
# and check that a sabotaged chaos run dumps the flight recorder.
set(profile ${WORKDIR}/profile_smoke.json)
set(digest1 ${WORKDIR}/profile_smoke_t1.txt)
set(digest8 ${WORKDIR}/profile_smoke_t8.txt)
set(flight ${WORKDIR}/profile_smoke_flight.json)

execute_process(
  COMMAND ${SIMULATE} --scenario nersc-ornl --profile-out ${profile}
  RESULT_VARIABLE sim_rc)
if(NOT sim_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-simulate --profile-out failed: ${sim_rc}")
endif()

# The profile must parse, and the hotspot table must show the
# instrumented simulation layers.
execute_process(
  COMMAND ${PROFILE} ${profile}
  OUTPUT_VARIABLE hotspots
  RESULT_VARIABLE prof_rc)
if(NOT prof_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-profile rejected the profile: ${prof_rc}")
endif()
foreach(zone "sim.dispatch_batch" "net.recompute" "net.max_min_allocate"
        "gridftp.engine.submit")
  string(FIND "${hotspots}" "${zone}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "hotspot table missing zone '${zone}':\n${hotspots}")
  endif()
endforeach()

# Zone call counts are thread-count-invariant (exec determinism), so the
# digest of the same chaos battery at 1 and 8 threads must be identical.
foreach(threads 1 8)
  execute_process(
    COMMAND ${CHAOS} --seed 11 --replications 4 --threads ${threads}
            --profile-out ${WORKDIR}/profile_smoke_t${threads}.json
    OUTPUT_QUIET ERROR_QUIET
    RESULT_VARIABLE chaos_rc)
  if(NOT chaos_rc EQUAL 0)
    message(FATAL_ERROR "gridvc-chaos --threads ${threads} failed: ${chaos_rc}")
  endif()
  execute_process(
    COMMAND ${PROFILE} --digest ${WORKDIR}/profile_smoke_t${threads}.json
    OUTPUT_FILE ${WORKDIR}/profile_smoke_t${threads}.txt
    RESULT_VARIABLE digest_rc)
  if(NOT digest_rc EQUAL 0)
    message(FATAL_ERROR "gridvc-profile --digest failed: ${digest_rc}")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${digest1} ${digest8}
  RESULT_VARIABLE cmp_rc)
if(NOT cmp_rc EQUAL 0)
  message(FATAL_ERROR "profile digests differ between --threads 1 and 8")
endif()

# A sabotaged chaos run must fail AND dump the flight recorder.
execute_process(
  COMMAND ${CHAOS} --seed 3 --sabotage --flight-out ${flight}
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE sab_rc)
if(NOT EXISTS ${flight})
  message(FATAL_ERROR "sabotaged run did not write the flight dump")
endif()
execute_process(
  COMMAND ${PROFILE} --check-flight ${flight}
  OUTPUT_VARIABLE flight_out
  RESULT_VARIABLE flight_rc)
if(NOT flight_rc EQUAL 0)
  message(FATAL_ERROR "flight dump failed validation: ${flight_rc}")
endif()
string(FIND "${flight_out}" "chaos-invariant" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "flight dump reason is not a chaos invariant:\n${flight_out}")
endif()
