#include "net/fair_share.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace gridvc::net {
namespace {

constexpr double kTol = 1e-2;  // bits/s tolerance for float accumulation

// One shared 10G link between two hosts plus a second 10G link, so flows
// can have 1- or 2-hop paths.
struct Fixture {
  Topology topo;
  LinkId l0, l1;
  Fixture() {
    const NodeId a = topo.add_node("a", NodeKind::kHost);
    const NodeId b = topo.add_node("b", NodeKind::kRouter);
    const NodeId c = topo.add_node("c", NodeKind::kHost);
    l0 = topo.add_link(a, b, gbps(10), 0.001);
    l1 = topo.add_link(b, c, gbps(10), 0.001);
  }
};

TEST(FairShare, EmptyInput) {
  Fixture f;
  const auto alloc = max_min_allocate(f.topo, {});
  EXPECT_TRUE(alloc.rates.empty());
}

TEST(FairShare, SingleFlowGetsLinkCapacity) {
  Fixture f;
  const auto alloc = max_min_allocate(f.topo, {{Path{f.l0}, 0.0, 0.0}});
  ASSERT_EQ(alloc.rates.size(), 1u);
  EXPECT_NEAR(alloc.rates[0], gbps(10), kTol);
}

TEST(FairShare, CapLimitsSingleFlow) {
  Fixture f;
  const auto alloc = max_min_allocate(f.topo, {{Path{f.l0}, mbps(500), 0.0}});
  EXPECT_NEAR(alloc.rates[0], mbps(500), kTol);
}

TEST(FairShare, EqualSplitOnBottleneck) {
  Fixture f;
  const std::vector<FlowDemand> flows{
      {Path{f.l0}, 0.0, 0.0}, {Path{f.l0}, 0.0, 0.0}, {Path{f.l0}, 0.0, 0.0}};
  const auto alloc = max_min_allocate(f.topo, flows);
  for (double r : alloc.rates) EXPECT_NEAR(r, gbps(10) / 3.0, 1.0);
}

TEST(FairShare, CappedFlowReleasesShareToOthers) {
  Fixture f;
  const std::vector<FlowDemand> flows{
      {Path{f.l0}, gbps(1), 0.0}, {Path{f.l0}, 0.0, 0.0}};
  const auto alloc = max_min_allocate(f.topo, flows);
  EXPECT_NEAR(alloc.rates[0], gbps(1), kTol);
  EXPECT_NEAR(alloc.rates[1], gbps(9), 1.0);
}

TEST(FairShare, MultiHopBottleneck) {
  Fixture f;
  // Flow A spans both links; flow B uses only l1. They split l1; A's
  // extra l0 capacity goes unused.
  const std::vector<FlowDemand> flows{
      {Path{f.l0, f.l1}, 0.0, 0.0}, {Path{f.l1}, 0.0, 0.0}};
  const auto alloc = max_min_allocate(f.topo, flows);
  EXPECT_NEAR(alloc.rates[0], gbps(5), 1.0);
  EXPECT_NEAR(alloc.rates[1], gbps(5), 1.0);
}

TEST(FairShare, GuaranteeIsHonoredUnderContention) {
  Fixture f;
  // VC flow guaranteed 8G vs 3 best-effort flows: VC gets >= 8G, the rest
  // share the remainder.
  const std::vector<FlowDemand> flows{
      {Path{f.l0}, 0.0, gbps(8)},
      {Path{f.l0}, 0.0, 0.0},
      {Path{f.l0}, 0.0, 0.0},
      {Path{f.l0}, 0.0, 0.0}};
  const auto alloc = max_min_allocate(f.topo, flows);
  EXPECT_GE(alloc.rates[0], gbps(8) - kTol);
  for (int i = 1; i < 4; ++i) EXPECT_LT(alloc.rates[i], gbps(1));
}

TEST(FairShare, GuaranteedFlowCanUseIdleHeadroom) {
  Fixture f;
  // Alone on the link, a VC flow is not limited to its guarantee.
  const auto alloc = max_min_allocate(f.topo, {{Path{f.l0}, 0.0, gbps(2)}});
  EXPECT_NEAR(alloc.rates[0], gbps(10), kTol);
}

TEST(FairShare, GuaranteeClippedByCap) {
  Fixture f;
  const auto alloc = max_min_allocate(f.topo, {{Path{f.l0}, mbps(100), gbps(5)}});
  EXPECT_NEAR(alloc.rates[0], mbps(100), kTol);
}

TEST(FairShare, OversubscribedGuaranteesScaledProportionally) {
  Fixture f;
  // Two 8G guarantees on a 10G link: scaled to 5G each, then no residual.
  const std::vector<FlowDemand> flows{
      {Path{f.l0}, gbps(5), gbps(8)}, {Path{f.l0}, gbps(5), gbps(8)}};
  const auto alloc = max_min_allocate(f.topo, flows);
  EXPECT_NEAR(alloc.rates[0], gbps(5), gbps(0.01));
  EXPECT_NEAR(alloc.rates[1], gbps(5), gbps(0.01));
}

// Property suite: random flow sets must satisfy the allocation invariants.
class FairShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairShareProperty, ConservationAndCapRespect) {
  gridvc::Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Random chain topology of 3-6 links.
  Topology topo;
  const int hops = static_cast<int>(rng.uniform_int(3, 6));
  std::vector<NodeId> nodes;
  for (int i = 0; i <= hops; ++i) {
    nodes.push_back(topo.add_node("n" + std::to_string(i),
                                  i == 0 || i == hops ? NodeKind::kHost
                                                      : NodeKind::kRouter));
  }
  std::vector<LinkId> chain;
  for (int i = 0; i < hops; ++i) {
    chain.push_back(topo.add_link(nodes[static_cast<std::size_t>(i)],
                                  nodes[static_cast<std::size_t>(i) + 1],
                                  gbps(rng.uniform(1.0, 10.0)), 0.001));
  }

  // Random flows over random sub-chains, random caps/guarantees.
  std::vector<FlowDemand> flows;
  const int nflows = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < nflows; ++i) {
    const int from = static_cast<int>(rng.uniform_int(0, hops - 1));
    const int to = static_cast<int>(rng.uniform_int(from + 1, hops));
    Path p(chain.begin() + from, chain.begin() + to);
    FlowDemand d;
    d.path = std::move(p);
    d.cap = rng.bernoulli(0.5) ? mbps(rng.uniform(50.0, 5000.0)) : 0.0;
    d.guarantee = rng.bernoulli(0.3) ? mbps(rng.uniform(10.0, 800.0)) : 0.0;
    flows.push_back(std::move(d));
  }

  const auto alloc = max_min_allocate(topo, flows);
  ASSERT_EQ(alloc.rates.size(), flows.size());

  // (1) No link is oversubscribed.
  std::vector<double> load(topo.link_count(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_GE(alloc.rates[i], -kTol);
    for (LinkId l : flows[i].path) load[l] += alloc.rates[i];
  }
  for (std::size_t l = 0; l < topo.link_count(); ++l) {
    EXPECT_LE(load[l], topo.link(static_cast<LinkId>(l)).capacity + 1.0);
  }

  // (2) Caps are respected.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].cap > 0.0) {
      EXPECT_LE(alloc.rates[i], flows[i].cap + kTol);
    }
  }

  // (3) Pareto efficiency for uncapped flows: every uncapped flow has at
  // least one saturated link on its path (otherwise filling would have
  // continued).
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].cap > 0.0 && alloc.rates[i] >= flows[i].cap - 1.0) continue;
    bool saturated = false;
    for (LinkId l : flows[i].path) {
      if (load[l] >= topo.link(l).capacity - 1.0) saturated = true;
    }
    EXPECT_TRUE(saturated) << "flow " << i << " is starved below its cap "
                           << "with spare capacity on every link";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, FairShareProperty, ::testing::Range(1, 33));

// The zero-allocation workspace overload is the hot path the Network
// engine uses; it must agree bit-for-bit with the plain vector API on
// every input, including link-down masks and guarantees.
TEST(FairShare, WorkspaceOverloadMatchesPlainApi) {
  Fixture f;
  Rng rng(314);
  for (int round = 0; round < 50; ++round) {
    std::vector<FlowDemand> flows;
    const int n = static_cast<int>(rng.uniform_int(0, 24));
    for (int i = 0; i < n; ++i) {
      FlowDemand d;
      d.path = rng.bernoulli(0.5) ? Path{f.l0} : Path{f.l0, f.l1};
      if (rng.bernoulli(0.5)) d.cap = mbps(rng.uniform(10.0, 9000.0));
      if (rng.bernoulli(0.3)) d.guarantee = mbps(rng.uniform(10.0, 2000.0));
      flows.push_back(std::move(d));
    }
    std::vector<char> link_up(f.topo.link_count(), 1);
    if (rng.bernoulli(0.2)) link_up[1] = 0;

    const Allocation plain = max_min_allocate(f.topo, flows, link_up);

    std::vector<FlowDemandRef> refs;
    refs.reserve(flows.size());
    for (const auto& d : flows) refs.push_back({&d.path, d.cap, d.guarantee});
    AllocWorkspace ws;
    const std::vector<BitsPerSecond>& rates =
        max_min_allocate(f.topo, refs, link_up, ws);

    ASSERT_EQ(rates.size(), plain.rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
      ASSERT_DOUBLE_EQ(rates[i], plain.rates[i]) << "round " << round << " flow " << i;
    }
    // Reusing the workspace across rounds must not leak prior state: the
    // second call on the same inputs reproduces itself.
    const std::vector<BitsPerSecond> again(rates);
    const std::vector<BitsPerSecond>& rerun =
        max_min_allocate(f.topo, refs, link_up, ws);
    ASSERT_EQ(rerun, again);
  }
}

// Straight transcription of the pre-SoA scalar allocator (per-flow path
// chasing, flag-scan fill loop). The CSR/dense-list implementation is a
// layout change only, so it must reproduce this arithmetic sequence
// bit-for-bit.
std::vector<BitsPerSecond> scalar_reference_allocate(const Topology& topo,
                                                     const std::vector<FlowDemand>& flows,
                                                     const std::vector<char>& link_up) {
  constexpr double kRefEps = 1e-3;
  const double inf = std::numeric_limits<double>::infinity();
  const std::size_t nflows = flows.size();
  const std::size_t nlinks = topo.link_count();
  std::vector<BitsPerSecond> rates(nflows, 0.0);
  if (nflows == 0) return rates;
  std::vector<double> residual(nlinks, 0.0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    const bool up = link_up.empty() || link_up[l] != 0;
    residual[l] = up ? topo.link(static_cast<LinkId>(l)).capacity : 0.0;
  }
  std::vector<double> guarantee_load(nlinks, 0.0);
  for (const auto& f : flows) {
    const double g = f.cap > 0.0 ? std::min(f.guarantee, f.cap) : f.guarantee;
    if (g <= 0.0) continue;
    for (LinkId l : f.path) guarantee_load[l] += g;
  }
  std::vector<double> link_scale(nlinks, 1.0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    if (guarantee_load[l] > residual[l]) link_scale[l] = residual[l] / guarantee_load[l];
  }
  for (std::size_t i = 0; i < nflows; ++i) {
    double g = flows[i].cap > 0.0 ? std::min(flows[i].guarantee, flows[i].cap)
                                  : flows[i].guarantee;
    if (g <= 0.0) continue;
    double scale = 1.0;
    for (LinkId l : flows[i].path) scale = std::min(scale, link_scale[l]);
    rates[i] = g * scale;
  }
  for (std::size_t i = 0; i < nflows; ++i) {
    if (rates[i] <= 0.0) continue;
    for (LinkId l : flows[i].path) residual[l] = std::max(0.0, residual[l] - rates[i]);
  }
  std::vector<char> active(nflows, 0);
  std::vector<std::uint32_t> active_on_link(nlinks, 0);
  std::size_t active_count = 0;
  for (std::size_t i = 0; i < nflows; ++i) {
    if (flows[i].cap > 0.0 && rates[i] >= flows[i].cap - kRefEps) continue;
    active[i] = 1;
    ++active_count;
    for (LinkId l : flows[i].path) ++active_on_link[l];
  }
  for (std::size_t iter = 0; iter < nflows + nlinks + 1 && active_count > 0; ++iter) {
    double delta = inf;
    for (std::size_t l = 0; l < nlinks; ++l) {
      if (active_on_link[l] == 0) continue;
      delta = std::min(delta, residual[l] / static_cast<double>(active_on_link[l]));
    }
    for (std::size_t i = 0; i < nflows; ++i) {
      if (!active[i]) continue;
      if (flows[i].cap > 0.0) delta = std::min(delta, flows[i].cap - rates[i]);
    }
    if (delta == inf) break;
    delta = std::max(delta, 0.0);
    for (std::size_t i = 0; i < nflows; ++i) {
      if (!active[i]) continue;
      rates[i] += delta;
      for (LinkId l : flows[i].path) residual[l] -= delta;
    }
    bool froze = false;
    for (std::size_t i = 0; i < nflows; ++i) {
      if (!active[i]) continue;
      bool saturated = flows[i].cap > 0.0 && rates[i] >= flows[i].cap - kRefEps;
      if (!saturated) {
        for (LinkId l : flows[i].path) {
          if (residual[l] <= kRefEps) {
            saturated = true;
            break;
          }
        }
      }
      if (saturated) {
        active[i] = 0;
        --active_count;
        for (LinkId l : flows[i].path) --active_on_link[l];
        froze = true;
      }
    }
    if (!froze) break;
  }
  return rates;
}

// SoA-vs-scalar equivalence at scale: 10k flows over a 12-link backbone
// chain, mixed caps/guarantees/down-links, compared bit-for-bit against
// the scalar transcription above.
TEST(FairShare, SoALayoutMatchesScalarReferenceAt10kFlows) {
  Topology topo;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 13; ++i) {
    nodes.push_back(topo.add_node("n" + std::to_string(i),
                                  i == 0 || i == 12 ? NodeKind::kHost
                                                    : NodeKind::kRouter));
  }
  std::vector<LinkId> chain;
  for (int i = 0; i < 12; ++i) {
    chain.push_back(topo.add_link(nodes[static_cast<std::size_t>(i)],
                                  nodes[static_cast<std::size_t>(i) + 1], gbps(10),
                                  0.001));
  }
  Rng rng(20120);
  std::vector<FlowDemand> flows;
  flows.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    FlowDemand d;
    const int a = static_cast<int>(rng.uniform_int(0, 11));
    const int b = static_cast<int>(rng.uniform_int(a, 11));
    for (int l = a; l <= b; ++l) d.path.push_back(chain[static_cast<std::size_t>(l)]);
    if (rng.bernoulli(0.6)) d.cap = mbps(rng.uniform(1.0, 500.0));
    if (rng.bernoulli(0.2)) d.guarantee = mbps(rng.uniform(1.0, 100.0));
    flows.push_back(std::move(d));
  }
  std::vector<char> link_up(topo.link_count(), 1);
  link_up[5] = 0;  // one dead link in the middle of the chain

  const std::vector<BitsPerSecond> ref = scalar_reference_allocate(topo, flows, link_up);

  std::vector<FlowDemandRef> refs;
  refs.reserve(flows.size());
  for (const auto& d : flows) refs.push_back({&d.path, d.cap, d.guarantee});
  AllocWorkspace ws;
  const std::vector<BitsPerSecond>& rates = max_min_allocate(topo, refs, link_up, ws);

  ASSERT_EQ(rates.size(), ref.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    ASSERT_DOUBLE_EQ(rates[i], ref[i]) << "flow " << i;
  }
  // And through the plain vector API (which routes through the SoA path).
  const Allocation plain = max_min_allocate(topo, flows, link_up);
  ASSERT_EQ(plain.rates, std::vector<BitsPerSecond>(rates.begin(), rates.end()));
}

}  // namespace
}  // namespace gridvc::net
