# Smoke test of the chaos harness: a seeded battery must pass every
# cross-layer invariant, its digests must be byte-identical between a
# serial and a parallel run (the determinism contract), its trace must
# survive the schema/lifecycle checker, and the sabotage mode must catch
# and shrink a deliberately injected violation.
set(digests1 ${WORKDIR}/chaos_t1.digests)
set(digests8 ${WORKDIR}/chaos_t8.digests)
set(trace ${WORKDIR}/chaos_smoke.jsonl)

# Battery, serial.
execute_process(
  COMMAND ${CHAOS} --seed 1 --replications 10 --threads 1
          --service-crash-at 150 --digest-out ${digests1}
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "gridvc-chaos battery (threads=1) failed: ${rc1}")
endif()

# Same battery, 8 worker threads: digests must be byte-identical.
execute_process(
  COMMAND ${CHAOS} --seed 1 --replications 10 --threads 8
          --service-crash-at 150 --digest-out ${digests8}
  RESULT_VARIABLE rc8)
if(NOT rc8 EQUAL 0)
  message(FATAL_ERROR "gridvc-chaos battery (threads=8) failed: ${rc8}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${digests1} ${digests8}
  RESULT_VARIABLE same_rc)
if(NOT same_rc EQUAL 0)
  message(FATAL_ERROR "chaos digests differ between --threads 1 and 8")
endif()

# Same determinism contract with malleable reservations: shaping,
# defragmentation, and reroute run inside the battery, and the digests
# must still be byte-identical across thread counts.
set(digests_m1 ${WORKDIR}/chaos_malleable_t1.digests)
set(digests_m8 ${WORKDIR}/chaos_malleable_t8.digests)
execute_process(
  COMMAND ${CHAOS} --seed 1 --replications 10 --threads 1
          --malleable --digest-out ${digests_m1}
  RESULT_VARIABLE mrc1)
if(NOT mrc1 EQUAL 0)
  message(FATAL_ERROR "gridvc-chaos malleable battery (threads=1) failed: ${mrc1}")
endif()
execute_process(
  COMMAND ${CHAOS} --seed 1 --replications 10 --threads 8
          --malleable --digest-out ${digests_m8}
  RESULT_VARIABLE mrc8)
if(NOT mrc8 EQUAL 0)
  message(FATAL_ERROR "gridvc-chaos malleable battery (threads=8) failed: ${mrc8}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${digests_m1} ${digests_m8}
  RESULT_VARIABLE msame_rc)
if(NOT msame_rc EQUAL 0)
  message(FATAL_ERROR "malleable chaos digests differ between --threads 1 and 8")
endif()

# Single replication with a trace: the lifecycle checker must accept it
# and the process-fault event types must have fired.
execute_process(
  COMMAND ${CHAOS} --seed 1 --replications 1 --trace-out ${trace}
  RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-chaos --trace-out failed: ${trace_rc}")
endif()
execute_process(
  COMMAND ${TRACECHECK} ${trace}
  OUTPUT_VARIABLE check_out
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-trace-check rejected the chaos trace: ${check_rc}")
endif()
foreach(needle "server_down" "server_up" "idc_outage_begin" "idc_outage_end"
        "link_down" "transfer_finished")
  string(FIND "${check_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "chaos trace missing event type '${needle}':\n${check_out}")
  endif()
endforeach()

# Sabotage: an injected trace/metrics inconsistency must be caught on
# every crash-bearing replication and ddmin-shrunk to a minimal window
# set. The tool exits 0 only when the harness caught everything.
execute_process(
  COMMAND ${CHAOS} --seed 1 --replications 4 --sabotage --shrink
  OUTPUT_VARIABLE sab_out
  ERROR_VARIABLE sab_err
  RESULT_VARIABLE sab_rc)
if(NOT sab_rc EQUAL 0)
  message(FATAL_ERROR "sabotage run not caught: ${sab_rc}\n${sab_out}\n${sab_err}")
endif()
string(FIND "${sab_out}${sab_err}" "sabotage caught" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "sabotage output missing confirmation:\n${sab_out}\n${sab_err}")
endif()
