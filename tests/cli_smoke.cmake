# Smoke test of the CLI tools: synthesize a small log, analyze it, and
# check the outputs look sane.
execute_process(
  COMMAND ${SYNTH} --profile slac --scale 0.002 --seed 3 --out ${WORKDIR}/cli_smoke.csv
  RESULT_VARIABLE synth_rc)
if(NOT synth_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-synth failed: ${synth_rc}")
endif()

execute_process(
  COMMAND ${ANALYZE} --classes ${WORKDIR}/cli_smoke.csv
  OUTPUT_VARIABLE out
  RESULT_VARIABLE analyze_rc)
if(NOT analyze_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-analyze failed: ${analyze_rc}")
endif()
foreach(needle "transfers read" "VC suitability" "alphas")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "gridvc-analyze output missing '${needle}':\n${out}")
  endif()
endforeach()
