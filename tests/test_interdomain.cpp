#include "vc/interdomain.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace gridvc::vc {
namespace {

using net::NodeId;
using net::NodeKind;
using net::Topology;

// Two-domain world: host A - [domain west: w1, w2] - [domain east: e1, e2] - host B.
struct Fixture {
  sim::Simulator sim;
  Topology topo;
  NodeId a, b;

  Fixture() {
    a = topo.add_node("a", NodeKind::kHost, "west");
    const NodeId w1 = topo.add_node("w1", NodeKind::kRouter, "west");
    const NodeId w2 = topo.add_node("w2", NodeKind::kRouter, "west");
    const NodeId e1 = topo.add_node("e1", NodeKind::kRouter, "east");
    const NodeId e2 = topo.add_node("e2", NodeKind::kRouter, "east");
    b = topo.add_node("b", NodeKind::kHost, "east");
    topo.add_duplex_link(a, w1, gbps(10), 0.001);
    topo.add_duplex_link(w1, w2, gbps(10), 0.005);
    topo.add_duplex_link(w2, e1, gbps(10), 0.010);  // inter-domain link
    topo.add_duplex_link(e1, e2, gbps(10), 0.005);
    topo.add_duplex_link(e2, b, gbps(10), 0.001);
  }

  ReservationRequest request(BitsPerSecond bw = gbps(2)) {
    ReservationRequest r;
    r.src = a;
    r.dst = b;
    r.bandwidth = bw;
    r.start_time = 100.0;
    r.end_time = 400.0;
    return r;
  }
};

TEST(Interdomain, SegmentsPathByDomain) {
  Fixture f;
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  const auto path = net::shortest_path(f.topo, f.a, f.b);
  ASSERT_TRUE(path.has_value());
  const auto segments = coord.segment_path(*path);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].domain, "west");
  EXPECT_EQ(segments[1].domain, "east");
  // Segments partition the path.
  std::size_t total = 0;
  for (const auto& s : segments) total += s.links.size();
  EXPECT_EQ(total, path->size());
}

TEST(Interdomain, BooksBothDomains) {
  Fixture f;
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  const auto result = coord.create_reservation(f.request());
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(result.segments.size(), 2u);
  EXPECT_EQ(west.stats().accepted, 1u);
  EXPECT_EQ(east.stats().accepted, 1u);
  // Advance reservation: activation == requested start.
  EXPECT_DOUBLE_EQ(result.activation, 100.0);
}

TEST(Interdomain, EndToEndSetupIsSlowestDomain) {
  Fixture f;
  IdcConfig slow;
  slow.mode = SignalingMode::kBatchedAutomatic;  // >= 60 s for immediate use
  IdcConfig fast;
  fast.mode = SignalingMode::kImmediate;
  Idc west(f.sim, f.topo, fast);
  Idc east(f.sim, f.topo, slow);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  ReservationRequest r = f.request();
  r.start_time = 0.0;  // immediate use
  const auto result = coord.create_reservation(r);
  ASSERT_TRUE(result.accepted);
  EXPECT_GE(result.activation, 60.0);  // bound by the batched domain
}

TEST(Interdomain, RollsBackOnDownstreamRejection) {
  Fixture f;
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});

  // Exhaust only the *east* domain's capacity for the window, directly
  // against its controller: the coordinator then books west first, east
  // rejects, and west's provisional segment must be rolled back.
  const auto e1 = f.topo.find_node("e1");
  ASSERT_TRUE(e1.has_value());
  ReservationRequest hog;
  hog.src = *e1;
  hog.dst = f.b;
  hog.bandwidth = gbps(9);
  hog.start_time = 100.0;
  hog.end_time = 400.0;
  ASSERT_TRUE(east.create_reservation(hog).accepted());

  const auto result = coord.create_reservation(f.request(gbps(5)));
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kInsufficientBandwidth);
  EXPECT_TRUE(result.segments.empty());
  EXPECT_EQ(west.stats().cancelled, 1u);
  // A request that fits the remaining east headroom still goes through,
  // proving the failed attempt left no residue in the west calendar.
  EXPECT_TRUE(coord.create_reservation(f.request(gbps(1))).accepted);
}

TEST(Interdomain, UnknownDomainRejects) {
  Fixture f;
  Idc west(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}});
  const auto result = coord.create_reservation(f.request());
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kNoRoute);
}

TEST(Interdomain, SingleDomainPathIsOneSegment) {
  // Both hosts and every router in one domain: no chain, one segment.
  sim::Simulator sim;
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kHost, "solo");
  const NodeId r1 = topo.add_node("r1", NodeKind::kRouter, "solo");
  const NodeId r2 = topo.add_node("r2", NodeKind::kRouter, "solo");
  const NodeId b = topo.add_node("b", NodeKind::kHost, "solo");
  topo.add_duplex_link(a, r1, gbps(10), 0.001);
  topo.add_duplex_link(r1, r2, gbps(10), 0.005);
  topo.add_duplex_link(r2, b, gbps(10), 0.001);
  Idc idc(sim, topo);
  InterdomainCoordinator coord(sim, topo, {{"solo", &idc}});
  const auto path = net::shortest_path(topo, a, b);
  ASSERT_TRUE(path.has_value());
  const auto segments = coord.segment_path(*path);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].domain, "solo");
  EXPECT_EQ(segments[0].links.size(), path->size());
}

TEST(Interdomain, HostEndpointsAdoptNeighborRouterDomains) {
  // Access links (host<->router) belong to the *router's* domain: a path
  // whose first link leaves host a into a west router and whose last link
  // enters host b from an east router must open with a west segment and
  // close with an east one — the hosts' own (empty) domain tags never
  // produce segments of their own.
  sim::Simulator sim;
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kHost, "");  // untagged host
  const NodeId w = topo.add_node("w", NodeKind::kRouter, "west");
  const NodeId e = topo.add_node("e", NodeKind::kRouter, "east");
  const NodeId b = topo.add_node("b", NodeKind::kHost, "");  // untagged host
  topo.add_duplex_link(a, w, gbps(10), 0.001);
  topo.add_duplex_link(w, e, gbps(10), 0.010);
  topo.add_duplex_link(e, b, gbps(10), 0.001);
  Idc west(sim, topo);
  Idc east(sim, topo);
  InterdomainCoordinator coord(sim, topo, {{"west", &west}, {"east", &east}});
  const auto path = net::shortest_path(topo, a, b);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);
  const auto segments = coord.segment_path(*path);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].domain, "west");  // a->w access + w->e inter-domain
  EXPECT_EQ(segments[0].links.size(), 2u);
  EXPECT_EQ(segments[1].domain, "east");  // e->b access
  EXPECT_EQ(segments[1].links.size(), 1u);
}

TEST(Interdomain, PathReenteringADomainSegmentsTwice) {
  // A hand-built path west -> east -> west must produce three segments:
  // re-entry opens a NEW segment rather than merging with the earlier
  // visit (segments are contiguous runs, not domain sets).
  sim::Simulator sim;
  Topology topo;
  const NodeId w1 = topo.add_node("w1", NodeKind::kRouter, "west");
  const NodeId e1 = topo.add_node("e1", NodeKind::kRouter, "east");
  const NodeId w2 = topo.add_node("w2", NodeKind::kRouter, "west");
  const auto [we, dummy1] = topo.add_duplex_link(w1, e1, gbps(10), 0.010);
  const auto [ew, dummy2] = topo.add_duplex_link(e1, w2, gbps(10), 0.010);
  (void)dummy1;
  (void)dummy2;
  Idc west(sim, topo);
  Idc east(sim, topo);
  InterdomainCoordinator coord(sim, topo, {{"west", &west}, {"east", &east}});
  const auto segments = coord.segment_path(net::Path{we, ew});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].domain, "west");  // w1->e1 owned by w1's domain
  EXPECT_EQ(segments[1].domain, "east");  // e1->w2 owned by e1's domain
  // Extend through west again: a fresh west segment, not a merge.
  const NodeId w3 = topo.add_node("w3", NodeKind::kRouter, "west");
  const auto ww = topo.add_link(w2, w3, gbps(10), 0.005);
  const auto three = coord.segment_path(net::Path{we, ew, ww});
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[0].domain, "west");
  EXPECT_EQ(three[1].domain, "east");
  EXPECT_EQ(three[2].domain, "west");
  EXPECT_EQ(three[2].links.size(), 1u);
}

TEST(Interdomain, EmitsSegmentBookedTraceEvents) {
  Fixture f;
  obs::RingBufferTraceSink ring(64);
  f.sim.obs().set_trace_sink(&ring);
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  const auto result = coord.create_reservation(f.request());
  ASSERT_TRUE(result.accepted);
  EXPECT_GT(result.chain_id, 0u);
  std::size_t booked = 0;
  for (const auto& ev : ring.events()) {
    if (ev.type != obs::TraceEventType::kVcSegmentBooked) continue;
    EXPECT_EQ(ev.id, result.chain_id);
    EXPECT_EQ(ev.aux, booked);  // segment index, in path order
    EXPECT_EQ(static_cast<std::uint64_t>(ev.value),
              result.segments[booked].circuit_id);
    ++booked;
  }
  EXPECT_EQ(booked, result.segments.size());
  f.sim.obs().set_trace_sink(nullptr);
}

TEST(Interdomain, EmitsRollbackTraceEventsInReverseOrder) {
  Fixture f;
  obs::RingBufferTraceSink ring(64);
  f.sim.obs().set_trace_sink(&ring);
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  // Exhaust east so the chain books west, then rejects and rolls back.
  const auto e1 = f.topo.find_node("e1");
  ASSERT_TRUE(e1.has_value());
  ReservationRequest hog;
  hog.src = *e1;
  hog.dst = f.b;
  hog.bandwidth = gbps(9);
  hog.start_time = 100.0;
  hog.end_time = 400.0;
  ASSERT_TRUE(east.create_reservation(hog).accepted());

  const auto result = coord.create_reservation(f.request(gbps(5)));
  EXPECT_FALSE(result.accepted);
  std::vector<obs::TraceEvent> rollbacks;
  for (const auto& ev : ring.events()) {
    if (ev.type == obs::TraceEventType::kVcSegmentRollback) rollbacks.push_back(ev);
  }
  ASSERT_EQ(rollbacks.size(), 1u);  // only west was booked
  EXPECT_EQ(rollbacks[0].id, result.chain_id);
  EXPECT_EQ(rollbacks[0].aux, 0u);  // segment 0 undone
  f.sim.obs().set_trace_sink(nullptr);
}

TEST(Interdomain, ChainIdsAreUniquePerAttempt) {
  Fixture f;
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  const auto r1 = coord.create_reservation(f.request(gbps(1)));
  const auto r2 = coord.create_reservation(f.request(gbps(1)));
  ASSERT_TRUE(r1.accepted);
  ASSERT_TRUE(r2.accepted);
  EXPECT_NE(r1.chain_id, r2.chain_id);
}

TEST(Interdomain, DuplicateDomainThrows) {
  Fixture f;
  Idc west(f.sim, f.topo);
  EXPECT_THROW(
      InterdomainCoordinator(f.sim, f.topo, {{"west", &west}, {"west", &west}}),
      gridvc::PreconditionError);
}

TEST(Interdomain, NullControllerThrows) {
  Fixture f;
  EXPECT_THROW(InterdomainCoordinator(f.sim, f.topo, {{"west", nullptr}}),
               gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::vc
