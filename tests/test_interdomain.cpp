#include "vc/interdomain.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gridvc::vc {
namespace {

using net::NodeId;
using net::NodeKind;
using net::Topology;

// Two-domain world: host A - [domain west: w1, w2] - [domain east: e1, e2] - host B.
struct Fixture {
  sim::Simulator sim;
  Topology topo;
  NodeId a, b;

  Fixture() {
    a = topo.add_node("a", NodeKind::kHost, "west");
    const NodeId w1 = topo.add_node("w1", NodeKind::kRouter, "west");
    const NodeId w2 = topo.add_node("w2", NodeKind::kRouter, "west");
    const NodeId e1 = topo.add_node("e1", NodeKind::kRouter, "east");
    const NodeId e2 = topo.add_node("e2", NodeKind::kRouter, "east");
    b = topo.add_node("b", NodeKind::kHost, "east");
    topo.add_duplex_link(a, w1, gbps(10), 0.001);
    topo.add_duplex_link(w1, w2, gbps(10), 0.005);
    topo.add_duplex_link(w2, e1, gbps(10), 0.010);  // inter-domain link
    topo.add_duplex_link(e1, e2, gbps(10), 0.005);
    topo.add_duplex_link(e2, b, gbps(10), 0.001);
  }

  ReservationRequest request(BitsPerSecond bw = gbps(2)) {
    ReservationRequest r;
    r.src = a;
    r.dst = b;
    r.bandwidth = bw;
    r.start_time = 100.0;
    r.end_time = 400.0;
    return r;
  }
};

TEST(Interdomain, SegmentsPathByDomain) {
  Fixture f;
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  const auto path = net::shortest_path(f.topo, f.a, f.b);
  ASSERT_TRUE(path.has_value());
  const auto segments = coord.segment_path(*path);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].domain, "west");
  EXPECT_EQ(segments[1].domain, "east");
  // Segments partition the path.
  std::size_t total = 0;
  for (const auto& s : segments) total += s.links.size();
  EXPECT_EQ(total, path->size());
}

TEST(Interdomain, BooksBothDomains) {
  Fixture f;
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  const auto result = coord.create_reservation(f.request());
  ASSERT_TRUE(result.accepted);
  EXPECT_EQ(result.segments.size(), 2u);
  EXPECT_EQ(west.stats().accepted, 1u);
  EXPECT_EQ(east.stats().accepted, 1u);
  // Advance reservation: activation == requested start.
  EXPECT_DOUBLE_EQ(result.activation, 100.0);
}

TEST(Interdomain, EndToEndSetupIsSlowestDomain) {
  Fixture f;
  IdcConfig slow;
  slow.mode = SignalingMode::kBatchedAutomatic;  // >= 60 s for immediate use
  IdcConfig fast;
  fast.mode = SignalingMode::kImmediate;
  Idc west(f.sim, f.topo, fast);
  Idc east(f.sim, f.topo, slow);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});
  ReservationRequest r = f.request();
  r.start_time = 0.0;  // immediate use
  const auto result = coord.create_reservation(r);
  ASSERT_TRUE(result.accepted);
  EXPECT_GE(result.activation, 60.0);  // bound by the batched domain
}

TEST(Interdomain, RollsBackOnDownstreamRejection) {
  Fixture f;
  Idc west(f.sim, f.topo);
  Idc east(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}, {"east", &east}});

  // Exhaust only the *east* domain's capacity for the window, directly
  // against its controller: the coordinator then books west first, east
  // rejects, and west's provisional segment must be rolled back.
  const auto e1 = f.topo.find_node("e1");
  ASSERT_TRUE(e1.has_value());
  ReservationRequest hog;
  hog.src = *e1;
  hog.dst = f.b;
  hog.bandwidth = gbps(9);
  hog.start_time = 100.0;
  hog.end_time = 400.0;
  ASSERT_TRUE(east.create_reservation(hog).accepted());

  const auto result = coord.create_reservation(f.request(gbps(5)));
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kInsufficientBandwidth);
  EXPECT_TRUE(result.segments.empty());
  EXPECT_EQ(west.stats().cancelled, 1u);
  // A request that fits the remaining east headroom still goes through,
  // proving the failed attempt left no residue in the west calendar.
  EXPECT_TRUE(coord.create_reservation(f.request(gbps(1))).accepted);
}

TEST(Interdomain, UnknownDomainRejects) {
  Fixture f;
  Idc west(f.sim, f.topo);
  InterdomainCoordinator coord(f.sim, f.topo, {{"west", &west}});
  const auto result = coord.create_reservation(f.request());
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.reason, RejectReason::kNoRoute);
}

TEST(Interdomain, DuplicateDomainThrows) {
  Fixture f;
  Idc west(f.sim, f.topo);
  EXPECT_THROW(
      InterdomainCoordinator(f.sim, f.topo, {{"west", &west}, {"west", &west}}),
      gridvc::PreconditionError);
}

TEST(Interdomain, NullControllerThrows) {
  Fixture f;
  EXPECT_THROW(InterdomainCoordinator(f.sim, f.topo, {{"west", nullptr}}),
               gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::vc
