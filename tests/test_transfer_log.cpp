#include "gridftp/transfer_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace gridvc::gridftp {
namespace {

TransferRecord make(double start, double duration, Bytes size = MiB) {
  TransferRecord r;
  r.type = TransferType::kRetrieve;
  r.size = size;
  r.start_time = start;
  r.duration = duration;
  r.server_host = "srv";
  r.remote_host = "remote";
  r.streams = 8;
  r.stripes = 2;
  r.tcp_buffer = 16 * MiB;
  r.block_size = 256 * KiB;
  return r;
}

TEST(TransferRecord, DerivedQuantities) {
  const TransferRecord r = make(10.0, 4.0, 100 * MiB);
  EXPECT_DOUBLE_EQ(r.end_time(), 14.0);
  EXPECT_NEAR(r.throughput(), 100.0 * 1024 * 1024 * 8 / 4.0, 1.0);
}

TEST(TransferLog, CsvRoundTrip) {
  TransferLog log{make(1.0, 2.0), make(5.5, 0.25, 42)};
  log[1].type = TransferType::kStore;
  log[1].remote_host = "with,comma";
  std::stringstream ss;
  write_log(ss, log);
  const TransferLog parsed = read_log(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].size, log[0].size);
  EXPECT_EQ(parsed[1].type, TransferType::kStore);
  EXPECT_EQ(parsed[1].remote_host, "with,comma");
  EXPECT_DOUBLE_EQ(parsed[0].start_time, 1.0);
  EXPECT_EQ(parsed[0].streams, 8);
  EXPECT_EQ(parsed[0].stripes, 2);
  EXPECT_EQ(parsed[0].tcp_buffer, 16 * MiB);
}

TEST(TransferLog, ReadRejectsMalformedRows) {
  std::stringstream ss("header\nRETR,notanumber,0,1,s,r,1,1,0,0\n");
  EXPECT_THROW(read_log(ss), ParseError);
  std::stringstream short_row("header\nRETR,1,0\n");
  EXPECT_THROW(read_log(short_row), ParseError);
  std::stringstream bad_type("header\nPUSH,1,0,1,s,r,1,1,0,0\n");
  EXPECT_THROW(read_log(bad_type), ParseError);
}

TEST(TransferLog, SortByStartIsStableOnTies) {
  TransferLog log{make(5.0, 1.0), make(1.0, 9.0), make(1.0, 2.0)};
  sort_by_start(log);
  EXPECT_DOUBLE_EQ(log[0].start_time, 1.0);
  EXPECT_DOUBLE_EQ(log[0].duration, 2.0);  // earlier end first
  EXPECT_DOUBLE_EQ(log[2].start_time, 5.0);
}

TEST(TransferLog, AnonymizeClearsRemotes) {
  TransferLog log{make(0, 1), make(1, 1)};
  anonymize_remote_hosts(log);
  for (const auto& r : log) EXPECT_TRUE(r.remote_host.empty());
}

TEST(TransferLog, VectorHelpers) {
  TransferLog log{make(0.0, 1.0, 100 * MiB), make(2.0, 2.0, 512 * MiB)};
  const auto tput = throughputs_mbps(log);
  ASSERT_EQ(tput.size(), 2u);
  EXPECT_NEAR(tput[0], 100 * 1.048576 * 8, 0.01);
  const auto sizes = sizes_megabytes(log);
  EXPECT_DOUBLE_EQ(sizes[1], 512.0);
  const auto durs = durations_seconds(log);
  EXPECT_DOUBLE_EQ(durs[0], 1.0);
}

TEST(TransferLog, ZeroDurationThroughputIsZero) {
  TransferRecord r = make(0.0, 0.0);
  EXPECT_DOUBLE_EQ(r.throughput(), 0.0);
}

}  // namespace
}  // namespace gridvc::gridftp
