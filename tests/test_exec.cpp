// Deterministic parallel execution subsystem: the contract under test is
// that every parallel construct produces byte-identical results at ANY
// thread count — per-task RNG streams are derived from (seed, task
// index), never from shared sequential state, so scheduling order cannot
// leak into the output.
#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/session_grouping.hpp"
#include "analysis/vc_feasibility.hpp"
#include "common/rng.hpp"
#include "exec/parallel_sort.hpp"
#include "exec/rng_stream.hpp"
#include "gridftp/transfer_log.hpp"
#include "stats/quantile.hpp"
#include "workload/profiles.hpp"
#include "workload/scenarios.hpp"
#include "workload/synth.hpp"

namespace gridvc::exec {
namespace {

// Restores the process-default pool width when a test body returns.
struct DefaultThreadsGuard {
  ~DefaultThreadsGuard() { set_default_threads(0); }
};

std::string log_bytes(const gridftp::TransferLog& log) {
  std::ostringstream out;
  gridftp::write_log(out, log);
  return out.str();
}

TEST(StreamRng, SameSeedAndStreamReproduce) {
  Rng a = stream_rng(42, 7);
  Rng b = stream_rng(42, 7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(StreamRng, StreamsAreIndependent) {
  // Different stream indices (and different seeds) must give different
  // draw sequences; consecutive indices are the common case in
  // parallel_map, so check those specifically.
  Rng s0 = stream_rng(42, 0);
  Rng s1 = stream_rng(42, 1);
  Rng other_seed = stream_rng(43, 0);
  int equal01 = 0, equal_seed = 0;
  for (int i = 0; i < 64; ++i) {
    const double a = s0.uniform();
    if (a == s1.uniform()) ++equal01;
    if (a == other_seed.uniform()) ++equal_seed;
  }
  EXPECT_LE(equal01, 1);
  EXPECT_LE(equal_seed, 1);
}

TEST(StreamRng, KeyAvalanche) {
  // Neighboring (seed, stream) pairs should produce well-separated keys.
  const std::uint64_t base = stream_key(1, 1);
  EXPECT_NE(base, stream_key(1, 2));
  EXPECT_NE(base, stream_key(2, 1));
  EXPECT_NE(stream_key(0, 0), 0u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  ThreadPool pool(4);
  const std::vector<std::uint64_t> out =
      pool.parallel_map<std::uint64_t>(1000, [](std::size_t i) {
        return static_cast<std::uint64_t>(i) * i;
      });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<std::uint64_t>(i) * i);
  }
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(pool.parallel_map<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(ThreadPool, FirstExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t i) {
                                   if (i == 517) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a failed region and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedRegionsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32 * 32);
  pool.parallel_for(32, [&](std::size_t outer) {
    // Inner regions on a worker lane degrade to inline execution; a
    // naive implementation would deadlock waiting for occupied workers.
    pool.parallel_for(32, [&](std::size_t inner) {
      hits[outer * 32 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelSort, MatchesStableSortAtAnyThreadCount) {
  // Pairs with heavily duplicated keys: a non-stable or thread-dependent
  // merge would reorder the payloads of equal keys.
  Rng rng(99);
  std::vector<std::pair<int, int>> base(50000);
  for (int i = 0; i < static_cast<int>(base.size()); ++i) {
    base[i] = {static_cast<int>(rng.uniform_int(0, 40)), i};
  }
  auto expected = base;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    auto got = base;
    parallel_sort(got, pool,
                  [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(got, expected) << "at " << threads << " threads";
  }
}

TEST(ParallelSort, SmallInputsUseTheSerialPath) {
  ThreadPool pool(8);
  std::vector<int> v{5, 3, 1, 4, 2};
  parallel_sort(v, pool);
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(DeterministicParallel, SynthesisByteIdenticalAcrossThreadCounts) {
  DefaultThreadsGuard guard;
  const auto profile = workload::slac_bnl_profile(3000.0 / 1021999.0);

  set_default_threads(1);
  const auto serial = workload::synthesize_trace(profile, 2012);
  const std::string serial_bytes = log_bytes(serial);

  for (unsigned threads : {2u, 8u}) {
    set_default_threads(threads);
    const auto parallel = workload::synthesize_trace(profile, 2012);
    ASSERT_EQ(log_bytes(parallel), serial_bytes) << "at " << threads << " threads";
  }
  EXPECT_EQ(serial.size(), profile.target_transfers);
}

TEST(DeterministicParallel, GroupSessionsThreadCountInvariant) {
  DefaultThreadsGuard guard;
  // Two endpoint pairs and enough records to cross the parallel
  // threshold, so the concurrent partition sweep actually runs.
  auto log = workload::synthesize_trace(workload::slac_bnl_profile(4000.0 / 1021999.0), 3);
  auto ncar_profile = workload::ncar_nics_profile();
  ncar_profile.target_transfers = 3000;
  const auto ncar = workload::synthesize_trace(ncar_profile, 4);
  log.insert(log.end(), ncar.begin(), ncar.end());

  set_default_threads(1);
  const auto serial = analysis::group_sessions(log, {.gap = 60.0});
  set_default_threads(8);
  const auto parallel = analysis::group_sessions(log, {.gap = 60.0});

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(parallel[i].key, serial[i].key);
    ASSERT_EQ(parallel[i].transfer_indices, serial[i].transfer_indices);
    ASSERT_EQ(parallel[i].total_bytes, serial[i].total_bytes);
    ASSERT_DOUBLE_EQ(parallel[i].start_time, serial[i].start_time);
    ASSERT_DOUBLE_EQ(parallel[i].end_time, serial[i].end_time);
  }
}

TEST(DeterministicParallel, SuitabilitySweepMatchesSerialCells) {
  DefaultThreadsGuard guard;
  const auto log = workload::synthesize_trace(workload::slac_bnl_profile(3000.0 / 1021999.0), 8);
  const std::vector<analysis::SuitabilityPoint> points{
      {0.0, 60.0}, {60.0, 60.0}, {60.0, 0.05}, {120.0, 60.0}, {3600.0, 0.05}};

  set_default_threads(1);
  const auto serial = analysis::suitability_sweep(log, points);
  set_default_threads(8);
  const auto parallel = analysis::suitability_sweep(log, points);

  ASSERT_EQ(serial.size(), points.size());
  ASSERT_EQ(parallel.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_EQ(parallel[i].session_count, serial[i].session_count);
    ASSERT_EQ(parallel[i].feasibility.suitable_sessions,
              serial[i].feasibility.suitable_sessions);
    ASSERT_EQ(parallel[i].feasibility.suitable_transfers,
              serial[i].feasibility.suitable_transfers);
    ASSERT_DOUBLE_EQ(parallel[i].feasibility.reference_throughput,
                     serial[i].feasibility.reference_throughput);
  }

  // Each cell equals the straight-line computation it parallelizes.
  const auto sessions = analysis::group_sessions(log, {.gap = points[1].gap});
  const auto direct = analysis::analyze_vc_feasibility(
      sessions, log, {.setup_delay = points[1].setup_delay});
  EXPECT_EQ(serial[1].session_count, sessions.size());
  EXPECT_EQ(serial[1].feasibility.suitable_sessions, direct.suitable_sessions);
}

TEST(DeterministicParallel, QuantilesMatchSerialSort) {
  DefaultThreadsGuard guard;
  Rng rng(17);
  std::vector<double> values(100000);
  for (auto& v : values) v = rng.uniform(0.0, 1e9);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (unsigned threads : {1u, 8u}) {
    set_default_threads(threads);
    for (double p : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
      ASSERT_DOUBLE_EQ(stats::quantile(values, p), stats::quantile_sorted(sorted, p))
          << "p=" << p << " threads=" << threads;
    }
  }
}

TEST(DeterministicParallel, ScenarioReplicationsAreSeedKeyed) {
  DefaultThreadsGuard guard;
  workload::NerscOrnlConfig config;
  config.transfer_count = 6;
  config.days = 2;

  set_default_threads(1);
  const auto serial = workload::run_nersc_ornl_replications(config, 77, 3);
  set_default_threads(4);
  const auto parallel = workload::run_nersc_ornl_replications(config, 77, 3);

  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(log_bytes(parallel[i].log), log_bytes(serial[i].log)) << "replication " << i;
  }
  // Distinct seeds, distinct replications.
  EXPECT_NE(log_bytes(serial[0].log), log_bytes(serial[1].log));
  // Replication i equals a standalone run at seed base + i.
  const auto standalone = workload::run_nersc_ornl_tests(config, 78);
  EXPECT_EQ(log_bytes(serial[1].log), log_bytes(standalone.log));
}

TEST(DefaultPool, SetAndRestore) {
  DefaultThreadsGuard guard;
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  set_default_threads(0);
  EXPECT_EQ(default_threads(), hardware_threads());
  EXPECT_GE(hardware_threads(), 1u);
}

}  // namespace
}  // namespace gridvc::exec
