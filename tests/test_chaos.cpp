#include "workload/chaos.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "recovery/fault_schedule.hpp"

namespace gridvc::workload {
namespace {

std::string first_violation(const ChaosResult& result) {
  return result.violations.empty()
             ? std::string()
             : result.violations[0].invariant + ": " + result.violations[0].detail;
}

/// Small-but-busy config so every test stays fast while still crossing
/// all three fault layers.
ChaosConfig small_config() {
  ChaosConfig config;
  config.task_count = 4;
  config.files_per_task = 3;
  config.file_size = 4 * GiB;
  config.task_interarrival = 45.0;
  config.link_mtbf = 150.0;
  config.link_mttr = 15.0;
  config.server_mtbf = 250.0;
  config.server_mttr = 30.0;
  config.idc_mtbf = 400.0;
  config.idc_mttr = 20.0;
  config.fault_horizon = 900.0;
  return config;
}

TEST(Chaos, CleanRunHoldsAllInvariants) {
  const ChaosResult result = run_chaos(small_config(), 1);
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.transfers_submitted, 0u);
  EXPECT_EQ(result.transfers_completed + result.transfers_failed,
            static_cast<std::uint64_t>(result.transfers_submitted));
  EXPECT_FALSE(result.digest.empty());
}

TEST(Chaos, BatteryCoversAllFaultLayersAndStaysClean) {
  const auto results = run_chaos_battery(small_config(), 1, 8);
  ASSERT_EQ(results.size(), 8u);
  std::uint64_t crashes = 0, outages = 0, link_downs = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok()) << first_violation(r);
    crashes += r.server_crashes;
    outages += r.idc_outages;
    link_downs += r.link_downs;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(outages, 0u);
  EXPECT_GT(link_downs, 0u);
}

TEST(Chaos, ReplayIsByteIdentical) {
  const ChaosConfig config = small_config();
  const ChaosResult a = run_chaos(config, 9);
  const ChaosResult b = run_chaos(config, 9);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.schedule.windows, b.schedule.windows);
  EXPECT_EQ(a.trace_events, b.trace_events);
}

TEST(Chaos, ParallelBatteryMatchesSerialRuns) {
  const ChaosConfig config = small_config();
  const auto battery = run_chaos_battery(config, 21, 6);
  for (std::size_t i = 0; i < battery.size(); ++i) {
    EXPECT_EQ(battery[i].digest, run_chaos(config, 21 + i).digest) << "seed " << 21 + i;
  }
}

TEST(Chaos, MalleableBatteryStaysCleanAndReplaysByteIdentical) {
  // Malleable shaping, defrag, and reroute all run inside the chaos
  // workload; every invariant must still hold and the digest must stay a
  // pure function of (config, seed) — the parallel battery and the
  // serial rerun agree bit for bit.
  ChaosConfig config = small_config();
  config.malleable_reservations = true;
  const auto battery = run_chaos_battery(config, 31, 4);
  ASSERT_EQ(battery.size(), 4u);
  for (std::size_t i = 0; i < battery.size(); ++i) {
    EXPECT_TRUE(battery[i].ok()) << first_violation(battery[i]);
    EXPECT_EQ(battery[i].digest, run_chaos(config, 31 + i).digest)
        << "seed " << 31 + i;
  }
}

TEST(Chaos, ServiceCrashRecoversFromJournal) {
  ChaosConfig config = small_config();
  // Land the crash inside the third task's window (submitted at t=90,
  // each file takes ~8.6 s) so the journal has live state to restore.
  config.service_crash_at = 100.0;
  const ChaosResult result = run_chaos(config, 5);
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.tasks_recovered, 0u);
}

TEST(Chaos, OverloadGuardShedsUnderPressure) {
  ChaosConfig config = small_config();
  config.task_count = 10;
  config.task_interarrival = 2.0;  // all tasks land while two slots exist
  config.queue_limit = 2;
  config.overload_policy = gridftp::OverloadPolicy::kShedOldest;
  const ChaosResult result = run_chaos(config, 3);
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.tasks_shed, 0u);
}

TEST(Chaos, SabotageIsCaughtAndShrinksToOneServerWindow) {
  ChaosConfig config = small_config();
  config.task_count = 2;
  config.files_per_task = 2;
  config.sabotage = true;
  // Pick the first seed whose schedule crashes a server (deterministic).
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate <= 8; ++candidate) {
    ChaosConfig probe = config;
    probe.sabotage = false;
    if (run_chaos(probe, candidate).server_crashes > 0) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no candidate seed crashed a server";

  const ChaosResult poisoned = run_chaos(config, seed);
  ASSERT_FALSE(poisoned.ok());
  bool found_consistency_violation = false;
  for (const auto& v : poisoned.violations) {
    if (v.invariant == "trace-metrics") found_consistency_violation = true;
  }
  EXPECT_TRUE(found_consistency_violation);

  const recovery::FaultSchedule minimal = shrink_chaos_schedule(config, seed);
  ASSERT_EQ(minimal.windows.size(), 1u);
  EXPECT_EQ(minimal.windows[0].kind, recovery::FaultTargetKind::kServer);
}

TEST(Chaos, BatteryRejectsSharedSinksAndOverrides) {
  ChaosConfig config = small_config();
  recovery::FaultSchedule schedule;
  config.schedule_override = &schedule;
  EXPECT_THROW(run_chaos_battery(config, 1, 2), PreconditionError);
  EXPECT_THROW(shrink_chaos_schedule(small_config(), 1), PreconditionError);
}

}  // namespace
}  // namespace gridvc::workload
