#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"
#include "stats/binning.hpp"
#include "stats/boxplot.hpp"
#include "stats/correlation.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "common/rng.hpp"

namespace gridvc::stats {
namespace {

// ---------------------------------------------------------------- quantile

TEST(Quantile, MatchesRType7) {
  // R: quantile(c(1,2,3,4), c(.25,.5,.75)) -> 1.75, 2.5, 3.25
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(v, 0.50), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 3.25);
}

TEST(Quantile, Endpoints) {
  const std::vector<double> v{5, 1, 9};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.3), 7.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> v{9, 2, 7, 4, 1};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 4.0);
}

TEST(Quantile, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW(quantile(v, 0.5), gridvc::PreconditionError);
}

TEST(Quantile, BatchMatchesSingle) {
  const std::vector<double> v{3, 1, 4, 1, 5, 9, 2, 6};
  const std::vector<double> probs{0.1, 0.5, 0.9};
  const auto qs = quantiles(v, probs);
  ASSERT_EQ(qs.size(), 3u);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_DOUBLE_EQ(qs[i], quantile(v, probs[i]));
  }
}

// ----------------------------------------------------------------- summary

TEST(Summary, KnownValues) {
  // R: summary(c(2,4,4,4,5,5,7,9)) and sd() = 2.138...
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.q1, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.q3, 5.5);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(s.iqr(), 1.5);
  EXPECT_NEAR(s.cv(), 2.13809 / 5.0, 1e-4);
}

TEST(Summary, SingleValueHasZeroSd) {
  const std::vector<double> v{3.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, s.max);
}

TEST(Summary, CvZeroWhenMeanZero) {
  const std::vector<double> v{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(summarize(v).cv(), 0.0);
}

// ------------------------------------------------------------- correlation

TEST(Pearson, PerfectPositive) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{10, 20, 30, 40};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{3, 2, 1};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, KnownMidValue) {
  // Hand-checked: cor(c(1,2,3,4,5), c(2,1,4,3,5)) = 0.8
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 1, 4, 3, 5};
  EXPECT_NEAR(pearson(x, y), 0.8, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1};
  EXPECT_THROW(pearson(x, y), gridvc::PreconditionError);
}

TEST(QuartileCorrelation, PartitionsByKey) {
  // 8 points, keys 1..8: quartile buckets get 2 points each.
  std::vector<double> x, y, key;
  for (int i = 1; i <= 8; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i);
    key.push_back(i);
  }
  const auto qc = correlate_by_quartile(x, y, key);
  EXPECT_NEAR(qc.overall, 1.0, 1e-12);
  ASSERT_EQ(qc.by_quartile.size(), 4u);
  ASSERT_EQ(qc.quartile_counts.size(), 4u);
  std::size_t total = 0;
  for (std::size_t c : qc.quartile_counts) total += c;
  EXPECT_EQ(total, 8u);
  for (double rho : qc.by_quartile) EXPECT_NEAR(rho, 1.0, 1e-9);
}

// ----------------------------------------------------------------- binning

TEST(SizeBinner, PaperSchemeBoundaries) {
  auto b = SizeBinner::paper_scheme();
  // 1024 bins of 1 MiB + 31 bins of 100 MiB (1 GiB .. 4 GiB + 4 GiB exact edge).
  EXPECT_EQ(b.bins().size(), 1024u + 31u);
  EXPECT_EQ(*b.bin_index(0), 0u);
  EXPECT_EQ(*b.bin_index(gridvc::MiB - 1), 0u);
  EXPECT_EQ(*b.bin_index(gridvc::MiB), 1u);
  EXPECT_EQ(*b.bin_index(gridvc::GiB - 1), 1023u);
  EXPECT_EQ(*b.bin_index(gridvc::GiB), 1024u);
  EXPECT_EQ(*b.bin_index(gridvc::GiB + 99 * gridvc::MiB), 1024u);
  EXPECT_EQ(*b.bin_index(gridvc::GiB + 100 * gridvc::MiB), 1025u);
  EXPECT_FALSE(b.bin_index(4 * gridvc::GiB).has_value());
}

TEST(SizeBinner, DropsOutOfRange) {
  auto b = SizeBinner::fixed(10, 100);
  b.add(5, 1.0);
  b.add(150, 2.0);
  EXPECT_EQ(b.dropped(), 1u);
}

TEST(SizeBinner, BinnedMediansAndCounts) {
  auto b = SizeBinner::fixed(gridvc::MiB, 10 * gridvc::MiB);
  b.add(gridvc::MiB / 2, 10.0);
  b.add(gridvc::MiB / 2, 30.0);
  b.add(gridvc::MiB / 2, 20.0);
  b.add(5 * gridvc::MiB, 99.0);
  const auto pts = binned_medians(b);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].median, 20.0);
  EXPECT_EQ(pts[0].count, 3u);
  EXPECT_DOUBLE_EQ(pts[1].median, 99.0);
}

TEST(SizeBinner, MinCountFilter) {
  auto b = SizeBinner::fixed(gridvc::MiB, 10 * gridvc::MiB);
  b.add(0, 1.0);
  b.add(2 * gridvc::MiB, 1.0);
  b.add(2 * gridvc::MiB, 2.0);
  const auto pts = binned_medians(b, 2);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].count, 2u);
}

// --------------------------------------------------------------- histogram

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // clamps into bucket 0
  h.add(100.0);  // clamps into bucket 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 100.0, 20);
  gridvc::Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0.0, 100.0));
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 5.0) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(100.0), 1.0);
  EXPECT_NEAR(h.cdf(50.0), 0.5, 0.03);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string r = h.render(10);
  EXPECT_NE(r.find("1"), std::string::npos);
  EXPECT_NE(r.find("2"), std::string::npos);
}

// ----------------------------------------------------------------- boxplot

TEST(BoxStats, NoOutliers) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const BoxStats b = box_stats(v);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.whisker_lo, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_hi, 5.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(BoxStats, DetectsOutliers) {
  std::vector<double> v{10, 11, 12, 13, 14, 15, 16, 17, 100};
  const BoxStats b = box_stats(v);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100.0);
  EXPECT_LT(b.whisker_hi, 100.0);
}

TEST(BoxPlot, RenderHasAllLabels) {
  std::vector<BoxGroup> groups{
      {"mem-mem", box_stats(std::vector<double>{1, 2, 3})},
      {"disk-disk", box_stats(std::vector<double>{2, 3, 4})},
  };
  const std::string out = render_boxplots(groups);
  EXPECT_NE(out.find("mem-mem"), std::string::npos);
  EXPECT_NE(out.find("disk-disk"), std::string::npos);
  EXPECT_NE(out.find('M'), std::string::npos);
}

// ------------------------------------------------------------------- table

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.set_header({"A", "Bee"});
  t.add_row({"1", "2"});
  t.add_row({"33"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Bee"), std::string::npos);
  EXPECT_NE(out.find("33"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowBeforeHeaderThrows) {
  Table t;
  EXPECT_THROW(t.add_row({"x"}), gridvc::PreconditionError);
}

TEST(Table, RowWiderThanHeaderThrows) {
  Table t;
  t.set_header({"one"});
  EXPECT_THROW(t.add_row({"a", "b"}), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::stats
