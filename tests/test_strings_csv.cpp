#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace gridvc {
namespace {

TEST(Split, BasicFields) {
  const auto f = split("a,b,c", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto f = split(",x,,", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
  EXPECT_EQ(f[3], "");
}

TEST(Split, NoDelimiter) {
  const auto f = split("hello", ',');
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "hello");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-2.5, 0), "-2");  // round-half-even via printf
  EXPECT_EQ(format_fixed(0.0, 1), "0.0");
}

TEST(FormatGrouped, ThousandsSeparators) {
  EXPECT_EQ(format_grouped(12037604.0, 0), "12,037,604");
  EXPECT_EQ(format_grouped(1234.5, 1), "1,234.5");
  EXPECT_EQ(format_grouped(999.0, 0), "999");
  EXPECT_EQ(format_grouped(-1000.0, 0), "-1,000");
}

TEST(FormatPercent, Fractions) {
  EXPECT_EQ(format_percent(0.5687, 2), "56.87%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("gridftp", "grid"));
  EXPECT_FALSE(starts_with("grid", "gridftp"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Csv, SimpleLineRoundTrip) {
  const CsvRow row{"a", "b", "c"};
  EXPECT_EQ(format_csv_line(row), "a,b,c");
  EXPECT_EQ(parse_csv_line("a,b,c"), row);
}

TEST(Csv, QuotingCommasAndQuotes) {
  const CsvRow row{"plain", "has,comma", "has\"quote"};
  const std::string line = format_csv_line(row);
  EXPECT_EQ(parse_csv_line(line), row);
}

TEST(Csv, QuotedFieldWithEscapedQuote) {
  const auto row = parse_csv_line(R"("say ""hi""",x)");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "say \"hi\"");
  EXPECT_EQ(row[1], "x");
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"oops,1,2"), ParseError);
}

TEST(Csv, ToleratesTrailingCarriageReturn) {
  const auto row = parse_csv_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(Csv, StreamRoundTrip) {
  std::vector<CsvRow> rows{{"h1", "h2"}, {"1", "two words"}, {"3", "x,y"}};
  std::stringstream ss;
  write_csv(ss, rows);
  EXPECT_EQ(read_csv(ss), rows);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream ss("a,b\n\nc,d\n");
  const auto rows = read_csv(ss);
  ASSERT_EQ(rows.size(), 2u);
}

}  // namespace
}  // namespace gridvc
