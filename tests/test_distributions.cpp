#include "common/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/error.hpp"

namespace gridvc {
namespace {

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(d.sample(rng));
  return out;
}

TEST(Constant, AlwaysReturnsValue) {
  Constant c(3.25);
  for (double v : draw(c, 100)) EXPECT_EQ(v, 3.25);
}

TEST(Uniform, StaysInRange) {
  Uniform u(2.0, 9.0);
  for (double v : draw(u, 5000)) {
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 9.0);
  }
}

TEST(Uniform, RejectsInvertedRange) { EXPECT_THROW(Uniform(3.0, 1.0), PreconditionError); }

TEST(Exponential, MeanMatches) {
  Exponential e(4.0);
  const auto v = draw(e, 100000);
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(v.size()), 4.0, 0.1);
}

TEST(Exponential, RejectsNonPositiveMean) {
  EXPECT_THROW(Exponential(0.0), PreconditionError);
}

TEST(TruncatedLogNormal, MedianAndSupport) {
  TruncatedLogNormal d(100.0, 1.0, 1.0, 10000.0);
  auto v = draw(d, 20001);
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], 100.0, 10.0);
  EXPECT_GE(v.front(), 1.0);
  EXPECT_LE(v.back(), 10000.0);
}

TEST(TruncatedLogNormal, TightTruncationStillTerminates) {
  // Nearly all mass outside [99, 101]: sampling must fall back to the
  // clamped median instead of looping forever.
  TruncatedLogNormal d(1.0, 3.0, 99.0, 101.0);
  for (double v : draw(d, 200)) {
    ASSERT_GE(v, 99.0);
    ASSERT_LE(v, 101.0);
  }
}

TEST(TruncatedLogNormal, RejectsBadParameters) {
  EXPECT_THROW(TruncatedLogNormal(0.0, 1.0, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(TruncatedLogNormal(1.0, -1.0, 0.0, 1.0), PreconditionError);
  EXPECT_THROW(TruncatedLogNormal(1.0, 1.0, 2.0, 1.0), PreconditionError);
}

TEST(TruncatedPareto, Support) {
  TruncatedPareto d(1.2, 5.0, 500.0);
  auto v = draw(d, 20000);
  for (double x : v) {
    ASSERT_GE(x, 5.0);
    ASSERT_LE(x, 500.0);
  }
}

TEST(TruncatedPareto, HeavyTailOrdering) {
  // A smaller alpha has a heavier tail: its 99th percentile exceeds the
  // larger alpha's.
  TruncatedPareto heavy(0.6, 1.0, 100000.0);
  TruncatedPareto light(2.5, 1.0, 100000.0);
  auto hv = draw(heavy, 20001, 5);
  auto lv = draw(light, 20001, 5);
  std::sort(hv.begin(), hv.end());
  std::sort(lv.begin(), lv.end());
  EXPECT_GT(hv[static_cast<std::size_t>(0.99 * hv.size())],
            lv[static_cast<std::size_t>(0.99 * lv.size())]);
}

TEST(TruncatedPareto, RejectsBadParameters) {
  EXPECT_THROW(TruncatedPareto(0.0, 1.0, 2.0), PreconditionError);
  EXPECT_THROW(TruncatedPareto(1.0, 2.0, 2.0), PreconditionError);
  EXPECT_THROW(TruncatedPareto(1.0, 0.0, 2.0), PreconditionError);
}

TEST(EmpiricalQuantile, ExactAtAnchors) {
  EmpiricalQuantile d({{0.0, 10.0}, {0.25, 20.0}, {0.5, 30.0}, {0.75, 50.0}, {1.0, 100.0}});
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.75), 50.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
}

TEST(EmpiricalQuantile, LinearBetweenAnchors) {
  EmpiricalQuantile d({{0.0, 0.0}, {1.0, 10.0}});
  EXPECT_DOUBLE_EQ(d.quantile(0.3), 3.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.85), 8.5);
}

TEST(EmpiricalQuantile, SampledQuartilesMatchAnchors) {
  EmpiricalQuantile d({{0.0, 0.0}, {0.5, 100.0}, {1.0, 200.0}});
  auto v = draw(d, 40001);
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], 100.0, 3.0);
}

TEST(EmpiricalQuantile, RejectsMalformedAnchors) {
  using A = std::vector<std::pair<double, double>>;
  EXPECT_THROW(EmpiricalQuantile(A{{0.0, 1.0}}), PreconditionError);
  EXPECT_THROW(EmpiricalQuantile(A{{0.1, 1.0}, {1.0, 2.0}}), PreconditionError);
  EXPECT_THROW(EmpiricalQuantile(A{{0.0, 1.0}, {0.9, 2.0}}), PreconditionError);
  EXPECT_THROW(EmpiricalQuantile(A{{0.0, 2.0}, {1.0, 1.0}}), PreconditionError);
}

TEST(Mixture, RespectsWeights) {
  auto lo = std::make_shared<Constant>(1.0);
  auto hi = std::make_shared<Constant>(2.0);
  Mixture m({0.8, 0.2}, {lo, hi});
  int ones = 0;
  const auto v = draw(m, 50000);
  for (double x : v) {
    if (x == 1.0) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / static_cast<double>(v.size()), 0.8, 0.01);
}

TEST(Mixture, RejectsMismatchedInputs) {
  auto c = std::make_shared<Constant>(1.0);
  EXPECT_THROW(Mixture({1.0, 1.0}, {c}), PreconditionError);
  EXPECT_THROW(Mixture({}, {}), PreconditionError);
  EXPECT_THROW(Mixture({0.0}, {c}), PreconditionError);
  EXPECT_THROW(Mixture({-1.0, 2.0}, {c, c}), PreconditionError);
}

TEST(Discrete, OnlyListedValues) {
  Discrete d({2.0, 4.0, 8.0}, {1.0, 1.0, 2.0});
  int eights = 0;
  const auto v = draw(d, 40000);
  for (double x : v) {
    ASSERT_TRUE(x == 2.0 || x == 4.0 || x == 8.0);
    if (x == 8.0) ++eights;
  }
  EXPECT_NEAR(static_cast<double>(eights) / static_cast<double>(v.size()), 0.5, 0.02);
}

TEST(Discrete, RejectsMismatchedInputs) {
  EXPECT_THROW(Discrete({1.0}, {1.0, 2.0}), PreconditionError);
  EXPECT_THROW(Discrete({}, {}), PreconditionError);
}

}  // namespace
}  // namespace gridvc
