// OSCARS extension features: modifyReservation and link-failure
// re-pathing.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "recovery/circuit_breaker.hpp"
#include "recovery/journal.hpp"
#include "vc/idc.hpp"

namespace gridvc::vc {
namespace {

using net::LinkId;
using net::NodeId;
using net::NodeKind;
using net::Topology;

// Diamond: a -> r1 -> b (short) and a -> r2 -> b (longer), all 10G.
struct Fixture {
  sim::Simulator sim;
  Topology topo;
  NodeId a, b;
  LinkId a_r1, r1_b, a_r2, r2_b;

  Fixture() {
    a = topo.add_node("a", NodeKind::kHost);
    const NodeId r1 = topo.add_node("r1", NodeKind::kRouter);
    const NodeId r2 = topo.add_node("r2", NodeKind::kRouter);
    b = topo.add_node("b", NodeKind::kHost);
    a_r1 = topo.add_link(a, r1, gbps(10), 0.001);
    r1_b = topo.add_link(r1, b, gbps(10), 0.001);
    a_r2 = topo.add_link(a, r2, gbps(10), 0.005);
    r2_b = topo.add_link(r2, b, gbps(10), 0.005);
  }

  ReservationRequest request(Seconds start, Seconds end, BitsPerSecond bw) {
    ReservationRequest r;
    r.src = a;
    r.dst = b;
    r.bandwidth = bw;
    r.start_time = start;
    r.end_time = end;
    return r;
  }
};

TEST(IdcModify, GrowBandwidthWithinCapacity) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  const auto r = idc.create_reservation(f.request(100, 200, gbps(2)));
  ASSERT_TRUE(r.accepted());
  EXPECT_TRUE(idc.modify_reservation(*r.circuit_id, gbps(8), 200.0));
  EXPECT_DOUBLE_EQ(idc.circuit(*r.circuit_id).request.bandwidth, gbps(8));
}

TEST(IdcModify, GrowBeyondCapacityRejectedAndOldBookingIntact) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  const auto first = idc.create_reservation(f.request(100, 200, gbps(6)));
  const auto second = idc.create_reservation(f.request(100, 200, gbps(6)));
  ASSERT_TRUE(first.accepted());
  ASSERT_TRUE(second.accepted());  // takes the other branch of the diamond
  // Growing the first to 12G cannot fit anywhere.
  EXPECT_FALSE(idc.modify_reservation(*first.circuit_id, gbps(12), 200.0));
  // The original booking survived: a 4G companion still fits beside it...
  EXPECT_DOUBLE_EQ(idc.circuit(*first.circuit_id).request.bandwidth, gbps(6));
  // ...and a third 6G circuit is still rejected (both branches hold 6G).
  EXPECT_FALSE(idc.create_reservation(f.request(100, 200, gbps(6))).accepted());
}

TEST(IdcModify, ExtendEndTime) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  const auto r = idc.create_reservation(f.request(100, 200, gbps(4)));
  ASSERT_TRUE(r.accepted());
  EXPECT_TRUE(idc.modify_reservation(*r.circuit_id, gbps(4), 500.0));
  EXPECT_DOUBLE_EQ(idc.circuit(*r.circuit_id).request.end_time, 500.0);
  // The extension is booked: an overlapping 8G circuit on the same branch
  // at t=300 must avoid it or fail. (The other branch still has room.)
  const auto other = idc.create_reservation(f.request(300, 400, gbps(8)));
  ASSERT_TRUE(other.accepted());
  for (net::LinkId l : idc.circuit(*other.circuit_id).path) {
    for (net::LinkId mine : idc.circuit(*r.circuit_id).path) EXPECT_NE(l, mine);
  }
}

TEST(IdcModify, ShrinkAlwaysFits) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  const auto r = idc.create_reservation(f.request(100, 200, gbps(9)));
  ASSERT_TRUE(r.accepted());
  EXPECT_TRUE(idc.modify_reservation(*r.circuit_id, gbps(1), 150.0));
  // Freed capacity is immediately available.
  EXPECT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
}

TEST(IdcModify, RejectsDegenerateWindowAndWrongState) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  const auto r = idc.create_reservation(f.request(10, 200, gbps(2)));
  ASSERT_TRUE(r.accepted());
  EXPECT_FALSE(idc.modify_reservation(*r.circuit_id, gbps(2), 5.0));  // ends pre-setup
  f.sim.run_until(50.0);  // circuit is now active
  EXPECT_THROW(idc.modify_reservation(*r.circuit_id, gbps(2), 300.0),
               gridvc::PreconditionError);
}

TEST(IdcFailure, RepathsScheduledCircuitAroundFailedLink) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  const auto r = idc.create_reservation(f.request(100, 200, gbps(4)));
  ASSERT_TRUE(r.accepted());
  // The circuit chose the short branch (a_r1, r1_b). Fail r1_b.
  const auto& before = idc.circuit(*r.circuit_id).path;
  ASSERT_EQ(before, (net::Path{f.a_r1, f.r1_b}));
  EXPECT_EQ(idc.handle_link_failure(f.r1_b), 1u);
  EXPECT_EQ(idc.circuit(*r.circuit_id).path, (net::Path{f.a_r2, f.r2_b}));
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kScheduled);
}

TEST(IdcFailure, ActiveCircuitFailsThenResignalsAroundOutage) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  int activations = 0;
  bool released = false, failed = false;
  const auto r = idc.create_reservation(
      f.request(1, 300, gbps(4)), [&](const Circuit&) { ++activations; },
      [&](const Circuit&) { released = true; },
      [&](const Circuit& c) {
        failed = true;
        EXPECT_EQ(c.state, CircuitState::kFailed);
      });
  f.sim.run_until(50.0);
  ASSERT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kActive);
  ASSERT_EQ(idc.circuit(*r.circuit_id).path, (net::Path{f.a_r1, f.r1_b}));
  // Active circuits are handled asynchronously, so the synchronous
  // re-path count is zero: the guarantee is gone *now*.
  EXPECT_EQ(idc.handle_link_failure(f.r1_b), 0u);
  EXPECT_TRUE(failed);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kFailed);
  // After the re-signal backoff the circuit is re-homed on the far branch.
  f.sim.run_until(60.0);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kActive);
  EXPECT_EQ(idc.circuit(*r.circuit_id).path, (net::Path{f.a_r2, f.r2_b}));
  EXPECT_EQ(activations, 2);  // initial activation + re-signal
  f.sim.run();
  EXPECT_TRUE(released);  // still released at its end time
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kReleased);
  EXPECT_EQ(idc.stats().failed, 1u);
  EXPECT_EQ(idc.stats().resignaled, 1u);
  EXPECT_EQ(idc.stats().released, 1u);
}

TEST(IdcFailure, UnroutableCircuitEndsFailedAfterResignalsExhaust) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  bool released = false, failed = false;
  const auto active = idc.create_reservation(
      f.request(1, 300, gbps(4)), nullptr, [&](const Circuit&) { released = true; },
      [&](const Circuit&) { failed = true; });
  const auto scheduled = idc.create_reservation(f.request(400, 500, gbps(4)));
  f.sim.run_until(50.0);
  // Fail both branches' a-side links: nothing can be re-pathed.
  idc.handle_link_failure(f.a_r1);
  EXPECT_EQ(idc.handle_link_failure(f.a_r2), 0u);
  EXPECT_TRUE(failed);
  EXPECT_EQ(idc.circuit(*scheduled.circuit_id).state, CircuitState::kCancelled);
  f.sim.run();
  // Every re-signal found no route; the circuit stays kFailed and the
  // release callback never fires (the guarantee was never restored).
  EXPECT_EQ(idc.circuit(*active.circuit_id).state, CircuitState::kFailed);
  EXPECT_FALSE(released);
  EXPECT_EQ(idc.stats().failed, 1u);
  EXPECT_EQ(idc.stats().resignaled, 0u);
  EXPECT_EQ(idc.live_circuit_count(), 0u);  // retired after exhausting retries
}

TEST(IdcFailure, ResignalDisabledRetiresFailedCircuitImmediately) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  cfg.resignal_on_failure = false;
  Idc idc(f.sim, f.topo, cfg);
  const auto r = idc.create_reservation(f.request(1, 300, gbps(4)));
  f.sim.run_until(10.0);
  ASSERT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kActive);
  idc.handle_link_failure(f.r1_b);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kFailed);
  EXPECT_EQ(idc.live_circuit_count(), 0u);
  f.sim.run();
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kFailed);
}

TEST(IdcFailure, ReleaseNowOnFailedCircuitDropsPendingResignal) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  int activations = 0;
  const auto r = idc.create_reservation(f.request(1, 300, gbps(4)),
                                        [&](const Circuit&) { ++activations; });
  f.sim.run_until(10.0);
  idc.handle_link_failure(f.r1_b);
  ASSERT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kFailed);
  // The caller gave up on the task; the queued re-signal must not revive
  // the circuit behind its back.
  idc.release_now(*r.circuit_id);
  f.sim.run();
  EXPECT_EQ(activations, 1);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kFailed);
  EXPECT_EQ(idc.stats().resignaled, 0u);
}

TEST(IdcFailure, FailedLinkAvoidedByNewReservationsUntilRestored) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  idc.handle_link_failure(f.a_r1);
  const auto r = idc.create_reservation(f.request(100, 200, gbps(4)));
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(idc.circuit(*r.circuit_id).path, (net::Path{f.a_r2, f.r2_b}));
  idc.restore_link(f.a_r1);
  const auto r2 = idc.create_reservation(f.request(100, 200, gbps(4)));
  ASSERT_TRUE(r2.accepted());
  EXPECT_EQ(idc.circuit(*r2.circuit_id).path, (net::Path{f.a_r1, f.r1_b}));
}

TEST(IdcFailure, RepathedCircuitFreesOldLinks) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  const auto r = idc.create_reservation(f.request(100, 200, gbps(9)));
  ASSERT_TRUE(r.accepted());
  idc.handle_link_failure(f.r1_b);
  // The short branch's a_r1 is healthy and must be free again: restore
  // r1_b and book a full-rate circuit on the short branch.
  idc.restore_link(f.r1_b);
  const auto fresh = idc.create_reservation(f.request(100, 200, gbps(9)));
  ASSERT_TRUE(fresh.accepted());
  EXPECT_EQ(idc.circuit(*fresh.circuit_id).path, (net::Path{f.a_r1, f.r1_b}));
}

// ---------------------------------------------------------------------------
// Bounded lifecycle bookkeeping (the entries_ leak regression)
// ---------------------------------------------------------------------------

TEST(IdcLifecycleStore, TerminalCircuitsDoNotGrowLiveState) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  // Many short-lived circuits over a long run: released and cancelled
  // circuits used to stay in the live map forever.
  constexpr int kRounds = 600;
  std::uint64_t last_id = 0;
  for (int i = 0; i < kRounds; ++i) {
    const Seconds start = static_cast<double>(i) * 10.0 + 1.0;
    const auto r = idc.create_reservation(f.request(start, start + 5.0, gbps(2)));
    ASSERT_TRUE(r.accepted());
    last_id = *r.circuit_id;
    if (i % 3 == 0) idc.cancel(*r.circuit_id);  // mix in pre-activation cancels
  }
  f.sim.run();
  EXPECT_EQ(idc.live_circuit_count(), 0u);
  EXPECT_LE(idc.terminal_record_count(), Idc::kTerminalCapacity);
  EXPECT_EQ(idc.stats().released + idc.stats().cancelled,
            static_cast<std::uint64_t>(kRounds));
  // Recent ids stay queryable; the oldest were evicted and now throw.
  EXPECT_EQ(idc.circuit(last_id).state, CircuitState::kReleased);
  EXPECT_THROW(idc.circuit(1), gridvc::PreconditionError);
}

TEST(IdcLifecycleStore, TerminalCapacityIsConfigurable) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  cfg.terminal_capacity = 4;
  Idc idc(f.sim, f.topo, cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const Seconds start = static_cast<double>(i) * 10.0 + 1.0;
    const auto r = idc.create_reservation(f.request(start, start + 5.0, gbps(2)));
    ASSERT_TRUE(r.accepted());
    ids.push_back(*r.circuit_id);
  }
  f.sim.run();
  EXPECT_EQ(idc.live_circuit_count(), 0u);
  // The store honours the configured bound, not the compiled-in default.
  EXPECT_EQ(idc.terminal_record_count(), 4u);
  for (std::size_t i = 6; i < 10; ++i) {
    EXPECT_EQ(idc.circuit(ids[i]).state, CircuitState::kReleased);
  }
  EXPECT_THROW(idc.circuit(ids[0]), gridvc::PreconditionError);
  EXPECT_THROW(idc.circuit(ids[5]), gridvc::PreconditionError);
}

TEST(IdcLifecycleStore, ReleasedCircuitQueryableFromTerminalStore) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  const auto r = idc.create_reservation(f.request(1, 50, gbps(4)));
  ASSERT_TRUE(r.accepted());
  f.sim.run();
  EXPECT_EQ(idc.live_circuit_count(), 0u);
  EXPECT_EQ(idc.terminal_record_count(), 1u);
  const Circuit& c = idc.circuit(*r.circuit_id);
  EXPECT_EQ(c.state, CircuitState::kReleased);
  EXPECT_DOUBLE_EQ(c.request.bandwidth, gbps(4));
  EXPECT_GT(c.released_at, 0.0);
}

// ---------------------------------------------------------------------------
// Control-plane outages and the re-signaling circuit breaker
// ---------------------------------------------------------------------------

TEST(IdcOutage, FailsFastAndStaysOutOfBlockingStats) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  idc.begin_outage();
  EXPECT_TRUE(idc.in_outage());
  idc.begin_outage();  // idempotent: still one outage window
  EXPECT_EQ(idc.stats().outages, 1u);

  const auto r = idc.create_reservation(f.request(100, 200, gbps(2)));
  EXPECT_FALSE(r.accepted());
  EXPECT_EQ(r.reason, RejectReason::kControlPlaneDown);
  EXPECT_EQ(idc.stats().rejected_outage, 1u);
  // Fail-fast rejections are an availability event, not an admission
  // verdict: they must not pollute the paper's blocking probability.
  EXPECT_DOUBLE_EQ(idc.stats().blocking_probability(), 0.0);

  idc.end_outage();
  EXPECT_FALSE(idc.in_outage());
  EXPECT_TRUE(idc.create_reservation(f.request(100, 200, gbps(2))).accepted());
  EXPECT_DOUBLE_EQ(idc.stats().blocking_probability(), 0.0);
}

TEST(IdcOutage, OutageTripsBreakerThenHalfOpenProbeRecovers) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  // Defaults: resignal_backoff 5 s, failure_threshold 3, open_duration 30 s.
  Idc idc(f.sim, f.topo, cfg);
  const auto r = idc.create_reservation(f.request(1, 300, gbps(4)));
  ASSERT_TRUE(r.accepted());
  f.sim.run_until(55.0);
  ASSERT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kActive);

  idc.begin_outage();
  idc.handle_link_failure(f.r1_b);  // t=55: data plane gone, must re-signal
  // Re-signal probes at t=60/65/70 all find the control plane down; the
  // third consecutive failure trips the breaker.
  f.sim.run_until(71.0);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kFailed);
  EXPECT_EQ(idc.breaker().state(f.sim.now()), recovery::BreakerState::kOpen);
  EXPECT_EQ(idc.breaker().stats().trips, 1u);

  // The t=75 attempt fails fast without touching the control plane and
  // parks until the open window (30 s from the trip at t=70) elapses.
  f.sim.run_until(85.0);
  EXPECT_EQ(idc.breaker().stats().fast_failures, 1u);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kFailed);
  idc.end_outage();

  // t=100: the half-open probe goes through, re-homes the circuit on the
  // surviving branch, and closes the breaker.
  f.sim.run_until(101.0);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kActive);
  EXPECT_EQ(idc.circuit(*r.circuit_id).path, (net::Path{f.a_r2, f.r2_b}));
  EXPECT_EQ(idc.breaker().state(f.sim.now()), recovery::BreakerState::kClosed);
  EXPECT_EQ(idc.breaker().stats().probes, 1u);
  EXPECT_EQ(idc.breaker().stats().closes, 1u);
  EXPECT_EQ(idc.stats().resignaled, 1u);

  f.sim.run();
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kReleased);
}

// ---------------------------------------------------------------------------
// Reservation journal and crash recovery
// ---------------------------------------------------------------------------

TEST(IdcJournal, RecoverRebuildsOnlyUnexpiredReservations) {
  Fixture f;
  recovery::Journal journal;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  cfg.journal = &journal;
  Idc idc(f.sim, f.topo, cfg);
  const auto expired = idc.create_reservation(f.request(10, 80, gbps(2)));
  const auto live = idc.create_reservation(f.request(100, 200, gbps(4)));
  ASSERT_TRUE(expired.accepted());
  ASSERT_TRUE(live.accepted());
  f.sim.run_until(90.0);  // the first circuit released -> tombstoned

  // A restarted IDC on the same journal rebuilds exactly the live set,
  // keeping the original circuit id.
  Idc restarted(f.sim, f.topo, cfg);
  EXPECT_EQ(restarted.recover_from_journal(), 1u);
  EXPECT_EQ(restarted.stats().recovered, 1u);
  EXPECT_EQ(restarted.live_circuit_count(), 1u);
  const Circuit& c = restarted.circuit(*live.circuit_id);
  EXPECT_EQ(c.state, CircuitState::kScheduled);
  EXPECT_DOUBLE_EQ(c.request.bandwidth, gbps(4));
  EXPECT_THROW(restarted.circuit(*expired.circuit_id), gridvc::PreconditionError);
  // Recovery is a restart-only operation: a populated IDC refuses it.
  EXPECT_THROW(restarted.recover_from_journal(), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::vc
