# Smoke test of the observability pipeline: simulate the managed-vc
# scenario with --metrics-out and --trace-out, schema-check the trace,
# replay it through the analyzer, and verify the metrics snapshot spans
# all four instrumented layers.
set(metrics ${WORKDIR}/obs_smoke.prom)
set(trace ${WORKDIR}/obs_smoke.jsonl)

execute_process(
  COMMAND ${SIMULATE} --scenario managed-vc --tasks 3 --seed 7
          --metrics-out ${metrics} --trace-out ${trace}
  RESULT_VARIABLE sim_rc)
if(NOT sim_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-simulate failed: ${sim_rc}")
endif()

execute_process(
  COMMAND ${TRACECHECK} ${trace}
  OUTPUT_VARIABLE check_out
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-trace-check rejected the trace: ${check_rc}")
endif()
string(FIND "${check_out}" "OK," pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "gridvc-trace-check output missing OK:\n${check_out}")
endif()

# The snapshot must hold >= 20 distinct metrics covering sim, net,
# gridftp, and vc.
file(READ ${metrics} prom)
foreach(prefix "gridvc_sim_" "gridvc_net_" "gridvc_gridftp_" "gridvc_vc_")
  string(FIND "${prom}" "${prefix}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "metrics snapshot missing layer '${prefix}':\n${prom}")
  endif()
endforeach()
string(REGEX MATCHALL "# TYPE gridvc_" types "${prom}")
list(LENGTH types metric_count)
if(metric_count LESS 20)
  message(FATAL_ERROR "expected >= 20 metrics, got ${metric_count}")
endif()

execute_process(
  COMMAND ${ANALYZE} --trace ${trace}
  OUTPUT_VARIABLE out
  RESULT_VARIABLE analyze_rc)
if(NOT analyze_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-analyze --trace failed: ${analyze_rc}")
endif()
foreach(needle "trace events" "per-transfer timelines" "queue wait"
        "per-circuit lifecycles" "setup delay")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace replay output missing '${needle}':\n${out}")
  endif()
endforeach()
