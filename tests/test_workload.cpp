#include <gtest/gtest.h>

#include "analysis/session_grouping.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"
#include "workload/testbed.hpp"

namespace gridvc::workload {
namespace {

TEST(Testbed, AllSitePairsConnected) {
  const Testbed tb = build_esnet_testbed();
  const net::NodeId hosts[] = {tb.ncar, tb.nics, tb.slac, tb.bnl, tb.nersc, tb.ornl, tb.anl};
  for (net::NodeId a : hosts) {
    for (net::NodeId b : hosts) {
      if (a == b) continue;
      const auto p = tb.path(a, b);
      EXPECT_FALSE(p.empty());
      EXPECT_TRUE(tb.topo.is_valid_path(p, a, b));
    }
  }
}

TEST(Testbed, RttsMatchPaperScale) {
  const Testbed tb = build_esnet_testbed();
  // SLAC-BNL ~80 ms (the paper's BDP assumption).
  EXPECT_NEAR(tb.rtt(tb.slac, tb.bnl), 0.080, 0.005);
  // NCAR-NICS is "the shorter path".
  EXPECT_LT(tb.rtt(tb.ncar, tb.nics), tb.rtt(tb.slac, tb.bnl));
  // NERSC-ORNL in between.
  const Seconds nersc_ornl = tb.rtt(tb.nersc, tb.ornl);
  EXPECT_GT(nersc_ornl, 0.04);
  EXPECT_LT(nersc_ornl, 0.09);
}

TEST(Testbed, NerscOrnlCrossesEnoughRouters) {
  const Testbed tb = build_esnet_testbed();
  // "7 routers on the ESnet portion": 2 PEs + core chain; at least 6
  // router->router hops.
  EXPECT_GE(tb.backbone_links(tb.nersc, tb.ornl).size(), 6u);
}

TEST(Testbed, AllLinksTenGig) {
  const Testbed tb = build_esnet_testbed();
  for (std::size_t l = 0; l < tb.topo.link_count(); ++l) {
    EXPECT_DOUBLE_EQ(tb.topo.link(static_cast<net::LinkId>(l)).capacity, gbps(10));
  }
}

TEST(Profiles, NcarDefaultsAreSane) {
  const auto p = ncar_nics_profile();
  EXPECT_EQ(p.target_transfers, 52454u);
  EXPECT_FALSE(p.year_profiles.empty());
  EXPECT_LT(p.rtt, 0.08);
  ASSERT_TRUE(p.share_mbps != nullptr);
}

TEST(Profiles, SlacScaleShrinksTarget) {
  EXPECT_EQ(slac_bnl_profile(1.0).target_transfers, 1021999u);
  EXPECT_EQ(slac_bnl_profile(0.1).target_transfers, 102199u);
  EXPECT_EQ(slac_bnl_profile(-1.0).target_transfers, 1021999u);  // clamped
}

TEST(Synth, ProducesRequestedCountSorted) {
  auto p = slac_bnl_profile(0.005);  // ~5k transfers
  const auto log = synthesize_trace(p, 1);
  EXPECT_EQ(log.size(), p.target_transfers);
  for (std::size_t i = 1; i < log.size(); ++i) {
    ASSERT_LE(log[i - 1].start_time, log[i].start_time);
  }
}

TEST(Synth, DeterministicInSeed) {
  auto p = slac_bnl_profile(0.002);
  const auto a = synthesize_trace(p, 7);
  const auto b = synthesize_trace(p, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].start_time, b[i].start_time);
    ASSERT_EQ(a[i].size, b[i].size);
  }
  const auto c = synthesize_trace(p, 8);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && i < c.size(); ++i) {
    if (a[i].size != c[i].size) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Synth, FieldsWithinProfileRanges) {
  auto p = slac_bnl_profile(0.002);
  const auto log = synthesize_trace(p, 3);
  for (const auto& r : log) {
    ASSERT_GT(r.size, 0u);
    ASSERT_GT(r.duration, 0.0);
    ASSERT_TRUE(r.streams == 1 || r.streams == 8);
    ASSERT_EQ(r.stripes, 1);
    ASSERT_EQ(r.server_host, "slac-dtn");
    ASSERT_EQ(r.remote_host, "bnl-dtn");
  }
}

TEST(Synth, SessionsEmergeAtPaperScale) {
  auto p = slac_bnl_profile(0.01);  // ~10K transfers
  const auto log = synthesize_trace(p, 5);
  const auto sessions = analysis::group_sessions(log, {.gap = 60.0});
  // ~100 transfers per session on average (paper: 1.02M / 10.2K).
  const double mean = static_cast<double>(log.size()) / static_cast<double>(sessions.size());
  EXPECT_GT(mean, 25.0);
  EXPECT_LT(mean, 400.0);
}

TEST(Synth, GapParameterChangesSessionCount) {
  auto p = slac_bnl_profile(0.01);
  const auto log = synthesize_trace(p, 5);
  const auto g0 = analysis::group_sessions(log, {.gap = 0.0});
  const auto g1 = analysis::group_sessions(log, {.gap = 60.0});
  const auto g2 = analysis::group_sessions(log, {.gap = 120.0});
  EXPECT_GT(g0.size(), g1.size());
  EXPECT_GT(g1.size(), g2.size());
}

TEST(Synth, NcarStripesFollowYears) {
  auto p = ncar_nics_profile();
  p.target_transfers = 6000;
  const auto log = synthesize_trace(p, 11);
  // 3-stripe transfers only exist in 2009; 2-stripe only 2010/2011.
  for (const auto& r : log) {
    const int year = year_of(p, r.start_time);
    ASSERT_GE(year, 2009);
    ASSERT_LE(year, 2012);  // batches may spill slightly past a boundary
    if (r.stripes == 3) {
      ASSERT_EQ(year, 2009);
    }
  }
}

TEST(Synth, YearOfMapping) {
  auto p = ncar_nics_profile();
  EXPECT_EQ(year_of(p, 0.0), 2009);
  EXPECT_EQ(year_of(p, p.year_length + 1.0), 2010);
  EXPECT_EQ(year_of(p, 2.5 * p.year_length), 2011);
  auto s = slac_bnl_profile();
  EXPECT_EQ(year_of(s, 10.0), 0);
}

}  // namespace
}  // namespace gridvc::workload
