// Differential tests: the treap-backed BandwidthProfile/BandwidthCalendar
// against a naive std::map sweep reference. Both sides use the same
// kbit/s fixed-point quantization, so every query must agree
// byte-for-byte (exact double equality), across randomized
// add/remove/shift_end and book/release/truncate sequences.
#include "vc/bandwidth_calendar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"

namespace gridvc::vc {
namespace {

using net::LinkId;
using net::NodeId;
using net::NodeKind;
using net::Path;
using net::Topology;

/// Naive reference profile: the PR-4-era delta map, but on the same
/// integer-kbit/s grid as the real structure. Queries sweep the whole
/// map from t = 0 — O(n), obviously correct.
class RefProfile {
 public:
  void add(Seconds start, Seconds end, BitsPerSecond rate) {
    apply(start, quantize_rate_kbps(rate));
    apply(end, -quantize_rate_kbps(rate));
  }
  void remove(Seconds start, Seconds end, BitsPerSecond rate) {
    apply(start, -quantize_rate_kbps(rate));
    apply(end, quantize_rate_kbps(rate));
  }
  void shift_end(Seconds old_end, Seconds new_end, BitsPerSecond rate) {
    apply(old_end, quantize_rate_kbps(rate));
    apply(new_end, -quantize_rate_kbps(rate));
  }
  BitsPerSecond peak(Seconds start, Seconds end) const {
    if (start >= end) return 0.0;
    // Entry level (last change at or before `start`), then every change
    // point strictly inside the window.
    RateKbps entry = 0;
    for (const auto& [when, delta] : deltas_) {
      if (when > start) break;
      entry += delta;
    }
    RateKbps best = entry;
    RateKbps level = 0;
    for (const auto& [when, delta] : deltas_) {
      level += delta;
      if (when > start && when < end) best = std::max(best, level);
    }
    return static_cast<double>(std::max<RateKbps>(best, 0)) * 1000.0;
  }
  BitsPerSecond at(Seconds t) const {
    RateKbps level = 0;
    for (const auto& [when, delta] : deltas_) {
      if (when > t) break;
      level += delta;
    }
    return static_cast<double>(std::max<RateKbps>(level, 0)) * 1000.0;
  }
  bool empty() const { return deltas_.empty(); }
  std::size_t node_count() const { return deltas_.size(); }

 private:
  void apply(Seconds t, RateKbps d) {
    const auto it = deltas_.emplace(t, 0).first;
    it->second += d;
    if (it->second == 0) deltas_.erase(it);
  }
  std::map<Seconds, RateKbps> deltas_;
};

class ProfileDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ProfileDifferential, RandomizedOpsAgreeByteForByte) {
  gridvc::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007 + 13);
  BandwidthProfile p;
  RefProfile ref;
  // Live blocks eligible for remove/shift_end (kept balanced with adds).
  struct Block {
    Seconds start, end;
    BitsPerSecond rate;
  };
  std::vector<Block> live;
  // A small time pool forces shared timestamps (the leak-prone shape);
  // fresh uniform draws exercise arbitrary coordinates.
  const double pool[] = {0.0, 10.0, 60.0, 60.0, 300.0, 1000.0, 86400.0};
  auto draw_time = [&]() -> double {
    if (rng.bernoulli(0.5)) return pool[rng.uniform_int(0, 6)];
    return rng.uniform(0.0, 100000.0);
  };
  for (int op = 0; op < 2000; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 5 || live.empty()) {
      double t0 = draw_time();
      double t1 = draw_time();
      if (t0 > t1) std::swap(t0, t1);
      if (t0 == t1) t1 = t0 + rng.uniform(1.0, 500.0);
      const double rate = rng.uniform(1.0, 5e9);
      p.add(t0, t1, rate);
      ref.add(t0, t1, rate);
      live.push_back({t0, t1, rate});
    } else if (kind < 8) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      p.remove(live[i].start, live[i].end, live[i].rate);
      ref.remove(live[i].start, live[i].end, live[i].rate);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      Block& b = live[i];
      const double new_end = rng.uniform(b.start, b.end);
      if (new_end > b.start && new_end < b.end) {
        p.shift_end(b.end, new_end, b.rate);
        ref.shift_end(b.end, new_end, b.rate);
        b.end = new_end;
      }
    }
    // Point and window probes after every mutation.
    const double qt = draw_time();
    ASSERT_EQ(p.at(qt), ref.at(qt)) << "op " << op;
    double q0 = draw_time(), q1 = draw_time();
    if (q0 > q1) std::swap(q0, q1);
    ASSERT_EQ(p.peak(q0, q1), ref.peak(q0, q1)) << "op " << op;
    ASSERT_EQ(p.peak(q0, q0), 0.0) << "op " << op;
    ASSERT_EQ(p.empty(), ref.empty()) << "op " << op;
    ASSERT_EQ(p.node_count(), ref.node_count()) << "op " << op;
  }
  // Drain: the structures must return to exactly empty together.
  for (const Block& b : live) {
    p.remove(b.start, b.end, b.rate);
    ref.remove(b.start, b.end, b.rate);
  }
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(p.node_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileDifferential, ::testing::Range(1, 9));

struct CalFixture {
  Topology topo;
  LinkId ab, bc;
  CalFixture() {
    const NodeId a = topo.add_node("a", NodeKind::kHost);
    const NodeId b = topo.add_node("b", NodeKind::kRouter);
    const NodeId c = topo.add_node("c", NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(100), 0.001);
    bc = topo.add_link(b, c, gbps(100), 0.001);
  }
};

class CalendarDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CalendarDifferential, BookReleaseTruncateAgreeWithReference) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  RefProfile ref_ab, ref_bc;
  gridvc::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  struct Live {
    ReservationId id;
    Path path;
    Seconds start, end;
    BitsPerSecond rate;
  };
  std::vector<Live> live;
  auto ref_for = [&](LinkId l) -> RefProfile& { return l == f.ab ? ref_ab : ref_bc; };
  for (int op = 0; op < 1500; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 5 || live.empty()) {
      const double t0 = rng.uniform(0.0, 5000.0);
      const double t1 = t0 + rng.uniform(1.0, 600.0);
      const double rate = mbps(rng.uniform(1.0, 2000.0));
      const Path path = rng.bernoulli(0.5) ? Path{f.ab} : Path{f.ab, f.bc};
      if (cal.fits(path, t0, t1, rate)) {
        const ReservationId id = cal.book(path, t0, t1, rate);
        for (LinkId l : path) ref_for(l).add(t0, t1, rate);
        live.push_back({id, path, t0, t1, rate});
      }
    } else if (kind < 8) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      cal.release(live[i].id);
      for (LinkId l : live[i].path) {
        ref_for(l).remove(live[i].start, live[i].end, live[i].rate);
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      Live& b = live[i];
      const double new_end = rng.uniform(b.start, b.end);
      if (new_end > b.start && new_end < b.end) {
        cal.truncate(b.id, new_end);
        for (LinkId l : b.path) ref_for(l).shift_end(b.end, new_end, b.rate);
        b.end = new_end;
      }
    }
    const double q0 = rng.uniform(0.0, 6000.0);
    const double q1 = q0 + rng.uniform(0.0, 600.0);
    ASSERT_EQ(cal.available(f.ab, q0, q1),
              std::max(0.0, gbps(100) - ref_ab.peak(q0, q1)))
        << "op " << op;
    ASSERT_EQ(cal.available(f.bc, q0, q1),
              std::max(0.0, gbps(100) - ref_bc.peak(q0, q1)))
        << "op " << op;
  }
  for (const Live& b : live) cal.release(b.id);
  EXPECT_EQ(cal.active_bookings(), 0u);
  EXPECT_EQ(cal.available(f.ab, 0.0, 6000.0), gbps(100));
  EXPECT_EQ(cal.available(f.bc, 0.0, 6000.0), gbps(100));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarDifferential, ::testing::Range(1, 9));

}  // namespace
}  // namespace gridvc::vc
