// Observability layer: registry semantics, histogram bucket edges,
// trace serialization and ordering under cancelled/tombstoned events,
// ring-buffer wraparound, and timeline reconstruction from a real
// engine run.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace gridvc::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, RegisterIncrementSnapshot) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("gridvc_test_count", "a counter");
  const MetricId g = reg.gauge("gridvc_test_level", "a gauge");
  reg.add(c);
  reg.add(c, 41);
  reg.set(g, 2.5);

  EXPECT_EQ(reg.counter_value(c), 42u);
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), 2.5);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_test_count"), 42.0);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_test_level"), 2.5);
  EXPECT_EQ(snap.find("gridvc_test_count")->kind, MetricKind::kCounter);
  EXPECT_EQ(snap.find("nope"), nullptr);
  EXPECT_DOUBLE_EQ(snap.value("nope"), 0.0);
}

TEST(MetricsRegistry, ReRegistrationSharesTheSlot) {
  MetricsRegistry reg;
  const MetricId first = reg.counter("shared");
  const MetricId again = reg.counter("shared");
  EXPECT_EQ(first.slot, again.slot);
  reg.add(first);
  reg.add(again);
  EXPECT_EQ(reg.counter_value(first), 2u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindClashThrows) {
  MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), PreconditionError);
  EXPECT_THROW(reg.histogram("name", {1.0}), PreconditionError);
}

TEST(MetricsRegistry, FindReturnsInvalidForWrongKindOrMissing) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("only_counter");
  EXPECT_EQ(reg.find("only_counter", MetricKind::kCounter).slot, c.slot);
  EXPECT_FALSE(reg.find("only_counter", MetricKind::kGauge).valid());
  EXPECT_FALSE(reg.find("missing", MetricKind::kCounter).valid());
}

TEST(MetricsRegistry, HistogramBucketEdges) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("h", {1.0, 10.0});
  // Prometheus convention: bucket counts are <= le, so an observation
  // exactly on an edge lands in that edge's bucket.
  reg.observe(h, 0.5);   // bucket le=1
  reg.observe(h, 1.0);   // bucket le=1 (on the edge)
  reg.observe(h, 1.001); // bucket le=10
  reg.observe(h, 10.0);  // bucket le=10 (on the edge)
  reg.observe(h, 11.0);  // +Inf

  const MetricsSnapshot snap = reg.snapshot();
  const auto* e = snap.find("h");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->histogram.counts.size(), 3u);
  EXPECT_EQ(e->histogram.counts[0], 2u);
  EXPECT_EQ(e->histogram.counts[1], 2u);
  EXPECT_EQ(e->histogram.counts[2], 1u);
  EXPECT_EQ(e->histogram.total, 5u);
  EXPECT_DOUBLE_EQ(e->histogram.sum, 0.5 + 1.0 + 1.001 + 10.0 + 11.0);
}

TEST(MetricsRegistry, ReRegistrationWithConflictingBoundsThrows) {
  MetricsRegistry reg;
  reg.histogram("edges", {1.0, 10.0});
  EXPECT_THROW(reg.histogram("edges", {1.0, 5.0}), PreconditionError);
  EXPECT_THROW(reg.histogram("edges", {1.0}), PreconditionError);
  // Identical bounds still share the slot.
  const MetricId again = reg.histogram("edges", {1.0, 10.0});
  EXPECT_TRUE(again.valid());
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LogHistogramObserveSnapshotAndQuantiles) {
  MetricsRegistry reg;
  const MetricId h = reg.log_histogram("lat_log", "log-bucket latency");
  EXPECT_EQ(h.kind, MetricKind::kLogHistogram);
  for (int i = 1; i <= 100; ++i) reg.observe(h, static_cast<double>(i));

  const MetricsSnapshot snap = reg.snapshot();
  const auto* e = snap.find("lat_log");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, MetricKind::kLogHistogram);
  EXPECT_TRUE(e->histogram.log_bucket);
  EXPECT_EQ(e->histogram.total, 100u);
  EXPECT_DOUBLE_EQ(e->histogram.sum, 5050.0);
  // Log buckets keep quantiles within 1/32 relative error.
  EXPECT_NEAR(e->histogram.p50, 50.0, 50.0 / 32.0);
  EXPECT_NEAR(e->histogram.p95, 95.0, 95.0 / 32.0);
  EXPECT_NEAR(e->histogram.p99, 99.0, 99.0 / 32.0);

  // Re-registration shares the slot; a kind clash still throws.
  EXPECT_EQ(reg.log_histogram("lat_log").slot, h.slot);
  EXPECT_THROW(reg.histogram("lat_log", {1.0}), PreconditionError);
  EXPECT_THROW(reg.counter("lat_log"), PreconditionError);
}

TEST(MetricsRegistry, LogHistogramExportsAsSummary) {
  MetricsRegistry reg;
  const MetricId h = reg.log_histogram("wait", "queue wait");
  reg.observe(h, 2.0);
  reg.observe(h, 4.0);
  std::ostringstream out;
  write_prometheus(out, reg.snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE wait summary"), std::string::npos);
  EXPECT_NE(text.find("wait{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("wait{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("wait_sum 6"), std::string::npos);
  EXPECT_NE(text.find("wait_count 2"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusCumulativeBuckets) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("lat", {1.0, 2.0}, "latency");
  reg.observe(h, 0.5);
  reg.observe(h, 1.5);
  reg.observe(h, 9.0);
  std::ostringstream out;
  write_prometheus(out, reg.snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE lat histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2"), std::string::npos);   // cumulative
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SimSpan
// ---------------------------------------------------------------------------

TEST(SimSpan, AttributesElapsedSimTime) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("span_seconds", {1.0, 10.0});
  SimSpan span = SimSpan::begin(5.0);
  EXPECT_DOUBLE_EQ(span.end_observe(reg, h, 12.5), 7.5);
  // Ending twice is a no-op.
  EXPECT_DOUBLE_EQ(span.end_observe(reg, h, 99.0), 0.0);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* e = snap.find("span_seconds");
  EXPECT_EQ(e->histogram.total, 1u);
  EXPECT_DOUBLE_EQ(e->histogram.sum, 7.5);
}

// ---------------------------------------------------------------------------
// Trace serialization
// ---------------------------------------------------------------------------

TEST(Trace, JsonlRoundTrip) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.emit({12.5, TraceEventType::kTransferSubmitted, 3, 2, 3.2e10, 8.0});
  sink.emit({13.0, TraceEventType::kNetRecompute, 0, 0, 0.0, 0.0});

  std::istringstream in(out.str());
  const auto events = read_trace_jsonl(in);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].time, 12.5);
  EXPECT_EQ(events[0].type, TraceEventType::kTransferSubmitted);
  EXPECT_EQ(events[0].id, 3u);
  EXPECT_EQ(events[0].aux, 2u);
  EXPECT_DOUBLE_EQ(events[0].value, 3.2e10);
  EXPECT_DOUBLE_EQ(events[0].value2, 8.0);
  // Zero-valued optional fields round-trip as zero.
  EXPECT_EQ(events[1].aux, 0u);
  EXPECT_DOUBLE_EQ(events[1].value, 0.0);
}

TEST(Trace, ParseRejectsMalformedLines) {
  TraceEvent e;
  EXPECT_FALSE(parse_trace_line("", e));
  EXPECT_FALSE(parse_trace_line("   ", e));
  EXPECT_THROW(parse_trace_line("{\"ev\":\"net_recompute\"}", e), ParseError);  // no t/id
  EXPECT_THROW(parse_trace_line("{\"t\":1,\"ev\":\"bogus\",\"id\":1}", e), ParseError);
  EXPECT_THROW(parse_trace_line("not json", e), ParseError);
}

TEST(Trace, EventNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(TraceEventType::kNetRecompute); ++i) {
    const auto type = static_cast<TraceEventType>(i);
    TraceEventType parsed;
    ASSERT_TRUE(parse_trace_event_name(trace_event_name(type), parsed));
    EXPECT_EQ(parsed, type);
  }
}

TEST(Trace, RingBufferWraparound) {
  RingBufferTraceSink ring(3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ring.emit({static_cast<double>(i), TraceEventType::kNetRecompute, i, 0, 0.0, 0.0});
  }
  EXPECT_EQ(ring.total_emitted(), 5u);
  const auto kept = ring.events();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].id, 3u);  // oldest surviving
  EXPECT_EQ(kept[1].id, 4u);
  EXPECT_EQ(kept[2].id, 5u);
}

// ---------------------------------------------------------------------------
// Trace ordering under cancelled / tombstoned sim events
// ---------------------------------------------------------------------------

TEST(Trace, OrderingSurvivesCancelledAndTombstonedEvents) {
  sim::Simulator sim;
  RingBufferTraceSink ring(64);
  sim.obs().set_trace_sink(&ring);

  // Emit from dispatched events; interleave a burst of scheduled-then-
  // cancelled events so the pool accumulates tombstones and compacts.
  auto emit_at = [&](Seconds t, std::uint64_t id) {
    sim.schedule_at(t, [&, id] {
      sim.obs().emit({sim.now(), TraceEventType::kSessionOpened, id, 0, 0.0, 0.0});
    });
  };
  emit_at(1.0, 1);
  emit_at(5.0, 3);
  std::vector<sim::EventHandle> doomed;
  for (int i = 0; i < 200; ++i) {
    doomed.push_back(sim.schedule_at(2.0, [] {}));
  }
  emit_at(3.0, 2);
  for (auto& h : doomed) h.cancel();  // tombstones; may trigger compaction
  emit_at(7.0, 4);
  sim.run();

  EXPECT_GT(sim.counters().cancelled, 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 1) << "trace order must follow sim time";
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
  }
}

// ---------------------------------------------------------------------------
// Four-layer integration: engine run -> trace -> timelines
// ---------------------------------------------------------------------------

TEST(Timelines, ReconstructedFromEngineRun) {
  sim::Simulator sim;
  std::ostringstream trace_text;
  JsonlTraceSink sink(trace_text);
  sim.obs().set_trace_sink(&sink);

  net::Topology topo;
  const auto a = topo.add_node("a", net::NodeKind::kHost);
  const auto b = topo.add_node("b", net::NodeKind::kHost);
  auto [ab, ba] = topo.add_duplex_link(a, b, gbps(10), 0.005);
  (void)ba;
  net::Network network(sim, topo);

  gridftp::ServerConfig sc;
  sc.name = "src";
  sc.nic_rate = gbps(4);
  gridftp::Server src(sc);
  sc.name = "dst";
  gridftp::Server dst(sc);

  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig cfg;
  cfg.server_noise_sigma = 0.0;
  cfg.tcp.loss_probability = 0.0;
  cfg.tcp.stream_buffer = 64 * MiB;
  gridftp::TransferEngine engine(network, collector, cfg, Rng(5));

  gridftp::TransferSpec spec;
  spec.src = {&src, gridftp::IoMode::kMemory};
  spec.dst = {&dst, gridftp::IoMode::kMemory};
  spec.path = {ab};
  spec.rtt = 0.01;
  spec.size = GiB;
  spec.streams = 8;
  spec.stripes = 2;
  const std::uint64_t id = engine.submit(spec);
  sim.run();

  std::istringstream in(trace_text.str());
  const Timelines tl = build_timelines(read_trace_jsonl(in));
  ASSERT_EQ(tl.transfers.size(), 1u);
  ASSERT_EQ(tl.finished_transfers(), 1u);
  const TransferTimeline& t = tl.transfers.at(id);
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.bytes, GiB);
  EXPECT_EQ(t.stripes, 2u);
  EXPECT_EQ(t.streams, 8u);
  EXPECT_EQ(t.stripes_completed, 2u);
  EXPECT_EQ(t.retries, 0u);
  EXPECT_GT(t.queue_wait, 0.0);  // slow-start injection delay
  EXPECT_NEAR(t.start_time, t.submit_time + t.queue_wait, 1e-9);
  EXPECT_GT(t.finish_time, t.start_time);

  // The same run populated metrics in all instrumented layers it touched.
  const MetricsSnapshot snap = sim.obs().registry().snapshot();
  EXPECT_DOUBLE_EQ(snap.value("gridvc_gridftp_transfers_completed"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_net_flows_completed"), 2.0);  // 2 stripes
  EXPECT_GT(snap.value("gridvc_sim_events_dispatched"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_gridftp_bytes_moved"),
                   static_cast<double>(GiB));
}

// ---------------------------------------------------------------------------
// Simulator counters are registry-backed (the Counters shim)
// ---------------------------------------------------------------------------

TEST(SimulatorCounters, ShimReadsRegistry) {
  sim::Simulator sim;
  sim.schedule_at(1.0, [] {});
  auto doomed = sim.schedule_at(2.0, [] {});
  doomed.cancel();
  sim.run();

  const auto counters = sim.counters();
  EXPECT_EQ(counters.scheduled, 2u);
  EXPECT_EQ(counters.cancelled, 1u);
  EXPECT_EQ(counters.dispatched, 1u);
  EXPECT_EQ(counters.live, 0u);

  const MetricsSnapshot snap = sim.obs().registry().snapshot();
  EXPECT_DOUBLE_EQ(snap.value("gridvc_sim_events_scheduled"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_sim_events_cancelled"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_sim_events_dispatched"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_sim_events_live"), 0.0);
}

}  // namespace
}  // namespace gridvc::obs
