#include "gridftp/server.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gridvc::gridftp {
namespace {

ServerConfig basic() {
  ServerConfig c;
  c.name = "dtn";
  c.nic_rate = gbps(4);
  c.disk_read_rate = gbps(2);
  c.disk_write_rate = gbps(1);
  c.pool_size = 1;
  return c;
}

TEST(Server, SingleTransferGetsFullNic) {
  Server s(basic());
  s.add_transfer(1, 1, IoMode::kMemory);
  EXPECT_DOUBLE_EQ(s.share(1), gbps(4));
}

TEST(Server, ConcurrentTransfersSplitEvenly) {
  Server s(basic());
  s.add_transfer(1, 1, IoMode::kMemory);
  s.add_transfer(2, 1, IoMode::kMemory);
  s.add_transfer(3, 1, IoMode::kMemory);
  for (std::uint64_t id : {1, 2, 3}) {
    EXPECT_NEAR(s.share(id), gbps(4) / 3.0, 1.0);
  }
  EXPECT_EQ(s.concurrency(), 3u);
}

TEST(Server, RemoveRestoresShare) {
  Server s(basic());
  s.add_transfer(1, 1, IoMode::kMemory);
  s.add_transfer(2, 1, IoMode::kMemory);
  s.remove_transfer(2);
  EXPECT_DOUBLE_EQ(s.share(1), gbps(4));
}

TEST(Server, DiskModesCapShare) {
  Server s(basic());
  s.add_transfer(1, 1, IoMode::kDiskRead);
  EXPECT_DOUBLE_EQ(s.share(1), gbps(2));
  s.add_transfer(2, 1, IoMode::kDiskWrite);
  EXPECT_DOUBLE_EQ(s.share(2), gbps(1));
}

TEST(Server, DiskCapNotAppliedToMemory) {
  ServerConfig c = basic();
  c.disk_read_rate = mbps(100);
  Server s(c);
  s.add_transfer(1, 1, IoMode::kMemory);
  EXPECT_DOUBLE_EQ(s.share(1), gbps(4));
}

TEST(Server, StripesEngageMultipleHosts) {
  ServerConfig c = basic();
  c.pool_size = 3;
  Server s(c);
  s.add_transfer(1, 3, IoMode::kMemory);
  EXPECT_DOUBLE_EQ(s.share(1), 3 * gbps(4));  // 3 hosts' NICs
  // Stripes beyond the pool don't help.
  s.remove_transfer(1);
  s.add_transfer(2, 8, IoMode::kMemory);
  EXPECT_DOUBLE_EQ(s.share(2), 3 * gbps(4));
}

TEST(Server, StripedAndUnstripedShareProportionally) {
  ServerConfig c = basic();
  c.pool_size = 4;
  Server s(c);
  s.add_transfer(1, 3, IoMode::kMemory);  // weight 3
  s.add_transfer(2, 1, IoMode::kMemory);  // weight 1
  // Cluster = 16G; proportional: 12G and 4G, both within host NIC bounds.
  EXPECT_NEAR(s.share(1), gbps(12), 1.0);
  EXPECT_NEAR(s.share(2), gbps(4), 1.0);
}

TEST(Server, StripedDiskScalesWithHosts) {
  ServerConfig c = basic();
  c.pool_size = 2;
  Server s(c);
  s.add_transfer(1, 2, IoMode::kDiskRead);
  EXPECT_DOUBLE_EQ(s.share(1), 2 * gbps(2));
}

TEST(Server, PoolShrinkReducesShares) {
  ServerConfig c = basic();
  c.pool_size = 3;
  Server s(c);
  s.add_transfer(1, 3, IoMode::kMemory);
  EXPECT_DOUBLE_EQ(s.share(1), gbps(12));
  s.set_pool_size(1);  // the NCAR 2011 situation
  EXPECT_DOUBLE_EQ(s.share(1), gbps(4));
}

TEST(Server, ChangeListenerFires) {
  Server s(basic());
  int notified = 0;
  s.set_change_listener([&] { ++notified; });
  s.add_transfer(1, 1, IoMode::kMemory);
  s.add_transfer(2, 1, IoMode::kMemory);
  s.remove_transfer(1);
  s.set_pool_size(2);
  EXPECT_EQ(notified, 4);
}

TEST(Server, PreconditionViolations) {
  Server s(basic());
  s.add_transfer(1, 1, IoMode::kMemory);
  EXPECT_THROW(s.add_transfer(1, 1, IoMode::kMemory), gridvc::PreconditionError);
  EXPECT_THROW(s.remove_transfer(9), gridvc::PreconditionError);
  EXPECT_THROW(s.share(9), gridvc::PreconditionError);
  EXPECT_THROW(s.add_transfer(2, 0, IoMode::kMemory), gridvc::PreconditionError);
  EXPECT_THROW(s.set_pool_size(0), gridvc::PreconditionError);
  ServerConfig bad = basic();
  bad.nic_rate = 0.0;
  EXPECT_THROW(Server{bad}, gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::gridftp
