#include "analysis/burstiness.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gridvc::analysis {
namespace {

using gridftp::TransferLog;
using gridftp::TransferRecord;

TransferRecord transfer(double start, double duration, double rate_mbps) {
  TransferRecord r;
  r.start_time = start;
  r.duration = duration;
  r.size = static_cast<Bytes>(mbps(rate_mbps) * duration / 8.0);
  r.server_host = "s";
  r.remote_host = "r";
  return r;
}

Session session_over(const TransferLog& log) {
  const auto sessions = group_sessions(log, {.gap = 1e9});
  EXPECT_EQ(sessions.size(), 1u);
  return sessions.front();
}

TEST(Burstiness, ConstantRateSessionHasIndexOne) {
  // One transfer at 100 Mbps for 120 s: every 30 s window sees 100 Mbps.
  TransferLog log{transfer(0, 120, 100)};
  const auto s = session_over(log);
  const auto profile = session_rate_profile(log, s, 30.0);
  ASSERT_EQ(profile.rate_bps.size(), 4u);
  for (double r : profile.rate_bps) EXPECT_NEAR(r, mbps(100), 1.0);
  EXPECT_NEAR(profile.burstiness(), 1.0, 1e-9);
}

TEST(Burstiness, IdleGapRaisesIndex) {
  // Active 30 s at 100 Mbps, idle 30 s, active 30 s: mean = 2/3 peak.
  TransferLog log{transfer(0, 30, 100), transfer(60, 30, 100)};
  const auto s = session_over(log);
  const auto profile = session_rate_profile(log, s, 30.0);
  ASSERT_EQ(profile.rate_bps.size(), 3u);
  EXPECT_NEAR(profile.rate_bps[1], 0.0, 1.0);
  EXPECT_NEAR(profile.burstiness(), 1.5, 1e-6);
}

TEST(Burstiness, ConcurrentTransfersSuperpose) {
  TransferLog log{transfer(0, 60, 100), transfer(0, 30, 300)};
  const auto s = session_over(log);
  const auto profile = session_rate_profile(log, s, 30.0);
  ASSERT_EQ(profile.rate_bps.size(), 2u);
  EXPECT_NEAR(profile.rate_bps[0], mbps(400), 10.0);
  EXPECT_NEAR(profile.rate_bps[1], mbps(100), 10.0);
}

TEST(Burstiness, EdgeWindowsProRated) {
  // Transfer covers [15, 45): half of window 0, half of window 1.
  TransferLog log{transfer(15, 30, 200), transfer(0, 60, 1)};  // tiny anchor transfer
  const auto s = session_over(log);
  const auto profile = session_rate_profile(log, s, 30.0);
  ASSERT_EQ(profile.rate_bps.size(), 2u);
  EXPECT_NEAR(profile.rate_bps[0], mbps(100) + mbps(1), mbps(1));
  EXPECT_NEAR(profile.rate_bps[1], mbps(100) + mbps(1), mbps(1));
}

TEST(Burstiness, ProfileBytesConserved) {
  // Sum(window rate * window) == total bytes * 8 when the grid covers
  // every transfer entirely.
  TransferLog log{transfer(0, 47, 130), transfer(13, 80, 220), transfer(40, 55, 75)};
  const auto s = session_over(log);
  const auto profile = session_rate_profile(log, s, 10.0);
  double bits = 0.0;
  for (double r : profile.rate_bps) bits += r * profile.window;
  double expected = 0.0;
  for (const auto& r : log) expected += static_cast<double>(r.size) * 8.0;
  EXPECT_NEAR(bits / expected, 1.0, 1e-6);
}

TEST(Burstiness, PerSessionVectorAndShortSessions) {
  TransferLog log;
  log.push_back(transfer(0, 5, 100));        // shorter than the window
  log.push_back(transfer(100000, 30, 100));  // second session, bursty
  log.push_back(transfer(100090, 30, 100));
  const auto sessions = group_sessions(log, {.gap = 60.0});
  ASSERT_EQ(sessions.size(), 2u);
  const auto b = session_burstiness(log, sessions, 30.0);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);  // sub-window session defined as constant
  EXPECT_GT(b[1], 1.5);         // idle hole in the middle
}

TEST(Burstiness, Preconditions) {
  TransferLog log{transfer(0, 10, 100)};
  const auto s = session_over(log);
  EXPECT_THROW(session_rate_profile(log, s, 0.0), gridvc::PreconditionError);
  Session broken = s;
  broken.transfer_indices = {42};
  EXPECT_THROW(session_rate_profile(log, broken, 30.0), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::analysis
