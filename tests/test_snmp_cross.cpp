#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "common/error.hpp"
#include "net/cross_traffic.hpp"
#include "net/network.hpp"
#include "net/snmp.hpp"

namespace gridvc::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  Topology topo;
  LinkId ab;
  std::unique_ptr<Network> net;

  Fixture() {
    const NodeId a = topo.add_node("a", NodeKind::kHost);
    const NodeId b = topo.add_node("b", NodeKind::kHost);
    ab = topo.add_link(a, b, mbps(800), 0.001);
    net = std::make_unique<Network>(sim, topo);
  }
};

TEST(Snmp, BinsSumToFlowBytes) {
  Fixture f;
  SnmpCollector snmp(*f.net, {f.ab}, 30.0);
  f.net->start_flow({f.ab}, 1'000'000'000, {}, nullptr);  // 10 s at 800 Mbps
  f.sim.run_until(120.0);
  const auto& s = snmp.series(f.ab);
  const double total = std::accumulate(s.bins.begin(), s.bins.end(), 0.0);
  EXPECT_NEAR(total, 1e9, 10.0);
  EXPECT_EQ(s.bins.size(), 4u);  // 120 s / 30 s
}

TEST(Snmp, FirstBinHoldsEarlyBytes) {
  Fixture f;
  SnmpCollector snmp(*f.net, {f.ab}, 30.0);
  FlowOptions opts;
  opts.cap = mbps(8);  // 1 MB/s
  f.net->start_flow({f.ab}, 100'000'000, opts, nullptr);
  f.sim.run_until(60.0);
  const auto& s = snmp.series(f.ab);
  ASSERT_GE(s.bins.size(), 2u);
  EXPECT_NEAR(s.bins[0], 30e6, 100.0);
  EXPECT_NEAR(s.bins[1], 30e6, 100.0);
}

TEST(Snmp, BinStartTimes) {
  Fixture f;
  SnmpCollector snmp(*f.net, {f.ab}, 30.0, 0.0);
  f.sim.run_until(95.0);
  const auto& s = snmp.series(f.ab);
  EXPECT_DOUBLE_EQ(s.bin_start(0), 0.0);
  EXPECT_DOUBLE_EQ(s.bin_start(2), 60.0);
  EXPECT_EQ(s.bins.size(), 3u);
}

TEST(Snmp, StopFreezesSeries) {
  Fixture f;
  SnmpCollector snmp(*f.net, {f.ab}, 30.0);
  f.sim.run_until(60.0);
  snmp.stop();
  f.sim.run_until(300.0);
  EXPECT_EQ(snmp.series(f.ab).bins.size(), 2u);
}

TEST(Snmp, UnmonitoredLinkThrows) {
  Fixture f;
  SnmpCollector snmp(*f.net, {f.ab}, 30.0);
  EXPECT_THROW(snmp.series(f.ab + 100), gridvc::NotFoundError);
}

TEST(Snmp, RequiresValidConfig) {
  Fixture f;
  EXPECT_THROW(SnmpCollector(*f.net, {}, 30.0), gridvc::PreconditionError);
  EXPECT_THROW(SnmpCollector(*f.net, {f.ab}, 0.0), gridvc::PreconditionError);
}

TEST(CrossTraffic, GeneratesFlowsAndBytes) {
  Fixture f;
  CrossTrafficConfig cfg;
  cfg.mean_interarrival = 0.5;
  cfg.size_distribution = std::make_shared<Constant>(1'000'000.0);
  CrossTrafficSource src(*f.net, {f.ab}, cfg, Rng(7));
  f.sim.run_until(100.0);
  // ~200 arrivals expected.
  EXPECT_GT(src.flows_started(), 120u);
  EXPECT_LT(src.flows_started(), 320u);
  EXPECT_NEAR(src.bytes_offered(), 1e6 * static_cast<double>(src.flows_started()), 1.0);
  // Everything offered has drained through the link by now (light load).
  f.sim.run_until(200.0);
  EXPECT_NEAR(f.net->link_bytes(f.ab), src.bytes_offered(), 2e6);
}

TEST(CrossTraffic, StopHaltsArrivals) {
  Fixture f;
  CrossTrafficConfig cfg;
  cfg.mean_interarrival = 0.1;
  CrossTrafficSource src(*f.net, {f.ab}, cfg, Rng(9));
  f.sim.run_until(10.0);
  src.stop();
  const std::size_t at_stop = src.flows_started();
  f.sim.run_until(50.0);
  EXPECT_EQ(src.flows_started(), at_stop);
}

TEST(CrossTraffic, DeterministicAcrossRuns) {
  std::size_t counts[2];
  for (int run = 0; run < 2; ++run) {
    Fixture f;
    CrossTrafficConfig cfg;
    cfg.mean_interarrival = 0.3;
    CrossTrafficSource src(*f.net, {f.ab}, cfg, Rng(42));
    f.sim.run_until(50.0);
    counts[run] = src.flows_started();
  }
  EXPECT_EQ(counts[0], counts[1]);
}

}  // namespace
}  // namespace gridvc::net
