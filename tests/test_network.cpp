#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace gridvc::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  Topology topo;
  LinkId ab, bc;
  std::unique_ptr<Network> net;

  Fixture() {
    const NodeId a = topo.add_node("a", NodeKind::kHost);
    const NodeId b = topo.add_node("b", NodeKind::kRouter);
    const NodeId c = topo.add_node("c", NodeKind::kHost);
    ab = topo.add_link(a, b, mbps(800), 0.001);
    bc = topo.add_link(b, c, mbps(800), 0.001);
    net = std::make_unique<Network>(sim, topo);
  }
};

TEST(Network, SingleFlowCompletesAtFluidTime) {
  Fixture f;
  std::vector<FlowRecord> done;
  // 100 MB at 800 Mbps -> 1.0 s.
  f.net->start_flow({f.ab, f.bc}, 100'000'000, {},
                    [&](const FlowRecord& r) { done.push_back(r); });
  f.sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].end_time - done[0].start_time, 1.0, 1e-6);
  EXPECT_NEAR(done[0].average_rate(), mbps(800), 1.0);
}

TEST(Network, CapLimitsRate) {
  Fixture f;
  std::vector<FlowRecord> done;
  FlowOptions opts;
  opts.cap = mbps(100);
  f.net->start_flow({f.ab}, 100'000'000, opts,
                    [&](const FlowRecord& r) { done.push_back(r); });
  f.sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0].end_time, 8.0, 1e-6);
}

TEST(Network, TwoFlowsShareThenSpeedUp) {
  Fixture f;
  // Two equal flows: each at 400 Mbps until the first finishes, then the
  // survivor accelerates. Flow sizes 50 MB and 100 MB:
  //   t=1.0 s: flow1 done (50 MB at 400 Mbps).
  //   flow2 has 50 MB left, now at 800 Mbps -> finishes at t=1.5 s.
  std::vector<double> done_times(2, 0.0);
  f.net->start_flow({f.ab}, 50'000'000, {},
                    [&](const FlowRecord& r) { done_times[0] = r.end_time; });
  f.net->start_flow({f.ab}, 100'000'000, {},
                    [&](const FlowRecord& r) { done_times[1] = r.end_time; });
  f.sim.run();
  EXPECT_NEAR(done_times[0], 1.0, 1e-6);
  EXPECT_NEAR(done_times[1], 1.5, 1e-6);
}

TEST(Network, LateArrivalSlowsExistingFlow) {
  Fixture f;
  // Flow1 (100 MB) starts at t=0 alone at 800 Mbps (100 MB/s). At t=0.5
  // (50 MB in) flow2 starts; both run at 400 Mbps. Flow1's remaining
  // 50 MB takes 1.0 s -> done at 1.5 s.
  double done1 = 0.0;
  f.net->start_flow({f.ab}, 100'000'000, {},
                    [&](const FlowRecord& r) { done1 = r.end_time; });
  f.sim.schedule_at(0.5, [&] {
    f.net->start_flow({f.ab}, 1'000'000'000, {}, nullptr);
  });
  f.sim.run_until(3.0);
  EXPECT_NEAR(done1, 1.5, 1e-6);
}

TEST(Network, GuaranteeShieldsFlowFromContention) {
  Fixture f;
  // Guaranteed 600 Mbps flow + one best-effort flow: guaranteed finishes
  // as if alone at 600+residual-share... At minimum it holds 600 Mbps.
  double done_g = 0.0;
  FlowOptions g;
  g.guarantee = mbps(600);
  g.cap = mbps(600);
  f.net->start_flow({f.ab}, 75'000'000, g,
                    [&](const FlowRecord& r) { done_g = r.end_time; });
  f.net->start_flow({f.ab}, 1'000'000'000, {}, nullptr);
  f.sim.run_until(10.0);
  EXPECT_NEAR(done_g, 1.0, 1e-6);  // 75 MB at 600 Mbps
}

TEST(Network, UpdateCapReschedulesCompletion) {
  Fixture f;
  double done = 0.0;
  FlowOptions opts;
  opts.cap = mbps(100);
  const FlowId id = f.net->start_flow({f.ab}, 100'000'000, opts,
                                      [&](const FlowRecord& r) { done = r.end_time; });
  // After 4 s (50 MB in), lift the cap: remaining 50 MB at 800 Mbps.
  f.sim.schedule_at(4.0, [&] { f.net->update_cap(id, 0.0); });
  f.sim.run();
  EXPECT_NEAR(done, 4.5, 1e-6);
}

TEST(Network, AbortRemovesFlowWithoutCallback) {
  Fixture f;
  bool fired = false;
  const FlowId id =
      f.net->start_flow({f.ab}, 100'000'000, {}, [&](const FlowRecord&) { fired = true; });
  f.sim.schedule_at(0.1, [&] { f.net->abort_flow(id); });
  f.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(f.net->active_flow_count(), 0u);
}

TEST(Network, LinkByteAccounting) {
  Fixture f;
  f.net->start_flow({f.ab, f.bc}, 10'000'000, {}, nullptr);
  f.sim.run();
  EXPECT_NEAR(f.net->link_bytes(f.ab), 10'000'000.0, 1.0);
  EXPECT_NEAR(f.net->link_bytes(f.bc), 10'000'000.0, 1.0);
}

TEST(Network, LinkBytesSettledMidFlight) {
  Fixture f;
  FlowOptions opts;
  opts.cap = mbps(80);
  f.net->start_flow({f.ab}, 100'000'000, opts, nullptr);
  f.sim.schedule_at(1.0, [&] {
    // 1 s at 80 Mbps = 10 MB.
    EXPECT_NEAR(f.net->link_bytes(f.ab), 10'000'000.0, 10.0);
  });
  f.sim.run_until(1.0);
}

TEST(Network, RemainingBytesDecreases) {
  Fixture f;
  FlowOptions opts;
  opts.cap = mbps(800);
  const FlowId id = f.net->start_flow({f.ab}, 100'000'000, opts, nullptr);
  f.sim.schedule_at(0.5, [&] {
    EXPECT_NEAR(static_cast<double>(f.net->remaining_bytes(id)), 50'000'000.0, 100.0);
  });
  f.sim.run_until(0.5);
}

TEST(Network, InvalidFlowsRejected) {
  Fixture f;
  EXPECT_THROW(f.net->start_flow({}, 1, {}, nullptr), gridvc::PreconditionError);
  EXPECT_THROW(f.net->start_flow({f.ab}, 0, {}, nullptr), gridvc::PreconditionError);
  EXPECT_THROW(f.net->start_flow({f.bc, f.ab}, 1, {}, nullptr),
               gridvc::PreconditionError);  // disconnected chain
  EXPECT_THROW(f.net->update_cap(999, 0.0), gridvc::PreconditionError);
  EXPECT_THROW(f.net->abort_flow(999), gridvc::PreconditionError);
}

// The incremental recompute: cap-limited flows are untouched by their
// neighbours' arrivals and completions, so total event churn stays O(N) —
// one completion event per flow plus one per arrival — instead of the
// O(N^2) a reschedule-everything recompute pays.
TEST(Network, CapLimitedChurnStaysLinear) {
  Fixture f;
  const int n = 50;
  int done = 0;
  for (int i = 0; i < n; ++i) {
    FlowOptions opts;
    opts.cap = mbps(10);  // 50 * 10 Mbps = 500 < 800 Mbps: never link-limited
    const Bytes size = 1'000'000 * static_cast<Bytes>(i + 1);  // staggered finishes
    f.net->start_flow({f.ab}, size, opts, [&](const FlowRecord&) { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, n);
  // Exactly one completion event per flow; nothing is ever rescheduled.
  EXPECT_EQ(f.sim.scheduled(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(f.sim.cancelled(), 0u);
}

// When the bottleneck *does* bind, rates genuinely change and flows must
// still be rescheduled — churn is bounded by O(N) per arrival/completion,
// and the fluid completion times stay exact.
TEST(Network, SharedBottleneckStillExact) {
  Fixture f;
  const int n = 8;
  std::vector<double> done_times;
  for (int i = 0; i < n; ++i) {
    f.net->start_flow({f.ab}, 100'000'000, {},
                      [&](const FlowRecord& r) { done_times.push_back(r.end_time); });
  }
  f.sim.run();
  ASSERT_EQ(done_times.size(), static_cast<std::size_t>(n));
  // 8 equal flows on 800 Mbps: all finish together at 8 s.
  for (double t : done_times) EXPECT_NEAR(t, 8.0, 1e-6);
  EXPECT_LE(f.sim.scheduled(), static_cast<std::uint64_t>(n * n + n));
}

TEST(Network, BatchedCapUpdateRecomputesOnce) {
  Fixture f;
  std::vector<double> done(2, 0.0);
  FlowOptions opts;
  opts.cap = mbps(100);
  const FlowId a = f.net->start_flow({f.ab}, 100'000'000, opts,
                                     [&](const FlowRecord& r) { done[0] = r.end_time; });
  const FlowId b = f.net->start_flow({f.ab}, 100'000'000, opts,
                                     [&](const FlowRecord& r) { done[1] = r.end_time; });
  // After 4 s (50 MB in each), lift both caps to 400 Mbps in one batch:
  // the remaining 50 MB then moves at 400 Mbps -> both done at 5 s.
  f.sim.schedule_at(4.0, [&] {
    f.net->update_caps({{a, mbps(400)}, {b, mbps(400)}});
  });
  f.sim.run();
  EXPECT_NEAR(done[0], 5.0, 1e-6);
  EXPECT_NEAR(done[1], 5.0, 1e-6);
  // Schedule budget: 2 initial completions + 1 timer + 2 reschedules.
  EXPECT_EQ(f.sim.scheduled(), 5u);
  EXPECT_EQ(f.sim.cancelled(), 2u);
}

TEST(Network, ManySequentialFlowsConserveBytes) {
  Fixture f;
  double total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const Bytes size = 1'000'000 * static_cast<Bytes>(i + 1);
    total += static_cast<double>(size);
    f.net->start_flow({f.ab}, size, {}, nullptr);
  }
  f.sim.run();
  EXPECT_NEAR(f.net->link_bytes(f.ab), total, 10.0);
}

}  // namespace
}  // namespace gridvc::net
