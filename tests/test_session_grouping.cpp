#include "analysis/session_grouping.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gridvc::analysis {
namespace {

using gridftp::TransferLog;
using gridftp::TransferRecord;
using gridftp::TransferType;

TransferRecord make(double start, double duration, const std::string& remote = "r1",
                    Bytes size = MiB, const std::string& server = "srv",
                    TransferType type = TransferType::kRetrieve) {
  TransferRecord r;
  r.type = type;
  r.size = size;
  r.start_time = start;
  r.duration = duration;
  r.server_host = server;
  r.remote_host = remote;
  return r;
}

TEST(SessionGrouping, BackToBackTransfersFormOneSession) {
  TransferLog log{make(0, 10), make(10.5, 10), make(21, 5)};
  const auto sessions = group_sessions(log, {.gap = 60.0});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].transfer_count(), 3u);
  EXPECT_EQ(sessions[0].total_bytes, 3 * MiB);
  EXPECT_DOUBLE_EQ(sessions[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(sessions[0].end_time, 26.0);
}

TEST(SessionGrouping, LargeGapSplitsSessions) {
  TransferLog log{make(0, 10), make(200, 10)};  // 190 s gap > 60 s
  const auto sessions = group_sessions(log, {.gap = 60.0});
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionGrouping, GapMeasuredFromSessionEnd) {
  // Transfer 2 starts 61 s after transfer 1 *starts* but only 1 s after
  // it ends -> same session.
  TransferLog log{make(0, 60), make(61, 10)};
  EXPECT_EQ(group_sessions(log, {.gap = 30.0}).size(), 1u);
}

TEST(SessionGrouping, NegativeGapConcurrentTransfers) {
  // Concurrent starts: the second begins before the first ends.
  TransferLog log{make(0, 100), make(10, 100), make(20, 100)};
  const auto sessions = group_sessions(log, {.gap = 0.0});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].transfer_count(), 3u);
}

TEST(SessionGrouping, ZeroGapSplitsOnAnyIdle) {
  TransferLog log{make(0, 10), make(10.001, 10)};
  EXPECT_EQ(group_sessions(log, {.gap = 0.0}).size(), 2u);
  EXPECT_EQ(group_sessions(log, {.gap = 1.0}).size(), 1u);
}

TEST(SessionGrouping, DifferentRemotesNeverMerge) {
  TransferLog log{make(0, 10, "r1"), make(1, 10, "r2")};
  const auto sessions = group_sessions(log, {.gap = 3600.0});
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionGrouping, DifferentServersNeverMerge) {
  TransferLog log{make(0, 10, "r1", MiB, "srvA"), make(1, 10, "r1", MiB, "srvB")};
  EXPECT_EQ(group_sessions(log, {.gap = 3600.0}).size(), 2u);
}

TEST(SessionGrouping, DirectionSplitOptional) {
  TransferLog log{make(0, 10, "r1", MiB, "srv", TransferType::kRetrieve),
                  make(1, 10, "r1", MiB, "srv", TransferType::kStore)};
  EXPECT_EQ(group_sessions(log, {.gap = 60.0}).size(), 1u);
  GroupingOptions split;
  split.gap = 60.0;
  split.split_by_direction = true;
  EXPECT_EQ(group_sessions(log, split).size(), 2u);
}

TEST(SessionGrouping, UnsortedInputHandled) {
  TransferLog log{make(200, 10), make(0, 10), make(11, 10)};
  const auto sessions = group_sessions(log, {.gap = 60.0});
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].transfer_count(), 2u);
}

TEST(SessionGrouping, SessionEndIsMaxEndNotLastEnd) {
  // A long transfer that outlives later short ones extends the session
  // window for gap purposes.
  TransferLog log{make(0, 1000), make(10, 5), make(900, 5)};
  const auto sessions = group_sessions(log, {.gap = 0.0});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_DOUBLE_EQ(sessions[0].end_time, 1000.0);
}

TEST(SessionGrouping, EffectiveRate) {
  TransferLog log{make(0, 10, "r1", 125'000'000 / 8)};  // session: 15.6 MB in 10 s
  const auto sessions = group_sessions(log, {.gap = 60.0});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_NEAR(sessions[0].effective_rate(), 12'500'000.0, 1.0);
}

TEST(SessionGrouping, NegativeGapOptionThrows) {
  TransferLog log{make(0, 1)};
  EXPECT_THROW(group_sessions(log, {.gap = -1.0}), gridvc::PreconditionError);
}

TEST(SessionGrouping, EmptyLogYieldsNoSessions) {
  EXPECT_TRUE(group_sessions({}, {.gap = 60.0}).empty());
}

TEST(Census, CountsShapes) {
  TransferLog log;
  // Session 1: 1 transfer. Session 2: 2 transfers. Session 3: 150.
  log.push_back(make(0, 1));
  log.push_back(make(1000, 1));
  log.push_back(make(1003, 1));
  double t = 5000;
  for (int i = 0; i < 150; ++i) {
    log.push_back(make(t, 1));
    t += 1.5;
  }
  const auto sessions = group_sessions(log, {.gap = 60.0});
  const auto c = census(sessions);
  EXPECT_EQ(c.total_sessions(), 3u);
  EXPECT_EQ(c.single_transfer_sessions, 1u);
  EXPECT_EQ(c.multi_transfer_sessions, 2u);
  EXPECT_NEAR(c.fraction_with_le2, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(c.max_transfers_in_session, 150u);
  EXPECT_EQ(c.sessions_with_100_or_more, 1u);
}

TEST(SessionVectors, SizesAndDurations) {
  TransferLog log{make(0, 10, "r1", 100 * MiB), make(5, 10, "r1", 28 * MiB)};
  const auto sessions = group_sessions(log, {.gap = 60.0});
  const auto sizes = session_sizes_megabytes(sessions);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_DOUBLE_EQ(sizes[0], 128.0);
  const auto durations = session_durations_seconds(sessions);
  EXPECT_DOUBLE_EQ(durations[0], 15.0);
}

// Property: raising g can only merge sessions — the session count is
// non-increasing in g, transfers are conserved, and every g=0 session is
// contained in exactly one larger-g session.
class GapMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(GapMonotonicity, SessionCountNonIncreasingInGap) {
  gridvc::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  TransferLog log;
  double t = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(40.0);
    log.push_back(make(t, rng.uniform(0.5, 30.0),
                       rng.bernoulli(0.3) ? "r2" : "r1",
                       static_cast<Bytes>(rng.uniform(1e5, 1e9))));
  }
  std::size_t prev_count = log.size() + 1;
  for (double g : {0.0, 30.0, 60.0, 120.0, 600.0}) {
    const auto sessions = group_sessions(log, {.gap = g});
    std::size_t transfers = 0;
    for (const auto& s : sessions) transfers += s.transfer_count();
    EXPECT_EQ(transfers, log.size());  // conservation
    EXPECT_LE(sessions.size(), prev_count);
    prev_count = sessions.size();
    // Within a session, consecutive gaps respect g.
    for (const auto& s : sessions) {
      double running_end = -1.0;
      for (std::size_t idx : s.transfer_indices) {
        if (running_end >= 0.0) {
          EXPECT_LE(log[idx].start_time - running_end, g + 1e-9);
        }
        running_end = std::max(running_end, log[idx].end_time());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLogs, GapMonotonicity, ::testing::Range(1, 17));

}  // namespace
}  // namespace gridvc::analysis
