# Shard-count determinism: the federation scenario and the sharded chaos
# battery must produce byte-identical digest files at --shards 1 and
# --shards 4, for two seeds each. This is the acceptance contract of the
# sharded simulation: the shard count widens the executor, never the
# behavior.
foreach(seed 1 12)
  set(d1 ${WORKDIR}/fed_s${seed}_shards1.digest)
  set(d4 ${WORKDIR}/fed_s${seed}_shards4.digest)
  execute_process(
    COMMAND ${SIMULATE} --scenario federation --seed ${seed}
            --sites 21 --users 300 --shards 1 --digest-out ${d1}
    RESULT_VARIABLE rc1)
  if(NOT rc1 EQUAL 0)
    message(FATAL_ERROR "federation (seed ${seed}, shards 1) failed: ${rc1}")
  endif()
  execute_process(
    COMMAND ${SIMULATE} --scenario federation --seed ${seed}
            --sites 21 --users 300 --shards 4 --digest-out ${d4}
    RESULT_VARIABLE rc4)
  if(NOT rc4 EQUAL 0)
    message(FATAL_ERROR "federation (seed ${seed}, shards 4) failed: ${rc4}")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${d1} ${d4}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "federation digests differ between shards 1 and 4 (seed ${seed})")
  endif()
endforeach()

# Sharded chaos battery across replications.
set(c1 ${WORKDIR}/fedchaos_shards1.digests)
set(c4 ${WORKDIR}/fedchaos_shards4.digests)
execute_process(
  COMMAND ${CHAOS} --shards 1 --seed 21 --replications 4 --digest-out ${c1}
  RESULT_VARIABLE crc1)
if(NOT crc1 EQUAL 0)
  message(FATAL_ERROR "sharded chaos battery (shards 1) failed: ${crc1}")
endif()
execute_process(
  COMMAND ${CHAOS} --shards 4 --seed 21 --replications 4 --digest-out ${c4}
  RESULT_VARIABLE crc4)
if(NOT crc4 EQUAL 0)
  message(FATAL_ERROR "sharded chaos battery (shards 4) failed: ${crc4}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${c1} ${c4}
  RESULT_VARIABLE csame)
if(NOT csame EQUAL 0)
  message(FATAL_ERROR "sharded chaos digests differ between shards 1 and 4")
endif()
