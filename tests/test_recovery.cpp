#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/error.hpp"
#include "recovery/circuit_breaker.hpp"
#include "recovery/fault_schedule.hpp"
#include "recovery/journal.hpp"
#include "sim/simulator.hpp"

namespace gridvc::recovery {
namespace {

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

TEST(Journal, LastWriteWinsPerKey) {
  Journal j;
  j.append("task", 1, "v1");
  j.append("task", 2, "other");
  j.append("task", 1, "v2");
  const auto records = j.replay("task");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].key, 1u);
  EXPECT_EQ(records[0].payload, "v2");
  EXPECT_EQ(records[1].key, 2u);
}

TEST(Journal, TombstoneDropsKeyAtReplay) {
  Journal j;
  j.append("task", 1, "alive");
  j.append("task", 2, "doomed");
  j.tombstone("task", 2);
  const auto records = j.replay("task");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, 1u);
}

TEST(Journal, StreamsAreIndependent) {
  Journal j;
  j.append("task", 7, "task-payload");
  j.append("vc", 7, "vc-payload");
  j.tombstone("task", 7);
  EXPECT_TRUE(j.replay("task").empty());
  ASSERT_EQ(j.replay("vc").size(), 1u);
  EXPECT_EQ(j.replay("vc")[0].payload, "vc-payload");
}

TEST(Journal, CompactKeepsExactlyReplayState) {
  Journal j;
  j.append("task", 1, "v1");
  j.append("task", 1, "v2");
  j.append("task", 2, "gone");
  j.tombstone("task", 2);
  j.append("vc", 3, "keep");
  EXPECT_EQ(j.size(), 5u);
  const auto before = j.replay("task");
  const std::size_t dropped = j.compact();
  EXPECT_EQ(dropped, 3u);  // superseded v1, "gone", its tombstone
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.replay("task"), before);
  EXPECT_EQ(j.replay("vc").size(), 1u);
  EXPECT_EQ(j.stats().records_dropped, 3u);
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresAndFailsFast) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_duration = 30.0;
  CircuitBreaker breaker(cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow(static_cast<double>(i)));
    breaker.record_failure(static_cast<double>(i));
  }
  EXPECT_EQ(breaker.state(2.5), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1u);
  EXPECT_FALSE(breaker.allow(10.0));  // still inside the open window
  EXPECT_EQ(breaker.stats().fast_failures, 1u);
  EXPECT_DOUBLE_EQ(breaker.reopen_at(), 32.0);
}

TEST(CircuitBreaker, HalfOpenAdmitsSingleProbeThenCloses) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_duration = 10.0;
  CircuitBreaker breaker(cfg);
  EXPECT_TRUE(breaker.allow(0.0));
  breaker.record_failure(0.0);
  // Open window elapsed: exactly one probe admitted.
  EXPECT_TRUE(breaker.allow(11.0));
  EXPECT_FALSE(breaker.allow(11.5));  // probe in flight, others fail fast
  breaker.record_success(12.0);
  EXPECT_EQ(breaker.state(12.0), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().probes, 1u);
  EXPECT_EQ(breaker.stats().closes, 1u);
  EXPECT_TRUE(breaker.allow(12.5));
}

TEST(CircuitBreaker, FailedProbeReopens) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_duration = 10.0;
  CircuitBreaker breaker(cfg);
  breaker.allow(0.0);
  breaker.record_failure(0.0);
  EXPECT_TRUE(breaker.allow(10.5));
  breaker.record_failure(10.5);
  EXPECT_EQ(breaker.state(10.6), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2u);
  // Open window restarts from the failed probe.
  EXPECT_FALSE(breaker.allow(15.0));
  EXPECT_TRUE(breaker.allow(21.0));
}

// ---------------------------------------------------------------------------
// Fault schedules
// ---------------------------------------------------------------------------

FaultScheduleSpec chaos_spec() {
  FaultScheduleSpec spec;
  spec.link_count = 2;
  spec.server_count = 2;
  spec.idc = true;
  spec.start_after = 5.0;
  spec.horizon = 1000.0;
  spec.link_mtbf = 100.0;
  spec.link_mttr = 10.0;
  spec.server_mtbf = 200.0;
  spec.server_mttr = 20.0;
  spec.idc_mtbf = 300.0;
  spec.idc_mttr = 15.0;
  return spec;
}

TEST(FaultSchedule, DeterministicAndWellFormed) {
  const auto spec = chaos_spec();
  const FaultSchedule a = generate_fault_schedule(spec, 42);
  const FaultSchedule b = generate_fault_schedule(spec, 42);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_FALSE(a.windows.empty());
  for (const auto& w : a.windows) {
    EXPECT_GE(w.down_at, spec.start_after);
    EXPECT_LT(w.down_at, spec.horizon);
    EXPECT_GT(w.up_at, w.down_at);  // every fault heals
  }
  // Sorted by down time.
  for (std::size_t i = 1; i < a.windows.size(); ++i) {
    EXPECT_LE(a.windows[i - 1].down_at, a.windows[i].down_at);
  }
  // Per-target windows never overlap.
  for (const auto& w1 : a.windows) {
    for (const auto& w2 : a.windows) {
      if (&w1 == &w2 || w1.kind != w2.kind || w1.target != w2.target) continue;
      EXPECT_TRUE(w1.up_at <= w2.down_at || w2.up_at <= w1.down_at);
    }
  }
  EXPECT_NE(generate_fault_schedule(spec, 43).windows, a.windows);
}

TEST(FaultSchedule, KindsDrawFromIndependentStreams) {
  // Disabling the link process must not shift the server/IDC windows.
  auto spec = chaos_spec();
  const FaultSchedule full = generate_fault_schedule(spec, 7);
  spec.link_mtbf = 0.0;
  const FaultSchedule no_links = generate_fault_schedule(spec, 7);
  EXPECT_EQ(no_links.count(FaultTargetKind::kLink), 0u);
  std::vector<FaultWindow> expected;
  for (const auto& w : full.windows) {
    if (w.kind != FaultTargetKind::kLink) expected.push_back(w);
  }
  EXPECT_EQ(no_links.windows, expected);
}

TEST(FaultScheduleInjector, ReplaysEveryWindowInOrder) {
  sim::Simulator sim;
  FaultSchedule schedule;
  schedule.windows = {
      {FaultTargetKind::kLink, 0, 1.0, 5.0},
      {FaultTargetKind::kServer, 1, 2.0, 3.0},
      {FaultTargetKind::kIdc, 0, 4.0, 6.0},
  };
  std::vector<std::pair<double, int>> log;  // (time, +down/-up code)
  FaultScheduleInjector injector(
      sim, schedule,
      [&](FaultTargetKind kind, std::uint64_t) {
        log.emplace_back(sim.now(), static_cast<int>(kind) + 1);
      },
      [&](FaultTargetKind kind, std::uint64_t) {
        log.emplace_back(sim.now(), -(static_cast<int>(kind) + 1));
      });
  sim.run();
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(injector.stats().downs, 3u);
  EXPECT_EQ(injector.stats().ups, 3u);
  const std::vector<std::pair<double, int>> expected = {
      {1.0, 1}, {2.0, 2}, {3.0, -2}, {4.0, 3}, {5.0, -1}, {6.0, -3}};
  EXPECT_EQ(log, expected);
}

TEST(FaultScheduleInjector, DestructionCancelsPendingEvents) {
  sim::Simulator sim;
  FaultSchedule schedule;
  schedule.windows = {{FaultTargetKind::kLink, 0, 1.0, 5.0}};
  int fired = 0;
  {
    FaultScheduleInjector injector(
        sim, schedule, [&](FaultTargetKind, std::uint64_t) { ++fired; },
        [&](FaultTargetKind, std::uint64_t) { ++fired; });
  }
  sim.run();  // injector died before the run: nothing may fire
  EXPECT_EQ(fired, 0);
}

TEST(ShrinkSchedule, FindsOneMinimalSubset) {
  // "Fails" iff the schedule still contains the one poisoned window.
  const FaultWindow poison{FaultTargetKind::kServer, 1, 40.0, 50.0};
  FaultSchedule failing;
  for (int i = 0; i < 12; ++i) {
    failing.windows.push_back(
        {FaultTargetKind::kLink, static_cast<std::uint64_t>(i % 3),
         static_cast<double>(i * 10), static_cast<double>(i * 10 + 5)});
  }
  failing.windows.push_back(poison);
  int evaluations = 0;
  const auto still_fails = [&](const FaultSchedule& s) {
    ++evaluations;
    for (const auto& w : s.windows) {
      if (w == poison) return true;
    }
    return false;
  };
  const FaultSchedule minimal = shrink_schedule(failing, still_fails);
  ASSERT_EQ(minimal.windows.size(), 1u);
  EXPECT_EQ(minimal.windows[0], poison);
  EXPECT_GT(evaluations, 0);
}

TEST(ShrinkSchedule, RequiresFailingInput) {
  FaultSchedule passing;
  passing.windows = {{FaultTargetKind::kLink, 0, 1.0, 2.0}};
  EXPECT_THROW(shrink_schedule(passing, [](const FaultSchedule&) { return false; }),
               PreconditionError);
}

}  // namespace
}  // namespace gridvc::recovery
