// Zone profiler, log-bucket histogram, profile serialization, and
// flight recorder.
//
// The profiler tests swap in a fake tick source (set_clock_for_test) so
// every duration — and therefore every serialized report — is
// deterministic; the ticks it returns are taken as nanoseconds verbatim.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log_histogram.hpp"
#include "obs/profile_io.hpp"
#include "obs/profiler.hpp"
#include "workload/chaos.hpp"

namespace {

using namespace gridvc;
using obs::LogHistogram;
using obs::ProfileReport;
using obs::Profiler;

// Fake tick sources. A constant clock zeroes every duration; the step
// clock advances one tick per read, giving exact, schedule-independent
// durations for single-threaded hierarchy tests.
std::uint64_t constant_clock() { return 1000; }
std::uint64_t g_step = 0;
std::uint64_t step_clock() { return g_step++; }

struct ClockGuard {
  explicit ClockGuard(std::uint64_t (*fn)()) { Profiler::set_clock_for_test(fn); }
  ~ClockGuard() {
    Profiler::disable();
    Profiler::set_clock_for_test(nullptr);
  }
};

TEST(LogHistogram, QuantilesWithinSubBucketRelativeError) {
  // Log-normal-ish spread over nine decades; the reported quantile must
  // land within one sub-bucket (1/32 relative) of the exact order
  // statistic.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> exponent(-3.0, 6.0);
  std::vector<double> values;
  LogHistogram h;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::pow(10.0, exponent(rng));
    values.push_back(v);
    h.observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.50, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = values[rank - 1];
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx, exact, exact / 32.0) << "q=" << q;
  }
}

TEST(LogHistogram, UnderflowExcludedFromQuantiles) {
  LogHistogram h;
  h.observe(0.0);
  h.observe(-5.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // nothing positive observed
  h.observe(8.0);
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 8.0 * (1.0 - 1.0 / 32.0));
  EXPECT_LE(p50, 8.0 * (1.0 + 1.0 / 32.0));
}

TEST(LogHistogram, MergeMatchesUnionOfObservations) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> exponent(-2.0, 4.0);
  LogHistogram a, b, u;
  for (int i = 0; i < 5000; ++i) {
    const double v = std::pow(10.0, exponent(rng));
    (i % 2 ? a : b).observe(v);
    u.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), u.total());
  // Summation order differs between the split and union histograms.
  EXPECT_NEAR(a.sum(), u.sum(), u.sum() * 1e-12);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), u.quantile(q));
  }
  const auto ba = a.buckets();
  const auto bu = u.buckets();
  ASSERT_EQ(ba.size(), bu.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].count, bu[i].count);
  }
}

// Zone-macro tests only exist when instrumentation is compiled in
// (GRIDVC_PROFILING=ON, the default); with it off the macro is (void)0
// and there is nothing to record.
#ifndef GRIDVC_PROF_DISABLED

TEST(Profiler, HierarchySelfExcludesChildTime) {
  g_step = 0;
  ClockGuard clock(&step_clock);
  Profiler::enable();
  {
    GRIDVC_PROF_ZONE("t.parent");  // start=t
    {
      GRIDVC_PROF_ZONE("t.child");  // start=t+1, end=t+2 -> dur 1
    }
  }  // end=t+3 -> dur 3, self 2
  Profiler::disable();
  const ProfileReport report = Profiler::collect();

  const auto find = [&](const std::string& name) -> const obs::ZoneStat* {
    for (const auto& z : report.zones) {
      if (z.name == name) return &z;
    }
    return nullptr;
  };
  const auto* parent = find("t.parent");
  const auto* child = find("t.child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(parent->count, 1u);
  EXPECT_EQ(parent->total_ns, 3u);
  EXPECT_EQ(parent->self_ns, 2u);
  EXPECT_EQ(child->total_ns, 1u);
  EXPECT_EQ(child->self_ns, 1u);
}

TEST(Profiler, DisabledZonesRecordNothing) {
  Profiler::disable();
  ClockGuard clock(&constant_clock);
  {
    GRIDVC_PROF_ZONE("t.disabled");
  }
  Profiler::enable();
  Profiler::disable();
  const ProfileReport report = Profiler::collect();
  for (const auto& z : report.zones) {
    EXPECT_NE(z.name, "t.disabled");
  }
}

// The exec layer runs the same index bodies at any lane count, so the
// merged per-zone call counts — and the digest built from them — must be
// byte-identical across thread counts.
ProfileReport profile_parallel_region(unsigned threads) {
  exec::set_default_threads(threads);
  Profiler::enable();
  exec::default_pool().parallel_for(64, [](std::size_t i) {
    GRIDVC_PROF_ZONE("t.region_item");
    if (i % 4 == 0) {
      GRIDVC_PROF_ZONE("t.region_item_slow");
    }
  });
  Profiler::disable();
  ProfileReport report = Profiler::collect();
  exec::set_default_threads(0);
  return report;
}

TEST(Profiler, DigestIsThreadCountInvariant) {
  ClockGuard clock(&constant_clock);
  const ProfileReport one = profile_parallel_region(1);
  const ProfileReport four = profile_parallel_region(4);

  std::ostringstream d1, d4;
  obs::write_profile_digest(d1, one);
  obs::write_profile_digest(d4, four);
  EXPECT_EQ(d1.str(), d4.str());
  EXPECT_NE(d1.str().find("t.region_item 64\n"), std::string::npos);
  EXPECT_NE(d1.str().find("t.region_item_slow 16\n"), std::string::npos);
}

TEST(Profiler, ChromeTraceRoundTrips) {
  g_step = 0;
  ClockGuard clock(&step_clock);
  Profiler::enable();
  for (int i = 0; i < 10; ++i) {
    GRIDVC_PROF_ZONE("t.roundtrip");
  }
  Profiler::disable();
  const ProfileReport report = Profiler::collect();

  std::ostringstream out;
  obs::write_chrome_trace(out, report);
  const ProfileReport back = obs::read_profile_json(out.str());

  std::ostringstream da, db;
  obs::write_profile_digest(da, report);
  obs::write_profile_digest(db, back);
  EXPECT_EQ(da.str(), db.str());
  ASSERT_FALSE(back.samples.empty());
  EXPECT_EQ(back.lanes, report.lanes);
}

TEST(ProfileIo, ParserRejectsMalformedJson) {
  EXPECT_THROW(obs::parse_json("{\"a\": }"), ParseError);
  EXPECT_THROW(obs::parse_json("{} trailing"), ParseError);
  EXPECT_THROW(obs::read_profile_json("{\"traceEvents\": []}"), ParseError);
}

TEST(ProfileIo, DiffReportsPerZoneDeltas) {
  g_step = 0;
  ClockGuard clock(&step_clock);
  Profiler::enable();
  {
    GRIDVC_PROF_ZONE("t.diff_zone");
  }
  Profiler::disable();
  const ProfileReport before = Profiler::collect();
  Profiler::enable();
  for (int i = 0; i < 3; ++i) {
    GRIDVC_PROF_ZONE("t.diff_zone");
  }
  Profiler::disable();
  const ProfileReport after = Profiler::collect();

  std::ostringstream out;
  obs::write_profile_diff(out, before, after);
  EXPECT_NE(out.str().find("t.diff_zone"), std::string::npos);
}

#endif  // GRIDVC_PROF_DISABLED

// Forced chaos failure: sabotage injects a trace/metrics inconsistency,
// the harness flags it, and the armed flight recorder must dump the
// recent trace-event history with the violated invariant as the reason.
TEST(FlightRecorder, DumpsOnChaosInvariantViolation) {
  const std::string path = testing::TempDir() + "gridvc_flight_dump.json";
  std::remove(path.c_str());

  auto& recorder = obs::FlightRecorder::instance();
  recorder.arm(path);
  workload::ChaosConfig config;
  config.sabotage = true;
  // Seed 3 schedules a server crash (pinned by the chaos tests), so the
  // sabotaged run is guaranteed to violate trace-metrics.
  const workload::ChaosResult result = workload::run_chaos(config, 3);
  recorder.disarm();

  ASSERT_FALSE(result.ok());
  ASSERT_GE(recorder.dump_count(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "flight dump not written to " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json doc = obs::parse_json(buf.str());
  const obs::Json* rec = doc.get("flightRecorder");
  ASSERT_NE(rec, nullptr);
  const obs::Json* reason = rec->get("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->str.rfind("chaos-invariant:", 0), 0u) << reason->str;
  const obs::Json* events = rec->get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array.empty());
  const obs::Json* thread = rec->get("thread");
  ASSERT_NE(thread, nullptr);
  EXPECT_NE(thread->get("recentZones"), nullptr);
}

TEST(FlightRecorder, RecordIsDroppedWhenDisarmed) {
  auto& recorder = obs::FlightRecorder::instance();
  recorder.disarm();
  EXPECT_FALSE(obs::FlightRecorder::armed());
  obs::TraceEvent ev;
  ev.time = 1.0;
  recorder.record(ev);  // no-op, must not crash
}

}  // namespace
