// Sharded multi-domain simulation: partition correctness, path cutting,
// the federation scenario generator, and — the load-bearing property —
// byte-identical digests at every shard count.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "shard/partition.hpp"
#include "shard/sharded_simulation.hpp"
#include "workload/federation.hpp"

namespace gridvc {
namespace {

workload::FederationConfig small_config() {
  workload::FederationConfig config;
  config.sites = 5;
  config.hosts_per_site = 2;
  config.users = 60;
  config.transfers_per_user = 2;
  config.file_size = 8ULL << 20;
  config.arrival_horizon = 30.0;
  config.think_time = 1.0;
  config.remote_fraction = 0.5;
  config.vc_fraction = 0.5;
  return config;
}

TEST(Federation, TopologyShapeAndDomains) {
  const auto s = workload::build_federation(small_config(), 42);
  // 5 sites x (border + edge + 2 hosts) nodes.
  EXPECT_EQ(s.topo.node_count(), 5u * 4u);
  EXPECT_EQ(s.sites.size(), 5u);
  for (std::size_t i = 0; i < s.sites.size(); ++i) {
    const auto& site = s.topo.node(s.sites[i].border);
    EXPECT_EQ(site.domain, s.topo.node(s.sites[i].edge).domain);
    for (net::NodeId h : s.sites[i].hosts) {
      EXPECT_EQ(s.topo.node(h).domain, site.domain);
    }
  }
}

TEST(Federation, SiteNamesSortInSiteOrder) {
  // The partition orders domains lexicographically; zero-padded names make
  // that order equal the numeric site order even past 10 sites.
  auto config = small_config();
  config.sites = 12;
  const auto s = workload::build_federation(config, 1);
  const shard::DomainPartition part(s.topo);
  ASSERT_EQ(part.domain_count(), 12u);
  for (std::uint32_t d = 0; d < part.domain_count(); ++d) {
    EXPECT_EQ(part.domain_index(s.topo.node(s.sites[d].border).domain), d);
    EXPECT_EQ(part.domain_of(s.sites[d].border), d);
  }
}

TEST(Federation, TransferParamsArePureAndInRange) {
  const auto s = workload::build_federation(small_config(), 7);
  for (std::uint64_t u = 0; u < s.config.users; ++u) {
    for (std::uint32_t k = 0; k < s.config.transfers_per_user; ++k) {
      const auto a = s.transfer_params(u, k);
      const auto b = s.transfer_params(u, k);
      EXPECT_EQ(a.dst_site, b.dst_site);
      EXPECT_EQ(a.size, b.size);
      EXPECT_EQ(a.wants_vc, b.wants_vc);
      ASSERT_LT(a.dst_site, s.config.sites);
      ASSERT_LT(a.dst_host, s.config.hosts_per_site);
      // Never a self-transfer.
      const bool same_host = a.dst_site == s.origin_site(u) &&
                             a.dst_host == s.origin_host(u);
      EXPECT_FALSE(same_host);
      EXPECT_GE(a.size, 1ULL << 20);
      // The route is valid in the global topology.
      const auto path = s.route(u, a);
      const auto src = s.sites[s.origin_site(u)].hosts[s.origin_host(u)];
      const auto dst = s.sites[a.dst_site].hosts[a.dst_host];
      EXPECT_TRUE(s.topo.is_valid_path(path, src, dst));
    }
  }
}

TEST(Partition, GatewaysAreDuplexAndLookaheadIsMinDelay) {
  const auto s = workload::build_federation(small_config(), 42);
  const shard::DomainPartition part(s.topo);
  ASSERT_FALSE(part.gateways().empty());
  Seconds lo = 1e9;
  for (const auto& gw : part.gateways()) {
    lo = std::min(lo, gw.delay);
    ASSERT_NE(gw.reverse, shard::DomainPartition::kNoGateway);
    const auto& rev = part.gateways()[gw.reverse];
    EXPECT_EQ(rev.global_from, gw.global_to);
    EXPECT_EQ(rev.global_to, gw.global_from);
    EXPECT_NE(gw.src_domain, gw.dst_domain);
  }
  EXPECT_DOUBLE_EQ(part.lookahead(), lo);
  EXPECT_GE(part.lookahead(), small_config().interdomain_delay_min);
}

TEST(Partition, LocalTopologiesCoverAllNodesOnce) {
  const auto s = workload::build_federation(small_config(), 42);
  const shard::DomainPartition part(s.topo);
  std::size_t owned = 0;
  for (std::uint32_t d = 0; d < part.domain_count(); ++d) {
    owned += part.domain(d).local_node.size();
    // 2 hosts per site in small_config.
    EXPECT_EQ(part.domain(d).global_hosts.size(), 2u);
  }
  EXPECT_EQ(owned, s.topo.node_count());
}

TEST(Partition, CutPathProducesChainedLegs) {
  const auto s = workload::build_federation(small_config(), 42);
  const shard::DomainPartition part(s.topo);
  // Find a remote transfer to cut.
  for (std::uint64_t u = 0; u < s.config.users; ++u) {
    const auto t = s.transfer_params(u, 0);
    if (t.dst_site == s.origin_site(u)) continue;
    const auto path = s.route(u, t);
    const auto legs = part.cut_path(path);
    ASSERT_GE(legs.size(), 2u);
    EXPECT_EQ(legs.front().domain, part.domain_of(s.sites[s.origin_site(u)].border));
    EXPECT_EQ(legs.back().domain, part.domain_of(s.sites[t.dst_site].border));
    for (std::size_t i = 0; i < legs.size(); ++i) {
      const auto& leg = legs[i];
      const bool last = i + 1 == legs.size();
      EXPECT_EQ(leg.exit_gateway == shard::DomainPartition::kNoGateway, last);
      if (!last) {
        const auto& gw = part.gateways()[leg.exit_gateway];
        EXPECT_EQ(gw.src_domain, leg.domain);
        EXPECT_EQ(gw.dst_domain, legs[i + 1].domain);
      }
      if (!leg.local_path.empty()) {
        EXPECT_TRUE(part.domain(leg.domain)
                        .topo.is_valid_path(leg.local_path, leg.local_src, leg.local_dst));
      }
    }
    return;
  }
  FAIL() << "no remote transfer in the scenario";
}

TEST(Partition, IntraSitePathIsOneLeg) {
  const auto s = workload::build_federation(small_config(), 42);
  const shard::DomainPartition part(s.topo);
  for (std::uint64_t u = 0; u < s.config.users; ++u) {
    const auto t = s.transfer_params(u, 0);
    if (t.dst_site != s.origin_site(u)) continue;
    const auto legs = part.cut_path(s.route(u, t));
    ASSERT_EQ(legs.size(), 1u);
    EXPECT_EQ(legs[0].exit_gateway, shard::DomainPartition::kNoGateway);
    return;
  }
  FAIL() << "no intra-site transfer in the scenario";
}

TEST(ShardedSimulation, CompletesAllTransfersAndConservesBytes) {
  const auto s = workload::build_federation(small_config(), 11);
  shard::ShardedSimulation sharded(s, 2);
  sharded.run();
  EXPECT_TRUE(sharded.violations().empty())
      << (sharded.violations().empty() ? "" : sharded.violations().front());
  const auto& st = sharded.stats();
  EXPECT_EQ(st.transfers_completed, s.total_transfers());
  EXPECT_EQ(st.bytes_delivered, st.bytes_planned);
  EXPECT_GT(st.messages, 0u);          // remote traffic crossed shards
  EXPECT_GT(st.chains_requested, 0u);  // vc_fraction drew some chains
  EXPECT_EQ(st.chains_granted + st.chains_rejected, st.chains_requested);
  EXPECT_GT(st.barriers, 0u);
  EXPECT_GT(st.end_time, 0.0);
}

TEST(ShardedSimulation, DigestIsByteIdenticalAcrossShardCounts) {
  for (const std::uint64_t seed : {3ULL, 17ULL}) {
    const auto s = workload::build_federation(small_config(), seed);
    std::vector<std::string> digests;
    for (const unsigned shards : {1u, 2u, 4u}) {
      shard::ShardedSimulation sharded(s, shards);
      sharded.run();
      EXPECT_TRUE(sharded.violations().empty());
      digests.push_back(sharded.digest());
    }
    EXPECT_EQ(digests[0], digests[1]) << "seed " << seed;
    EXPECT_EQ(digests[0], digests[2]) << "seed " << seed;
    // The digest is substantive, not vacuous.
    EXPECT_NE(digests[0].find("hash="), std::string::npos);
    EXPECT_EQ(digests[0].find("violations=0"), digests[0].size() - 12);
  }
}

TEST(ShardedSimulation, DistinctSeedsProduceDistinctDigests) {
  const auto a = workload::build_federation(small_config(), 5);
  const auto b = workload::build_federation(small_config(), 6);
  shard::ShardedSimulation sa(a, 2);
  shard::ShardedSimulation sb(b, 2);
  sa.run();
  sb.run();
  EXPECT_NE(sa.digest(), sb.digest());
}

}  // namespace
}  // namespace gridvc
