#include "net/tcp_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gridvc::net {
namespace {

TEST(TcpModel, WindowCapFormula) {
  TcpConfig cfg;
  cfg.stream_buffer = 16 * MiB;
  TcpModel tcp(cfg);
  // 1 stream, 80 ms: 16 MiB * 8 / 0.08 = 1.6777e9 bps.
  EXPECT_NEAR(tcp.window_cap(1, 0.08), 16.0 * 1024 * 1024 * 8 / 0.08, 1.0);
  EXPECT_NEAR(tcp.window_cap(8, 0.08), 8.0 * tcp.window_cap(1, 0.08), 1.0);
}

TEST(TcpModel, InvalidInputsThrow) {
  TcpModel tcp;
  EXPECT_THROW(tcp.window_cap(0, 0.08), gridvc::PreconditionError);
  EXPECT_THROW(tcp.window_cap(1, 0.0), gridvc::PreconditionError);
  EXPECT_THROW(tcp.transfer_duration(1, 1, 0.08, 0.0), gridvc::PreconditionError);
}

TEST(TcpModel, BadConfigThrows) {
  TcpConfig cfg;
  cfg.mss = 0;
  EXPECT_THROW(TcpModel{cfg}, gridvc::PreconditionError);
  TcpConfig cfg2;
  cfg2.loss_probability = 1.5;
  EXPECT_THROW(TcpModel{cfg2}, gridvc::PreconditionError);
}

TEST(TcpModel, SlowStartRampSkippedWhenWindowAlreadyLarge) {
  TcpModel tcp;
  // Steady rate so low the initial window already covers it.
  const auto p = tcp.slow_start(8, 0.08, 1000.0);
  EXPECT_EQ(p.bytes, 0u);
  EXPECT_DOUBLE_EQ(p.duration, 0.0);
}

TEST(TcpModel, SlowStartShorterWithMoreStreams) {
  TcpModel tcp;
  const auto one = tcp.slow_start(1, 0.08, mbps(200));
  const auto eight = tcp.slow_start(8, 0.08, mbps(200));
  EXPECT_GT(one.duration, eight.duration);
}

TEST(TcpModel, SmallFileFasterWithMoreStreams) {
  // The Fig 3 effect: an 8-stream transfer of a small file beats 1 stream.
  TcpModel tcp;
  const Seconds d1 = tcp.transfer_duration(10 * MiB, 1, 0.08, mbps(200));
  const Seconds d8 = tcp.transfer_duration(10 * MiB, 8, 0.08, mbps(200));
  EXPECT_GT(d1, d8);
  // Effective throughput ratio is material (>20% faster).
  EXPECT_GT(d1 / d8, 1.2);
}

TEST(TcpModel, LargeFileStreamCountIrrelevant) {
  // The Fig 4 effect: for files far beyond the ramp, throughput is share
  // bound and stream count stops mattering (loss-free regime).
  TcpModel tcp;
  const Seconds d1 = tcp.transfer_duration(4 * GiB, 1, 0.08, mbps(200));
  const Seconds d8 = tcp.transfer_duration(4 * GiB, 8, 0.08, mbps(200));
  EXPECT_NEAR(d1 / d8, 1.0, 0.02);
}

TEST(TcpModel, DurationMonotoneInSize) {
  TcpModel tcp;
  Seconds prev = 0.0;
  for (Bytes size = MiB; size <= GiB; size *= 4) {
    const Seconds d = tcp.transfer_duration(size, 4, 0.05, mbps(500));
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(TcpModel, DurationApproachesFluidLimitForHugeTransfers) {
  TcpModel tcp;
  const Bytes size = 64 * GiB;
  const Seconds d = tcp.transfer_duration(size, 8, 0.08, gbps(1));
  const Seconds fluid = transfer_time(size, gbps(1));
  EXPECT_NEAR(d / fluid, 1.0, 0.01);
}

TEST(TcpModel, SlowStartPenaltyNonNegativeAndConsistent) {
  TcpModel tcp;
  for (Bytes size : {Bytes(64 * KiB), Bytes(10 * MiB), Bytes(GiB)}) {
    for (int streams : {1, 4, 8}) {
      const Seconds penalty = tcp.slow_start_penalty(size, streams, 0.08, mbps(300));
      EXPECT_GE(penalty, 0.0);
      const Seconds full = tcp.transfer_duration(size, streams, 0.08, mbps(300));
      const BitsPerSecond steady =
          std::min(mbps(300), tcp.window_cap(streams, 0.08));
      EXPECT_NEAR(full, penalty + transfer_time(size, steady), 1e-6);
    }
  }
}

TEST(TcpModel, WindowCapBindsWhenShareIsLarge) {
  TcpConfig cfg;
  cfg.stream_buffer = MiB;
  TcpModel tcp(cfg);
  // 1 stream, 1 MiB buffer, 100 ms: cap = 83.9 Mbps even with 10G share.
  const Seconds d = tcp.transfer_duration(GiB, 1, 0.1, gbps(10));
  const BitsPerSecond cap = tcp.window_cap(1, 0.1);
  EXPECT_GT(d, 0.9 * transfer_time(GiB, cap));
}

TEST(TcpModel, NoLossMeansUnitFactor) {
  TcpModel tcp;  // loss_probability = 0
  gridvc::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(tcp.loss_factor(GiB, 1, 0.08, mbps(200), rng), 1.0);
  }
}

TEST(TcpModel, LossHurtsFewerStreamsMore) {
  TcpConfig cfg;
  cfg.loss_probability = 1.0;  // force a loss event every transfer
  TcpModel tcp(cfg);
  gridvc::Rng rng(2);
  const double f1 = tcp.loss_factor(100 * MiB, 1, 0.08, mbps(200), rng);
  const double f8 = tcp.loss_factor(100 * MiB, 8, 0.08, mbps(200), rng);
  EXPECT_LT(f1, f8);
  EXPECT_GT(f1, 0.0);
  EXPECT_LE(f8, 1.0);
}

TEST(TcpModel, LossFactorBounded) {
  TcpConfig cfg;
  cfg.loss_probability = 1.0;
  TcpModel tcp(cfg);
  gridvc::Rng rng(3);
  for (Bytes size : {Bytes(KiB), Bytes(MiB), Bytes(10 * GiB)}) {
    const double f = tcp.loss_factor(size, 1, 0.08, mbps(100), rng);
    EXPECT_GE(f, 0.05);
    EXPECT_LE(f, 1.0);
  }
}

}  // namespace
}  // namespace gridvc::net
