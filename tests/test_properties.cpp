// Cross-module property suites: randomized scenarios checked against
// invariants that must hold for *every* realization, not just the
// calibrated defaults.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "analysis/session_grouping.hpp"
#include "common/rng.hpp"
#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"
#include "net/tcp_model.hpp"
#include "vc/idc.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"
#include "workload/testbed.hpp"

namespace gridvc {
namespace {

// ---------------------------------------------------------------------------
// Network: byte conservation under random arrivals, cap churn, and aborts.
// ---------------------------------------------------------------------------

class NetworkConservation : public ::testing::TestWithParam<int> {};

TEST_P(NetworkConservation, LinkBytesEqualDeliveredBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
  sim::Simulator sim;
  net::Topology topo;
  const auto a = topo.add_node("a", net::NodeKind::kHost);
  const auto r = topo.add_node("r", net::NodeKind::kRouter);
  const auto b = topo.add_node("b", net::NodeKind::kHost);
  const auto l1 = topo.add_link(a, r, gbps(rng.uniform(1.0, 10.0)), 0.001);
  const auto l2 = topo.add_link(r, b, gbps(rng.uniform(1.0, 10.0)), 0.001);
  net::Network network(sim, topo);

  double completed_bytes = 0.0;
  double aborted_remaining = 0.0;
  double aborted_delivered = 0.0;
  std::vector<net::FlowId> live;
  double offered = 0.0;

  const int arrivals = 40;
  double t = 0.0;
  for (int i = 0; i < arrivals; ++i) {
    t += rng.exponential(0.5);
    sim.schedule_at(t, [&, i] {
      const Bytes size = static_cast<Bytes>(rng.uniform(1e6, 5e8));
      offered += static_cast<double>(size);
      net::FlowOptions opts;
      if (rng.bernoulli(0.4)) opts.cap = mbps(rng.uniform(50.0, 5000.0));
      if (rng.bernoulli(0.2)) opts.guarantee = mbps(rng.uniform(10.0, 500.0));
      const auto id = network.start_flow(
          {l1, l2}, size, opts,
          [&](const net::FlowRecord& rec) { completed_bytes += rec.size; });
      live.push_back(id);
      // Occasionally churn an existing flow.
      if (!live.empty() && rng.bernoulli(0.3)) {
        const auto victim = live[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
        // The victim may have completed already; guard with a lookup.
        const auto ids = network.active_flows();
        if (std::find(ids.begin(), ids.end(), victim) != ids.end()) {
          if (rng.bernoulli(0.5)) {
            network.update_cap(victim, mbps(rng.uniform(50.0, 2000.0)));
          } else {
            const double remaining =
                static_cast<double>(network.remaining_bytes(victim));
            aborted_remaining += remaining;
            aborted_delivered +=
                static_cast<double>(network.flow_size(victim)) - remaining;
            network.abort_flow(victim);
          }
        }
      }
      (void)i;
    });
  }
  sim.run();

  // Both links carried exactly the delivered bytes: completions plus the
  // partial progress of aborted flows. (An abort can race a zero-delay
  // completion event, in which case the "aborted" flow had fully
  // delivered; flow_size - remaining accounts for that correctly.)
  const double delivered = completed_bytes + aborted_delivered;
  EXPECT_NEAR(network.link_bytes(l1), delivered, 64.0);
  EXPECT_NEAR(network.link_bytes(l2), delivered, 64.0);
  EXPECT_NEAR(delivered + aborted_remaining, offered, 64.0);
  EXPECT_EQ(network.active_flow_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Random, NetworkConservation, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// TCP model: monotonicity and bounds over random configurations.
// ---------------------------------------------------------------------------

class TcpModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(TcpModelProperty, DurationBoundsAndMonotonicity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  net::TcpConfig cfg;
  cfg.slow_start_growth = rng.uniform(1.2, 2.0);
  if (rng.bernoulli(0.5)) {
    cfg.ssthresh_per_stream = static_cast<Bytes>(rng.uniform(6.4e4, 1e6));
    cfg.ca_mss_per_rtt = rng.uniform(1.0, 12.0);
  }
  const net::TcpModel tcp(cfg);
  const Seconds rtt = rng.uniform(0.01, 0.15);
  const BitsPerSecond share = mbps(rng.uniform(20.0, 5000.0));
  const int streams = static_cast<int>(rng.uniform_int(1, 16));

  Seconds prev = 0.0;
  for (double mb = 1.0; mb <= 4096.0; mb *= 4.0) {
    const Bytes size = static_cast<Bytes>(mb * static_cast<double>(MiB));
    const Seconds d = tcp.transfer_duration(size, streams, rtt, share);
    // Monotone in size.
    ASSERT_GT(d, prev);
    prev = d;
    // Never faster than the fluid bound at the steady rate.
    const BitsPerSecond steady = std::min(share, tcp.window_cap(streams, rtt));
    ASSERT_GE(d + 1e-9, transfer_time(size, steady));
    // Penalty is the exact difference to the fluid model.
    const Seconds penalty = tcp.slow_start_penalty(size, streams, rtt, share);
    ASSERT_NEAR(d, transfer_time(size, steady) + penalty, 1e-6);
  }

  // More streams never hurt (for fixed share and size).
  const Bytes probe = 64 * MiB;
  Seconds worse = tcp.transfer_duration(probe, 1, rtt, share);
  for (int n : {2, 4, 8, 16}) {
    const Seconds d = tcp.transfer_duration(probe, n, rtt, share);
    ASSERT_LE(d, worse + 1e-9);
    worse = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, TcpModelProperty, ::testing::Range(1, 17));

// ---------------------------------------------------------------------------
// IDC: admitted circuits never oversubscribe any link at any instant.
// ---------------------------------------------------------------------------

class IdcAdmissionProperty : public ::testing::TestWithParam<int> {};

TEST_P(IdcAdmissionProperty, ActiveGuaranteesStayWithinCapacity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 11);
  const auto tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  vc::IdcConfig cfg;
  cfg.mode = vc::SignalingMode::kImmediate;
  vc::Idc idc(sim, tb.topo, cfg);

  const net::NodeId hosts[] = {tb.ncar, tb.nics, tb.slac, tb.bnl, tb.nersc, tb.ornl,
                               tb.anl};
  struct Booked {
    net::Path path;
    Seconds start, end;
    BitsPerSecond bw;
  };
  std::vector<Booked> accepted;

  for (int i = 0; i < 120; ++i) {
    vc::ReservationRequest req;
    req.src = hosts[rng.uniform_int(0, 6)];
    do {
      req.dst = hosts[rng.uniform_int(0, 6)];
    } while (req.dst == req.src);
    req.bandwidth = gbps(rng.uniform(0.5, 9.0));
    req.start_time = rng.uniform(0.0, 5000.0);
    req.end_time = req.start_time + rng.uniform(60.0, 2000.0);
    const auto result = idc.create_reservation(req);
    if (result.accepted()) {
      const auto& c = idc.circuit(*result.circuit_id);
      accepted.push_back(Booked{c.path, req.start_time, req.end_time, req.bandwidth});
    }
  }
  ASSERT_FALSE(accepted.empty());

  // Sample instants: at every reservation boundary, the sum of admitted
  // bandwidth per link stays within capacity.
  std::vector<Seconds> instants;
  for (const auto& b : accepted) {
    instants.push_back(b.start + 1e-6);
    instants.push_back(b.end - 1e-6);
  }
  for (Seconds t : instants) {
    std::map<net::LinkId, double> load;
    for (const auto& b : accepted) {
      if (t < b.start || t >= b.end) continue;
      for (net::LinkId l : b.path) load[l] += b.bw;
    }
    for (const auto& [link, bw] : load) {
      ASSERT_LE(bw, tb.topo.link(link).capacity + 1.0)
          << "link " << tb.topo.link(link).name << " oversubscribed at t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IdcAdmissionProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Synthesizer + grouping: structural invariants across seeds.
// ---------------------------------------------------------------------------

class SynthProperty : public ::testing::TestWithParam<int> {};

TEST_P(SynthProperty, LogAndSessionInvariants) {
  auto profile = workload::slac_bnl_profile(0.003);
  const auto log =
      workload::synthesize_trace(profile, static_cast<std::uint64_t>(GetParam()));
  ASSERT_EQ(log.size(), profile.target_transfers);

  Bytes total_bytes = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    ASSERT_GT(log[i].size, 0u);
    ASSERT_GT(log[i].duration, 0.0);
    ASSERT_LE(log[i].duration, profile.max_transfer_duration + 1.0);
    if (i > 0) ASSERT_LE(log[i - 1].start_time, log[i].start_time);
    total_bytes += log[i].size;
    // Throughput never exceeds the profile's hard share cap.
    ASSERT_LE(log[i].throughput(), mbps(profile.share_cap_mbps) * 1.001);
  }

  // Sessions partition the log at every g.
  for (double g : {0.0, 60.0, 120.0}) {
    const auto sessions = analysis::group_sessions(log, {.gap = g});
    std::size_t transfers = 0;
    Bytes bytes = 0;
    for (const auto& s : sessions) {
      transfers += s.transfer_count();
      bytes += s.total_bytes;
    }
    ASSERT_EQ(transfers, log.size());
    ASSERT_EQ(bytes, total_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Transfer engine: accounting closes under random load with failures.
// ---------------------------------------------------------------------------

class EngineProperty : public ::testing::TestWithParam<int> {};

TEST_P(EngineProperty, AccountingClosesUnderRandomLoad) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  sim::Simulator sim;
  net::Topology topo;
  const auto a = topo.add_node("a", net::NodeKind::kHost);
  const auto b = topo.add_node("b", net::NodeKind::kHost);
  const auto ab = topo.add_link(a, b, gbps(10), 0.002);
  net::Network network(sim, topo);
  gridftp::ServerConfig sc;
  sc.name = "src";
  sc.nic_rate = gbps(6);
  gridftp::Server src(sc);
  sc.name = "dst";
  gridftp::Server dst(sc);
  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig cfg;
  cfg.server_noise_sigma = rng.uniform(0.0, 0.4);
  cfg.failure_probability = rng.uniform(0.0, 0.6);
  cfg.tcp.loss_probability = rng.uniform(0.0, 0.05);
  gridftp::TransferEngine engine(network, collector, cfg, rng.fork(1));

  const int n = 30;
  double offered = 0.0;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(3.0);
    sim.schedule_at(t, [&] {
      gridftp::TransferSpec spec;
      spec.src = {&src, gridftp::IoMode::kMemory};
      spec.dst = {&dst, gridftp::IoMode::kMemory};
      spec.path = {ab};
      spec.rtt = 0.02;
      spec.size = static_cast<Bytes>(rng.uniform(1e7, 2e9));
      spec.streams = static_cast<int>(rng.uniform_int(1, 8));
      spec.stripes = static_cast<int>(rng.uniform_int(1, 3));
      spec.remote_host = "b";
      offered += static_cast<double>(spec.size);
      engine.submit(spec);
    });
  }
  sim.run();

  EXPECT_EQ(collector.received(), static_cast<std::size_t>(n));
  EXPECT_EQ(engine.stats().completed, static_cast<std::uint64_t>(n));
  EXPECT_GE(engine.stats().attempts, engine.stats().completed);
  EXPECT_EQ(engine.stats().attempts - engine.stats().failures,
            engine.stats().completed);
  EXPECT_EQ(engine.active_transfers(), 0u);
  EXPECT_EQ(src.concurrency(), 0u);
  EXPECT_EQ(dst.concurrency(), 0u);
  // Every offered byte crossed the link exactly once (restart markers
  // resume, never re-send); stripe rounding adds at most a few bytes per
  // attempt.
  EXPECT_NEAR(network.link_bytes(ab) / offered, 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Random, EngineProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace gridvc
