#include "analysis/rate_advisor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gridvc::analysis {
namespace {

using gridftp::TransferLog;
using gridftp::TransferRecord;

TransferRecord transfer(Bytes size, double tput_mbps, int streams = 8, int stripes = 1) {
  TransferRecord r;
  r.size = size;
  r.duration = static_cast<double>(size) * 8.0 / mbps(tput_mbps);
  r.streams = streams;
  r.stripes = stripes;
  return r;
}

// History: 8-stream 1 GiB-class transfers at 100..300 Mbps, plus a
// distinct 1-stream population at 20..40 Mbps.
TransferLog history() {
  TransferLog log;
  gridvc::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    log.push_back(transfer(GiB + static_cast<Bytes>(i) * MiB, rng.uniform(100.0, 300.0)));
  }
  for (int i = 0; i < 100; ++i) {
    log.push_back(transfer(GiB, rng.uniform(20.0, 40.0), 1));
  }
  return log;
}

TEST(RateAdvisor, MatchesConfigurationClass) {
  const auto log = history();
  RateAdvisor advisor(log);
  AdviceRequest req;
  req.size = GiB;
  req.streams = 8;
  const auto advice = advisor.advise(req);
  ASSERT_TRUE(advice.has_value());
  EXPECT_FALSE(advice->fallback);
  EXPECT_GE(advice->sample_size, 190u);
  // Rate: the 75th percentile of U(100, 300) is ~250 Mbps.
  EXPECT_NEAR(to_mbps(advice->rate), 250.0, 25.0);
  // Duration covers a 10th-percentile (~120 Mbps) realization.
  const double implied_mbps = to_megabytes(req.size) * 8.0 * 1.048576 / advice->duration;
  EXPECT_NEAR(implied_mbps, 120.0, 20.0);
}

TEST(RateAdvisor, OneStreamClassIsAdvisedFromItsOwnHistory) {
  const auto log = history();
  RateAdvisor advisor(log);
  AdviceRequest req;
  req.size = GiB;
  req.streams = 1;
  const auto advice = advisor.advise(req);
  ASSERT_TRUE(advice.has_value());
  EXPECT_FALSE(advice->fallback);
  EXPECT_LT(to_mbps(advice->rate), 45.0);
}

TEST(RateAdvisor, FallsBackWhenConfigurationUnseen) {
  const auto log = history();
  RateAdvisor advisor(log);
  AdviceRequest req;
  req.size = GiB;
  req.streams = 4;  // never logged
  const auto advice = advisor.advise(req);
  ASSERT_TRUE(advice.has_value());
  EXPECT_TRUE(advice->fallback);
  EXPECT_GT(advice->sample_size, 200u);  // pooled across configurations
}

TEST(RateAdvisor, SizeBandFiltersDistantSizes) {
  TransferLog log;
  gridvc::Rng rng(7);
  // Small files are slow, big files fast; the advisor must not mix them.
  for (int i = 0; i < 50; ++i) log.push_back(transfer(MiB, rng.uniform(5.0, 15.0)));
  for (int i = 0; i < 50; ++i) {
    log.push_back(transfer(10 * GiB, rng.uniform(900.0, 1100.0)));
  }
  RateAdvisor advisor(log);
  AdviceRequest big;
  big.size = 10 * GiB;
  big.streams = 8;
  const auto advice = advisor.advise(big);
  ASSERT_TRUE(advice.has_value());
  EXPECT_GT(to_mbps(advice->rate), 800.0);
}

TEST(RateAdvisor, HigherConfidenceMeansLongerDuration) {
  const auto log = history();
  RateAdvisor advisor(log);
  AdviceRequest req;
  req.size = GiB;
  req.streams = 8;
  req.confidence = 0.5;
  const auto mid = advisor.advise(req);
  req.confidence = 0.99;
  const auto safe = advisor.advise(req);
  ASSERT_TRUE(mid && safe);
  EXPECT_GT(safe->duration, mid->duration);
  EXPECT_DOUBLE_EQ(safe->rate, mid->rate);  // rate policy independent of confidence
}

TEST(RateAdvisor, AdvisedDurationCoversConfidenceFractionOfHistory) {
  // Backtest on the history itself: the fraction of matched transfers
  // that would finish within the advised duration ~ confidence.
  const auto log = history();
  RateAdvisor advisor(log);
  AdviceRequest req;
  req.size = GiB;
  req.streams = 8;
  req.confidence = 0.9;
  const auto advice = advisor.advise(req);
  ASSERT_TRUE(advice.has_value());
  std::size_t within = 0, total = 0;
  for (const auto& r : log) {
    if (r.streams != 8) continue;
    ++total;
    const Seconds would_take =
        static_cast<double>(req.size) * 8.0 / r.throughput();
    if (would_take <= advice->duration) ++within;
  }
  EXPECT_NEAR(static_cast<double>(within) / static_cast<double>(total), 0.9, 0.05);
}

TEST(RateAdvisor, Preconditions) {
  const auto log = history();
  EXPECT_THROW(RateAdvisor(TransferLog{}), gridvc::PreconditionError);
  RateAdvisor advisor(log);
  AdviceRequest bad;
  bad.size = 0;
  EXPECT_THROW(advisor.advise(bad), gridvc::PreconditionError);
  AdviceRequest conf;
  conf.size = GiB;
  conf.confidence = 1.0;
  EXPECT_THROW(advisor.advise(conf), gridvc::PreconditionError);
  RateAdvisorConfig bad_cfg;
  bad_cfg.size_band = 1.0;
  EXPECT_THROW(RateAdvisor(log, bad_cfg), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::analysis
