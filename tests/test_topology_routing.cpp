#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace gridvc::net {
namespace {

Topology line3() {
  // a -- b -- c, duplex 10G, 1 ms per hop.
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kHost);
  const NodeId b = t.add_node("b", NodeKind::kRouter);
  const NodeId c = t.add_node("c", NodeKind::kHost);
  t.add_duplex_link(a, b, gbps(10), 0.001);
  t.add_duplex_link(b, c, gbps(10), 0.001);
  return t;
}

TEST(Topology, NodeAndLinkAccessors) {
  Topology t = line3();
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.link_count(), 4u);
  EXPECT_EQ(t.node(0).name, "a");
  EXPECT_EQ(t.link(0).name, "a->b");
  EXPECT_EQ(t.find_node("b"), std::optional<NodeId>(1));
  EXPECT_FALSE(t.find_node("zzz").has_value());
}

TEST(Topology, DuplicateNameThrows) {
  Topology t;
  t.add_node("x", NodeKind::kHost);
  EXPECT_THROW(t.add_node("x", NodeKind::kRouter), gridvc::PreconditionError);
}

TEST(Topology, InvalidLinksThrow) {
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kHost);
  const NodeId b = t.add_node("b", NodeKind::kHost);
  EXPECT_THROW(t.add_link(a, a, gbps(1), 0.0), gridvc::PreconditionError);
  EXPECT_THROW(t.add_link(a, b, 0.0, 0.0), gridvc::PreconditionError);
  EXPECT_THROW(t.add_link(a, b, gbps(1), -1.0), gridvc::PreconditionError);
  EXPECT_THROW(t.add_link(a, 99, gbps(1), 0.0), gridvc::PreconditionError);
}

TEST(Topology, PathHelpers) {
  Topology t = line3();
  const Path p{0, 2};  // a->b, b->c
  EXPECT_DOUBLE_EQ(t.path_delay(p), 0.002);
  EXPECT_DOUBLE_EQ(t.path_capacity(p), gbps(10));
  EXPECT_TRUE(t.is_valid_path(p, 0, 2));
  EXPECT_FALSE(t.is_valid_path(p, 2, 0));
  EXPECT_FALSE(t.is_valid_path(Path{2, 0}, 0, 2));  // disconnected chain
}

TEST(Topology, OutgoingLists) {
  Topology t = line3();
  EXPECT_EQ(t.outgoing(0).size(), 1u);  // a->b
  EXPECT_EQ(t.outgoing(1).size(), 2u);  // b->a, b->c
}

TEST(Routing, FindsDirectPath) {
  Topology t = line3();
  const auto p = shortest_path(t, 0, 2);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->size(), 2u);
  EXPECT_TRUE(t.is_valid_path(*p, 0, 2));
}

TEST(Routing, SelfPathIsEmpty) {
  Topology t = line3();
  const auto p = shortest_path(t, 1, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(Routing, UnreachableReturnsNullopt) {
  Topology t;
  t.add_node("a", NodeKind::kHost);
  t.add_node("b", NodeKind::kHost);
  EXPECT_FALSE(shortest_path(t, 0, 1).has_value());
}

TEST(Routing, PrefersLowerDelay) {
  // a->b direct (10 ms) vs a->c->b (2 ms total).
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kHost);
  const NodeId b = t.add_node("b", NodeKind::kHost);
  const NodeId c = t.add_node("c", NodeKind::kRouter);
  t.add_link(a, b, gbps(10), 0.010);
  const LinkId ac = t.add_link(a, c, gbps(10), 0.001);
  const LinkId cb = t.add_link(c, b, gbps(10), 0.001);
  const auto p = shortest_path(t, a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{ac, cb}));
}

TEST(Routing, FilterExcludesLinks) {
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kHost);
  const NodeId b = t.add_node("b", NodeKind::kHost);
  const NodeId c = t.add_node("c", NodeKind::kRouter);
  const LinkId direct = t.add_link(a, b, gbps(10), 0.001);
  t.add_link(a, c, gbps(10), 0.005);
  t.add_link(c, b, gbps(10), 0.005);
  const auto p = shortest_path(t, a, b, [&](LinkId l) { return l != direct; });
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 2u);
}

TEST(Routing, FilterCanDisconnect) {
  Topology t = line3();
  const auto p = shortest_path(t, 0, 2, [](LinkId) { return false; });
  EXPECT_FALSE(p.has_value());
}

TEST(Routing, MinHopIgnoresDelay) {
  // Direct high-delay hop vs two fast hops: min-hop picks the direct one.
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kHost);
  const NodeId b = t.add_node("b", NodeKind::kHost);
  const NodeId c = t.add_node("c", NodeKind::kRouter);
  const LinkId direct = t.add_link(a, b, gbps(10), 0.500);
  t.add_link(a, c, gbps(10), 0.001);
  t.add_link(c, b, gbps(10), 0.001);
  const auto p = min_hop_path(t, a, b);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{direct}));
}

TEST(Routing, DeterministicOnEqualCost) {
  // Two parallel equal-delay links a->b: the smaller link id wins.
  Topology t;
  const NodeId a = t.add_node("a", NodeKind::kHost);
  const NodeId b = t.add_node("b", NodeKind::kHost);
  const LinkId l0 = t.add_link(a, b, gbps(10), 0.001);
  t.add_link(a, b, gbps(10), 0.001);
  for (int i = 0; i < 5; ++i) {
    const auto p = shortest_path(t, a, b);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->front(), l0);
  }
}

}  // namespace
}  // namespace gridvc::net
