#include "vc/idc.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"

namespace gridvc::vc {
namespace {

using net::NodeId;
using net::NodeKind;
using net::Topology;

struct Fixture {
  sim::Simulator sim;
  Topology topo;
  NodeId a, b, c;

  Fixture() {
    a = topo.add_node("a", NodeKind::kHost, "left");
    const NodeId r1 = topo.add_node("r1", NodeKind::kRouter, "core");
    const NodeId r2 = topo.add_node("r2", NodeKind::kRouter, "core");
    b = topo.add_node("b", NodeKind::kHost, "right");
    c = topo.add_node("c", NodeKind::kHost, "right");
    topo.add_duplex_link(a, r1, gbps(10), 0.001);
    topo.add_duplex_link(r1, r2, gbps(10), 0.010);
    topo.add_duplex_link(r2, b, gbps(10), 0.001);
    topo.add_duplex_link(r2, c, gbps(10), 0.001);
  }

  ReservationRequest request(Seconds start, Seconds end, BitsPerSecond bw = gbps(2)) {
    ReservationRequest r;
    r.src = a;
    r.dst = b;
    r.bandwidth = bw;
    r.start_time = start;
    r.end_time = end;
    return r;
  }
};

TEST(Idc, AdvanceReservationActivatesAtStartTime) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  Seconds activated = -1.0;
  const auto result = idc.create_reservation(
      f.request(500.0, 900.0), [&](const Circuit& c) { activated = c.active_at; });
  ASSERT_TRUE(result.accepted());
  f.sim.run();
  EXPECT_DOUBLE_EQ(activated, 500.0);
  EXPECT_EQ(idc.circuit(*result.circuit_id).state, CircuitState::kReleased);
}

TEST(Idc, BatchedImmediateHasAtLeastOneMinuteSetup) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kBatchedAutomatic;
  cfg.batch_interval = 60.0;
  Idc idc(f.sim, f.topo, cfg);
  // Submit at t=10 for immediate use: earliest batch boundary at least
  // one full interval later is t=120.
  f.sim.schedule_at(10.0, [&] {
    const auto r = idc.request_immediate(f.a, f.b, gbps(1), 300.0);
    ASSERT_TRUE(r.accepted());
  });
  f.sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(idc.predicted_activation(10.0, 10.0), 120.0);
  EXPECT_GE(idc.predicted_activation(10.0, 10.0) - 10.0, 60.0);
}

TEST(Idc, BatchedSetupDelayBounds) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kBatchedAutomatic;
  Idc idc(f.sim, f.topo, cfg);
  // For any submit time, the immediate-use delay lies in [60, 120).
  for (double t : {0.0, 1.0, 59.9, 60.0, 61.0, 119.0, 3601.5}) {
    const double delay = idc.predicted_activation(t, t) - t;
    EXPECT_GE(delay, 60.0 - 1e-9) << "submit at " << t;
    EXPECT_LT(delay, 120.0) << "submit at " << t;
  }
}

TEST(Idc, ImmediateSignalingUses50ms) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  cfg.immediate_setup_delay = 0.05;
  Idc idc(f.sim, f.topo, cfg);
  Seconds activated = -1.0;
  const auto r = idc.request_immediate(f.a, f.b, gbps(1), 100.0,
                                       [&](const Circuit& c) { activated = c.active_at; });
  ASSERT_TRUE(r.accepted());
  f.sim.run();
  EXPECT_DOUBLE_EQ(activated, 0.05);
}

TEST(Idc, ReleasesAtEndTime) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  Seconds released = -1.0;
  idc.create_reservation(f.request(10.0, 50.0), nullptr,
                         [&](const Circuit& c) { released = c.released_at; });
  f.sim.run();
  EXPECT_DOUBLE_EQ(released, 50.0);
}

TEST(Idc, RejectsWhenBandwidthExhausted) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  const auto first = idc.create_reservation(f.request(100.0, 200.0, gbps(7)));
  ASSERT_TRUE(first.accepted());
  const auto second = idc.create_reservation(f.request(150.0, 250.0, gbps(7)));
  EXPECT_FALSE(second.accepted());
  EXPECT_EQ(second.reason, RejectReason::kInsufficientBandwidth);
  // Disjoint window is fine.
  const auto third = idc.create_reservation(f.request(200.0, 300.0, gbps(7)));
  EXPECT_TRUE(third.accepted());
}

TEST(Idc, RejectsDisconnectedEndpoints) {
  Fixture f;
  const NodeId island = f.topo.add_node("island", NodeKind::kHost, "x");
  Idc idc(f.sim, f.topo);
  ReservationRequest r = f.request(0.0, 100.0);
  r.dst = island;
  const auto result = idc.create_reservation(r);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.reason, RejectReason::kNoRoute);
}

TEST(Idc, RejectsInvalidRequests) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  EXPECT_EQ(idc.create_reservation(f.request(100.0, 100.0)).reason,
            RejectReason::kInvalidRequest);
  EXPECT_EQ(idc.create_reservation(f.request(0.0, 100.0, 0.0)).reason,
            RejectReason::kInvalidRequest);
  ReservationRequest same = f.request(0.0, 100.0);
  same.dst = same.src;
  EXPECT_EQ(idc.create_reservation(same).reason, RejectReason::kInvalidRequest);
}

TEST(Idc, RejectsWindowShorterThanSetup) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kBatchedAutomatic;
  Idc idc(f.sim, f.topo, cfg);
  // Wants the circuit to end before the batch boundary could set it up.
  EXPECT_EQ(idc.create_reservation(f.request(0.0, 30.0)).reason,
            RejectReason::kInvalidRequest);
}

TEST(Idc, CancelBeforeActivationFreesBandwidth) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  const auto r = idc.create_reservation(f.request(100.0, 200.0, gbps(8)));
  ASSERT_TRUE(r.accepted());
  idc.cancel(*r.circuit_id);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kCancelled);
  EXPECT_TRUE(idc.create_reservation(f.request(100.0, 200.0, gbps(8))).accepted());
}

TEST(Idc, CancelAfterActivationThrows) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  const auto r = idc.create_reservation(f.request(1.0, 500.0));
  f.sim.run_until(10.0);
  EXPECT_THROW(idc.cancel(*r.circuit_id), gridvc::PreconditionError);
}

TEST(Idc, ReleaseNowFreesTailForOthers) {
  Fixture f;
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  Idc idc(f.sim, f.topo, cfg);
  const auto r = idc.create_reservation(f.request(1.0, 1000.0, gbps(8)));
  ASSERT_TRUE(r.accepted());
  f.sim.run_until(100.0);
  idc.release_now(*r.circuit_id);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kReleased);
  EXPECT_TRUE(idc.create_reservation(f.request(200.0, 400.0, gbps(8))).accepted());
}

TEST(Idc, StatsTrackOutcomes) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  idc.create_reservation(f.request(100.0, 200.0, gbps(7)));
  idc.create_reservation(f.request(100.0, 200.0, gbps(7)));  // rejected
  idc.create_reservation(f.request(0.0, 0.0));               // invalid
  const auto& s = idc.stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.rejected_no_bandwidth, 1u);
  EXPECT_EQ(s.rejected_invalid, 1u);
  EXPECT_NEAR(s.blocking_probability(), 1.0 / 3.0, 1e-12);
}

TEST(Idc, PathAvoidsCongestedLink) {
  // Two disjoint routes a->b; fill one with a reservation and verify the
  // next circuit takes the other.
  sim::Simulator sim;
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kHost);
  const NodeId r1 = topo.add_node("r1", NodeKind::kRouter);
  const NodeId r2 = topo.add_node("r2", NodeKind::kRouter);
  const NodeId b = topo.add_node("b", NodeKind::kHost);
  topo.add_duplex_link(a, r1, gbps(10), 0.001);
  topo.add_duplex_link(a, r2, gbps(10), 0.002);
  topo.add_duplex_link(r1, b, gbps(10), 0.001);
  topo.add_duplex_link(r2, b, gbps(10), 0.002);
  Idc idc(sim, topo);

  ReservationRequest req;
  req.src = a;
  req.dst = b;
  req.bandwidth = gbps(6);
  req.start_time = 100.0;
  req.end_time = 200.0;
  const auto first = idc.create_reservation(req);
  ASSERT_TRUE(first.accepted());
  const auto second = idc.create_reservation(req);
  ASSERT_TRUE(second.accepted());
  // Paths must be link-disjoint (each route has only 4 Gbps left).
  const auto& p1 = idc.circuit(*first.circuit_id).path;
  const auto& p2 = idc.circuit(*second.circuit_id).path;
  for (net::LinkId l1 : p1) {
    for (net::LinkId l2 : p2) EXPECT_NE(l1, l2);
  }
}

// Regression: a rejected demand that is retried and rejected again must
// count as ONE blocked demand, not two. The retry's rejection lands in
// rejected_retries only; per-reason counters and blocking_probability()
// are unchanged by it.
TEST(Idc, RetriedRejectionDoesNotDoubleCountBlocking) {
  Fixture f;
  Idc idc(f.sim, f.topo);
  // Saturate the a->b window, then ask for more than the headroom.
  ASSERT_TRUE(idc.create_reservation(f.request(0.0, 1000.0, gbps(9))).accepted());
  auto demand = f.request(0.0, 1000.0, gbps(5));
  const auto first = idc.create_reservation(demand);
  ASSERT_FALSE(first.accepted());
  EXPECT_EQ(first.reason, RejectReason::kInsufficientBandwidth);
  EXPECT_EQ(idc.stats().rejected_no_bandwidth, 1u);
  EXPECT_EQ(idc.stats().rejected_retries, 0u);
  const double blocking_after_first = idc.stats().blocking_probability();

  // Retry the same demand (still too big): the true reason is still
  // reported to the caller, but the blocked-demand accounting is frozen.
  demand.is_retry = true;
  const auto second = idc.create_reservation(demand);
  ASSERT_FALSE(second.accepted());
  EXPECT_EQ(second.reason, RejectReason::kInsufficientBandwidth);
  EXPECT_EQ(idc.stats().rejected_no_bandwidth, 1u);
  EXPECT_EQ(idc.stats().rejected_retries, 1u);
  EXPECT_DOUBLE_EQ(idc.stats().blocking_probability(), blocking_after_first);

  // A successful retry at a feasible rate counts as an accept as usual.
  demand.bandwidth = gbps(1);
  const auto third = idc.create_reservation(demand);
  ASSERT_TRUE(third.accepted());
  EXPECT_EQ(idc.stats().accepted, 2u);
  EXPECT_EQ(idc.stats().rejected_retries, 1u);
}

}  // namespace
}  // namespace gridvc::vc
