#include "analysis/vc_feasibility.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gridvc::analysis {
namespace {

using gridftp::TransferLog;
using gridftp::TransferRecord;

TransferRecord make(double start, Bytes size, double throughput_mbps) {
  TransferRecord r;
  r.size = size;
  r.start_time = start;
  r.duration = static_cast<double>(size) * 8.0 / mbps(throughput_mbps);
  r.server_host = "srv";
  r.remote_host = "remote";
  return r;
}

// A log whose transfer throughputs are exactly 100..400 Mbps so Q3 is
// known: quantile(c(100,200,300,400), .75) = 325 Mbps.
TransferLog known_log() {
  return TransferLog{make(0, GiB, 100), make(5000, GiB, 200), make(10000, GiB, 300),
                     make(15000, GiB, 400)};
}

TEST(VcFeasibility, ReferenceThroughputIsQ3) {
  const auto log = known_log();
  const auto sessions = group_sessions(log, {.gap = 60.0});
  const auto r = analyze_vc_feasibility(sessions, log, {.setup_delay = 60.0});
  EXPECT_NEAR(to_mbps(r.reference_throughput), 325.0, 1e-6);
}

TEST(VcFeasibility, MinSuitableSizeMatchesFormula) {
  const auto log = known_log();
  const auto sessions = group_sessions(log, {.gap = 60.0});
  FeasibilityOptions opt;
  opt.setup_delay = 60.0;
  opt.overhead_fraction = 0.1;
  const auto r = analyze_vc_feasibility(sessions, log, opt);
  // Session must last >= 600 s at 325 Mbps -> >= 24.375 GB.
  EXPECT_NEAR(static_cast<double>(r.min_suitable_size), 600.0 * mbps(325) / 8.0, 2.0);
}

TEST(VcFeasibility, CountsSuitableSessionsAndTransfers) {
  // Two sessions: one tiny (1 MiB), one huge (100 GiB, 3 transfers).
  TransferLog log;
  log.push_back(make(0, MiB, 100));
  log.push_back(make(100000, 40 * GiB, 200));
  log.push_back(make(100100 + log.back().duration, 40 * GiB, 300));
  log.back().start_time = log[1].end_time() + 1;
  log.push_back(make(log.back().end_time() + 1, 20 * GiB, 400));
  const auto sessions = group_sessions(log, {.gap = 60.0});
  ASSERT_EQ(sessions.size(), 2u);
  const auto r = analyze_vc_feasibility(sessions, log, {.setup_delay = 60.0});
  EXPECT_EQ(r.total_sessions, 2u);
  EXPECT_EQ(r.suitable_sessions, 1u);
  EXPECT_EQ(r.total_transfers, 4u);
  EXPECT_EQ(r.suitable_transfers, 3u);
  EXPECT_NEAR(r.session_fraction(), 0.5, 1e-12);
  EXPECT_NEAR(r.transfer_fraction(), 0.75, 1e-12);
}

TEST(VcFeasibility, LowerSetupDelayAdmitsMoreSessions) {
  // Sessions spanning a range of sizes; 50 ms setup must admit at least
  // as many as 60 s setup.
  TransferLog log;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    log.push_back(make(t, static_cast<Bytes>(MiB) << i, 200));
    t += 1e6;
  }
  const auto sessions = group_sessions(log, {.gap = 60.0});
  const auto slow = analyze_vc_feasibility(sessions, log, {.setup_delay = 60.0});
  const auto fast = analyze_vc_feasibility(sessions, log, {.setup_delay = 0.05});
  EXPECT_GE(fast.suitable_sessions, slow.suitable_sessions);
  EXPECT_GT(fast.suitable_sessions, 0u);
  EXPECT_LT(slow.min_suitable_size * 1, fast.min_suitable_size * 1200 + 1);
}

TEST(VcFeasibility, ZeroSetupDelayAdmitsEverything) {
  const auto log = known_log();
  const auto sessions = group_sessions(log, {.gap = 60.0});
  const auto r = analyze_vc_feasibility(sessions, log, {.setup_delay = 0.0});
  EXPECT_EQ(r.suitable_sessions, r.total_sessions);
  EXPECT_NEAR(r.transfer_fraction(), 1.0, 1e-12);
}

TEST(VcFeasibility, InvalidOptionsThrow) {
  const auto log = known_log();
  const auto sessions = group_sessions(log, {.gap = 60.0});
  FeasibilityOptions bad;
  bad.overhead_fraction = 0.0;
  EXPECT_THROW(analyze_vc_feasibility(sessions, log, bad), gridvc::PreconditionError);
  FeasibilityOptions neg;
  neg.setup_delay = -1.0;
  EXPECT_THROW(analyze_vc_feasibility(sessions, log, neg), gridvc::PreconditionError);
  EXPECT_THROW(analyze_vc_feasibility(sessions, {}, {}), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::analysis
