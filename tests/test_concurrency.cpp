#include "analysis/concurrency.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gridvc::analysis {
namespace {

using gridftp::TransferLog;
using gridftp::TransferRecord;

TransferRecord transfer(double start, double duration, double throughput_mbps = 100.0) {
  TransferRecord r;
  r.start_time = start;
  r.duration = duration;
  r.size = static_cast<Bytes>(mbps(throughput_mbps) * duration / 8.0);
  return r;
}

TEST(ConcurrencyTimeline, LoneTransferIsOneInterval) {
  TransferLog log{transfer(0, 10)};
  const auto t = concurrency_timeline(log, 0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_DOUBLE_EQ(t[0].duration, 10.0);
  EXPECT_EQ(t[0].concurrent, 1u);
}

TEST(ConcurrencyTimeline, OverlapSplitsIntervals) {
  // Target [0, 10); other [4, 8): intervals [0,4) x1, [4,8) x2, [8,10) x1.
  TransferLog log{transfer(0, 10), transfer(4, 4)};
  const auto t = concurrency_timeline(log, 0);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0].duration, 4.0);
  EXPECT_EQ(t[0].concurrent, 1u);
  EXPECT_DOUBLE_EQ(t[1].duration, 4.0);
  EXPECT_EQ(t[1].concurrent, 2u);
  EXPECT_DOUBLE_EQ(t[2].duration, 2.0);
  EXPECT_EQ(t[2].concurrent, 1u);
}

TEST(ConcurrencyTimeline, DurationsSumToTargetDuration) {
  gridvc::Rng rng(9);
  TransferLog log;
  log.push_back(transfer(100, 50));
  for (int i = 0; i < 30; ++i) {
    log.push_back(transfer(rng.uniform(0.0, 200.0), rng.uniform(1.0, 60.0)));
  }
  const auto t = concurrency_timeline(log, 0);
  double total = 0.0;
  for (const auto& iv : t) {
    total += iv.duration;
    EXPECT_GE(iv.concurrent, 1u);  // target itself always counted
  }
  EXPECT_NEAR(total, 50.0, 1e-9);
}

TEST(ConcurrencyTimeline, ThroughputSumsIncludeAllConcurrent) {
  TransferLog log{transfer(0, 10, 100), transfer(0, 10, 300)};
  const auto t = concurrency_timeline(log, 0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_NEAR(to_mbps(t[0].concurrent_throughput_sum), 400.0, 0.01);
}

TEST(ConcurrencyTimeline, BadIndexThrows) {
  TransferLog log{transfer(0, 10)};
  EXPECT_THROW(concurrency_timeline(log, 5), gridvc::PreconditionError);
}

TEST(PredictThroughput, LoneTransferPredictsR) {
  TransferLog log{transfer(0, 10, 100)};
  ConcurrencyOptions opt;
  opt.fixed_r = mbps(500);
  const auto p = predict_throughput(log, {0}, opt);
  ASSERT_EQ(p.predicted.size(), 1u);
  // No competition: prediction = R.
  EXPECT_NEAR(to_mbps(p.predicted[0]), 500.0, 1e-6);
}

TEST(PredictThroughput, CompetitionLowersPrediction) {
  // Target [0,10) overlapped for half its life by a 200 Mbps transfer.
  TransferLog log{transfer(0, 10, 100), transfer(5, 5, 200)};
  ConcurrencyOptions opt;
  opt.fixed_r = mbps(500);
  const auto p = predict_throughput(log, {0}, opt);
  // First half: 500; second half: 500-200=300 -> average 400.
  EXPECT_NEAR(to_mbps(p.predicted[0]), 400.0, 1e-6);
}

TEST(PredictThroughput, ResidualClampedAtZero) {
  TransferLog log{transfer(0, 10, 100), transfer(0, 10, 900)};
  ConcurrencyOptions opt;
  opt.fixed_r = mbps(500);
  const auto p = predict_throughput(log, {0}, opt);
  EXPECT_DOUBLE_EQ(p.predicted[0], 0.0);
}

TEST(PredictThroughput, DefaultRUsesQuantile) {
  TransferLog log;
  for (int i = 0; i < 10; ++i) {
    log.push_back(transfer(i * 1000.0, 10, 100.0 + 10.0 * i));
  }
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < log.size(); ++i) targets.push_back(i);
  const auto p = predict_throughput(log, targets, {.r_quantile = 0.90});
  // R = 90th percentile of 100..190 = 181 Mbps.
  EXPECT_NEAR(to_mbps(p.r), 181.0, 0.01);
}

TEST(PredictThroughput, PositiveCorrelationWhenContentionDrivesActuals) {
  // Construct a log where actual throughput is exactly the residual
  // capacity: prediction should correlate strongly.
  TransferLog log;
  gridvc::Rng rng(11);
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    const bool contended = rng.bernoulli(0.5);
    const double actual = contended ? 100.0 : 400.0;
    log.push_back(transfer(t, 10, actual));
    if (contended) {
      log.push_back(transfer(t, 10, 300.0));  // competitor eats 300
    }
    t += 100.0;
  }
  std::vector<std::size_t> targets;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (to_mbps(log[i].throughput()) == 100.0 || to_mbps(log[i].throughput()) == 400.0) {
      targets.push_back(i);
    }
  }
  ConcurrencyOptions opt;
  opt.fixed_r = mbps(400);
  const auto p = predict_throughput(log, targets, opt);
  EXPECT_GT(p.rho, 0.95);
  EXPECT_EQ(p.rho_by_quartile.size(), 4u);
}

TEST(PredictThroughput, EmptyTargetsThrow) {
  TransferLog log{transfer(0, 10)};
  EXPECT_THROW(predict_throughput(log, {}, {}), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::analysis
