#include "vc/bandwidth_calendar.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gridvc::vc {
namespace {

using net::LinkId;
using net::NodeId;
using net::NodeKind;
using net::Path;
using net::Topology;

TEST(BandwidthProfile, AddAndQuery) {
  BandwidthProfile p;
  p.add(10.0, 20.0, mbps(100));
  EXPECT_DOUBLE_EQ(p.at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(p.at(10.0), mbps(100));
  EXPECT_DOUBLE_EQ(p.at(19.9), mbps(100));
  EXPECT_DOUBLE_EQ(p.at(20.0), 0.0);
}

TEST(BandwidthProfile, PeakOverlap) {
  BandwidthProfile p;
  p.add(0.0, 100.0, mbps(100));
  p.add(50.0, 150.0, mbps(200));
  EXPECT_DOUBLE_EQ(p.peak(0.0, 50.0), mbps(100));
  EXPECT_DOUBLE_EQ(p.peak(0.0, 150.0), mbps(300));
  EXPECT_DOUBLE_EQ(p.peak(100.0, 150.0), mbps(200));
  EXPECT_DOUBLE_EQ(p.peak(200.0, 300.0), 0.0);
}

TEST(BandwidthProfile, PeakWindowEntirelyInsideOneBlock) {
  BandwidthProfile p;
  p.add(0.0, 100.0, mbps(500));
  EXPECT_DOUBLE_EQ(p.peak(40.0, 60.0), mbps(500));
}

TEST(BandwidthProfile, EntryLevelNotStale) {
  // A block that ends before the window must not leak into the peak.
  BandwidthProfile p;
  p.add(0.0, 10.0, mbps(900));
  p.add(20.0, 30.0, mbps(100));
  EXPECT_DOUBLE_EQ(p.peak(15.0, 40.0), mbps(100));
  EXPECT_DOUBLE_EQ(p.peak(12.0, 18.0), 0.0);
}

TEST(BandwidthProfile, RemoveRestores) {
  BandwidthProfile p;
  p.add(0.0, 10.0, mbps(100));
  p.remove(0.0, 10.0, mbps(100));
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.peak(0.0, 10.0), 0.0);
}

TEST(BandwidthProfile, InvalidWindowsThrow) {
  BandwidthProfile p;
  EXPECT_THROW(p.add(10.0, 10.0, 1.0), gridvc::PreconditionError);
  EXPECT_THROW(p.add(10.0, 5.0, 1.0), gridvc::PreconditionError);
  EXPECT_THROW(p.add(0.0, 1.0, 0.0), gridvc::PreconditionError);
}

struct CalFixture {
  Topology topo;
  LinkId ab, bc;
  CalFixture() {
    const NodeId a = topo.add_node("a", NodeKind::kHost);
    const NodeId b = topo.add_node("b", NodeKind::kRouter);
    const NodeId c = topo.add_node("c", NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(10), 0.001);
    bc = topo.add_link(b, c, gbps(10), 0.001);
  }
};

TEST(BandwidthCalendar, FullCapacityAvailableInitially) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 1000.0), gbps(10));
}

TEST(BandwidthCalendar, ReservableFractionCapsAvailability) {
  CalFixture f;
  BandwidthCalendar cal(f.topo, 0.5);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 1000.0), gbps(5));
}

TEST(BandwidthCalendar, BookReducesAvailabilityOnlyInWindow) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  cal.book({f.ab, f.bc}, 100.0, 200.0, gbps(4));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 100.0, 200.0), gbps(6));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 100.0), gbps(10));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 200.0, 300.0), gbps(10));
  EXPECT_DOUBLE_EQ(cal.available(f.bc, 150.0, 160.0), gbps(6));
}

TEST(BandwidthCalendar, FitsChecksWholePath) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  cal.book({f.bc}, 0.0, 100.0, gbps(8));
  EXPECT_TRUE(cal.fits({f.ab}, 0.0, 100.0, gbps(8)));
  EXPECT_FALSE(cal.fits({f.ab, f.bc}, 0.0, 100.0, gbps(8)));
  EXPECT_TRUE(cal.fits({f.ab, f.bc}, 0.0, 100.0, gbps(2)));
}

TEST(BandwidthCalendar, NonFittingBookThrows) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  cal.book({f.ab}, 0.0, 100.0, gbps(9));
  EXPECT_THROW(cal.book({f.ab}, 50.0, 80.0, gbps(2)), gridvc::PreconditionError);
}

TEST(BandwidthCalendar, ReleaseRestoresCapacity) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  const auto id = cal.book({f.ab}, 0.0, 100.0, gbps(9));
  cal.release(id);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 100.0), gbps(10));
  EXPECT_EQ(cal.active_bookings(), 0u);
  EXPECT_THROW(cal.release(id), gridvc::PreconditionError);
}

TEST(BandwidthCalendar, TruncateFreesTail) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  const auto id = cal.book({f.ab}, 0.0, 100.0, gbps(9));
  cal.truncate(id, 40.0);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 40.0), gbps(1));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 40.0, 100.0), gbps(10));
}

TEST(BandwidthCalendar, TruncateToStartReleases) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  const auto id = cal.book({f.ab}, 10.0, 100.0, gbps(9));
  cal.truncate(id, 10.0);
  EXPECT_EQ(cal.active_bookings(), 0u);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 10.0, 100.0), gbps(10));
}

TEST(BandwidthCalendar, BackToBackWindowsDoNotConflict) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  cal.book({f.ab}, 0.0, 100.0, gbps(10));
  EXPECT_TRUE(cal.fits({f.ab}, 100.0, 200.0, gbps(10)));
  cal.book({f.ab}, 100.0, 200.0, gbps(10));
}

// Boundary semantics: windows are [start, end), so reservations touching
// at an endpoint share the instant without double-counting.
TEST(BandwidthProfile, TouchingWindowsDoNotDoubleCount) {
  BandwidthProfile p;
  p.add(0.0, 50.0, mbps(600));
  p.add(50.0, 100.0, mbps(600));
  // At the shared endpoint exactly one block is in force.
  EXPECT_DOUBLE_EQ(p.at(50.0), mbps(600));
  EXPECT_DOUBLE_EQ(p.peak(0.0, 100.0), mbps(600));
  // A window straddling only the junction still sees a single block.
  EXPECT_DOUBLE_EQ(p.peak(49.0, 51.0), mbps(600));
}

TEST(BandwidthProfile, SubQuantumRatesQuantizeAndCancelExactly) {
  // Rates live on the integer-kbit/s fixed-point grid: a positive rate
  // below one quantum rounds up to 1 kbit/s (never to invisibility), and
  // remove() with the same argument quantizes identically, so balanced
  // add/remove pairs always cancel exactly — no epsilon tests anywhere.
  BandwidthProfile p;
  const double tiny = 2.5e-4;  // far below one kbit/s quantum
  p.add(0.0, 10.0, tiny);
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.at(5.0), 1000.0);  // one quantum
  p.add(0.0, 10.0, tiny);
  p.remove(0.0, 10.0, tiny);
  EXPECT_DOUBLE_EQ(p.at(5.0), 1000.0);
  p.remove(0.0, 10.0, tiny);
  EXPECT_TRUE(p.empty());
  // Above-quantum rates round to nearest kbit/s.
  p.add(0.0, 10.0, 1234567.89);
  EXPECT_DOUBLE_EQ(p.at(5.0), 1235000.0);
  p.remove(0.0, 10.0, 1234567.89);
  EXPECT_TRUE(p.empty());
}

TEST(BandwidthProfile, EmptyWindowPeakIsZero) {
  // [t, t) contains no instant, so nothing is reserved over it — even
  // when a block is in force at t itself.
  BandwidthProfile p;
  p.add(0.0, 100.0, mbps(500));
  EXPECT_DOUBLE_EQ(p.at(50.0), mbps(500));
  EXPECT_DOUBLE_EQ(p.peak(50.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(p.peak(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.peak(200.0, 200.0), 0.0);
}

TEST(BandwidthCalendar, EmptyWindowHasFullAvailabilityAndFits) {
  // available(l, t, t) must not under-report from the level in force at
  // t: an instantaneous window blocks nothing, so a zero-length probe
  // (e.g. a degenerate activation window) is never spuriously rejected.
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  cal.book({f.ab, f.bc}, 0.0, 100.0, gbps(7));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 50.0, 50.0), gbps(10));
  EXPECT_TRUE(cal.fits({f.ab, f.bc}, 50.0, 50.0, gbps(10)));
}

TEST(BandwidthProfile, FloatDustSharedTimestampCyclesLeaveNoResidue) {
  // Regression for the delta-map leak: overlapping bookings sharing a
  // timestamp (book r1, book r2, release r1, release r2) used to leave
  // near-zero float-dust entries that never erased, growing the map —
  // and every query sweep — without bound. Fixed-point deltas cancel
  // exactly, so a million cycles leave an empty tree and the live node
  // count stays bounded by the overlap depth throughout.
  BandwidthProfile p;
  const double r1 = 1234567.89;   // deliberately awkward in binary
  const double r2 = 987654.321;
  std::size_t max_nodes = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    p.add(0.0, 100.0, r1);
    p.add(0.0, 100.0, r2);   // shares both timestamps with r1
    p.remove(0.0, 100.0, r1);
    p.remove(0.0, 100.0, r2);
    max_nodes = std::max(max_nodes, p.node_count());
  }
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.node_count(), 0u);
  EXPECT_LE(max_nodes, 4u);  // never more change points than live blocks need
  EXPECT_DOUBLE_EQ(p.peak(0.0, 100.0), 0.0);
}

TEST(BandwidthCalendar, SharedTimestampBookReleaseCyclesStayBounded) {
  // The same leak shape through the public calendar API, at depth: many
  // concurrent bookings over the same window, released in mixed order.
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  for (int cycle = 0; cycle < 20'000; ++cycle) {
    std::vector<ReservationId> ids;
    for (int k = 0; k < 5; ++k) {
      ids.push_back(cal.book({f.ab, f.bc}, 10.0, 500.0, mbps(123.456 + k)));
    }
    for (int k = 0; k < 5; ++k) cal.release(ids[(k * 3) % 5]);
  }
  EXPECT_EQ(cal.active_bookings(), 0u);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 1000.0), gbps(10));
  EXPECT_DOUBLE_EQ(cal.available(f.bc, 0.0, 1000.0), gbps(10));
}

TEST(BandwidthCalendar, TruncateIsRepeatableAndMonotonic) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  const auto id = cal.book({f.ab}, 0.0, 100.0, gbps(9));
  cal.truncate(id, 80.0);
  cal.truncate(id, 80.0);  // no-op: already ends here
  cal.truncate(id, 40.0);  // further truncation shifts the end again
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 40.0), gbps(1));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 40.0, 100.0), gbps(10));
  // The window can only shrink: extending past the current end throws.
  EXPECT_THROW(cal.truncate(id, 90.0), gridvc::PreconditionError);
  cal.release(id);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 100.0), gbps(10));
}

TEST(BandwidthCalendar, EndpointTouchingBookingsDoNotDoubleCountInPeak) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  // [a,b) + [b,c) at 6 Gbps each on a 10 Gbps link: if the junction
  // double-counted, the second booking (and the probe below) would fail.
  const auto r1 = cal.book({f.ab}, 0.0, 60.0, gbps(6));
  const auto r2 = cal.book({f.ab}, 60.0, 120.0, gbps(6));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 120.0), gbps(4));
  EXPECT_TRUE(cal.fits({f.ab}, 0.0, 120.0, gbps(4)));
  cal.release(r1);
  cal.release(r2);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 120.0), gbps(10));
}

TEST(BandwidthCalendar, TruncateToStartReleasesCleanly) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  const auto id = cal.book({f.ab, f.bc}, 100.0, 200.0, gbps(8));
  ASSERT_EQ(cal.active_bookings(), 1u);
  cal.truncate(id, 100.0);  // new_end == start: the whole window releases
  EXPECT_EQ(cal.active_bookings(), 0u);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 300.0), gbps(10));
  EXPECT_DOUBLE_EQ(cal.available(f.bc, 0.0, 300.0), gbps(10));
  // The booking is gone: releasing it again throws.
  EXPECT_THROW(cal.release(id), gridvc::PreconditionError);
}

// Regression: a new_end strictly *before* the start must behave exactly
// like release() too — no residual deltas (the old code path would have
// left a negative-rate tail), slot recycled, id stale.
TEST(BandwidthCalendar, TruncateBeforeStartIsFullRelease) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  const auto id = cal.book({f.ab, f.bc}, 100.0, 200.0, gbps(8));
  cal.truncate(id, 50.0);  // new_end < start
  EXPECT_EQ(cal.active_bookings(), 0u);
  EXPECT_TRUE(cal.link_deltas(f.ab).empty());
  EXPECT_TRUE(cal.link_deltas(f.bc).empty());
  // The id went stale exactly as release() would leave it...
  EXPECT_THROW(cal.release(id), gridvc::PreconditionError);
  EXPECT_THROW(cal.truncate(id, 40.0), gridvc::PreconditionError);
  // ...and the recycled slot's new booking is not confused with it.
  const auto next = cal.book({f.ab}, 300.0, 400.0, gbps(10));
  EXPECT_NE(next, id);
  EXPECT_THROW(cal.release(id), gridvc::PreconditionError);
  cal.release(next);
  EXPECT_TRUE(cal.link_deltas(f.ab).empty());
}

TEST(BandwidthCalendar, ShapedBookingTruncatesToStartAsFullRelease) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  const std::vector<RateSegment> profile = {{100.0, 200.0, gbps(2)},
                                            {200.0, 260.0, gbps(10)}};
  ASSERT_TRUE(cal.fits_profile({f.ab, f.bc}, profile));
  const auto id = cal.book_profile({f.ab, f.bc}, profile);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 100.0, 200.0), gbps(8));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 200.0, 260.0), 0.0);
  cal.truncate(id, 100.0);  // at the first segment's start: full release
  EXPECT_EQ(cal.active_bookings(), 0u);
  EXPECT_TRUE(cal.link_deltas(f.ab).empty());
  EXPECT_TRUE(cal.link_deltas(f.bc).empty());
  EXPECT_THROW(cal.release(id), gridvc::PreconditionError);
}

TEST(BandwidthCalendar, ShapedTruncateDropsTailSegmentsAndClipsStraddler) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  const std::vector<RateSegment> profile = {
      {0.0, 100.0, gbps(2)}, {100.0, 200.0, gbps(4)}, {200.0, 300.0, gbps(6)}};
  const auto id = cal.book_profile({f.ab}, profile);
  // Cut mid-second-segment: the third drops, the second clips to 150.
  cal.truncate(id, 150.0);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 100.0), gbps(8));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 100.0, 150.0), gbps(6));
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 150.0, 300.0), gbps(10));
  cal.release(id);
  EXPECT_TRUE(cal.link_deltas(f.ab).empty());
}

TEST(BandwidthCalendar, HeadroomProfileBreaksAtEveryChangePointAcrossLinks) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  cal.book({f.ab}, 50.0, 100.0, gbps(4));
  cal.book({f.bc}, 80.0, 120.0, gbps(7));
  const auto pieces = cal.headroom_profile({f.ab, f.bc}, 0.0, 150.0);
  // min across links at every instant; the change points at 100 (ab) and
  // 120 (bc) both show up, but equal-rate neighbors [80,100) and
  // [100,120) merge into one piece.
  const std::vector<RateSegment> expected = {{0.0, 50.0, gbps(10)},
                                             {50.0, 80.0, gbps(6)},
                                             {80.0, 120.0, gbps(3)},
                                             {120.0, 150.0, gbps(10)}};
  EXPECT_EQ(pieces, expected);
}

// Property: random book/release sequences never leave negative
// availability and end balanced after all releases.
class CalendarProperty : public ::testing::TestWithParam<int> {};

TEST_P(CalendarProperty, RandomOpsStayConsistent) {
  CalFixture f;
  BandwidthCalendar cal(f.topo);
  gridvc::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  std::vector<ReservationId> live;
  for (int op = 0; op < 200; ++op) {
    const double t0 = rng.uniform(0.0, 1000.0);
    const double t1 = t0 + rng.uniform(1.0, 200.0);
    const double rate = mbps(rng.uniform(10.0, 4000.0));
    const Path path = rng.bernoulli(0.5) ? Path{f.ab} : Path{f.ab, f.bc};
    if (cal.fits(path, t0, t1, rate)) {
      live.push_back(cal.book(path, t0, t1, rate));
    } else if (!live.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      cal.release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Availability is never negative anywhere we can observe.
    ASSERT_GE(cal.available(f.ab, 0.0, 1200.0), 0.0);
    ASSERT_GE(cal.available(f.bc, 0.0, 1200.0), 0.0);
  }
  for (ReservationId id : live) cal.release(id);
  EXPECT_DOUBLE_EQ(cal.available(f.ab, 0.0, 1200.0), gbps(10));
  EXPECT_DOUBLE_EQ(cal.available(f.bc, 0.0, 1200.0), gbps(10));
}

INSTANTIATE_TEST_SUITE_P(RandomOps, CalendarProperty, ::testing::Range(1, 17));

}  // namespace
}  // namespace gridvc::vc
