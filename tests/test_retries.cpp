// Failure/retry behavior of the TransferEngine (§II: GridFTP recovers
// from failures during transfers via restart markers), the BackoffPolicy
// that paces those retries, and the link-failure abort path.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "gridftp/backoff.hpp"
#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"

namespace gridvc::gridftp {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::LinkId ab;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<Server> src, dst;
  UsageStatsCollector collector;
  std::unique_ptr<TransferEngine> engine;

  explicit Fixture(double failure_probability, Seconds backoff = 5.0,
                   int max_attempts = 5, BitsPerSecond nic = gbps(4),
                   int max_aborts = 8) {
    const auto a = topo.add_node("a", net::NodeKind::kHost);
    const auto b = topo.add_node("b", net::NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(10), 0.005);
    network = std::make_unique<net::Network>(sim, topo);
    ServerConfig sc;
    sc.name = "src";
    sc.nic_rate = nic;
    src = std::make_unique<Server>(sc);
    sc.name = "dst";
    dst = std::make_unique<Server>(sc);
    TransferEngineConfig cfg;
    cfg.server_noise_sigma = 0.0;
    cfg.failure_probability = failure_probability;
    cfg.backoff = BackoffPolicy::fixed(backoff);
    cfg.max_attempts = max_attempts;
    cfg.max_aborts = max_aborts;
    cfg.tcp.stream_buffer = 64 * MiB;
    engine = std::make_unique<TransferEngine>(*network, collector, cfg, Rng(11));
  }

  TransferSpec spec(Bytes size) {
    TransferSpec s;
    s.src = {src.get(), IoMode::kMemory};
    s.dst = {dst.get(), IoMode::kMemory};
    s.path = {ab};
    s.rtt = 0.01;
    s.size = size;
    s.streams = 8;
    s.remote_host = "b";
    return s;
  }
};

TEST(Retries, NoFailuresByDefault) {
  Fixture f(0.0);
  for (int i = 0; i < 10; ++i) f.engine->submit(f.spec(GiB));
  f.sim.run();
  EXPECT_EQ(f.engine->stats().completed, 10u);
  EXPECT_EQ(f.engine->stats().attempts, 10u);
  EXPECT_EQ(f.engine->stats().failures, 0u);
}

TEST(Retries, AlwaysFailingTransferStillCompletes) {
  Fixture f(1.0);
  TransferRecord record{};
  f.engine->submit(f.spec(GiB), [&](const TransferRecord& r) { record = r; });
  f.sim.run();
  // With p=1 every attempt but the capped last one fails: exactly
  // max_attempts attempts, max_attempts-1 failures, and completion.
  EXPECT_EQ(f.engine->stats().completed, 1u);
  EXPECT_EQ(f.engine->stats().attempts, 5u);
  EXPECT_EQ(f.engine->stats().failures, 4u);
  EXPECT_EQ(record.size, GiB);
  EXPECT_FALSE(record.failed);
  // The record's duration includes the four backoffs.
  EXPECT_GT(record.duration, 4 * 5.0);
}

TEST(Retries, FinalAttemptNeverFails) {
  // The "operator's patience" invariant for any cap: with p=1 the engine
  // makes exactly max_attempts attempts, the last of which goes through.
  for (int max_attempts : {1, 2, 3, 7}) {
    Fixture f(1.0, /*backoff=*/1.0, max_attempts);
    f.engine->submit(f.spec(256 * MiB));
    f.sim.run();
    EXPECT_EQ(f.engine->stats().completed, 1u) << "max_attempts=" << max_attempts;
    EXPECT_EQ(f.engine->stats().attempts, static_cast<std::uint64_t>(max_attempts));
    EXPECT_EQ(f.engine->stats().failures, static_cast<std::uint64_t>(max_attempts - 1));
    EXPECT_EQ(f.engine->stats().failed_transfers, 0u);
  }
}

TEST(Retries, FailedTransfersAreSlowerOnAverage) {
  std::vector<double> clean, flaky;
  {
    Fixture f(0.0);
    for (int i = 0; i < 20; ++i) {
      f.engine->submit(f.spec(GiB),
                       [&](const TransferRecord& r) { clean.push_back(r.duration); });
      f.sim.run();
    }
  }
  {
    Fixture f(0.5, /*backoff=*/10.0);
    for (int i = 0; i < 20; ++i) {
      f.engine->submit(f.spec(GiB),
                       [&](const TransferRecord& r) { flaky.push_back(r.duration); });
      f.sim.run();
    }
  }
  double clean_mean = 0.0, flaky_mean = 0.0;
  for (double d : clean) clean_mean += d;
  for (double d : flaky) flaky_mean += d;
  clean_mean /= static_cast<double>(clean.size());
  flaky_mean /= static_cast<double>(flaky.size());
  EXPECT_GT(flaky_mean, clean_mean + 5.0);
}

TEST(Retries, BytesConservedAcrossAttempts) {
  Fixture f(0.7);
  f.engine->submit(f.spec(2 * GiB));
  f.sim.run();
  // Every byte crossed the link exactly once: restart markers resume, not
  // re-send (the fluid model's idealization of partial-file restarts).
  EXPECT_NEAR(f.network->link_bytes(f.ab), static_cast<double>(2 * GiB), 16.0);
}

TEST(Retries, ServerSlotsHeldAcrossRetries) {
  Fixture f(1.0, /*backoff=*/50.0);
  f.engine->submit(f.spec(GiB));
  f.sim.run_until(60.0);  // inside a backoff window
  // The transfer is still registered at both servers while it waits.
  EXPECT_EQ(f.src->concurrency(), 1u);
  EXPECT_EQ(f.dst->concurrency(), 1u);
  f.sim.run();
  EXPECT_EQ(f.src->concurrency(), 0u);
  EXPECT_EQ(f.dst->concurrency(), 0u);
}

TEST(Retries, UsageStatsReportedOncePerTransfer) {
  Fixture f(0.8);
  for (int i = 0; i < 5; ++i) f.engine->submit(f.spec(256 * MiB));
  f.sim.run();
  EXPECT_EQ(f.collector.received(), 5u);
}

// ---------------------------------------------------------------------------
// set_guarantee across the attempt lifecycle
// ---------------------------------------------------------------------------

/// Trace sink that attaches a guarantee the moment the first of two
/// stripes completes (aux == live stripes left == 1) — exactly the racy
/// instant the mid-transfer circuit-activation bug lived at: the old
/// engine split the rate over *all* recorded stripe flows, completed ones
/// included, and pushing a guarantee to a finished flow blew up the
/// network layer.
struct GuaranteeOnStripeSink : obs::TraceSink {
  TransferEngine* engine = nullptr;
  std::uint64_t transfer_id = 0;
  BitsPerSecond guarantee = 0.0;
  int applied = 0;

  void emit(const obs::TraceEvent& e) override {
    if (e.type == obs::TraceEventType::kTransferStripeCompleted &&
        e.id == transfer_id && e.aux == 1) {
      engine->set_guarantee(transfer_id, guarantee);
      ++applied;
    }
  }
};

TEST(Retries, SetGuaranteeSplitsAcrossLiveFlowsOnly) {
  Fixture f(0.0);
  GuaranteeOnStripeSink sink;
  f.sim.obs().set_trace_sink(&sink);
  sink.engine = f.engine.get();
  sink.guarantee = gbps(2);

  TransferSpec s = f.spec(GiB);
  s.stripes = 2;
  TransferRecord record{};
  sink.transfer_id =
      f.engine->submit(s, [&](const TransferRecord& r) { record = r; });
  // Pre-fix this threw PreconditionError from inside the network layer
  // (guarantee pushed to the already-completed stripe's flow id).
  ASSERT_NO_THROW(f.sim.run());
  EXPECT_EQ(sink.applied, 1);
  EXPECT_EQ(f.engine->stats().completed, 1u);
  EXPECT_EQ(record.size, GiB);
}

TEST(Retries, SetGuaranteeDuringBackoffAppliesToNextAttempt) {
  // A competing best-effort hog shares the 10G link, so fair share gives
  // the transfer ~5G. A guarantee of 8G attached *during the backoff*
  // (no flows in flight) must be stored and carried into the retry
  // attempt's flows, which then finish measurably sooner.
  const auto run_once = [](bool set_during_backoff) {
    Fixture f(1.0, /*backoff=*/50.0, /*max_attempts=*/2, /*nic=*/gbps(20));
    f.network->start_flow({f.ab}, static_cast<Bytes>(1) << 55, {}, nullptr);
    TransferRecord record{};
    const std::uint64_t id =
        f.engine->submit(f.spec(4 * GiB), [&](const TransferRecord& r) { record = r; });
    f.sim.run_until(20.0);
    // Attempt 1 has failed and the retry is still waiting out the backoff.
    EXPECT_EQ(f.engine->stats().failures, 1u);
    EXPECT_EQ(f.engine->stats().attempts, 1u);
    if (set_during_backoff) {
      // Pre-fix this pushed the guarantee to the dead attempt's flow ids.
      f.engine->set_guarantee(id, gbps(8));
    }
    f.sim.run();
    EXPECT_EQ(f.engine->stats().completed, 1u);
    return record.duration;
  };
  const double without = run_once(false);
  const double with = run_once(true);
  EXPECT_LT(with, without - 1.0);
}

TEST(Retries, SetGuaranteeOnUnknownTransferIsIgnored) {
  Fixture f(0.0);
  TransferRecord record{};
  f.engine->submit(f.spec(GiB), [&](const TransferRecord& r) { record = r; });
  f.sim.run();
  // Circuit callbacks legitimately outlive the transfers they fed.
  EXPECT_NO_THROW(f.engine->set_guarantee(12345, gbps(1)));
  EXPECT_NO_THROW(f.engine->set_guarantee(1, 0.0));  // id 1 already finished
  EXPECT_FALSE(record.failed);
}

// ---------------------------------------------------------------------------
// Link-failure aborts
// ---------------------------------------------------------------------------

/// Trace sink that flaps a link shortly after a transfer's first bytes hit
/// the wire: down `down_after` seconds past kTransferStarted, back up
/// `up_after` seconds past it. Event-driven so the test does not depend on
/// the slow-start injection delay.
struct LinkFlapSink : obs::TraceSink {
  sim::Simulator* sim = nullptr;
  net::Network* network = nullptr;
  net::LinkId link = 0;
  Seconds down_after = 0.5;
  Seconds up_after = 1.5;
  bool armed = false;

  void emit(const obs::TraceEvent& e) override {
    if (e.type != obs::TraceEventType::kTransferStarted || armed) return;
    armed = true;
    sim->schedule_in(down_after, [this] { network->set_link_state(link, false); });
    sim->schedule_in(up_after, [this] { network->set_link_state(link, true); });
  }
};

TEST(Retries, LinkFailureAbortFeedsRestartMarkerRetry) {
  Fixture f(0.0, /*backoff=*/5.0);
  LinkFlapSink sink;
  sink.sim = &f.sim;
  sink.network = f.network.get();
  sink.link = f.ab;
  f.sim.obs().set_trace_sink(&sink);

  TransferRecord record{};
  f.engine->submit(f.spec(2 * GiB), [&](const TransferRecord& r) { record = r; });
  f.sim.run();

  // The outage killed attempt 1; the retry resumed from the restart
  // marker and completed.
  EXPECT_EQ(f.engine->stats().aborted_attempts, 1u);
  EXPECT_EQ(f.engine->stats().attempts, 2u);
  EXPECT_EQ(f.engine->stats().completed, 1u);
  EXPECT_EQ(f.engine->stats().failed_transfers, 0u);
  EXPECT_FALSE(record.failed);
  EXPECT_GT(record.duration, 5.0);  // includes the abort backoff
  // Restart markers: delivered bytes survive the abort, so each byte
  // crossed the link exactly once.
  EXPECT_NEAR(f.network->link_bytes(f.ab), static_cast<double>(2 * GiB), 16.0);
}

TEST(Retries, TransferFailsPermanentlyAfterMaxAborts) {
  Fixture f(0.0, /*backoff=*/5.0, /*max_attempts=*/5, gbps(4), /*max_aborts=*/1);
  LinkFlapSink sink;
  sink.sim = &f.sim;
  sink.network = f.network.get();
  sink.link = f.ab;
  f.sim.obs().set_trace_sink(&sink);

  TransferRecord record{};
  f.engine->submit(f.spec(2 * GiB), [&](const TransferRecord& r) { record = r; });
  f.sim.run();

  EXPECT_EQ(f.engine->stats().aborted_attempts, 1u);
  EXPECT_EQ(f.engine->stats().failed_transfers, 1u);
  EXPECT_EQ(f.engine->stats().completed, 0u);
  EXPECT_TRUE(record.failed);
  EXPECT_EQ(record.size, 2 * GiB);
  // Failed transfers are counted by the collector but never logged: the
  // paper's analyses run over completed transfers only.
  EXPECT_EQ(f.collector.failed(), 1u);
  EXPECT_EQ(f.collector.received(), 0u);
  // Servers released their slots despite the failure.
  EXPECT_EQ(f.src->concurrency(), 0u);
  EXPECT_EQ(f.dst->concurrency(), 0u);
  EXPECT_EQ(f.engine->active_transfers(), 0u);
}

TEST(Retries, AbortEventsCarryTerminalFlag) {
  obs::RingBufferTraceSink ring(1024);
  struct Tee : obs::TraceSink {
    obs::TraceSink* a = nullptr;
    obs::TraceSink* b = nullptr;
    void emit(const obs::TraceEvent& e) override {
      a->emit(e);
      b->emit(e);
    }
  };

  Fixture f(0.0, /*backoff=*/5.0, /*max_attempts=*/5, gbps(4), /*max_aborts=*/1);
  LinkFlapSink flap;
  flap.sim = &f.sim;
  flap.network = f.network.get();
  flap.link = f.ab;
  Tee tee;
  tee.a = &flap;
  tee.b = &ring;
  f.sim.obs().set_trace_sink(&tee);

  f.engine->submit(f.spec(2 * GiB));
  f.sim.run();

  int aborted = 0;
  for (const auto& e : ring.events()) {
    if (e.type == obs::TraceEventType::kTransferAborted) {
      ++aborted;
      EXPECT_DOUBLE_EQ(e.value2, 1.0);  // terminal: max_aborts reached
    }
  }
  EXPECT_EQ(aborted, 1);
}

// ---------------------------------------------------------------------------
// BackoffPolicy
// ---------------------------------------------------------------------------

TEST(BackoffPolicy, DefaultMatchesLegacyFixedFiveSeconds) {
  Rng rng(1);
  BackoffPolicy p;
  EXPECT_DOUBLE_EQ(p.delay(1, rng), 5.0);
  EXPECT_DOUBLE_EQ(p.delay(4, rng), 5.0);
}

TEST(BackoffPolicy, FixedIgnoresAttemptNumber) {
  Rng rng(1);
  const BackoffPolicy p = BackoffPolicy::fixed(7.5);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_DOUBLE_EQ(p.delay(attempt, rng), 7.5);
  }
}

TEST(BackoffPolicy, ExponentialGrowsAndCaps) {
  Rng rng(1);
  const BackoffPolicy p = BackoffPolicy::exponential(2.0, 2.0, /*cap=*/9.0);
  EXPECT_DOUBLE_EQ(p.delay(1, rng), 2.0);
  EXPECT_DOUBLE_EQ(p.delay(2, rng), 4.0);
  EXPECT_DOUBLE_EQ(p.delay(3, rng), 8.0);
  EXPECT_DOUBLE_EQ(p.delay(4, rng), 9.0);
  EXPECT_DOUBLE_EQ(p.delay(10, rng), 9.0);
}

TEST(BackoffPolicy, JitterStaysBoundedAndIsDeterministic) {
  const BackoffPolicy p = BackoffPolicy::exponential(10.0, 2.0, 300.0, /*jitter=*/0.5);
  Rng a(42), b(42);
  bool varied = false;
  double previous = -1.0;
  for (int i = 0; i < 32; ++i) {
    const double da = p.delay(1, a);
    const double db = p.delay(1, b);
    EXPECT_DOUBLE_EQ(da, db);  // same stream, same draws
    EXPECT_GE(da, 5.0);
    EXPECT_LT(da, 15.0);
    if (previous >= 0.0 && da != previous) varied = true;
    previous = da;
  }
  EXPECT_TRUE(varied);
}

TEST(BackoffPolicy, RejectsMalformedParameters) {
  Rng rng(1);
  BackoffPolicy p;
  p.jitter = 1.5;
  EXPECT_THROW(p.delay(1, rng), PreconditionError);
  p.jitter = 0.0;
  EXPECT_THROW(p.delay(0, rng), PreconditionError);
}

// ---------------------------------------------------------------------------
// Process-level faults: server crash and restart
// ---------------------------------------------------------------------------

/// Counts trace events by type (for asserting on stripe/crash lifecycle).
struct CountingSink final : obs::TraceSink {
  std::array<std::uint64_t, obs::kTraceEventTypeCount> counts{};
  void emit(const obs::TraceEvent& e) override {
    counts[static_cast<std::size_t>(e.type)]++;
  }
  std::uint64_t count(obs::TraceEventType t) const {
    return counts[static_cast<std::size_t>(t)];
  }
};

TEST(ServerCrash, AbortsParksAndResumesFromRestartMarkers) {
  Fixture f(0.0, /*backoff=*/1.0);
  TransferRecord record{};
  bool done = false;
  f.engine->submit(f.spec(2 * GiB), [&](const TransferRecord& r) {
    record = r;
    done = true;
  });
  f.sim.run_until(2.0);  // ~0.9 GiB moved at the 4 Gbps server ceiling
  f.engine->handle_server_down(f.dst.get());
  EXPECT_FALSE(f.dst->online());
  EXPECT_EQ(f.engine->waiting_transfers(), 1u);
  EXPECT_EQ(f.engine->stats().server_crashes, 1u);
  EXPECT_EQ(f.engine->stats().aborted_attempts, 1u);
  // The server stays down: the transfer is parked, neither finished nor
  // failed, and no retry burns attempts against the dead endpoint.
  f.sim.run_until(6.0);
  EXPECT_FALSE(done);
  EXPECT_EQ(f.engine->stats().attempts, 1u);
  f.engine->handle_server_up(f.dst.get());
  EXPECT_EQ(f.engine->waiting_transfers(), 0u);
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(record.failed);
  EXPECT_EQ(record.size, 2 * GiB);
  EXPECT_EQ(f.engine->stats().attempts, 2u);
  EXPECT_EQ(f.engine->stats().completed, 1u);
  // Restart markers: the retry (backoff 1 s after the restart) only moves
  // the remaining ~1.1 GiB. A from-scratch retransfer of 2 GiB at 4 Gbps
  // could not finish before t = 7 + 4.29; the marker credit can.
  const double full = static_cast<double>(2 * GiB) * 8.0 / gbps(4);
  EXPECT_LT(record.end_time(), 7.0 + full - 1.0);
  // Every byte crossed the link exactly once (markers resume, not re-send).
  EXPECT_NEAR(f.network->link_bytes(f.ab), static_cast<double>(2 * GiB), 16.0);
}

TEST(ServerCrash, StripedTransferResumesEveryStripe) {
  Fixture f(0.0, /*backoff=*/1.0);
  CountingSink sink;
  f.sim.obs().set_trace_sink(&sink);
  auto s = f.spec(2 * GiB);
  s.stripes = 4;
  TransferRecord record{};
  bool done = false;
  f.engine->submit(s, [&](const TransferRecord& r) {
    record = r;
    done = true;
  });
  f.sim.run_until(2.0);  // all four stripe flows are mid-flight
  ASSERT_EQ(sink.count(obs::TraceEventType::kTransferStripeCompleted), 0u);
  f.engine->handle_server_down(f.src.get());
  EXPECT_EQ(f.engine->waiting_transfers(), 1u);
  EXPECT_EQ(sink.count(obs::TraceEventType::kServerDown), 1u);
  f.sim.run_until(5.0);
  f.engine->handle_server_up(f.src.get());
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(record.failed);
  EXPECT_EQ(record.stripes, 4);
  // The resumed attempt re-stripes the remaining bytes across all four
  // servers: every stripe completes exactly once, none were lost to the
  // crash.
  EXPECT_EQ(sink.count(obs::TraceEventType::kTransferStripeCompleted), 4u);
  EXPECT_EQ(sink.count(obs::TraceEventType::kServerUp), 1u);
  EXPECT_EQ(sink.count(obs::TraceEventType::kTransferFinished), 1u);
  EXPECT_EQ(f.engine->stats().aborted_attempts, 1u);
  EXPECT_NEAR(f.network->link_bytes(f.ab), static_cast<double>(2 * GiB), 64.0);
  f.sim.obs().set_trace_sink(nullptr);
}

TEST(ServerCrash, SubmitWhileOfflineParksWithoutConsumingAnAttempt) {
  Fixture f(0.0, /*backoff=*/1.0);
  f.engine->handle_server_down(f.src.get());
  TransferRecord record{};
  bool done = false;
  f.engine->submit(f.spec(GiB), [&](const TransferRecord& r) {
    record = r;
    done = true;
  });
  EXPECT_EQ(f.engine->waiting_transfers(), 1u);
  f.sim.run_until(10.0);
  EXPECT_FALSE(done);
  EXPECT_EQ(f.engine->stats().attempts, 0u);  // never got a control channel
  f.engine->handle_server_up(f.src.get());
  f.sim.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(record.failed);
  // First injection, not a retry: exactly one attempt, no aborts charged.
  EXPECT_EQ(f.engine->stats().attempts, 1u);
  EXPECT_EQ(f.engine->stats().aborted_attempts, 0u);
}

TEST(ServerCrash, RepeatedCrashesExhaustAbortBudget) {
  Fixture f(0.0, /*backoff=*/1.0, /*max_attempts=*/5, gbps(4), /*max_aborts=*/2);
  TransferRecord record{};
  bool done = false;
  f.engine->submit(f.spec(4 * GiB), [&](const TransferRecord& r) {
    record = r;
    done = true;
  });
  for (int i = 0; i < 2; ++i) {
    f.sim.run_until(static_cast<double>(i) * 4.0 + 2.0);
    f.engine->handle_server_down(f.dst.get());
    f.engine->handle_server_up(f.dst.get());
  }
  f.sim.run();
  ASSERT_TRUE(done);
  // Second crash hit the abort ceiling: permanent failure, not a retry.
  EXPECT_TRUE(record.failed);
  EXPECT_EQ(f.engine->stats().failed_transfers, 1u);
  EXPECT_EQ(f.engine->stats().aborted_attempts, 2u);
  EXPECT_EQ(f.engine->stats().completed, 0u);
  EXPECT_EQ(f.engine->waiting_transfers(), 0u);
}

}  // namespace
}  // namespace gridvc::gridftp
