// Failure/retry behavior of the TransferEngine (§II: GridFTP recovers
// from failures during transfers via restart markers).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"

namespace gridvc::gridftp {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::LinkId ab;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<Server> src, dst;
  UsageStatsCollector collector;
  std::unique_ptr<TransferEngine> engine;

  explicit Fixture(double failure_probability, Seconds backoff = 5.0) {
    const auto a = topo.add_node("a", net::NodeKind::kHost);
    const auto b = topo.add_node("b", net::NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(10), 0.005);
    network = std::make_unique<net::Network>(sim, topo);
    ServerConfig sc;
    sc.name = "src";
    sc.nic_rate = gbps(4);
    src = std::make_unique<Server>(sc);
    sc.name = "dst";
    dst = std::make_unique<Server>(sc);
    TransferEngineConfig cfg;
    cfg.server_noise_sigma = 0.0;
    cfg.failure_probability = failure_probability;
    cfg.retry_backoff = backoff;
    cfg.tcp.stream_buffer = 64 * MiB;
    engine = std::make_unique<TransferEngine>(*network, collector, cfg, Rng(11));
  }

  TransferSpec spec(Bytes size) {
    TransferSpec s;
    s.src = {src.get(), IoMode::kMemory};
    s.dst = {dst.get(), IoMode::kMemory};
    s.path = {ab};
    s.rtt = 0.01;
    s.size = size;
    s.streams = 8;
    s.remote_host = "b";
    return s;
  }
};

TEST(Retries, NoFailuresByDefault) {
  Fixture f(0.0);
  for (int i = 0; i < 10; ++i) f.engine->submit(f.spec(GiB));
  f.sim.run();
  EXPECT_EQ(f.engine->stats().completed, 10u);
  EXPECT_EQ(f.engine->stats().attempts, 10u);
  EXPECT_EQ(f.engine->stats().failures, 0u);
}

TEST(Retries, AlwaysFailingTransferStillCompletes) {
  Fixture f(1.0);
  TransferRecord record{};
  f.engine->submit(f.spec(GiB), [&](const TransferRecord& r) { record = r; });
  f.sim.run();
  // With p=1 every attempt but the capped last one fails: exactly
  // max_attempts attempts, max_attempts-1 failures, and completion.
  EXPECT_EQ(f.engine->stats().completed, 1u);
  EXPECT_EQ(f.engine->stats().attempts, 5u);
  EXPECT_EQ(f.engine->stats().failures, 4u);
  EXPECT_EQ(record.size, GiB);
  // The record's duration includes the four backoffs.
  EXPECT_GT(record.duration, 4 * 5.0);
}

TEST(Retries, FailedTransfersAreSlowerOnAverage) {
  std::vector<double> clean, flaky;
  {
    Fixture f(0.0);
    for (int i = 0; i < 20; ++i) {
      f.engine->submit(f.spec(GiB),
                       [&](const TransferRecord& r) { clean.push_back(r.duration); });
      f.sim.run();
    }
  }
  {
    Fixture f(0.5, /*backoff=*/10.0);
    for (int i = 0; i < 20; ++i) {
      f.engine->submit(f.spec(GiB),
                       [&](const TransferRecord& r) { flaky.push_back(r.duration); });
      f.sim.run();
    }
  }
  double clean_mean = 0.0, flaky_mean = 0.0;
  for (double d : clean) clean_mean += d;
  for (double d : flaky) flaky_mean += d;
  clean_mean /= static_cast<double>(clean.size());
  flaky_mean /= static_cast<double>(flaky.size());
  EXPECT_GT(flaky_mean, clean_mean + 5.0);
}

TEST(Retries, BytesConservedAcrossAttempts) {
  Fixture f(0.7);
  f.engine->submit(f.spec(2 * GiB));
  f.sim.run();
  // Every byte crossed the link exactly once: restart markers resume, not
  // re-send (the fluid model's idealization of partial-file restarts).
  EXPECT_NEAR(f.network->link_bytes(f.ab), static_cast<double>(2 * GiB), 16.0);
}

TEST(Retries, ServerSlotsHeldAcrossRetries) {
  Fixture f(1.0, /*backoff=*/50.0);
  f.engine->submit(f.spec(GiB));
  f.sim.run_until(60.0);  // inside a backoff window
  // The transfer is still registered at both servers while it waits.
  EXPECT_EQ(f.src->concurrency(), 1u);
  EXPECT_EQ(f.dst->concurrency(), 1u);
  f.sim.run();
  EXPECT_EQ(f.src->concurrency(), 0u);
  EXPECT_EQ(f.dst->concurrency(), 0u);
}

TEST(Retries, UsageStatsReportedOncePerTransfer) {
  Fixture f(0.8);
  for (int i = 0; i < 5; ++i) f.engine->submit(f.spec(256 * MiB));
  f.sim.run();
  EXPECT_EQ(f.collector.received(), 5u);
}

}  // namespace
}  // namespace gridvc::gridftp
