#include "analysis/flow_classification.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gridvc::analysis {
namespace {

using gridftp::TransferLog;
using gridftp::TransferRecord;

TransferRecord make(Bytes size, double duration) {
  TransferRecord r;
  r.size = size;
  r.duration = duration;
  return r;
}

// A log of 100 ordinary transfers plus crafted outliers.
TransferLog base_log(gridvc::Rng& rng) {
  TransferLog log;
  for (int i = 0; i < 100; ++i) {
    // ~100 MB in ~10 s -> ~80 Mbps, mild spread.
    log.push_back(make(static_cast<Bytes>(rng.uniform(8e7, 1.2e8)),
                       rng.uniform(8.0, 12.0)));
  }
  return log;
}

TEST(FlowClassification, QuantileThresholdsMatchQuantiles) {
  gridvc::Rng rng(1);
  const auto log = base_log(rng);
  const auto t = quantile_thresholds(log, 0.9);
  std::size_t over = 0;
  for (const auto& r : log) {
    if (static_cast<double>(r.size) >= t.size_bytes) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / static_cast<double>(log.size()), 0.1, 0.03);
}

TEST(FlowClassification, ClassifiesCraftedOutliers) {
  gridvc::Rng rng(2);
  auto log = base_log(rng);
  log.push_back(make(100 * GiB, 10.0));   // elephant + cheetah (alpha)
  log.push_back(make(100 * MiB, 9000.0)); // tortoise
  const auto t = quantile_thresholds(log, 0.95);
  const auto masks = classify(log, t);
  EXPECT_TRUE(masks[100] & kElephant);
  EXPECT_TRUE(masks[100] & kCheetah);
  EXPECT_FALSE(masks[100] & kTortoise);
  EXPECT_TRUE(masks[101] & kTortoise);
  EXPECT_FALSE(masks[101] & kCheetah);
}

TEST(FlowClassification, LogSpaceThresholdsExcludeUniformPopulation) {
  // A tight population has small log-sd: mean+3sd sits just above the
  // population, so nothing is flagged.
  TransferLog log;
  for (int i = 0; i < 50; ++i) log.push_back(make(100 * MiB + i, 10.0));
  const auto t = log_space_thresholds(log, 3.0);
  const auto masks = classify(log, t);
  for (auto m : masks) EXPECT_EQ(m & kElephant, 0);
}

TEST(FlowClassification, LogSpaceFlagsTrueOutlier) {
  TransferLog log;
  gridvc::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    log.push_back(make(static_cast<Bytes>(1e8 * rng.lognormal(0.0, 0.3)), 10.0));
  }
  log.push_back(make(1000 * GiB, 10.0));
  const auto t = log_space_thresholds(log, 3.0);
  const auto masks = classify(log, t);
  EXPECT_TRUE(masks.back() & kElephant);
}

TEST(FlowClassification, SummaryCountsAndOverlap) {
  gridvc::Rng rng(4);
  auto log = base_log(rng);
  // Three alphas: large AND fast.
  for (int i = 0; i < 3; ++i) log.push_back(make(50 * GiB, 20.0));
  const auto t = quantile_thresholds(log, 0.95);
  const auto masks = classify(log, t);
  const auto s = summarize_classification(log, masks);
  EXPECT_EQ(s.total, log.size());
  EXPECT_GE(s.alphas, 3u);
  EXPECT_GE(s.elephants, 3u);
  // Diagonal of the overlap matrix is 1 for populated classes.
  EXPECT_DOUBLE_EQ(s.overlap[0][0], 1.0);
  // All crafted elephants are cheetahs here: P(cheetah | elephant) high.
  EXPECT_GT(s.overlap[0][2], 0.4);
  // Alphas carry nearly all bytes (150 GB vs ~10 GB of background).
  EXPECT_GT(s.alpha_byte_fraction, 0.9);
}

TEST(FlowClassification, OverlapProbabilitiesAreConsistent) {
  // P(A|B)·|B| == P(B|A)·|A| == |A ∩ B|.
  gridvc::Rng rng(5);
  auto log = base_log(rng);
  for (int i = 0; i < 10; ++i) log.push_back(make(10 * GiB, rng.uniform(10.0, 5000.0)));
  const auto t = quantile_thresholds(log, 0.9);
  const auto masks = classify(log, t);
  const auto s = summarize_classification(log, masks);
  const double joint_ec = s.overlap[0][2] * static_cast<double>(s.elephants);
  const double joint_ce = s.overlap[2][0] * static_cast<double>(s.cheetahs);
  EXPECT_NEAR(joint_ec, joint_ce, 1e-9);
}

TEST(FlowClassification, Preconditions) {
  EXPECT_THROW(quantile_thresholds({}, 0.95), gridvc::PreconditionError);
  gridvc::Rng rng(6);
  const auto log = base_log(rng);
  EXPECT_THROW(quantile_thresholds(log, 0.0), gridvc::PreconditionError);
  EXPECT_THROW(quantile_thresholds(log, 1.0), gridvc::PreconditionError);
  EXPECT_THROW(log_space_thresholds({}, 3.0), gridvc::PreconditionError);
  const auto t = quantile_thresholds(log, 0.9);
  auto masks = classify(log, t);
  masks.pop_back();
  EXPECT_THROW(summarize_classification(log, masks), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::analysis
