// End-to-end integration tests crossing module boundaries:
// workload synthesis -> log serialization -> session grouping ->
// VC-feasibility, and full-sim circuits: IDC reservation -> guaranteed
// transfer over the event-driven network.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "analysis/concurrency.hpp"
#include "analysis/session_grouping.hpp"
#include "analysis/stream_analysis.hpp"
#include "analysis/vc_feasibility.hpp"
#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"
#include "vc/idc.hpp"
#include "workload/profiles.hpp"
#include "workload/scenarios.hpp"
#include "workload/synth.hpp"
#include "workload/testbed.hpp"

namespace gridvc {
namespace {

TEST(Integration, SynthRoundTripsThroughCsvAndAnalysis) {
  auto profile = workload::slac_bnl_profile(0.005);
  const auto log = workload::synthesize_trace(profile, 99);

  // Serialize and re-parse: the analysis must be identical.
  std::stringstream ss;
  gridftp::write_log(ss, log);
  const auto parsed = gridftp::read_log(ss);
  ASSERT_EQ(parsed.size(), log.size());

  const auto s1 = analysis::group_sessions(log, {.gap = 60.0});
  const auto s2 = analysis::group_sessions(parsed, {.gap = 60.0});
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1[i].transfer_count(), s2[i].transfer_count());
    ASSERT_EQ(s1[i].total_bytes, s2[i].total_bytes);
  }

  const auto f1 = analysis::analyze_vc_feasibility(s1, log, {.setup_delay = 60.0});
  const auto f2 = analysis::analyze_vc_feasibility(s2, parsed, {.setup_delay = 60.0});
  EXPECT_EQ(f1.suitable_sessions, f2.suitable_sessions);
  EXPECT_GT(f1.session_fraction(), 0.0);
}

TEST(Integration, FeasibilityImprovesWithFasterSetupOnSynthData) {
  auto profile = workload::slac_bnl_profile(0.01);
  const auto log = workload::synthesize_trace(profile, 123);
  const auto sessions = analysis::group_sessions(log, {.gap = 60.0});
  const auto slow = analysis::analyze_vc_feasibility(sessions, log, {.setup_delay = 60.0});
  const auto fast = analysis::analyze_vc_feasibility(sessions, log, {.setup_delay = 0.05});
  EXPECT_GT(fast.session_fraction(), slow.session_fraction());
  // Key paper finding: even when few *sessions* qualify, most *transfers*
  // live in qualifying sessions.
  EXPECT_GT(slow.transfer_fraction(), slow.session_fraction());
}

TEST(Integration, StreamEffectEmergesFromSynthTrace) {
  auto profile = workload::slac_bnl_profile(0.02);
  const auto log = workload::synthesize_trace(profile, 77);
  analysis::StreamAnalysisOptions opt;
  opt.min_bin_count = 5;
  const auto cmp = analysis::compare_streams(log, opt);
  ASSERT_GT(cmp.group_a.points.size(), 10u);
  ASSERT_GT(cmp.group_b.points.size(), 10u);
  // Small files (< 32 MiB bins): the 8-stream group's median beats the
  // 1-stream group's in aggregate.
  double sum1 = 0.0, sum8 = 0.0;
  int n1 = 0, n8 = 0;
  for (const auto& p : cmp.group_a.points) {
    if (p.size_mb < 32.0) {
      sum1 += p.median;
      ++n1;
    }
  }
  for (const auto& p : cmp.group_b.points) {
    if (p.size_mb < 32.0) {
      sum8 += p.median;
      ++n8;
    }
  }
  ASSERT_GT(n1, 0);
  ASSERT_GT(n8, 0);
  EXPECT_GT(sum8 / n8, 1.2 * (sum1 / n1));
}

TEST(Integration, CircuitBackedTransferBeatsBestEffortUnderLoad) {
  // Full stack: testbed + network + IDC + engine. A congested path is
  // shared by a hog; the circuit-backed transfer holds its reserved rate.
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  net::Network network(sim, tb.topo);

  gridftp::ServerConfig sc;
  sc.name = "nersc-dtn";
  sc.nic_rate = gbps(20);
  gridftp::Server nersc(sc);
  sc.name = "anl-dtn";
  gridftp::Server anl(sc);

  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig ecfg;
  ecfg.server_noise_sigma = 0.0;
  ecfg.tcp.stream_buffer = 64 * MiB;
  gridftp::TransferEngine engine(network, collector, ecfg, Rng(4));

  const net::Path path = tb.path(tb.nersc, tb.anl);
  const Seconds rtt = tb.rtt(tb.nersc, tb.anl);

  // Saturating best-effort hog on the same path.
  network.start_flow(path, static_cast<Bytes>(1) << 50, {}, nullptr);

  vc::IdcConfig icfg;
  icfg.mode = vc::SignalingMode::kImmediate;
  vc::Idc idc(sim, tb.topo, icfg);

  gridftp::TransferRecord best_effort{}, circuit_backed{};
  gridftp::TransferSpec spec;
  spec.src = {&nersc, gridftp::IoMode::kMemory};
  spec.dst = {&anl, gridftp::IoMode::kMemory};
  spec.path = path;
  spec.rtt = rtt;
  spec.size = 4 * GiB;
  spec.streams = 8;
  spec.remote_host = "anl-dtn";

  engine.submit(spec, [&](const gridftp::TransferRecord& r) { best_effort = r; });
  sim.run_until(3600.0);

  const auto reservation = idc.request_immediate(
      tb.nersc, tb.anl, gbps(8), 3600.0, [&](const vc::Circuit& circuit) {
        auto guaranteed = spec;
        guaranteed.guarantee = circuit.request.bandwidth;
        engine.submit(guaranteed,
                      [&](const gridftp::TransferRecord& r) { circuit_backed = r; });
      });
  ASSERT_TRUE(reservation.accepted());
  sim.run_until(7200.0);

  ASSERT_GT(best_effort.duration, 0.0);
  ASSERT_GT(circuit_backed.duration, 0.0);
  // Best effort splits 10G with the hog (~5G); the circuit gets 8G.
  EXPECT_GT(to_gbps(circuit_backed.throughput()), 7.0);
  EXPECT_LT(to_gbps(best_effort.throughput()), 6.0);
}

TEST(Integration, ConcurrencyPredictionOnSimulatedNerscLog) {
  workload::AnlNerscConfig cfg;
  cfg.mem_mem = 25;
  cfg.mem_disk = 0;
  cfg.disk_mem = 0;
  cfg.disk_disk = 0;
  cfg.days = 3;
  cfg.transfer_size = 2 * GiB;
  const auto result = workload::run_anl_nersc_tests(cfg, 21);
  ASSERT_EQ(result.mem_mem.size(), 25u);
  const auto prediction =
      analysis::predict_throughput(result.all_log, result.mem_mem, {.r_quantile = 0.90});
  // The paper found a moderate positive correlation (rho ~= 0.62); the
  // simulated server contention must reproduce a positive one.
  EXPECT_GT(prediction.rho, 0.1);
  EXPECT_LE(prediction.rho, 1.0);
  EXPECT_GT(prediction.r, 0.0);
}

}  // namespace
}  // namespace gridvc
