#include "vc/alpha_detector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace gridvc::vc {
namespace {

AlphaDetectorConfig fast_config() {
  AlphaDetectorConfig c;
  c.min_bytes = 100 * MiB;
  c.min_rate = mbps(500);
  c.window = 10.0;
  return c;
}

// Feed a constant-rate flow: `rate` bits/s sampled every `step` seconds
// for `total` seconds.
void feed(AlphaDetector& d, AlphaDetector::FlowKey key, BitsPerSecond rate,
          Seconds total, Seconds step = 1.0) {
  for (Seconds t = 0.0; t <= total; t += step) {
    d.observe(key, static_cast<Bytes>(rate * t / 8.0), t);
  }
}

TEST(AlphaDetector, PromotesBigFastFlow) {
  AlphaDetector d(fast_config());
  feed(d, 1, gbps(2), 30.0);  // 2 Gbps for 30 s = 7.5 GB
  EXPECT_TRUE(d.is_alpha(1));
  EXPECT_EQ(d.promoted_count(), 1u);
}

TEST(AlphaDetector, IgnoresSmallFlow) {
  AlphaDetector d(fast_config());
  // Fast but tiny: 1 Gbps for 0.5 s = 62 MB < min_bytes.
  feed(d, 1, gbps(1), 0.5, 0.1);
  EXPECT_FALSE(d.is_alpha(1));
}

TEST(AlphaDetector, IgnoresSlowFlow) {
  AlphaDetector d(fast_config());
  // Huge but slow: 100 Mbps for 200 s = 2.5 GB, below the rate bar.
  feed(d, 1, mbps(100), 200.0);
  EXPECT_FALSE(d.is_alpha(1));
  EXPECT_EQ(d.promoted_count(), 0u);
}

TEST(AlphaDetector, NeedsAFullWindowOfEvidence) {
  AlphaDetector d(fast_config());
  // Fast and already big, but only observed for 3 s (< window).
  d.observe(1, 0, 0.0);
  d.observe(1, 500 * MiB, 3.0);
  EXPECT_FALSE(d.is_alpha(1));
  // After the window elapses, the same flow qualifies.
  d.observe(1, 2000 * MiB, 12.0);
  EXPECT_TRUE(d.is_alpha(1));
}

TEST(AlphaDetector, PromotionCallbackFiresOnce) {
  int calls = 0;
  AlphaDetector d(fast_config(), [&](AlphaDetector::FlowKey key, BitsPerSecond rate) {
    ++calls;
    EXPECT_EQ(key, 7u);
    EXPECT_GE(rate, mbps(500));
  });
  feed(d, 7, gbps(1), 60.0);
  EXPECT_EQ(calls, 1);
}

TEST(AlphaDetector, StalledFlowMustReEarnTheBar) {
  AlphaDetector d(fast_config());
  // Big volume accumulated slowly, then a burst shorter than the window:
  // the rate check restarts, so no promotion without sustained speed.
  feed(d, 1, mbps(50), 60.0);  // 375 MB over a minute, slow
  EXPECT_FALSE(d.is_alpha(1));
  // Burst: +200 MB in 2 s, but the window restarted at t=60 needs 10 s of
  // evidence.
  d.observe(1, static_cast<Bytes>(mbps(50) * 60.0 / 8.0) + 200 * MiB, 62.0);
  EXPECT_FALSE(d.is_alpha(1));
}

TEST(AlphaDetector, TracksFlowsIndependently) {
  AlphaDetector d(fast_config());
  feed(d, 1, gbps(2), 30.0);
  feed(d, 2, mbps(10), 30.0);
  EXPECT_TRUE(d.is_alpha(1));
  EXPECT_FALSE(d.is_alpha(2));
  EXPECT_EQ(d.tracked_flows(), 2u);
}

TEST(AlphaDetector, ForgetDropsState) {
  AlphaDetector d(fast_config());
  feed(d, 1, gbps(2), 30.0);
  d.forget(1);
  EXPECT_FALSE(d.is_alpha(1));
  EXPECT_EQ(d.tracked_flows(), 0u);
}

TEST(AlphaDetector, RejectsOutOfOrderObservations) {
  AlphaDetector d(fast_config());
  d.observe(1, 100, 10.0);
  EXPECT_THROW(d.observe(1, 200, 5.0), gridvc::PreconditionError);
  EXPECT_THROW(d.observe(1, 50, 11.0), gridvc::PreconditionError);
}

TEST(AlphaDetector, RejectsBadConfig) {
  AlphaDetectorConfig c;
  c.min_bytes = 0;
  EXPECT_THROW(AlphaDetector{c}, gridvc::PreconditionError);
  AlphaDetectorConfig c2;
  c2.window = 0.0;
  EXPECT_THROW(AlphaDetector{c2}, gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::vc
