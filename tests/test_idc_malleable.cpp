// Malleable (volume-preserving) reservations: shaping, defragmentation,
// reroute-on-rejection, the differential guarantee against fixed-window
// admission, and the satellite stats/journal contracts.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "recovery/journal.hpp"
#include "vc/idc.hpp"

namespace gridvc::vc {
namespace {

using net::LinkId;
using net::NodeId;
using net::NodeKind;
using net::Topology;

/// Zero-delay immediate signaling so activation == start_time and the
/// volume arithmetic in expectations stays exact.
IdcConfig immediate_config() {
  IdcConfig cfg;
  cfg.mode = SignalingMode::kImmediate;
  cfg.immediate_setup_delay = 0.0;
  return cfg;
}

// Diamond: a -> r1 -> b (short) and a -> r2 -> b (longer), all 10G.
struct DiamondFixture {
  sim::Simulator sim;
  Topology topo;
  NodeId a, b;
  LinkId a_r1, r1_b, a_r2, r2_b;

  DiamondFixture() {
    a = topo.add_node("a", NodeKind::kHost);
    const NodeId r1 = topo.add_node("r1", NodeKind::kRouter);
    const NodeId r2 = topo.add_node("r2", NodeKind::kRouter);
    b = topo.add_node("b", NodeKind::kHost);
    a_r1 = topo.add_link(a, r1, gbps(10), 0.001);
    r1_b = topo.add_link(r1, b, gbps(10), 0.001);
    a_r2 = topo.add_link(a, r2, gbps(10), 0.005);
    r2_b = topo.add_link(r2, b, gbps(10), 0.005);
  }

  ReservationRequest request(Seconds start, Seconds end, BitsPerSecond bw,
                             bool malleable = false) {
    ReservationRequest r;
    r.src = a;
    r.dst = b;
    r.bandwidth = bw;
    r.start_time = start;
    r.end_time = end;
    r.malleable = malleable;
    return r;
  }

};

// Single path: a -> r -> b, 10G (no detour, so defrag is the only way in).
struct LineFixture {
  sim::Simulator sim;
  Topology topo;
  NodeId a, b;
  LinkId a_r, r_b;

  LineFixture() {
    a = topo.add_node("a", NodeKind::kHost);
    const NodeId r = topo.add_node("r", NodeKind::kRouter);
    b = topo.add_node("b", NodeKind::kHost);
    a_r = topo.add_link(a, r, gbps(10), 0.001);
    r_b = topo.add_link(r, b, gbps(10), 0.001);
  }

  ReservationRequest request(Seconds start, Seconds end, BitsPerSecond bw,
                             bool malleable = false) {
    ReservationRequest r;
    r.src = a;
    r.dst = b;
    r.bandwidth = bw;
    r.start_time = start;
    r.end_time = end;
    r.malleable = malleable;
    return r;
  }
};

// ---------------------------------------------------------------------------
// Shaping
// ---------------------------------------------------------------------------

TEST(MalleableShaping, FlatFitStaysFlat) {
  DiamondFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  const auto r = idc.create_reservation(f.request(100, 200, gbps(4), true));
  ASSERT_TRUE(r.accepted());
  EXPECT_TRUE(idc.circuit(*r.circuit_id).profile.empty());
  EXPECT_EQ(idc.stats().shaped, 0u);
}

TEST(MalleableShaping, ShapesVolumeWhenFlatWindowDoesNot) {
  DiamondFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  // Fill both branches to 8G over [100, 200): 2G of headroom anywhere.
  ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
  ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());

  // A flat 4G over [100, 300) cannot fit: the first half has only 2G.
  ASSERT_FALSE(idc.create_reservation(f.request(100, 300, gbps(4))).accepted());

  // The same demand as a malleable volume (4G x 200 s = 800 Gbit) shapes
  // into 2G over the congested half plus 10G once the load drains.
  const auto r = idc.create_reservation(f.request(100, 300, gbps(4), true));
  ASSERT_TRUE(r.accepted());
  const Circuit& c = idc.circuit(*r.circuit_id);
  ASSERT_EQ(c.profile.size(), 2u);
  EXPECT_DOUBLE_EQ(c.profile[0].start, 100.0);
  EXPECT_DOUBLE_EQ(c.profile[0].end, 200.0);
  EXPECT_DOUBLE_EQ(c.profile[0].rate, gbps(2));
  EXPECT_DOUBLE_EQ(c.profile[1].start, 200.0);
  EXPECT_DOUBLE_EQ(c.profile[1].end, 260.0);
  EXPECT_DOUBLE_EQ(c.profile[1].rate, gbps(10));
  EXPECT_DOUBLE_EQ(profile_volume(c.profile), gbps(4) * 200.0);
  EXPECT_EQ(idc.stats().shaped, 1u);
  EXPECT_EQ(idc.stats().defragmented, 0u);
  EXPECT_EQ(idc.stats().rerouted, 0u);

  // The guarantee the data plane should follow steps with the profile.
  EXPECT_DOUBLE_EQ(c.rate_at(150.0), gbps(2));
  EXPECT_DOUBLE_EQ(c.rate_at(230.0), gbps(10));
  EXPECT_DOUBLE_EQ(c.rate_at(280.0), 0.0);
}

TEST(MalleableShaping, StepCapBoundsProfileAndSubRateCapIsInvalid) {
  DiamondFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
  ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());

  // Shaped demand with steps capped at 5G: the post-drain segment runs
  // longer at the lower rate (2G x 100 + 5G x 200 = the full 1200 Gbit),
  // instead of grabbing all 10G of headroom.
  ReservationRequest req = f.request(100, 400, gbps(4), true);
  req.max_bandwidth = gbps(5);
  const auto r = idc.create_reservation(req);
  ASSERT_TRUE(r.accepted());
  const Circuit& c = idc.circuit(*r.circuit_id);
  ASSERT_FALSE(c.profile.empty());
  for (const RateSegment& s : c.profile) EXPECT_LE(s.rate, gbps(5));
  EXPECT_DOUBLE_EQ(profile_volume(c.profile), gbps(4) * 300.0);

  // A cap below the preferred flat rate cannot carry even the flat shape.
  ReservationRequest bad = f.request(100, 300, gbps(4), true);
  bad.max_bandwidth = gbps(3);
  const auto rejected = idc.create_reservation(bad);
  ASSERT_FALSE(rejected.accepted());
  EXPECT_EQ(rejected.reason, RejectReason::kInvalidRequest);
}

TEST(MalleableShaping, DefragDisplacesScheduledMalleableCircuit) {
  LineFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  // A malleable circuit holding 6G flat over [100, 400) fragments the
  // calendar: only 4G is left for anyone else in that window.
  const auto m = idc.create_reservation(f.request(100, 400, gbps(6), true));
  ASSERT_TRUE(m.accepted());
  ASSERT_TRUE(idc.circuit(*m.circuit_id).profile.empty());

  // 8G x 100 s = 800 Gbit by t=200 does not fit around the 6G booking
  // (4G x 100 s = 400 Gbit of slack), and there is no detour. Displacing
  // the malleable booking opens the gap: the new request takes 10G for
  // 80 s and the displaced circuit re-packs behind it.
  const auto r = idc.create_reservation(f.request(100, 200, gbps(8), true));
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(idc.stats().shaped, 1u);
  EXPECT_EQ(idc.stats().defragmented, 1u);

  const Circuit& winner = idc.circuit(*r.circuit_id);
  ASSERT_FALSE(winner.profile.empty());
  EXPECT_DOUBLE_EQ(profile_volume(winner.profile), gbps(8) * 100.0);
  EXPECT_DOUBLE_EQ(winner.profile.front().start, 100.0);

  // The displaced circuit still delivers its full volume by its deadline.
  const Circuit& moved = idc.circuit(*m.circuit_id);
  ASSERT_FALSE(moved.profile.empty());
  EXPECT_DOUBLE_EQ(profile_volume(moved.profile), gbps(6) * 300.0);
  EXPECT_LE(moved.profile.back().end, 400.0);

  // Nothing was double-booked: both profiles fit the calendar they are
  // booked in, so the link never exceeds capacity at any instant.
  EXPECT_EQ(idc.calendar().active_bookings(), 2u);
}

TEST(MalleableShaping, DefragAfterNominalActivationNeverBooksInThePast) {
  // Regression: a shaped *scheduled* circuit can sit with its nominal
  // activation already behind the clock — only its profile start has to
  // be in the future. Re-packing such a circuit during defrag used to
  // fill from the nominal activation, booking segments (and re-anchoring
  // the activate event) in the past once the blocker that had pushed the
  // profile late was released — the simulator then threw on
  // schedule-in-the-past. The re-pack must floor at now while still
  // delivering the full admitted volume.
  LineFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  // Two back-to-back flat blockers saturate [10, 300); the malleable
  // circuit M (2G x [10, 500), volume 980 Gbit) shapes behind them into
  // [300, 398) @ 10G, with nominal activation t=10.
  ASSERT_TRUE(idc.create_reservation(f.request(10, 100, gbps(10))).accepted());
  ASSERT_TRUE(idc.create_reservation(f.request(100, 300, gbps(10))).accepted());
  const auto m = idc.create_reservation(f.request(10, 500, gbps(2), true));
  ASSERT_TRUE(m.accepted());
  ASSERT_DOUBLE_EQ(idc.circuit(*m.circuit_id).profile.front().start, 300.0);

  // t=150: the first blocker has released, so the calendar again shows
  // headroom over the *past* window [10, 100). M is still kScheduled
  // (profile starts at 300) but its activation (10) is behind now.
  f.sim.run_until(150.0);
  ASSERT_EQ(idc.circuit(*m.circuit_id).state, CircuitState::kScheduled);

  // 10G x [300, 400) forces defrag to displace M. The re-pack must land
  // entirely in the future and still carry M's full admitted volume.
  const auto r = idc.create_reservation(f.request(300, 400, gbps(10), true));
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(idc.stats().defragmented, 1u);

  const Circuit& moved = idc.circuit(*m.circuit_id);
  ASSERT_FALSE(moved.profile.empty());
  EXPECT_GE(moved.profile.front().start, 150.0);
  EXPECT_LE(moved.profile.back().end, 500.0);
  EXPECT_DOUBLE_EQ(profile_volume(moved.profile), gbps(2) * 490.0);

  // Both circuits activate and drain cleanly — the re-anchored activate
  // event is in the future, so the run completes without throwing.
  f.sim.run();
  EXPECT_EQ(idc.circuit(*m.circuit_id).state, CircuitState::kReleased);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kReleased);
  EXPECT_EQ(idc.calendar().active_bookings(), 0u);
}

TEST(MalleableShaping, RerouteShapesOntoDetourWhenPrimaryIsFull) {
  DiamondFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  // Short branch: saturated (non-malleable, so defrag cannot touch it).
  ASSERT_TRUE(idc.create_reservation(f.request(100, 300, gbps(10))).accepted());
  // Long branch: 8G booked over the first half, then free.
  ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());

  // 4G x 200 s: no flat fit anywhere, the primary (short) branch has
  // zero headroom to shape into, but the detour can carry the volume.
  const auto r = idc.create_reservation(f.request(100, 300, gbps(4), true));
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(idc.stats().rerouted, 1u);
  const Circuit& c = idc.circuit(*r.circuit_id);
  EXPECT_EQ(c.path, (net::Path{f.a_r2, f.r2_b}));
  EXPECT_DOUBLE_EQ(profile_volume(c.profile), gbps(4) * 200.0);
}

TEST(MalleableShaping, ShapedCircuitActivatesAndReleasesOnProfileBounds) {
  DiamondFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
  ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
  std::optional<Seconds> active_at, released_at;
  const auto r = idc.create_reservation(
      f.request(100, 300, gbps(4), true),
      [&](const Circuit&) { active_at = f.sim.now(); },
      [&](const Circuit&) { released_at = f.sim.now(); });
  ASSERT_TRUE(r.accepted());
  f.sim.run();
  // Activation at the first profile step; release when the volume is
  // delivered (t=260), not at the nominal end_time (t=300).
  ASSERT_TRUE(active_at.has_value());
  EXPECT_DOUBLE_EQ(*active_at, 100.0);
  ASSERT_TRUE(released_at.has_value());
  EXPECT_DOUBLE_EQ(*released_at, 260.0);
  EXPECT_EQ(idc.circuit(*r.circuit_id).state, CircuitState::kReleased);
  EXPECT_EQ(idc.calendar().active_bookings(), 0u);
}

// ---------------------------------------------------------------------------
// Differential guarantees vs fixed-window admission
// ---------------------------------------------------------------------------

TEST(MalleableDifferential, AdmitsSupersetOfFixedWindowOnRandomLoads) {
  // For any randomized prior state, a request the fixed-window scheduler
  // admits is also admitted malleable (the flat shape is always among
  // the shaper's candidates) — and some rejected requests get in.
  Rng root(0xC0FFEEu);
  std::size_t malleable_only = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Rng rng = root.fork(static_cast<std::uint64_t>(trial));
    DiamondFixture fixed;
    DiamondFixture flex;
    Idc idc_fixed(fixed.sim, fixed.topo, immediate_config());
    Idc idc_flex(flex.sim, flex.topo, immediate_config());

    // Identical randomized background load, flat in both.
    const int load = static_cast<int>(rng.uniform_int(3, 8));
    for (int i = 0; i < load; ++i) {
      const Seconds start = rng.uniform(10.0, 500.0);
      const Seconds dur = rng.uniform(50.0, 300.0);
      const BitsPerSecond bw = gbps(rng.uniform(1.0, 6.0));
      const auto a = idc_fixed.create_reservation(fixed.request(start, start + dur, bw));
      const auto b = idc_flex.create_reservation(flex.request(start, start + dur, bw));
      ASSERT_EQ(a.accepted(), b.accepted()) << "trial " << trial << " load " << i;
    }

    // One probe demand, fixed-window vs malleable.
    const Seconds start = rng.uniform(10.0, 400.0);
    const Seconds dur = rng.uniform(50.0, 400.0);
    const BitsPerSecond bw = gbps(rng.uniform(2.0, 9.0));
    const bool fixed_ok =
        idc_fixed.create_reservation(fixed.request(start, start + dur, bw)).accepted();
    const bool flex_ok =
        idc_flex.create_reservation(flex.request(start, start + dur, bw, true)).accepted();
    EXPECT_TRUE(!fixed_ok || flex_ok)
        << "trial " << trial << ": fixed-window admitted a request malleable rejected";
    if (flex_ok && !fixed_ok) ++malleable_only;
  }
  // Strict superset: the seed is chosen so shaping actually rescues some
  // demands, not just matches fixed-window admission.
  EXPECT_GT(malleable_only, 0u);
}

TEST(MalleableDifferential, RejectionReinstatesCalendarByteForByte) {
  LineFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  // Fragmented load with a displaceable malleable circuit in the middle,
  // so the doomed admission below walks the whole machinery — shaping,
  // defrag (displace + re-pack + rollback) — before giving up.
  ASSERT_TRUE(idc.create_reservation(f.request(100, 400, gbps(4))).accepted());
  ASSERT_TRUE(idc.create_reservation(f.request(100, 400, gbps(6), true)).accepted());

  const auto n_links = static_cast<LinkId>(f.topo.link_count());
  std::vector<std::vector<std::pair<Seconds, RateKbps>>> before;
  for (LinkId l = 0; l < n_links; ++l) {
    before.push_back(idc.calendar().link_deltas(l));
  }
  const std::size_t bookings_before = idc.calendar().active_bookings();

  // 8G x 350 s = 2800 Gbit by t=450. Even with the malleable circuit
  // displaced, the link can carry at most 6G x 300 + 10G x 50 = 2300 Gbit
  // of this demand; defrag must roll back and the request is rejected.
  const auto r = idc.create_reservation(f.request(100, 450, gbps(8), true));
  ASSERT_FALSE(r.accepted());
  EXPECT_EQ(r.reason, RejectReason::kInsufficientBandwidth);

  // The calendar is exactly what it was: same delta sequence on every
  // link, bit for bit, and the same booking count.
  for (LinkId l = 0; l < n_links; ++l) {
    EXPECT_EQ(idc.calendar().link_deltas(l), before[l]) << "link " << l;
  }
  EXPECT_EQ(idc.calendar().active_bookings(), bookings_before);
  // The displaced circuit's lifecycle record is untouched too.
  EXPECT_EQ(idc.stats().defragmented, 0u);
}

// ---------------------------------------------------------------------------
// Stats contract (satellite: rejection_rate vs blocking_probability)
// ---------------------------------------------------------------------------

TEST(IdcStatsContract, RejectionRateIncludesOutagesExcludesRetries) {
  Idc::Stats s;
  s.accepted = 6;
  s.rejected_no_bandwidth = 1;
  s.rejected_no_route = 0;
  s.rejected_invalid = 0;
  s.rejected_outage = 2;
  s.rejected_retries = 5;  // re-rejections: already counted once each
  // Client-observed: 3 rejections out of 9 first-submission outcomes.
  EXPECT_DOUBLE_EQ(s.rejection_rate(), 3.0 / 9.0);
  // Admission-verdict: outage fail-fasts never reached admission.
  EXPECT_DOUBLE_EQ(s.blocking_probability(), 1.0 / 7.0);
}

TEST(IdcStatsContract, OutageFailFastCountsInRejectionRateEndToEnd) {
  DiamondFixture f;
  Idc idc(f.sim, f.topo, immediate_config());
  idc.begin_outage();
  ASSERT_FALSE(idc.create_reservation(f.request(100, 200, gbps(2))).accepted());
  idc.end_outage();
  ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(2))).accepted());
  EXPECT_DOUBLE_EQ(idc.stats().rejection_rate(), 0.5);
  EXPECT_DOUBLE_EQ(idc.stats().blocking_probability(), 0.0);
}

// ---------------------------------------------------------------------------
// Journal recovery boundaries (satellite: exactly-expired windows)
// ---------------------------------------------------------------------------

TEST(MalleableJournal, ExactlyExpiredFlatRecordIsTombstonedNotRebooked) {
  recovery::Journal journal;
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kHost);
  const NodeId r = topo.add_node("r", NodeKind::kRouter);
  const NodeId b = topo.add_node("b", NodeKind::kHost);
  topo.add_link(a, r, gbps(10), 0.001);
  topo.add_link(r, b, gbps(10), 0.001);

  IdcConfig cfg = immediate_config();
  cfg.journal = &journal;
  std::optional<std::uint64_t> id;
  {
    sim::Simulator sim;
    Idc idc(sim, topo, cfg);
    ReservationRequest req;
    req.src = a;
    req.dst = b;
    req.bandwidth = gbps(4);
    req.start_time = 10.0;
    req.end_time = 80.0;
    const auto res = idc.create_reservation(req);
    ASSERT_TRUE(res.accepted());
    id = res.circuit_id;
    // The process dies before the window ends: no release, no tombstone.
  }

  // Restart at *exactly* the record's end time: zero seconds remain, so
  // the record must be tombstoned — a zero-length rebook would be a
  // degenerate calendar entry.
  sim::Simulator sim2;
  sim2.run_until(80.0);
  Idc restarted(sim2, topo, cfg);
  EXPECT_EQ(restarted.recover_from_journal(), 0u);
  EXPECT_EQ(restarted.live_circuit_count(), 0u);
  EXPECT_EQ(restarted.calendar().active_bookings(), 0u);
  EXPECT_THROW(restarted.circuit(*id), gridvc::PreconditionError);

  // The tombstone stuck: a second restart sees nothing either.
  sim::Simulator sim3;
  sim3.run_until(90.0);
  Idc again(sim3, topo, cfg);
  EXPECT_EQ(again.recover_from_journal(), 0u);
}

TEST(MalleableJournal, ExactlyExpiredShapedRecordIsTombstonedNotRebooked) {
  recovery::Journal journal;
  DiamondFixture f;
  IdcConfig cfg = immediate_config();
  cfg.journal = &journal;
  Seconds profile_end = 0.0;
  std::optional<std::uint64_t> id;
  {
    Idc idc(f.sim, f.topo, cfg);
    ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
    ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
    const auto r = idc.create_reservation(f.request(100, 300, gbps(4), true));
    ASSERT_TRUE(r.accepted());
    id = r.circuit_id;
    const Circuit& c = idc.circuit(*r.circuit_id);
    ASSERT_FALSE(c.profile.empty());
    profile_end = c.profile.back().end;  // t=260, before end_time 300
  }

  // A shaped record expires at its *profile* end, not the nominal
  // end_time: restarting exactly there must tombstone it.
  sim::Simulator sim2;
  sim2.run_until(profile_end);
  Idc restarted(sim2, f.topo, cfg);
  // The two flat records expired at t=200; the shaped one at t=260.
  EXPECT_EQ(restarted.recover_from_journal(), 0u);
  EXPECT_EQ(restarted.live_circuit_count(), 0u);
  EXPECT_THROW(restarted.circuit(*id), gridvc::PreconditionError);
}

TEST(MalleableJournal, ShapedProfileSurvivesRecoveryClippedToNow) {
  recovery::Journal journal;
  DiamondFixture f;
  IdcConfig cfg = immediate_config();
  cfg.journal = &journal;
  std::optional<std::uint64_t> id;
  {
    Idc idc(f.sim, f.topo, cfg);
    ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
    ASSERT_TRUE(idc.create_reservation(f.request(100, 200, gbps(8))).accepted());
    const auto r = idc.create_reservation(f.request(100, 300, gbps(4), true));
    ASSERT_TRUE(r.accepted());
    id = r.circuit_id;
  }

  // Restart mid-profile: the remaining shaped window is rebooked (only
  // the live record survives; the flat ones expired at t=200).
  sim::Simulator sim2;
  sim2.run_until(230.0);
  Idc restarted(sim2, f.topo, cfg);
  EXPECT_EQ(restarted.recover_from_journal(), 1u);
  const Circuit& c = restarted.circuit(*id);
  ASSERT_FALSE(c.profile.empty());
  // Original profile: [100,200)@2G + [200,260)@10G. Clipped to now=230
  // only [230,260)@10G survives — 300 Gbit still owed.
  EXPECT_DOUBLE_EQ(c.profile.front().start, 230.0);
  EXPECT_DOUBLE_EQ(c.profile.back().end, 260.0);
  EXPECT_DOUBLE_EQ(profile_volume(c.profile), gbps(10) * 30.0);
  EXPECT_EQ(restarted.calendar().active_bookings(), 1u);
  sim2.run();
  EXPECT_EQ(restarted.circuit(*id).state, CircuitState::kReleased);
  EXPECT_EQ(restarted.calendar().active_bookings(), 0u);
}

}  // namespace
}  // namespace gridvc::vc
