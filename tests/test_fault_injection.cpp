// Link up/down dynamics, down-link allocation, and the stochastic
// FaultInjector (the failure substrate the circuit/GridFTP failure
// semantics are built on).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "net/fair_share.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"

namespace gridvc::net {
namespace {

struct Fixture {
  sim::Simulator sim;
  Topology topo;
  NodeId a, b, c;
  LinkId ab, bc;
  std::unique_ptr<Network> network;

  Fixture() {
    a = topo.add_node("a", NodeKind::kHost);
    b = topo.add_node("b", NodeKind::kRouter);
    c = topo.add_node("c", NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(10), 0.005);
    bc = topo.add_link(b, c, gbps(10), 0.005);
    network = std::make_unique<Network>(sim, topo);
  }
};

// ---------------------------------------------------------------------------
// Allocator: down links are zero capacity
// ---------------------------------------------------------------------------

TEST(FaultFairShare, DownLinkGetsZeroAllocation) {
  Topology topo;
  const auto a = topo.add_node("a", NodeKind::kHost);
  const auto b = topo.add_node("b", NodeKind::kHost);
  const auto c = topo.add_node("c", NodeKind::kHost);
  const LinkId ab = topo.add_link(a, b, gbps(10), 0.001);
  const LinkId bc = topo.add_link(b, c, gbps(10), 0.001);

  std::vector<FlowDemand> flows(2);
  flows[0].path = {ab, bc};  // crosses the dead link
  flows[1].path = {bc};      // unaffected
  std::vector<char> link_up = {0, 1};  // ab down

  const Allocation alloc = max_min_allocate(topo, flows, link_up);
  EXPECT_DOUBLE_EQ(alloc.rates[0], 0.0);
  EXPECT_DOUBLE_EQ(alloc.rates[1], gbps(10));
}

TEST(FaultFairShare, DownLinkZeroesGuaranteesToo) {
  Topology topo;
  const auto a = topo.add_node("a", NodeKind::kHost);
  const auto b = topo.add_node("b", NodeKind::kHost);
  const LinkId ab = topo.add_link(a, b, gbps(10), 0.001);

  std::vector<FlowDemand> flows(1);
  flows[0].path = {ab};
  flows[0].guarantee = gbps(4);
  std::vector<char> link_up = {0};

  const Allocation alloc = max_min_allocate(topo, flows, link_up);
  EXPECT_DOUBLE_EQ(alloc.rates[0], 0.0);
}

TEST(FaultFairShare, EmptyLinkStateMeansAllUp) {
  Topology topo;
  const auto a = topo.add_node("a", NodeKind::kHost);
  const auto b = topo.add_node("b", NodeKind::kHost);
  const LinkId ab = topo.add_link(a, b, gbps(10), 0.001);

  std::vector<FlowDemand> flows(1);
  flows[0].path = {ab};
  const Allocation with_empty = max_min_allocate(topo, flows, {});
  const Allocation two_arg = max_min_allocate(topo, flows);
  EXPECT_DOUBLE_EQ(with_empty.rates[0], gbps(10));
  EXPECT_DOUBLE_EQ(two_arg.rates[0], gbps(10));
}

// ---------------------------------------------------------------------------
// Network link state
// ---------------------------------------------------------------------------

TEST(LinkState, FlowStallsAndResumesAcrossOutage) {
  Fixture f;
  FlowRecord record{};
  f.network->start_flow({f.ab, f.bc}, GiB, {},
                        [&](const FlowRecord& r) { record = r; });
  f.sim.schedule_at(0.1, [&] { f.network->set_link_state(f.ab, false); });
  f.sim.schedule_at(0.2, [&] {
    // Mid-outage: the flow is still active but completely stalled.
    EXPECT_FALSE(f.network->link_up(f.ab));
    EXPECT_EQ(f.network->active_flow_count(), 1u);
    EXPECT_DOUBLE_EQ(f.network->current_rate(1), 0.0);
  });
  f.sim.schedule_at(10.1, [&] { f.network->set_link_state(f.ab, true); });
  f.sim.run();

  EXPECT_TRUE(f.network->link_up(f.ab));
  EXPECT_EQ(record.outcome, FlowOutcome::kCompleted);
  EXPECT_EQ(record.delivered, GiB);
  // GiB at 10G is ~0.86s; the 10s outage pushed completion past it.
  EXPECT_GT(record.end_time, 10.0);
}

TEST(LinkState, FlowStartedWhileLinkDownWaitsForRepair) {
  Fixture f;
  f.network->set_link_state(f.ab, false);
  FlowRecord record{};
  f.network->start_flow({f.ab}, 100 * MiB, {},
                        [&](const FlowRecord& r) { record = r; });
  f.sim.schedule_at(5.0, [&] { f.network->set_link_state(f.ab, true); });
  f.sim.run();
  EXPECT_EQ(record.outcome, FlowOutcome::kCompleted);
  EXPECT_GT(record.end_time, 5.0);
}

TEST(LinkState, OptedInFlowAbortsWithDeliveredBytes) {
  Fixture f;
  FlowOptions opts;
  opts.fail_on_link_down = true;
  FlowRecord record{};
  f.network->start_flow({f.ab, f.bc}, GiB, opts,
                        [&](const FlowRecord& r) { record = r; });
  // A second, non-opted-in flow on the same path must survive.
  f.network->start_flow({f.ab, f.bc}, GiB, {}, nullptr);
  f.sim.schedule_at(0.4, [&] { f.network->set_link_state(f.ab, false); });
  f.sim.run_until(0.5);

  EXPECT_EQ(record.outcome, FlowOutcome::kFailed);
  EXPECT_EQ(record.id, 1u);
  EXPECT_DOUBLE_EQ(record.end_time, 0.4);
  // 0.4s at a 5G fair share = 250 MB on the wire before the cut.
  EXPECT_NEAR(static_cast<double>(record.delivered), 0.4 * gbps(5) / 8.0, MiB);
  EXPECT_LT(record.delivered, record.size);
  EXPECT_EQ(f.network->active_flow_count(), 1u);  // the stalled survivor
}

TEST(LinkState, SetLinkStateIsIdempotentPerState) {
  Fixture f;
  f.network->set_link_state(f.ab, false);
  f.network->set_link_state(f.ab, false);  // no double-count
  f.network->set_link_state(f.ab, true);
  f.network->set_link_state(f.ab, true);
  const auto snap = f.sim.obs().registry().snapshot();
  EXPECT_DOUBLE_EQ(snap.value("gridvc_net_link_failures"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_net_link_repairs"), 1.0);
}

TEST(LinkState, DowntimeHistogramRecordsOutage) {
  Fixture f;
  f.sim.schedule_at(1.0, [&] { f.network->set_link_state(f.ab, false); });
  f.sim.schedule_at(31.0, [&] { f.network->set_link_state(f.ab, true); });
  f.sim.run();
  const auto snap = f.sim.obs().registry().snapshot();
  const auto* entry = snap.find("gridvc_net_link_downtime_seconds");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->histogram.total, 1u);
  EXPECT_DOUBLE_EQ(entry->histogram.sum, 30.0);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, DisabledWhenMtbfNonPositive) {
  Fixture f;
  FaultInjectorConfig cfg;
  cfg.targets = {f.ab};
  cfg.mtbf = 0.0;
  FaultInjector injector(*f.network, cfg, Rng(7));
  f.sim.run();
  EXPECT_EQ(injector.stats().failures, 0u);
  EXPECT_DOUBLE_EQ(f.sim.now(), 0.0);  // nothing was ever scheduled
}

TEST(FaultInjector, EveryFailureHealsAndQueueDrains) {
  Fixture f;
  FaultInjectorConfig cfg;
  cfg.targets = {f.ab, f.bc};
  cfg.mtbf = 50.0;
  cfg.mttr = 10.0;
  cfg.horizon = 1000.0;
  FaultInjector injector(*f.network, cfg, Rng(7));
  f.sim.run();  // terminates: no failures scheduled past the horizon
  EXPECT_GT(injector.stats().failures, 0u);
  EXPECT_EQ(injector.stats().failures, injector.stats().repairs);
  EXPECT_TRUE(f.network->link_up(f.ab));
  EXPECT_TRUE(f.network->link_up(f.bc));
}

TEST(FaultInjector, DeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    Fixture f;
    obs::RingBufferTraceSink ring(4096);
    f.sim.obs().set_trace_sink(&ring);
    FaultInjectorConfig cfg;
    cfg.targets = {f.ab, f.bc};
    cfg.mtbf = 40.0;
    cfg.mttr = 15.0;
    cfg.horizon = 2000.0;
    FaultInjector injector(*f.network, cfg, Rng(seed));
    f.sim.run();
    std::vector<obs::TraceEvent> flaps;
    for (const auto& e : ring.events()) {
      if (e.type == obs::TraceEventType::kLinkDown ||
          e.type == obs::TraceEventType::kLinkUp) {
        flaps.push_back(e);
      }
    }
    return std::make_pair(injector.stats(), flaps);
  };
  const auto [stats1, flaps1] = run(123);
  const auto [stats2, flaps2] = run(123);
  const auto [stats3, flaps3] = run(456);

  EXPECT_EQ(stats1.failures, stats2.failures);
  ASSERT_EQ(flaps1.size(), flaps2.size());
  for (std::size_t i = 0; i < flaps1.size(); ++i) {
    EXPECT_DOUBLE_EQ(flaps1[i].time, flaps2[i].time);
    EXPECT_EQ(flaps1[i].type, flaps2[i].type);
    EXPECT_EQ(flaps1[i].id, flaps2[i].id);
  }
  // A different seed produces a different fault series.
  EXPECT_TRUE(stats3.failures != stats1.failures ||
              flaps3.size() != flaps1.size() ||
              (!flaps3.empty() && flaps3[0].time != flaps1[0].time));
}

TEST(FaultInjector, CallbacksSeePostTransitionState) {
  Fixture f;
  FaultInjectorConfig cfg;
  cfg.targets = {f.ab};
  cfg.mtbf = 30.0;
  cfg.mttr = 5.0;
  cfg.horizon = 200.0;
  int down_calls = 0, up_calls = 0;
  FaultInjector injector(
      *f.network, cfg, Rng(3),
      [&](LinkId link) {
        ++down_calls;
        EXPECT_EQ(link, f.ab);
        EXPECT_FALSE(f.network->link_up(link));  // Network already switched
      },
      [&](LinkId link) {
        ++up_calls;
        EXPECT_TRUE(f.network->link_up(link));
      });
  f.sim.run();
  EXPECT_EQ(static_cast<std::uint64_t>(down_calls), injector.stats().failures);
  EXPECT_EQ(static_cast<std::uint64_t>(up_calls), injector.stats().repairs);
  EXPECT_GT(down_calls, 0);
}

TEST(FaultInjector, NoFailuresBeforeStartAfter) {
  Fixture f;
  obs::RingBufferTraceSink ring(4096);
  f.sim.obs().set_trace_sink(&ring);
  FaultInjectorConfig cfg;
  cfg.targets = {f.ab};
  cfg.mtbf = 10.0;
  cfg.mttr = 2.0;
  cfg.start_after = 100.0;
  cfg.horizon = 400.0;
  FaultInjector injector(*f.network, cfg, Rng(9));
  f.sim.run();
  EXPECT_GT(injector.stats().failures, 0u);
  for (const auto& e : ring.events()) {
    if (e.type == obs::TraceEventType::kLinkDown) EXPECT_GT(e.time, 100.0);
  }
}

TEST(FaultInjector, RejectsMalformedConfig) {
  Fixture f;
  FaultInjectorConfig cfg;
  cfg.targets = {f.ab};
  cfg.mtbf = 10.0;
  cfg.mttr = 0.0;  // enabled but unrepairable
  cfg.horizon = 100.0;
  EXPECT_THROW(FaultInjector(*f.network, cfg, Rng(1)), PreconditionError);

  cfg.mttr = 5.0;
  cfg.horizon = 0.0;  // enabled but no failure window
  EXPECT_THROW(FaultInjector(*f.network, cfg, Rng(1)), PreconditionError);

  cfg.horizon = 100.0;
  cfg.targets = {99};  // out of range
  EXPECT_THROW(FaultInjector(*f.network, cfg, Rng(1)), PreconditionError);
}

TEST(FaultInjector, DestructionCancelsPendingEvents) {
  Fixture f;
  std::uint64_t downs = 0;
  {
    FaultInjectorConfig cfg;
    cfg.targets = {f.ab};
    cfg.mtbf = 10.0;
    cfg.mttr = 5.0;
    cfg.horizon = 1000.0;
    FaultInjector injector(*f.network, cfg, Rng(7), [&](LinkId) { ++downs; });
  }
  // The injector died with its first failure still scheduled; the event
  // must not fire into the destroyed instance.
  f.sim.run();
  EXPECT_EQ(downs, 0u);
  EXPECT_TRUE(f.network->link_up(f.ab));
}

TEST(FaultInjector, SkipsLinksAlreadyHeldDown) {
  Fixture f;
  // A scripted outage (another injector, a chaos schedule) holds ab down
  // across the injector's whole failure window.
  f.network->set_link_state(f.ab, false);
  FaultInjectorConfig cfg;
  cfg.targets = {f.ab};
  cfg.mtbf = 5.0;
  cfg.mttr = 1.0;
  cfg.horizon = 100.0;
  FaultInjector injector(*f.network, cfg, Rng(3));
  f.sim.run();
  // No double-counted failure, and no repair cutting the scripted outage
  // short out from under its owner.
  EXPECT_EQ(injector.stats().failures, 0u);
  EXPECT_EQ(injector.stats().repairs, 0u);
  EXPECT_FALSE(f.network->link_up(f.ab));
}

}  // namespace
}  // namespace gridvc::net
