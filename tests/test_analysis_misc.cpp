#include <gtest/gtest.h>

#include "analysis/stream_analysis.hpp"
#include "analysis/throughput_analysis.hpp"
#include "analysis/timeofday_analysis.hpp"
#include "common/error.hpp"

namespace gridvc::analysis {
namespace {

using gridftp::TransferLog;
using gridftp::TransferRecord;

TransferRecord make(Bytes size, double throughput_mbps, int streams = 1, int stripes = 1,
                    double start = 0.0) {
  TransferRecord r;
  r.size = size;
  r.start_time = start;
  r.duration = static_cast<double>(size) * 8.0 / mbps(throughput_mbps);
  r.server_host = "srv";
  r.remote_host = "remote";
  r.streams = streams;
  r.stripes = stripes;
  return r;
}

TEST(ThroughputAnalysis, SummaryInMbps) {
  TransferLog log{make(GiB, 100), make(GiB, 300)};
  const auto s = throughput_summary_mbps(log);
  EXPECT_NEAR(s.min, 100.0, 0.01);
  EXPECT_NEAR(s.max, 300.0, 0.01);
  EXPECT_NEAR(s.mean, 200.0, 0.01);
}

TEST(ThroughputAnalysis, DurationSummary) {
  TransferLog log{make(GiB, 100), make(GiB, 200)};
  const auto s = duration_summary_seconds(log);
  EXPECT_GT(s.max, s.min);
  EXPECT_EQ(s.count, 2u);
}

TEST(ThroughputAnalysis, EmptyLogThrows) {
  EXPECT_THROW(throughput_summary_mbps({}), gridvc::PreconditionError);
}

TEST(ThroughputAnalysis, FilterBySize) {
  TransferLog log{make(MiB, 100), make(4 * GiB + MiB, 100), make(16 * GiB + MiB, 100)};
  const auto mid = filter_by_size(log, 4 * GiB, 5 * GiB);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].size, 4 * GiB + MiB);
  EXPECT_THROW(filter_by_size(log, GiB, GiB), gridvc::PreconditionError);
}

TEST(ThroughputAnalysis, FilterByPredicate) {
  TransferLog log{make(MiB, 100, 1), make(MiB, 100, 8)};
  const auto eight = filter(log, [](const TransferRecord& r) { return r.streams == 8; });
  ASSERT_EQ(eight.size(), 1u);
  EXPECT_EQ(eight[0].streams, 8);
}

TEST(ThroughputAnalysis, GroupByStripes) {
  TransferLog log{make(GiB, 100, 1, 1), make(GiB, 110, 1, 1), make(GiB, 300, 1, 3),
                  make(GiB, 320, 1, 3), make(GiB, 999, 1, 7)};
  const auto groups = throughput_by_stripes(log, 2);
  ASSERT_EQ(groups.size(), 2u);  // the lone 7-stripe transfer is dropped
  EXPECT_NEAR(groups.at(1).median, 105.0, 0.01);
  EXPECT_NEAR(groups.at(3).median, 310.0, 0.01);
}

TEST(ThroughputAnalysis, GroupByYear) {
  TransferLog log{make(GiB, 100, 1, 1, 0.0), make(GiB, 120, 1, 1, 10.0),
                  make(GiB, 300, 1, 1, 1000.0), make(GiB, 280, 1, 1, 1010.0)};
  const auto groups = throughput_by_year(
      log, [](Seconds t) { return t < 500.0 ? 2009 : 2010; });
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_GT(groups.at(2010).median, groups.at(2009).median);
}

TEST(StreamAnalysis, SeparatesGroupsByBin) {
  TransferLog log;
  // 10 MiB files: 1-stream at 50 Mbps, 8-stream at 150 Mbps; 2 GiB files:
  // both 200 Mbps.
  for (int i = 0; i < 5; ++i) {
    log.push_back(make(10 * MiB + static_cast<Bytes>(i), 50, 1));
    log.push_back(make(10 * MiB + static_cast<Bytes>(i), 150, 8));
    log.push_back(make(2 * GiB + static_cast<Bytes>(i), 200, 1));
    log.push_back(make(2 * GiB + static_cast<Bytes>(i), 200, 8));
  }
  const auto cmp = compare_streams(log);
  ASSERT_FALSE(cmp.group_a.points.empty());
  ASSERT_FALSE(cmp.group_b.points.empty());
  // Small-file bin: 8 streams ahead.
  EXPECT_NEAR(cmp.group_a.points[0].median, 50.0, 0.1);
  EXPECT_NEAR(cmp.group_b.points[0].median, 150.0, 0.1);
  // Large-file bin: parity.
  EXPECT_NEAR(cmp.group_a.points.back().median, cmp.group_b.points.back().median, 0.1);
  EXPECT_EQ(cmp.unmatched, 0u);
}

TEST(StreamAnalysis, CountsAndUnmatched) {
  TransferLog log{make(MiB, 10, 1), make(MiB, 10, 4), make(MiB, 10, 8)};
  const auto cmp = compare_streams(log);
  EXPECT_EQ(cmp.unmatched, 1u);  // the 4-stream transfer
  EXPECT_EQ(cmp.group_a.points[0].count, 1u);
}

TEST(StreamAnalysis, MaxSizeFilters) {
  TransferLog log{make(MiB, 10, 1), make(8 * GiB, 10, 1)};
  StreamAnalysisOptions opt;
  const auto cmp = compare_streams(log, opt);
  std::size_t total = 0;
  for (const auto& p : cmp.group_a.points) total += p.count;
  EXPECT_EQ(total, 1u);  // the 8 GiB transfer is out of range
}

TEST(StreamAnalysis, ConvergenceDetection) {
  TransferLog log;
  // Diverge below 512 MiB, converge above.
  for (int i = 0; i < 3; ++i) {
    log.push_back(make(100 * MiB, 50, 1));
    log.push_back(make(100 * MiB, 150, 8));
    log.push_back(make(900 * MiB, 200, 1));
    log.push_back(make(900 * MiB, 205, 8));
    log.push_back(make(2 * GiB, 210, 1));
    log.push_back(make(2 * GiB, 212, 8));
  }
  const auto cmp = compare_streams(log);
  const double conv = convergence_size_mb(cmp);
  EXPECT_GT(conv, 500.0);
  EXPECT_LT(conv, 1000.0);
}

TEST(StreamAnalysis, IdenticalGroupsRejected) {
  StreamAnalysisOptions opt;
  opt.streams_a = opt.streams_b = 4;
  EXPECT_THROW(compare_streams({}, opt), gridvc::PreconditionError);
}

TEST(TimeOfDay, HourMapping) {
  EXPECT_EQ(hour_of_day(0.0), 0);
  EXPECT_EQ(hour_of_day(2.0 * kHour), 2);
  EXPECT_EQ(hour_of_day(kDay + 8.0 * kHour + 100.0), 8);
  EXPECT_EQ(hour_of_day(5.0 * kDay + 23.99 * kHour), 23);
}

TEST(TimeOfDay, ScatterPoints) {
  TransferLog log{make(GiB, 100, 1, 1, 2 * kHour), make(GiB, 200, 1, 1, kDay + 8 * kHour)};
  const auto pts = time_of_day_scatter(log);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_NEAR(pts[0].hour, 2.0, 1e-9);
  EXPECT_NEAR(pts[1].hour, 8.0, 1e-9);
  EXPECT_NEAR(pts[0].throughput_mbps, 100.0, 0.01);
}

TEST(TimeOfDay, GroupsByStartHour) {
  TransferLog log;
  for (int d = 0; d < 4; ++d) {
    log.push_back(make(GiB, 300, 1, 1, d * kDay + 2 * kHour));
    log.push_back(make(GiB, 200, 1, 1, d * kDay + 8 * kHour));
  }
  const auto groups = throughput_by_start_hour(log);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_GT(groups.at(2).median, groups.at(8).median);
  EXPECT_EQ(groups.at(2).count, 4u);
}

}  // namespace
}  // namespace gridvc::analysis
