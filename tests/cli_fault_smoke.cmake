# Smoke test of the fault-injection pipeline: run the faulty-wan scenario
# with a hot fault process, schema-check the trace (which must contain the
# failure-semantics event types), replay it through the analyzer, verify
# the failure counters surface in the metrics snapshot, and check that the
# same seed reproduces a byte-identical snapshot.
set(metrics ${WORKDIR}/fault_smoke.prom)
set(metrics2 ${WORKDIR}/fault_smoke_rerun.prom)
set(trace ${WORKDIR}/fault_smoke.jsonl)

execute_process(
  COMMAND ${SIMULATE} --scenario faulty-wan --transfers 6 --seed 21
          --link-mtbf 60 --link-mttr 15
          --metrics-out ${metrics} --trace-out ${trace}
  RESULT_VARIABLE sim_rc)
if(NOT sim_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-simulate faulty-wan failed: ${sim_rc}")
endif()

execute_process(
  COMMAND ${TRACECHECK} ${trace}
  OUTPUT_VARIABLE check_out
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-trace-check rejected the trace: ${check_rc}")
endif()
string(FIND "${check_out}" "OK," pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "gridvc-trace-check output missing OK:\n${check_out}")
endif()
# The failure-semantics event types must all have fired.
foreach(needle "link_down" "link_up" "vc_failed" "transfer_aborted")
  string(FIND "${check_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace missing event type '${needle}':\n${check_out}")
  endif()
endforeach()

execute_process(
  COMMAND ${ANALYZE} --trace ${trace}
  RESULT_VARIABLE analyze_rc
  OUTPUT_QUIET)
if(NOT analyze_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-analyze --trace failed: ${analyze_rc}")
endif()

# Failure counters surface in the snapshot.
file(READ ${metrics} prom)
foreach(needle "gridvc_net_link_failures" "gridvc_net_link_downtime_seconds"
        "gridvc_vc_failed" "gridvc_vc_resignal_delay_seconds"
        "gridvc_gridftp_aborted_attempts")
  string(FIND "${prom}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "metrics snapshot missing '${needle}':\n${prom}")
  endif()
endforeach()

# Seed determinism with faults enabled: a rerun must produce a
# byte-identical metrics snapshot.
execute_process(
  COMMAND ${SIMULATE} --scenario faulty-wan --transfers 6 --seed 21
          --link-mtbf 60 --link-mttr 15 --metrics-out ${metrics2}
  RESULT_VARIABLE rerun_rc)
if(NOT rerun_rc EQUAL 0)
  message(FATAL_ERROR "gridvc-simulate rerun failed: ${rerun_rc}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${metrics} ${metrics2}
  RESULT_VARIABLE same_rc)
if(NOT same_rc EQUAL 0)
  message(FATAL_ERROR "same seed produced different metrics snapshots")
endif()
