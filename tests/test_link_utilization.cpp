#include "analysis/link_utilization.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace gridvc::analysis {
namespace {

using gridftp::TransferLog;
using gridftp::TransferRecord;

net::SnmpSeries series_of(std::vector<double> bins, Seconds bin = 30.0, Seconds first = 0.0) {
  net::SnmpSeries s;
  s.link = 0;
  s.bin_seconds = bin;
  s.first_bin_start = first;
  s.bins = std::move(bins);
  return s;
}

TransferRecord transfer(double start, double duration, Bytes size) {
  TransferRecord r;
  r.size = size;
  r.start_time = start;
  r.duration = duration;
  return r;
}

TEST(AttributedBytes, WholeBinsOnly) {
  // Transfer exactly covers bins 1 and 2.
  const auto s = series_of({100, 200, 300, 400});
  EXPECT_DOUBLE_EQ(attributed_bytes(s, 30.0, 60.0), 500.0);
}

TEST(AttributedBytes, EdgeBinsProRated) {
  // Eq (1): starts mid-bin-0 (15 s in -> half of bin 0) and ends mid-bin-2
  // (15 s in -> half of bin 2).
  const auto s = series_of({100, 200, 300});
  EXPECT_DOUBLE_EQ(attributed_bytes(s, 15.0, 60.0), 50.0 + 200.0 + 150.0);
}

TEST(AttributedBytes, TransferInsideSingleBin) {
  const auto s = series_of({300});
  // 10 s of a 30 s bin -> a third of the bin's bytes.
  EXPECT_NEAR(attributed_bytes(s, 10.0, 10.0), 100.0, 1e-9);
}

TEST(AttributedBytes, OutsideSeriesIsZero) {
  const auto s = series_of({100, 100});
  EXPECT_DOUBLE_EQ(attributed_bytes(s, 1000.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(attributed_bytes(s, 0.0, 0.0), 0.0);
}

TEST(AttributedBytes, RespectsFirstBinStartOffset) {
  const auto s = series_of({120, 240}, 30.0, /*first=*/60.0);
  // [60, 90) holds 120 bytes; query [75, 90) takes half.
  EXPECT_DOUBLE_EQ(attributed_bytes(s, 75.0, 15.0), 60.0);
}

TEST(AttributedBytes, NegativeDurationThrows) {
  const auto s = series_of({1.0});
  EXPECT_THROW(attributed_bytes(s, 0.0, -1.0), gridvc::PreconditionError);
}

TEST(AttributedBytes, ConservationOverDisjointTransfers) {
  // Disjoint bin-aligned transfers partition the series: their B_i sum to
  // the total bytes of the covered bins.
  std::vector<double> bins;
  gridvc::Rng rng(3);
  for (int i = 0; i < 40; ++i) bins.push_back(rng.uniform(1e6, 1e8));
  const auto s = series_of(bins);
  TransferLog log;
  for (int i = 0; i < 10; ++i) {
    log.push_back(transfer(i * 120.0, 120.0, GiB));  // four bins each
  }
  const auto per = attributed_bytes_per_transfer(s, log);
  double sum = 0.0;
  for (double b : per) sum += b;
  double expected = 0.0;
  for (double b : bins) expected += b;
  EXPECT_NEAR(sum, expected, 1.0);
}

TEST(CorrelateLink, PerfectWhenTransfersDominate) {
  // SNMP bins carry exactly the transfers' bytes: corr(gridftp, B_i) = 1
  // and other-traffic correlation degenerates to 0.
  TransferLog log;
  std::vector<double> bins(40, 0.0);
  gridvc::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const Bytes size = static_cast<Bytes>(rng.uniform(1e8, 4e9));
    log.push_back(transfer(i * 120.0, 120.0, size));
    for (int b = 0; b < 4; ++b) {
      bins[static_cast<std::size_t>(i * 4 + b)] = static_cast<double>(size) / 4.0;
    }
  }
  const auto s = series_of(bins);
  const auto result = correlate_link(s, log);
  EXPECT_NEAR(result.gridftp_vs_total.overall, 1.0, 1e-9);
  EXPECT_NEAR(result.gridftp_vs_other.overall, 0.0, 1e-9);
  EXPECT_EQ(result.load_gbps.count, 10u);
}

TEST(CorrelateLink, IndependentCrossTrafficDecorrelates) {
  // Bins = transfer bytes + heavy independent noise: gridftp-vs-total
  // correlation drops but stays positive; load reflects both components.
  TransferLog log;
  std::vector<double> bins(400, 0.0);
  gridvc::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Bytes size = static_cast<Bytes>(rng.uniform(1e8, 2e9));
    log.push_back(transfer(i * 120.0, 120.0, size));
    for (int b = 0; b < 4; ++b) {
      bins[static_cast<std::size_t>(i * 4 + b)] =
          static_cast<double>(size) / 4.0 + rng.uniform(0.0, 3e9);
    }
  }
  const auto s = series_of(bins);
  const auto result = correlate_link(s, log);
  EXPECT_GT(result.gridftp_vs_total.overall, 0.1);
  EXPECT_LT(result.gridftp_vs_total.overall, 0.95);
  // "Other" bytes are pure noise, independent of transfer size.
  EXPECT_LT(std::abs(result.gridftp_vs_other.overall), 0.25);
}

TEST(CorrelateLink, LoadInGbps) {
  TransferLog log{transfer(0.0, 60.0, GiB)};
  // Two bins of 1 GB each during the transfer: load = 2 GB in 60 s.
  const auto s = series_of({1e9, 1e9});
  const auto result = correlate_link(s, log);
  EXPECT_NEAR(result.load_gbps.mean, 2e9 * 8.0 / 60.0 / 1e9, 1e-9);
}

TEST(CorrelateLink, EmptyLogThrows) {
  const auto s = series_of({1.0});
  EXPECT_THROW(correlate_link(s, {}), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::analysis
