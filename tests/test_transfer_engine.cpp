#include "gridftp/transfer_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gridftp/session.hpp"
#include "net/network.hpp"

namespace gridvc::gridftp {
namespace {

// Deterministic fixture: zero noise, zero loss, so durations are exact.
struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::LinkId ab, ba;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<Server> src_server, dst_server;
  UsageStatsCollector collector;
  std::unique_ptr<TransferEngine> engine;

  explicit Fixture(BitsPerSecond nic = gbps(4), double noise = 0.0) {
    const auto a = topo.add_node("a", net::NodeKind::kHost);
    const auto b = topo.add_node("b", net::NodeKind::kHost);
    auto [fwd, rev] = topo.add_duplex_link(a, b, gbps(10), 0.005);
    ab = fwd;
    ba = rev;
    network = std::make_unique<net::Network>(sim, topo);

    ServerConfig sc;
    sc.name = "src";
    sc.nic_rate = nic;
    src_server = std::make_unique<Server>(sc);
    sc.name = "dst";
    dst_server = std::make_unique<Server>(sc);

    TransferEngineConfig cfg;
    cfg.server_noise_sigma = noise;
    cfg.tcp.loss_probability = 0.0;
    cfg.tcp.stream_buffer = 64 * MiB;  // window never binds at 10 ms RTT
    engine = std::make_unique<TransferEngine>(*network, collector, cfg, Rng(5));
  }

  TransferSpec spec(Bytes size, int streams = 8, int stripes = 1) {
    TransferSpec s;
    s.src = {src_server.get(), IoMode::kMemory};
    s.dst = {dst_server.get(), IoMode::kMemory};
    s.path = {ab};
    s.rtt = 0.01;
    s.size = size;
    s.streams = streams;
    s.stripes = stripes;
    s.remote_host = "b";
    return s;
  }
};

TEST(TransferEngine, SingleTransferAtServerRate) {
  Fixture f;
  std::vector<TransferRecord> done;
  // 1 GiB at 4 Gbps server ceiling -> ~2.15 s (plus small slow-start).
  f.engine->submit(f.spec(GiB), [&](const TransferRecord& r) { done.push_back(r); });
  f.sim.run();
  ASSERT_EQ(done.size(), 1u);
  const double expected = static_cast<double>(GiB) * 8.0 / gbps(4);
  EXPECT_NEAR(done[0].duration, expected, 0.25);
  EXPECT_EQ(done[0].size, GiB);
  EXPECT_EQ(f.collector.received(), 1u);
}

TEST(TransferEngine, RecordCarriesConfiguration) {
  Fixture f;
  std::vector<TransferRecord> done;
  auto s = f.spec(MiB, 4, 1);
  s.type = TransferType::kStore;
  f.engine->submit(s, [&](const TransferRecord& r) { done.push_back(r); });
  f.sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].streams, 4);
  EXPECT_EQ(done[0].stripes, 1);
  EXPECT_EQ(done[0].type, TransferType::kStore);
  EXPECT_EQ(done[0].server_host, "dst");  // STOR logs at the receiving end
  EXPECT_EQ(done[0].remote_host, "b");
}

TEST(TransferEngine, ConcurrentTransfersContendAtServer) {
  Fixture f;
  std::vector<TransferRecord> done;
  // Two simultaneous 1 GiB transfers on a 4 Gbps server: each ~2 Gbps.
  for (int i = 0; i < 2; ++i) {
    f.engine->submit(f.spec(GiB), [&](const TransferRecord& r) { done.push_back(r); });
  }
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  const double solo = static_cast<double>(GiB) * 8.0 / gbps(4);
  for (const auto& r : done) {
    EXPECT_GT(r.duration, 1.8 * solo);
    EXPECT_LT(r.duration, 2.4 * solo);
  }
}

TEST(TransferEngine, LateArrivalSlowsFirstTransfer) {
  Fixture f;
  std::vector<TransferRecord> done;
  f.engine->submit(f.spec(GiB), [&](const TransferRecord& r) { done.push_back(r); });
  f.sim.schedule_at(1.0, [&] {
    f.engine->submit(f.spec(4 * GiB), [&](const TransferRecord& r) { done.push_back(r); });
  });
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  const double solo = static_cast<double>(GiB) * 8.0 / gbps(4);
  EXPECT_GT(done[0].duration, solo * 1.2);  // slowed by the late arrival
}

TEST(TransferEngine, StripesRaiseThroughputWithPool) {
  Fixture f;
  // Give both ends a 3-host pool; a 3-stripe transfer should run ~3x a
  // 1-stripe transfer.
  f.src_server->set_pool_size(3);
  f.dst_server->set_pool_size(3);
  std::vector<TransferRecord> done;
  f.engine->submit(f.spec(GiB, 8, 1), [&](const TransferRecord& r) { done.push_back(r); });
  f.sim.run();
  f.engine->submit(f.spec(GiB, 8, 3), [&](const TransferRecord& r) { done.push_back(r); });
  f.sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_GT(done[0].duration / done[1].duration, 2.0);
}

TEST(TransferEngine, DiskEndpointLimitsThroughput) {
  Fixture f;
  ServerConfig slow_disk;
  slow_disk.name = "diskful";
  slow_disk.nic_rate = gbps(4);
  slow_disk.disk_write_rate = gbps(1);
  Server diskful(slow_disk);
  std::vector<TransferRecord> done;
  auto s = f.spec(GiB);
  s.dst = {&diskful, IoMode::kDiskWrite};
  f.engine->submit(s, [&](const TransferRecord& r) { done.push_back(r); });
  f.sim.run();
  ASSERT_EQ(done.size(), 1u);
  const double expected = static_cast<double>(GiB) * 8.0 / gbps(1);
  EXPECT_NEAR(done[0].duration, expected, 0.5);
}

TEST(TransferEngine, GuaranteeHoldsUnderCrossTraffic) {
  Fixture f(gbps(10));
  // Saturate the link with a best-effort background flow; a 6 Gbps
  // guaranteed transfer must still get its rate.
  f.network->start_flow({f.ab}, static_cast<Bytes>(1) << 50, {}, nullptr);
  std::vector<TransferRecord> done;
  auto s = f.spec(GiB);
  s.guarantee = gbps(6);
  f.engine->submit(s, [&](const TransferRecord& r) { done.push_back(r); });
  f.sim.run_until(1000.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_GE(to_gbps(done[0].throughput()), 5.5);
}

TEST(TransferEngine, SetGuaranteeMidFlight) {
  Fixture f(gbps(10));
  f.network->start_flow({f.ab}, static_cast<Bytes>(1) << 50, {}, nullptr);
  std::vector<TransferRecord> done;
  const auto id =
      f.engine->submit(f.spec(GiB), [&](const TransferRecord& r) { done.push_back(r); });
  // Without a guarantee it shares 10G with the hog (5G each). Granting
  // 8G mid-flight should finish it markedly faster than the 5G baseline.
  f.sim.schedule_at(0.2, [&] { f.engine->set_guarantee(id, gbps(8)); });
  f.sim.run_until(1000.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_GT(to_gbps(done[0].throughput()), 6.0);
}

TEST(TransferEngine, NoiseProducesVariance) {
  Fixture f(gbps(4), /*noise=*/0.3);
  std::vector<double> durations;
  for (int i = 0; i < 40; ++i) {
    f.engine->submit(f.spec(256 * MiB),
                     [&](const TransferRecord& r) { durations.push_back(r.duration); });
    f.sim.run();
  }
  ASSERT_EQ(durations.size(), 40u);
  double lo = durations[0], hi = durations[0];
  for (double d : durations) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GT(hi / lo, 1.3);  // visible spread from lognormal noise
}

// Regression: submit() used size/stripes + 1 for the slow-start stripe
// size while begin_attempt used ceil-division; both now share
// stripe_chunk, whose contract is plain ceil-div.
TEST(TransferEngine, StripeChunkIsCeilDivision) {
  EXPECT_EQ(stripe_chunk(1000, 4), 250u);  // evenly divisible: no +1 slack
  EXPECT_EQ(stripe_chunk(1001, 4), 251u);
  EXPECT_EQ(stripe_chunk(1, 4), 1u);
  EXPECT_EQ(stripe_chunk(7, 1), 7u);
}

// Scheduler-churn regression: N overlapping window-capped transfers must
// stay O(N) in scheduled/cancelled events. The TCP window cap is a
// per-transfer constant, so neither arrivals nor completions change
// anyone else's rate and no completion is ever rescheduled.
TEST(TransferEngine, OverlappingTransfersChurnStaysLinear) {
  sim::Simulator sim;
  net::Topology topo;
  const auto a = topo.add_node("a", net::NodeKind::kHost);
  const auto b = topo.add_node("b", net::NodeKind::kHost);
  auto [fwd, rev] = topo.add_duplex_link(a, b, gbps(10), 0.005);
  (void)rev;
  net::Network network(sim, topo);

  ServerConfig sc;
  sc.name = "src";
  sc.nic_rate = gbps(100);  // shares never bind
  Server src(sc);
  sc.name = "dst";
  Server dst(sc);

  TransferEngineConfig cfg;
  cfg.server_noise_sigma = 0.0;
  cfg.tcp.loss_probability = 0.0;
  cfg.tcp.stream_buffer = 512 * KiB;  // window cap ~419 Mbps at 10 ms RTT
  UsageStatsCollector collector;
  TransferEngine engine(network, collector, cfg, Rng(5));

  const std::uint64_t n = 10;  // 10 * 419 Mbps < 10 Gbps: link never binds
  for (std::uint64_t i = 0; i < n; ++i) {
    TransferSpec s;
    s.src = {&src, IoMode::kMemory};
    s.dst = {&dst, IoMode::kMemory};
    s.path = {fwd};
    s.rtt = 0.01;
    s.size = 100'000'000 + 10'000'000 * i;  // staggered completions
    s.streams = 1;
    s.remote_host = "b";
    engine.submit(s);
  }
  sim.run();
  EXPECT_EQ(engine.stats().completed, n);
  const auto c = engine.sim_counters();
  // Per transfer: one injection event + one flow completion; allow a
  // small constant of slack but nothing resembling O(N^2).
  EXPECT_LE(c.scheduled, 4 * n);
  EXPECT_LE(c.cancelled, n);
  EXPECT_EQ(c.live, 0u);
}

TEST(SessionRunner, SequentialSessionBackToBack) {
  Fixture f;
  SessionRunner runner(f.sim, *f.engine);
  SessionScript script;
  script.file_sizes = {100 * MiB, 100 * MiB, 100 * MiB};
  script.concurrency = 1;
  script.transfer_template = f.spec(0);
  SessionSummary summary;
  runner.run(script, [&](const SessionSummary& s) { summary = s; });
  f.sim.run();
  EXPECT_EQ(summary.transfers, 3u);
  EXPECT_EQ(summary.total_bytes, 300 * MiB);
  EXPECT_GT(summary.duration(), 0.0);
  EXPECT_EQ(runner.active_sessions(), 0u);
  // Log order: strictly sequential starts.
  const auto& log = f.collector.log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_GE(log[1].start_time, log[0].end_time() - 1e-9);
}

TEST(SessionRunner, ConcurrentLanesOverlap) {
  Fixture f;
  SessionRunner runner(f.sim, *f.engine);
  SessionScript script;
  script.file_sizes = std::vector<Bytes>(4, 200 * MiB);
  script.concurrency = 2;
  script.transfer_template = f.spec(0);
  runner.run(script);
  f.sim.run();
  auto log = f.collector.log();
  sort_by_start(log);
  ASSERT_EQ(log.size(), 4u);
  // First two start together (negative inter-transfer gap in the
  // grouping sense).
  EXPECT_LT(log[1].start_time, log[0].end_time());
}

TEST(SessionRunner, InterFileGapDelaysSubmissions) {
  Fixture f;
  SessionRunner runner(f.sim, *f.engine);
  SessionScript script;
  script.file_sizes = {MiB, MiB};
  script.concurrency = 1;
  script.inter_file_gap = 30.0;
  script.transfer_template = f.spec(0);
  runner.run(script);
  f.sim.run();
  const auto& log = f.collector.log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_GE(log[1].start_time - log[0].end_time(), 30.0 - 1e-6);
}

TEST(SessionRunner, ManyConcurrentSessions) {
  Fixture f;
  SessionRunner runner(f.sim, *f.engine);
  int finished = 0;
  for (int i = 0; i < 5; ++i) {
    SessionScript script;
    script.file_sizes = {10 * MiB, 10 * MiB};
    script.transfer_template = f.spec(0);
    runner.run(script, [&](const SessionSummary&) { ++finished; });
  }
  f.sim.run();
  EXPECT_EQ(finished, 5);
  EXPECT_EQ(f.collector.received(), 10u);
}

}  // namespace
}  // namespace gridvc::gridftp
