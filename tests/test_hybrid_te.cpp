#include "vc/hybrid_te.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"

namespace gridvc::vc {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::LinkId ab;
  std::unique_ptr<net::Network> net;

  Fixture() {
    const auto a = topo.add_node("a", net::NodeKind::kHost);
    const auto b = topo.add_node("b", net::NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(10), 0.001);
    net = std::make_unique<net::Network>(sim, topo);
  }

  HybridTeConfig config() {
    HybridTeConfig c;
    c.detector.min_bytes = 100 * MiB;
    c.detector.min_rate = mbps(500);
    c.detector.window = 10.0;
    c.poll_period = 2.0;
    c.circuit_pool = gbps(6);
    c.per_flow_guarantee = gbps(3);
    return c;
  }
};

TEST(HybridTe, RedirectsOnlyTheAlphaFlow) {
  Fixture f;
  HybridTrafficEngineer te(*f.net, f.config());
  // Four slow mice (capped below the rate bar) and one 20 GB alpha flow.
  for (int i = 0; i < 4; ++i) {
    net::FlowOptions mouse;
    mouse.cap = mbps(400);
    f.net->start_flow({f.ab}, static_cast<Bytes>(1) << 50, mouse, nullptr);
  }
  net::FlowRecord alpha_record{};
  const auto alpha =
      f.net->start_flow({f.ab}, 20'000'000'000ULL, {},
                        [&](const net::FlowRecord& r) { alpha_record = r; });
  f.sim.run_until(16.0);
  EXPECT_EQ(te.stats().flows_redirected, 1u);
  EXPECT_EQ(te.stats().redirections_denied, 0u);
  EXPECT_GE(f.net->current_rate(alpha), gbps(3) - 1.0);
  EXPECT_DOUBLE_EQ(te.pool_in_use(), gbps(3));
  f.sim.run_until(200.0);
  // The alpha flow finished; its grant must have been returned.
  EXPECT_GT(alpha_record.end_time, 0.0);
  f.sim.run_until(210.0);  // one more poll to sweep
  EXPECT_DOUBLE_EQ(te.pool_in_use(), 0.0);
  EXPECT_GT(te.stats().redirected_bytes, 1e9);
}

TEST(HybridTe, LeavesMiceAlone) {
  Fixture f;
  HybridTrafficEngineer te(*f.net, f.config());
  // A slow small flow: capped at 50 Mbps.
  net::FlowOptions opts;
  opts.cap = mbps(50);
  f.net->start_flow({f.ab}, 500'000'000, opts, nullptr);
  f.sim.run_until(60.0);
  EXPECT_EQ(te.stats().flows_redirected, 0u);
  EXPECT_GE(te.stats().flows_observed, 1u);
}

TEST(HybridTe, PoolExhaustionDeniesRedirection) {
  Fixture f;
  auto cfg = f.config();
  cfg.circuit_pool = gbps(3);  // room for exactly one grant
  HybridTrafficEngineer te(*f.net, cfg);
  // Two alpha flows, no competition: each runs at 5 Gbps.
  f.net->start_flow({f.ab}, 60'000'000'000ULL, {}, nullptr);
  f.net->start_flow({f.ab}, 60'000'000'000ULL, {}, nullptr);
  f.sim.run_until(40.0);
  EXPECT_EQ(te.stats().flows_redirected, 1u);
  EXPECT_EQ(te.stats().redirections_denied, 1u);
  EXPECT_DOUBLE_EQ(te.pool_in_use(), gbps(3));
}

TEST(HybridTe, GrantClippedToPoolHeadroom) {
  Fixture f;
  auto cfg = f.config();
  cfg.circuit_pool = gbps(4);
  cfg.per_flow_guarantee = gbps(3);
  HybridTrafficEngineer te(*f.net, cfg);
  f.net->start_flow({f.ab}, 60'000'000'000ULL, {}, nullptr);
  f.net->start_flow({f.ab}, 60'000'000'000ULL, {}, nullptr);
  f.sim.run_until(40.0);
  // First grant 3G, second clipped to the remaining 1G.
  EXPECT_EQ(te.stats().flows_redirected, 2u);
  EXPECT_NEAR(te.pool_in_use(), gbps(4), 1.0);
}

TEST(HybridTe, StopHaltsPolling) {
  Fixture f;
  HybridTrafficEngineer te(*f.net, f.config());
  te.stop();
  f.net->start_flow({f.ab}, 60'000'000'000ULL, {}, nullptr);
  f.sim.run_until(60.0);
  EXPECT_EQ(te.stats().flows_observed, 0u);
}

TEST(HybridTe, RejectsBadConfig) {
  Fixture f;
  auto cfg = f.config();
  cfg.poll_period = 0.0;
  EXPECT_THROW(HybridTrafficEngineer(*f.net, cfg), gridvc::PreconditionError);
  auto cfg2 = f.config();
  cfg2.circuit_pool = 0.0;
  EXPECT_THROW(HybridTrafficEngineer(*f.net, cfg2), gridvc::PreconditionError);
}

}  // namespace
}  // namespace gridvc::vc
