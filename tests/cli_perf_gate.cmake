# Regression tests for gridvc-perf-gate itself: the gate must pass
# within-tolerance candidates, fail regressions, fail when a baseline
# ratio_* key is missing from the candidate (a silent rename/drop must
# not pass), and surface the candidate-side half of a rename in its log.
set(baseline ${WORKDIR}/gate_baseline.json)
set(good ${WORKDIR}/gate_good.json)
set(regressed ${WORKDIR}/gate_regressed.json)
set(renamed ${WORKDIR}/gate_renamed.json)

file(WRITE ${baseline} "{\n  \"exhibit\": \"gate_test\",\n  \"counters\": {\n    \"ratio_a\": 1.0,\n    \"ratio_b\": 2.0,\n    \"raw_us\": 12345\n  }\n}\n")
file(WRITE ${good} "{\n  \"exhibit\": \"gate_test\",\n  \"counters\": {\n    \"ratio_a\": 1.1,\n    \"ratio_b\": 1.9,\n    \"raw_us\": 99999\n  }\n}\n")
file(WRITE ${regressed} "{\n  \"exhibit\": \"gate_test\",\n  \"counters\": {\n    \"ratio_a\": 1.6,\n    \"ratio_b\": 2.0\n  }\n}\n")
file(WRITE ${renamed} "{\n  \"exhibit\": \"gate_test\",\n  \"counters\": {\n    \"ratio_a\": 1.0,\n    \"ratio_b_v2\": 2.0\n  }\n}\n")

# Within tolerance: exit 0.
execute_process(
  COMMAND ${GATE} --baseline ${baseline} --current ${good} --tolerance 0.20
  OUTPUT_VARIABLE good_out
  RESULT_VARIABLE good_rc)
if(NOT good_rc EQUAL 0)
  message(FATAL_ERROR "gate failed a within-tolerance candidate: ${good_rc}\n${good_out}")
endif()

# Raw (non-ratio_) counters must not be gated: raw_us octupled above and
# still passed.
string(FIND "${good_out}" "raw_us" raw_pos)
if(NOT raw_pos EQUAL -1)
  message(FATAL_ERROR "gate listed a non-ratio_ key:\n${good_out}")
endif()

# Regression beyond tolerance: exit 1 and name the key.
execute_process(
  COMMAND ${GATE} --baseline ${baseline} --current ${regressed} --tolerance 0.20
  OUTPUT_VARIABLE reg_out
  RESULT_VARIABLE reg_rc)
if(NOT reg_rc EQUAL 1)
  message(FATAL_ERROR "gate did not fail a regressed candidate (rc=${reg_rc})\n${reg_out}")
endif()
string(FIND "${reg_out}" "FAIL ratio_a" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "regression log does not name ratio_a:\n${reg_out}")
endif()
string(FIND "${reg_out}" "1 regressed beyond tolerance" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "summary does not count the regression:\n${reg_out}")
endif()

# Baseline key missing from the candidate (rename/drop): exit 1, the
# summary counts it as missing, and the new candidate-only key is named
# so the log points at the rename.
execute_process(
  COMMAND ${GATE} --baseline ${baseline} --current ${renamed} --tolerance 0.20
  OUTPUT_VARIABLE ren_out
  RESULT_VARIABLE ren_rc)
if(NOT ren_rc EQUAL 1)
  message(FATAL_ERROR "gate did not fail on a missing gated key (rc=${ren_rc})\n${ren_out}")
endif()
string(FIND "${ren_out}" "current missing" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "missing-key log line absent:\n${ren_out}")
endif()
string(FIND "${ren_out}" "1 missing from current" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "summary does not count the missing key:\n${ren_out}")
endif()
string(FIND "${ren_out}" "ratio_b_v2" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "candidate-only key ratio_b_v2 not surfaced:\n${ren_out}")
endif()
