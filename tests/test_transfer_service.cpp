#include "gridftp/transfer_service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "net/network.hpp"
#include "recovery/journal.hpp"

namespace gridvc::gridftp {
namespace {

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::LinkId ab;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<Server> src, dst;
  UsageStatsCollector collector;
  std::unique_ptr<TransferEngine> engine;
  std::unique_ptr<TransferService> service;

  explicit Fixture(TransferServiceConfig cfg = {}) {
    const auto a = topo.add_node("a", net::NodeKind::kHost);
    const auto b = topo.add_node("b", net::NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(10), 0.005);
    network = std::make_unique<net::Network>(sim, topo);
    ServerConfig sc;
    sc.name = "src";
    sc.nic_rate = gbps(8);
    src = std::make_unique<Server>(sc);
    sc.name = "dst";
    dst = std::make_unique<Server>(sc);
    TransferEngineConfig ecfg;
    ecfg.server_noise_sigma = 0.0;
    ecfg.tcp.stream_buffer = 64 * MiB;
    engine = std::make_unique<TransferEngine>(*network, collector, ecfg, Rng(3));
    service = std::make_unique<TransferService>(sim, *engine, cfg);
  }

  TransferSpec tmpl() {
    TransferSpec s;
    s.src = {src.get(), IoMode::kMemory};
    s.dst = {dst.get(), IoMode::kMemory};
    s.path = {ab};
    s.rtt = 0.01;
    s.streams = 8;
    s.remote_host = "b";
    return s;
  }
};

TEST(TransferService, CompletesATask) {
  Fixture f;
  TaskStatus final_status;
  const auto id = f.service->submit("dataset-push", {100 * MiB, 200 * MiB, 50 * MiB},
                                    f.tmpl(),
                                    [&](const TaskStatus& s) { final_status = s; });
  f.sim.run();
  EXPECT_EQ(final_status.state, TaskState::kSucceeded);
  EXPECT_EQ(final_status.files_done, 3u);
  EXPECT_EQ(final_status.bytes_done, 350 * MiB);
  EXPECT_DOUBLE_EQ(final_status.progress(), 1.0);
  EXPECT_GT(final_status.finished_at, final_status.started_at);
  EXPECT_EQ(f.service->status(id).state, TaskState::kSucceeded);
  EXPECT_EQ(f.collector.received(), 3u);
}

TEST(TransferService, QueuesBeyondActiveLimit) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  Fixture f(cfg);
  std::vector<std::uint64_t> done_order;
  for (int i = 0; i < 3; ++i) {
    f.service->submit("t" + std::to_string(i), {256 * MiB}, f.tmpl(),
                      [&](const TaskStatus& s) { done_order.push_back(s.id); });
  }
  EXPECT_EQ(f.service->active_tasks(), 1u);
  EXPECT_EQ(f.service->queued_tasks(), 2u);
  f.sim.run();
  // FIFO completion order with one slot.
  ASSERT_EQ(done_order.size(), 3u);
  EXPECT_LT(done_order[0], done_order[1]);
  EXPECT_LT(done_order[1], done_order[2]);
}

TEST(TransferService, PerTaskConcurrencyBoundsInFlight) {
  TransferServiceConfig cfg;
  cfg.per_task_concurrency = 2;
  Fixture f(cfg);
  f.service->submit("wide", std::vector<Bytes>(6, 512 * MiB), f.tmpl());
  // Right after submission, exactly two transfers are in flight.
  EXPECT_EQ(f.engine->active_transfers(), 2u);
  f.sim.run();
  EXPECT_EQ(f.collector.received(), 6u);
}

TEST(TransferService, CancelQueuedTaskNeverStarts) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  Fixture f(cfg);
  f.service->submit("first", {GiB}, f.tmpl());
  bool done_fired = false;
  const auto queued = f.service->submit("second", {GiB}, f.tmpl(),
                                        [&](const TaskStatus& s) {
                                          done_fired = true;
                                          EXPECT_EQ(s.state, TaskState::kCancelled);
                                        });
  EXPECT_TRUE(f.service->cancel(queued));
  f.sim.run();
  EXPECT_TRUE(done_fired);
  EXPECT_EQ(f.service->status(queued).files_done, 0u);
  EXPECT_EQ(f.collector.received(), 1u);  // only the first task's file
}

TEST(TransferService, CancelActiveTaskDrainsInFlight) {
  TransferServiceConfig cfg;
  cfg.per_task_concurrency = 1;
  Fixture f(cfg);
  TaskStatus final_status;
  const auto id = f.service->submit("big", std::vector<Bytes>(10, GiB), f.tmpl(),
                                    [&](const TaskStatus& s) { final_status = s; });
  f.sim.run_until(0.5);  // first file in flight
  EXPECT_TRUE(f.service->cancel(id));
  EXPECT_FALSE(f.service->cancel(id));  // second cancel is a no-op
  f.sim.run();
  EXPECT_EQ(final_status.state, TaskState::kCancelled);
  EXPECT_EQ(final_status.files_done, 1u);  // the in-flight file drained
  EXPECT_EQ(f.collector.received(), 1u);
}

TEST(TransferService, CancelFinishedTaskIsNoop) {
  Fixture f;
  const auto id = f.service->submit("quick", {MiB}, f.tmpl());
  f.sim.run();
  EXPECT_FALSE(f.service->cancel(id));
  EXPECT_EQ(f.service->status(id).state, TaskState::kSucceeded);
}

TEST(TransferService, SlotFreedByCancelAdmitsNextTask) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  cfg.per_task_concurrency = 1;
  Fixture f(cfg);
  const auto hog = f.service->submit("hog", std::vector<Bytes>(50, GiB), f.tmpl());
  TaskStatus second_status;
  f.service->submit("next", {MiB}, f.tmpl(),
                    [&](const TaskStatus& s) { second_status = s; });
  f.sim.run_until(1.0);
  f.service->cancel(hog);
  f.sim.run();
  EXPECT_EQ(second_status.state, TaskState::kSucceeded);
}

TEST(TransferService, Preconditions) {
  Fixture f;
  EXPECT_THROW(f.service->submit("x", {}, f.tmpl()), gridvc::PreconditionError);
  EXPECT_THROW(f.service->cancel(999), gridvc::PreconditionError);
  EXPECT_THROW(f.service->status(999), gridvc::NotFoundError);
  TransferServiceConfig bad;
  bad.max_active_tasks = 0;
  EXPECT_THROW(TransferService(f.sim, *f.engine, bad), gridvc::PreconditionError);
}

TEST(TransferService, ProgressVisibleMidTask) {
  TransferServiceConfig cfg;
  cfg.per_task_concurrency = 1;
  Fixture f(cfg);
  const auto id = f.service->submit("steady", std::vector<Bytes>(4, GiB), f.tmpl());
  // 1 GiB at 8 Gbps ~ 1.07 s/file; after ~2.5 s two files are done.
  f.sim.run_until(2.5);
  const auto& s = f.service->status(id);
  EXPECT_EQ(s.state, TaskState::kActive);
  EXPECT_GE(s.files_done, 1u);
  EXPECT_LT(s.files_done, 4u);
  EXPECT_GT(s.progress(), 0.2);
  EXPECT_LT(s.progress(), 0.9);
  f.sim.run();
  EXPECT_EQ(f.service->status(id).state, TaskState::kSucceeded);
}

// ---------------------------------------------------------------------------
// Overload guard: bounded queue, shed policies, deadlines
// ---------------------------------------------------------------------------

TEST(TransferServiceOverload, RejectNewShedsTheIncomingTask) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  cfg.queue_limit = 1;
  cfg.overload_policy = OverloadPolicy::kRejectNew;
  Fixture f(cfg);
  std::vector<std::pair<std::uint64_t, TaskState>> done;
  const auto on_done = [&](const TaskStatus& s) { done.emplace_back(s.id, s.state); };
  const auto t0 = f.service->submit("t0", {256 * MiB}, f.tmpl(), on_done);
  const auto t1 = f.service->submit("t1", {256 * MiB}, f.tmpl(), on_done);
  const auto t2 = f.service->submit("t2", {256 * MiB}, f.tmpl(), on_done);
  EXPECT_EQ(f.service->status(t2).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(t1).state, TaskState::kQueued);
  EXPECT_EQ(f.service->tasks_rejected(), 1u);
  EXPECT_EQ(f.service->tasks_shed(), 1u);
  EXPECT_EQ(f.service->queued_tasks(), 1u);
  f.sim.run();
  // The shed task's callback fired (deferred, never re-entering submit),
  // and the admitted tasks ran to completion.
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], (std::pair{t2, TaskState::kShed}));
  EXPECT_EQ(f.service->status(t0).state, TaskState::kSucceeded);
  EXPECT_EQ(f.service->status(t1).state, TaskState::kSucceeded);
}

TEST(TransferServiceOverload, ShedOldestEvictsTheQueueHead) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  cfg.queue_limit = 1;
  cfg.overload_policy = OverloadPolicy::kShedOldest;
  Fixture f(cfg);
  const auto t0 = f.service->submit("t0", {256 * MiB}, f.tmpl());
  const auto t1 = f.service->submit("t1", {256 * MiB}, f.tmpl());
  const auto t2 = f.service->submit("t2", {256 * MiB}, f.tmpl());
  EXPECT_EQ(f.service->status(t1).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(t2).state, TaskState::kQueued);
  EXPECT_EQ(f.service->tasks_shed(), 1u);
  EXPECT_EQ(f.service->tasks_rejected(), 0u);  // eviction, not rejection
  f.sim.run();
  EXPECT_EQ(f.service->status(t0).state, TaskState::kSucceeded);
  EXPECT_EQ(f.service->status(t2).state, TaskState::kSucceeded);
}

TEST(TransferServiceOverload, PriorityEvictsLowestAndRejectsOutranked) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  cfg.queue_limit = 1;
  cfg.overload_policy = OverloadPolicy::kPriority;
  Fixture f(cfg);
  SubmitOptions low, high;
  low.priority = 1;
  high.priority = 5;
  const auto t0 = f.service->submit("t0", {256 * MiB}, f.tmpl(), SubmitOptions{}, nullptr);
  const auto t1 = f.service->submit("t1", {256 * MiB}, f.tmpl(), low, nullptr);
  // A higher-priority arrival evicts the lowest-priority queued task...
  const auto t2 = f.service->submit("t2", {256 * MiB}, f.tmpl(), high, nullptr);
  EXPECT_EQ(f.service->status(t1).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(t2).state, TaskState::kQueued);
  // ...while one that does not outrank the queue is itself rejected.
  const auto t3 = f.service->submit("t3", {256 * MiB}, f.tmpl(), SubmitOptions{}, nullptr);
  EXPECT_EQ(f.service->status(t3).state, TaskState::kShed);
  EXPECT_EQ(f.service->tasks_shed(), 2u);
  EXPECT_EQ(f.service->tasks_rejected(), 1u);
  // statuses() snapshots every task the service has seen, in id order.
  const auto all = f.service->statuses();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].id, t0);
  EXPECT_EQ(all[3].id, t3);
  f.sim.run();
  EXPECT_EQ(f.service->status(t2).state, TaskState::kSucceeded);
}

TEST(TransferServiceOverload, DeadlineShedsTaskStillQueued) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  Fixture f(cfg);
  f.service->submit("hog", {4 * GiB}, f.tmpl());  // ~4.3 s at 8 Gbps
  TaskStatus final_status;
  SubmitOptions opts;
  opts.deadline = 1.0;
  const auto id = f.service->submit("impatient", {256 * MiB}, f.tmpl(), opts,
                                    [&](const TaskStatus& s) { final_status = s; });
  f.sim.run();
  EXPECT_EQ(final_status.state, TaskState::kShed);
  EXPECT_DOUBLE_EQ(final_status.finished_at, 1.0);
  EXPECT_EQ(final_status.files_done, 0u);
  EXPECT_EQ(f.service->tasks_shed(), 1u);
  EXPECT_EQ(f.service->status(id).state, TaskState::kShed);
}

TEST(TransferServiceOverload, DeadlineStopsActiveTaskAndDrainsInFlight) {
  TransferServiceConfig cfg;
  cfg.per_task_concurrency = 2;
  Fixture f(cfg);
  TaskStatus final_status;
  SubmitOptions opts;
  opts.deadline = 1.0;
  // Four 512 MiB files, two at a time at ~4 Gbps each (~1.07 s/file): the
  // deadline lands while the first pair is still in flight.
  const auto id = f.service->submit("slow", std::vector<Bytes>(4, 512 * MiB), f.tmpl(),
                                    opts, [&](const TaskStatus& s) { final_status = s; });
  f.sim.run();
  EXPECT_EQ(final_status.state, TaskState::kShed);
  // In-flight transfers drained and were counted; files 3 and 4 never
  // started.
  EXPECT_EQ(final_status.files_done, 2u);
  EXPECT_EQ(final_status.files_total, 4u);
  EXPECT_GT(final_status.finished_at, 1.0);
  EXPECT_EQ(f.service->tasks_shed(), 1u);
  EXPECT_EQ(f.service->status(id).state, TaskState::kShed);
  EXPECT_EQ(f.collector.received(), 2u);
}

TEST(TransferServiceOverload, CancelQueuedKeepsQueueGaugeInSync) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  Fixture f(cfg);
  f.service->submit("active", {GiB}, f.tmpl());
  const auto queued = f.service->submit("queued", {GiB}, f.tmpl());
  EXPECT_DOUBLE_EQ(
      f.sim.obs().registry().snapshot().value("gridvc_gridftp_tasks_queued"), 1.0);
  EXPECT_TRUE(f.service->cancel(queued));
  // Regression: cancelling a queued task used to leave the gauge (and
  // queued_tasks()) counting a slot that could never start.
  EXPECT_EQ(f.service->queued_tasks(), 0u);
  EXPECT_DOUBLE_EQ(
      f.sim.obs().registry().snapshot().value("gridvc_gridftp_tasks_queued"), 0.0);
  f.sim.run();
  const auto snap = f.sim.obs().registry().snapshot();
  EXPECT_DOUBLE_EQ(snap.value("gridvc_gridftp_tasks_queued"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value("gridvc_gridftp_tasks_active"), 0.0);
}

// ---------------------------------------------------------------------------
// Crash recovery from the task journal
// ---------------------------------------------------------------------------

TEST(TransferServiceRecovery, CrashResumesFromCheckpointedCursor) {
  recovery::Journal journal;
  TransferServiceConfig cfg;
  cfg.journal = &journal;
  Fixture f(cfg);
  const auto id = f.service->submit("dataset", {100 * MiB, 100 * MiB, 400 * MiB},
                                    f.tmpl());
  // First two files finish (~0.21 s each, concurrent); the third is
  // in flight when the process dies.
  f.sim.run_until(0.4);
  ASSERT_EQ(f.service->status(id).files_done, 2u);
  TaskStatus final_status;
  const std::size_t restored = f.service->crash_and_recover(
      f.tmpl(), [&](const TaskStatus& s) { final_status = s; });
  EXPECT_EQ(restored, 1u);
  EXPECT_EQ(f.service->epoch(), 1u);
  EXPECT_EQ(f.service->tasks_recovered(), 1u);
  // The restored task kept its id and checkpointed progress; only the
  // unfinished file is re-run.
  EXPECT_EQ(f.service->status(id).files_done, 2u);
  f.sim.run();
  EXPECT_EQ(final_status.state, TaskState::kSucceeded);
  EXPECT_EQ(final_status.id, id);
  EXPECT_EQ(final_status.files_done, 3u);
  EXPECT_EQ(final_status.bytes_done, 600 * MiB);
}

TEST(TransferServiceRecovery, FinishedTasksDoNotComeBack) {
  recovery::Journal journal;
  TransferServiceConfig cfg;
  cfg.journal = &journal;
  Fixture f(cfg);
  f.service->submit("done", {64 * MiB}, f.tmpl());
  f.sim.run();
  // The task completed and was tombstoned: a crash restores nothing.
  EXPECT_EQ(f.service->crash_and_recover(f.tmpl()), 0u);
  EXPECT_EQ(f.service->tasks_recovered(), 0u);
  EXPECT_EQ(f.service->statuses().size(), 0u);
}

TEST(TransferServiceRecovery, CrashWithoutJournalIsRejected) {
  Fixture f;
  EXPECT_THROW(f.service->crash_and_recover(f.tmpl()), gridvc::PreconditionError);
}

// Determinism regression: within a priority level, the eviction victim is
// the OLDEST queued task (lowest id), and an arrival that merely ties the
// queue's minimum never evicts. Pinned so refactors of the victim scan
// cannot silently reintroduce iteration-order dependence.
TEST(TransferServiceOverload, PriorityEvictionIsFifoWithinLevel) {
  TransferServiceConfig cfg;
  cfg.max_active_tasks = 1;
  cfg.queue_limit = 2;
  cfg.overload_policy = OverloadPolicy::kPriority;
  Fixture f(cfg);
  SubmitOptions p1, p2;
  p1.priority = 1;
  p2.priority = 2;
  f.service->submit("active", {256 * MiB}, f.tmpl());
  const auto t1 = f.service->submit("q1", {256 * MiB}, f.tmpl(), p1, nullptr);
  const auto t2 = f.service->submit("q2", {256 * MiB}, f.tmpl(), p1, nullptr);
  // Equal priority ties do not outrank: the newcomer is rejected, FIFO order
  // of the incumbents is preserved.
  const auto t3 = f.service->submit("tie", {256 * MiB}, f.tmpl(), p1, nullptr);
  EXPECT_EQ(f.service->status(t3).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(t1).state, TaskState::kQueued);
  EXPECT_EQ(f.service->status(t2).state, TaskState::kQueued);
  // A strictly higher priority evicts the OLDEST of the lowest level: t1,
  // never t2.
  const auto t4 = f.service->submit("hi1", {256 * MiB}, f.tmpl(), p2, nullptr);
  EXPECT_EQ(f.service->status(t1).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(t2).state, TaskState::kQueued);
  EXPECT_EQ(f.service->status(t4).state, TaskState::kQueued);
  // Repeat with the remaining level-1 task to pin the tie-break again.
  const auto t5 = f.service->submit("hi2", {256 * MiB}, f.tmpl(), p2, nullptr);
  EXPECT_EQ(f.service->status(t2).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(t5).state, TaskState::kQueued);
  // Queue is now all level 2; another level-2 arrival ties and is rejected.
  const auto t6 = f.service->submit("tie2", {256 * MiB}, f.tmpl(), p2, nullptr);
  EXPECT_EQ(f.service->status(t6).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(t4).state, TaskState::kQueued);
  EXPECT_EQ(f.service->status(t5).state, TaskState::kQueued);
}

// Contract: the global overload counters are the sum of the per-tenant
// breakdown, rejection_rate() matches rejected/submitted, and tenant
// attribution survives crash recovery via the journal.
TEST(TransferServiceTenants, CountersSumToGlobalsAndSurviveRecovery) {
  recovery::Journal journal;
  TransferServiceConfig cfg;
  cfg.journal = &journal;
  cfg.max_active_tasks = 1;
  cfg.queue_limit = 1;
  cfg.overload_policy = OverloadPolicy::kShedOldest;
  Fixture f(cfg);
  SubmitOptions alice, bob;
  alice.tenant = "alice";
  bob.tenant = "bob";
  const auto a0 = f.service->submit("a0", {4 * GiB}, f.tmpl(), alice, nullptr);
  const auto b0 = f.service->submit("b0", {64 * MiB}, f.tmpl(), bob, nullptr);
  // Queue full: alice's second submission evicts bob's queued task.
  const auto a1 = f.service->submit("a1", {64 * MiB}, f.tmpl(), alice, nullptr);
  EXPECT_EQ(f.service->status(b0).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(a1).state, TaskState::kQueued);
  // An anonymous kShedOldest arrival evicts a1 (eviction, not rejection).
  const auto anon = f.service->submit("anon", {64 * MiB}, f.tmpl());
  EXPECT_EQ(f.service->status(a1).state, TaskState::kShed);
  EXPECT_EQ(f.service->status(anon).state, TaskState::kQueued);

  const auto& per_tenant = f.service->tenant_counters();
  ASSERT_EQ(per_tenant.count("alice"), 1u);
  ASSERT_EQ(per_tenant.count("bob"), 1u);
  ASSERT_EQ(per_tenant.count(""), 1u);
  EXPECT_EQ(per_tenant.at("alice").submitted, 2u);
  EXPECT_EQ(per_tenant.at("alice").shed, 1u);
  EXPECT_EQ(per_tenant.at("bob").submitted, 1u);
  EXPECT_EQ(per_tenant.at("bob").shed, 1u);
  EXPECT_EQ(per_tenant.at("").submitted, 1u);
  std::uint64_t submitted = 0, shed = 0, rejected = 0;
  for (const auto& [name, c] : per_tenant) {
    submitted += c.submitted;
    shed += c.shed;
    rejected += c.rejected;
  }
  EXPECT_EQ(submitted, f.service->tasks_submitted());
  EXPECT_EQ(shed, f.service->tasks_shed());
  EXPECT_EQ(rejected, f.service->tasks_rejected());
  EXPECT_DOUBLE_EQ(f.service->rejection_rate(),
                   static_cast<double>(rejected) /
                       static_cast<double>(submitted));

  // Crash while alice's big task is in flight: the recovered task keeps its
  // tenant tag and bumps her recovered counter (journal round trip).
  f.sim.run_until(0.5);
  ASSERT_EQ(f.service->status(a0).state, TaskState::kActive);
  f.service->crash_and_recover(f.tmpl());
  std::uint64_t recovered = 0;
  for (const auto& [name, c] : f.service->tenant_counters()) {
    recovered += c.recovered;
  }
  EXPECT_EQ(f.service->tenant_counters().at("alice").recovered, 1u);
  EXPECT_EQ(recovered, f.service->tasks_recovered());
  f.sim.run();
  EXPECT_EQ(f.service->status(a0).state, TaskState::kSucceeded);
}

}  // namespace
}  // namespace gridvc::gridftp
