#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analysis/link_utilization.hpp"

namespace gridvc::workload {
namespace {

// Small configurations keep these end-to-end simulations fast.

NerscOrnlConfig small_ornl() {
  NerscOrnlConfig cfg;
  cfg.transfer_count = 12;
  cfg.days = 3;
  cfg.transfer_size = 4 * GiB;
  cfg.size_spread = 0.0;  // exact sizes keep the assertions sharp
  return cfg;
}

AnlNerscConfig small_anl() {
  AnlNerscConfig cfg;
  cfg.mem_mem = 6;
  cfg.mem_disk = 5;
  cfg.disk_mem = 5;
  cfg.disk_disk = 6;
  cfg.days = 2;
  cfg.transfer_size = 2 * GiB;
  return cfg;
}

TEST(NerscOrnlScenario, ProducesRequestedTransfers) {
  const auto result = run_nersc_ornl_tests(small_ornl(), 42);
  ASSERT_EQ(result.log.size(), 12u);
  for (const auto& r : result.log) {
    EXPECT_EQ(r.size, 4 * GiB);
    EXPECT_EQ(r.streams, 8);
    EXPECT_EQ(r.stripes, 1);
    EXPECT_GT(r.duration, 0.0);
    // Throughput below the 10G line rate.
    EXPECT_LT(to_gbps(r.throughput()), 10.0);
  }
}

TEST(NerscOrnlScenario, StartsAtConfiguredHours) {
  const auto result = run_nersc_ornl_tests(small_ornl(), 42);
  for (const auto& r : result.log) {
    const double hour = std::fmod(r.start_time, kDay) / kHour;
    const bool near_2am = hour >= 2.0 && hour < 3.0;
    const bool near_8am = hour >= 8.0 && hour < 9.0;
    EXPECT_TRUE(near_2am || near_8am) << "start hour " << hour;
  }
}

TEST(NerscOrnlScenario, SnmpSeriesCoverTheRun) {
  const auto cfg = small_ornl();
  const auto result = run_nersc_ornl_tests(cfg, 42);
  ASSERT_EQ(result.router_names.size(), 5u);
  ASSERT_EQ(result.forward_series.size(), 5u);
  ASSERT_EQ(result.reverse_series.size(), 5u);
  for (const auto& s : result.forward_series) {
    // 3 days + 1 day margin of 30 s bins.
    EXPECT_GE(s.bins.size(), 3u * 2880u);
    const double total = std::accumulate(s.bins.begin(), s.bins.end(), 0.0);
    EXPECT_GT(total, 0.0);
  }
}

TEST(NerscOrnlScenario, TransferBytesVisibleInSnmp) {
  auto cfg = small_ornl();
  cfg.transfer_size = 32 * GiB;  // long enough to span several 30 s bins
  const auto result = run_nersc_ornl_tests(cfg, 42);
  // For each RETR (NERSC->ORNL) transfer, eq-(1) attribution on a forward
  // link must account for most of the transfer's own bytes (edge-bin
  // pro-rating trims a little; cross traffic adds some back).
  const auto& series = result.forward_series[2];
  for (const auto& r : result.log) {
    if (r.type != gridftp::TransferType::kRetrieve) continue;
    const double attributed =
        analysis::attributed_bytes(series, r.start_time, r.duration);
    EXPECT_GT(attributed, 0.8 * static_cast<double>(r.size));
  }
}

TEST(NerscOrnlScenario, DeterministicInSeed) {
  const auto a = run_nersc_ornl_tests(small_ornl(), 9);
  const auto b = run_nersc_ornl_tests(small_ornl(), 9);
  ASSERT_EQ(a.log.size(), b.log.size());
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.log[i].duration, b.log[i].duration);
  }
}

TEST(NerscOrnlScenario, ThroughputShowsVariance) {
  auto cfg = small_ornl();
  cfg.transfer_count = 24;
  cfg.days = 6;
  const auto result = run_nersc_ornl_tests(cfg, 1);
  double lo = 1e18, hi = 0.0;
  for (const auto& r : result.log) {
    lo = std::min(lo, r.throughput());
    hi = std::max(hi, r.throughput());
  }
  EXPECT_GT(hi / lo, 1.3);
}

TEST(AnlNerscScenario, AllTestClassesPresent) {
  const auto result = run_anl_nersc_tests(small_anl(), 7);
  EXPECT_EQ(result.mem_mem.size(), 6u);
  EXPECT_EQ(result.mem_disk.size(), 5u);
  EXPECT_EQ(result.disk_mem.size(), 5u);
  EXPECT_EQ(result.disk_disk.size(), 6u);
  // Indices are valid and distinct.
  std::vector<std::size_t> all;
  for (const auto* v : {&result.mem_mem, &result.mem_disk, &result.disk_mem,
                        &result.disk_disk}) {
    for (std::size_t i : *v) {
      ASSERT_LT(i, result.all_log.size());
      all.push_back(i);
    }
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
}

TEST(AnlNerscScenario, LogIncludesBackgroundTraffic) {
  const auto result = run_anl_nersc_tests(small_anl(), 7);
  EXPECT_GT(result.all_log.size(), 22u);  // more than just the tests
  bool background = false;
  for (const auto& r : result.all_log) {
    if (r.remote_host == "background") background = true;
  }
  EXPECT_TRUE(background);
}

TEST(AnlNerscScenario, DiskWriteSlowerThanMemory) {
  auto cfg = small_anl();
  cfg.mem_mem = 20;
  cfg.disk_disk = 20;
  cfg.mem_disk = 20;
  cfg.disk_mem = 20;
  cfg.days = 5;
  const auto result = run_anl_nersc_tests(cfg, 3);
  const auto median_of = [&](const std::vector<std::size_t>& idx) {
    std::vector<double> v;
    for (std::size_t i : idx) v.push_back(result.all_log[i].throughput());
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  // Destination-disk classes are bottlenecked by the NERSC write path.
  EXPECT_GT(median_of(result.mem_mem), median_of(result.mem_disk));
  EXPECT_GT(median_of(result.disk_mem), median_of(result.disk_disk));
}

TEST(AnlNerscScenario, SortedLog) {
  const auto result = run_anl_nersc_tests(small_anl(), 7);
  for (std::size_t i = 1; i < result.all_log.size(); ++i) {
    ASSERT_LE(result.all_log[i - 1].start_time, result.all_log[i].start_time);
  }
}

FaultyWanConfig small_faulty() {
  FaultyWanConfig cfg;
  cfg.transfer_count = 6;
  cfg.transfer_size = 16 * GiB;
  cfg.transfer_interarrival = 60.0;
  cfg.link_mtbf = 60.0;
  cfg.link_mttr = 15.0;
  cfg.fault_horizon = 600.0;
  return cfg;
}

TEST(FaultyWanScenario, EveryTransferReachesAnOutcome) {
  const auto result = run_faulty_wan(small_faulty(), 21);
  EXPECT_EQ(result.transfers_completed + result.transfers_failed, 6u);
  EXPECT_EQ(result.circuits_granted, 6u);
  EXPECT_EQ(result.link_failures, result.link_repairs);
}

TEST(FaultyWanScenario, FaultsDriveAbortsAndCircuitFailures) {
  const auto result = run_faulty_wan(small_faulty(), 21);
  // The fault process is hot enough (MTBF 60s on two links, transfers in
  // flight most of the run) that this seed produces outages mid-transfer
  // and mid-circuit.
  EXPECT_GT(result.link_failures, 0u);
  EXPECT_GT(result.aborted_attempts, 0u);
  EXPECT_GT(result.circuits_failed, 0u);
  EXPECT_GT(result.circuits_resignaled, 0u);
  // The failure path is visible in the metrics snapshot too.
  EXPECT_DOUBLE_EQ(result.metrics.value("gridvc_net_link_failures"),
                   static_cast<double>(result.link_failures));
  EXPECT_DOUBLE_EQ(result.metrics.value("gridvc_vc_failed"),
                   static_cast<double>(result.circuits_failed));
  EXPECT_DOUBLE_EQ(result.metrics.value("gridvc_gridftp_aborted_attempts"),
                   static_cast<double>(result.aborted_attempts));
}

TEST(FaultyWanScenario, DeterministicPerSeed) {
  const auto a = run_faulty_wan(small_faulty(), 9);
  const auto b = run_faulty_wan(small_faulty(), 9);
  EXPECT_EQ(a.transfers_completed, b.transfers_completed);
  EXPECT_EQ(a.transfers_failed, b.transfers_failed);
  EXPECT_EQ(a.aborted_attempts, b.aborted_attempts);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.circuits_failed, b.circuits_failed);
  EXPECT_EQ(a.circuits_resignaled, b.circuits_resignaled);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.metrics.entries.size(), b.metrics.entries.size());
  for (std::size_t i = 0; i < a.metrics.entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics.entries[i].value, b.metrics.entries[i].value)
        << a.metrics.entries[i].name;
  }
}

TEST(ManagedVcScenario, MalleableRunCompletesTasksAndShapesUnderLoad) {
  // Crank the load (short interarrival, big circuits) so flat admission
  // fails and the malleable path — shaping the volume into calendar
  // slack — actually carries tasks that would otherwise run best-effort.
  ManagedVcConfig cfg;
  cfg.task_count = 6;
  cfg.files_per_task = 4;
  cfg.file_size = 2 * GiB;
  cfg.task_interarrival = 60.0;
  cfg.circuit_rate = gbps(4);
  cfg.immediate_signaling = true;
  cfg.malleable_reservations = true;
  const auto result = run_managed_vc(cfg, 7);
  EXPECT_EQ(result.tasks_completed, cfg.task_count);
  EXPECT_EQ(result.transfers_completed,
            cfg.task_count * cfg.files_per_task);
  // Every task got some circuit: the malleable path admits at least as
  // much as fixed-window ever did.
  ManagedVcConfig fixed = cfg;
  fixed.malleable_reservations = false;
  const auto baseline = run_managed_vc(fixed, 7);
  EXPECT_GE(result.circuits_granted, baseline.circuits_granted);
}

TEST(ManagedVcScenario, MalleableRunIsDeterministic) {
  ManagedVcConfig cfg;
  cfg.task_count = 4;
  cfg.files_per_task = 3;
  cfg.file_size = 2 * GiB;
  cfg.task_interarrival = 90.0;
  cfg.immediate_signaling = true;
  cfg.malleable_reservations = true;
  const auto a = run_managed_vc(cfg, 11);
  const auto b = run_managed_vc(cfg, 11);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.circuits_granted, b.circuits_granted);
  EXPECT_EQ(a.circuits_shaped, b.circuits_shaped);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.metrics.entries.size(), b.metrics.entries.size());
  for (std::size_t i = 0; i < a.metrics.entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics.entries[i].value, b.metrics.entries[i].value)
        << a.metrics.entries[i].name;
  }
}

TEST(FaultyWanScenario, FaultFreeWhenInjectionDisabled) {
  auto cfg = small_faulty();
  cfg.link_mtbf = 0.0;
  const auto result = run_faulty_wan(cfg, 21);
  EXPECT_EQ(result.transfers_completed, 6u);
  EXPECT_EQ(result.transfers_failed, 0u);
  EXPECT_EQ(result.link_failures, 0u);
  EXPECT_EQ(result.aborted_attempts, 0u);
  EXPECT_EQ(result.circuits_failed, 0u);
}

}  // namespace
}  // namespace gridvc::workload
