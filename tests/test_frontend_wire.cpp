#include "frontend/wire.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "frontend/daemon.hpp"
#include "frontend/wall_clock.hpp"
#include "net/network.hpp"
#include "obs/profile_io.hpp"

namespace gridvc::frontend {
namespace {

using gridftp::IoMode;
using gridftp::Server;
using gridftp::ServerConfig;
using gridftp::TransferEngine;
using gridftp::TransferEngineConfig;
using gridftp::TransferService;
using gridftp::TransferServiceConfig;
using gridftp::TransferSpec;
using gridftp::UsageStatsCollector;

struct WireFixture {
  sim::Simulator sim;
  net::Topology topo;
  net::LinkId ab;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<Server> src, dst;
  UsageStatsCollector collector;
  std::unique_ptr<TransferEngine> engine;
  std::unique_ptr<TransferService> service;
  std::unique_ptr<FrontEnd> front;
  std::unique_ptr<WireContext> ctx;

  explicit WireFixture(double submit_rate = 0.0) {
    const auto a = topo.add_node("a", net::NodeKind::kHost);
    const auto b = topo.add_node("b", net::NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(10), 0.005);
    network = std::make_unique<net::Network>(sim, topo);
    ServerConfig sc;
    sc.name = "src";
    sc.nic_rate = gbps(8);
    src = std::make_unique<Server>(sc);
    sc.name = "dst";
    dst = std::make_unique<Server>(sc);
    TransferEngineConfig ecfg;
    ecfg.server_noise_sigma = 0.0;
    engine = std::make_unique<TransferEngine>(*network, collector, ecfg, Rng(3));
    TransferServiceConfig scfg;
    scfg.queue_limit = 0;
    service = std::make_unique<TransferService>(sim, *engine, scfg);
    FrontEndConfig fcfg;
    TenantConfig tc;
    tc.name = "acme";
    tc.submit_rate = submit_rate;
    if (submit_rate > 0) tc.submit_burst = 1.0;
    fcfg.tenants = {tc};
    front = std::make_unique<FrontEnd>(sim, *service, fcfg);
    TransferSpec tmpl;
    tmpl.src = {src.get(), IoMode::kMemory};
    tmpl.dst = {dst.get(), IoMode::kMemory};
    tmpl.path = {ab};
    tmpl.rtt = 0.01;
    tmpl.remote_host = "b";
    ctx = std::make_unique<WireContext>(WireContext{*front, sim, tmpl});
  }

  /// Run one request and parse the response back.
  obs::Json roundtrip(const std::string& line, WireResult* raw = nullptr) {
    const WireResult r = handle_wire_line(*ctx, line);
    if (raw != nullptr) *raw = r;
    return obs::parse_json(r.response);
  }
};

bool ok(const obs::Json& res) {
  const obs::Json* v = res.get("ok");
  return v != nullptr && v->type == obs::Json::Type::kBool && v->boolean;
}

double num(const obs::Json& res, const std::string& key) {
  const obs::Json* v = res.get(key);
  EXPECT_NE(v, nullptr) << "missing key " << key;
  return v == nullptr ? -1.0 : v->number;
}

TEST(Wire, FullSessionRoundTrip) {
  WireFixture f;
  WireResult raw;
  obs::Json res = f.roundtrip("{\"op\":\"connect\",\"tenant\":\"acme\"}", &raw);
  ASSERT_TRUE(ok(res));
  EXPECT_EQ(num(res, "session"), 1.0);
  ASSERT_TRUE(raw.opened_session.has_value());
  EXPECT_EQ(*raw.opened_session, 1u);

  res = f.roundtrip(
      "{\"op\":\"submit\",\"session\":1,\"label\":\"j\",\"files\":[1048576]}");
  ASSERT_TRUE(ok(res));
  EXPECT_EQ(num(res, "ticket"), 1.0);

  f.sim.run();
  res = f.roundtrip("{\"op\":\"poll\",\"session\":1,\"ticket\":1}");
  ASSERT_TRUE(ok(res));
  EXPECT_EQ(res.get("state")->str, "done");
  EXPECT_EQ(res.get("task_state")->str, "succeeded");
  EXPECT_EQ(num(res, "bytes_done"), 1048576.0);

  res = f.roundtrip("{\"op\":\"stats\",\"tenant\":\"acme\"}");
  ASSERT_TRUE(ok(res));
  EXPECT_EQ(num(res, "completed"), 1.0);

  res = f.roundtrip("{\"op\":\"disconnect\",\"session\":1}", &raw);
  ASSERT_TRUE(ok(res));
  ASSERT_TRUE(raw.closed_session.has_value());
  EXPECT_EQ(*raw.closed_session, 1u);
}

TEST(Wire, RejectionIsNotAnError) {
  WireFixture f(/*submit_rate=*/1.0);  // 1 submission/sec, burst 1
  ASSERT_TRUE(ok(f.roundtrip("{\"op\":\"connect\",\"tenant\":\"acme\"}")));
  obs::Json res =
      f.roundtrip("{\"op\":\"submit\",\"session\":1,\"files\":[1024]}");
  ASSERT_TRUE(ok(res));
  res = f.roundtrip("{\"op\":\"submit\",\"session\":1,\"files\":[1024]}");
  EXPECT_FALSE(ok(res));
  EXPECT_EQ(res.get("error"), nullptr);  // refusal, not an error
  EXPECT_TRUE(res.get("rejected")->boolean);
  EXPECT_EQ(res.get("reason")->str, "rate_limited");
  EXPECT_GT(num(res, "retry_after"), 0.0);
}

TEST(Wire, StructuralAndDomainErrors) {
  WireFixture f;
  EXPECT_FALSE(ok(f.roundtrip("not json at all")));
  EXPECT_FALSE(ok(f.roundtrip("{\"op\":\"warp\"}")));
  EXPECT_FALSE(ok(f.roundtrip("{\"tenant\":\"acme\"}")));  // missing op
  EXPECT_FALSE(ok(f.roundtrip("{\"op\":\"connect\",\"tenant\":\"ghost\"}")));
  EXPECT_FALSE(ok(f.roundtrip("{\"op\":\"poll\",\"session\":7,\"ticket\":1}")));
  EXPECT_FALSE(ok(
      f.roundtrip("{\"op\":\"submit\",\"session\":1,\"files\":[-5]}")));
  // A failed request never reports session bookkeeping.
  WireResult raw;
  (void)f.roundtrip("{\"op\":\"connect\",\"tenant\":\"ghost\"}", &raw);
  EXPECT_FALSE(raw.opened_session.has_value());
}

TEST(Wire, PingReportsSimTime) {
  WireFixture f;
  f.sim.run_until(12.5);
  const obs::Json res = f.roundtrip("{\"op\":\"ping\"}");
  ASSERT_TRUE(ok(res));
  EXPECT_EQ(num(res, "time"), 12.5);
}

TEST(RequestRing, BlocksProducerWhenFullAndDrainsFifo) {
  RequestRing ring(2);
  ring.push({1, "a", false});
  ring.push({1, "b", false});
  std::thread producer([&] { ring.push({1, "c", false}); });
  // The third push must wait for a pop.
  RequestRing::Item item;
  ASSERT_TRUE(ring.pop(item, 1000));
  EXPECT_EQ(item.line, "a");
  producer.join();  // unblocked by the pop
  ASSERT_TRUE(ring.pop(item, 1000));
  EXPECT_EQ(item.line, "b");
  ASSERT_TRUE(ring.pop(item, 1000));
  EXPECT_EQ(item.line, "c");
  EXPECT_FALSE(ring.pop(item, 0));
  EXPECT_EQ(ring.depth(), 0u);
}

TEST(WallClock, TestClockJumpsForwardOnly) {
  TestWallClock clock;
  EXPECT_TRUE(clock.is_virtual());
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance_to(5.0);
  EXPECT_EQ(clock.now(), 5.0);
  clock.advance_to(3.0);  // never backward
  EXPECT_EQ(clock.now(), 5.0);
}

TEST(WallClock, SteadyClockAdvances) {
  SteadyWallClock clock;
  EXPECT_FALSE(clock.is_virtual());
  const Seconds a = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const Seconds b = clock.now();
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace gridvc::frontend
