#include "frontend/admission.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "recovery/circuit_breaker.hpp"

namespace gridvc::frontend {
namespace {

using gridftp::IoMode;
using gridftp::OverloadPolicy;
using gridftp::Server;
using gridftp::ServerConfig;
using gridftp::SubmitOptions;
using gridftp::TaskState;
using gridftp::TransferEngine;
using gridftp::TransferEngineConfig;
using gridftp::TransferService;
using gridftp::TransferServiceConfig;
using gridftp::TransferSpec;
using gridftp::UsageStatsCollector;

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  net::LinkId ab;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<Server> src, dst;
  UsageStatsCollector collector;
  std::unique_ptr<TransferEngine> engine;
  std::unique_ptr<TransferService> service;
  std::unique_ptr<FrontEnd> front;

  explicit Fixture(FrontEndConfig fcfg = two_tenants(), int max_active = 1) {
    const auto a = topo.add_node("a", net::NodeKind::kHost);
    const auto b = topo.add_node("b", net::NodeKind::kHost);
    ab = topo.add_link(a, b, gbps(10), 0.005);
    network = std::make_unique<net::Network>(sim, topo);
    ServerConfig sc;
    sc.name = "src";
    sc.nic_rate = gbps(8);
    src = std::make_unique<Server>(sc);
    sc.name = "dst";
    dst = std::make_unique<Server>(sc);
    TransferEngineConfig ecfg;
    ecfg.server_noise_sigma = 0.0;
    ecfg.tcp.stream_buffer = 64 * MiB;
    engine = std::make_unique<TransferEngine>(*network, collector, ecfg, Rng(3));
    TransferServiceConfig scfg;
    scfg.max_active_tasks = max_active;
    scfg.queue_limit = 0;  // the front-end owns all waiting
    service = std::make_unique<TransferService>(sim, *engine, scfg);
    front = std::make_unique<FrontEnd>(sim, *service, std::move(fcfg));
  }

  /// Tenants "alpha" (weight 1) and "beta" (weight 2), no quotas.
  static FrontEndConfig two_tenants() {
    FrontEndConfig cfg;
    TenantConfig a;
    a.name = "alpha";
    a.weight = 1.0;
    TenantConfig b;
    b.name = "beta";
    b.weight = 2.0;
    cfg.tenants = {a, b};
    cfg.drr_quantum = 64 * MiB;
    return cfg;
  }

  TransferSpec tmpl() {
    TransferSpec s;
    s.src = {src.get(), IoMode::kMemory};
    s.dst = {dst.get(), IoMode::kMemory};
    s.path = {ab};
    s.rtt = 0.01;
    s.streams = 8;
    s.remote_host = "b";
    return s;
  }

  /// Park a long-running task directly in the backend so every
  /// front-end ticket stays queued (the dispatcher sees no free slot).
  std::uint64_t occupy_backend() {
    return service->submit("filler", {10 * GiB}, tmpl());
  }
};

TEST(FrontEnd, SubmitDispatchCompleteRoundTrip) {
  Fixture f;
  const auto session = f.front->connect("alpha");
  const SubmitResult r =
      f.front->submit(session, "job", {64 * MiB}, f.tmpl());
  ASSERT_TRUE(r.accepted);
  EXPECT_FALSE(r.duplicate);
  f.sim.run();
  const TicketStatus st = f.front->poll(session, r.ticket);
  EXPECT_EQ(st.state, TicketState::kDone);
  EXPECT_EQ(st.task_state, TaskState::kSucceeded);
  EXPECT_EQ(st.bytes_done, 64 * MiB);
  EXPECT_TRUE(f.front->quiescent());
  const TenantStats ts = f.front->tenant_stats("alpha");
  EXPECT_EQ(ts.accepted, 1u);
  EXPECT_EQ(ts.dispatched, 1u);
  EXPECT_EQ(ts.completed, 1u);
  // Per-tenant counters are also first-class metrics.
  const auto snap = f.sim.obs().registry().snapshot();
  EXPECT_EQ(snap.value("gridvc_front_tenant_alpha_completed"), 1.0);
}

TEST(FrontEnd, ConnectUnknownTenantThrows) {
  Fixture f;
  EXPECT_THROW(f.front->connect("nobody"), NotFoundError);
}

TEST(FrontEnd, CancelQueuedTicketNeverDispatches) {
  Fixture f;
  f.occupy_backend();
  const auto session = f.front->connect("alpha");
  const SubmitResult r = f.front->submit(session, "doomed", {MiB}, f.tmpl());
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(f.front->poll(session, r.ticket).state, TicketState::kQueued);
  EXPECT_TRUE(f.front->cancel(session, r.ticket));
  EXPECT_EQ(f.front->poll(session, r.ticket).state, TicketState::kCancelled);
  f.sim.run();
  // Still cancelled, never reached the backend, and cancel is sticky.
  EXPECT_EQ(f.front->poll(session, r.ticket).state, TicketState::kCancelled);
  EXPECT_EQ(f.front->tenant_stats("alpha").dispatched, 0u);
  EXPECT_FALSE(f.front->cancel(session, r.ticket));
}

TEST(FrontEnd, DoubleSubmitWithIdempotencyKeyIsDeduped) {
  Fixture f;
  const auto session = f.front->connect("alpha");
  const SubmitResult first =
      f.front->submit(session, "job", {MiB}, f.tmpl(), {}, "retry-1");
  ASSERT_TRUE(first.accepted);
  const SubmitResult second =
      f.front->submit(session, "job", {MiB}, f.tmpl(), {}, "retry-1");
  EXPECT_TRUE(second.accepted);
  EXPECT_TRUE(second.duplicate);
  EXPECT_EQ(second.ticket, first.ticket);
  // The duplicate was charged nothing: one submission, one accept.
  EXPECT_EQ(f.front->tenant_stats("alpha").submitted, 1u);
  EXPECT_EQ(f.front->tenant_stats("alpha").accepted, 1u);
  f.sim.run();
  EXPECT_TRUE(f.front->quiescent());
}

TEST(FrontEnd, DisconnectWithInFlightAdoptsOrphans) {
  Fixture f;
  const auto session = f.front->connect("alpha");
  const SubmitResult r = f.front->submit(session, "orphan", {64 * MiB}, f.tmpl());
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(f.front->status(r.ticket).state, TicketState::kDispatched);
  f.front->disconnect(session);
  EXPECT_THROW(f.front->poll(session, r.ticket), NotFoundError);
  f.sim.run();
  // The orphan ran to completion under the tenant's account.
  EXPECT_EQ(f.front->status(r.ticket).state, TicketState::kDone);
  EXPECT_EQ(f.front->status(r.ticket).task_state, TaskState::kSucceeded);
  EXPECT_EQ(f.front->tenant_stats("alpha").completed, 1u);
  EXPECT_TRUE(f.front->quiescent());
}

TEST(FrontEnd, DisconnectWithAbortCancelsInFlightAndShedsQueued) {
  FrontEndConfig cfg = Fixture::two_tenants();
  cfg.abort_on_disconnect = true;
  Fixture f(std::move(cfg));
  const auto session = f.front->connect("alpha");
  const SubmitResult active =
      f.front->submit(session, "active", {64 * MiB}, f.tmpl());
  const SubmitResult queued =
      f.front->submit(session, "queued", {64 * MiB}, f.tmpl());
  ASSERT_TRUE(active.accepted);
  ASSERT_TRUE(queued.accepted);
  EXPECT_EQ(f.front->status(active.ticket).state, TicketState::kDispatched);
  EXPECT_EQ(f.front->status(queued.ticket).state, TicketState::kQueued);
  f.front->disconnect(session);
  EXPECT_EQ(f.front->status(queued.ticket).state, TicketState::kShed);
  f.sim.run();
  EXPECT_EQ(f.front->status(active.ticket).task_state, TaskState::kCancelled);
  EXPECT_TRUE(f.front->quiescent());
  EXPECT_EQ(f.front->tenant_stats("alpha").shed, 1u);
}

TEST(FrontEnd, IdleReapRacesAPoll) {
  FrontEndConfig cfg = Fixture::two_tenants();
  cfg.session_idle_timeout = 10.0;
  cfg.reap_interval = 5.0;
  Fixture f(std::move(cfg));
  const auto session = f.front->connect("alpha");
  bool polled_alive = false;
  bool reaped_poll_threw = false;
  // A poll at t=4 refreshes the activity clock, pushing the reap from
  // t=10 out to t=15 (the first sweep at/after activity+timeout).
  f.sim.schedule_at(4.0, [&] {
    (void)f.front->submit(session, "keepalive", {MiB}, f.tmpl());
    polled_alive = true;
  });
  f.sim.schedule_at(16.0, [&] {
    try {
      (void)f.front->poll(session, 1);
    } catch (const NotFoundError&) {
      reaped_poll_threw = true;
    }
  });
  f.sim.run();
  EXPECT_TRUE(polled_alive);
  EXPECT_TRUE(reaped_poll_threw);
  EXPECT_EQ(f.front->sessions_reaped(), 1u);
  EXPECT_EQ(f.front->sessions_open(), 0u);
  // The reaper disarmed itself (sim.run() returned), and re-arms on the
  // next connect.
  EXPECT_TRUE(f.sim.idle());
  (void)f.front->connect("beta");
  EXPECT_FALSE(f.sim.idle());
  f.front->stop_reaper();
}

TEST(FrontEnd, TokenBucketRateLimitsAndRecovers) {
  FrontEndConfig cfg = Fixture::two_tenants();
  cfg.tenants[0].submit_rate = 1.0;  // 1/s, burst 1
  cfg.tenants[0].submit_burst = 1.0;
  Fixture f(std::move(cfg));
  const auto session = f.front->connect("alpha");
  ASSERT_TRUE(f.front->submit(session, "a", {MiB}, f.tmpl()).accepted);
  const SubmitResult limited = f.front->submit(session, "b", {MiB}, f.tmpl());
  ASSERT_FALSE(limited.accepted);
  EXPECT_EQ(limited.reason, RejectReason::kRateLimited);
  EXPECT_NEAR(limited.retry_after, 1.0, 1e-9);
  f.sim.run_until(limited.retry_after);
  EXPECT_TRUE(f.front->submit(session, "b", {MiB}, f.tmpl()).accepted);
  EXPECT_EQ(f.front->tenant_stats("alpha").rejected, 1u);
  f.sim.run();
}

TEST(FrontEnd, QueuedBytesQuotaRejects) {
  FrontEndConfig cfg = Fixture::two_tenants();
  cfg.tenants[0].max_queued_bytes = 2 * MiB;
  Fixture f(std::move(cfg));
  f.occupy_backend();
  const auto session = f.front->connect("alpha");
  ASSERT_TRUE(f.front->submit(session, "a", {2 * MiB}, f.tmpl()).accepted);
  const SubmitResult over = f.front->submit(session, "b", {MiB}, f.tmpl());
  ASSERT_FALSE(over.accepted);
  EXPECT_EQ(over.reason, RejectReason::kQuotaBytes);
  EXPECT_GT(over.retry_after, 0.0);
}

TEST(FrontEnd, PerTenantPriorityEvictionIsFifoWithinLevel) {
  FrontEndConfig cfg = Fixture::two_tenants();
  cfg.tenants[0].queue_limit = 2;
  cfg.tenants[0].policy = OverloadPolicy::kPriority;
  Fixture f(std::move(cfg));
  f.occupy_backend();
  const auto session = f.front->connect("alpha");
  SubmitOptions pri0;
  pri0.priority = 0;
  const auto t1 = f.front->submit(session, "t1", {MiB}, f.tmpl(), pri0);
  const auto t2 = f.front->submit(session, "t2", {MiB}, f.tmpl(), pri0);
  ASSERT_TRUE(t1.accepted);
  ASSERT_TRUE(t2.accepted);
  // A tie never evicts: earlier arrivals win.
  const auto tie = f.front->submit(session, "tie", {MiB}, f.tmpl(), pri0);
  ASSERT_FALSE(tie.accepted);
  EXPECT_EQ(tie.reason, RejectReason::kQueueFull);
  // A strictly higher priority evicts the *oldest* lowest-priority
  // ticket — t1, not t2.
  SubmitOptions pri1;
  pri1.priority = 1;
  const auto winner = f.front->submit(session, "win", {MiB}, f.tmpl(), pri1);
  ASSERT_TRUE(winner.accepted);
  EXPECT_EQ(f.front->status(t1.ticket).state, TicketState::kShed);
  EXPECT_EQ(f.front->status(t2.ticket).state, TicketState::kQueued);
}

TEST(FrontEnd, DrrDispatchesBytesByWeight) {
  Fixture f;  // alpha weight 1, beta weight 2, one backend slot
  obs::RingBufferTraceSink sink(8192);
  f.sim.obs().set_trace_sink(&sink);
  const auto sa = f.front->connect("alpha");
  const auto sb = f.front->connect("beta");
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(
        f.front->submit(sa, "a" + std::to_string(i), {64 * MiB}, f.tmpl())
            .accepted);
    ASSERT_TRUE(
        f.front->submit(sb, "b" + std::to_string(i), {64 * MiB}, f.tmpl())
            .accepted);
  }
  f.sim.run();
  // Replay dispatch order from the trace: within the first 9 dispatches
  // beta (weight 2) must get twice alpha's slots.
  std::vector<std::uint64_t> order;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.type == obs::TraceEventType::kFrontDispatch) {
      order.push_back(static_cast<std::uint64_t>(e.value2));  // tenant idx
    }
  }
  ASSERT_EQ(order.size(), 18u);
  int alpha_first9 = 0;
  for (int i = 0; i < 9; ++i) alpha_first9 += order[static_cast<std::size_t>(i)] == 0;
  EXPECT_EQ(alpha_first9, 3);  // 1:2 split
  EXPECT_EQ(f.front->starvation_violations(), 0u);
  EXPECT_EQ(f.front->isolation_violations(), 0u);
  EXPECT_TRUE(f.front->quiescent());
  f.sim.obs().set_trace_sink(nullptr);
}

TEST(FrontEnd, GlobalBackpressureShedsOverShareTenantFirst) {
  FrontEndConfig cfg = Fixture::two_tenants();
  cfg.tenants[0].weight = 1.0;
  cfg.tenants[1].weight = 1.0;
  cfg.global_queued_bytes_limit = 10 * MiB;  // fair share: 5 MiB each
  Fixture f(std::move(cfg));
  f.occupy_backend();
  const auto sa = f.front->connect("alpha");
  const auto sb = f.front->connect("beta");
  // beta hoards 8 MiB of queue — over its 5 MiB share.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(f.front->submit(sb, "hog", {MiB}, f.tmpl()).accepted);
  }
  // alpha's in-quota 4 MiB submission reclaims from beta instead of
  // being refused.
  const SubmitResult r = f.front->submit(sa, "fair", {4 * MiB}, f.tmpl());
  ASSERT_TRUE(r.accepted);
  EXPECT_GE(f.front->tenant_stats("beta").shed, 2u);
  EXPECT_LE(f.front->queued_bytes(), 10 * MiB);
  EXPECT_EQ(f.front->isolation_violations(), 0u);
  // With beta now at its share, alpha pushing *itself* over share is
  // refused with a retry-after hint rather than shedding beta further.
  const SubmitResult over = f.front->submit(sa, "greedy", {7 * MiB}, f.tmpl());
  ASSERT_FALSE(over.accepted);
  EXPECT_EQ(over.reason, RejectReason::kBackpressure);
  EXPECT_GT(over.retry_after, 0.0);
}

TEST(FrontEnd, BreakerOpenRejectsWithReopenHint) {
  recovery::CircuitBreaker breaker;
  FrontEndConfig cfg = Fixture::two_tenants();
  cfg.breaker = &breaker;
  Fixture f(std::move(cfg));
  const auto session = f.front->connect("alpha");
  for (int i = 0; i < 3; ++i) breaker.record_failure(0.0);
  const SubmitResult r = f.front->submit(session, "sick", {MiB}, f.tmpl());
  ASSERT_FALSE(r.accepted);
  EXPECT_EQ(r.reason, RejectReason::kBreakerOpen);
  EXPECT_NEAR(r.retry_after, breaker.reopen_at(), 1e-9);
}

TEST(FrontEnd, InFlightCapThrottlesWithoutStarvationCount) {
  FrontEndConfig cfg = Fixture::two_tenants();
  cfg.tenants[0].max_in_flight = 1;
  Fixture f(std::move(cfg), /*max_active=*/4);
  const auto session = f.front->connect("alpha");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(f.front->submit(session, "x", {32 * MiB}, f.tmpl()).accepted);
  }
  // Only one dispatched despite four free backend slots.
  EXPECT_EQ(f.front->in_flight(), 1u);
  EXPECT_EQ(f.front->queued_tickets(), 3u);
  f.sim.run();
  EXPECT_TRUE(f.front->quiescent());
  EXPECT_EQ(f.front->tenant_stats("alpha").completed, 4u);
  EXPECT_EQ(f.front->starvation_violations(), 0u);
}

TEST(FrontEnd, SubmitOnClosedOrUnknownSessionThrows) {
  Fixture f;
  EXPECT_THROW(f.front->submit(99, "x", {MiB}, f.tmpl()), NotFoundError);
  const auto session = f.front->connect("alpha");
  f.front->disconnect(session);
  f.front->disconnect(session);  // idempotent
  EXPECT_THROW(f.front->submit(session, "x", {MiB}, f.tmpl()), NotFoundError);
  EXPECT_THROW(f.front->cancel(session, 1), NotFoundError);
}

TEST(FrontEnd, PollForeignTicketThrows) {
  Fixture f;
  const auto sa = f.front->connect("alpha");
  const auto sb = f.front->connect("beta");
  const SubmitResult r = f.front->submit(sa, "mine", {MiB}, f.tmpl());
  ASSERT_TRUE(r.accepted);
  EXPECT_THROW(f.front->poll(sb, r.ticket), NotFoundError);
  f.sim.run();
}

}  // namespace
}  // namespace gridvc::frontend
