# Daemon smoke: boot gridvc-serve as a real second process on an
# abstract unix socket with the virtual test clock, replay a scripted
# multi-tenant client session against it, then SIGTERM the daemon and
# require a clean drain (quiescent front-end, exit 0, metrics dump).
# This is the two-process flavor of `gridvc-serve --self-test`.
set(script ${WORKDIR}/daemon_smoke.script)
set(driver ${WORKDIR}/daemon_smoke.sh)
set(server_log ${WORKDIR}/daemon_smoke.server.log)
set(client_out ${WORKDIR}/daemon_smoke.client.out)
set(metrics ${WORKDIR}/daemon_smoke.metrics.prom)

file(WRITE ${script} [[# daemon smoke client script
{"op":"ping"}
{"op":"connect","tenant":"t1"}
!expect "session":1
{"op":"connect","tenant":"t2"}
!expect "session":2
{"op":"submit","session":1,"label":"smoke-a","files":[268435456],"key":"a"}
!expect "ticket":1
{"op":"submit","session":2,"label":"smoke-b","files":[268435456,268435456]}
!expect "ticket":2
# idempotent resubmission returns the original ticket
{"op":"submit","session":1,"label":"smoke-a","files":[268435456],"key":"a"}
!expect "duplicate":true
!waitdone 1 1
!expect "task_state":"succeeded"
!waitdone 2 2
!expect "task_state":"succeeded"
{"op":"stats","tenant":"t1"}
!expect "completed":1
# cancelling a finished ticket is a no-op
{"op":"cancel","session":1,"ticket":1}
!expect "cancelled":false
{"op":"disconnect","session":1}
{"op":"disconnect","session":2}
]])

file(WRITE ${driver} "set -u
SOCK=\"@gridvc-daemon-smoke-$$\"
'${SERVE}' --socket \"$SOCK\" --test-clock --tenants 2 \\
  --metrics-out '${metrics}' 2> '${server_log}' &
SRV=$!
for i in $(seq 1 100); do
  grep -q listening '${server_log}' 2>/dev/null && break
  sleep 0.1
done
'${SERVE}' --client --socket \"$SOCK\" --script '${script}' > '${client_out}'
CLIENT_RC=$?
kill -TERM $SRV
wait $SRV
SRV_RC=$?
echo \"client_rc=$CLIENT_RC server_rc=$SRV_RC\"
test $CLIENT_RC -eq 0 && test $SRV_RC -eq 0
")

execute_process(
  COMMAND sh ${driver}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  file(READ ${server_log} slog)
  message(FATAL_ERROR "daemon smoke failed (rc=${rc})\n${out}\n${err}\nserver log:\n${slog}")
endif()

# The daemon must report a clean drain on SIGTERM.
file(READ ${server_log} slog)
foreach(needle "listening" "drained after" "quiescent=1")
  string(FIND "${slog}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "server log missing '${needle}':\n${slog}")
  endif()
endforeach()

# The scripted session must have completed its tickets over the wire.
file(READ ${client_out} cout)
foreach(needle "\"task_state\":\"succeeded\"" "\"completed\":1")
  string(FIND "${cout}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "client output missing '${needle}':\n${cout}")
  endif()
endforeach()

# The exit-time metrics dump carries the per-tenant counters.
file(READ ${metrics} prom)
foreach(needle "gridvc_front_tenant_t1_completed" "gridvc_front_sessions_open 0")
  string(FIND "${prom}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "metrics dump missing '${needle}':\n${prom}")
  endif()
endforeach()

message(STATUS "daemon smoke OK: scripted session + SIGTERM drain clean")
