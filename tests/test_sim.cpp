#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace gridvc::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInAddsDelay) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), gridvc::PreconditionError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), gridvc::PreconditionError);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), gridvc::PreconditionError);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInsideEarlierEvent) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule_at(2.0, [&] { fired = true; });
  sim.schedule_at(1.0, [&] { h.cancel(); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(10.0, [&] { ++count; });
  sim.run_until(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(20.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, PeriodicFiresOnGrid) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_periodic(10.0, 5.0, [&] {
    times.push_back(sim.now());
    return times.size() < 4;
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_periodic(1.0, 1.0, [&] {
    ++fired;
    return true;
  });
  sim.schedule_at(3.5, [&] { h.cancel(); });
  sim.run();
  EXPECT_EQ(fired, 3);  // t = 1, 2, 3
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, DispatchedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched(), 7u);
}

// Regression: pending() must flip to false the moment the event fires —
// the handle's contract is "neither fired nor been cancelled".
TEST(Simulator, HandleConsumedAtDispatch) {
  Simulator sim;
  EventHandle h;
  bool pending_inside = true;
  h = sim.schedule_at(1.0, [&] { pending_inside = h.pending(); });
  EXPECT_TRUE(h.pending());
  sim.run();
  EXPECT_FALSE(pending_inside);  // consumed before the callback runs
  EXPECT_FALSE(h.pending());
  h.cancel();  // safe no-op after firing
  EXPECT_EQ(sim.cancelled(), 0u);
}

// Regression: a handle to a fired event must not cancel an unrelated
// event that later reuses the same slab slot.
TEST(Simulator, StaleHandleDoesNotAffectReusedSlot) {
  Simulator sim;
  auto h1 = sim.schedule_at(1.0, [] {});
  sim.run();
  bool fired = false;
  auto h2 = sim.schedule_at(2.0, [&] { fired = true; });
  h1.cancel();  // stale generation: must miss
  EXPECT_TRUE(h2.pending());
  sim.run();
  EXPECT_TRUE(fired);
}

// Regression: idle() must report exact idleness even while the heap still
// holds cancelled tombstones.
TEST(Simulator, IdleIgnoresCancelledTombstones) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) handles.push_back(sim.schedule_at(1.0 + i, [] {}));
  EXPECT_FALSE(sim.idle());
  for (auto& h : handles) h.cancel();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.live_events(), 0u);
  EXPECT_FALSE(sim.step());  // tombstones are skipped, nothing fires
  EXPECT_EQ(sim.dispatched(), 0u);
}

TEST(Simulator, CountersTrackChurn) {
  Simulator sim;
  auto a = sim.schedule_at(1.0, [] {});
  auto b = sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.scheduled(), 3u);
  EXPECT_EQ(sim.live_events(), 3u);
  b.cancel();
  EXPECT_EQ(sim.cancelled(), 1u);
  EXPECT_EQ(sim.live_events(), 2u);
  sim.run();
  const auto c = sim.counters();
  EXPECT_EQ(c.scheduled, 3u);
  EXPECT_EQ(c.cancelled, 1u);
  EXPECT_EQ(c.dispatched, 2u);
  EXPECT_EQ(c.live, 0u);
  (void)a;
}

// Mass cancellation triggers tombstone compaction; the surviving events
// must still fire in order.
TEST(Simulator, CompactionPreservesLiveEvents) {
  Simulator sim;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(sim.schedule_at(1.0 + i, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (i % 4 != 0) handles[i].cancel();  // kill 150 of 200
  }
  EXPECT_EQ(sim.live_events(), 50u);
  sim.run();
  ASSERT_EQ(fired.size(), 50u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(sim.dispatched(), 50u);
  EXPECT_EQ(sim.cancelled(), 150u);
}

TEST(Simulator, PeriodicCancelFromOwnCallback) {
  Simulator sim;
  int fired = 0;
  EventHandle h;
  h = sim.schedule_periodic(1.0, 1.0, [&] {
    if (++fired == 2) h.cancel();
    return true;
  });
  EXPECT_TRUE(h.pending());
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, PeriodicHandleConsumedWhenSeriesEnds) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_periodic(1.0, 1.0, [&] { return ++fired < 3; });
  sim.run_until(2.0);
  EXPECT_TRUE(h.pending());  // series still live mid-way
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunUntilAtExactEventTimestamp) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(5.0, [&] { fired.push_back(1); });
  sim.schedule_at(5.0, [&] { fired.push_back(2); });
  sim.schedule_at(5.0 + 1e-9, [&] { fired.push_back(3); });
  sim.run_until(5.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));  // boundary events fire, FIFO
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

// Batched same-timestamp dispatch must preserve FIFO order, interleave
// same-time events scheduled *from* the batch after it, and honor
// cancellations made by earlier batch members.
TEST(Simulator, SameTimestampBatchKeepsFifoOrder) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(7.0, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Simulator, CallbackSchedulingAtSameTimeRunsAfterBatch) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(3.0, [&] {
    fired.push_back(0);
    // Scheduled mid-batch at the same timestamp: larger seq, so it must
    // run after every event already queued at t=3, not before.
    sim.schedule_at(3.0, [&] { fired.push_back(9); });
  });
  sim.schedule_at(3.0, [&] { fired.push_back(1); });
  sim.schedule_at(3.0, [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 9}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, CancellationWithinBatchIsHonored) {
  Simulator sim;
  std::vector<int> fired;
  EventHandle victim;
  sim.schedule_at(4.0, [&] {
    fired.push_back(0);
    victim.cancel();  // same-timestamp event later in this very batch
  });
  victim = sim.schedule_at(4.0, [&] { fired.push_back(1); });
  sim.schedule_at(4.0, [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
  EXPECT_EQ(sim.cancelled(), 1u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, PeriodicSeriesInterleavesWithBatches) {
  Simulator sim;
  std::vector<int> fired;
  int ticks = 0;
  sim.schedule_periodic(1.0, 1.0, [&] {
    fired.push_back(100 + ticks);
    return ++ticks < 3;
  });
  sim.schedule_at(1.0, [&] { fired.push_back(0); });
  sim.schedule_at(2.0, [&] { fired.push_back(1); });
  sim.run();
  // t=1: periodic (scheduled first), then the one-shot; t=2: periodic
  // re-arm has a later seq than the pre-scheduled one-shot.
  EXPECT_EQ(fired, (std::vector<int>{100, 0, 1, 101, 102}));
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, NextEventTimeSeesThroughCancellations) {
  Simulator sim;
  EXPECT_FALSE(sim.next_event_time().has_value());  // idle
  auto early = sim.schedule_at(1.0, [] {});
  sim.schedule_at(5.0, [] {});
  ASSERT_TRUE(sim.next_event_time().has_value());
  EXPECT_DOUBLE_EQ(*sim.next_event_time(), 1.0);
  // Cancelling the head tombstone must not be reported as the next event.
  early.cancel();
  ASSERT_TRUE(sim.next_event_time().has_value());
  EXPECT_DOUBLE_EQ(*sim.next_event_time(), 5.0);
  sim.run();
  EXPECT_FALSE(sim.next_event_time().has_value());
}

TEST(Simulator, NextEventTimeMatchesRunUntilBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(4.0, [&] { ++fired; });
  // Running exactly to the reported next event dispatches it (<= deadline).
  const auto t = sim.next_event_time();
  ASSERT_TRUE(t.has_value());
  sim.run_until(*t);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(*sim.next_event_time(), 4.0);
}

TEST(Simulator, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace gridvc::sim
