#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace gridvc::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInAddsDelay) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(0.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), gridvc::PreconditionError);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), gridvc::PreconditionError);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), gridvc::PreconditionError);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInsideEarlierEvent) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule_at(2.0, [&] { fired = true; });
  sim.schedule_at(1.0, [&] { h.cancel(); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilAdvancesClockPastLastEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(10.0, [&] { ++count; });
  sim.run_until(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_until(20.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, PeriodicFiresOnGrid) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_periodic(10.0, 5.0, [&] {
    times.push_back(sim.now());
    return times.size() < 4;
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  Simulator sim;
  int fired = 0;
  auto h = sim.schedule_periodic(1.0, 1.0, [&] {
    ++fired;
    return true;
  });
  sim.schedule_at(3.5, [&] { h.cancel(); });
  sim.run();
  EXPECT_EQ(fired, 3);  // t = 1, 2, 3
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(1.0, recurse);
  };
  sim.schedule_at(0.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, DispatchedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched(), 7u);
}

TEST(Simulator, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace gridvc::sim
