#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace gridvc {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 13.0);
    ASSERT_GE(v, -5.0);
    ASSERT_LT(v, 13.0);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, LognormalMedian) {
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 50001; ++i) values.push_back(rng.lognormal(std::log(5.0), 0.7));
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[values.size() / 2], 5.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(101), b(101);
  Rng fa = a.fork(7);
  Rng fb = b.fork(7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(fa(), fb());
}

TEST(Rng, ForksWithDifferentTagsDiffer) {
  Rng parent(55);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1() == f2()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Splitmix64, KnownProgression) {
  // splitmix64 is fully specified; two calls from the same state must
  // produce the documented deterministic progression.
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 0u);
}

}  // namespace
}  // namespace gridvc
