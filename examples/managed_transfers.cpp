// A VC-aware managed transfer service.
//
// §VII's closing motivation: understanding throughput factors gives "a
// mechanism for the data transfer application to estimate the rate and
// duration it should specify when requesting a virtual circuit". This
// example wires that loop together:
//
//   1. Tasks (batches of files) are queued in the TransferService.
//   2. Before each task starts, the application estimates its rate (from
//      the server ceilings) and duration (size / rate), requests a
//      circuit from the IDC for exactly that window, and tags the task's
//      transfers with the granted guarantee.
//   3. Failures mid-transfer are absorbed by restart-marker retries.
#include <cstdio>

#include <memory>

#include "common/strings.hpp"
#include "gridftp/transfer_service.hpp"
#include "net/network.hpp"
#include "vc/idc.hpp"
#include "workload/testbed.hpp"

using namespace gridvc;

int main() {
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  net::Network network(sim, tb.topo);

  gridftp::ServerConfig sc;
  sc.name = "ncar-dtn";
  sc.nic_rate = gbps(5);
  gridftp::Server ncar(sc);
  sc.name = "nics-dtn";
  gridftp::Server nics(sc);

  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig ecfg;
  ecfg.server_noise_sigma = 0.15;
  ecfg.failure_probability = 0.10;  // flaky enough to exercise retries
  ecfg.tcp.stream_buffer = 64 * MiB;
  gridftp::TransferEngine engine(network, collector, ecfg, Rng(21));

  gridftp::TransferServiceConfig scfg;
  scfg.max_active_tasks = 2;
  scfg.per_task_concurrency = 2;
  gridftp::TransferService service(sim, engine, scfg);

  vc::IdcConfig icfg;
  icfg.mode = vc::SignalingMode::kBatchedAutomatic;  // the real 1-min IDC
  vc::Idc idc(sim, tb.topo, icfg);

  // A competing best-effort hog on the same path makes the circuits
  // worth requesting.
  const net::Path path = tb.path(tb.ncar, tb.nics);
  network.start_flow(path, static_cast<Bytes>(1) << 55, {}, nullptr);

  gridftp::TransferSpec tmpl;
  tmpl.src = {&ncar, gridftp::IoMode::kDiskRead};
  tmpl.dst = {&nics, gridftp::IoMode::kMemory};
  tmpl.path = path;
  tmpl.rtt = tb.rtt(tb.ncar, tb.nics);
  tmpl.streams = 8;
  tmpl.remote_host = "nics-dtn";

  const struct {
    const char* label;
    int files;
    Bytes file_size;
  } datasets[] = {
      {"climate-monthly", 12, 2 * GiB},
      {"reanalysis-v5", 30, 512 * MiB},
      {"restart-dumps", 4, 16 * GiB},
  };

  for (const auto& d : datasets) {
    const std::vector<Bytes> files(static_cast<std::size_t>(d.files), d.file_size);
    const Bytes total = d.file_size * static_cast<Bytes>(d.files);

    // Rate/duration estimation per §VII: the application knows its own
    // server ceiling and asks for a circuit sized to it, padded 25% for
    // contention and retries.
    const BitsPerSecond rate = gbps(4);
    const Seconds estimated = transfer_time(total, rate) * 1.25 + 120.0;

    const auto reservation = idc.request_immediate(
        tb.ncar, tb.nics, rate, estimated,
        [&, label = std::string(d.label), files, estimated](const vc::Circuit& c) {
          std::printf("[%8.1f s] circuit for '%s' ACTIVE (%.1f Gbps for %.0f s; "
                      "setup took %.0f s)\n",
                      sim.now(), label.c_str(), to_gbps(c.request.bandwidth), estimated,
                      c.setup_delay());
          auto spec = tmpl;
          spec.guarantee = c.request.bandwidth;
          const std::uint64_t circuit_id = c.id;
          service.submit(label, files, spec,
                         [&, circuit_id](const gridftp::TaskStatus& s) {
                           std::printf("[%8.1f s] task '%s' %s: %zu files, %.1f GB "
                                       "in %.0f s (%.2f Gbps effective)\n",
                                       sim.now(), s.label.c_str(),
                                       s.state == gridftp::TaskState::kSucceeded
                                           ? "DONE"
                                           : "CANCELLED",
                                       s.files_done, to_gigabytes(s.bytes_done),
                                       s.finished_at - s.started_at,
                                       to_gbps(achieved_rate(
                                           s.bytes_done, s.finished_at - s.started_at)));
                           // Return the circuit as soon as the task drains
                           // (the paper's 1-2 min holding tolerance).
                           idc.release_now(circuit_id);
                         });
        });
    if (!reservation.accepted()) {
      // No circuit headroom right now: fall back to the IP-routed service
      // (the hybrid reality -- circuits are an optimization, not a gate).
      std::printf("[%8.1f s] no circuit headroom for '%s'; running best effort\n",
                  sim.now(), d.label);
      service.submit(d.label, files, tmpl, [&](const gridftp::TaskStatus& s) {
        std::printf("[%8.1f s] task '%s' DONE best-effort: %.1f GB in %.0f s "
                    "(%.2f Gbps effective)\n",
                    sim.now(), s.label.c_str(), to_gigabytes(s.bytes_done),
                    s.finished_at - s.started_at,
                    to_gbps(achieved_rate(s.bytes_done, s.finished_at - s.started_at)));
      });
    }
  }

  sim.run_until(4.0 * kHour);

  std::printf("\nengine: %llu transfers completed, %llu attempts, %llu mid-transfer "
              "failures retried\n",
              static_cast<unsigned long long>(engine.stats().completed),
              static_cast<unsigned long long>(engine.stats().attempts),
              static_cast<unsigned long long>(engine.stats().failures));
  std::printf("IDC: %llu circuits accepted, blocking %s\n",
              static_cast<unsigned long long>(idc.stats().accepted),
              format_percent(idc.stats().blocking_probability(), 1).c_str());
  return 0;
}
