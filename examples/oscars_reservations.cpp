// Driving the OSCARS-like circuit controller directly.
//
// Shows the control-plane API: advance reservations, immediate-use
// requests under batched (1-min) vs hardware (50 ms) signaling,
// admission rejections when a window is full, early release, and the
// inter-domain coordinator chaining two domains' controllers.
#include <cstdio>

#include "common/strings.hpp"
#include "vc/idc.hpp"
#include "vc/interdomain.hpp"
#include "workload/testbed.hpp"

using namespace gridvc;

int main() {
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;

  // --- Single-domain controller, ESnet-style batched signaling. -----------
  vc::Idc idc(sim, tb.topo);  // kBatchedAutomatic, 1-min batches

  // An advance reservation: 4 Gbps NERSC->ORNL for ten minutes, starting
  // in one hour. Activation is exactly at start time.
  vc::ReservationRequest req;
  req.src = tb.nersc;
  req.dst = tb.ornl;
  req.bandwidth = gbps(4);
  req.start_time = 3600.0;
  req.end_time = 4200.0;
  req.description = "climate-model output push";
  const auto advance = idc.create_reservation(
      req,
      [&](const vc::Circuit& c) {
        std::printf("[%8.1f s] advance circuit %llu ACTIVE on a %zu-hop path "
                    "(setup delay %.1f s)\n",
                    sim.now(), static_cast<unsigned long long>(c.id), c.path.size(),
                    c.setup_delay());
      },
      [&](const vc::Circuit& c) {
        std::printf("[%8.1f s] circuit %llu released\n", sim.now(),
                    static_cast<unsigned long long>(c.id));
      });
  std::printf("advance reservation accepted: %s\n", advance.accepted() ? "yes" : "no");

  // An immediate-use request under batched signaling: >= 1 min setup.
  idc.request_immediate(tb.slac, tb.bnl, gbps(2), 1800.0, [&](const vc::Circuit& c) {
    std::printf("[%8.1f s] immediate-use circuit ACTIVE after %.1f s "
                "(batched signaling: minimum one batch interval)\n",
                sim.now(), c.active_at - c.request.start_time);
  });

  // The same request under hypothetical 50 ms hardware signaling.
  vc::IdcConfig fast_cfg;
  fast_cfg.mode = vc::SignalingMode::kImmediate;
  fast_cfg.immediate_setup_delay = 0.05;
  vc::Idc fast_idc(sim, tb.topo, fast_cfg);
  fast_idc.request_immediate(tb.slac, tb.bnl, gbps(2), 1800.0, [&](const vc::Circuit& c) {
    std::printf("[%8.1f s] hardware-signaled circuit ACTIVE after %.3f s\n", sim.now(),
                c.active_at - c.request.start_time);
  });

  // Admission control: a second 8 Gbps circuit in the same window on the
  // same bottleneck is refused (a disjoint window so the earlier 4 Gbps
  // booking does not interfere with the first request).
  vc::ReservationRequest hog = req;
  hog.bandwidth = gbps(8);
  hog.start_time = 7200.0;
  hog.end_time = 7800.0;
  const auto first = idc.create_reservation(hog);
  const auto second = idc.create_reservation(hog);
  std::printf("two overlapping 8 Gbps requests: first %s, second %s\n",
              first.accepted() ? "accepted" : "rejected",
              second.accepted() ? "accepted" : "REJECTED (insufficient bandwidth)");

  sim.run();

  // --- Inter-domain chaining. ----------------------------------------------
  // Treat each site PE as its own domain plus the ESnet core; book an
  // NCAR->NICS circuit across all three.
  sim::Simulator sim2;
  vc::Idc ncar_idc(sim2, tb.topo), esnet_idc(sim2, tb.topo), nics_idc(sim2, tb.topo);
  vc::InterdomainCoordinator coordinator(
      sim2, tb.topo,
      {{"ncar", &ncar_idc}, {"esnet", &esnet_idc}, {"nics", &nics_idc}});

  vc::ReservationRequest inter;
  inter.src = tb.ncar;
  inter.dst = tb.nics;
  inter.bandwidth = gbps(3);
  inter.start_time = 1000.0;
  inter.end_time = 5000.0;
  const auto result = coordinator.create_reservation(inter);
  std::printf("\ninter-domain NCAR->NICS circuit: %s, %zu segments, end-to-end "
              "activation at t = %.0f s\n",
              result.accepted ? "accepted" : "rejected", result.segments.size(),
              result.activation);
  for (const auto& seg : result.segments) {
    std::printf("  segment in domain %-6s -> circuit id %llu\n", seg.domain.c_str(),
                static_cast<unsigned long long>(seg.circuit_id));
  }
  std::printf("\nIDC stats: accepted=%llu rejected(no bw)=%llu blocking=%s\n",
              static_cast<unsigned long long>(idc.stats().accepted),
              static_cast<unsigned long long>(idc.stats().rejected_no_bandwidth),
              format_percent(idc.stats().blocking_probability(), 1).c_str());
  return 0;
}
