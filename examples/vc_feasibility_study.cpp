// VC feasibility study on a synthetic site log.
//
// Demonstrates the paper's central methodology end to end: synthesize a
// realistic multi-month transfer log, sweep the session-gap parameter g
// and the VC setup delay, and report which fraction of sessions (and of
// transfers) could amortize dynamic-circuit setup.
//
// Usage: vc_feasibility_study [scale]
//   scale in (0,1] shrinks the SLAC-BNL-like workload (default 0.1 =
//   ~102k transfers, runs in well under a second).
#include <cstdio>
#include <cstdlib>

#include "analysis/session_grouping.hpp"
#include "analysis/vc_feasibility.hpp"
#include "common/strings.hpp"
#include "stats/table.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  double scale = 0.1;
  if (argc > 1) scale = std::atof(argv[1]);
  if (scale <= 0.0 || scale > 1.0) {
    std::fprintf(stderr, "usage: %s [scale in (0,1]]\n", argv[0]);
    return 2;
  }

  auto profile = workload::slac_bnl_profile(scale);
  std::printf("synthesizing ~%zu transfers (%s-like workload)...\n",
              profile.target_transfers, profile.name.c_str());
  const auto log = workload::synthesize_trace(profile, 2012);

  stats::Table table("Dynamic-VC suitability sweep (setup <= 1/10 of session duration)");
  table.set_header({"g", "Sessions", "setup = 1 min", "setup = 5 s", "setup = 50 ms"});
  for (double g : {0.0, 30.0, 60.0, 120.0, 300.0}) {
    const auto sessions = analysis::group_sessions(log, {.gap = g});
    std::vector<std::string> row{format_fixed(g, 0) + " s",
                                 std::to_string(sessions.size())};
    for (double setup : {60.0, 5.0, 0.05}) {
      const auto r =
          analysis::analyze_vc_feasibility(sessions, log, {.setup_delay = setup});
      row.push_back(format_percent(r.session_fraction(), 1) + " (" +
                    format_percent(r.transfer_fraction(), 1) + " of transfers)");
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nHow to read this: a session qualifies when the VC setup delay is at\n"
      "most a tenth of the session's hypothetical duration (size / Q3 transfer\n"
      "throughput). Growing g merges back-to-back batches into longer sessions,\n"
      "which is what makes the 1-min OSCARS setup delay amortizable.\n");
  return 0;
}
