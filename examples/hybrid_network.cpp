// Hybrid service comparison: the same alpha-flow workload carried (a) on
// the IP-routed best-effort service and (b) on dynamic circuits, while
// general-purpose cross traffic shares the path.
//
// This is the paper's operational motivation in one program: circuits
// stabilize the alpha flows' throughput (Section I positive #1), and the
// virtual-queue isolation quantifies the jitter relief for the
// general-purpose flows (positive #3).
#include <cstdio>

#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"
#include "stats/summary.hpp"
#include "vc/idc.hpp"
#include "vc/queue_isolation.hpp"
#include "workload/testbed.hpp"
#include "common/strings.hpp"

using namespace gridvc;

namespace {

stats::Summary run_transfers(bool circuits) {
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  net::Network network(sim, tb.topo);

  gridftp::ServerConfig cfg;
  cfg.name = "slac-dtn";
  cfg.nic_rate = gbps(9);
  gridftp::Server slac(cfg);
  cfg.name = "bnl-dtn";
  gridftp::Server bnl(cfg);

  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig ecfg;
  ecfg.server_noise_sigma = 0.12;
  ecfg.tcp.stream_buffer = 64 * MiB;
  gridftp::TransferEngine engine(network, collector, ecfg, Rng(7));

  const net::Path path = tb.path(tb.slac, tb.bnl);
  const Seconds rtt = tb.rtt(tb.slac, tb.bnl);

  // General-purpose traffic whose demand surges periodically.
  Rng surge_rng(99);
  net::FlowOptions gp;
  gp.cap = gbps(1);
  const auto gp_flow = network.start_flow(path, static_cast<Bytes>(1) << 60, gp, nullptr);
  sim.schedule_periodic(180.0, 180.0, [&] {
    network.update_cap(gp_flow, surge_rng.bernoulli(0.4) ? gbps(7.5) : gbps(1));
    return true;
  });

  vc::IdcConfig icfg;
  icfg.mode = vc::SignalingMode::kImmediate;
  vc::Idc idc(sim, tb.topo, icfg);

  std::vector<double> gbps_seen;
  for (int i = 0; i < 40; ++i) {
    sim.schedule_at(400.0 * (i + 1), [&] {
      gridftp::TransferSpec spec;
      spec.src = {&slac, gridftp::IoMode::kMemory};
      spec.dst = {&bnl, gridftp::IoMode::kMemory};
      spec.path = path;
      spec.rtt = rtt;
      spec.size = 12 * GiB;
      spec.streams = 8;
      spec.remote_host = "bnl-dtn";
      // NOTE: the recorder must be captured by value wherever it may fire
      // after this scheduled lambda returns (the circuit activation path).
      const auto record_result = [&gbps_seen](const gridftp::TransferRecord& r) {
        gbps_seen.push_back(to_gbps(r.throughput()));
      };
      if (circuits) {
        idc.request_immediate(tb.slac, tb.bnl, gbps(6), 350.0,
                              [&, spec, record_result](const vc::Circuit& c) {
                                auto s = spec;
                                s.guarantee = c.request.bandwidth;
                                engine.submit(s, record_result);
                              });
      } else {
        engine.submit(spec, record_result);
      }
    });
  }
  sim.run_until(400.0 * 44);
  return stats::summarize(gbps_seen);
}

}  // namespace

int main() {
  std::printf("=== Alpha-flow throughput: IP-routed vs dynamic circuits ===\n");
  const auto ip = run_transfers(false);
  const auto vc = run_transfers(true);
  std::printf("IP-routed : median %.2f Gbps, IQR %.2f, CV %s (n=%zu)\n", ip.median,
              ip.iqr(), format_percent(ip.cv(), 1).c_str(), ip.count);
  std::printf("circuits  : median %.2f Gbps, IQR %.2f, CV %s (n=%zu)\n", vc.median,
              vc.iqr(), format_percent(vc.cv(), 1).c_str(), vc.count);

  std::printf("\n=== General-purpose packet jitter: shared FIFO vs isolation ===\n");
  vc::InterfaceModel iface;
  iface.capacity = gbps(10);
  iface.gp_utilization = 0.07;
  iface.alpha_burst_per_second = 80.0;
  iface.alpha_burst_bytes = 4 * MiB;
  vc::QueueIsolationModel queue_model(iface);
  const auto shared = queue_model.shared_fifo_analytic();
  const auto isolated = queue_model.isolated_analytic();
  std::printf("shared FIFO : mean %.1f us, jitter %.1f us, p99 %.1f us\n",
              shared.mean * 1e6, shared.stddev * 1e6, shared.p99 * 1e6);
  std::printf("isolated VQ : mean %.1f us, jitter %.1f us, p99 %.1f us\n",
              isolated.mean * 1e6, isolated.stddev * 1e6, isolated.p99 * 1e6);
  std::printf("\nBoth sides of the paper's bargain: circuits steady the alpha\n"
              "flows AND shield everyone else from their bursts.\n");
  return 0;
}
