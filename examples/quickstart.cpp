// Quickstart: the five-minute tour of the library.
//
//   1. Build the multi-site testbed topology.
//   2. Run a GridFTP session (a batch of files) over the event-driven
//      network between two DTNs.
//   3. Collect the usage-statistics log, group it into sessions, and
//      print the characterization tables.
//   4. Dump the run's metrics-registry snapshot — every layer that
//      touched the simulator left its counters there.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/session_grouping.hpp"
#include "analysis/throughput_analysis.hpp"
#include "gridftp/session.hpp"
#include "gridftp/transfer_engine.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "stats/table.hpp"
#include "workload/testbed.hpp"

using namespace gridvc;

int main() {
  // 1. Topology: seven national-lab DTNs on an ESnet-like 10G backbone.
  workload::Testbed tb = workload::build_esnet_testbed();
  sim::Simulator sim;
  net::Network network(sim, tb.topo);
  std::printf("testbed: %zu nodes, %zu directed links; NERSC<->ORNL RTT = %.1f ms\n",
              tb.topo.node_count(), tb.topo.link_count(),
              tb.rtt(tb.nersc, tb.ornl) * 1000.0);

  // 2. Two data-transfer nodes and the transfer engine.
  gridftp::ServerConfig cfg;
  cfg.name = "nersc-dtn";
  cfg.nic_rate = gbps(4);
  cfg.disk_read_rate = gbps(2.5);
  cfg.disk_write_rate = gbps(1.5);
  gridftp::Server nersc(cfg);
  cfg.name = "ornl-dtn";
  gridftp::Server ornl(cfg);

  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngineConfig engine_cfg;
  engine_cfg.server_noise_sigma = 0.25;
  gridftp::TransferEngine engine(network, collector, engine_cfg, Rng(42));

  // 3. A user script: move 24 files of 512 MiB, two at a time.
  gridftp::SessionRunner runner(sim, engine);
  gridftp::SessionScript script;
  script.file_sizes.assign(24, 512 * MiB);
  script.concurrency = 2;
  gridftp::TransferSpec tmpl;
  tmpl.src = {&nersc, gridftp::IoMode::kDiskRead};
  tmpl.dst = {&ornl, gridftp::IoMode::kDiskWrite};
  tmpl.path = tb.path(tb.nersc, tb.ornl);
  tmpl.rtt = tb.rtt(tb.nersc, tb.ornl);
  tmpl.streams = 8;
  tmpl.remote_host = "ornl-dtn";
  script.transfer_template = tmpl;

  gridftp::SessionSummary summary;
  runner.run(script, [&](const gridftp::SessionSummary& s) { summary = s; });
  sim.run();

  std::printf("session: %zu transfers, %.1f GB in %.1f s (effective %.2f Gbps)\n\n",
              summary.transfers, to_gigabytes(summary.total_bytes), summary.duration(),
              to_gbps(summary.effective_rate()));

  // 4. Analyze the log the way the paper does.
  const auto& log = collector.log();
  const auto sessions = analysis::group_sessions(log, {.gap = 60.0});
  stats::Table table("Transfer characterization");
  table.set_header(analysis::summary_header("Quantity"));
  table.add_row(analysis::summary_row("Throughput (Mbps)",
                                      analysis::throughput_summary_mbps(log), 1));
  table.add_row(analysis::summary_row("Duration (s)",
                                      analysis::duration_summary_seconds(log), 2));
  std::printf("%s", table.render().c_str());
  std::printf("sessions found at g = 1 min: %zu\n", sessions.size());

  // 5. What the observability layer recorded, for free, along the way.
  const obs::MetricsSnapshot snap = sim.obs().registry().snapshot();
  std::printf("\nmetrics snapshot (%zu metrics; counters/gauges shown):\n",
              snap.entries.size());
  for (const auto& entry : snap.entries) {
    if (entry.kind == obs::MetricKind::kHistogram) continue;
    std::printf("  %-36s %.0f\n", entry.name.c_str(), entry.value);
  }
  return 0;
}
