// Minimal CSV reader/writer used by the GridFTP log serializer and the
// bench harness (each bench can dump the series behind a figure as CSV).
//
// Scope: comma-separated, optional double-quote quoting with "" escapes,
// no embedded newlines inside quoted fields. That covers the log schema
// this library emits and consumes; it is not a general CSV library.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gridvc {

using CsvRow = std::vector<std::string>;

/// Parse one CSV line into fields. Throws ParseError on an unterminated
/// quoted field.
CsvRow parse_csv_line(std::string_view line);

/// Render fields as one CSV line (without trailing newline). Fields
/// containing commas, quotes, or leading/trailing spaces are quoted.
std::string format_csv_line(const CsvRow& fields);

/// Read all rows from a stream; blank lines are skipped.
std::vector<CsvRow> read_csv(std::istream& in);

/// Write rows to a stream, one line per row.
void write_csv(std::ostream& out, const std::vector<CsvRow>& rows);

}  // namespace gridvc
