// Deterministic pseudo-random number generation.
//
// All stochastic components of the simulator draw from gridvc::Rng, a
// xoshiro256** generator seeded via splitmix64. Determinism matters here:
// every bench binary regenerates the paper's tables from a fixed seed, so
// runs are exactly reproducible across machines and build modes (we never
// rely on std::random_device or on unspecified standard-library
// distribution algorithms).
#pragma once

#include <cstdint>

namespace gridvc {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Public because workload generators also use it to derive per-entity
/// sub-seeds ("seed hashing").
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with explicit, value-semantics state.
///
/// Satisfies UniformRandomBitGenerator, so it can be used with standard
/// distributions where exact reproducibility is not required; the library
/// itself uses the bundled distribution implementations (distributions.hpp)
/// which are fully specified.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Two generators constructed with the same seed
  /// produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly distributed bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box–Muller; one value per call, cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential deviate with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);

  /// Lognormal deviate: exp(N(mu, sigma)). (mu/sigma are in log space.)
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Derive an independent generator for a sub-component. Streams derived
  /// with distinct tags are statistically independent of each other and of
  /// the parent's future output.
  Rng fork(std::uint64_t tag);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gridvc
