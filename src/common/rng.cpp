#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gridvc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GRIDVC_REQUIRE(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GRIDVC_REQUIRE(lo <= hi, "uniform_int range inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL / span) * span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; u1 in (0, 1] so the log is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  GRIDVC_REQUIRE(mean > 0.0, "exponential mean must be positive");
  return -mean * std::log(1.0 - uniform());
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork(std::uint64_t tag) {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(mix));
}

}  // namespace gridvc
