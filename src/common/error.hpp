// Error handling primitives for the gridvc library.
//
// The library reports programmer errors (precondition violations) via
// GRIDVC_REQUIRE, which throws gridvc::PreconditionError so tests can
// observe the failure, and domain errors (e.g. unroutable endpoints,
// rejected reservations) via dedicated exception types.
#pragma once

#include <stdexcept>
#include <string>

namespace gridvc {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an input file or record cannot be parsed.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulation entity is referenced that does not exist.
class NotFoundError : public std::runtime_error {
 public:
  explicit NotFoundError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void precondition_failure(const char* expr, const char* file,
                                              int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": precondition `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace gridvc

/// Validate a documented precondition of a public entry point.
#define GRIDVC_REQUIRE(expr, msg)                                              \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::gridvc::detail::precondition_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                          \
  } while (false)
