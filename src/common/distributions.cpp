#include "common/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridvc {

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  GRIDVC_REQUIRE(lo <= hi, "Uniform range inverted");
}

double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }

Exponential::Exponential(double mean) : mean_(mean) {
  GRIDVC_REQUIRE(mean > 0.0, "Exponential mean must be positive");
}

double Exponential::sample(Rng& rng) const { return rng.exponential(mean_); }

TruncatedLogNormal::TruncatedLogNormal(double median, double sigma_log, double lo, double hi)
    : mu_(std::log(median)), sigma_(sigma_log), lo_(lo), hi_(hi) {
  GRIDVC_REQUIRE(median > 0.0, "TruncatedLogNormal median must be positive");
  GRIDVC_REQUIRE(sigma_log >= 0.0, "TruncatedLogNormal sigma must be non-negative");
  GRIDVC_REQUIRE(lo <= hi, "TruncatedLogNormal range inverted");
}

double TruncatedLogNormal::sample(Rng& rng) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = rng.lognormal(mu_, sigma_);
    if (x >= lo_ && x <= hi_) return x;
  }
  return std::clamp(std::exp(mu_), lo_, hi_);
}

TruncatedPareto::TruncatedPareto(double alpha, double x_min, double x_max)
    : alpha_(alpha), x_min_(x_min), x_max_(x_max) {
  GRIDVC_REQUIRE(alpha > 0.0, "TruncatedPareto shape must be positive");
  GRIDVC_REQUIRE(x_min > 0.0 && x_min < x_max, "TruncatedPareto support invalid");
}

double TruncatedPareto::sample(Rng& rng) const {
  // Inverse CDF of the Pareto restricted to [x_min, x_max]:
  //   F(x) = (1 - (x_min/x)^a) / (1 - (x_min/x_max)^a)
  const double tail = std::pow(x_min_ / x_max_, alpha_);
  const double u = rng.uniform();
  return x_min_ / std::pow(1.0 - u * (1.0 - tail), 1.0 / alpha_);
}

EmpiricalQuantile::EmpiricalQuantile(std::vector<std::pair<double, double>> anchors)
    : anchors_(std::move(anchors)) {
  GRIDVC_REQUIRE(anchors_.size() >= 2, "EmpiricalQuantile needs at least 2 anchors");
  GRIDVC_REQUIRE(anchors_.front().first == 0.0, "EmpiricalQuantile must start at p=0");
  GRIDVC_REQUIRE(anchors_.back().first == 1.0, "EmpiricalQuantile must end at p=1");
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    GRIDVC_REQUIRE(anchors_[i].first >= anchors_[i - 1].first,
                   "EmpiricalQuantile probabilities must be sorted");
    GRIDVC_REQUIRE(anchors_[i].second >= anchors_[i - 1].second,
                   "EmpiricalQuantile values must be non-decreasing");
  }
}

double EmpiricalQuantile::quantile(double p) const {
  GRIDVC_REQUIRE(p >= 0.0 && p <= 1.0, "quantile probability out of range");
  auto it = std::upper_bound(
      anchors_.begin(), anchors_.end(), p,
      [](double lhs, const std::pair<double, double>& a) { return lhs < a.first; });
  if (it == anchors_.begin()) return anchors_.front().second;
  if (it == anchors_.end()) return anchors_.back().second;
  const auto& [p1, v1] = *(it - 1);
  const auto& [p2, v2] = *it;
  if (p2 == p1) return v1;
  const double w = (p - p1) / (p2 - p1);
  return v1 + w * (v2 - v1);
}

double EmpiricalQuantile::sample(Rng& rng) const { return quantile(rng.uniform()); }

Mixture::Mixture(std::vector<double> weights, std::vector<DistributionPtr> components)
    : components_(std::move(components)) {
  GRIDVC_REQUIRE(!weights.empty(), "Mixture must have at least one component");
  GRIDVC_REQUIRE(weights.size() == components_.size(),
                 "Mixture weight/component count mismatch");
  double total = 0.0;
  for (double w : weights) {
    GRIDVC_REQUIRE(w >= 0.0, "Mixture weights must be non-negative");
    total += w;
  }
  GRIDVC_REQUIRE(total > 0.0, "Mixture weights must not all be zero");
  double running = 0.0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    running += w / total;
    cumulative_.push_back(running);
  }
  cumulative_.back() = 1.0;  // guard against rounding
  for (const auto& c : components_) {
    GRIDVC_REQUIRE(c != nullptr, "Mixture component must not be null");
  }
}

double Mixture::sample(Rng& rng) const { return pick_component(rng)->sample(rng); }

const DistributionPtr& Mixture::pick_component(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t idx =
      std::min<std::size_t>(static_cast<std::size_t>(it - cumulative_.begin()),
                            components_.size() - 1);
  return components_[idx];
}

Discrete::Discrete(std::vector<double> values, std::vector<double> weights)
    : values_(std::move(values)) {
  GRIDVC_REQUIRE(!values_.empty(), "Discrete must have at least one value");
  GRIDVC_REQUIRE(values_.size() == weights.size(), "Discrete value/weight count mismatch");
  double total = 0.0;
  for (double w : weights) {
    GRIDVC_REQUIRE(w >= 0.0, "Discrete weights must be non-negative");
    total += w;
  }
  GRIDVC_REQUIRE(total > 0.0, "Discrete weights must not all be zero");
  double running = 0.0;
  cumulative_.reserve(weights.size());
  for (double w : weights) {
    running += w / total;
    cumulative_.push_back(running);
  }
  cumulative_.back() = 1.0;
}

double Discrete::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_.begin()), values_.size() - 1);
  return values_[idx];
}

}  // namespace gridvc
