#include "common/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace gridvc {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(delim, begin);
    if (end == std::string_view::npos) {
      fields.emplace_back(text.substr(begin));
      return fields;
    }
    fields.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_grouped(double value, int decimals) {
  std::string plain = format_fixed(std::abs(value), decimals);
  const std::size_t dot = plain.find('.');
  std::string integral = (dot == std::string::npos) ? plain : plain.substr(0, dot);
  const std::string fractional = (dot == std::string::npos) ? "" : plain.substr(dot);
  std::string grouped;
  grouped.reserve(integral.size() + integral.size() / 3 + fractional.size() + 1);
  const std::size_t n = integral.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) grouped.push_back(',');
    grouped.push_back(integral[i]);
  }
  if (value < 0) grouped.insert(grouped.begin(), '-');
  return grouped + fractional;
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace gridvc
