// Hugepage-backed allocator for large flat slabs.
//
// The hot-path data structures (the bandwidth-calendar B+ tree slabs,
// the booking slab) grow to tens of megabytes at high reservation
// counts. Backed by 4 KiB pages that working set overwhelms the DTLB,
// and every cache miss pays a page walk on top. Allocations routed
// through this allocator are mmap'd and tagged MADV_HUGEPAGE, so on
// kernels with transparent hugepages in `madvise` (or `always`) mode
// the slab is assembled from 2 MiB pages and the whole structure needs
// a handful of TLB entries. On other platforms it degrades to plain
// anonymous mappings (or operator new), which is never worse.
#pragma once

#include <cstddef>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace gridvc {

template <class T>
struct HugePageAllocator {
  using value_type = T;

  HugePageAllocator() = default;
  template <class U>
  HugePageAllocator(const HugePageAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
#if defined(__linux__)
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) throw std::bad_alloc();
#if defined(MADV_HUGEPAGE)
    // Advisory: harmless when THP is disabled.
    (void)::madvise(p, bytes, MADV_HUGEPAGE);
#endif
    return static_cast<T*>(p);
#else
    return static_cast<T*>(::operator new(bytes));
#endif
  }

  void deallocate(T* p, std::size_t n) noexcept {
#if defined(__linux__)
    ::munmap(p, n * sizeof(T));
#else
    ::operator delete(p);
#endif
  }

  template <class U>
  bool operator==(const HugePageAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace gridvc
