#include "common/csv.hpp"

#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace gridvc {

CsvRow parse_csv_line(std::string_view line) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // tolerate CRLF input
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) throw ParseError("unterminated quoted CSV field: " + std::string(line));
  fields.push_back(std::move(current));
  return fields;
}

std::string format_csv_line(const CsvRow& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quotes =
        f.find_first_of(",\"") != std::string::npos ||
        (!f.empty() && (f.front() == ' ' || f.back() == ' '));
    if (!needs_quotes) {
      line += f;
      continue;
    }
    line.push_back('"');
    for (char c : f) {
      if (c == '"') line.push_back('"');
      line.push_back(c);
    }
    line.push_back('"');
  }
  return line;
}

std::vector<CsvRow> read_csv(std::istream& in) {
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

void write_csv(std::ostream& out, const std::vector<CsvRow>& rows) {
  for (const auto& row : rows) {
    out << format_csv_line(row) << '\n';
  }
}

}  // namespace gridvc
