// Fully specified sampling distributions for workload generation.
//
// The standard library's distribution objects are implementation-defined,
// which would make the reproduced tables differ across standard libraries.
// These implementations are exact functions of the Rng stream.
//
// The workload calibration (src/workload/) composes these primitives:
// right-skewed session sizes are TruncatedLogNormal / TruncatedPareto,
// file-size mixes are Mixture over point masses and ranges, and published
// quartiles are matched with EmpiricalQuantile.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace gridvc {

/// Abstract sampling distribution over doubles.
class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Draw one sample using `rng`.
  virtual double sample(Rng& rng) const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Point mass: always returns `value`.
class Constant final : public Distribution {
 public:
  explicit Constant(double value) : value_(value) {}
  double sample(Rng&) const override { return value_; }

 private:
  double value_;
};

/// Uniform over [lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  double sample(Rng& rng) const override;

 private:
  double lo_, hi_;
};

/// Exponential with the given mean.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);
  double sample(Rng& rng) const override;

 private:
  double mean_;
};

/// Lognormal parameterized by the *linear-space* median and the log-space
/// sigma; optionally truncated to [lo, hi] by resampling (at most 64
/// attempts, then clamped).
class TruncatedLogNormal final : public Distribution {
 public:
  TruncatedLogNormal(double median, double sigma_log, double lo, double hi);
  double sample(Rng& rng) const override;

 private:
  double mu_, sigma_, lo_, hi_;
};

/// Pareto (type I) with shape alpha and scale x_min, truncated at x_max via
/// inverse-CDF sampling restricted to the truncated support (exact, no
/// rejection).
class TruncatedPareto final : public Distribution {
 public:
  TruncatedPareto(double alpha, double x_min, double x_max);
  double sample(Rng& rng) const override;

 private:
  double alpha_, x_min_, x_max_;
};

/// Piecewise-linear inverse CDF through the given (probability, value)
/// anchor points. This is how workload profiles match the paper's published
/// five-number summaries exactly: anchors at p = 0, .25, .5, .75, 1.
class EmpiricalQuantile final : public Distribution {
 public:
  /// `anchors` must be sorted by probability, start at p=0, end at p=1,
  /// and have non-decreasing values.
  explicit EmpiricalQuantile(std::vector<std::pair<double, double>> anchors);
  double sample(Rng& rng) const override;
  /// Evaluate the inverse CDF at probability p in [0, 1].
  double quantile(double p) const;

 private:
  std::vector<std::pair<double, double>> anchors_;
};

/// Finite mixture: picks component i with probability weight_i / sum(weights).
class Mixture final : public Distribution {
 public:
  Mixture(std::vector<double> weights, std::vector<DistributionPtr> components);
  double sample(Rng& rng) const override;

  /// Draw a component according to the mixture weights (used by workload
  /// generators that fix one component per batch: a user script typically
  /// moves a directory of same-class files).
  const DistributionPtr& pick_component(Rng& rng) const;

 private:
  std::vector<double> cumulative_;  // normalized cumulative weights
  std::vector<DistributionPtr> components_;
};

/// Discrete distribution over explicit values with the given weights.
class Discrete final : public Distribution {
 public:
  Discrete(std::vector<double> values, std::vector<double> weights);
  double sample(Rng& rng) const override;

 private:
  std::vector<double> values_;
  std::vector<double> cumulative_;
};

}  // namespace gridvc
