// Small string utilities shared across the library: splitting/trimming for
// parsers, and printf-style numeric formatting for table renderers (GCC 12
// has no std::format, so we provide the few formatters the reports need).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gridvc {

/// Split `text` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Format a double with `decimals` fractional digits ("12.34").
std::string format_fixed(double value, int decimals);

/// Format with thousands separators and `decimals` fractional digits
/// ("12,037,604.5"), as the paper's tables print sizes.
std::string format_grouped(double value, int decimals);

/// Format a fraction as a percentage string with `decimals` digits ("56.87%").
std::string format_percent(double fraction, int decimals);

/// Case-sensitive prefix test.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace gridvc
