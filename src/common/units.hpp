// Units used throughout the library.
//
// Conventions (matching the paper's):
//   * time        — double seconds since simulation epoch (t = 0)
//   * data sizes  — std::uint64_t bytes; 1 MB = 2^20 bytes, 1 GB = 2^30 bytes
//                   (the paper states "assuming 1 MB = 2^20 bytes")
//   * rates       — double bits per second; tables report Mbps/Gbps
//
// Helper literals and conversion functions keep call sites readable:
//   `4 * GiB`, `mbps(682.2)`, `to_mbps(rate)`.
#pragma once

#include <cstdint>

namespace gridvc {

/// Simulation time in seconds.
using Seconds = double;

/// Data size in bytes.
using Bytes = std::uint64_t;

/// Data rate in bits per second.
using BitsPerSecond = double;

inline constexpr Bytes KiB = 1024ULL;
inline constexpr Bytes MiB = 1024ULL * KiB;
inline constexpr Bytes GiB = 1024ULL * MiB;
inline constexpr Bytes TiB = 1024ULL * GiB;

inline constexpr Seconds kMinute = 60.0;
inline constexpr Seconds kHour = 3600.0;
inline constexpr Seconds kDay = 86400.0;

/// Construct a rate from megabits per second.
constexpr BitsPerSecond mbps(double v) { return v * 1e6; }
/// Construct a rate from gigabits per second.
constexpr BitsPerSecond gbps(double v) { return v * 1e9; }

/// Express a rate in megabits per second (for reporting).
constexpr double to_mbps(BitsPerSecond r) { return r / 1e6; }
/// Express a rate in gigabits per second (for reporting).
constexpr double to_gbps(BitsPerSecond r) { return r / 1e9; }

/// Express a size in (binary) megabytes, as the paper's tables do.
constexpr double to_megabytes(Bytes b) { return static_cast<double>(b) / static_cast<double>(MiB); }
/// Express a size in (binary) gigabytes.
constexpr double to_gigabytes(Bytes b) { return static_cast<double>(b) / static_cast<double>(GiB); }

/// Time to move `size` bytes at `rate` bits/s. Returns +inf for rate <= 0.
constexpr Seconds transfer_time(Bytes size, BitsPerSecond rate) {
  return rate > 0.0 ? (static_cast<double>(size) * 8.0) / rate
                    : 1e300;  // effectively never completes
}

/// Average rate achieved moving `size` bytes in `duration` seconds.
constexpr BitsPerSecond achieved_rate(Bytes size, Seconds duration) {
  return duration > 0.0 ? (static_cast<double>(size) * 8.0) / duration : 0.0;
}

}  // namespace gridvc
