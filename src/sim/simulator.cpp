#include "sim/simulator.hpp"

#include <utility>

#include "common/error.hpp"

namespace gridvc::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle Simulator::schedule_at(Seconds when, Callback fn) {
  GRIDVC_REQUIRE(when >= now_, "cannot schedule an event in the past");
  GRIDVC_REQUIRE(fn != nullptr, "cannot schedule a null callback");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Scheduled{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

EventHandle Simulator::schedule_in(Seconds delay, Callback fn) {
  GRIDVC_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Seconds start, Seconds period,
                                         std::function<bool()> fn) {
  GRIDVC_REQUIRE(period > 0.0, "periodic event needs a positive period");
  GRIDVC_REQUIRE(fn != nullptr, "cannot schedule a null callback");
  // The outer handle controls the whole periodic series: the wrapper
  // re-schedules itself under the same cancellation flag.
  auto cancelled = std::make_shared<bool>(false);
  auto tick = std::make_shared<std::function<void(Seconds)>>();
  *tick = [this, period, fn = std::move(fn), cancelled, tick](Seconds when) {
    if (*cancelled) return;
    if (!fn()) {
      *cancelled = true;
      return;
    }
    const Seconds next = when + period;
    queue_.push(Scheduled{next, next_seq_++, [tick, next] { (*tick)(next); }, cancelled});
  };
  queue_.push(Scheduled{start, next_seq_++, [tick, start] { (*tick)(start); }, cancelled});
  return EventHandle(std::move(cancelled));
}

void Simulator::drop_dead_events() {
  while (!queue_.empty() && *queue_.top().cancelled) queue_.pop();
}

bool Simulator::step() {
  drop_dead_events();
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied out so the callback
  // may schedule/cancel freely while running.
  Scheduled ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++dispatched_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Seconds deadline) {
  GRIDVC_REQUIRE(deadline >= now_, "run_until deadline is in the past");
  while (true) {
    drop_dead_events();
    if (queue_.empty() || queue_.top().when > deadline) break;
    step();
  }
  now_ = deadline;
}

bool Simulator::idle() const {
  // Cheap check: scan a copy-free heap is not possible with
  // priority_queue, so idle() conservatively reports the queue state
  // after dead-event removal done by const_cast-free means: we only look
  // at emptiness here; callers that need exactness should use step().
  if (queue_.empty()) return true;
  // The top may be a cancelled tombstone; treat any live entry as busy.
  // (We cannot iterate a priority_queue, so this errs on the busy side.)
  return false;
}

}  // namespace gridvc::sim
