#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace gridvc::sim {

void EventHandle::cancel() {
  if (sim_) sim_->cancel_event(slot_, generation_);
}

bool EventHandle::pending() const { return sim_ && sim_->event_pending(slot_, generation_); }

Simulator::Simulator() {
  obs::MetricsRegistry& reg = obs_.registry();
  id_scheduled_ = reg.counter("gridvc_sim_events_scheduled",
                              "Queue pushes, periodic re-arms included");
  id_cancelled_ = reg.counter("gridvc_sim_events_cancelled",
                              "Events killed before firing");
  id_dispatched_ = reg.counter("gridvc_sim_events_dispatched",
                               "Callbacks actually run");
  id_compactions_ = reg.counter("gridvc_sim_heap_compactions",
                                "Tombstone-purging heap rebuilds");
  id_batches_ = reg.counter("gridvc_sim_dispatch_batches",
                            "Same-timestamp dispatch batches drained by run()");
  id_live_ = reg.gauge("gridvc_sim_events_live",
                       "Events currently awaiting dispatch");
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.generation;  // invalidates stale heap entries and handles
  s.fn = nullptr;
  s.repeat = nullptr;
  s.live = false;
  s.periodic = false;
  free_slots_.push_back(slot);
}

void Simulator::push_entry(Seconds when, std::uint32_t slot, std::uint64_t generation) {
  heap_.push_back(QueuedEvent{when, next_seq_++, slot, generation});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  obs_.registry().add(id_scheduled_);
}

bool Simulator::entry_live(const QueuedEvent& e) const {
  const Slot& s = slots_[e.slot];
  return s.live && s.generation == e.generation;
}

EventHandle Simulator::schedule_at(Seconds when, Callback fn) {
  GRIDVC_REQUIRE(when >= now_, "cannot schedule an event in the past");
  GRIDVC_REQUIRE(fn != nullptr, "cannot schedule a null callback");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  set_live(live_ + 1);
  push_entry(when, slot, s.generation);
  return EventHandle(this, slot, s.generation);
}

EventHandle Simulator::schedule_in(Seconds delay, Callback fn) {
  GRIDVC_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_periodic(Seconds start, Seconds period,
                                         std::function<bool()> fn) {
  GRIDVC_REQUIRE(period > 0.0, "periodic event needs a positive period");
  GRIDVC_REQUIRE(fn != nullptr, "cannot schedule a null callback");
  // One slot carries the whole series: each firing re-arms the same slot
  // under the same generation, so the handle stays valid throughout.
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.repeat = std::move(fn);
  s.period = period;
  s.live = true;
  s.periodic = true;
  set_live(live_ + 1);
  push_entry(start, slot, s.generation);
  return EventHandle(this, slot, s.generation);
}

void Simulator::cancel_event(std::uint32_t slot, std::uint64_t generation) {
  if (slot >= slots_.size()) return;
  const Slot& s = slots_[slot];
  if (!s.live || s.generation != generation) return;  // already fired/cancelled
  release_slot(slot);
  obs_.registry().add(id_cancelled_);
  set_live(live_ - 1);
  maybe_compact();
}

bool Simulator::event_pending(std::uint32_t slot, std::uint64_t generation) const {
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.live && s.generation == generation;
}

void Simulator::drop_dead_events() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

void Simulator::maybe_compact() {
  // Rebuild only when tombstones exceed half the heap; the rebuild is
  // O(heap) and amortizes against the cancels that created the garbage.
  if (heap_.size() < 64 || heap_.size() <= live_ * 2) return;
  std::erase_if(heap_, [this](const QueuedEvent& e) { return !entry_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  obs_.registry().add(id_compactions_);
}

void Simulator::dispatch_entry(const QueuedEvent& e) {
  now_ = e.when;
  obs_.registry().add(id_dispatched_);
  if (!slots_[e.slot].periodic) {
    // Move the callback out and free the slot *before* running it: the
    // handle reads as consumed inside the callback, and the callback may
    // schedule/cancel freely (including reusing this slot).
    Callback fn = std::move(slots_[e.slot].fn);
    release_slot(e.slot);
    set_live(live_ - 1);
    fn();
  } else {
    std::function<bool()> fn = std::move(slots_[e.slot].repeat);
    const Seconds period = slots_[e.slot].period;
    const bool keep_going = fn();
    // Re-fetch: the callback may have grown the slab or cancelled the
    // series (which bumps the generation).
    Slot& s = slots_[e.slot];
    if (s.live && s.generation == e.generation) {
      if (keep_going) {
        s.repeat = std::move(fn);
        push_entry(e.when + period, e.slot, e.generation);
      } else {
        release_slot(e.slot);
        set_live(live_ - 1);
      }
    }
  }
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const QueuedEvent top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    if (!entry_live(top)) continue;  // tombstone
    dispatch_entry(top);
    return true;
  }
  return false;
}

std::optional<Seconds> Simulator::next_event_time() {
  drop_dead_events();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

bool Simulator::collect_batch(Seconds deadline) {
  drop_dead_events();
  if (heap_.empty() || heap_.front().when > deadline) return false;
  const Seconds when = heap_.front().when;
  batch_.clear();
  while (!heap_.empty() && heap_.front().when == when) {
    const QueuedEvent top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    if (entry_live(top)) batch_.push_back(top);
  }
  obs_.registry().add(id_batches_);
  return true;
}

void Simulator::run() {
  // Same-timestamp events drain as one batch: the heap is popped once per
  // timestamp group, and callbacks that schedule *new* work at the same
  // time still interleave correctly — their seq numbers are larger than
  // every batched entry's, so the next collect_batch picks them up at the
  // same timestamp, after this batch, exactly as FIFO tie-breaking demands.
  while (collect_batch(std::numeric_limits<Seconds>::infinity())) {
    GRIDVC_PROF_ZONE("sim.dispatch_batch");
    for (const QueuedEvent& e : batch_) {
      // A callback earlier in the batch may have cancelled this entry (or
      // released and re-armed its slot): re-check liveness at dispatch.
      if (!entry_live(e)) continue;
      dispatch_entry(e);
    }
  }
}

void Simulator::run_until(Seconds deadline) {
  GRIDVC_REQUIRE(deadline >= now_, "run_until deadline is in the past");
  while (collect_batch(deadline)) {
    GRIDVC_PROF_ZONE("sim.dispatch_batch");
    for (const QueuedEvent& e : batch_) {
      if (!entry_live(e)) continue;
      dispatch_entry(e);
    }
  }
  now_ = deadline;
}

}  // namespace gridvc::sim
