// Discrete-event simulation engine.
//
// All dynamic subsystems (the flow-level network, the GridFTP transfer
// engine, the virtual-circuit controller, cross-traffic sources, SNMP
// samplers) are driven by one Simulator. Events are (time, callback)
// pairs; ties are broken by insertion order so runs are deterministic.
//
// Scheduled events can be cancelled through the returned EventHandle —
// flow completions are rescheduled every time the fair-share allocator
// changes a flow's rate, so cancellation is on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace gridvc::sim {

/// Cancellation token for a scheduled event. Copyable; all copies refer to
/// the same scheduled occurrence.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Idempotent; safe after the event fired.
  void cancel();

  /// True if the event has neither fired nor been cancelled.
  bool pending() const;

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event loop.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds since epoch 0).
  Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `when`. Scheduling in the past (before
  /// now()) is a precondition violation.
  EventHandle schedule_at(Seconds when, Callback fn);

  /// Schedule `fn` after `delay` seconds. Requires delay >= 0.
  EventHandle schedule_in(Seconds delay, Callback fn);

  /// Schedule `fn` every `period` seconds, first firing at `start`.
  /// The callback returns true to continue, false to stop.
  EventHandle schedule_periodic(Seconds start, Seconds period, std::function<bool()> fn);

  /// Run until the queue is empty.
  void run();

  /// Run events with time <= `deadline`; afterwards now() == max(now, deadline).
  void run_until(Seconds deadline);

  /// Process exactly one event if any is queued; returns false when empty.
  bool step();

  /// Number of events dispatched so far (diagnostics).
  std::uint64_t dispatched() const { return dispatched_; }

  /// True when no live (non-cancelled) events remain.
  bool idle() const;

 private:
  struct Scheduled {
    Seconds when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the top of the heap.
  void drop_dead_events();

  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace gridvc::sim
