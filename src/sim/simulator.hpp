// Discrete-event simulation engine.
//
// All dynamic subsystems (the flow-level network, the GridFTP transfer
// engine, the virtual-circuit controller, cross-traffic sources, SNMP
// samplers) are driven by one Simulator. Events are (time, callback)
// pairs; ties are broken by insertion order so runs are deterministic.
//
// Scheduled events can be cancelled through the returned EventHandle —
// flow completions are rescheduled every time the fair-share allocator
// changes a flow's rate, so schedule/cancel is the hot path. Event
// records live in a slab: the binary heap holds only small POD entries
// {when, seq, slot, generation}, a cancel is a generation bump (no heap
// surgery), and stale heap entries are skipped at pop time and compacted
// away in bulk once dead entries outnumber live ones.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "obs/observability.hpp"

namespace gridvc::sim {

class Simulator;

/// Cancellation token for a scheduled event. Copyable; all copies refer to
/// the same scheduled occurrence. Handles must not outlive the Simulator
/// that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Idempotent; safe after the event fired.
  void cancel();

  /// True if the event has neither fired nor been cancelled. For periodic
  /// events, true until the series is cancelled or its callback stops it.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

/// The event loop.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Lifetime scheduling/dispatch totals (diagnostics; benches and tests
  /// assert on churn through these). Since the observability layer landed
  /// this is a read shim over the metrics registry (gridvc_sim_*): the
  /// counters live in registry slots and this struct is assembled on
  /// demand, so existing call sites keep compiling unchanged.
  struct Counters {
    std::uint64_t scheduled = 0;   ///< queue pushes, including periodic re-arms
    std::uint64_t cancelled = 0;   ///< events killed before firing
    std::uint64_t dispatched = 0;  ///< callbacks actually run
    std::size_t live = 0;          ///< events currently awaiting dispatch
  };

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The simulation's observability context (metrics registry + trace
  /// sink). Every subsystem that holds the simulator instruments itself
  /// through this.
  obs::Observability& obs() { return obs_; }
  const obs::Observability& obs() const { return obs_; }

  /// Current simulation time (seconds since epoch 0).
  Seconds now() const { return now_; }

  /// Schedule `fn` at absolute time `when`. Scheduling in the past (before
  /// now()) is a precondition violation.
  EventHandle schedule_at(Seconds when, Callback fn);

  /// Schedule `fn` after `delay` seconds. Requires delay >= 0.
  EventHandle schedule_in(Seconds delay, Callback fn);

  /// Schedule `fn` every `period` seconds, first firing at `start`.
  /// The callback returns true to continue, false to stop.
  EventHandle schedule_periodic(Seconds start, Seconds period, std::function<bool()> fn);

  /// Run until the queue is empty. Events sharing a timestamp are popped
  /// from the heap as one batch and dispatched back to back (in seq
  /// order, so FIFO tie-breaking is unchanged) — the heap is touched
  /// once per batch instead of being re-examined between every pair of
  /// simultaneous events. Not reentrant: callbacks must not call run().
  void run();

  /// Run events with time <= `deadline`; afterwards now() == max(now, deadline).
  /// Uses the same batched dispatch as run().
  void run_until(Seconds deadline);

  /// Process exactly one event if any is queued; returns false when empty.
  bool step();

  /// Timestamp of the earliest live event, or nothing when idle. Drops
  /// cancelled tombstones off the heap top as a side effect; O(1) amortized.
  /// Conservative lookahead scheduling (src/shard/) polls this every
  /// barrier round to pick the next epoch horizon.
  std::optional<Seconds> next_event_time();

  /// Number of events dispatched so far (diagnostics).
  std::uint64_t dispatched() const { return obs_.registry().counter_value(id_dispatched_); }

  /// Number of queue pushes so far, periodic re-arms included.
  std::uint64_t scheduled() const { return obs_.registry().counter_value(id_scheduled_); }

  /// Number of events cancelled before they could fire.
  std::uint64_t cancelled() const { return obs_.registry().counter_value(id_cancelled_); }

  /// Events currently scheduled and neither fired nor cancelled.
  std::size_t live_events() const { return live_; }

  /// Snapshot of all lifetime counters (registry reads; see Counters).
  Counters counters() const {
    return Counters{scheduled(), cancelled(), dispatched(), live_};
  }

  /// True when no live (non-cancelled) events remain. Exact: cancelled
  /// tombstones still sitting in the heap do not count as busy.
  bool idle() const { return live_ == 0; }

 private:
  friend class EventHandle;

  /// One slab record. A slot is live while its event awaits dispatch (or,
  /// for periodic series, for the whole series); the generation is bumped
  /// on every release so stale heap entries and stale handles miss.
  struct Slot {
    std::uint64_t generation = 1;
    Callback fn;                   // one-shot payload
    std::function<bool()> repeat;  // periodic payload
    Seconds period = 0.0;
    bool live = false;
    bool periodic = false;
  };

  /// Heap entry: POD only; the callback stays in the slab.
  struct QueuedEvent {
    Seconds when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    std::uint32_t slot;
    std::uint64_t generation;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void push_entry(Seconds when, std::uint32_t slot, std::uint64_t generation);
  bool entry_live(const QueuedEvent& e) const;
  // Pops stale entries (released or re-armed-elsewhere slots) off the top.
  void drop_dead_events();
  // Rebuilds the heap without tombstones once they outnumber live events.
  void maybe_compact();
  // Pops every live entry sharing the earliest timestamp <= deadline into
  // batch_ (seq order preserved). Returns false when nothing qualifies.
  bool collect_batch(Seconds deadline);
  // Runs one popped entry: advances now_, counts the dispatch, fires the
  // callback (re-arming periodic series). The entry must be live.
  void dispatch_entry(const QueuedEvent& e);

  void cancel_event(std::uint32_t slot, std::uint64_t generation);
  bool event_pending(std::uint32_t slot, std::uint64_t generation) const;

  void set_live(std::size_t live) {
    live_ = live;
    obs_.registry().set(id_live_, static_cast<double>(live));
  }

  obs::Observability obs_;  // first: metric ids below are registered from it
  obs::MetricId id_scheduled_;
  obs::MetricId id_cancelled_;
  obs::MetricId id_dispatched_;
  obs::MetricId id_compactions_;
  obs::MetricId id_batches_;
  obs::MetricId id_live_;
  std::vector<QueuedEvent> heap_;
  std::vector<QueuedEvent> batch_;  // same-timestamp dispatch buffer
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace gridvc::sim
