// Batch-session client.
//
// §VI-A: "Often scientists move lots of files because their simulation
// programs or experiments create many files. Scripts are used to have
// GridFTP move all files in one or more directories." The SessionRunner
// is that script: it feeds a list of files to the TransferEngine with a
// configurable in-flight concurrency (concurrent starts are why observed
// inter-transfer gaps can be negative) and optional think-time between
// files, and reports a session summary when the last file lands.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_engine.hpp"
#include "sim/simulator.hpp"

namespace gridvc::gridftp {

struct SessionScript {
  /// Files to move, in order.
  std::vector<Bytes> file_sizes;
  /// Maximum transfers in flight at once (globus-url-copy -cc style).
  int concurrency = 1;
  /// Think time between a completion and the next submission.
  Seconds inter_file_gap = 0.0;
  /// Template for every transfer (size is filled per file).
  TransferSpec transfer_template;
};

struct SessionSummary {
  std::uint64_t session_id = 0;
  std::size_t transfers = 0;
  Bytes total_bytes = 0;
  Seconds start_time = 0.0;
  Seconds end_time = 0.0;

  Seconds duration() const { return end_time - start_time; }
  BitsPerSecond effective_rate() const { return achieved_rate(total_bytes, duration()); }
};

class SessionRunner {
 public:
  using SessionDoneFn = std::function<void(const SessionSummary&)>;

  SessionRunner(sim::Simulator& sim, TransferEngine& engine);
  SessionRunner(const SessionRunner&) = delete;
  SessionRunner& operator=(const SessionRunner&) = delete;

  /// Begin a session now; several sessions may run concurrently.
  /// Requires at least one file and concurrency >= 1.
  std::uint64_t run(SessionScript script, SessionDoneFn on_done = nullptr);

  std::size_t active_sessions() const { return sessions_.size(); }

 private:
  struct ActiveSession {
    SessionScript script;
    SessionSummary summary;
    std::size_t next_file = 0;
    std::size_t in_flight = 0;
    SessionDoneFn on_done;
  };

  void pump(std::uint64_t session_id);
  void on_transfer_done(std::uint64_t session_id);

  sim::Simulator& sim_;
  TransferEngine& engine_;
  std::map<std::uint64_t, ActiveSession> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace gridvc::gridftp
