#include "gridftp/transfer_log.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/csv.hpp"
#include "exec/parallel_sort.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace gridvc::gridftp {

namespace {
const char* const kHeader = "type,size,start_time,duration,server,remote,streams,stripes,tcp_buffer,block_size";

std::string type_code(TransferType t) { return t == TransferType::kStore ? "STOR" : "RETR"; }

TransferType parse_type(const std::string& s) {
  if (s == "STOR") return TransferType::kStore;
  if (s == "RETR") return TransferType::kRetrieve;
  throw ParseError("unknown transfer type: " + s);
}
}  // namespace

void write_log(std::ostream& out, const TransferLog& log) {
  out << kHeader << '\n';
  for (const auto& r : log) {
    CsvRow row{
        type_code(r.type),
        std::to_string(r.size),
        format_fixed(r.start_time, 6),
        format_fixed(r.duration, 6),
        r.server_host,
        r.remote_host,
        std::to_string(r.streams),
        std::to_string(r.stripes),
        std::to_string(r.tcp_buffer),
        std::to_string(r.block_size),
    };
    out << format_csv_line(row) << '\n';
  }
}

TransferLog read_log(std::istream& in) {
  const auto rows = read_csv(in);
  GRIDVC_REQUIRE(!rows.empty(), "empty transfer log");
  TransferLog log;
  log.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {  // skip header
    const CsvRow& row = rows[i];
    if (row.size() != 10) {
      throw ParseError("transfer log row " + std::to_string(i) + " has " +
                       std::to_string(row.size()) + " fields, expected 10");
    }
    try {
      TransferRecord r;
      r.type = parse_type(row[0]);
      r.size = static_cast<Bytes>(std::stoull(row[1]));
      r.start_time = std::stod(row[2]);
      r.duration = std::stod(row[3]);
      r.server_host = row[4];
      r.remote_host = row[5];
      r.streams = std::stoi(row[6]);
      r.stripes = std::stoi(row[7]);
      r.tcp_buffer = static_cast<Bytes>(std::stoull(row[8]));
      r.block_size = static_cast<Bytes>(std::stoull(row[9]));
      log.push_back(std::move(r));
    } catch (const std::invalid_argument&) {
      throw ParseError("unparsable numeric field in transfer log row " + std::to_string(i));
    } catch (const std::out_of_range&) {
      throw ParseError("numeric field out of range in transfer log row " + std::to_string(i));
    }
  }
  return log;
}

void sort_by_start(TransferLog& log) {
  // Parallel stable sort with thread-count-independent run bounds: the
  // result is byte-identical to std::stable_sort at any --threads value.
  exec::parallel_sort(log, [](const TransferRecord& a, const TransferRecord& b) {
    if (a.start_time != b.start_time) return a.start_time < b.start_time;
    return a.end_time() < b.end_time();
  });
}

void anonymize_remote_hosts(TransferLog& log) {
  for (auto& r : log) r.remote_host.clear();
}

std::vector<double> throughputs_mbps(const TransferLog& log) {
  std::vector<double> out;
  out.reserve(log.size());
  for (const auto& r : log) out.push_back(to_mbps(r.throughput()));
  return out;
}

std::vector<double> sizes_megabytes(const TransferLog& log) {
  std::vector<double> out;
  out.reserve(log.size());
  for (const auto& r : log) out.push_back(to_megabytes(r.size));
  return out;
}

std::vector<double> durations_seconds(const TransferLog& log) {
  std::vector<double> out;
  out.reserve(log.size());
  for (const auto& r : log) out.push_back(r.duration);
  return out;
}

}  // namespace gridvc::gridftp
