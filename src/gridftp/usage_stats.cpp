#include "gridftp/usage_stats.hpp"

#include <utility>

#include "common/error.hpp"

namespace gridvc::gridftp {

UsageStatsCollector::UsageStatsCollector(double drop_probability, Rng rng)
    : drop_probability_(drop_probability), rng_(rng) {
  GRIDVC_REQUIRE(drop_probability >= 0.0 && drop_probability < 1.0,
                 "drop probability must be in [0, 1)");
}

void UsageStatsCollector::report(const TransferRecord& record) {
  if (record.failed) {
    ++failed_;
    return;
  }
  if (drop_probability_ > 0.0 && rng_.bernoulli(drop_probability_)) {
    ++dropped_;
    return;
  }
  ++received_;
  received_bytes_ += record.size;
  if (keep_log_) log_.push_back(record);
}

TransferLog UsageStatsCollector::take_log() {
  TransferLog out = std::move(log_);
  log_.clear();
  received_ = 0;
  received_bytes_ = 0;
  return out;
}

}  // namespace gridvc::gridftp
