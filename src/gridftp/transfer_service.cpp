#include "gridftp/transfer_service.hpp"

#include <numeric>

#include "common/error.hpp"

namespace gridvc::gridftp {

TransferService::TransferService(sim::Simulator& sim, TransferEngine& engine,
                                 TransferServiceConfig config)
    : sim_(sim), engine_(engine), config_(config) {
  GRIDVC_REQUIRE(config_.max_active_tasks >= 1, "service needs at least one task slot");
  GRIDVC_REQUIRE(config_.per_task_concurrency >= 1,
                 "service needs at least one transfer lane per task");

  obs::MetricsRegistry& reg = sim_.obs().registry();
  id_tasks_submitted_ = reg.counter("gridvc_gridftp_tasks_submitted",
                                    "Tasks queued with the managed service");
  id_tasks_completed_ = reg.counter("gridvc_gridftp_tasks_completed",
                                    "Tasks that moved every file");
  id_tasks_cancelled_ = reg.counter("gridvc_gridftp_tasks_cancelled",
                                    "Tasks cancelled before completion");
  id_queued_gauge_ = reg.gauge("gridvc_gridftp_tasks_queued",
                               "Tasks waiting for an active slot");
  id_active_gauge_ = reg.gauge("gridvc_gridftp_tasks_active",
                               "Tasks currently holding an active slot");
  id_queue_wait_hist_ = reg.histogram(
      "gridvc_gridftp_task_queue_wait_seconds", {0.1, 1, 10, 60, 300, 1800, 7200},
      "Task submit -> first transfer start (slot wait)");
}

std::uint64_t TransferService::submit(std::string label, std::vector<Bytes> files,
                                      TransferSpec transfer_template, TaskDoneFn on_done) {
  GRIDVC_REQUIRE(!files.empty(), "task needs at least one file");

  const std::uint64_t id = next_id_++;
  Task task;
  task.status.id = id;
  task.status.label = std::move(label);
  task.status.files_total = files.size();
  task.status.bytes_total =
      std::accumulate(files.begin(), files.end(), Bytes{0});
  task.status.submitted_at = sim_.now();
  task.files = std::move(files);
  task.transfer_template = std::move(transfer_template);
  task.on_done = std::move(on_done);
  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_tasks_submitted_);
  obs.emit({sim_.now(), obs::TraceEventType::kTaskSubmitted, id,
            static_cast<std::uint64_t>(task.status.files_total),
            static_cast<double>(task.status.bytes_total), 0.0});
  tasks_.emplace(id, std::move(task));
  queue_.push_back(id);
  obs.registry().set(id_queued_gauge_, static_cast<double>(queue_.size()));
  maybe_start_next();
  return id;
}

void TransferService::maybe_start_next() {
  while (active_ < static_cast<std::size_t>(config_.max_active_tasks) && !queue_.empty()) {
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    Task& task = tasks_.at(id);
    if (task.status.state == TaskState::kCancelled) continue;  // cancelled while queued
    task.status.state = TaskState::kActive;
    task.status.started_at = sim_.now();
    task.counters_at_start = sim_.counters();
    ++active_;
    obs::Observability& obs = sim_.obs();
    const Seconds wait = task.status.started_at - task.status.submitted_at;
    obs.registry().observe(id_queue_wait_hist_, wait);
    obs.registry().set(id_queued_gauge_, static_cast<double>(queue_.size()));
    obs.registry().set(id_active_gauge_, static_cast<double>(active_));
    obs.emit({sim_.now(), obs::TraceEventType::kTaskStarted, id, 0, wait, 0.0});
    pump(id);
  }
}

void TransferService::pump(std::uint64_t task_id) {
  Task& task = tasks_.at(task_id);
  if (task.status.state != TaskState::kActive) return;
  while (!task.cancelled && task.next_file < task.files.size() &&
         task.in_flight < static_cast<std::size_t>(config_.per_task_concurrency)) {
    TransferSpec spec = task.transfer_template;
    spec.size = task.files[task.next_file];
    ++task.next_file;
    ++task.in_flight;
    engine_.submit(spec, [this, task_id](const TransferRecord& record) {
      on_transfer_done(task_id, record);
    });
  }
  if (task.in_flight == 0) {
    finish_task(task, task.cancelled ? TaskState::kCancelled : TaskState::kSucceeded);
  }
}

void TransferService::on_transfer_done(std::uint64_t task_id, const TransferRecord& record) {
  Task& task = tasks_.at(task_id);
  GRIDVC_REQUIRE(task.in_flight > 0, "task in-flight underflow");
  --task.in_flight;
  if (record.failed) {
    ++task.status.files_failed;
  } else {
    ++task.status.files_done;
    task.status.bytes_done += record.size;
  }
  pump(task_id);
}

void TransferService::finish_task(Task& task, TaskState state) {
  task.status.state = state;
  task.status.finished_at = sim_.now();
  const sim::Simulator::Counters now = sim_.counters();
  task.status.events_scheduled = now.scheduled - task.counters_at_start.scheduled;
  task.status.events_cancelled = now.cancelled - task.counters_at_start.cancelled;
  task.status.events_dispatched = now.dispatched - task.counters_at_start.dispatched;
  GRIDVC_REQUIRE(active_ > 0, "active task underflow");
  --active_;
  obs::Observability& obs = sim_.obs();
  obs.registry().add(state == TaskState::kSucceeded ? id_tasks_completed_
                                                    : id_tasks_cancelled_);
  obs.registry().set(id_active_gauge_, static_cast<double>(active_));
  obs.emit({sim_.now(), obs::TraceEventType::kTaskFinished, task.status.id,
            static_cast<std::uint64_t>(task.status.files_done),
            task.status.finished_at - task.status.submitted_at,
            static_cast<double>(task.status.bytes_done)});
  if (task.on_done) task.on_done(task.status);
  maybe_start_next();
}

bool TransferService::cancel(std::uint64_t task_id) {
  const auto it = tasks_.find(task_id);
  GRIDVC_REQUIRE(it != tasks_.end(), "cancel of unknown task");
  Task& task = it->second;
  switch (task.status.state) {
    case TaskState::kQueued:
      task.status.state = TaskState::kCancelled;
      task.status.finished_at = sim_.now();
      task.cancelled = true;
      sim_.obs().registry().add(id_tasks_cancelled_);
      sim_.obs().emit({sim_.now(), obs::TraceEventType::kTaskFinished, task.status.id,
                       0, 0.0, 0.0});
      if (task.on_done) task.on_done(task.status);
      return true;
    case TaskState::kActive:
      if (task.cancelled) return false;
      task.cancelled = true;  // in-flight transfers drain; no new starts
      return true;
    case TaskState::kSucceeded:
    case TaskState::kCancelled:
      return false;
  }
  return false;
}

const TaskStatus& TransferService::status(std::uint64_t task_id) const {
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) throw NotFoundError("unknown transfer task");
  return it->second.status;
}

}  // namespace gridvc::gridftp
