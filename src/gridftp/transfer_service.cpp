#include "gridftp/transfer_service.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"

namespace gridvc::gridftp {

TransferService::TransferService(sim::Simulator& sim, TransferEngine& engine,
                                 TransferServiceConfig config)
    : sim_(sim), engine_(engine), config_(config) {
  GRIDVC_REQUIRE(config_.max_active_tasks >= 1, "service needs at least one task slot");
  GRIDVC_REQUIRE(config_.per_task_concurrency >= 1,
                 "service needs at least one transfer lane per task");

  obs::MetricsRegistry& reg = sim_.obs().registry();
  id_tasks_submitted_ = reg.counter("gridvc_gridftp_tasks_submitted",
                                    "Tasks queued with the managed service");
  id_tasks_completed_ = reg.counter("gridvc_gridftp_tasks_completed",
                                    "Tasks that moved every file");
  id_tasks_cancelled_ = reg.counter("gridvc_gridftp_tasks_cancelled",
                                    "Tasks cancelled before completion");
  id_tasks_shed_ = reg.counter("gridvc_gridftp_tasks_shed",
                               "Queued/active tasks dropped by overload or deadline");
  id_tasks_rejected_ = reg.counter("gridvc_gridftp_tasks_rejected",
                                   "Submissions refused because the queue was full");
  id_tasks_recovered_ = reg.counter("gridvc_gridftp_tasks_recovered",
                                    "Tasks rebuilt from the journal after a crash");
  id_queued_gauge_ = reg.gauge("gridvc_gridftp_tasks_queued",
                               "Tasks waiting for an active slot");
  id_active_gauge_ = reg.gauge("gridvc_gridftp_tasks_active",
                               "Tasks currently holding an active slot");
  id_queue_wait_hist_ = reg.log_histogram(
      "gridvc_gridftp_task_queue_wait_seconds",
      "Task submit -> first transfer start (slot wait)");
}

std::uint64_t TransferService::submit(std::string label, std::vector<Bytes> files,
                                      TransferSpec transfer_template, TaskDoneFn on_done) {
  return submit(std::move(label), std::move(files), std::move(transfer_template),
                SubmitOptions{}, std::move(on_done));
}

std::uint64_t TransferService::submit(std::string label, std::vector<Bytes> files,
                                      TransferSpec transfer_template,
                                      const SubmitOptions& options, TaskDoneFn on_done) {
  GRIDVC_REQUIRE(!files.empty(), "task needs at least one file");
  GRIDVC_REQUIRE(options.deadline >= 0.0, "task deadline must be non-negative");
  GRIDVC_REQUIRE(options.tenant.find(' ') == std::string::npos &&
                     options.tenant != "-",
                 "tenant tags must not contain spaces or be \"-\" (journaled "
                 "as a token, \"-\" marks the anonymous tenant)");

  const std::uint64_t id = next_id_++;
  ++tasks_submitted_;
  ++tenant_counters_[options.tenant].submitted;
  Task task;
  task.status.id = id;
  task.status.label = std::move(label);
  task.status.priority = options.priority;
  task.tenant = options.tenant;
  task.status.files_total = files.size();
  task.status.bytes_total =
      std::accumulate(files.begin(), files.end(), Bytes{0});
  task.status.submitted_at = sim_.now();
  task.deadline = options.deadline;
  task.files = std::move(files);
  task.transfer_template = std::move(transfer_template);
  task.on_done = std::move(on_done);
  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_tasks_submitted_);
  obs.emit({sim_.now(), obs::TraceEventType::kTaskSubmitted, id,
            static_cast<std::uint64_t>(task.status.files_total),
            static_cast<double>(task.status.bytes_total), 0.0});
  auto [it, inserted] = tasks_.emplace(id, std::move(task));
  journal_task(it->second);
  if (it->second.deadline > 0.0) {
    it->second.deadline_event =
        sim_.schedule_in(it->second.deadline, [this, id] { on_deadline(id); });
  }
  queue_.push_back(id);
  sync_queue_gauge();
  maybe_start_next();
  enforce_queue_limit(id);
  return id;
}

void TransferService::enforce_queue_limit(std::uint64_t incoming_id) {
  if (config_.queue_limit == 0 || queue_.size() <= config_.queue_limit) return;
  switch (config_.overload_policy) {
    case OverloadPolicy::kRejectNew:
      shed_queued(incoming_id, kShedRejectedNew);
      return;
    case OverloadPolicy::kShedOldest:
      shed_queued(queue_.front(), kShedOldestEvicted);
      return;
    case OverloadPolicy::kPriority: {
      // Victim = min by (priority, id): the lowest-priority queued task,
      // FIFO (oldest id) within a priority level. Explicitly keyed on the
      // task id rather than queue position so the rule survives queue
      // reorderings (journal replay re-queues in id order) and stays
      // deterministic. When priorities tie everywhere the incoming task —
      // youngest, hence largest id — is its own victim: reject-new.
      std::uint64_t victim = queue_.front();
      for (const std::uint64_t id : queue_) {
        const auto key = [&](std::uint64_t t) {
          return std::pair(tasks_.at(t).status.priority, t);
        };
        if (key(id) < key(victim)) victim = id;
      }
      const bool evict_incoming =
          tasks_.at(victim).status.priority >= tasks_.at(incoming_id).status.priority;
      shed_queued(evict_incoming ? incoming_id : victim,
                  evict_incoming ? kShedRejectedNew : kShedPriorityEvicted);
      return;
    }
  }
}

void TransferService::shed_queued(std::uint64_t task_id, ShedReason reason) {
  Task& task = tasks_.at(task_id);
  GRIDVC_REQUIRE(task.status.state == TaskState::kQueued,
                 "only queued tasks can be shed directly");
  task.status.state = TaskState::kShed;
  task.status.finished_at = sim_.now();
  task.deadline_event.cancel();
  const auto it = std::find(queue_.begin(), queue_.end(), task_id);
  GRIDVC_REQUIRE(it != queue_.end(), "shed task missing from the queue");
  queue_.erase(it);
  sync_queue_gauge();
  if (reason == kShedRejectedNew) {
    ++tasks_rejected_;
    ++tenant_counters_[task.tenant].rejected;
    sim_.obs().registry().add(id_tasks_rejected_);
  }
  ++tasks_shed_;
  ++tenant_counters_[task.tenant].shed;
  sim_.obs().registry().add(id_tasks_shed_);
  if (config_.journal) config_.journal->tombstone("task", task_id);
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kTaskShed, task_id, reason,
                   static_cast<double>(queue_.size()), 0.0});
  if (task.on_done) {
    // Deferred so a submit that sheds (itself or a victim) never
    // re-enters the caller mid-submit; the epoch guard drops the
    // callback if the service crashes before the event fires.
    const std::uint64_t epoch = epoch_;
    sim_.schedule_in(0.0, [this, task_id, epoch] {
      if (epoch != epoch_) return;
      const Task& t = tasks_.at(task_id);
      if (t.on_done) t.on_done(t.status);
    });
  }
}

void TransferService::on_deadline(std::uint64_t task_id) {
  Task& task = tasks_.at(task_id);
  switch (task.status.state) {
    case TaskState::kQueued:
      shed_queued(task_id, kShedDeadline);
      return;
    case TaskState::kActive:
      // Too late to finish in time: stop feeding the engine; in-flight
      // transfers drain and the task terminates as kShed.
      task.shed = true;
      ++tasks_shed_;
      ++tenant_counters_[task.tenant].shed;
      sim_.obs().registry().add(id_tasks_shed_);
      sim_.obs().emit({sim_.now(), obs::TraceEventType::kTaskShed, task_id, kShedDeadline,
                       static_cast<double>(queue_.size()), 1.0});
      if (task.in_flight == 0) {
        // Deadline landed between the last completion and the next pump.
        finish_task(task, TaskState::kShed);
      }
      return;
    case TaskState::kSucceeded:
    case TaskState::kCancelled:
    case TaskState::kShed:
      return;  // already terminal; the deadline raced the finish
  }
}

void TransferService::journal_task(const Task& task) {
  if (!config_.journal) return;
  std::ostringstream payload;
  payload.precision(17);
  payload << task.status.priority << ' ' << task.deadline << ' '
          << task.status.submitted_at << ' ' << task.status.files_done << ' '
          << task.files.size();
  for (const Bytes f : task.files) payload << ' ' << f;
  // Tenant as a single token ("-" = anonymous) so the label — which may
  // contain spaces — can stay the free-form tail.
  payload << ' ' << (task.tenant.empty() ? "-" : task.tenant);
  payload << ' ' << task.status.label;
  config_.journal->append("task", task.status.id, payload.str());
}

void TransferService::sync_queue_gauge() {
  sim_.obs().registry().set(id_queued_gauge_, static_cast<double>(queue_.size()));
}

void TransferService::maybe_start_next() {
  while (active_ < static_cast<std::size_t>(config_.max_active_tasks) && !queue_.empty()) {
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    Task& task = tasks_.at(id);
    if (task.status.state == TaskState::kCancelled) continue;  // cancelled while queued
    task.status.state = TaskState::kActive;
    task.status.started_at = sim_.now();
    task.counters_at_start = sim_.counters();
    ++active_;
    obs::Observability& obs = sim_.obs();
    const Seconds wait = task.status.started_at - task.status.submitted_at;
    obs.registry().observe(id_queue_wait_hist_, wait);
    obs.registry().set(id_queued_gauge_, static_cast<double>(queue_.size()));
    obs.registry().set(id_active_gauge_, static_cast<double>(active_));
    obs.emit({sim_.now(), obs::TraceEventType::kTaskStarted, id, 0, wait, 0.0});
    pump(id);
  }
}

void TransferService::pump(std::uint64_t task_id) {
  Task& task = tasks_.at(task_id);
  if (task.status.state != TaskState::kActive) return;
  while (!task.cancelled && !task.shed && task.next_file < task.files.size() &&
         task.in_flight < static_cast<std::size_t>(config_.per_task_concurrency)) {
    TransferSpec spec = task.transfer_template;
    spec.size = task.files[task.next_file];
    ++task.next_file;
    ++task.in_flight;
    // The epoch guard drops completions of transfers a *dead* service
    // incarnation started: after crash_and_recover the engine still
    // finishes them, but they belong to nobody. The id box closes the
    // submit-returns-id / callback-needs-id cycle.
    const std::uint64_t epoch = epoch_;
    const auto tid_box = std::make_shared<std::uint64_t>(0);
    const std::uint64_t tid =
        engine_.submit(spec, [this, task_id, epoch, tid_box](const TransferRecord& record) {
          if (epoch != epoch_) return;
          on_transfer_done(task_id, *tid_box, record);
        });
    *tid_box = tid;
    task.live_transfers.push_back(tid);
  }
  if (task.in_flight == 0) {
    finish_task(task, task.shed        ? TaskState::kShed
                      : task.cancelled ? TaskState::kCancelled
                                       : TaskState::kSucceeded);
  }
}

void TransferService::on_transfer_done(std::uint64_t task_id, std::uint64_t transfer_id,
                                       const TransferRecord& record) {
  Task& task = tasks_.at(task_id);
  GRIDVC_REQUIRE(task.in_flight > 0, "task in-flight underflow");
  --task.in_flight;
  const auto live = std::find(task.live_transfers.begin(), task.live_transfers.end(),
                              transfer_id);
  if (live != task.live_transfers.end()) task.live_transfers.erase(live);
  if (record.failed) {
    ++task.status.files_failed;
  } else {
    ++task.status.files_done;
    task.status.bytes_done += record.size;
    // Checkpoint progress so a crash resumes from the completed-file
    // count instead of re-moving the whole task.
    journal_task(task);
  }
  pump(task_id);
}

void TransferService::finish_task(Task& task, TaskState state) {
  task.status.state = state;
  task.status.finished_at = sim_.now();
  task.deadline_event.cancel();
  if (config_.journal) config_.journal->tombstone("task", task.status.id);
  const sim::Simulator::Counters now = sim_.counters();
  task.status.events_scheduled = now.scheduled - task.counters_at_start.scheduled;
  task.status.events_cancelled = now.cancelled - task.counters_at_start.cancelled;
  task.status.events_dispatched = now.dispatched - task.counters_at_start.dispatched;
  GRIDVC_REQUIRE(active_ > 0, "active task underflow");
  --active_;
  obs::Observability& obs = sim_.obs();
  if (state != TaskState::kShed) {
    // Shed tasks were already counted when the deadline fired.
    obs.registry().add(state == TaskState::kSucceeded ? id_tasks_completed_
                                                      : id_tasks_cancelled_);
  }
  obs.registry().set(id_active_gauge_, static_cast<double>(active_));
  obs.emit({sim_.now(), obs::TraceEventType::kTaskFinished, task.status.id,
            static_cast<std::uint64_t>(task.status.files_done),
            task.status.finished_at - task.status.submitted_at,
            static_cast<double>(task.status.bytes_done)});
  if (task.on_done) task.on_done(task.status);
  maybe_start_next();
}

bool TransferService::cancel(std::uint64_t task_id) {
  const auto it = tasks_.find(task_id);
  GRIDVC_REQUIRE(it != tasks_.end(), "cancel of unknown task");
  Task& task = it->second;
  switch (task.status.state) {
    case TaskState::kQueued: {
      task.status.state = TaskState::kCancelled;
      task.status.finished_at = sim_.now();
      task.cancelled = true;
      task.deadline_event.cancel();
      // Drop the queue slot too, or queued_tasks() and the queued gauge
      // would keep counting a task that can never start.
      const auto qit = std::find(queue_.begin(), queue_.end(), task_id);
      GRIDVC_REQUIRE(qit != queue_.end(), "queued task missing from the queue");
      queue_.erase(qit);
      sync_queue_gauge();
      if (config_.journal) config_.journal->tombstone("task", task_id);
      sim_.obs().registry().add(id_tasks_cancelled_);
      sim_.obs().emit({sim_.now(), obs::TraceEventType::kTaskFinished, task.status.id,
                       0, 0.0, 0.0});
      if (task.on_done) task.on_done(task.status);
      return true;
    }
    case TaskState::kActive:
      if (task.cancelled) return false;
      task.cancelled = true;  // in-flight transfers drain; no new starts
      return true;
    case TaskState::kSucceeded:
    case TaskState::kCancelled:
    case TaskState::kShed:
      return false;
  }
  return false;
}

void TransferService::set_task_guarantee(std::uint64_t task_id, BitsPerSecond guarantee) {
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;
  Task& task = it->second;
  task.transfer_template.guarantee = guarantee;
  // Unknown/finished ids are ignored by the engine, so a transfer that
  // completed between our bookkeeping and this call is harmless.
  for (const std::uint64_t tid : task.live_transfers) {
    engine_.set_guarantee(tid, guarantee);
  }
}

const TaskStatus& TransferService::status(std::uint64_t task_id) const {
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) throw NotFoundError("unknown transfer task");
  return it->second.status;
}

std::vector<TaskStatus> TransferService::statuses() const {
  std::vector<TaskStatus> out;
  out.reserve(tasks_.size());
  for (const auto& [id, task] : tasks_) out.push_back(task.status);
  return out;
}

std::size_t TransferService::crash_and_recover(const TransferSpec& transfer_template,
                                               TaskDoneFn on_done) {
  GRIDVC_PROF_ZONE("recovery.service_replay");
  GRIDVC_REQUIRE(config_.journal != nullptr, "crash_and_recover needs a journal");
  // A crash is exactly the moment the flight recorder exists for:
  // capture the pre-replay window before this incarnation's events
  // start overwriting it.
  if (obs::FlightRecorder::armed()) {
    obs::FlightRecorder::instance().dump("crash_and_recover");
  }
  // Crash: every in-memory structure of the old incarnation dies. The
  // epoch bump makes completions of transfers the old process started
  // (the engine keeps running them — they are remote server/network
  // state) fall on deaf ears.
  ++epoch_;
  for (auto& [id, task] : tasks_) task.deadline_event.cancel();
  tasks_.clear();
  queue_.clear();
  active_ = 0;
  obs::Observability& obs = sim_.obs();
  sync_queue_gauge();
  obs.registry().set(id_active_gauge_, 0.0);

  const Seconds now = sim_.now();
  std::size_t restored = 0;
  for (const recovery::JournalRecord& rec : config_.journal->replay("task")) {
    std::istringstream in(rec.payload);
    Task task;
    Seconds submitted_at = 0.0;
    std::size_t cursor = 0;
    std::size_t nfiles = 0;
    in >> task.status.priority >> task.deadline >> submitted_at >> cursor >> nfiles;
    GRIDVC_REQUIRE(!in.fail(), "malformed task journal payload");
    task.files.resize(nfiles);
    for (std::size_t i = 0; i < nfiles; ++i) in >> task.files[i];
    std::string tenant;
    in >> tenant;
    GRIDVC_REQUIRE(!in.fail() && cursor <= nfiles, "malformed task journal payload");
    task.tenant = tenant == "-" ? std::string() : tenant;
    in >> std::ws;
    std::getline(in, task.status.label);

    next_id_ = std::max(next_id_, rec.key + 1);
    task.status.id = rec.key;
    task.status.files_total = nfiles;
    task.status.bytes_total = std::accumulate(task.files.begin(), task.files.end(), Bytes{0});
    task.status.submitted_at = submitted_at;
    // Files past the checkpoint cursor restart from scratch: the journal
    // records completed files, not the in-flight transfers the crash
    // killed. bytes_done is the checkpointed prefix.
    task.status.files_done = cursor;
    task.next_file = cursor;
    task.status.bytes_done = std::accumulate(task.files.begin(),
                                             task.files.begin() +
                                                 static_cast<std::ptrdiff_t>(cursor),
                                             Bytes{0});
    task.transfer_template = transfer_template;
    task.on_done = on_done;
    const std::uint64_t id = rec.key;
    auto [it, inserted] = tasks_.emplace(id, std::move(task));
    GRIDVC_REQUIRE(inserted, "duplicate task id in journal replay");
    queue_.push_back(id);
    if (it->second.deadline > 0.0) {
      // The deadline clock kept running through the crash.
      const Seconds remaining = submitted_at + it->second.deadline - now;
      it->second.deadline_event =
          sim_.schedule_in(std::max(remaining, 0.0), [this, id] { on_deadline(id); });
    }
    ++restored;
    ++tasks_recovered_;
    ++tenant_counters_[it->second.tenant].recovered;
    obs.registry().add(id_tasks_recovered_);
  }
  sync_queue_gauge();
  // aux=0 tags the transfer service's replay (aux=1 is the IDC's).
  obs.emit({now, obs::TraceEventType::kJournalReplay,
            static_cast<std::uint64_t>(restored), 0, 0.0, 0.0});
  maybe_start_next();
  return restored;
}

}  // namespace gridvc::gridftp
