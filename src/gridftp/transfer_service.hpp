// Managed transfer service, in the spirit of Globus Online (§V).
//
// The paper's users drive GridFTP from hand-rolled scripts (the sessions
// of §VI-A); the hosted-service successor queues *tasks* — a named batch
// of files between two endpoints — schedules them with bounded
// concurrency, rides out failures via the engine's restart-marker
// retries, and exposes queryable progress. This layer is what converts
// "sessions" from an emergent artifact of user scripts into a first-class
// scheduling unit — exactly the entity a VC-aware service would request
// circuits for.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gridftp/transfer_engine.hpp"
#include "recovery/journal.hpp"
#include "sim/simulator.hpp"

namespace gridvc::gridftp {

/// What happens when a submission finds the (bounded) queue full.
enum class OverloadPolicy : std::uint8_t {
  kRejectNew,   ///< fail the incoming task fast; queued work is sacred
  kShedOldest,  ///< drop the task that has waited longest (doomed anyway)
  /// Evict the lowest-priority queued task when the incoming one strictly
  /// outranks it, else reject the incoming task. Tie-break is FIFO within
  /// a priority level: the victim is the *oldest* (smallest task id)
  /// among the lowest-priority queued tasks, and an incoming task that
  /// merely ties the queue minimum is itself rejected — earlier arrivals
  /// win. Task ids are allocated in submission order (and journal replay
  /// re-queues in id order), so this rule is deterministic under crash
  /// recovery too; test_transfer_service pins it.
  kPriority,
};

struct TransferServiceConfig {
  /// Tasks running at once; excess submissions queue FIFO.
  int max_active_tasks = 4;
  /// Transfers in flight per task.
  int per_task_concurrency = 2;
  /// Bound on the waiting queue (0 = unbounded, the historical default).
  /// A submission that would push the queue past the limit triggers
  /// `overload_policy`.
  std::size_t queue_limit = 0;
  OverloadPolicy overload_policy = OverloadPolicy::kRejectNew;
  /// Optional write-ahead journal for task state. When set, submissions
  /// are appended, per-file progress checkpointed, and terminal tasks
  /// tombstoned, so crash_and_recover() can rebuild the queue after a
  /// service crash. Must outlive the service.
  recovery::Journal* journal = nullptr;
};

enum class TaskState : std::uint8_t {
  kQueued,
  kActive,
  kSucceeded,
  kCancelled,
  /// Dropped by the overload guard (queue full, priority eviction) or a
  /// missed deadline — terminal like kCancelled but distinguishable.
  kShed,
};

/// Per-submission scheduling knobs (see TransferService::submit).
struct SubmitOptions {
  /// Ranks tasks under OverloadPolicy::kPriority; higher outranks lower.
  int priority = 0;
  /// Whole-task deadline measured from submission (0 = none). A task not
  /// finished by then is shed: a queued task terminates immediately, an
  /// active one stops submitting new files and terminates as kShed when
  /// the in-flight transfers drain. This sits above the engine's own
  /// per-transfer retry bounds in the timeout hierarchy.
  Seconds deadline = 0.0;
  /// Tenant the task is accounted to (multi-tenant front-end attribution;
  /// empty = the anonymous tenant). Must not contain spaces — the tag is
  /// journaled as a whitespace-delimited token and survives crash
  /// recovery. Overload/recovery counters are broken down per tenant; see
  /// TransferService::tenant_counters().
  std::string tenant;
};

/// Per-tenant slice of the service's overload/recovery accounting. The
/// global counters (tasks_shed() etc.) are by contract the sum of the
/// per-tenant values — test_transfer_service pins the contract.
struct TenantCounters {
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;       ///< includes rejected (rejection is a shed kind)
  std::uint64_t rejected = 0;
  std::uint64_t recovered = 0;
};

struct TaskStatus {
  std::uint64_t id = 0;
  std::string label;
  TaskState state = TaskState::kQueued;
  int priority = 0;
  std::size_t files_total = 0;
  std::size_t files_done = 0;
  std::size_t files_failed = 0;  ///< permanently-failed transfers (not in files_done)
  Bytes bytes_total = 0;
  Bytes bytes_done = 0;
  Seconds submitted_at = 0.0;
  Seconds started_at = 0.0;
  Seconds finished_at = 0.0;
  /// Scheduler churn over the task's active window: simulator counter
  /// deltas between start and finish. Zero until the task finishes;
  /// overlapping tasks share the simulator, so attribution is approximate
  /// when tasks run concurrently.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t events_dispatched = 0;

  double progress() const {
    return bytes_total > 0
               ? static_cast<double>(bytes_done) / static_cast<double>(bytes_total)
               : 0.0;
  }
};

class TransferService {
 public:
  using TaskDoneFn = std::function<void(const TaskStatus&)>;

  TransferService(sim::Simulator& sim, TransferEngine& engine,
                  TransferServiceConfig config = {});
  TransferService(const TransferService&) = delete;
  TransferService& operator=(const TransferService&) = delete;

  /// Queue a task: move `files` using `transfer_template` (size filled
  /// per file). Requires at least one file. Returns the task id. With a
  /// bounded queue the task may be shed immediately (state kShed; the
  /// on_done callback is deferred to a zero-delay event so submit never
  /// re-enters the caller).
  std::uint64_t submit(std::string label, std::vector<Bytes> files,
                       TransferSpec transfer_template, TaskDoneFn on_done = nullptr);
  std::uint64_t submit(std::string label, std::vector<Bytes> files,
                       TransferSpec transfer_template, const SubmitOptions& options,
                       TaskDoneFn on_done = nullptr);

  /// Simulate a service process crash followed by a restart that replays
  /// the configured journal. All in-memory task state dies (completions
  /// of transfers the dead process started are ignored); every journaled
  /// non-terminal task is rebuilt with its original id, label, options,
  /// and the files its progress checkpoint says are still unmoved, and
  /// re-queued in id order. `transfer_template` supplies the engine spec
  /// for resumed work (endpoint/path wiring is process state, not journal
  /// state); `on_done`, if set, is attached to every recovered task —
  /// original callbacks do not survive a crash. Returns tasks restored.
  std::size_t crash_and_recover(const TransferSpec& transfer_template,
                                TaskDoneFn on_done = nullptr);

  /// Cancel a task. Queued tasks never start; active tasks stop
  /// submitting new files (in-flight transfers drain and are counted).
  /// Completed tasks are left untouched; returns whether the cancel had
  /// any effect.
  bool cancel(std::uint64_t task_id);

  /// Update the rate guarantee attached to a task's transfers: files not
  /// yet started inherit it through the task's transfer template, and
  /// transfers already in flight are re-pinned via
  /// TransferEngine::set_guarantee. This is how a shaped (malleable)
  /// circuit's stepwise profile is driven into the data plane — callers
  /// invoke it at each profile step boundary. Unknown ids are ignored (a
  /// profile step may outlive its task).
  void set_task_guarantee(std::uint64_t task_id, BitsPerSecond guarantee);

  /// Current status snapshot. Throws NotFoundError for unknown ids.
  const TaskStatus& status(std::uint64_t task_id) const;

  std::size_t queued_tasks() const { return queue_.size(); }
  std::size_t active_tasks() const { return active_; }

  /// The configuration the service was built with (the admission
  /// front-end reads max_active_tasks to size its dispatch window).
  const TransferServiceConfig& config() const { return config_; }

  /// Snapshot of every task the service knows about, id order.
  std::vector<TaskStatus> statuses() const;

  /// Overload/recovery accounting across the service's lifetime.
  std::uint64_t tasks_submitted() const { return tasks_submitted_; }
  std::uint64_t tasks_rejected() const { return tasks_rejected_; }
  std::uint64_t tasks_shed() const { return tasks_shed_; }
  std::uint64_t tasks_recovered() const { return tasks_recovered_; }

  /// Fraction of submissions refused outright by the overload guard
  /// (rejected / submitted; 0 before the first submission). Evictions of
  /// *other* queued tasks (kShedOldest / priority eviction) count as shed
  /// but not rejected, mirroring the per-tenant breakdown.
  double rejection_rate() const {
    return tasks_submitted_ == 0
               ? 0.0
               : static_cast<double>(tasks_rejected_) /
                     static_cast<double>(tasks_submitted_);
  }

  /// Per-tenant overload/recovery breakdown, keyed by SubmitOptions::
  /// tenant ("" = anonymous). Sums to the global counters by contract.
  const std::map<std::string, TenantCounters>& tenant_counters() const {
    return tenant_counters_;
  }

  /// Crash epoch: bumped by crash_and_recover. Mostly for tests.
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct Task {
    TaskStatus status;
    std::vector<Bytes> files;
    TransferSpec transfer_template;
    Seconds deadline = 0.0;  ///< from SubmitOptions; 0 = none
    std::string tenant;      ///< from SubmitOptions; journaled, survives recovery
    std::size_t next_file = 0;
    std::size_t in_flight = 0;
    /// Engine ids of this task's in-flight transfers, so a guarantee
    /// change (circuit activation, shaped-profile step) reaches work
    /// already submitted.
    std::vector<std::uint64_t> live_transfers;
    bool cancelled = false;
    bool shed = false;  ///< deadline fired while active; terminal state kShed
    sim::Simulator::Counters counters_at_start;
    sim::EventHandle deadline_event;
    TaskDoneFn on_done;
  };

  /// Why a task was shed (kTaskShed trace aux).
  enum ShedReason : std::uint64_t {
    kShedRejectedNew = 0,
    kShedOldestEvicted = 1,
    kShedPriorityEvicted = 2,
    kShedDeadline = 3,
  };

  void maybe_start_next();
  void pump(std::uint64_t task_id);
  void on_transfer_done(std::uint64_t task_id, std::uint64_t transfer_id,
                        const TransferRecord& record);
  void finish_task(Task& task, TaskState state);
  void enforce_queue_limit(std::uint64_t incoming_id);
  /// Terminate a task that never held an active slot (queued or just
  /// rejected). Defers on_done to a zero-delay event.
  void shed_queued(std::uint64_t task_id, ShedReason reason);
  void on_deadline(std::uint64_t task_id);
  void journal_task(const Task& task);
  void sync_queue_gauge();

  sim::Simulator& sim_;
  TransferEngine& engine_;
  TransferServiceConfig config_;
  std::map<std::uint64_t, Task> tasks_;
  std::deque<std::uint64_t> queue_;
  std::size_t active_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t epoch_ = 0;
  std::uint64_t tasks_submitted_ = 0;
  std::uint64_t tasks_rejected_ = 0;
  std::uint64_t tasks_shed_ = 0;
  std::uint64_t tasks_recovered_ = 0;
  std::map<std::string, TenantCounters> tenant_counters_;
  obs::MetricId id_tasks_submitted_;
  obs::MetricId id_tasks_completed_;
  obs::MetricId id_tasks_cancelled_;
  obs::MetricId id_tasks_shed_;
  obs::MetricId id_tasks_rejected_;
  obs::MetricId id_tasks_recovered_;
  obs::MetricId id_queued_gauge_;
  obs::MetricId id_active_gauge_;
  obs::MetricId id_queue_wait_hist_;
};

}  // namespace gridvc::gridftp
