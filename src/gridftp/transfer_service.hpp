// Managed transfer service, in the spirit of Globus Online (§V).
//
// The paper's users drive GridFTP from hand-rolled scripts (the sessions
// of §VI-A); the hosted-service successor queues *tasks* — a named batch
// of files between two endpoints — schedules them with bounded
// concurrency, rides out failures via the engine's restart-marker
// retries, and exposes queryable progress. This layer is what converts
// "sessions" from an emergent artifact of user scripts into a first-class
// scheduling unit — exactly the entity a VC-aware service would request
// circuits for.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gridftp/transfer_engine.hpp"
#include "sim/simulator.hpp"

namespace gridvc::gridftp {

struct TransferServiceConfig {
  /// Tasks running at once; excess submissions queue FIFO.
  int max_active_tasks = 4;
  /// Transfers in flight per task.
  int per_task_concurrency = 2;
};

enum class TaskState : std::uint8_t {
  kQueued,
  kActive,
  kSucceeded,
  kCancelled,
};

struct TaskStatus {
  std::uint64_t id = 0;
  std::string label;
  TaskState state = TaskState::kQueued;
  std::size_t files_total = 0;
  std::size_t files_done = 0;
  std::size_t files_failed = 0;  ///< permanently-failed transfers (not in files_done)
  Bytes bytes_total = 0;
  Bytes bytes_done = 0;
  Seconds submitted_at = 0.0;
  Seconds started_at = 0.0;
  Seconds finished_at = 0.0;
  /// Scheduler churn over the task's active window: simulator counter
  /// deltas between start and finish. Zero until the task finishes;
  /// overlapping tasks share the simulator, so attribution is approximate
  /// when tasks run concurrently.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t events_dispatched = 0;

  double progress() const {
    return bytes_total > 0
               ? static_cast<double>(bytes_done) / static_cast<double>(bytes_total)
               : 0.0;
  }
};

class TransferService {
 public:
  using TaskDoneFn = std::function<void(const TaskStatus&)>;

  TransferService(sim::Simulator& sim, TransferEngine& engine,
                  TransferServiceConfig config = {});
  TransferService(const TransferService&) = delete;
  TransferService& operator=(const TransferService&) = delete;

  /// Queue a task: move `files` using `transfer_template` (size filled
  /// per file). Requires at least one file. Returns the task id.
  std::uint64_t submit(std::string label, std::vector<Bytes> files,
                       TransferSpec transfer_template, TaskDoneFn on_done = nullptr);

  /// Cancel a task. Queued tasks never start; active tasks stop
  /// submitting new files (in-flight transfers drain and are counted).
  /// Completed tasks are left untouched; returns whether the cancel had
  /// any effect.
  bool cancel(std::uint64_t task_id);

  /// Current status snapshot. Throws NotFoundError for unknown ids.
  const TaskStatus& status(std::uint64_t task_id) const;

  std::size_t queued_tasks() const { return queue_.size(); }
  std::size_t active_tasks() const { return active_; }

 private:
  struct Task {
    TaskStatus status;
    std::vector<Bytes> files;
    TransferSpec transfer_template;
    std::size_t next_file = 0;
    std::size_t in_flight = 0;
    bool cancelled = false;
    sim::Simulator::Counters counters_at_start;
    TaskDoneFn on_done;
  };

  void maybe_start_next();
  void pump(std::uint64_t task_id);
  void on_transfer_done(std::uint64_t task_id, const TransferRecord& record);
  void finish_task(Task& task, TaskState state);

  sim::Simulator& sim_;
  TransferEngine& engine_;
  TransferServiceConfig config_;
  std::map<std::uint64_t, Task> tasks_;
  std::deque<std::uint64_t> queue_;
  std::size_t active_ = 0;
  std::uint64_t next_id_ = 1;
  obs::MetricId id_tasks_submitted_;
  obs::MetricId id_tasks_completed_;
  obs::MetricId id_tasks_cancelled_;
  obs::MetricId id_queued_gauge_;
  obs::MetricId id_active_gauge_;
  obs::MetricId id_queue_wait_hist_;
};

}  // namespace gridvc::gridftp
