#include "gridftp/backoff.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridvc::gridftp {

Seconds BackoffPolicy::delay(int attempt, Rng& rng) const {
  GRIDVC_REQUIRE(attempt >= 1, "backoff attempt index is 1-based");
  GRIDVC_REQUIRE(base >= 0.0, "backoff base must be non-negative");
  GRIDVC_REQUIRE(jitter >= 0.0 && jitter < 1.0, "backoff jitter must be in [0, 1)");
  Seconds d = base;
  if (kind == Kind::kExponential) {
    GRIDVC_REQUIRE(multiplier >= 1.0, "backoff multiplier must be >= 1");
    GRIDVC_REQUIRE(cap >= 0.0, "backoff cap must be non-negative");
    d = std::min(cap, base * std::pow(multiplier, static_cast<double>(attempt - 1)));
  }
  if (jitter > 0.0) d *= rng.uniform(1.0 - jitter, 1.0 + jitter);
  return d;
}

BackoffPolicy BackoffPolicy::fixed(Seconds base) {
  BackoffPolicy p;
  p.kind = Kind::kFixed;
  p.base = base;
  return p;
}

BackoffPolicy BackoffPolicy::exponential(Seconds base, double multiplier, Seconds cap,
                                         double jitter) {
  BackoffPolicy p;
  p.kind = Kind::kExponential;
  p.base = base;
  p.multiplier = multiplier;
  p.cap = cap;
  p.jitter = jitter;
  return p;
}

}  // namespace gridvc::gridftp
