// GridFTP usage-statistics records.
//
// §II: "For each transfer, the following information is logged: transfer
// type (store or retrieve), size in bytes, start time of the transfer,
// transfer duration, IP address and domain name of the GridFTP server,
// number of parallel TCP streams, number of stripes, TCP buffer size, and
// block size. Importantly, the IP address/domain name of the other end of
// the transfer is not listed for privacy reasons."
//
// Our records carry the same fields; `remote_host` is present because the
// NCAR and SLAC site-local logs included it (it enables the session
// analysis) and can be anonymized (anonymize_remote_hosts) to reproduce
// the NERSC situation where session grouping was impossible.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace gridvc::gridftp {

/// FTP operation direction as seen by the logging server.
enum class TransferType : std::uint8_t {
  kStore,     ///< STOR: file moved *to* the logging server
  kRetrieve,  ///< RETR: file moved *from* the logging server
};

/// One file movement, i.e. one log entry.
struct TransferRecord {
  TransferType type = TransferType::kRetrieve;
  Bytes size = 0;
  Seconds start_time = 0.0;
  Seconds duration = 0.0;
  std::string server_host;  ///< the logging GridFTP server
  std::string remote_host;  ///< other end; may be "" (anonymized)
  int streams = 1;          ///< parallel TCP streams
  int stripes = 1;          ///< striped servers
  Bytes tcp_buffer = 0;
  Bytes block_size = 0;
  /// The transfer was abandoned after repeated link-failure aborts.
  /// Engine-side state, not part of the paper's CSV schema: write_log
  /// never serializes it, and failed records are kept out of the
  /// usage-stats log (UsageStatsCollector counts them separately).
  bool failed = false;

  Seconds end_time() const { return start_time + duration; }
  BitsPerSecond throughput() const { return achieved_rate(size, duration); }
};

using TransferLog = std::vector<TransferRecord>;

/// Serialize to CSV with a header row.
void write_log(std::ostream& out, const TransferLog& log);

/// Parse a CSV log produced by write_log. Throws ParseError on malformed
/// input.
TransferLog read_log(std::istream& in);

/// Sort in place by (start_time, end_time) — the order the session
/// grouping algorithm requires.
void sort_by_start(TransferLog& log);

/// Blank every remote_host (the NERSC privacy treatment).
void anonymize_remote_hosts(TransferLog& log);

/// Per-transfer throughput in Mbps, log order.
std::vector<double> throughputs_mbps(const TransferLog& log);

/// Per-transfer size in (binary) MB, log order.
std::vector<double> sizes_megabytes(const TransferLog& log);

/// Per-transfer duration in seconds, log order.
std::vector<double> durations_seconds(const TransferLog& log);

}  // namespace gridvc::gridftp
