#include "gridftp/server.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gridvc::gridftp {

Server::Server(ServerConfig config) : config_(std::move(config)) {
  GRIDVC_REQUIRE(!config_.name.empty(), "server needs a name");
  GRIDVC_REQUIRE(config_.nic_rate > 0.0, "server NIC rate must be positive");
  GRIDVC_REQUIRE(config_.pool_size >= 1, "server pool must have at least one host");
}

void Server::set_pool_size(int pool_size) {
  GRIDVC_REQUIRE(pool_size >= 1, "server pool must have at least one host");
  if (config_.pool_size == pool_size) return;
  config_.pool_size = pool_size;
  // Transfers registered with more stripes than the new pool shrink their
  // engagement.
  for (auto& [id, reg] : transfers_) {
    reg.engaged_hosts = std::min(reg.engaged_hosts, pool_size);
  }
  notify();
}

void Server::set_nic_rate(BitsPerSecond nic_rate) {
  GRIDVC_REQUIRE(nic_rate > 0.0, "server NIC rate must be positive");
  if (config_.nic_rate == nic_rate) return;
  config_.nic_rate = nic_rate;
  notify();
}

void Server::set_online(bool online) {
  if (online_ == online) return;
  online_ = online;
  if (!online_) {
    // Crash semantics: every registration is resource state of the dead
    // process and is gone. No notify here — shares of the still-running
    // transfers are meaningless until the engine has aborted them (see
    // TransferEngine::handle_server_down), and a listener firing first
    // would query shares for ids this server no longer knows.
    transfers_.clear();
    return;
  }
  notify();
}

void Server::add_transfer(std::uint64_t transfer_id, int stripes, IoMode io) {
  GRIDVC_REQUIRE(online_, "cannot register a transfer with an offline server");
  GRIDVC_REQUIRE(stripes >= 1, "transfer needs at least one stripe");
  GRIDVC_REQUIRE(!transfers_.contains(transfer_id), "transfer already registered");
  Registered reg;
  reg.engaged_hosts = std::min(stripes, config_.pool_size);
  reg.io = io;
  transfers_.emplace(transfer_id, reg);
  notify();
}

void Server::remove_transfer(std::uint64_t transfer_id) {
  const auto it = transfers_.find(transfer_id);
  GRIDVC_REQUIRE(it != transfers_.end(), "transfer not registered");
  transfers_.erase(it);
  notify();
}

BitsPerSecond Server::cluster_nic_rate() const {
  return static_cast<double>(config_.pool_size) * config_.nic_rate;
}

BitsPerSecond Server::share(std::uint64_t transfer_id) const {
  const auto it = transfers_.find(transfer_id);
  GRIDVC_REQUIRE(it != transfers_.end(), "transfer not registered");
  const Registered& reg = it->second;

  // NIC/CPU: cluster capacity shared in proportion to host engagement,
  // never exceeding the engaged hosts' own NICs.
  double total_weight = 0.0;
  for (const auto& [id, r] : transfers_) total_weight += static_cast<double>(r.engaged_hosts);
  const double weight = static_cast<double>(reg.engaged_hosts);
  const double proportional = cluster_nic_rate() * weight / std::max(total_weight, weight);
  BitsPerSecond ceiling = std::min(proportional, weight * config_.nic_rate);

  // Disk: per-host rate times engaged hosts (a striped transfer reads
  // from several hosts' disks in parallel).
  if (reg.io == IoMode::kDiskRead && config_.disk_read_rate > 0.0) {
    ceiling = std::min(ceiling, weight * config_.disk_read_rate);
  } else if (reg.io == IoMode::kDiskWrite && config_.disk_write_rate > 0.0) {
    ceiling = std::min(ceiling, weight * config_.disk_write_rate);
  }
  return ceiling;
}

void Server::set_change_listener(std::function<void()> listener) {
  listener_ = std::move(listener);
}

void Server::notify() {
  if (listener_) listener_();
}

}  // namespace gridvc::gridftp
