// Usage-statistics collection.
//
// §II: "GridFTP servers send usage statistics in UDP packets at the end of
// each transfer to a server maintained by the Globus organization." The
// collector is that sink: the transfer engine reports each finished
// transfer here, and analyses read the accumulated log. A drop probability
// models UDP loss / servers with the feature disabled.
#pragma once

#include "common/rng.hpp"
#include "gridftp/transfer_log.hpp"

namespace gridvc::gridftp {

class UsageStatsCollector {
 public:
  /// `drop_probability` is the chance a report never arrives.
  explicit UsageStatsCollector(double drop_probability = 0.0,
                               Rng rng = Rng(0xC011EC7ULL));

  /// Report one finished transfer (called by the engine).
  void report(const TransferRecord& record);

  /// Counting-only mode: when retention is off, report() still counts
  /// received records and accumulates byte/duration totals but does not
  /// append to the log. Multi-million-transfer runs (bench_shard_scale,
  /// the sharded federation) keep memory flat this way; the paper's
  /// per-record analyses keep the default retention. Toggling does not
  /// clear records already retained.
  void set_keep_log(bool keep) { keep_log_ = keep; }
  bool keep_log() const { return keep_log_; }

  /// All received records in arrival order (empty while retention is off).
  const TransferLog& log() const { return log_; }

  /// Move the log out (collector resets to empty).
  TransferLog take_log();

  std::size_t received() const { return received_; }
  std::size_t dropped() const { return dropped_; }

  /// Sum of TransferRecord::size over received (non-dropped) reports;
  /// maintained in counting-only mode too.
  Bytes received_bytes() const { return received_bytes_; }

  /// Permanently-failed transfers reported by the engine. Counted here,
  /// never appended to the log: the paper's analyses (throughput CDFs,
  /// session grouping) are defined over completed transfers only.
  std::size_t failed() const { return failed_; }

 private:
  double drop_probability_;
  Rng rng_;
  TransferLog log_;
  bool keep_log_ = true;
  std::size_t received_ = 0;
  Bytes received_bytes_ = 0;
  std::size_t dropped_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace gridvc::gridftp
