#include "gridftp/transfer_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace gridvc::gridftp {

TransferEngine::TransferEngine(net::Network& network, UsageStatsCollector& collector,
                               TransferEngineConfig config, Rng rng)
    : network_(network),
      collector_(collector),
      config_(config),
      tcp_(config.tcp),
      rng_(rng) {
  GRIDVC_REQUIRE(config_.server_noise_sigma >= 0.0, "noise sigma must be non-negative");

  obs::MetricsRegistry& reg = network_.simulator().obs().registry();
  id_submitted_ = reg.counter("gridvc_gridftp_transfers_submitted",
                              "Transfers accepted by the engine");
  id_completed_ = reg.counter("gridvc_gridftp_transfers_completed",
                              "Transfers that delivered every byte");
  id_attempts_ = reg.counter("gridvc_gridftp_attempts",
                             "Transfer attempts, restarts included");
  id_failures_ = reg.counter("gridvc_gridftp_failures",
                             "Attempts that died mid-transfer and were retried");
  id_aborted_ = reg.counter("gridvc_gridftp_aborted_attempts",
                            "Attempts killed by a link failure on the path");
  id_failed_ = reg.counter("gridvc_gridftp_transfers_failed",
                           "Transfers abandoned after max_aborts link-failure aborts");
  id_bytes_moved_ = reg.counter("gridvc_gridftp_bytes_moved",
                                "Payload bytes of completed transfers");
  id_active_ = reg.gauge("gridvc_gridftp_active_transfers",
                         "Transfers currently in flight");
  id_waiting_ = reg.gauge("gridvc_gridftp_waiting_transfers",
                          "Transfers parked on an offline endpoint server");
  id_crashes_ = reg.counter("gridvc_gridftp_server_crashes",
                            "Server crash events handled by the engine");
  id_stripes_hist_ = reg.histogram("gridvc_gridftp_stripes", {1, 2, 4, 8, 16},
                                   "Stripe count per submitted transfer");
  id_streams_hist_ = reg.histogram("gridvc_gridftp_streams", {1, 2, 4, 8, 16, 32},
                                   "Parallel TCP streams per submitted transfer");
  id_start_delay_hist_ = reg.log_histogram(
      "gridvc_gridftp_start_delay_seconds",
      "Submit -> first bytes on the wire (slow-start ramp, queueing)");
  id_duration_hist_ = reg.log_histogram(
      "gridvc_gridftp_transfer_seconds",
      "Submit -> last byte, retries included");
}

void TransferEngine::attach_listener(Server* server) {
  if (listened_.contains(server)) return;
  listened_.insert(server);
  server->set_change_listener([this] { refresh_caps(); });
}

void TransferEngine::register_endpoints(Active& t) {
  t.spec.src.server->add_transfer(t.id, t.spec.stripes,
                                  t.spec.src.io == IoMode::kMemory ? IoMode::kMemory
                                                                   : IoMode::kDiskRead);
  t.spec.dst.server->add_transfer(t.id, t.spec.stripes,
                                  t.spec.dst.io == IoMode::kMemory ? IoMode::kMemory
                                                                   : IoMode::kDiskWrite);
  t.registered = true;
}

bool TransferEngine::endpoints_online(const Active& t) const {
  return t.spec.src.server->online() && t.spec.dst.server->online();
}

void TransferEngine::set_waiting_gauge() {
  network_.simulator().obs().registry().set(id_waiting_,
                                            static_cast<double>(waiting_.size()));
}

std::uint64_t TransferEngine::submit(const TransferSpec& spec, DoneFn on_done) {
  GRIDVC_PROF_ZONE("gridftp.engine.submit");
  GRIDVC_REQUIRE(spec.src.server != nullptr && spec.dst.server != nullptr,
                 "transfer endpoints need servers");
  GRIDVC_REQUIRE(!spec.path.empty(), "transfer needs a network path");
  GRIDVC_REQUIRE(spec.size > 0, "transfer size must be positive");
  GRIDVC_REQUIRE(spec.streams >= 1 && spec.stripes >= 1, "streams/stripes must be >= 1");
  GRIDVC_REQUIRE(spec.rtt > 0.0, "RTT must be positive");

  const std::uint64_t id = next_id_++;
  Active t;
  t.id = id;
  t.spec = spec;
  t.submit_time = network_.simulator().now();
  t.lifetime = obs::SimSpan::begin(t.submit_time);
  // Lognormal efficiency factor clamped at 1: CPU/disk jitter can only
  // degrade a transfer below the configured hardware ceilings, never
  // exceed them.
  const double sigma = config_.server_noise_sigma;
  t.noise =
      sigma > 0.0 ? std::min(rng_.lognormal(-sigma * sigma / 2.0, sigma), 1.0) : 1.0;
  t.on_done = std::move(on_done);

  attach_listener(spec.src.server);
  attach_listener(spec.dst.server);
  const bool online = spec.src.server->online() && spec.dst.server->online();
  t.registered = online;

  auto [it, inserted] = transfers_.emplace(id, std::move(t));
  Active& active = it->second;
  if (online) register_endpoints(active);

  // The loss haircut and Slow Start penalty are computed against the
  // steady rate the transfer would get if alone on its current caps.
  const BitsPerSecond expected = std::max(1.0, transfer_cap(active));
  active.loss_factor =
      tcp_.loss_factor(spec.size, spec.streams, spec.rtt, expected, rng_);
  const Bytes per_stripe = stripe_chunk(spec.size, spec.stripes);
  const Seconds penalty = tcp_.slow_start_penalty(
      per_stripe, spec.streams, spec.rtt,
      std::max(1.0, expected / static_cast<double>(spec.stripes)));

  obs::Observability& obs = network_.simulator().obs();
  obs.registry().add(id_submitted_);
  obs.registry().set(id_active_, static_cast<double>(transfers_.size()));
  obs.registry().observe(id_stripes_hist_, static_cast<double>(spec.stripes));
  obs.registry().observe(id_streams_hist_, static_cast<double>(spec.streams));
  obs.emit({active.submit_time, obs::TraceEventType::kTransferSubmitted, id,
            static_cast<std::uint64_t>(spec.stripes), static_cast<double>(spec.size),
            static_cast<double>(spec.streams)});

  if (online) {
    active.injection =
        network_.simulator().schedule_in(penalty, [this, id] { begin_attempt(id); });
  } else {
    // An endpoint is down right now: park until handle_server_up resumes
    // us (the penalty is re-derived then — slow start restarts anyway).
    waiting_.insert(id);
    set_waiting_gauge();
  }
  return id;
}

BitsPerSecond TransferEngine::transfer_cap(const Active& t) const {
  const BitsPerSecond window =
      tcp_.window_cap(t.spec.streams, t.spec.rtt) * static_cast<double>(t.spec.stripes);
  // Between a crash and the next attempt the transfer holds no server
  // registrations, so shares are unqueryable; the window cap alone is a
  // sane planning estimate for backoff/penalty math (no flows exist yet).
  if (!t.registered) return std::max(1.0, window * t.noise * t.loss_factor);
  // Which side does disk I/O was fixed at registration, so share()
  // already reflects it.
  const BitsPerSecond src_share = t.spec.src.server->share(t.id);
  const BitsPerSecond dst_share = t.spec.dst.server->share(t.id);
  return std::max(1.0, std::min({src_share, dst_share, window}) * t.noise * t.loss_factor);
}

void TransferEngine::begin_attempt(std::uint64_t id) {
  GRIDVC_PROF_ZONE("gridftp.engine.begin_attempt");
  Active& t = transfers_.at(id);
  if (!endpoints_online(t)) {
    // A server crashed while our backoff/injection timer ran. Park; no
    // attempt is consumed — the client never got a control channel.
    waiting_.insert(id);
    set_waiting_gauge();
    return;
  }
  if (!t.registered) register_endpoints(t);
  const Bytes remaining = t.spec.size - t.bytes_done;
  ++t.attempts;
  ++stats_.attempts;

  obs::Observability& obs = network_.simulator().obs();
  obs.registry().add(id_attempts_);
  if (!t.started) {
    t.started = true;
    const Seconds wait = network_.simulator().now() - t.submit_time;
    obs.registry().observe(id_start_delay_hist_, wait);
    obs.emit({network_.simulator().now(), obs::TraceEventType::kTransferStarted, id, 0,
              wait, 0.0});
  }

  // Decide up front whether this attempt dies partway; the final allowed
  // attempt always goes through (GridFTP clients retry until done).
  t.attempt_fails = config_.failure_probability > 0.0 &&
                    t.attempts < config_.max_attempts &&
                    rng_.bernoulli(config_.failure_probability);
  if (t.attempt_fails) {
    const double fraction = rng_.uniform(0.05, 0.95);
    t.attempt_bytes = std::max<Bytes>(
        1, static_cast<Bytes>(static_cast<double>(remaining) * fraction));
  } else {
    t.attempt_bytes = remaining;
  }

  const BitsPerSecond cap = transfer_cap(t);
  const int stripes = t.spec.stripes;
  const Bytes per_stripe = stripe_chunk(t.attempt_bytes, stripes);
  t.flows.clear();
  t.attempt_delivered = 0;
  t.attempt_aborted = false;
  for (int s = 0; s < stripes; ++s) {
    net::FlowOptions opts;
    opts.cap = cap / static_cast<double>(stripes);
    opts.guarantee = t.spec.guarantee / static_cast<double>(stripes);
    opts.fail_on_link_down = true;  // data channels see the outage as an error
    const net::FlowId fid = network_.start_flow(
        t.spec.path, per_stripe, opts,
        [this, id](const net::FlowRecord& flow) { on_flow_complete(id, flow); });
    t.flows.push_back(fid);
  }
}

void TransferEngine::on_flow_complete(std::uint64_t id, const net::FlowRecord& flow) {
  Active& t = transfers_.at(id);
  const auto it = std::find(t.flows.begin(), t.flows.end(), flow.id);
  GRIDVC_REQUIRE(it != t.flows.end(), "flow completion for unknown stripe");
  t.flows.erase(it);
  t.attempt_delivered += flow.delivered;
  if (flow.outcome == net::FlowOutcome::kFailed) {
    t.attempt_aborted = true;
  } else {
    network_.simulator().obs().emit(
        {network_.simulator().now(), obs::TraceEventType::kTransferStripeCompleted, id,
         static_cast<std::uint64_t>(t.flows.size()), 0.0, 0.0});
  }
  if (t.flows.empty()) attempt_complete(id);
}

void TransferEngine::attempt_complete(std::uint64_t id) {
  GRIDVC_PROF_ZONE("gridftp.engine.attempt_complete");
  Active& t = transfers_.at(id);
  // Restart-marker semantics: bytes any stripe delivered survive the
  // attempt, whether it completed, was cut short by the stochastic
  // failure model, or died with the link. Credit at most the planned
  // attempt size so stripe ceil-padding never inflates logical progress.
  t.bytes_done += std::min(t.attempt_delivered, t.attempt_bytes);
  const bool aborted = t.attempt_aborted;
  if (t.bytes_done >= t.spec.size) {
    finish(id);
    return;
  }
  obs::Observability& obs = network_.simulator().obs();
  if (aborted) {
    ++t.aborts;
    ++stats_.aborted_attempts;
    obs.registry().add(id_aborted_);
    const bool terminal = config_.max_aborts > 0 && t.aborts >= config_.max_aborts;
    obs.emit({network_.simulator().now(), obs::TraceEventType::kTransferAborted, id,
              static_cast<std::uint64_t>(t.attempts), static_cast<double>(t.bytes_done),
              terminal ? 1.0 : 0.0});
    if (terminal) {
      fail_permanently(id);
      return;
    }
    schedule_retry(id);
    return;
  }
  // This attempt failed partway: restart from the marker after a backoff
  // (plus a fresh Slow Start ramp for the new connections).
  GRIDVC_REQUIRE(t.attempt_fails, "attempt fell short without a failure");
  ++stats_.failures;
  obs.registry().add(id_failures_);
  schedule_retry(id);
}

void TransferEngine::schedule_retry(std::uint64_t id) {
  Active& t = transfers_.at(id);
  // Every scheduled restart announces itself, whatever ended the previous
  // attempt (stochastic failure, link abort, server crash): the trace
  // checker pairs each non-terminal transfer_aborted with the retry that
  // resolves it. v2 carries the abort count, omitted-when-zero keeps the
  // classic failure-only traces byte-identical.
  network_.simulator().obs().emit(
      {network_.simulator().now(), obs::TraceEventType::kTransferRetry, id,
       static_cast<std::uint64_t>(t.attempts), static_cast<double>(t.bytes_done),
       static_cast<double>(t.aborts)});
  const Bytes remaining = t.spec.size - t.bytes_done;
  const Seconds penalty = tcp_.slow_start_penalty(
      std::max<Bytes>(stripe_chunk(remaining, t.spec.stripes), 1),
      t.spec.streams, t.spec.rtt,
      std::max(1.0, transfer_cap(t) / static_cast<double>(t.spec.stripes)));
  const Seconds backoff = config_.backoff.delay(std::max(t.attempts, 1), rng_);
  t.injection = network_.simulator().schedule_in(backoff + penalty,
                                                 [this, id] { begin_attempt(id); });
}

void TransferEngine::finish(std::uint64_t id) {
  GRIDVC_PROF_ZONE("gridftp.engine.finish");
  auto node = transfers_.extract(id);
  Active& t = node.mapped();
  const Seconds now = network_.simulator().now();

  TransferRecord record;
  record.type = t.spec.type;
  record.size = t.spec.size;
  record.start_time = t.submit_time;
  record.duration = now - t.submit_time;
  record.server_host = t.spec.type == TransferType::kRetrieve ? t.spec.src.server->name()
                                                              : t.spec.dst.server->name();
  record.remote_host = t.spec.remote_host;
  record.streams = t.spec.streams;
  record.stripes = t.spec.stripes;
  record.tcp_buffer = tcp_.config().stream_buffer;
  record.block_size = t.spec.block_size;

  if (t.registered) {
    t.spec.src.server->remove_transfer(id);
    t.spec.dst.server->remove_transfer(id);
  }
  if (waiting_.erase(id) > 0) set_waiting_gauge();

  ++stats_.completed;
  obs::Observability& obs = network_.simulator().obs();
  obs.registry().add(id_completed_);
  obs.registry().add(id_bytes_moved_, t.spec.size);
  obs.registry().set(id_active_, static_cast<double>(transfers_.size()));
  t.lifetime.end_observe(obs.registry(), id_duration_hist_, now);
  obs.emit({now, obs::TraceEventType::kTransferFinished, id,
            static_cast<std::uint64_t>(t.attempts), record.duration,
            static_cast<double>(t.spec.size)});
  collector_.report(record);
  if (t.on_done) t.on_done(record);
}

void TransferEngine::fail_permanently(std::uint64_t id) {
  auto node = transfers_.extract(id);
  Active& t = node.mapped();
  const Seconds now = network_.simulator().now();
  GRIDVC_REQUIRE(t.flows.empty(), "permanent failure with flows still in flight");

  TransferRecord record;
  record.type = t.spec.type;
  record.size = t.spec.size;
  record.start_time = t.submit_time;
  record.duration = now - t.submit_time;
  record.server_host = t.spec.type == TransferType::kRetrieve ? t.spec.src.server->name()
                                                              : t.spec.dst.server->name();
  record.remote_host = t.spec.remote_host;
  record.streams = t.spec.streams;
  record.stripes = t.spec.stripes;
  record.tcp_buffer = tcp_.config().stream_buffer;
  record.block_size = t.spec.block_size;
  record.failed = true;

  if (t.registered) {
    t.spec.src.server->remove_transfer(id);
    t.spec.dst.server->remove_transfer(id);
  }
  if (waiting_.erase(id) > 0) set_waiting_gauge();

  ++stats_.failed_transfers;
  obs::Observability& obs = network_.simulator().obs();
  obs.registry().add(id_failed_);
  obs.registry().set(id_active_, static_cast<double>(transfers_.size()));
  collector_.report(record);
  if (t.on_done) t.on_done(record);
}

void TransferEngine::handle_server_down(Server* server) {
  GRIDVC_REQUIRE(server != nullptr, "handle_server_down needs a server");
  if (server->online()) server->set_online(false);
  const Seconds now = network_.simulator().now();
  obs::Observability& obs = network_.simulator().obs();
  ++stats_.server_crashes;
  obs.registry().add(id_crashes_);

  // Phase 1 — collect the transfers that touch the dead server and are
  // not already parked. transfers_ is id-ordered, so the abort order (and
  // with it every downstream event) is deterministic.
  std::vector<std::uint64_t> affected;
  for (auto& [id, t] : transfers_) {
    if ((t.spec.src.server == server || t.spec.dst.server == server) &&
        !waiting_.contains(id)) {
      affected.push_back(id);
    }
  }
  obs.emit({now, obs::TraceEventType::kServerDown, server->config().id,
            static_cast<std::uint64_t>(affected.size()), 0.0, 0.0});

  // Phase 2 — kill the data plane. Settle each live flow's delivered
  // bytes first (they survive as GridFTP restart markers), then abort it;
  // abort_flow fires no completion callback, so attempt_complete never
  // runs for these.
  for (std::uint64_t id : affected) {
    Active& t = transfers_.at(id);
    t.injection.cancel();
    if (!t.flows.empty()) {
      for (net::FlowId fid : t.flows) {
        t.attempt_delivered += network_.sent_bytes(fid);
        network_.abort_flow(fid);
      }
      t.flows.clear();
      t.attempt_aborted = true;
    }
  }

  // Phase 3 — drop the survivors' registrations at their other endpoint
  // (the dead server already cleared its own). Safe now: every affected
  // transfer has empty flows, so the notify -> refresh_caps storm skips
  // them and never queries a share the dead server no longer has.
  for (std::uint64_t id : affected) {
    Active& t = transfers_.at(id);
    if (!t.registered) continue;
    Server* other = t.spec.src.server == server ? t.spec.dst.server : t.spec.src.server;
    if (other != server && other->online()) other->remove_transfer(id);
    t.registered = false;
  }

  // Phase 4 — settle outcomes: credit restart markers, charge the killed
  // attempt as an abort (terminal after max_aborts), park the rest.
  for (std::uint64_t id : affected) {
    Active& t = transfers_.at(id);
    const bool killed_attempt = t.attempt_aborted;
    t.attempt_aborted = false;
    if (killed_attempt) {
      t.bytes_done += std::min(t.attempt_delivered, t.attempt_bytes);
      t.attempt_delivered = 0;
    }
    if (t.bytes_done >= t.spec.size) {
      finish(id);
      continue;
    }
    if (killed_attempt) {
      ++t.aborts;
      ++stats_.aborted_attempts;
      obs.registry().add(id_aborted_);
      const bool terminal = config_.max_aborts > 0 && t.aborts >= config_.max_aborts;
      obs.emit({now, obs::TraceEventType::kTransferAborted, id,
                static_cast<std::uint64_t>(t.attempts), static_cast<double>(t.bytes_done),
                terminal ? 1.0 : 0.0});
      if (terminal) {
        fail_permanently(id);
        continue;
      }
    }
    waiting_.insert(id);
  }
  set_waiting_gauge();
}

void TransferEngine::handle_server_up(Server* server) {
  GRIDVC_REQUIRE(server != nullptr, "handle_server_up needs a server");
  if (!server->online()) server->set_online(true);
  const Seconds now = network_.simulator().now();
  obs::Observability& obs = network_.simulator().obs();
  obs.emit({now, obs::TraceEventType::kServerUp, server->config().id, 0, 0.0, 0.0});

  std::vector<std::uint64_t> resumable;
  for (std::uint64_t id : waiting_) {
    if (endpoints_online(transfers_.at(id))) resumable.push_back(id);
  }
  for (std::uint64_t id : resumable) {
    waiting_.erase(id);
    Active& t = transfers_.at(id);
    if (t.attempts == 0) {
      // Submitted while an endpoint was down: this is its first injection,
      // so pay the normal Slow Start ramp rather than a retry backoff.
      const Seconds penalty = tcp_.slow_start_penalty(
          stripe_chunk(t.spec.size, t.spec.stripes), t.spec.streams, t.spec.rtt,
          std::max(1.0, transfer_cap(t) / static_cast<double>(t.spec.stripes)));
      const std::uint64_t id_copy = id;
      t.injection = network_.simulator().schedule_in(
          penalty, [this, id_copy] { begin_attempt(id_copy); });
    } else {
      schedule_retry(id);
    }
  }
  set_waiting_gauge();
}

void TransferEngine::set_guarantee(std::uint64_t transfer_id, BitsPerSecond guarantee) {
  const auto it = transfers_.find(transfer_id);
  // Circuit callbacks legitimately outlive the transfers they fed (the
  // transfer finished or failed while its circuit was still active).
  if (it == transfers_.end()) return;
  Active& t = it->second;
  t.spec.guarantee = guarantee;
  // During a retry backoff there are no flows; the stored spec value
  // applies when the next attempt starts. Otherwise split across the
  // attempt's live flows — completed stripes have already left t.flows.
  if (t.flows.empty()) return;
  const BitsPerSecond share = guarantee / static_cast<double>(t.flows.size());
  for (net::FlowId fid : t.flows) {
    network_.update_guarantee(fid, share);
  }
}

void TransferEngine::refresh_caps() {
  // Server callbacks fire inside add/remove_transfer, including from our
  // own submit/finish paths; the guard prevents re-entrant refresh storms.
  if (refreshing_) return;
  refreshing_ = true;
  // One batched push: a registration change moves every transfer's share,
  // and update_caps runs a single allocator pass for the whole batch.
  std::vector<std::pair<net::FlowId, BitsPerSecond>> caps;
  for (auto& [id, t] : transfers_) {
    if (t.flows.empty()) continue;
    const BitsPerSecond cap = transfer_cap(t);
    for (net::FlowId fid : t.flows) {
      caps.emplace_back(fid, cap / static_cast<double>(t.flows.size()));
    }
  }
  network_.update_caps(caps);
  refreshing_ = false;
}

}  // namespace gridvc::gridftp
