// GridFTP transfer execution over the flow-level network.
//
// The engine turns a TransferSpec into data-plane flows and a usage-stats
// record:
//
//   * striping: k stripes become k parallel flows of size/k bytes each,
//     engaging up to k hosts at each server cluster (Table IX mechanism);
//   * parallel TCP streams: bound each stripe's demand by the TCP window
//     cap, and delay injection by the analytic Slow Start penalty
//     (Figs 3-5 mechanism);
//   * server contention: each transfer's aggregate demand is capped by
//     min(source share, destination share) — shares shrink as concurrent
//     transfers register, which is eq. (2)'s regime — multiplied by a
//     per-transfer lognormal noise factor modelling CPU/disk jitter;
//   * rare loss: a per-transfer multiplicative haircut from the TCP model;
//   * virtual circuits: a transfer may carry a rate guarantee, which is
//     split across its stripe flows.
//
// When the last stripe finishes, the engine reports a TransferRecord to
// the UsageStatsCollector and fires the submitter's callback.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "obs/span.hpp"
#include "gridftp/backoff.hpp"
#include "gridftp/server.hpp"
#include "gridftp/transfer_log.hpp"
#include "gridftp/usage_stats.hpp"
#include "net/network.hpp"
#include "net/tcp_model.hpp"

namespace gridvc::gridftp {

/// One side of a transfer.
struct EndpointSpec {
  Server* server = nullptr;  ///< non-owning; must outlive the engine
  IoMode io = IoMode::kMemory;
};

struct TransferSpec {
  EndpointSpec src;
  EndpointSpec dst;
  net::Path path;        ///< network path from src to dst
  Seconds rtt = 0.05;    ///< end-to-end round-trip time
  Bytes size = 0;
  int streams = 1;
  int stripes = 1;
  TransferType type = TransferType::kRetrieve;
  std::string remote_host;            ///< logged as the other end
  Bytes block_size = 256 * 1024;
  BitsPerSecond guarantee = 0.0;      ///< VC rate guarantee (0 = best effort)
};

/// Ceil-division split of a byte count across stripes: every stripe
/// carries ceil(size/stripes) so no byte is dropped; the engine uses this
/// everywhere a per-stripe size is needed (injection penalty, flow sizes,
/// retry penalty).
constexpr Bytes stripe_chunk(Bytes size, int stripes) {
  return (size + static_cast<Bytes>(stripes) - 1) / static_cast<Bytes>(stripes);
}

struct TransferEngineConfig {
  net::TcpConfig tcp;
  /// Log-space sigma of the per-transfer server-share noise (CPU/disk
  /// jitter). The factor has mean 1.
  double server_noise_sigma = 0.30;
  /// Probability that any given attempt fails partway (connection reset,
  /// server hiccup). GridFTP supports restart markers (§II "recovery from
  /// failures during transfers"), so a failed attempt resumes from the
  /// bytes already moved after `retry_backoff`.
  double failure_probability = 0.0;
  /// Attempts after which the transfer is forced through (the operator's
  /// patience); the final attempt never fails.
  int max_attempts = 5;
  /// Pause between a failure (or a link-failure abort) and the restart.
  /// Defaults to a fixed 5 s; see BackoffPolicy for exponential/jitter.
  BackoffPolicy backoff;
  /// Link-failure aborts after which the transfer is declared permanently
  /// failed (reported with TransferRecord::failed set). Unlike the
  /// stochastic attempt failures above, aborts come from real outages and
  /// can recur indefinitely, so the engine gives up rather than retrying
  /// forever. <= 0 means never give up.
  int max_aborts = 8;
};

class TransferEngine {
 public:
  using DoneFn = std::function<void(const TransferRecord&)>;

  TransferEngine(net::Network& network, UsageStatsCollector& collector,
                 TransferEngineConfig config, Rng rng);
  TransferEngine(const TransferEngine&) = delete;
  TransferEngine& operator=(const TransferEngine&) = delete;

  /// Start a transfer now. Requires a valid spec (servers set, non-empty
  /// path, size > 0, streams/stripes >= 1). Returns the transfer id.
  std::uint64_t submit(const TransferSpec& spec, DoneFn on_done = nullptr);

  /// Process-level fault model: crash the server cluster. Marks the
  /// server offline (clearing its registrations), settles and aborts the
  /// in-flight flows of every transfer touching it — bytes already on the
  /// wire survive as restart markers — charges each killed attempt as a
  /// link-style abort (terminal after max_aborts), deregisters the
  /// survivors from their other endpoint, and parks them in a waiting set
  /// until both endpoints are back online.
  void handle_server_down(Server* server);

  /// Restart the server. Parked transfers whose endpoints are now all
  /// online resume: started ones through the retry/backoff path (from
  /// their restart markers), never-started ones through the normal
  /// injection path.
  void handle_server_up(Server* server);

  /// Transfers parked because an endpoint server is offline.
  std::size_t waiting_transfers() const { return waiting_.size(); }

  /// Attach or replace the rate guarantee of an in-flight transfer (its
  /// circuit activated mid-transfer, or was lost — guarantee 0 degrades
  /// to best-effort). The new value is split across the attempt's *live*
  /// stripe flows; during a retry backoff (no flows in flight) it is
  /// stored and applied to the next attempt. Unknown ids are ignored:
  /// circuit callbacks legitimately outlive the transfers they fed.
  void set_guarantee(std::uint64_t transfer_id, BitsPerSecond guarantee);

  std::size_t active_transfers() const { return transfers_.size(); }

  const net::TcpModel& tcp_model() const { return tcp_; }

  /// Failure/retry accounting across the engine's lifetime. Every attempt
  /// ends exactly one way, so
  ///   attempts == completed-transfer attempts + failures + aborted_attempts
  /// holds at quiescence.
  struct Stats {
    std::uint64_t completed = 0;
    std::uint64_t attempts = 0;
    std::uint64_t failures = 0;  ///< attempts that ended in a mid-transfer failure
    std::uint64_t aborted_attempts = 0;  ///< attempts killed by a link failure or crash
    std::uint64_t failed_transfers = 0;  ///< gave up after max_aborts aborts
    std::uint64_t server_crashes = 0;    ///< handle_server_down invocations
  };
  const Stats& stats() const { return stats_; }

  /// Scheduler churn of the underlying simulator (events scheduled,
  /// cancelled, dispatched, live). Benches divide these by completed
  /// transfers to report events-per-flow.
  sim::Simulator::Counters sim_counters() const { return network_.simulator().counters(); }

 private:
  struct Active {
    std::uint64_t id = 0;
    TransferSpec spec;
    Seconds submit_time = 0.0;
    obs::SimSpan lifetime;     ///< submit -> finish (gridvc_gridftp_transfer_seconds)
    bool started = false;      ///< first attempt has put bytes on the wire
    double noise = 1.0;        ///< lognormal server-share factor
    double loss_factor = 1.0;  ///< TCP loss haircut
    Bytes bytes_done = 0;        ///< delivered by completed attempts
    Bytes attempt_bytes = 0;     ///< planned size of the in-flight attempt
    Bytes attempt_delivered = 0; ///< bytes its flows actually moved
    bool attempt_fails = false;
    bool attempt_aborted = false;  ///< a stripe died with a link failure
    int attempts = 0;
    int aborts = 0;  ///< link-failure/crash aborts across all attempts
    /// Whether the transfer currently holds registrations at both
    /// endpoint servers. Cleared when a crash wipes an endpoint's
    /// resource state; re-established by the next attempt.
    bool registered = true;
    /// Flows of the in-flight attempt that have not finished yet; stripes
    /// are removed as they complete so guarantee/cap splits always divide
    /// across live flows only.
    std::vector<net::FlowId> flows;
    DoneFn on_done;
    sim::EventHandle injection;
  };

  void attach_listener(Server* server);
  void register_endpoints(Active& t);
  bool endpoints_online(const Active& t) const;
  void set_waiting_gauge();
  void begin_attempt(std::uint64_t id);
  void on_flow_complete(std::uint64_t id, const net::FlowRecord& flow);
  void attempt_complete(std::uint64_t id);
  void schedule_retry(std::uint64_t id);
  void finish(std::uint64_t id);
  void fail_permanently(std::uint64_t id);
  /// Aggregate demand cap of a transfer right now.
  BitsPerSecond transfer_cap(const Active& t) const;
  /// Push refreshed caps into the network for every in-flight transfer.
  void refresh_caps();

  net::Network& network_;
  UsageStatsCollector& collector_;
  TransferEngineConfig config_;
  net::TcpModel tcp_;
  Rng rng_;
  std::map<std::uint64_t, Active> transfers_;
  /// Id-ordered (determinism) set of transfers parked on an offline
  /// endpoint server.
  std::set<std::uint64_t> waiting_;
  std::set<Server*> listened_;
  std::uint64_t next_id_ = 1;
  bool refreshing_ = false;
  Stats stats_;
  obs::MetricId id_submitted_;
  obs::MetricId id_completed_;
  obs::MetricId id_attempts_;
  obs::MetricId id_failures_;
  obs::MetricId id_aborted_;
  obs::MetricId id_failed_;
  obs::MetricId id_bytes_moved_;
  obs::MetricId id_active_;
  obs::MetricId id_waiting_;
  obs::MetricId id_crashes_;
  obs::MetricId id_stripes_hist_;
  obs::MetricId id_streams_hist_;
  obs::MetricId id_start_delay_hist_;
  obs::MetricId id_duration_hist_;
};

}  // namespace gridvc::gridftp
