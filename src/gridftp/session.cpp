#include "gridftp/session.hpp"

#include "common/error.hpp"

namespace gridvc::gridftp {

SessionRunner::SessionRunner(sim::Simulator& sim, TransferEngine& engine)
    : sim_(sim), engine_(engine) {}

std::uint64_t SessionRunner::run(SessionScript script, SessionDoneFn on_done) {
  GRIDVC_REQUIRE(!script.file_sizes.empty(), "session needs at least one file");
  GRIDVC_REQUIRE(script.concurrency >= 1, "session concurrency must be >= 1");
  GRIDVC_REQUIRE(script.inter_file_gap >= 0.0, "negative inter-file gap");

  const std::uint64_t id = next_id_++;
  ActiveSession s;
  s.script = std::move(script);
  s.summary.session_id = id;
  s.summary.start_time = sim_.now();
  s.on_done = std::move(on_done);
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kSessionOpened, id,
                   static_cast<std::uint64_t>(s.script.file_sizes.size()),
                   static_cast<double>(s.script.concurrency), 0.0});
  sessions_.emplace(id, std::move(s));
  pump(id);
  return id;
}

void SessionRunner::pump(std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ActiveSession& s = it->second;
  while (s.next_file < s.script.file_sizes.size() &&
         s.in_flight < static_cast<std::size_t>(s.script.concurrency)) {
    TransferSpec spec = s.script.transfer_template;
    spec.size = s.script.file_sizes[s.next_file];
    ++s.next_file;
    ++s.in_flight;
    engine_.submit(spec, [this, session_id](const TransferRecord& record) {
      auto sit = sessions_.find(session_id);
      if (sit == sessions_.end()) return;
      ActiveSession& session = sit->second;
      ++session.summary.transfers;
      session.summary.total_bytes += record.size;
      on_transfer_done(session_id);
    });
  }
}

void SessionRunner::on_transfer_done(std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ActiveSession& s = it->second;
  GRIDVC_REQUIRE(s.in_flight > 0, "session in-flight underflow");
  --s.in_flight;

  const bool more_files = s.next_file < s.script.file_sizes.size();
  if (more_files) {
    if (s.script.inter_file_gap > 0.0) {
      sim_.schedule_in(s.script.inter_file_gap, [this, session_id] { pump(session_id); });
    } else {
      pump(session_id);
    }
    return;
  }
  if (s.in_flight == 0) {
    s.summary.end_time = sim_.now();
    SessionSummary summary = s.summary;
    SessionDoneFn callback = std::move(s.on_done);
    sessions_.erase(it);
    sim_.obs().emit({sim_.now(), obs::TraceEventType::kSessionClosed,
                     summary.session_id, summary.transfers, summary.duration(),
                     static_cast<double>(summary.total_bytes)});
    if (callback) callback(summary);
  }
}

}  // namespace gridvc::gridftp
