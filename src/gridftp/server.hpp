// Data-transfer-node (GridFTP server) resource model.
//
// The paper's finding (v): throughput variance traces to "competition for
// server resources rather than network resources … competition for CPU and
// disk I/O resources". This model makes that competition explicit:
//
//   * A server endpoint is a *cluster* of `pool_size` hosts, each with an
//     aggregate NIC/CPU ceiling of `nic_rate` (the NCAR "frost" cluster
//     shrank from 3 servers in 2009 to 1 in 2011 — Table VIII's year
//     effect).
//   * A transfer with k stripes engages w = min(k, pool_size) hosts, so
//     its ceiling scales with stripes (Table IX) but never beyond the
//     pool.
//   * Concurrent transfers share the cluster ceiling in proportion to
//     their host engagement w (eq. (2)'s R/n regime when all transfers
//     are single-striped).
//   * Disk endpoints are further capped by per-host disk read/write
//     rates; NERSC's disk subsystem is the bottleneck behind Fig 1's
//     lower mem→disk and disk→disk medians.
//
// The model is control-state only; the TransferEngine queries shares and
// pushes them into the flow-level network as demand caps, re-querying
// whenever registration changes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/units.hpp"

namespace gridvc::gridftp {

struct ServerConfig {
  std::string name;
  /// Stable numeric id used in server_down/server_up trace events (the
  /// trace schema carries integer subject ids only). 0 is fine for
  /// scenarios that never crash servers.
  std::uint64_t id = 0;
  /// Per-host NIC/CPU aggregate ceiling.
  BitsPerSecond nic_rate = 0.0;
  /// Per-host sequential disk read ceiling (source-side disk I/O).
  BitsPerSecond disk_read_rate = 0.0;
  /// Per-host disk write ceiling (destination-side disk I/O; typically
  /// lower than read).
  BitsPerSecond disk_write_rate = 0.0;
  /// Number of physical hosts behind this endpoint.
  int pool_size = 1;
};

/// The disk involvement of one side of a transfer.
enum class IoMode : std::uint8_t { kMemory, kDiskRead, kDiskWrite };

class Server {
 public:
  explicit Server(ServerConfig config);

  const ServerConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }

  /// Change the pool size (models hardware retirement over the years).
  /// Notifies the change listener.
  void set_pool_size(int pool_size);

  /// Change the per-host NIC/CPU ceiling (models slow drift of the
  /// host's deliverable capacity: competing daemons, cache state, cooling
  /// throttles). Notifies the change listener.
  void set_nic_rate(BitsPerSecond nic_rate);

  /// Process-level fault model: crash (false) or restart (true) the whole
  /// cluster. Crashing clears every registration — server resource state
  /// does not survive a restart — and deliberately does NOT notify the
  /// change listener: the caller must immediately follow with
  /// TransferEngine::handle_server_down(), which aborts the affected
  /// transfers and then refreshes shares safely. Coming back online
  /// notifies normally. Idempotent per state.
  void set_online(bool online);
  bool online() const { return online_; }

  /// Register an active transfer that uses `stripes` stripes and the
  /// given disk mode on this side. Requires the server to be online.
  /// Notifies the change listener.
  void add_transfer(std::uint64_t transfer_id, int stripes, IoMode io);

  /// Deregister. Notifies the change listener.
  void remove_transfer(std::uint64_t transfer_id);

  /// This server's current ceiling for the given transfer (NIC share and
  /// disk ceiling combined), before any engine-applied noise.
  BitsPerSecond share(std::uint64_t transfer_id) const;

  /// Number of concurrent transfers currently registered.
  std::size_t concurrency() const { return transfers_.size(); }

  /// Cluster-wide NIC ceiling: pool_size * nic_rate.
  BitsPerSecond cluster_nic_rate() const;

  /// One listener (the TransferEngine) is notified whenever shares may
  /// have changed.
  void set_change_listener(std::function<void()> listener);

 private:
  struct Registered {
    int engaged_hosts = 1;  // w = min(stripes, pool_size)
    IoMode io = IoMode::kMemory;
  };

  void notify();

  ServerConfig config_;
  bool online_ = true;
  std::map<std::uint64_t, Registered> transfers_;
  std::function<void()> listener_;
};

}  // namespace gridvc::gridftp
