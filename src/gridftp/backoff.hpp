// Retry backoff policies.
//
// GridFTP clients pause between a mid-transfer failure and the restart
// from the last marker. The original engine hard-coded a fixed pause;
// real deployments (globus-url-copy, the hosted service) use exponential
// backoff with a cap and jitter so that a flapping link does not get
// hammered by synchronized retries. The policy is a plain value: the
// engine asks it for the delay after the Nth failed attempt, drawing any
// jitter from the engine's deterministic RNG stream.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace gridvc::gridftp {

struct BackoffPolicy {
  enum class Kind : std::uint8_t {
    kFixed,        ///< the same pause after every failure
    kExponential,  ///< base * multiplier^(attempt-1), capped
  };

  Kind kind = Kind::kFixed;
  Seconds base = 5.0;       ///< first pause
  double multiplier = 2.0;  ///< growth per failed attempt (exponential only)
  Seconds cap = 300.0;      ///< ceiling on the deterministic part
  /// Uniform jitter fraction in [0, 1): the computed delay is scaled by a
  /// factor drawn from [1 - jitter, 1 + jitter). Zero means deterministic.
  double jitter = 0.0;

  /// Pause before retrying after the `attempt`-th attempt failed
  /// (1-based). Draws from `rng` only when jitter > 0.
  Seconds delay(int attempt, Rng& rng) const;

  static BackoffPolicy fixed(Seconds base);
  static BackoffPolicy exponential(Seconds base, double multiplier = 2.0,
                                   Seconds cap = 300.0, double jitter = 0.0);
};

}  // namespace gridvc::gridftp
