// Domain partition of a multi-domain topology.
//
// The sharded simulation (sharded_simulation.hpp) decomposes a federation
// by *administrative domain*: every domain becomes one logical world with
// its own Simulator/Network/Idc/servers, whatever `--shards` says — the
// shard count only widens the executor that runs the worlds, never the
// decomposition itself, which is what makes digests byte-identical at any
// shard count. This header owns the static half of that story:
//
//   * assign every node to a domain (routers by their `domain` tag, hosts
//     by the domain of the router they attach to),
//   * build a per-domain local Topology holding the domain's nodes and
//     intra-domain links, plus one *proxy node* per outgoing inter-domain
//     link so the egress link's capacity and delay are contended inside
//     the owning domain's fluid model,
//   * enumerate the inter-domain links as Gateways (the shard channels:
//     a gateway's propagation delay lower-bounds cross-shard causality,
//     and the minimum over all gateways is the conservative lookahead),
//   * cut a global path into per-domain Legs that each world can hand to
//     its own transfer engine.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace gridvc::shard {

class DomainPartition {
 public:
  /// One directed inter-domain link, lifted to a shard channel.
  struct Gateway {
    net::LinkId global_link = 0;
    std::uint32_t src_domain = 0;
    std::uint32_t dst_domain = 0;
    net::NodeId global_from = 0;  ///< border node in src_domain
    net::NodeId global_to = 0;    ///< entry node in dst_domain
    /// Egress link in src_domain's local topology: local(from) -> proxy,
    /// carrying the global link's capacity and delay.
    net::LinkId local_egress = 0;
    Seconds delay = 0.0;  ///< == messages' minimum channel latency
    /// Index of the gateway for the opposite direction (to -> from), or
    /// kNoGateway for a simplex inter-domain link. Completion relays and
    /// chain-booking replies travel backwards over this.
    std::uint32_t reverse = kNoGateway;
  };
  static constexpr std::uint32_t kNoGateway = 0xffffffffu;

  struct Domain {
    std::string name;
    net::Topology topo;  ///< nodes + intra-domain links + gateway proxies
    /// global node id -> local node id, for every node owned by this
    /// domain (proxies are local-only and not listed here).
    std::unordered_map<net::NodeId, net::NodeId> local_node;
    /// global link id -> local link id, for intra-domain links.
    std::unordered_map<net::LinkId, net::LinkId> local_link;
    std::vector<net::NodeId> global_hosts;  ///< hosts owned, ascending
  };

  /// One per-domain run of a global path. `local_path` ends with the
  /// crossed gateway's egress proxy link when `exit_gateway` is set, so a
  /// world simulates its share of the inter-domain hop's contention.
  struct Leg {
    std::uint32_t domain = 0;
    net::Path local_path;  ///< may be empty when the path ends on entry
    net::NodeId local_src = 0;
    net::NodeId local_dst = 0;
    std::uint32_t exit_gateway = kNoGateway;  ///< crossed after this leg
  };

  /// Partition `global`. Domains are the distinct router tags in
  /// lexicographic order (an untagged single-domain topology degenerates
  /// to one world). Every host must attach to at least one router.
  explicit DomainPartition(const net::Topology& global);

  const net::Topology& global() const { return *global_; }
  std::size_t domain_count() const { return domains_.size(); }
  const Domain& domain(std::uint32_t d) const { return domains_[d]; }
  std::uint32_t domain_of(net::NodeId global_node) const {
    return node_domain_[global_node];
  }
  std::uint32_t domain_index(const std::string& name) const;

  const std::vector<Gateway>& gateways() const { return gateways_; }

  /// Smallest gateway delay: the conservative lookahead. Requires at
  /// least one gateway unless the topology is single-domain (then 0).
  Seconds lookahead() const { return lookahead_; }

  /// Cut a global path into per-domain legs. The path must be valid in
  /// the global topology; every inter-domain link crossed must be a
  /// gateway (by construction of the partition, all of them are).
  std::vector<Leg> cut_path(const net::Path& path) const;

 private:
  const net::Topology* global_;
  std::vector<Domain> domains_;
  std::vector<std::uint32_t> node_domain_;  ///< by global node id
  std::unordered_map<std::string, std::uint32_t> domain_by_name_;
  std::vector<Gateway> gateways_;
  std::unordered_map<net::LinkId, std::uint32_t> gateway_by_link_;
  Seconds lookahead_ = 0.0;
};

}  // namespace gridvc::shard
