#include "shard/partition.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.hpp"

namespace gridvc::shard {

DomainPartition::DomainPartition(const net::Topology& global) : global_(&global) {
  const std::size_t n = global.node_count();
  GRIDVC_REQUIRE(n > 0, "cannot partition an empty topology");

  // Pass 1: the domain name set, from router tags (lexicographic order so
  // the numbering is a pure function of the topology).
  std::set<std::string> names;
  for (net::NodeId id = 0; id < n; ++id) {
    const net::Node& node = global.node(id);
    if (node.kind == net::NodeKind::kRouter) names.insert(node.domain);
  }
  GRIDVC_REQUIRE(!names.empty(), "topology has no routers to partition around");
  for (const auto& name : names) {
    domain_by_name_.emplace(name, static_cast<std::uint32_t>(domains_.size()));
    Domain d;
    d.name = name;
    domains_.push_back(std::move(d));
  }

  // Pass 2: node -> domain. Routers by tag; hosts by the domain of the
  // first router they link to (the attachment, not the host's own tag —
  // a host lives wherever its access link terminates, which matches the
  // InterdomainCoordinator's access-link rule).
  node_domain_.assign(n, 0);
  for (net::NodeId id = 0; id < n; ++id) {
    const net::Node& node = global.node(id);
    if (node.kind == net::NodeKind::kRouter) {
      node_domain_[id] = domain_by_name_.at(node.domain);
      continue;
    }
    bool attached = false;
    for (net::LinkId lid : global.outgoing(id)) {
      const net::Node& peer = global.node(global.link(lid).to);
      if (peer.kind == net::NodeKind::kRouter) {
        node_domain_[id] = domain_by_name_.at(peer.domain);
        attached = true;
        break;
      }
    }
    GRIDVC_REQUIRE(attached, "host does not attach to any router: " + node.name);
  }

  // Pass 3: per-domain nodes (global id order keeps local numbering a
  // pure function of the global topology).
  for (net::NodeId id = 0; id < n; ++id) {
    Domain& d = domains_[node_domain_[id]];
    const net::Node& node = global.node(id);
    const net::NodeId local = d.topo.add_node(node.name, node.kind, node.domain);
    d.local_node.emplace(id, local);
    if (node.kind == net::NodeKind::kHost) d.global_hosts.push_back(id);
  }

  // Pass 4: links. Intra-domain links copy straight over; inter-domain
  // links become gateways with an egress proxy in the source domain.
  for (net::LinkId lid = 0; lid < global.link_count(); ++lid) {
    const net::Link& link = global.link(lid);
    const std::uint32_t from_d = node_domain_[link.from];
    const std::uint32_t to_d = node_domain_[link.to];
    if (from_d == to_d) {
      Domain& d = domains_[from_d];
      const net::LinkId local = d.topo.add_link(
          d.local_node.at(link.from), d.local_node.at(link.to), link.capacity, link.delay);
      d.local_link.emplace(lid, local);
      continue;
    }
    Domain& d = domains_[from_d];
    // The proxy stands in for the far border node; tagging it with the
    // peer domain keeps local path segmentation honest if anyone asks.
    const net::NodeId proxy =
        d.topo.add_node("gw" + std::to_string(lid) + ":" + global.node(link.to).name,
                        net::NodeKind::kRouter, domains_[to_d].name);
    const net::LinkId egress =
        d.topo.add_link(d.local_node.at(link.from), proxy, link.capacity, link.delay);
    Gateway gw;
    gw.global_link = lid;
    gw.src_domain = from_d;
    gw.dst_domain = to_d;
    gw.global_from = link.from;
    gw.global_to = link.to;
    gw.local_egress = egress;
    gw.delay = link.delay;
    gateway_by_link_.emplace(lid, static_cast<std::uint32_t>(gateways_.size()));
    gateways_.push_back(gw);
  }

  // Pass 5: pair up reverse directions (duplex inter-domain links).
  for (std::uint32_t i = 0; i < gateways_.size(); ++i) {
    if (gateways_[i].reverse != kNoGateway) continue;
    for (std::uint32_t j = i + 1; j < gateways_.size(); ++j) {
      if (gateways_[j].global_from == gateways_[i].global_to &&
          gateways_[j].global_to == gateways_[i].global_from) {
        gateways_[i].reverse = j;
        gateways_[j].reverse = i;
        break;
      }
    }
  }

  if (!gateways_.empty()) {
    Seconds lo = std::numeric_limits<Seconds>::infinity();
    for (const auto& gw : gateways_) lo = std::min(lo, gw.delay);
    GRIDVC_REQUIRE(lo > 0.0, "inter-domain links need positive delay for lookahead");
    lookahead_ = lo;
  }
}

std::uint32_t DomainPartition::domain_index(const std::string& name) const {
  const auto it = domain_by_name_.find(name);
  GRIDVC_REQUIRE(it != domain_by_name_.end(), "unknown domain: " + name);
  return it->second;
}

std::vector<DomainPartition::Leg> DomainPartition::cut_path(const net::Path& path) const {
  GRIDVC_REQUIRE(!path.empty(), "cannot cut an empty path");
  const net::Topology& g = *global_;
  std::vector<Leg> legs;

  Leg current;
  current.domain = node_domain_[g.link(path.front()).from];
  current.local_src = domains_[current.domain].local_node.at(g.link(path.front()).from);

  for (net::LinkId lid : path) {
    const net::Link& link = g.link(lid);
    const std::uint32_t from_d = node_domain_[link.from];
    const std::uint32_t to_d = node_domain_[link.to];
    GRIDVC_REQUIRE(from_d == current.domain, "path leg left its domain unexpectedly");
    if (from_d == to_d) {
      current.local_path.push_back(domains_[from_d].local_link.at(lid));
      continue;
    }
    // Crossing: close this leg at the gateway's proxy, open the next one
    // at the entry node.
    const std::uint32_t gw_index = gateway_by_link_.at(lid);
    const Gateway& gw = gateways_[gw_index];
    current.local_path.push_back(gw.local_egress);
    current.local_dst = domains_[from_d].topo.link(gw.local_egress).to;
    current.exit_gateway = gw_index;
    legs.push_back(std::move(current));
    current = Leg{};
    current.domain = to_d;
    current.local_src = domains_[to_d].local_node.at(link.to);
  }
  // Final leg: ends at the path's destination inside the last domain.
  current.local_dst = current.local_path.empty()
                          ? current.local_src
                          : domains_[current.domain].topo.link(current.local_path.back()).to;
  legs.push_back(std::move(current));
  return legs;
}

}  // namespace gridvc::shard
