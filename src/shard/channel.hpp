// Latency-stamped inter-shard messages.
//
// Worlds never touch each other's state directly: every cross-domain
// interaction — a transfer handed to the next domain on its path, the
// hop-by-hop two-phase VC chain booking, the completion relay that walks
// back to the origin — is a ShardMessage queued on the sending world's
// outbox during an epoch and delivered by the coordinator at the next
// barrier. A message's deliver_time is its send time plus the crossed
// gateway's propagation delay, which is >= the partition lookahead; the
// epoch horizon is min(next event) + lookahead, so a message sent inside
// an epoch always lands at or beyond the barrier that closes it — no
// world ever executes past what a neighbor could still affect.
//
// Delivery order is the total order (deliver_time, src_domain, seq):
// deterministic whatever thread interleaving produced the outboxes,
// which is half of the byte-identical-digest story (the other half is
// that the decomposition is per-domain regardless of --shards).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace gridvc::shard {

enum class MessageKind : std::uint8_t {
  kSegmentHandoff,    ///< start the next per-domain leg of a transfer
  kVcBook,            ///< forward chain booking: book leg's segment circuit
  kVcBookOk,          ///< backward: every downstream segment admitted
  kVcBookReject,      ///< backward: a downstream domain rejected; roll back
  kCompletionRelay,   ///< backward: final leg done; free slots, release VCs
};

struct ShardMessage {
  MessageKind kind = MessageKind::kSegmentHandoff;
  std::uint32_t src_domain = 0;
  std::uint32_t dst_domain = 0;
  Seconds send_time = 0.0;
  Seconds deliver_time = 0.0;
  std::uint64_t seq = 0;       ///< per-source-world send counter (tiebreak)
  std::uint64_t transfer = 0;  ///< global transfer id; chains share it
  std::uint32_t leg = 0;       ///< index into cut_path legs this targets
  Bytes bytes = 0;
  BitsPerSecond rate = 0.0;    ///< requested chain guarantee (kVcBook)
  Seconds window = 0.0;        ///< requested circuit hold (kVcBook)
  net::Path path;              ///< the transfer's global path
};

/// The deterministic delivery order.
inline bool message_before(const ShardMessage& a, const ShardMessage& b) {
  if (a.deliver_time != b.deliver_time) return a.deliver_time < b.deliver_time;
  if (a.src_domain != b.src_domain) return a.src_domain < b.src_domain;
  return a.seq < b.seq;
}

/// FNV-1a fold of one message into a running digest hash. Folding the
/// sorted message stream captures every cross-shard interaction, so two
/// runs with equal hashes exercised identical inter-domain behavior.
inline std::uint64_t fold_message(std::uint64_t h, const ShardMessage& m) {
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<std::uint64_t>(m.kind));
  mix((static_cast<std::uint64_t>(m.src_domain) << 32) | m.dst_domain);
  mix(std::bit_cast<std::uint64_t>(m.deliver_time));
  mix(m.seq);
  mix(m.transfer);
  mix(m.leg);
  mix(m.bytes);
  return h;
}

}  // namespace gridvc::shard
