#include "shard/sharded_simulation.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "exec/rng_stream.hpp"
#include "gridftp/server.hpp"
#include "gridftp/transfer_engine.hpp"
#include "gridftp/usage_stats.hpp"
#include "net/network.hpp"
#include "obs/profiler.hpp"
#include "sim/simulator.hpp"
#include "vc/idc.hpp"

namespace gridvc::shard {

namespace {

using SegKey = std::pair<std::uint64_t, std::uint32_t>;  // (transfer, leg)

vc::IdcConfig world_idc_config() {
  vc::IdcConfig config;
  // Chain segments use the paper's 50 ms immediate-signaling scenario:
  // hop-by-hop booking latency comes from the gateway channels, not from
  // batch boundaries.
  config.mode = vc::SignalingMode::kImmediate;
  config.immediate_setup_delay = 0.05;
  config.reservable_fraction = 0.5;
  return config;
}

}  // namespace

struct ShardedSimulation::DomainWorld {
  struct HostState {
    net::NodeId global = 0;
    std::unique_ptr<gridftp::Server> server;
    /// This host's users, (arrival time, user id), arrival order.
    std::vector<std::pair<Seconds, std::uint64_t>> arrivals;
    std::size_t next_arrival = 0;
    /// Users with a file ready to start, FIFO behind the concurrency cap.
    std::deque<std::pair<std::uint64_t, std::uint32_t>> ready;  // (user, file)
    int active = 0;
  };
  struct SegmentWork {
    net::Path path;  ///< global path (every world re-cuts it locally)
    Bytes bytes = 0;
  };
  struct ChainSegment {
    std::uint64_t circuit = 0;
    BitsPerSecond rate = 0.0;
    bool active = false;    ///< activation fired (release vs cancel choice)
    bool released = false;  ///< any terminal transition already happened
  };
  struct OriginFlight {
    std::uint64_t user = 0;
    std::uint32_t file = 0;
    std::uint32_t host = 0;  ///< index into hosts
    Bytes bytes = 0;
    net::Path path;
  };

  ShardedSimulation& owner;
  const std::uint32_t index;
  const DomainPartition::Domain& dom;
  sim::Simulator sim;
  net::Network net;
  vc::Idc idc;
  gridftp::UsageStatsCollector collector;
  gridftp::TransferEngine engine;
  std::unique_ptr<gridftp::Server> relay_in;   ///< ingress border DTNs
  std::unique_ptr<gridftp::Server> relay_out;  ///< egress border DTNs
  std::vector<HostState> hosts;
  std::unordered_map<net::NodeId, std::uint32_t> host_by_global;

  std::vector<ShardMessage> outbox;
  std::uint64_t send_seq = 0;
  std::uint64_t next_transfer = 1;

  std::map<SegKey, SegmentWork> segments;
  std::map<SegKey, ChainSegment> chains;
  std::map<std::uint64_t, OriginFlight> inflight;

  // Per-world accounting, merged serially after the run.
  std::uint64_t open_sessions = 0;
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t segments_completed = 0;
  std::uint64_t chains_requested = 0;
  std::uint64_t chains_granted = 0;
  std::uint64_t chains_rejected = 0;
  Bytes bytes_planned = 0;
  Bytes bytes_delivered = 0;

  DomainWorld(ShardedSimulation& owner_, std::uint32_t index_)
      : owner(owner_),
        index(index_),
        dom(owner_.partition_.domain(index_)),
        sim(),
        net(sim, dom.topo),
        idc(sim, dom.topo, world_idc_config()),
        collector(),
        engine(net, collector, gridftp::TransferEngineConfig{},
               exec::stream_rng(owner_.scenario_.seed ^ 0x5A4D0ULL, index_)) {
    collector.set_keep_log(false);
    const auto& config = owner.scenario_.config;
    relay_in = std::make_unique<gridftp::Server>(gridftp::ServerConfig{
        dom.name + ".relay.in", 100000 + index, config.relay_nic, 0.0, 0.0,
        config.relay_pool});
    relay_out = std::make_unique<gridftp::Server>(gridftp::ServerConfig{
        dom.name + ".relay.out", 200000 + index, config.relay_nic, 0.0, 0.0,
        config.relay_pool});

    // Hosts + their user arrival schedules. A host's users are the
    // arithmetic sequence {host ordinal + j * total hosts}; their arrival
    // times are pure functions of (seed, user), sorted here once.
    const std::uint64_t total_hosts =
        static_cast<std::uint64_t>(config.sites) * config.hosts_per_site;
    for (net::NodeId global_host : dom.global_hosts) {
      HostState h;
      h.global = global_host;
      h.server = std::make_unique<gridftp::Server>(gridftp::ServerConfig{
          owner.partition_.global().node(global_host).name, global_host,
          config.host_nic, 0.0, 0.0, 1});
      host_by_global.emplace(global_host, static_cast<std::uint32_t>(hosts.size()));
      hosts.push_back(std::move(h));
    }
    const auto& scenario = owner.scenario_;
    for (std::uint32_t hi = 0; hi < hosts.size(); ++hi) {
      HostState& h = hosts[hi];
      const std::uint32_t site = scenario.origin_site(global_user_ordinal(h.global));
      const std::uint32_t ord = scenario.origin_host(global_user_ordinal(h.global));
      const std::uint64_t first = static_cast<std::uint64_t>(site) *
                                      config.hosts_per_site +
                                  ord;
      for (std::uint64_t u = first; u < config.users; u += total_hosts) {
        h.arrivals.emplace_back(scenario.arrival_time(u), u);
      }
      std::sort(h.arrivals.begin(), h.arrivals.end());
      pump_arrivals(hi);
    }
  }

  /// The user ordinal whose origin is exactly this host (host ordinals
  /// and user ordinals share the mod-total-hosts layout).
  std::uint64_t global_user_ordinal(net::NodeId global_host) const {
    const auto& scenario = owner.scenario_;
    for (std::uint32_t site = 0; site < scenario.sites.size(); ++site) {
      const auto& fs = scenario.sites[site];
      for (std::uint32_t ord = 0; ord < fs.hosts.size(); ++ord) {
        if (fs.hosts[ord] == global_host) {
          return static_cast<std::uint64_t>(site) *
                     scenario.config.hosts_per_site +
                 ord;
        }
      }
    }
    GRIDVC_REQUIRE(false, "host not found in any federation site");
    return 0;
  }

  void pump_arrivals(std::uint32_t hi) {
    HostState& h = hosts[hi];
    if (h.next_arrival >= h.arrivals.size()) return;
    sim.schedule_at(h.arrivals[h.next_arrival].first, [this, hi] {
      HostState& host = hosts[hi];
      const auto [when, user] = host.arrivals[host.next_arrival++];
      (void)when;
      host.ready.emplace_back(user, 0);
      ++open_sessions;
      dispatch(hi);
      pump_arrivals(hi);
    });
  }

  void dispatch(std::uint32_t hi) {
    HostState& h = hosts[hi];
    while (h.active < owner.scenario_.config.host_concurrency && !h.ready.empty()) {
      const auto [user, file] = h.ready.front();
      h.ready.pop_front();
      ++h.active;
      start_file(hi, user, file);
    }
  }

  std::uint64_t make_transfer_id() {
    return (static_cast<std::uint64_t>(index + 1) << 44) | next_transfer++;
  }

  void start_file(std::uint32_t hi, std::uint64_t user, std::uint32_t file) {
    GRIDVC_PROF_ZONE("shard.start_file");
    const auto& scenario = owner.scenario_;
    const auto params = scenario.transfer_params(user, file);
    net::Path path = scenario.route(user, params);
    const std::uint64_t tid = make_transfer_id();
    ++transfers_started;
    bytes_planned += params.size;
    inflight.emplace(tid, OriginFlight{user, file, hi, params.size, path});

    const auto legs = owner.partition_.cut_path(path);
    if (params.wants_vc) {
      ++chains_requested;
      if (book_segment(tid, 0, legs[0], scenario.config.chain_rate,
                       scenario.config.chain_window)) {
        if (legs.size() == 1) {
          ++chains_granted;
          start_leg(tid, 0, path, params.size);
        } else {
          // Forward the booking down the chain; data waits for the Ok.
          ShardMessage m;
          m.kind = MessageKind::kVcBook;
          m.transfer = tid;
          m.leg = 1;
          m.bytes = params.size;
          m.rate = scenario.config.chain_rate;
          m.window = scenario.config.chain_window;
          m.path = std::move(path);
          send_forward(m, legs[0]);
        }
        return;
      }
      ++chains_rejected;  // local admission failed: degrade to best effort
    }
    start_leg(tid, 0, path, params.size);
  }

  bool book_segment(std::uint64_t tid, std::uint32_t leg,
                    const DomainPartition::Leg& cut, BitsPerSecond rate,
                    Seconds window) {
    GRIDVC_PROF_ZONE("shard.vc.book_segment");
    if (cut.local_path.empty()) return true;  // zero-hop leg: nothing to book
    const auto mark_released = [this, tid, leg](const vc::Circuit&) {
      const auto it = chains.find({tid, leg});
      if (it != chains.end()) it->second.released = true;
    };
    const auto result = idc.request_immediate(
        cut.local_src, cut.local_dst, rate, window,
        [this, tid, leg](const vc::Circuit&) {
          const auto it = chains.find({tid, leg});
          if (it != chains.end()) it->second.active = true;
        },
        mark_released, mark_released);
    if (!result.accepted()) return false;
    chains.emplace(SegKey{tid, leg}, ChainSegment{*result.circuit_id, rate, false, false});
    return true;
  }

  void release_chain(std::uint64_t tid, std::uint32_t leg) {
    const auto it = chains.find({tid, leg});
    if (it == chains.end()) return;
    if (!it->second.released) {
      if (it->second.active) {
        idc.release_now(it->second.circuit);
      } else {
        idc.cancel(it->second.circuit);
      }
    }
    chains.erase(it);
  }

  BitsPerSecond chain_guarantee(std::uint64_t tid, std::uint32_t leg) const {
    const auto it = chains.find({tid, leg});
    return it != chains.end() && !it->second.released ? it->second.rate : 0.0;
  }

  void start_leg(std::uint64_t tid, std::uint32_t leg_index, const net::Path& path,
                 Bytes bytes) {
    GRIDVC_PROF_ZONE("shard.start_leg");
    const auto legs = owner.partition_.cut_path(path);
    const auto& leg = legs[leg_index];
    segments.emplace(SegKey{tid, leg_index}, SegmentWork{path, bytes});
    if (leg.local_path.empty()) {
      // The path ends exactly on this domain's entry node: nothing to move.
      segment_done(tid, leg_index);
      return;
    }
    gridftp::TransferSpec spec;
    if (leg_index == 0) {
      const auto fl = inflight.find(tid);
      GRIDVC_REQUIRE(fl != inflight.end(), "origin leg without an origin record");
      spec.src.server = hosts[fl->second.host].server.get();
    } else {
      spec.src.server = relay_in.get();
    }
    if (leg.exit_gateway == DomainPartition::kNoGateway) {
      const net::Link& last = dom.topo.link(leg.local_path.back());
      const auto dst = host_by_global.find(global_of_local(last.to));
      GRIDVC_REQUIRE(dst != host_by_global.end(), "final leg must end at a host");
      spec.dst.server = hosts[dst->second].server.get();
    } else {
      spec.dst.server = relay_out.get();
    }
    spec.path = leg.local_path;
    spec.rtt = std::max(2.0 * dom.topo.path_delay(leg.local_path), 1e-3);
    spec.size = bytes;
    spec.streams = owner.scenario_.config.streams;
    spec.stripes = 1;
    spec.guarantee = chain_guarantee(tid, leg_index);
    engine.submit(spec, [this, tid, leg_index](const gridftp::TransferRecord&) {
      segment_done(tid, leg_index);
    });
  }

  /// Local node id -> global node id (hosts only; relies on the partition
  /// numbering nodes in ascending global order, which makes the local
  /// map invertible through the domain's host list).
  net::NodeId global_of_local(net::NodeId local) const {
    const net::Node& node = dom.topo.node(local);
    const auto global = owner.partition_.global().find_node(node.name);
    GRIDVC_REQUIRE(global.has_value(), "local node missing from global topology");
    return *global;
  }

  void segment_done(std::uint64_t tid, std::uint32_t leg_index) {
    GRIDVC_PROF_ZONE("shard.segment_done");
    const auto it = segments.find({tid, leg_index});
    GRIDVC_REQUIRE(it != segments.end(), "segment completion without a record");
    SegmentWork work = std::move(it->second);
    segments.erase(it);
    ++segments_completed;

    const auto legs = owner.partition_.cut_path(work.path);
    const auto& leg = legs[leg_index];
    if (leg.exit_gateway != DomainPartition::kNoGateway) {
      ShardMessage m;
      m.kind = MessageKind::kSegmentHandoff;
      m.transfer = tid;
      m.leg = leg_index + 1;
      m.bytes = work.bytes;
      m.path = std::move(work.path);
      send_forward(m, leg);
      return;
    }
    // Final leg: the file has fully arrived.
    bytes_delivered += work.bytes;
    ++transfers_completed;
    if (leg_index == 0) {
      complete_origin(tid);
      return;
    }
    release_chain(tid, leg_index);  // the relay below walks legs n-2..0
    ShardMessage m;
    m.kind = MessageKind::kCompletionRelay;
    m.transfer = tid;
    m.leg = leg_index - 1;
    m.bytes = work.bytes;
    m.path = std::move(work.path);
    send_backward(m, legs, leg_index);
  }

  void complete_origin(std::uint64_t tid) {
    release_chain(tid, 0);
    const auto it = inflight.find(tid);
    GRIDVC_REQUIRE(it != inflight.end(), "completion for unknown transfer");
    const OriginFlight fl = std::move(it->second);
    inflight.erase(it);
    HostState& h = hosts[fl.host];
    --h.active;
    if (fl.file + 1 < owner.scenario_.config.transfers_per_user) {
      sim.schedule_in(owner.scenario_.config.think_time,
                      [this, hi = fl.host, user = fl.user, next = fl.file + 1] {
                        hosts[hi].ready.emplace_back(user, next);
                        dispatch(hi);
                      });
    } else {
      --open_sessions;
    }
    dispatch(fl.host);
  }

  /// Queue `m` over the gateway this leg exits through.
  void send_forward(ShardMessage m, const DomainPartition::Leg& leg) {
    const auto& gw = owner.partition_.gateways()[leg.exit_gateway];
    m.dst_domain = gw.dst_domain;
    post(std::move(m), gw.delay);
  }

  /// Queue `m` towards leg_index-1, over the reverse of the gateway that
  /// brought the transfer here.
  void send_backward(ShardMessage m, const std::vector<DomainPartition::Leg>& legs,
                     std::uint32_t leg_index) {
    GRIDVC_REQUIRE(leg_index > 0, "no upstream leg to send back to");
    const auto& forward = owner.partition_.gateways()[legs[leg_index - 1].exit_gateway];
    GRIDVC_REQUIRE(forward.reverse != DomainPartition::kNoGateway,
                   "backward channel requires a duplex inter-domain link");
    const auto& gw = owner.partition_.gateways()[forward.reverse];
    m.dst_domain = gw.dst_domain;
    post(std::move(m), gw.delay);
  }

  void post(ShardMessage m, Seconds delay) {
    m.src_domain = index;
    m.send_time = sim.now();
    m.deliver_time = sim.now() + delay;
    m.seq = send_seq++;
    outbox.push_back(std::move(m));
  }

  void handle(const ShardMessage& m) {
    GRIDVC_PROF_ZONE("shard.handle_message");
    switch (m.kind) {
      case MessageKind::kSegmentHandoff:
        start_leg(m.transfer, m.leg, m.path, m.bytes);
        return;
      case MessageKind::kVcBook: {
        const auto legs = owner.partition_.cut_path(m.path);
        if (book_segment(m.transfer, m.leg, legs[m.leg], m.rate, m.window)) {
          if (legs[m.leg].exit_gateway == DomainPartition::kNoGateway) {
            ShardMessage ok;
            ok.kind = MessageKind::kVcBookOk;
            ok.transfer = m.transfer;
            ok.leg = m.leg - 1;
            ok.bytes = m.bytes;
            ok.path = m.path;
            send_backward(ok, legs, m.leg);
          } else {
            ShardMessage fwd = m;
            fwd.leg = m.leg + 1;
            send_forward(fwd, legs[m.leg]);
          }
        } else {
          ShardMessage reject;
          reject.kind = MessageKind::kVcBookReject;
          reject.transfer = m.transfer;
          reject.leg = m.leg - 1;
          reject.bytes = m.bytes;
          reject.path = m.path;
          send_backward(reject, legs, m.leg);
        }
        return;
      }
      case MessageKind::kVcBookOk: {
        if (m.leg > 0) {
          const auto legs = owner.partition_.cut_path(m.path);
          ShardMessage fwd = m;
          fwd.leg = m.leg - 1;
          send_backward(fwd, legs, m.leg);
          return;
        }
        ++chains_granted;
        const auto fl = inflight.find(m.transfer);
        GRIDVC_REQUIRE(fl != inflight.end(), "chain grant for unknown transfer");
        start_leg(m.transfer, 0, fl->second.path, fl->second.bytes);
        return;
      }
      case MessageKind::kVcBookReject: {
        release_chain(m.transfer, m.leg);
        if (m.leg > 0) {
          const auto legs = owner.partition_.cut_path(m.path);
          ShardMessage fwd = m;
          fwd.leg = m.leg - 1;
          send_backward(fwd, legs, m.leg);
          return;
        }
        ++chains_rejected;
        const auto fl = inflight.find(m.transfer);
        GRIDVC_REQUIRE(fl != inflight.end(), "chain reject for unknown transfer");
        start_leg(m.transfer, 0, fl->second.path, fl->second.bytes);
        return;
      }
      case MessageKind::kCompletionRelay: {
        release_chain(m.transfer, m.leg);
        if (m.leg == 0) {
          complete_origin(m.transfer);
          return;
        }
        const auto legs = owner.partition_.cut_path(m.path);
        ShardMessage fwd = m;
        fwd.leg = m.leg - 1;
        send_backward(fwd, legs, m.leg);
        return;
      }
    }
    GRIDVC_REQUIRE(false, "unknown shard message kind");
  }
};

ShardedSimulation::ShardedSimulation(const workload::FederationScenario& scenario,
                                     unsigned shards)
    : scenario_(scenario),
      partition_(scenario.topo),
      shards_(shards == 0 ? 1 : shards),
      pool_(shards == 0 ? 1 : shards) {
  GRIDVC_REQUIRE(partition_.domain_count() >= 1, "partition produced no domains");
  GRIDVC_REQUIRE(partition_.lookahead() > 0.0,
                 "federation needs inter-domain links (positive lookahead)");
  worlds_.reserve(partition_.domain_count());
  for (std::uint32_t d = 0; d < partition_.domain_count(); ++d) {
    worlds_.push_back(std::make_unique<DomainWorld>(*this, d));
  }
}

ShardedSimulation::~ShardedSimulation() = default;

void ShardedSimulation::exchange() {
  GRIDVC_PROF_ZONE("shard.exchange");
  pending_.clear();
  for (auto& w : worlds_) {
    for (auto& m : w->outbox) pending_.push_back(std::move(m));
    w->outbox.clear();
  }
  std::sort(pending_.begin(), pending_.end(),
            [](const ShardMessage& a, const ShardMessage& b) {
              return message_before(a, b);
            });
  for (auto& m : pending_) {
    ++stats_.messages;
    stats_.message_hash = fold_message(stats_.message_hash, m);
    GRIDVC_REQUIRE(m.deliver_time >= m.send_time + partition_.lookahead() - 1e-12,
                   "shard message beat the lookahead");
    DomainWorld* dst = worlds_[m.dst_domain].get();
    // schedule_at counts into the destination's metrics registry, and the
    // barrier hands world ownership back to this thread; re-pin the
    // single-writer assert before touching it (the pool join ordered the
    // lane's writes before ours).
    dst->sim.obs().registry().rebind_owner();
    const Seconds at = m.deliver_time;
    dst->sim.schedule_at(at, [dst, msg = std::move(m)] { dst->handle(msg); });
  }
  pending_.clear();
}

void ShardedSimulation::run() {
  const Seconds lookahead = partition_.lookahead();
  for (;;) {
    exchange();
    Seconds t_star = std::numeric_limits<Seconds>::infinity();
    for (auto& w : worlds_) {
      if (const auto nt = w->sim.next_event_time()) t_star = std::min(t_star, *nt);
    }
    if (t_star == std::numeric_limits<Seconds>::infinity()) break;
    const Seconds horizon = t_star + lookahead;
    ++stats_.barriers;
    stats_.world_epoch_slots += worlds_.size();

    std::uint64_t sessions = 0;
    active_.clear();
    for (auto& w : worlds_) {
      sessions += w->open_sessions;
      const auto nt = w->sim.next_event_time();
      if (!nt) continue;
      if (*nt <= horizon) {
        active_.push_back(w.get());
      } else {
        ++stats_.stalled_world_epochs;
      }
    }
    stats_.peak_open_sessions = std::max(stats_.peak_open_sessions, sessions);

    GRIDVC_PROF_ZONE("shard.epoch");
    if (active_.size() == 1) {
      active_.front()->sim.obs().registry().rebind_owner();
      active_.front()->sim.run_until(horizon);
    } else {
      // A world may land on a different lane than last epoch; re-pin its
      // registry's single-writer assert to this lane. The barrier join
      // below orders the previous lane's writes before ours.
      pool_.parallel_for(active_.size(), [&](std::size_t i) {
        active_[i]->sim.obs().registry().rebind_owner();
        active_[i]->sim.run_until(horizon);
      });
    }
  }

  for (auto& w : worlds_) {
    stats_.transfers_started += w->transfers_started;
    stats_.transfers_completed += w->transfers_completed;
    stats_.segments_completed += w->segments_completed;
    stats_.chains_requested += w->chains_requested;
    stats_.chains_granted += w->chains_granted;
    stats_.chains_rejected += w->chains_rejected;
    stats_.bytes_planned += w->bytes_planned;
    stats_.bytes_delivered += w->bytes_delivered;
    stats_.events_dispatched += w->sim.dispatched();
    stats_.end_time = std::max(stats_.end_time, w->sim.now());
  }
  audit();
}

void ShardedSimulation::audit() {
  const auto violation = [this](const std::string& invariant, const std::string& detail) {
    violations_.push_back(invariant + ": " + detail);
  };
  const std::uint64_t expected = scenario_.total_transfers();
  if (stats_.transfers_started != expected) {
    violation("all-transfers-started", std::to_string(stats_.transfers_started) +
                                           " of " + std::to_string(expected));
  }
  if (stats_.transfers_completed != expected) {
    violation("all-transfers-completed", std::to_string(stats_.transfers_completed) +
                                             " of " + std::to_string(expected));
  }
  if (stats_.bytes_delivered != stats_.bytes_planned) {
    violation("byte-conservation", std::to_string(stats_.bytes_delivered) +
                                       " delivered of " +
                                       std::to_string(stats_.bytes_planned) + " planned");
  }
  for (const auto& w : worlds_) {
    const std::string who = "domain " + w->dom.name;
    if (!w->sim.idle()) violation("simulator-drained", who);
    if (!w->outbox.empty()) violation("channels-drained", who);
    if (w->engine.active_transfers() != 0 || w->engine.waiting_transfers() != 0) {
      violation("engine-drained", who);
    }
    if (!w->segments.empty()) violation("segments-drained", who);
    if (!w->chains.empty()) violation("chains-drained", who);
    if (!w->inflight.empty()) violation("origin-flights-drained", who);
    if (w->open_sessions != 0) violation("sessions-closed", who);
    if (w->idc.live_circuit_count() != 0) violation("circuits-released", who);
    for (const auto& h : w->hosts) {
      if (h.active != 0 || !h.ready.empty() || h.next_arrival != h.arrivals.size()) {
        violation("hosts-drained", who + " host " + h.server->name());
        break;
      }
    }
  }
}

std::string ShardedSimulation::digest() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "seed=%" PRIu64 " domains=%zu transfers=%" PRIu64 "/%" PRIu64 " segments=%" PRIu64
      " msgs=%" PRIu64 " hash=%016" PRIx64 " chains=%" PRIu64 "/%" PRIu64 "/%" PRIu64
      " events=%" PRIu64 " barriers=%" PRIu64 " bytes=%" PRIu64 " end=%.6f violations=%zu",
      scenario_.seed, partition_.domain_count(), stats_.transfers_completed,
      scenario_.total_transfers(), stats_.segments_completed, stats_.messages,
      stats_.message_hash, stats_.chains_granted, stats_.chains_rejected,
      stats_.chains_requested, stats_.events_dispatched, stats_.barriers,
      stats_.bytes_delivered, stats_.end_time, violations_.size());
  return buf;
}

}  // namespace gridvc::shard
