// Sharded multi-domain parallel simulation with conservative lookahead.
//
// One logical world per administrative domain, always: each world owns a
// full vertical stack — Simulator, Network over the domain's local
// topology, Idc, GridFTP servers, transfer engine, workload state — and
// worlds interact only through latency-stamped ShardMessages exchanged at
// barriers. `--shards N` sets how many executor lanes run the worlds in
// parallel; it never changes the decomposition, the message streams, or
// any event order, so digests are byte-identical at any shard count and
// shards=1 *is* the serial reference path (same code, inline execution).
//
// Synchronization is a synchronous conservative protocol (the barrier
// variant of null-message lookahead):
//
//   barrier k:  deliver all queued messages (sorted by (deliver_time,
//               src_domain, seq)) into their destination simulators;
//               t* = min over worlds of next_event_time();
//               E = t* + lookahead   (lookahead = min gateway delay);
//   epoch k:    every world with an event <= E runs run_until(E) on the
//               pool — a world with nothing due before E is *stalled*
//               this epoch (the lookahead-stall fraction reported by
//               bench_shard_scale counts exactly these).
//
// Safety: a message sent at local time t carries deliver_time
// t + gateway.delay >= t* + lookahead = E, so nothing sent during an
// epoch can land inside it — no world ever executes past what a
// neighbor could still affect. Progress: E > t* strictly (lookahead is
// required positive), so every barrier round dispatches at least one
// event somewhere.
//
// Cross-domain transfers are executed store-and-forward: the origin
// world runs the first per-domain leg through its own transfer engine,
// hands the file to the next domain's border relay cluster over the
// gateway channel, and so on; the final world counts the delivery and a
// completion relay walks the reverse gateways back, releasing each
// domain's chain circuit and finally the origin host's concurrency slot.
// VC chains book hop-by-hop (kVcBook forward, kVcBookOk/kVcBookReject
// backward) against each world's local Idc — the message-passing twin of
// InterdomainCoordinator's two-phase chain booking.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "shard/channel.hpp"
#include "shard/partition.hpp"
#include "workload/federation.hpp"

namespace gridvc::shard {

struct ShardStats {
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t segments_completed = 0;
  std::uint64_t chains_requested = 0;
  std::uint64_t chains_granted = 0;
  std::uint64_t chains_rejected = 0;
  std::uint64_t messages = 0;
  std::uint64_t message_hash = 0xcbf29ce484222325ULL;  ///< FNV-1a over the stream
  std::uint64_t barriers = 0;
  std::uint64_t events_dispatched = 0;   ///< summed over worlds at the end
  std::uint64_t stalled_world_epochs = 0;
  std::uint64_t world_epoch_slots = 0;   ///< barriers x worlds
  std::uint64_t peak_open_sessions = 0;  ///< sampled at barriers
  Bytes bytes_planned = 0;
  Bytes bytes_delivered = 0;
  Seconds end_time = 0.0;

  /// Fraction of (world, epoch) slots that sat out their epoch waiting on
  /// the lookahead horizon.
  double stall_fraction() const {
    return world_epoch_slots == 0
               ? 0.0
               : static_cast<double>(stalled_world_epochs) /
                     static_cast<double>(world_epoch_slots);
  }
};

class ShardedSimulation {
 public:
  /// `shards` = executor lanes (>= 1). The scenario must outlive the
  /// simulation.
  ShardedSimulation(const workload::FederationScenario& scenario, unsigned shards);
  ~ShardedSimulation();
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  /// Run to completion (all users served, all channels drained), then
  /// audit the cross-world invariants.
  void run();

  const ShardStats& stats() const { return stats_; }
  const DomainPartition& partition() const { return partition_; }
  unsigned shards() const { return shards_; }

  /// Deterministic run fingerprint; byte-identical at any shard count.
  std::string digest() const;

  /// Invariant violations found by run()'s final audit (empty = clean):
  /// every planned transfer completed, bytes conserved across worlds,
  /// every chain circuit released, every queue/gauge drained.
  const std::vector<std::string>& violations() const { return violations_; }

 private:
  struct DomainWorld;

  void exchange();
  void audit();

  const workload::FederationScenario& scenario_;
  DomainPartition partition_;
  unsigned shards_;
  exec::ThreadPool pool_;
  std::vector<std::unique_ptr<DomainWorld>> worlds_;
  std::vector<DomainWorld*> active_;      ///< scratch: worlds due this epoch
  std::vector<ShardMessage> pending_;     ///< scratch: barrier exchange buffer
  ShardStats stats_;
  std::vector<std::string> violations_;
};

}  // namespace gridvc::shard
