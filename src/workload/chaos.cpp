#include "workload/chaos.hpp"

#include <array>
#include <iomanip>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "frontend/admission.hpp"
#include "obs/flight_recorder.hpp"
#include "gridftp/server.hpp"
#include "gridftp/transfer_engine.hpp"
#include "gridftp/usage_stats.hpp"
#include "net/network.hpp"
#include "recovery/journal.hpp"
#include "sim/simulator.hpp"
#include "vc/idc.hpp"

namespace gridvc::workload {

namespace {

using gridftp::IoMode;
using gridftp::Server;
using gridftp::ServerConfig;
using gridftp::TransferEngine;
using gridftp::TransferEngineConfig;
using gridftp::TransferService;
using gridftp::TransferServiceConfig;
using gridftp::TransferSpec;
using obs::TraceEvent;
using obs::TraceEventType;
using recovery::FaultTargetKind;

/// Audits the trace stream while optionally teeing it to an external
/// sink. Everything here is keyed by integer ids, so iteration order —
/// and therefore the violation report — is deterministic.
class AuditTraceSink final : public obs::TraceSink {
 public:
  explicit AuditTraceSink(obs::TraceSink* tee) : tee_(tee) {}

  void emit(const TraceEvent& event) override {
    ++total_;
    ++counts_[static_cast<std::size_t>(event.type)];
    switch (event.type) {
      case TraceEventType::kTransferSubmitted: {
        Track& t = transfers_[event.id];
        t.size = event.value;
        break;
      }
      case TraceEventType::kTransferFinished: {
        Track& t = transfers_[event.id];
        t.finished = true;
        t.finished_size = event.value2;
        t.unresolved_abort = false;
        break;
      }
      case TraceEventType::kTransferAborted: {
        Track& t = transfers_[event.id];
        ++t.aborts;
        if (event.value2 != 0.0) {
          t.failed = true;
          t.unresolved_abort = false;
        } else {
          t.unresolved_abort = true;
        }
        break;
      }
      case TraceEventType::kTransferRetry: {
        transfers_[event.id].unresolved_abort = false;
        break;
      }
      default:
        break;
    }
    if (tee_ != nullptr) tee_->emit(event);
  }

  struct Track {
    double size = 0.0;
    double finished_size = 0.0;
    std::uint64_t aborts = 0;
    bool finished = false;
    bool failed = false;  ///< terminal abort recorded
    /// An abort with no retry / finish / terminal record after it yet.
    bool unresolved_abort = false;
  };

  std::uint64_t total() const { return total_; }
  std::uint64_t count(TraceEventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  const std::map<std::uint64_t, Track>& transfers() const { return transfers_; }

 private:
  obs::TraceSink* tee_;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, obs::kTraceEventTypeCount> counts_{};
  std::map<std::uint64_t, Track> transfers_;
};

}  // namespace

ChaosResult run_chaos(const ChaosConfig& config, std::uint64_t seed) {
  GRIDVC_REQUIRE(config.task_count > 0, "no tasks requested");
  GRIDVC_REQUIRE(config.files_per_task > 0, "tasks need at least one file");
  GRIDVC_REQUIRE(config.file_size > 0, "file size must be positive");
  GRIDVC_REQUIRE(config.tenants == 0 || config.service_crash_at <= 0.0,
                 "service crash recovery is not composed with the front-end "
                 "(recovered tasks drop the front-end's completion hooks)");

  ChaosResult result;

  Rng root(seed);
  sim::Simulator sim;
  AuditTraceSink audit(config.trace_sink);
  sim.obs().set_trace_sink(&audit);

  // Same two-span WAN as the faulty-wan scenario: the primary span (via
  // r1) carries the data path and circuits, the backup span (via r2)
  // gives failed circuits somewhere to re-signal to.
  net::Topology topo;
  const auto src = topo.add_node("src-dtn", net::NodeKind::kHost);
  const auto edge_a = topo.add_node("edge-a", net::NodeKind::kRouter);
  const auto r1 = topo.add_node("r1", net::NodeKind::kRouter);
  const auto r2 = topo.add_node("r2", net::NodeKind::kRouter);
  const auto edge_b = topo.add_node("edge-b", net::NodeKind::kRouter);
  const auto dst = topo.add_node("dst-dtn", net::NodeKind::kHost);
  const auto [src_a, a_src] = topo.add_duplex_link(src, edge_a, gbps(10), 0.0005);
  const auto [a_r1, r1_a] = topo.add_duplex_link(edge_a, r1, gbps(10), 0.002);
  const auto [r1_b, b_r1] = topo.add_duplex_link(r1, edge_b, gbps(10), 0.002);
  const auto [a_r2, r2_a] = topo.add_duplex_link(edge_a, r2, gbps(10), 0.008);
  const auto [r2_b, b_r2] = topo.add_duplex_link(r2, edge_b, gbps(10), 0.008);
  const auto [b_dst, dst_b] = topo.add_duplex_link(edge_b, dst, gbps(10), 0.0005);
  (void)a_src; (void)r1_a; (void)b_r1; (void)r2_a; (void)b_r2; (void)dst_b;

  net::Network network(sim, topo);

  ServerConfig sc;
  sc.name = "src-dtn";
  sc.id = 1;
  sc.nic_rate = gbps(10);
  Server source(sc);
  sc.name = "dst-dtn";
  sc.id = 2;
  Server sink(sc);

  gridftp::UsageStatsCollector collector;
  TransferEngineConfig engine_cfg;
  engine_cfg.tcp.stream_buffer = 64 * MiB;
  engine_cfg.server_noise_sigma = 0.1;
  engine_cfg.backoff = gridftp::BackoffPolicy::exponential(5.0, 2.0, 60.0, 0.1);
  engine_cfg.max_aborts = config.max_aborts;
  TransferEngine engine(network, collector, engine_cfg, root.fork(1));

  recovery::Journal idc_journal;
  vc::IdcConfig idc_cfg;
  idc_cfg.mode = vc::SignalingMode::kImmediate;
  idc_cfg.journal = &idc_journal;
  vc::Idc idc(sim, topo, idc_cfg);

  recovery::Journal service_journal;
  TransferServiceConfig service_cfg;
  service_cfg.max_active_tasks = 2;
  service_cfg.per_task_concurrency = 2;
  // With a front-end the overload guard moves to the per-tenant queues:
  // the backend queue is unbounded but stays empty because the DRR
  // dispatcher only releases work into free active slots.
  service_cfg.queue_limit = config.tenants > 0 ? 0 : config.queue_limit;
  service_cfg.overload_policy = config.overload_policy;
  service_cfg.journal = &service_journal;
  TransferService service(sim, engine, service_cfg);

  const Bytes task_bytes = config.file_size * config.files_per_task;

  std::unique_ptr<frontend::FrontEnd> front;
  std::vector<std::uint64_t> front_sessions;
  if (config.tenants > 0) {
    frontend::FrontEndConfig fcfg;
    for (std::size_t t = 0; t < config.tenants; ++t) {
      frontend::TenantConfig tc;
      tc.name = "tenant" + std::to_string(t);
      tc.weight = static_cast<double>(t + 1);
      tc.queue_limit = config.queue_limit;
      tc.policy = config.overload_policy;
      // The heaviest tenant runs against a one-task queued-bytes quota so
      // every battery exercises the rejection path deterministically.
      if (t + 1 == config.tenants && config.tenants > 1) {
        tc.max_queued_bytes = task_bytes;
      }
      fcfg.tenants.push_back(tc);
    }
    front = std::make_unique<frontend::FrontEnd>(sim, service, fcfg);
    for (std::size_t t = 0; t < config.tenants; ++t) {
      front_sessions.push_back(front->connect("tenant" + std::to_string(t)));
    }
  }

  const net::Path data_path = {src_a, a_r1, r1_b, b_dst};
  const Seconds rtt = 2.0 * topo.path_delay(data_path);

  TransferSpec tmpl;
  tmpl.src = {&source, IoMode::kDiskRead};
  tmpl.dst = {&sink, IoMode::kDiskWrite};
  tmpl.path = data_path;
  tmpl.rtt = rtt;
  tmpl.streams = config.streams;
  tmpl.remote_host = "dst-dtn";

  const std::vector<Bytes> files(config.files_per_task, config.file_size);
  const Seconds estimated = transfer_time(task_bytes, config.circuit_rate) * 2.0 + 600.0;

  // Per-task submission: try for a circuit; run best-effort when the
  // control plane says no (outage fail-fast included). The task's
  // on_done releases the circuit; after a service crash the recovered
  // tasks carry a shared on_done instead, and the circuit falls back to
  // its own end-time release — either way it is gone by drain.
  std::vector<std::uint8_t> launched(config.task_count, 0);
  for (std::size_t k = 0; k < config.task_count; ++k) {
    const Seconds when = static_cast<double>(k) * config.task_interarrival;
    sim.schedule_at(when, [&, k] {
      const std::string label = "chaos-task-" + std::to_string(k);
      gridftp::SubmitOptions opts;
      opts.priority = static_cast<int>(k % 3);
      if (config.task_deadline > 0.0) opts.deadline = config.task_deadline;

      const auto submit_task = [&, k, label, opts](BitsPerSecond guarantee,
                                                   std::optional<std::uint64_t> circuit) {
        TransferSpec spec = tmpl;
        spec.guarantee = guarantee;
        const auto release = [&idc, circuit](const gridftp::TaskStatus&) {
          if (circuit) idc.release_now(*circuit);
        };
        if (front != nullptr) {
          // Tickets the front-end refuses or sheds never fire on_done;
          // release the circuit here on refusal, and let shed tickets'
          // circuits fall back to their end-time release (same fallback
          // the crash-recovery path relies on).
          const auto r = front->submit(front_sessions[k % config.tenants],
                                       label, files, spec, opts, "", release);
          if (!r.accepted && circuit) idc.release_now(*circuit);
        } else {
          service.submit(label, files, spec, opts, release);
        }
      };

      const auto on_active = [&, k, submit_task](const vc::Circuit& c) {
        // First activation launches the task under the guarantee;
        // re-activations after a re-signal are a no-op here because
        // the service template is fixed at submit time.
        if (launched[k] == 0) {
          launched[k] = 1;
          submit_task(c.rate_at(sim.now()), c.id);
        }
      };
      const auto granted = [&] {
        if (!config.malleable_reservations) {
          return idc.request_immediate(src, dst, config.circuit_rate, estimated,
                                       on_active, nullptr, nullptr);
        }
        vc::ReservationRequest req;
        req.src = src;
        req.dst = dst;
        req.bandwidth = config.circuit_rate;
        req.start_time = sim.now();
        req.end_time = idc.predicted_activation(sim.now(), sim.now()) + estimated;
        req.description = label;
        req.malleable = true;
        return idc.create_reservation(req, on_active);
      }();
      if (granted.accepted()) {
        ++result.circuits_granted;
      } else {
        submit_task(0.0, std::nullopt);
      }
    });
  }

  // Fault plan: either the caller's (shrinking) or generated from the
  // seed. Link targets 0/1 are the primary span's forward links; server
  // targets 0/1 are source/sink; the IDC process is singular.
  recovery::FaultScheduleSpec spec;
  spec.link_count = 2;
  spec.server_count = 2;
  spec.idc = config.idc_mtbf > 0.0;
  spec.start_after = config.fault_start_after;
  spec.horizon = config.fault_horizon;
  spec.link_mtbf = config.link_mtbf;
  spec.link_mttr = config.link_mttr;
  spec.server_mtbf = config.server_mtbf;
  spec.server_mttr = config.server_mttr;
  spec.idc_mtbf = config.idc_mtbf;
  spec.idc_mttr = config.idc_mttr;
  result.schedule = config.schedule_override != nullptr
                        ? *config.schedule_override
                        : recovery::generate_fault_schedule(spec, seed);

  const std::array<net::LinkId, 2> fault_links = {a_r1, r1_b};
  const std::array<Server*, 2> fault_servers = {&source, &sink};

  recovery::FaultScheduleInjector injector(
      sim, result.schedule,
      [&](FaultTargetKind kind, std::uint64_t target) {
        switch (kind) {
          case FaultTargetKind::kLink: {
            const net::LinkId link = fault_links[target % fault_links.size()];
            network.set_link_state(link, false);
            idc.handle_link_failure(link);
            break;
          }
          case FaultTargetKind::kServer:
            engine.handle_server_down(fault_servers[target % fault_servers.size()]);
            if (config.sabotage) {
              // Metrics/trace inconsistency on purpose: a shed event no
              // counter ever saw. The consistency invariant must flag it.
              sim.obs().emit({sim.now(), TraceEventType::kTaskShed, 9999, 0, 0.0, 0.0});
            }
            break;
          case FaultTargetKind::kIdc:
            idc.begin_outage();
            break;
        }
      },
      [&](FaultTargetKind kind, std::uint64_t target) {
        switch (kind) {
          case FaultTargetKind::kLink: {
            const net::LinkId link = fault_links[target % fault_links.size()];
            network.set_link_state(link, true);
            idc.restore_link(link);
            break;
          }
          case FaultTargetKind::kServer:
            engine.handle_server_up(fault_servers[target % fault_servers.size()]);
            break;
          case FaultTargetKind::kIdc:
            idc.end_outage();
            break;
        }
      });

  if (config.service_crash_at > 0.0) {
    sim.schedule_at(config.service_crash_at, [&] {
      TransferSpec recover_tmpl = tmpl;  // recovered tasks run best-effort
      service.crash_and_recover(recover_tmpl, nullptr);
    });
  }

  sim.run();

  // ---- invariants -------------------------------------------------------
  const auto violate = [&](const char* invariant, std::string detail) {
    result.violations.push_back({invariant, std::move(detail)});
  };
  const obs::MetricsSnapshot snap = sim.obs().registry().snapshot();

  std::uint64_t finished = 0;
  std::uint64_t failed = 0;
  for (const auto& [id, t] : audit.transfers()) {
    const std::string tag = "transfer " + std::to_string(id);
    if (t.finished && t.failed) {
      violate("transfer-resolution", tag + " both finished and failed permanently");
    } else if (!t.finished && !t.failed) {
      violate("transfer-resolution", tag + " neither finished nor failed at drain");
    }
    if (t.finished) {
      ++finished;
      if (t.finished_size != t.size) {
        std::ostringstream os;
        os << tag << " delivered " << t.finished_size << " of " << t.size << " bytes";
        violate("byte-conservation", os.str());
      }
    }
    if (t.failed) ++failed;
    if (t.unresolved_abort) {
      violate("unresolved-abort", tag + " aborted with no retry or terminal record");
    }
    if (t.aborts > static_cast<std::uint64_t>(config.max_aborts)) {
      violate("bounded-retries", tag + " recorded " + std::to_string(t.aborts) +
                                     " aborts (budget " +
                                     std::to_string(config.max_aborts) + ")");
    }
  }
  if (finished != engine.stats().completed) {
    violate("trace-metrics", "trace finished=" + std::to_string(finished) +
                                 " vs engine completed=" +
                                 std::to_string(engine.stats().completed));
  }
  if (failed != engine.stats().failed_transfers) {
    violate("trace-metrics", "trace failed=" + std::to_string(failed) +
                                 " vs engine failed=" +
                                 std::to_string(engine.stats().failed_transfers));
  }

  if (idc.live_circuit_count() != 0) {
    violate("orphan-circuits", std::to_string(idc.live_circuit_count()) +
                                   " circuits still live at drain");
  }
  const auto gauge = [&](const char* name) { return snap.value(name); };
  for (const char* name :
       {"gridvc_vc_active_circuits", "gridvc_vc_calendar_bookings",
        "gridvc_gridftp_active_transfers", "gridvc_gridftp_waiting_transfers",
        "gridvc_gridftp_tasks_queued", "gridvc_gridftp_tasks_active"}) {
    if (gauge(name) != 0.0) {
      std::ostringstream os;
      os << name << " = " << gauge(name) << " at drain";
      violate("gauge-drain", os.str());
    }
  }
  if (engine.active_transfers() != 0 || engine.waiting_transfers() != 0) {
    violate("gauge-drain", "engine holds " + std::to_string(engine.active_transfers()) +
                               " active / " + std::to_string(engine.waiting_transfers()) +
                               " waiting transfers at drain");
  }
  if (service.queued_tasks() != 0 || service.active_tasks() != 0) {
    violate("gauge-drain", "service holds " + std::to_string(service.queued_tasks()) +
                               " queued / " + std::to_string(service.active_tasks()) +
                               " active tasks at drain");
  }

  for (const auto& status : service.statuses()) {
    if (status.state == gridftp::TaskState::kQueued ||
        status.state == gridftp::TaskState::kActive) {
      violate("task-resolution",
              "task " + std::to_string(status.id) + " not terminal at drain");
    }
  }

  const auto check_count = [&](TraceEventType type, const char* name,
                               std::uint64_t expected) {
    const std::uint64_t got = audit.count(type);
    if (got != expected) {
      violate("trace-metrics", std::string(name) + " trace count " +
                                   std::to_string(got) + " vs counter " +
                                   std::to_string(expected));
    }
  };

  if (front != nullptr) {
    // Close the long-lived tenant sessions; unfinished work would be
    // adopted, but quiescence below proves there is none.
    for (const std::uint64_t session : front_sessions) {
      front->disconnect(session);
    }
    if (!front->quiescent()) {
      violate("front-drain", "front-end holds " +
                                 std::to_string(front->queued_tickets()) +
                                 " queued / " + std::to_string(front->in_flight()) +
                                 " in-flight tickets at drain");
    }
    if (front->sessions_open() != 0) {
      violate("front-drain", std::to_string(front->sessions_open()) +
                                 " sessions still open after disconnect");
    }
    if (front->isolation_violations() != 0) {
      violate("tenant-isolation",
              std::to_string(front->isolation_violations()) +
                  " backpressure sheds hit an in-quota tenant");
    }
    if (front->starvation_violations() != 0) {
      violate("tenant-starvation",
              std::to_string(front->starvation_violations()) +
                  " tenants waited beyond the DRR service bound");
    }
    const std::uint64_t ticket_resolutions =
        audit.count(TraceEventType::kFrontDispatch) +
        audit.count(TraceEventType::kFrontShed) +
        audit.count(TraceEventType::kFrontCancel);
    if (audit.count(TraceEventType::kFrontSubmit) != ticket_resolutions) {
      violate("front-ticket-resolution",
              "accepted tickets " +
                  std::to_string(audit.count(TraceEventType::kFrontSubmit)) +
                  " vs dispatch+shed+cancel " + std::to_string(ticket_resolutions));
    }
    check_count(TraceEventType::kFrontSessionClosed, "front_session_closed",
                audit.count(TraceEventType::kFrontSessionOpened));
    std::uint64_t accepted = 0, rejected = 0, shed = 0, dispatched = 0;
    for (std::size_t t = 0; t < config.tenants; ++t) {
      const frontend::TenantStats st =
          front->tenant_stats("tenant" + std::to_string(t));
      accepted += st.accepted;
      rejected += st.rejected;
      shed += st.shed;
      dispatched += st.dispatched;
      if (st.queued != 0 || st.in_flight != 0) {
        violate("front-drain", "tenant" + std::to_string(t) + " holds " +
                                   std::to_string(st.queued) + " queued / " +
                                   std::to_string(st.in_flight) +
                                   " in-flight at drain");
      }
    }
    check_count(TraceEventType::kFrontDispatch, "front_dispatch", dispatched);
    check_count(TraceEventType::kFrontShed, "front_shed", shed);
    check_count(TraceEventType::kFrontReject, "front_reject", rejected);
    result.front_accepted = accepted;
    result.front_rejected = rejected;
    result.front_shed = shed;
  }

  check_count(TraceEventType::kTaskShed, "task_shed",
              static_cast<std::uint64_t>(gauge("gridvc_gridftp_tasks_shed")));
  check_count(TraceEventType::kServerDown, "server_down", engine.stats().server_crashes);
  check_count(TraceEventType::kServerUp, "server_up", audit.count(TraceEventType::kServerDown));
  check_count(TraceEventType::kIdcOutageBegin, "idc_outage_begin", idc.stats().outages);
  check_count(TraceEventType::kIdcOutageEnd, "idc_outage_end",
              audit.count(TraceEventType::kIdcOutageBegin));

  // ---- results + digest -------------------------------------------------
  result.transfers_submitted = audit.count(TraceEventType::kTransferSubmitted);
  result.transfers_completed = engine.stats().completed;
  result.transfers_failed = engine.stats().failed_transfers;
  result.aborted_attempts = engine.stats().aborted_attempts;
  result.tasks_shed = service.tasks_shed();
  result.tasks_rejected = service.tasks_rejected();
  result.tasks_recovered = service.tasks_recovered();
  result.server_crashes = engine.stats().server_crashes;
  result.idc_outages = idc.stats().outages;
  result.link_downs = result.schedule.count(recovery::FaultTargetKind::kLink);
  result.outage_rejections = idc.stats().rejected_outage;
  result.trace_events = audit.total();
  result.end_time = sim.now();

  std::ostringstream digest;
  digest << "seed=" << seed << " windows=" << result.schedule.windows.size()
         << " events=" << result.trace_events << " submitted=" << result.transfers_submitted
         << " completed=" << result.transfers_completed
         << " failed=" << result.transfers_failed << " aborts=" << result.aborted_attempts
         << " shed=" << result.tasks_shed << " recovered=" << result.tasks_recovered
         << " crashes=" << result.server_crashes << " outages=" << result.idc_outages
         << " vc=" << result.circuits_granted << "/" << result.outage_rejections
         << " end=" << std::fixed << std::setprecision(6) << result.end_time
         << " violations=" << result.violations.size();
  if (config.tenants > 0) {
    // Extension keeps legacy (tenants == 0) digests byte-identical.
    digest << " tenants=" << config.tenants << " front=" << result.front_accepted
           << "/" << result.front_rejected << "/" << result.front_shed;
  }
  result.digest = digest.str();
  if (!result.violations.empty() && obs::FlightRecorder::armed()) {
    // Post-mortem capture at the moment of failure: the armed path holds
    // the most recent violating replication's window.
    obs::FlightRecorder::instance().dump(
        std::string("chaos-invariant:") + result.violations.front().invariant);
  }
  return result;
}

std::vector<ChaosResult> run_chaos_battery(const ChaosConfig& config,
                                           std::uint64_t base_seed, std::size_t count) {
  GRIDVC_REQUIRE(config.trace_sink == nullptr,
                 "replications cannot share a trace sink");
  GRIDVC_REQUIRE(config.schedule_override == nullptr,
                 "replications generate their own schedules");
  return exec::default_pool().parallel_map<ChaosResult>(count, [&](std::size_t i) {
    return run_chaos(config, base_seed + i);
  });
}

recovery::FaultSchedule shrink_chaos_schedule(const ChaosConfig& config,
                                              std::uint64_t seed) {
  ChaosResult failing = run_chaos(config, seed);
  GRIDVC_REQUIRE(!failing.ok(), "cannot shrink a passing run");
  return recovery::shrink_schedule(
      failing.schedule, [&](const recovery::FaultSchedule& candidate) {
        ChaosConfig replay = config;
        replay.trace_sink = nullptr;
        replay.schedule_override = &candidate;
        return !run_chaos(replay, seed).ok();
      });
}

}  // namespace gridvc::workload
