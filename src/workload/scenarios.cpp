#include "workload/scenarios.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "gridftp/server.hpp"
#include "gridftp/transfer_engine.hpp"
#include "gridftp/transfer_service.hpp"
#include "gridftp/usage_stats.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "recovery/fault_schedule.hpp"
#include "sim/simulator.hpp"
#include "vc/idc.hpp"
#include "workload/testbed.hpp"

namespace gridvc::workload {

namespace {

using gridftp::IoMode;
using gridftp::Server;
using gridftp::ServerConfig;
using gridftp::TransferEngine;
using gridftp::TransferEngineConfig;
using gridftp::TransferSpec;
using gridftp::TransferType;

/// A time-varying aggregate of general-purpose flows on one directed
/// path: a never-completing flow whose cap is resampled periodically
/// around `mean_rate`. Far cheaper than per-flow simulation of mice, and
/// sufficient for the SNMP byte accounting of Tables X-XIII.
class AggregateCrossTraffic {
 public:
  AggregateCrossTraffic(net::Network& network, net::Path path, BitsPerSecond mean_rate,
                        Seconds resample_period, Rng rng)
      : network_(network), mean_rate_(mean_rate), rng_(rng) {
    net::FlowOptions opts;
    opts.cap = sample_rate();
    flow_ = network_.start_flow(std::move(path), static_cast<Bytes>(1) << 62, opts, nullptr);
    tick_ = network_.simulator().schedule_periodic(
        resample_period, resample_period, [this] {
          network_.update_cap(flow_, sample_rate());
          return true;
        });
  }

  ~AggregateCrossTraffic() {
    tick_.cancel();
    network_.abort_flow(flow_);
  }

 private:
  BitsPerSecond sample_rate() {
    // Lognormal with mean mean_rate_ and ~50% coefficient of variation.
    const double sigma = 0.47;
    return mean_rate_ * rng_.lognormal(-sigma * sigma / 2.0, sigma);
  }

  net::Network& network_;
  BitsPerSecond mean_rate_;
  Rng rng_;
  net::FlowId flow_ = 0;
  sim::EventHandle tick_;
};

}  // namespace

NerscOrnlResult run_nersc_ornl_tests(const NerscOrnlConfig& config, std::uint64_t seed) {
  GRIDVC_REQUIRE(config.transfer_count > 0, "no test transfers requested");
  GRIDVC_REQUIRE(!config.launch_hours.empty(), "no launch hours configured");

  Rng root(seed);
  Testbed tb = build_esnet_testbed();
  sim::Simulator sim;
  sim.obs().set_trace_sink(config.trace_sink);
  net::Network network(sim, tb.topo);

  ServerConfig nersc_cfg;
  nersc_cfg.name = "nersc-dtn";
  nersc_cfg.nic_rate = config.nersc_nic;
  Server nersc(nersc_cfg);

  ServerConfig ornl_cfg;
  ornl_cfg.name = "ornl-dtn";
  ornl_cfg.nic_rate = config.ornl_nic;
  Server ornl(ornl_cfg);

  // Background traffic partner (generously provisioned so contention is
  // NERSC-side only).
  ServerConfig anl_cfg;
  anl_cfg.name = "anl-dtn";
  anl_cfg.nic_rate = gbps(40.0);
  Server anl(anl_cfg);

  gridftp::UsageStatsCollector collector;
  TransferEngineConfig engine_cfg;
  engine_cfg.tcp.stream_buffer = 16 * MiB;
  engine_cfg.tcp.loss_probability = 0.01;
  engine_cfg.server_noise_sigma = config.server_noise_sigma;
  TransferEngine engine(network, collector, engine_cfg, root.fork(1));

  const net::Path fwd_path = tb.path(tb.nersc, tb.ornl);
  const net::Path rev_path = tb.path(tb.ornl, tb.nersc);
  const Seconds path_rtt = tb.rtt(tb.nersc, tb.ornl);

  // Monitored backbone interfaces: the first five router->router links
  // past the NERSC provider edge ("SNMP data for 2 out of the 7 routers
  // … were unavailable").
  auto fwd_backbone = tb.backbone_links(tb.nersc, tb.ornl);
  auto rev_backbone = tb.backbone_links(tb.ornl, tb.nersc);
  GRIDVC_REQUIRE(fwd_backbone.size() >= 6 && rev_backbone.size() >= 6,
                 "unexpected testbed path shape");
  std::vector<net::LinkId> fwd_links(fwd_backbone.begin() + 1, fwd_backbone.begin() + 6);
  // The reverse path lists links ORNL->NERSC; take the mirror five and
  // flip their order so index k matches forward router rt(k+1).
  std::vector<net::LinkId> rev_links(rev_backbone.begin() + 1, rev_backbone.begin() + 6);
  std::reverse(rev_links.begin(), rev_links.end());

  std::vector<net::LinkId> monitored = fwd_links;
  monitored.insert(monitored.end(), rev_links.begin(), rev_links.end());
  net::SnmpCollector snmp(network, monitored, config.snmp_bin_seconds);

  // General-purpose cross traffic in both directions.
  Rng cross_rng = root.fork(2);
  AggregateCrossTraffic cross_fwd(network, fwd_path, config.cross_traffic_mean,
                                  config.cross_traffic_resample, cross_rng.fork(1));
  AggregateCrossTraffic cross_rev(network, rev_path, config.cross_traffic_mean,
                                  config.cross_traffic_resample, cross_rng.fork(2));

  // Background transfers keeping the NERSC DTN busy at random times.
  const net::Path bg_path = tb.path(tb.nersc, tb.anl);
  const Seconds bg_rtt = tb.rtt(tb.nersc, tb.anl);
  Rng bg_rng = root.fork(3);
  const Seconds horizon = static_cast<double>(config.days) * kDay;
  // Stack-allocated self-recursion: the simulation runs and drains inside
  // this scope, so the callbacks' references stay valid, and no
  // shared_ptr cycle is created (the old idiom leaked every chain).
  std::function<void()> schedule_background = [&] {
    const Seconds next = sim.now() + bg_rng.exponential(config.background_mean_interarrival);
    if (next >= horizon) return;
    sim.schedule_at(next, [&] {
      TransferSpec spec;
      spec.src = {&nersc, IoMode::kMemory};
      spec.dst = {&anl, IoMode::kMemory};
      spec.path = bg_path;
      spec.rtt = bg_rtt;
      spec.size = static_cast<Bytes>(std::max(
          1.0, bg_rng.exponential(static_cast<double>(config.background_mean_size))));
      spec.streams = 4;
      spec.remote_host = "background";
      engine.submit(spec);
      schedule_background();
    });
  };
  schedule_background();

  // The 145 test transfers: spread over `days` days at the launch hours,
  // heavier slots first (25 slots of 3 + 35 of 2 in the default config).
  NerscOrnlResult result;
  Rng test_rng = root.fork(4);
  const std::size_t slots = config.days * config.launch_hours.size();
  std::size_t remaining = config.transfer_count;
  std::size_t slot_index = 0;
  for (std::size_t day = 0; day < config.days && remaining > 0; ++day) {
    for (int hour : config.launch_hours) {
      if (remaining == 0) break;
      const std::size_t base = config.transfer_count / slots;
      const std::size_t extra = (slot_index < config.transfer_count % slots) ? 1 : 0;
      const std::size_t count = std::min(remaining, std::max<std::size_t>(1, base + extra));
      ++slot_index;
      for (std::size_t k = 0; k < count; ++k) {
        const Seconds when = static_cast<double>(day) * kDay +
                             static_cast<double>(hour) * kHour +
                             static_cast<double>(k) * 600.0;
        const bool retrieve = test_rng.bernoulli(config.retrieve_fraction);
        const Bytes test_size = static_cast<Bytes>(
            static_cast<double>(config.transfer_size) *
            test_rng.uniform(1.0 - config.size_spread, 1.0 + config.size_spread));
        sim.schedule_at(when, [&, retrieve, test_size] {
          TransferSpec spec;
          if (retrieve) {  // NERSC -> ORNL
            spec.src = {&nersc, IoMode::kDiskRead};
            spec.dst = {&ornl, IoMode::kDiskWrite};
            spec.path = fwd_path;
            spec.type = TransferType::kRetrieve;
          } else {  // ORNL -> NERSC
            spec.src = {&ornl, IoMode::kDiskRead};
            spec.dst = {&nersc, IoMode::kDiskWrite};
            spec.path = rev_path;
            spec.type = TransferType::kStore;
          }
          spec.rtt = path_rtt;
          spec.size = test_size;
          spec.streams = config.streams;
          spec.stripes = config.stripes;
          spec.remote_host = "ornl-dtn";
          engine.submit(spec, [&result](const gridftp::TransferRecord& r) {
            result.log.push_back(r);
          });
        });
        --remaining;
      }
    }
  }

  sim.run_until(horizon + kDay);  // margin for the last transfers to drain
  snmp.stop();

  for (std::size_t k = 0; k < fwd_links.size(); ++k) {
    result.router_names.push_back("rt" + std::to_string(k + 1));
    result.forward_series.push_back(snmp.series(fwd_links[k]));
    result.reverse_series.push_back(snmp.series(rev_links[k]));
  }
  gridftp::sort_by_start(result.log);
  result.metrics = sim.obs().registry().snapshot();
  return result;
}

AnlNerscResult run_anl_nersc_tests(const AnlNerscConfig& config, std::uint64_t seed) {
  Rng root(seed);
  Testbed tb = build_esnet_testbed();
  sim::Simulator sim;
  sim.obs().set_trace_sink(config.trace_sink);
  net::Network network(sim, tb.topo);

  ServerConfig nersc_cfg;
  nersc_cfg.name = "nersc-dtn";
  nersc_cfg.nic_rate = config.nersc_nic;
  nersc_cfg.disk_read_rate = config.nersc_disk_read;
  nersc_cfg.disk_write_rate = config.nersc_disk_write;
  Server nersc(nersc_cfg);

  ServerConfig anl_cfg;
  anl_cfg.name = "anl-dtn";
  anl_cfg.nic_rate = config.anl_nic;
  anl_cfg.disk_read_rate = config.anl_disk_read;
  anl_cfg.disk_write_rate = config.anl_disk_write;
  Server anl(anl_cfg);

  // Partner for background transfers; generous so only NERSC contends.
  ServerConfig ornl_cfg;
  ornl_cfg.name = "ornl-dtn";
  ornl_cfg.nic_rate = gbps(40.0);
  Server ornl(ornl_cfg);

  gridftp::UsageStatsCollector collector;
  TransferEngineConfig engine_cfg;
  engine_cfg.tcp.stream_buffer = 16 * MiB;
  engine_cfg.tcp.loss_probability = 0.01;
  engine_cfg.server_noise_sigma = config.server_noise_sigma;
  TransferEngine engine(network, collector, engine_cfg, root.fork(1));

  const net::Path test_path = tb.path(tb.anl, tb.nersc);  // ANL -> NERSC
  const Seconds test_rtt = tb.rtt(tb.anl, tb.nersc);
  const net::Path bg_path = tb.path(tb.nersc, tb.ornl);
  const Seconds bg_rtt = tb.rtt(tb.nersc, tb.ornl);
  const Seconds horizon = static_cast<double>(config.days) * kDay;

  // Slow drift of the NERSC DTN's deliverable capacity (see config).
  Rng drift_rng = root.fork(7);
  if (config.capacity_drift_sigma > 0.0 && config.capacity_drift_period > 0.0) {
    sim.schedule_periodic(config.capacity_drift_period, config.capacity_drift_period,
                          [&, sigma = config.capacity_drift_sigma] {
                            nersc.set_nic_rate(config.nersc_nic *
                                               drift_rng.lognormal(-sigma * sigma / 2.0,
                                                                   sigma));
                            return true;
                          });
  }

  // Background load at the NERSC DTN, with occasional bursts of several
  // simultaneous starts (Fig 7's high-concurrency intervals).
  Rng bg_rng = root.fork(2);
  // Stack-allocated self-recursion; see run_nersc_ornl_scenario for why
  // this must not be a shared_ptr cycle.
  std::function<void()> schedule_background = [&] {
    const Seconds next = sim.now() + bg_rng.exponential(config.background_mean_interarrival);
    if (next >= horizon) return;
    sim.schedule_at(next, [&] {
      int count = 1;
      if (bg_rng.bernoulli(config.background_burst_probability)) {
        count = static_cast<int>(
            bg_rng.uniform_int(2, std::max(2, config.background_burst_max)));
      }
      for (int i = 0; i < count; ++i) {
        TransferSpec spec;
        spec.src = {&nersc, bg_rng.bernoulli(0.5) ? IoMode::kDiskRead : IoMode::kMemory};
        spec.dst = {&ornl, IoMode::kMemory};
        spec.path = bg_path;
        spec.rtt = bg_rtt;
        spec.size = static_cast<Bytes>(std::max(
            1.0, bg_rng.exponential(static_cast<double>(config.background_mean_size))));
        spec.streams = 4;
        spec.remote_host = "background";
        engine.submit(spec);
      }
      schedule_background();
    });
  };
  schedule_background();

  // The 334 tests, uniformly spread over the horizon in a shuffled type
  // order.
  std::vector<AnlTestType> plan;
  plan.insert(plan.end(), config.mem_mem, AnlTestType::kMemMem);
  plan.insert(plan.end(), config.mem_disk, AnlTestType::kMemDisk);
  plan.insert(plan.end(), config.disk_mem, AnlTestType::kDiskMem);
  plan.insert(plan.end(), config.disk_disk, AnlTestType::kDiskDisk);
  GRIDVC_REQUIRE(!plan.empty(), "no ANL-NERSC tests requested");
  Rng plan_rng = root.fork(3);
  for (std::size_t i = plan.size(); i > 1; --i) {  // Fisher-Yates
    const std::size_t j =
        static_cast<std::size_t>(plan_rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(plan[i - 1], plan[j]);
  }

  struct Tagged {
    AnlTestType type;
    gridftp::TransferRecord record;
  };
  auto tagged = std::make_shared<std::vector<Tagged>>();
  const Seconds spacing = horizon / static_cast<double>(plan.size() + 1);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const Seconds when =
        spacing * static_cast<double>(i + 1) + plan_rng.uniform(0.0, spacing * 0.5);
    const AnlTestType type = plan[i];
    sim.schedule_at(when, [&, type, tagged] {
      TransferSpec spec;
      const bool src_disk =
          type == AnlTestType::kDiskMem || type == AnlTestType::kDiskDisk;
      const bool dst_disk =
          type == AnlTestType::kMemDisk || type == AnlTestType::kDiskDisk;
      spec.src = {&anl, src_disk ? IoMode::kDiskRead : IoMode::kMemory};
      spec.dst = {&nersc, dst_disk ? IoMode::kDiskWrite : IoMode::kMemory};
      spec.path = test_path;
      spec.rtt = test_rtt;
      spec.size = config.transfer_size;
      spec.streams = config.streams;
      spec.type = TransferType::kStore;  // file arrives at NERSC
      spec.remote_host = "anl-test";
      engine.submit(spec, [tagged, type](const gridftp::TransferRecord& r) {
        tagged->push_back(Tagged{type, r});
      });
    });
  }

  sim.run_until(horizon + kDay);

  // Assemble the full NERSC-side log (tests + background) and locate each
  // test class inside it.
  AnlNerscResult result;
  result.all_log = collector.take_log();
  gridftp::sort_by_start(result.all_log);

  const auto find_index = [&](const gridftp::TransferRecord& r) -> std::size_t {
    for (std::size_t i = 0; i < result.all_log.size(); ++i) {
      const auto& c = result.all_log[i];
      if (c.start_time == r.start_time && c.size == r.size &&
          c.duration == r.duration && c.remote_host == r.remote_host) {
        return i;
      }
    }
    throw NotFoundError("test transfer missing from the collected log");
  };
  for (const auto& t : *tagged) {
    const std::size_t idx = find_index(t.record);
    switch (t.type) {
      case AnlTestType::kMemMem: result.mem_mem.push_back(idx); break;
      case AnlTestType::kMemDisk: result.mem_disk.push_back(idx); break;
      case AnlTestType::kDiskMem: result.disk_mem.push_back(idx); break;
      case AnlTestType::kDiskDisk: result.disk_disk.push_back(idx); break;
    }
  }
  result.metrics = sim.obs().registry().snapshot();
  return result;
}

ManagedVcResult run_managed_vc(const ManagedVcConfig& config, std::uint64_t seed) {
  GRIDVC_REQUIRE(config.task_count > 0, "no tasks requested");
  GRIDVC_REQUIRE(config.files_per_task > 0, "tasks need at least one file");
  GRIDVC_REQUIRE(config.file_size > 0, "file size must be positive");

  Rng root(seed);
  Testbed tb = build_esnet_testbed();
  sim::Simulator sim;
  sim.obs().set_trace_sink(config.trace_sink);
  net::Network network(sim, tb.topo);

  ServerConfig sc;
  sc.name = "ncar-dtn";
  sc.nic_rate = gbps(5.0);
  Server ncar(sc);
  sc.name = "nics-dtn";
  Server nics(sc);

  gridftp::UsageStatsCollector collector;
  TransferEngineConfig engine_cfg;
  engine_cfg.tcp.stream_buffer = 64 * MiB;
  engine_cfg.server_noise_sigma = 0.15;
  engine_cfg.failure_probability = config.failure_probability;
  TransferEngine engine(network, collector, engine_cfg, root.fork(1));

  gridftp::TransferServiceConfig service_cfg;
  service_cfg.max_active_tasks = 2;
  service_cfg.per_task_concurrency = 2;
  service_cfg.queue_limit = config.queue_limit;
  gridftp::TransferService service(sim, engine, service_cfg);

  vc::IdcConfig idc_cfg;
  idc_cfg.mode = config.immediate_signaling ? vc::SignalingMode::kImmediate
                                            : vc::SignalingMode::kBatchedAutomatic;
  vc::Idc idc(sim, tb.topo, idc_cfg);

  // A standing best-effort hog on the same path makes the circuits worth
  // requesting (and keeps the fair-share allocator busy).
  const net::Path path = tb.path(tb.ncar, tb.nics);
  network.start_flow(path, static_cast<Bytes>(1) << 55, {}, nullptr);

  TransferSpec tmpl;
  tmpl.src = {&ncar, IoMode::kDiskRead};
  tmpl.dst = {&nics, IoMode::kMemory};
  tmpl.path = path;
  tmpl.rtt = tb.rtt(tb.ncar, tb.nics);
  tmpl.streams = config.streams;
  tmpl.remote_host = "nics-dtn";

  ManagedVcResult result;
  const Bytes task_bytes =
      config.file_size * static_cast<Bytes>(config.files_per_task);

  const auto submit_task = [&](const std::string& label, BitsPerSecond guarantee,
                               std::optional<std::uint64_t> circuit_id) {
    const std::vector<Bytes> files(config.files_per_task, config.file_size);
    TransferSpec spec = tmpl;
    spec.guarantee = guarantee;
    return service.submit(label, files, spec,
                          [&result, &idc, circuit_id](const gridftp::TaskStatus& s) {
                            if (s.state == gridftp::TaskState::kSucceeded) {
                              ++result.tasks_completed;
                              result.transfers_completed += s.files_done;
                            }
                            if (circuit_id) idc.release_now(*circuit_id);
                          });
  };

  for (std::size_t k = 0; k < config.task_count; ++k) {
    const Seconds when = static_cast<double>(k) * config.task_interarrival;
    const std::string label = "dataset-" + std::to_string(k + 1);
    sim.schedule_at(when, [&, label] {
      // Rate/duration estimation per §VII: size the circuit to the
      // application's own ceiling, padded for contention and retries.
      const Seconds estimated =
          transfer_time(task_bytes, config.circuit_rate) * 1.5 + 120.0;

      const auto on_active = [&, label](const vc::Circuit& c) {
        const std::uint64_t task = submit_task(label, c.rate_at(sim.now()), c.id);
        // A shaped (malleable) grant steps its rate over time: re-pin the
        // task's guarantee at each profile boundary, dropping to best
        // effort once the profile runs out.
        for (const vc::RateSegment& s : c.profile) {
          if (s.start > sim.now()) {
            sim.schedule_at(s.start, [&service, task, rate = s.rate] {
              service.set_task_guarantee(task, rate);
            });
          }
        }
        if (!c.profile.empty()) {
          sim.schedule_at(c.profile.back().end, [&service, task] {
            service.set_task_guarantee(task, 0.0);
          });
        }
      };
      const auto granted = [&] {
        if (!config.malleable_reservations) {
          return idc.request_immediate(tb.ncar, tb.nics, config.circuit_rate,
                                       estimated, on_active);
        }
        vc::ReservationRequest req;
        req.src = tb.ncar;
        req.dst = tb.nics;
        req.bandwidth = config.circuit_rate;
        req.start_time = sim.now();
        req.end_time = idc.predicted_activation(sim.now(), sim.now()) + estimated;
        req.description = label;
        req.malleable = true;
        return idc.create_reservation(req, on_active);
      }();
      if (granted.accepted()) {
        ++result.circuits_granted;
        return;
      }
      ++result.circuits_rejected;

      // One retry at half rate, flagged is_retry so the blocked demand is
      // counted once in the IDC's blocking stats.
      vc::ReservationRequest retry;
      retry.src = tb.ncar;
      retry.dst = tb.nics;
      retry.bandwidth = config.circuit_rate / 2.0;
      retry.start_time = sim.now();
      retry.end_time = idc.predicted_activation(sim.now(), sim.now()) + estimated;
      retry.description = label + " (retry)";
      retry.is_retry = true;
      retry.malleable = config.malleable_reservations;
      ++result.circuit_retries;
      const auto retried = idc.create_reservation(retry, on_active);
      if (retried.accepted()) {
        ++result.circuits_granted;
      } else {
        // Hybrid reality: circuits are an optimization, not a gate.
        submit_task(label, 0.0, std::nullopt);
      }
    });
  }

  const Seconds horizon =
      static_cast<double>(config.task_count) * config.task_interarrival + 8.0 * kHour;
  sim.run_until(horizon);

  result.end_time = sim.now();
  result.tasks_rejected = service.tasks_rejected();
  result.circuits_shaped = static_cast<std::size_t>(idc.stats().shaped);
  result.blocking_probability = idc.stats().blocking_probability();
  result.metrics = sim.obs().registry().snapshot();
  return result;
}

FaultyWanResult run_faulty_wan(const FaultyWanConfig& config, std::uint64_t seed) {
  GRIDVC_REQUIRE(config.transfer_count > 0, "no transfers requested");
  GRIDVC_REQUIRE(config.transfer_size > 0, "transfer size must be positive");

  Rng root(seed);
  sim::Simulator sim;
  sim.obs().set_trace_sink(config.trace_sink);

  // Two-span WAN: the primary span (via r1) carries the data path and the
  // circuits; the backup span (via r2, higher delay) exists so a failed
  // circuit has somewhere to re-signal to.
  net::Topology topo;
  const auto src = topo.add_node("src-dtn", net::NodeKind::kHost);
  const auto edge_a = topo.add_node("edge-a", net::NodeKind::kRouter);
  const auto r1 = topo.add_node("r1", net::NodeKind::kRouter);
  const auto r2 = topo.add_node("r2", net::NodeKind::kRouter);
  const auto edge_b = topo.add_node("edge-b", net::NodeKind::kRouter);
  const auto dst = topo.add_node("dst-dtn", net::NodeKind::kHost);
  const auto [src_a, a_src] = topo.add_duplex_link(src, edge_a, gbps(10), 0.0005);
  const auto [a_r1, r1_a] = topo.add_duplex_link(edge_a, r1, gbps(10), 0.002);
  const auto [r1_b, b_r1] = topo.add_duplex_link(r1, edge_b, gbps(10), 0.002);
  const auto [a_r2, r2_a] = topo.add_duplex_link(edge_a, r2, gbps(10), 0.008);
  const auto [r2_b, b_r2] = topo.add_duplex_link(r2, edge_b, gbps(10), 0.008);
  const auto [b_dst, dst_b] = topo.add_duplex_link(edge_b, dst, gbps(10), 0.0005);
  (void)a_src; (void)r1_a; (void)b_r1; (void)r2_a; (void)b_r2; (void)dst_b;

  net::Network network(sim, topo);

  ServerConfig sc;
  sc.name = "src-dtn";
  sc.id = 1;
  sc.nic_rate = gbps(10);
  Server source(sc);
  sc.name = "dst-dtn";
  sc.id = 2;
  Server sink(sc);

  gridftp::UsageStatsCollector collector;
  TransferEngineConfig engine_cfg;
  engine_cfg.tcp.stream_buffer = 64 * MiB;
  engine_cfg.server_noise_sigma = 0.1;
  engine_cfg.backoff = gridftp::BackoffPolicy::exponential(5.0, 2.0, 60.0, 0.1);
  engine_cfg.max_aborts = config.max_aborts;
  TransferEngine engine(network, collector, engine_cfg, root.fork(1));

  vc::IdcConfig idc_cfg;
  idc_cfg.mode = vc::SignalingMode::kImmediate;
  vc::Idc idc(sim, topo, idc_cfg);

  const net::Path data_path = {src_a, a_r1, r1_b, b_dst};
  const Seconds rtt = 2.0 * topo.path_delay(data_path);

  FaultyWanResult result;

  // Per-transfer wiring between circuit lifecycle and engine guarantee.
  struct Slot {
    std::uint64_t transfer_id = 0;
    bool submitted = false;
    std::optional<std::uint64_t> circuit_id;
  };
  std::vector<Slot> slots(config.transfer_count);

  const auto submit_transfer = [&](std::size_t k, BitsPerSecond guarantee) {
    Slot& slot = slots[k];
    TransferSpec spec;
    spec.src = {&source, IoMode::kDiskRead};
    spec.dst = {&sink, IoMode::kDiskWrite};
    spec.path = data_path;
    spec.rtt = rtt;
    spec.size = config.transfer_size;
    spec.streams = config.streams;
    spec.remote_host = "dst-dtn";
    spec.guarantee = guarantee;
    slot.submitted = true;
    slot.transfer_id = engine.submit(spec, [&result, &idc, &slot](
                                               const gridftp::TransferRecord& r) {
      if (r.failed) {
        ++result.transfers_failed;
      } else {
        ++result.transfers_completed;
      }
      if (slot.circuit_id) idc.release_now(*slot.circuit_id);
    });
  };

  const Seconds estimated =
      transfer_time(config.transfer_size, config.circuit_rate) * 2.0 + 240.0;
  for (std::size_t k = 0; k < config.transfer_count; ++k) {
    const Seconds when = static_cast<double>(k) * config.transfer_interarrival;
    sim.schedule_at(when, [&, k] {
      // First activation launches the transfer under the guarantee;
      // re-activations (post-failure re-signals) restore it.
      const auto on_active = [&, k](const vc::Circuit& c) {
        Slot& slot = slots[k];
        if (!slot.submitted) {
          submit_transfer(k, c.request.bandwidth);
        } else {
          engine.set_guarantee(slot.transfer_id, c.request.bandwidth);
        }
      };
      // The guarantee is gone *now*: degrade to best-effort while the IDC
      // tries to re-home the circuit.
      const auto on_failure = [&, k](const vc::Circuit&) {
        Slot& slot = slots[k];
        if (slot.submitted) engine.set_guarantee(slot.transfer_id, 0.0);
      };
      const auto granted = idc.request_immediate(src, dst, config.circuit_rate,
                                                 estimated, on_active, nullptr,
                                                 on_failure);
      if (granted.accepted()) {
        ++result.circuits_granted;
        slots[k].circuit_id = granted.circuit_id;
      } else {
        // Circuits are an optimization, not a gate: run best-effort.
        submit_transfer(k, 0.0);
      }
    });
  }

  // The fault process targets the primary span's forward links only, so
  // the backup span is always available for re-signaling.
  net::FaultInjectorConfig fault_cfg;
  fault_cfg.targets = {a_r1, r1_b};
  fault_cfg.mtbf = config.link_mtbf;
  fault_cfg.mttr = config.link_mttr;
  fault_cfg.start_after = config.fault_start_after;
  fault_cfg.horizon = config.fault_horizon;
  net::FaultInjector injector(
      network, fault_cfg, root.fork(2),
      [&idc](net::LinkId link) { idc.handle_link_failure(link); },
      [&idc](net::LinkId link) { idc.restore_link(link); });

  // Optional process-level faults: source-DTN crash windows and IDC
  // control-plane outages, replayed from a pre-generated schedule. The
  // schedule draws from its own exec::stream_rng streams, so enabling
  // either process never perturbs the link fault process above (and
  // with both disabled — the default — legacy seeds replay unchanged).
  std::optional<recovery::FaultScheduleInjector> process_faults;
  if (config.server_mtbf > 0.0 || config.idc_outage_mtbf > 0.0) {
    recovery::FaultScheduleSpec spec;
    spec.server_count = config.server_mtbf > 0.0 ? 1 : 0;
    spec.idc = config.idc_outage_mtbf > 0.0;
    spec.start_after = config.fault_start_after;
    spec.horizon = config.fault_horizon;
    spec.server_mtbf = config.server_mtbf;
    spec.server_mttr = config.server_mttr;
    spec.idc_mtbf = config.idc_outage_mtbf;
    spec.idc_mttr = config.idc_outage_mttr;
    process_faults.emplace(
        sim, recovery::generate_fault_schedule(spec, seed),
        [&engine, &source, &idc](recovery::FaultTargetKind kind, std::uint64_t) {
          if (kind == recovery::FaultTargetKind::kServer) {
            engine.handle_server_down(&source);
          } else {
            idc.begin_outage();
          }
        },
        [&engine, &source, &idc](recovery::FaultTargetKind kind, std::uint64_t) {
          if (kind == recovery::FaultTargetKind::kServer) {
            engine.handle_server_up(&source);
          } else {
            idc.end_outage();
          }
        });
  }

  sim.run();

  result.aborted_attempts = engine.stats().aborted_attempts;
  result.link_failures = injector.stats().failures;
  result.link_repairs = injector.stats().repairs;
  result.circuits_failed = idc.stats().failed;
  result.circuits_resignaled = idc.stats().resignaled;
  result.server_crashes = engine.stats().server_crashes;
  result.idc_outages = idc.stats().outages;
  result.outage_rejections = idc.stats().rejected_outage;
  result.end_time = sim.now();
  result.metrics = sim.obs().registry().snapshot();
  return result;
}

std::vector<NerscOrnlResult> run_nersc_ornl_replications(const NerscOrnlConfig& config,
                                                         std::uint64_t base_seed,
                                                         std::size_t count) {
  GRIDVC_REQUIRE(config.trace_sink == nullptr,
                 "replications cannot share a trace sink");
  return exec::default_pool().parallel_map<NerscOrnlResult>(count, [&](std::size_t i) {
    return run_nersc_ornl_tests(config, base_seed + i);
  });
}

std::vector<AnlNerscResult> run_anl_nersc_replications(const AnlNerscConfig& config,
                                                       std::uint64_t base_seed,
                                                       std::size_t count) {
  GRIDVC_REQUIRE(config.trace_sink == nullptr,
                 "replications cannot share a trace sink");
  return exec::default_pool().parallel_map<AnlNerscResult>(count, [&](std::size_t i) {
    return run_anl_nersc_tests(config, base_seed + i);
  });
}

}  // namespace gridvc::workload
