#include "workload/profiles.hpp"

#include <memory>

namespace gridvc::workload {

namespace {
template <typename T, typename... Args>
DistributionPtr dist(Args&&... args) {
  return std::make_shared<T>(std::forward<Args>(args)...);
}
}  // namespace

SessionTraceProfile ncar_nics_profile() {
  SessionTraceProfile p;
  p.name = "ncar-nics";
  p.server_host = "ncar-dtn";
  p.remote_host = "nics-dtn";
  p.target_transfers = 52454;

  // ~211 sessions at g=1min for 52,454 transfers -> heavy-tailed batch
  // sizes with mean ~250 and max ~19,000+ files.
  p.files_per_batch = dist<TruncatedPareto>(0.44, 2.0, 20000.0);

  // File sizes: mostly model-output files in the tens of MB, plus the
  // [4,5) GiB and [16,17) GiB classes that make up 87% of the top-5%
  // sizes (§VII-A).
  p.file_size_bytes = dist<Mixture>(
      std::vector<double>{0.50, 0.425, 0.040, 0.035},
      std::vector<DistributionPtr>{
          dist<TruncatedLogNormal>(12.0 * static_cast<double>(MiB), 1.8,
                                   static_cast<double>(8 * KiB),
                                   static_cast<double>(GiB)),
          dist<TruncatedLogNormal>(96.0 * static_cast<double>(MiB), 1.0,
                                   static_cast<double>(MiB),
                                   static_cast<double>(2 * GiB)),
          dist<Uniform>(4.0 * static_cast<double>(GiB), 5.0 * static_cast<double>(GiB)),
          dist<Uniform>(16.0 * static_cast<double>(GiB), 17.0 * static_cast<double>(GiB)),
      });

  // Within a batch most files follow back-to-back; a minority of gaps
  // fall in (0, 1 min] and (1, 2 min] so Table III's g sweep bites.
  p.intra_batch_gap = dist<Mixture>(
      std::vector<double>{0.52, 0.4789, 0.0006, 0.0005},
      std::vector<DistributionPtr>{
          dist<Constant>(0.0),
          dist<Uniform>(0.5, 55.0),
          dist<Uniform>(60.0, 120.0),
          dist<Uniform>(120.0, 900.0),
      });
  // ~211 sessions over 3 years -> mean inter-batch idle ~5 days.
  p.inter_batch_idle = dist<Exponential>(4.5 * kDay);
  p.batch_concurrency_mix = {{1, 0.40}, {2, 0.30}, {4, 0.20}, {8, 0.10}};

  // Per-transfer share: calibrated so overall transfer throughput lands
  // near Q3 ~ 682 Mbps, max ~ 4.23 Gbps (Table I).
  p.share_mbps = dist<EmpiricalQuantile>(std::vector<std::pair<double, double>>{
      {0.0, 6.0},
      {0.25, 700.0},
      {0.50, 1050.0},
      {0.75, 1650.0},
      {0.95, 2500.0},
      {0.995, 3900.0},
      {1.0, 4350.0},
  });
  p.straggler_probability = 0.002;
  p.straggler_share_mbps = dist<EmpiricalQuantile>(std::vector<std::pair<double, double>>{
      {0.0, 2e-6}, {0.02, 1e-5}, {0.5, 0.05}, {1.0, 5.0}});

  // NCAR batches mix file classes (model output alongside 4/16 GB
  // restart files), unlike SLAC's homogeneous detector directories.
  p.per_batch_file_class = false;
  p.stream_mix = {{1, 0.15}, {4, 0.30}, {8, 0.55}};
  p.per_stripe_gain = 0.75;
  p.year_profiles = {
      {2009, 0.40, {{1, 0.5}, {3, 0.5}}},
      {2010, 0.35, {{1, 0.25}, {2, 0.75}}},
      {2011, 0.25, {{1, 0.9}, {2, 0.1}}},
  };

  p.rtt = 0.046;  // NCAR-NICS is the short path (§VI-A)
  p.tcp.stream_buffer = 16 * MiB;
  p.tcp.loss_probability = 0.01;  // rare-loss R&E regime
  p.tcp.slow_start_growth = 1.5;
  p.fresh_path_probability = 0.35;
  p.share_cap_mbps = 4350.0;
  p.max_transfer_duration = 44000.0;  // bounds the longest session near 48,420 s
  return p;
}

SessionTraceProfile slac_bnl_profile(double scale) {
  SessionTraceProfile p;
  p.name = "slac-bnl";
  p.server_host = "slac-dtn";
  p.remote_host = "bnl-dtn";
  const double clamped = scale <= 0.0 ? 1.0 : (scale > 1.0 ? 1.0 : scale);
  p.target_transfers = static_cast<std::size_t>(1021999.0 * clamped);

  // ~10,199 sessions at g=1min for ~1.02M transfers -> mean ~90-100
  // files/batch with a lognormal body (the typical script moves a few
  // dozen files) and a heavy tail to ~30,153.
  p.files_per_batch = dist<TruncatedLogNormal>(16.0, 1.7, 1.0, 31000.0);
  p.max_files_per_batch = 30500;

  // Detector-file mix: mostly tens-to-hundreds of MB, tail to 4 GB
  // (Fig 2's x-axis range).
  // Directory classes: many small-output directories; fewer, larger
  // detector-file directories that also hold more files per directory.
  p.file_classes = {
      {0.895,
       dist<TruncatedLogNormal>(11.0 * static_cast<double>(MiB), 1.6,
                                static_cast<double>(4 * KiB), static_cast<double>(GiB)),
       0.55, 0},
      {0.085,
       dist<Uniform>(100.0 * static_cast<double>(MiB), 700.0 * static_cast<double>(MiB)),
       7.0, 30500},
      {0.015, dist<Uniform>(static_cast<double>(GiB), 2.2 * static_cast<double>(GiB)),
       8.0, 6000},
      {0.005,
       dist<Uniform>(2.2 * static_cast<double>(GiB), 4.0 * static_cast<double>(GiB)),
       5.0, 2200},
  };

  p.intra_batch_gap = dist<Mixture>(
      std::vector<double>{0.62, 0.374, 0.004, 0.002},
      std::vector<DistributionPtr>{
          dist<Constant>(0.0),
          dist<Uniform>(0.5, 55.0),
          dist<Uniform>(60.0, 120.0),
          dist<Uniform>(120.0, 600.0),
      });
  // Idle between batches: lognormal with a light left tail -- batches
  // sometimes follow within a minute or two (so Table III's session
  // counts keep falling from g=1 min to g=2 min) but long mega-batch
  // chains are rare.
  p.inter_batch_idle =
      dist<TruncatedLogNormal>(420.0, 1.2, 5.0, 1e6);
  p.batch_concurrency_mix = {{1, 0.35}, {2, 0.35}, {4, 0.20}, {8, 0.10}};

  // Large-file median ~200 Mbps, Q3 ~ 270, peak 2.56 Gbps (Table II).
  p.share_mbps = dist<EmpiricalQuantile>(std::vector<std::pair<double, double>>{
      {0.0, 1.0},
      {0.25, 180.0},
      {0.50, 280.0},
      {0.75, 520.0},
      {0.90, 850.0},
      {0.95, 1200.0},
      {0.999, 1950.0},
      {1.0, 2660.0},
  });
  p.straggler_probability = 0.001;
  p.straggler_share_mbps = dist<EmpiricalQuantile>(std::vector<std::pair<double, double>>{
      {0.0, 1e-5}, {0.02, 1e-4}, {0.5, 0.05}, {1.0, 2.0}});

  p.per_batch_file_class = true;

  // "84.615% … consisted of multiple parallel TCP streams"; the analyzed
  // groups are 1-stream vs 8-stream.
  p.stream_mix = {{1, 0.154}, {8, 0.846}};
  p.stripe_mix = {{1, 1.0}};  // "All transfers used a single stripe"
  p.per_stripe_gain = 0.0;

  p.rtt = 0.080;  // the BDP calculation of §VII-B assumes 80 ms
  p.tcp.stream_buffer = 16 * MiB;
  p.tcp.loss_probability = 0.01;
  p.tcp.slow_start_growth = 1.5;  // delayed-ACK-era ramp
  // Loss-seasoned high-BDP path: a finite ssthresh plus a CUBIC-like
  // linear climb gives 1-stream transfers the long slow rise of Fig 3.
  p.tcp.ssthresh_per_stream = 192 * KiB;
  p.tcp.ca_mss_per_rtt = 10.0;  // CUBIC-era climb
  p.batch_share_sigma = 0.18;
  p.fresh_path_probability = 0.40;
  p.share_cap_mbps = 2600.0;
  p.max_transfer_duration = 90000.0;
  p.year_length = 85.0 * kDay;
  p.year_profiles.clear();
  return p;
}

}  // namespace gridvc::workload
