#include "workload/federation.hpp"

#include <string>

#include "common/error.hpp"
#include "exec/rng_stream.hpp"
#include "net/routing.hpp"

namespace gridvc::workload {

namespace {

// Stream-key salts so arrivals, per-file decisions, and link delays draw
// from independent streams of the same scenario seed.
constexpr std::uint64_t kArrivalSalt = 0xFEDA110CULL;
constexpr std::uint64_t kTransferSalt = 0xFED7AB1EULL;
constexpr std::uint64_t kDelaySalt = 0xFEDDE1A7ULL;

}  // namespace

std::uint32_t FederationScenario::origin_site(std::uint64_t u) const {
  const std::uint64_t host = u % (config.sites * config.hosts_per_site);
  return static_cast<std::uint32_t>(host / config.hosts_per_site);
}

std::uint32_t FederationScenario::origin_host(std::uint64_t u) const {
  const std::uint64_t host = u % (config.sites * config.hosts_per_site);
  return static_cast<std::uint32_t>(host % config.hosts_per_site);
}

Seconds FederationScenario::arrival_time(std::uint64_t u) const {
  Rng rng = exec::stream_rng(seed ^ kArrivalSalt, u);
  return rng.uniform(0.0, config.arrival_horizon);
}

FederationTransfer FederationScenario::transfer_params(std::uint64_t u,
                                                       std::uint32_t k) const {
  Rng rng = exec::stream_rng(seed ^ kTransferSalt,
                             u * 1024 + static_cast<std::uint64_t>(k));
  FederationTransfer t;
  const std::uint32_t src_site = origin_site(u);
  const std::uint32_t src_host = origin_host(u);
  const bool remote = config.sites > 1 && rng.bernoulli(config.remote_fraction);
  if (remote) {
    // Uniform over the other sites.
    const auto pick = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.sites) - 2));
    t.dst_site = pick >= src_site ? pick + 1 : pick;
    t.dst_host = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.hosts_per_site) - 1));
  } else {
    t.dst_site = src_site;
    if (config.hosts_per_site > 1) {
      const auto pick = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(config.hosts_per_site) - 2));
      t.dst_host = pick >= src_host ? pick + 1 : pick;
    } else {
      // Single-host sites cannot transfer to themselves; bounce off the
      // lexicographically next site instead.
      t.dst_site = (src_site + 1) % static_cast<std::uint32_t>(config.sites);
      t.dst_host = 0;
    }
  }
  const double factor = rng.lognormal(0.0, config.file_size_spread);
  t.size = static_cast<Bytes>(static_cast<double>(config.file_size) * factor);
  if (t.size < (1ULL << 20)) t.size = 1ULL << 20;
  t.wants_vc = rng.bernoulli(config.vc_fraction);
  return t;
}

net::Path FederationScenario::route(std::uint64_t u, const FederationTransfer& t) const {
  const std::uint32_t src_site = origin_site(u);
  const std::uint32_t src_host = origin_host(u);
  const FederationSite& a = sites[src_site];
  const FederationSite& b = sites[t.dst_site];
  net::Path path;
  path.push_back(a.host_up[src_host]);
  if (src_site == t.dst_site) {
    path.push_back(a.host_down[t.dst_host]);
    return path;
  }
  path.push_back(a.edge_up);
  const net::Path& wan = site_route[src_site][t.dst_site];
  path.insert(path.end(), wan.begin(), wan.end());
  path.push_back(b.edge_down);
  path.push_back(b.host_down[t.dst_host]);
  return path;
}

FederationScenario build_federation(const FederationConfig& config, std::uint64_t seed) {
  GRIDVC_REQUIRE(config.sites >= 2, "a federation needs at least two sites");
  GRIDVC_REQUIRE(config.hosts_per_site >= 1, "sites need at least one host");
  GRIDVC_REQUIRE(config.interdomain_delay_min > 0.0,
                 "inter-domain delay must be positive (it is the lookahead)");
  GRIDVC_REQUIRE(config.interdomain_delay_max >= config.interdomain_delay_min,
                 "inter-domain delay range is inverted");

  FederationScenario s;
  s.config = config;
  s.seed = seed;

  // Topology: per site, border + edge routers and the host cluster.
  std::uint64_t delay_stream = 0;
  const auto interdomain_delay = [&] {
    Rng rng = exec::stream_rng(seed ^ kDelaySalt, delay_stream++);
    return rng.uniform(config.interdomain_delay_min, config.interdomain_delay_max);
  };
  // Zero-padded site names: domain partitions order domains by name, so
  // lexicographic order must match site order ("site002" < "site010").
  const auto site_name = [](std::size_t i) {
    std::string n = std::to_string(i);
    while (n.size() < 3) n.insert(n.begin(), '0');
    return "site" + n;
  };
  for (std::size_t i = 0; i < config.sites; ++i) {
    const std::string site = site_name(i);
    FederationSite fs;
    fs.border = s.topo.add_node(site + ".bdr", net::NodeKind::kRouter, site);
    fs.edge = s.topo.add_node(site + ".edge", net::NodeKind::kRouter, site);
    const auto [eu, ed] = s.topo.add_duplex_link(fs.edge, fs.border,
                                                 config.backbone_capacity,
                                                 config.backbone_delay);
    fs.edge_up = eu;
    fs.edge_down = ed;
    for (std::size_t h = 0; h < config.hosts_per_site; ++h) {
      const net::NodeId host =
          s.topo.add_node(site + ".h" + std::to_string(h), net::NodeKind::kHost, site);
      const auto [hu, hd] =
          s.topo.add_duplex_link(host, fs.edge, config.access_capacity,
                                 config.access_delay);
      fs.hosts.push_back(host);
      fs.host_up.push_back(hu);
      fs.host_down.push_back(hd);
    }
    s.sites.push_back(std::move(fs));
  }

  // WAN: a border ring, plus cross-chords every chord_stride sites so the
  // domain-hop diameter stays small at 20+ sites.
  for (std::size_t i = 0; i < config.sites; ++i) {
    const std::size_t j = (i + 1) % config.sites;
    s.topo.add_duplex_link(s.sites[i].border, s.sites[j].border,
                           config.interdomain_capacity, interdomain_delay());
  }
  if (config.sites >= 6 && config.chord_stride > 0) {
    for (std::size_t i = 0; i < config.sites; i += config.chord_stride) {
      const std::size_t j = (i + config.sites / 2) % config.sites;
      if (j == i || j == (i + 1) % config.sites ||
          i == (j + 1) % config.sites) {
        continue;
      }
      s.topo.add_duplex_link(s.sites[i].border, s.sites[j].border,
                             config.interdomain_capacity, interdomain_delay());
    }
  }

  // Border-to-border route table (Dijkstra over delay; deterministic
  // tie-breaks). Worlds concatenate these with access stubs per file.
  s.site_route.assign(config.sites, std::vector<net::Path>(config.sites));
  for (std::size_t a = 0; a < config.sites; ++a) {
    for (std::size_t b = 0; b < config.sites; ++b) {
      if (a == b) continue;
      auto p = net::shortest_path(s.topo, s.sites[a].border, s.sites[b].border);
      GRIDVC_REQUIRE(p.has_value(), "federation WAN is disconnected");
      s.site_route[a][b] = std::move(*p);
    }
  }
  return s;
}

}  // namespace gridvc::workload
