#include "workload/synth.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/distributions.hpp"
#include "common/error.hpp"
#include "exec/rng_stream.hpp"
#include "exec/thread_pool.hpp"
#include "net/tcp_model.hpp"

namespace gridvc::workload {

namespace {

int sample_mix(const std::vector<IntMix>& mix, Rng& rng) {
  GRIDVC_REQUIRE(!mix.empty(), "empty integer mixture");
  double total = 0.0;
  for (const auto& m : mix) total += m.weight;
  double u = rng.uniform() * total;
  for (const auto& m : mix) {
    u -= m.weight;
    if (u <= 0.0) return m.value;
  }
  return mix.back().value;
}

// Everything about one transfer that can be decided without knowing when
// the batch starts. Absolute times are assigned in the serial layout pass.
struct PlannedTransfer {
  gridftp::TransferType type = gridftp::TransferType::kRetrieve;
  Bytes size = 0;
  Seconds duration = 0.0;
  Seconds gap = 0.0;  ///< think-time before this file (0 for the lane warm-up)
};

// One batch's worth of sampled content. Batches are the unit of parallel
// synthesis: plan_batch(seed, index) depends only on (profile, seed,
// index) — never on any other batch — so plans can be generated on any
// number of threads in any order and the result is still byte-identical.
struct BatchPlan {
  std::size_t bucket = 0;
  int concurrency = 1;
  int streams = 1;
  int stripes = 1;
  Seconds lead_in = 0.0;  ///< inter-batch idle before the batch starts
  std::vector<PlannedTransfer> transfers;
};

BatchPlan plan_batch(const SessionTraceProfile& profile,
                     const net::TcpModel& seasoned_tcp, const net::TcpModel& fresh_tcp,
                     std::uint64_t seed, std::uint64_t index) {
  // Independent counter-based streams per batch: the draw sequence of one
  // batch can never shift another batch's samples (which is what makes
  // mid-run truncation and parallel planning safe).
  Rng root = exec::stream_rng(seed, index);
  Rng structure = root.fork(1);
  Rng sizes = root.fork(2);
  Rng shares = root.fork(3);
  Rng timing = root.fork(4);
  Rng losses = root.fork(5);

  BatchPlan plan;

  // Pick the year bucket by profile weight.
  const std::size_t year_buckets =
      profile.year_profiles.empty() ? 1 : profile.year_profiles.size();
  if (year_buckets > 1) {
    double total = 0.0;
    for (const auto& yp : profile.year_profiles) total += yp.weight;
    double u = structure.uniform() * total;
    for (std::size_t y = 0; y < year_buckets; ++y) {
      u -= profile.year_profiles[y].weight;
      if (u <= 0.0) {
        plan.bucket = y;
        break;
      }
    }
  }

  // Directory class first (it scales the batch size), then the count.
  const Distribution* class_dist = nullptr;
  double batch_scale = 1.0;
  std::size_t class_max_files = 0;
  if (!profile.file_classes.empty()) {
    double total_weight = 0.0;
    for (const auto& c : profile.file_classes) total_weight += c.weight;
    double u = sizes.uniform() * total_weight;
    const SessionTraceProfile::FileClass* chosen = &profile.file_classes.back();
    for (const auto& c : profile.file_classes) {
      u -= c.weight;
      if (u <= 0.0) {
        chosen = &c;
        break;
      }
    }
    class_dist = chosen->size_bytes.get();
    batch_scale = chosen->batch_scale;
    class_max_files = chosen->max_files;
  }
  std::size_t files = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(profile.files_per_batch->sample(structure) * batch_scale)));
  if (profile.max_files_per_batch > 0) {
    files = std::min(files, profile.max_files_per_batch);
  }
  if (class_max_files > 0) {
    files = std::min(files, class_max_files);
  }
  plan.concurrency = profile.batch_concurrency_mix.empty()
                         ? 1
                         : sample_mix(profile.batch_concurrency_mix, structure);
  plan.streams =
      profile.stream_mix.empty() ? 1 : sample_mix(profile.stream_mix, structure);
  plan.stripes = profile.year_profiles.empty()
                     ? (profile.stripe_mix.empty()
                            ? 1
                            : sample_mix(profile.stripe_mix, structure))
                     : sample_mix(profile.year_profiles[plan.bucket].stripe_mix, structure);

  // Per-batch server-load factor: transfers of one batch see correlated
  // conditions.
  const double sigma_b = profile.batch_share_sigma;
  const double batch_factor =
      sigma_b > 0.0 ? shares.lognormal(-sigma_b * sigma_b / 2.0, sigma_b) : 1.0;
  // Per-batch path state: a fresh path ramps exponentially all the way.
  const net::TcpModel& tcp = (profile.fresh_path_probability > 0.0 &&
                              structure.bernoulli(profile.fresh_path_probability))
                                 ? fresh_tcp
                                 : seasoned_tcp;

  // Optionally pin the whole batch to one file-size class.
  const Distribution* file_dist = class_dist;
  if (file_dist == nullptr) {
    file_dist = profile.file_size_bytes.get();
    if (profile.per_batch_file_class) {
      if (const auto* mixture = dynamic_cast<const Mixture*>(file_dist)) {
        file_dist = mixture->pick_component(sizes).get();
      }
    }
  }

  plan.lead_in = profile.inter_batch_idle->sample(timing);
  plan.transfers.reserve(files);

  for (std::size_t f = 0; f < files; ++f) {
    PlannedTransfer t;
    t.size = static_cast<Bytes>(std::max(1.0, file_dist->sample(sizes)));

    double share_mbps;
    if (profile.straggler_probability > 0.0 &&
        shares.bernoulli(profile.straggler_probability)) {
      share_mbps = profile.straggler_share_mbps->sample(shares);
    } else {
      share_mbps = profile.share_mbps->sample(shares) * batch_factor;
    }
    double share = std::max(mbps(share_mbps), 2.0);  // floor: 2 bits/s
    if (plan.stripes > 1 && profile.per_stripe_gain > 0.0) {
      share *= 1.0 + profile.per_stripe_gain * static_cast<double>(plan.stripes - 1);
    }
    if (profile.share_cap_mbps > 0.0) {
      share = std::min(share, mbps(profile.share_cap_mbps));
    }
    if (profile.max_transfer_duration > 0.0) {
      // Even a stalled transfer eventually finishes (or is retried):
      // floor the share so the duration stays bounded.
      share = std::max(share, static_cast<double>(t.size) * 8.0 /
                                  profile.max_transfer_duration);
    }

    Seconds duration = tcp.transfer_duration(t.size, plan.streams, profile.rtt, share);
    const double loss =
        tcp.loss_factor(t.size, plan.streams, profile.rtt, share, losses);
    duration /= loss;
    if (profile.max_transfer_duration > 0.0) {
      duration = std::min(duration, profile.max_transfer_duration);
    }
    t.duration = std::max(duration, 1e-3);

    if (f >= static_cast<std::size_t>(plan.concurrency)) {
      t.gap = profile.intra_batch_gap->sample(timing);
    }
    t.type = structure.bernoulli(0.7) ? gridftp::TransferType::kRetrieve
                                      : gridftp::TransferType::kStore;
    plan.transfers.push_back(t);
  }
  return plan;
}

}  // namespace

int year_of(const SessionTraceProfile& profile, Seconds t) {
  const int first_year =
      profile.year_profiles.empty() ? 0 : profile.year_profiles.front().year;
  const int offset = static_cast<int>(std::floor(t / profile.year_length));
  return first_year + offset;
}

gridftp::TransferLog synthesize_trace(const SessionTraceProfile& profile,
                                      std::uint64_t seed) {
  GRIDVC_REQUIRE(profile.target_transfers > 0, "profile targets zero transfers");
  GRIDVC_REQUIRE(profile.files_per_batch && profile.intra_batch_gap &&
                     profile.inter_batch_idle && profile.share_mbps,
                 "profile has unset distributions");
  GRIDVC_REQUIRE(profile.file_size_bytes || !profile.file_classes.empty(),
                 "profile needs file sizes (distribution or classes)");
  for (const auto& c : profile.file_classes) {
    GRIDVC_REQUIRE(c.size_bytes != nullptr, "file class without a size distribution");
    GRIDVC_REQUIRE(c.weight >= 0.0 && c.batch_scale > 0.0, "bad file class parameters");
  }

  const net::TcpModel seasoned_tcp(profile.tcp);
  net::TcpConfig fresh_cfg = profile.tcp;
  fresh_cfg.ssthresh_per_stream = 0;  // infinite ssthresh: exponential ramp
  const net::TcpModel fresh_tcp(fresh_cfg);

  // One timeline cursor per year bucket (or a single one) keeps batches
  // of the same endpoint pair non-overlapping across batches, so session
  // grouping recovers exactly the generated batch structure modulo the
  // intra-batch gaps.
  const std::size_t year_buckets =
      profile.year_profiles.empty() ? 1 : profile.year_profiles.size();
  std::vector<Seconds> cursors(year_buckets);
  for (std::size_t y = 0; y < year_buckets; ++y) {
    cursors[y] = static_cast<double>(y) * profile.year_length;
  }

  gridftp::TransferLog log;
  log.reserve(profile.target_transfers);

  // Phase A (parallel): plan batches in chunks of consecutive indices.
  // Phase B (serial, cheap): lay each plan out on the per-bucket timeline
  // in index order. The kept prefix of batch indices is determined purely
  // by cumulative transfer counts, so overshooting a chunk discards plans
  // without changing the output — and the output cannot depend on the
  // thread count or the chunk size.
  exec::ThreadPool& pool = exec::default_pool();
  std::uint64_t next_index = 0;
  std::size_t chunk = 16;
  std::vector<Seconds> lanes;
  bool done = false;
  while (!done) {
    const std::uint64_t base = next_index;
    std::vector<BatchPlan> plans = pool.parallel_map<BatchPlan>(chunk, [&](std::size_t i) {
      return plan_batch(profile, seasoned_tcp, fresh_tcp, seed,
                        base + static_cast<std::uint64_t>(i));
    });
    next_index += chunk;
    chunk = std::min<std::size_t>(chunk * 2, 512);  // bounded overshoot

    for (const BatchPlan& plan : plans) {
      const Seconds batch_start = cursors[plan.bucket] + plan.lead_in;
      lanes.assign(static_cast<std::size_t>(plan.concurrency), batch_start);

      for (std::size_t f = 0;
           f < plan.transfers.size() && log.size() < profile.target_transfers; ++f) {
        const PlannedTransfer& t = plan.transfers[f];
        // Lane with the earliest cursor takes the next file.
        const std::size_t lane = static_cast<std::size_t>(
            std::min_element(lanes.begin(), lanes.end()) - lanes.begin());
        const Seconds start = lanes[lane] + t.gap;

        gridftp::TransferRecord r;
        r.type = t.type;
        r.size = t.size;
        r.start_time = start;
        r.duration = t.duration;
        r.server_host = profile.server_host;
        r.remote_host = profile.remote_host;
        r.streams = plan.streams;
        r.stripes = plan.stripes;
        r.tcp_buffer = profile.tcp.stream_buffer;
        r.block_size = 256 * KiB;
        log.push_back(std::move(r));

        lanes[lane] = start + t.duration;
      }

      cursors[plan.bucket] = *std::max_element(lanes.begin(), lanes.end());
      if (log.size() >= profile.target_transfers) {
        done = true;
        break;
      }
    }
  }

  gridftp::sort_by_start(log);
  return log;
}

}  // namespace gridvc::workload
