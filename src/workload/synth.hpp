// Fast trace synthesis for the large log datasets.
//
// The NCAR–NICS (52 K transfers) and SLAC–BNL (1.02 M transfers) analyses
// consume only the usage-statistics log, so regenerating them does not
// need the event-driven network: the synthesizer lays out batches of
// transfers on a timeline and prices each transfer's duration with the
// same analytic TCP model the full simulator uses
// (net::TcpModel::transfer_duration over a sampled bottleneck share).
// This keeps the million-transfer benches sub-second while remaining
// mechanically consistent with the event-driven path.
//
// Structure produced per batch (one user script invocation):
//   * `files_per_batch` files, on `batch_concurrency` parallel lanes
//     (lanes yield overlapping transfers, hence negative gaps);
//   * intra-batch think-time gaps from the profile's mixture;
//   * a per-batch share factor (server load of that hour) times a
//     per-transfer share sample;
//   * per-batch streams/stripes configuration (scripts pin these flags).
#pragma once

#include "common/rng.hpp"
#include "gridftp/transfer_log.hpp"
#include "workload/profiles.hpp"

namespace gridvc::workload {

/// Synthesizes a transfer log for `profile`. Deterministic in (profile,
/// seed). The result is sorted by start time.
gridftp::TransferLog synthesize_trace(const SessionTraceProfile& profile,
                                      std::uint64_t seed);

/// Calendar year of a timestamp under a profile with year_profiles
/// (year = first_year + floor(t / year_length)); profiles without year
/// structure map everything to year 0's label.
int year_of(const SessionTraceProfile& profile, Seconds t);

}  // namespace gridvc::workload
