// Calibrated workload profiles for the four analyzed datasets.
//
// The paper analyzed proprietary logs; we regenerate statistically
// equivalent ones (see DESIGN.md §2). Each profile bundles the knobs a
// generator needs, with defaults tuned so the synthesized logs match the
// published marginals:
//
//   * NCAR–NICS (2009-2011): 52,454 transfers, ~211 sessions at g = 1 min,
//     right-skewed session sizes (median ~16 GB), transfer throughput
//     Q3 ≈ 682 Mbps / max ≈ 4.23 Gbps, a 16 GB + 4 GB large-transfer class
//     (87% of the top-5% sizes), stripes 1-3 with a server pool that
//     shrank 3 -> 2 -> 1 across the years.
//   * SLAC–BNL (Feb-Apr 2012): ~1.02 M transfers in ~10 K sessions,
//     84.6% multi-stream (8) vs 1-stream, session sizes median ~1.2 GB /
//     mean ~24 GB / max ~12 TB, throughput max 2.56 Gbps, large-file
//     median ~200 Mbps on an 80 ms RTT path.
//
// The NERSC-ORNL and NERSC-ANL *test-transfer* datasets are produced by
// the full event-driven simulator instead (scenarios.hpp) because their
// analyses need SNMP counters and server-concurrency ground truth.
#pragma once

#include <utility>
#include <vector>

#include "common/distributions.hpp"
#include "common/units.hpp"
#include "net/tcp_model.hpp"

namespace gridvc::workload {

/// Mixture weight entry for integer-valued configuration choices.
struct IntMix {
  int value = 1;
  double weight = 1.0;
};

/// Per-year stripe configuration of the NCAR "frost" cluster (§VII-A:
/// "the number of servers was either 1 or 3 [in 2009], … mostly 2 [in
/// 2010], … mostly 1 [in 2011]").
struct YearStripeProfile {
  int year = 2009;
  double weight = 1.0;            ///< fraction of sessions in this year
  std::vector<IntMix> stripe_mix;
};

/// Generic session-trace profile consumed by the TraceSynthesizer.
struct SessionTraceProfile {
  std::string name;
  std::string server_host;
  std::string remote_host;

  /// Stop after this many transfers.
  std::size_t target_transfers = 10000;

  /// Files per batch (a batch is one user script invocation).
  DistributionPtr files_per_batch;
  /// Hard cap on a batch's file count after class scaling (0 = none).
  std::size_t max_files_per_batch = 0;
  /// File size in bytes (used when file_classes is empty).
  DistributionPtr file_size_bytes;
  /// When true and file_size_bytes is a Mixture, one mixture component is
  /// drawn per batch and all of the batch's files come from it (scripts
  /// move directories of same-class files). This is what lets the
  /// session-size *median* sit far below the mean, as the paper's
  /// right-skewed session tables show.
  bool per_batch_file_class = false;

  /// A homogeneous directory class: the script moves files of this size
  /// class, and directories of the class tend to hold batch_scale times
  /// the baseline file count (detector-output directories are both large
  /// *and* numerous — how 12.5% of SLAC sessions can hold 78.4% of all
  /// transfers, Table IV).
  struct FileClass {
    double weight = 1.0;
    DistributionPtr size_bytes;
    double batch_scale = 1.0;
    /// Class-specific cap on files per batch (0 = only the global cap);
    /// big-file directories do not reach the 30k-file extremes that
    /// small-file directories do.
    std::size_t max_files = 0;
  };
  /// When non-empty, overrides file_size_bytes/per_batch_file_class: the
  /// class is drawn per batch and scales the batch's file count.
  std::vector<FileClass> file_classes;
  /// Gap between one file's end and the next submission within a batch
  /// (seconds; the mixture includes mass above 1-2 min so Table III's g
  /// sweep has structure to find).
  DistributionPtr intra_batch_gap;
  /// Idle time between batches (seconds; >> any g considered).
  DistributionPtr inter_batch_idle;
  /// Lanes of concurrent transfers within a batch (>= 2 produces the
  /// negative inter-transfer gaps of §V).
  std::vector<IntMix> batch_concurrency_mix;

  /// Per-transfer bottleneck share in Mbps (server/disk/CPU composite);
  /// the TCP model turns (size, streams, rtt, share) into a duration.
  DistributionPtr share_mbps;
  /// Log-space sigma of the per-batch share factor (conditions of the
  /// hour are correlated within one script run).
  double batch_share_sigma = 0.25;
  /// Probability that a transfer is a pathological straggler, and the
  /// straggler share distribution (Mbps) — the paper's minimum observed
  /// throughput is in the bits-per-second range.
  double straggler_probability = 0.0;
  DistributionPtr straggler_share_mbps;

  std::vector<IntMix> stream_mix;
  /// Used when year_profiles is empty.
  std::vector<IntMix> stripe_mix;
  /// Share multiplier applied per engaged stripe beyond the first
  /// (share *= 1 + per_stripe_gain * (stripes - 1)).
  double per_stripe_gain = 0.0;
  /// Year-dependent stripe behaviour (NCAR); empty for single-period data.
  std::vector<YearStripeProfile> year_profiles;
  /// Simulation-time length of one profile year (seconds).
  Seconds year_length = 365.0 * kDay;

  Seconds rtt = 0.08;
  net::TcpConfig tcp;
  /// Probability a batch runs over a "fresh" path state (infinite
  /// ssthresh: pure exponential Slow Start, so high shares are actually
  /// reachable — the 2.56 Gbps peak of Fig 2). The rest of the batches
  /// use the profile's seasoned `tcp` config (finite ssthresh + linear
  /// congestion avoidance: the slow median climb of Fig 3).
  double fresh_path_probability = 0.0;
  /// Hard clamp on the per-transfer share after all multipliers (Mbps);
  /// <= 0 disables. Models the DTN NIC ceiling.
  double share_cap_mbps = 0.0;
  /// Upper bound on any single transfer's duration (stragglers stall but
  /// eventually finish or get killed); <= 0 disables.
  Seconds max_transfer_duration = 0.0;
};

/// Default NCAR–NICS profile (Tables I, III, IV, VII, VIII, IX).
SessionTraceProfile ncar_nics_profile();

/// Default SLAC–BNL profile (Tables II, III, IV; Figs 2-5). `scale` in
/// (0, 1] shrinks target_transfers for quick runs (1.0 = the full ~1.02 M
/// transfers).
SessionTraceProfile slac_bnl_profile(double scale = 1.0);

}  // namespace gridvc::workload
