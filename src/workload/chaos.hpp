// Deterministic chaos harness: seeded multi-layer fault schedules +
// cross-layer invariant checking + automatic schedule shrinking.
//
// The robustness story of the preceding layers (engine restart markers,
// IDC re-signaling, service journal replay, overload shedding) is only
// credible if the *composition* survives arbitrary interleavings of
// link faults, server crashes, control-plane outages, and a service
// process crash. run_chaos() builds the two-span WAN used by the
// faulty-wan scenario, drives a managed task workload across it under a
// pre-generated recovery::FaultSchedule, and then audits invariants
// that must hold for every seed:
//
//   - byte conservation: every submitted transfer either delivers
//     exactly its size or fails permanently inside the abort budget
//   - no orphan circuits or calendar bookings after drain
//   - no transfer abort left without a retry or terminal record
//   - every gauge (queued/active tasks, active/waiting transfers,
//     active circuits) returns to zero at drain
//   - trace event counts agree with the metrics counters
//
// Because the fault plan is data (not online RNG draws), a failing seed
// is replayable byte-for-byte and shrinkable: shrink_chaos_schedule()
// runs ddmin over the windows until the repro is 1-minimal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_service.hpp"
#include "obs/trace.hpp"
#include "recovery/fault_schedule.hpp"

namespace gridvc::workload {

struct ChaosConfig {
  std::size_t task_count = 8;
  std::size_t files_per_task = 4;
  Bytes file_size = 16 * GiB;
  Seconds task_interarrival = 90.0;
  int streams = 8;
  int max_aborts = 10;  ///< engine per-transfer abort budget
  BitsPerSecond circuit_rate = gbps(4);
  /// Request circuits as malleable (volume-preserving shaped profiles)
  /// instead of fixed-window. Off by default so existing seeds replay
  /// byte-identically; the malleable battery proves digests stay
  /// thread-count-invariant with shaping, defrag, and reroute active.
  bool malleable_reservations = false;

  // Overload guard under test.
  std::size_t queue_limit = 3;  ///< 0 = unbounded (disables shedding)
  gridftp::OverloadPolicy overload_policy = gridftp::OverloadPolicy::kShedOldest;
  Seconds task_deadline = 0.0;  ///< per-task deadline when > 0

  /// When > 0, route every submission through the multi-tenant admission
  /// front-end instead of straight into the service: tenant k of N has
  /// DRR weight k+1 and one long-lived session, task k belongs to tenant
  /// k % N, queue_limit/overload_policy move to the per-tenant queues
  /// (the backend queue is unbounded-but-empty by construction), and the
  /// last tenant gets a one-task queued-bytes quota so rejections are
  /// exercised. Adds the tenant-isolation / no-starvation / ticket-
  /// resolution invariants and extends the digest; 0 keeps the legacy
  /// submission path and its digests byte-identical. Not composable with
  /// service_crash_at (recovery drops the front-end's completion hooks).
  std::size_t tenants = 0;

  // Fault processes (mtbf <= 0 disables a layer).
  Seconds link_mtbf = 400.0;
  Seconds link_mttr = 30.0;
  Seconds server_mtbf = 900.0;
  Seconds server_mttr = 60.0;
  Seconds idc_mtbf = 1200.0;
  Seconds idc_mttr = 45.0;
  Seconds fault_start_after = 10.0;
  Seconds fault_horizon = 3600.0;

  /// When > 0, the transfer service crashes at this time and recovers
  /// from its journal (tasks resume from their progress checkpoints).
  Seconds service_crash_at = 0.0;

  /// Optional tee for the run's trace stream (single runs only).
  obs::TraceSink* trace_sink = nullptr;
  /// Replay this exact schedule instead of generating one from the seed
  /// (used by shrinking). Must outlive the run.
  const recovery::FaultSchedule* schedule_override = nullptr;
  /// Deliberately emit an unaccounted task_shed trace event on every
  /// server-down window. Breaks the trace/metrics consistency invariant
  /// on purpose — proves the harness catches violations and gives the
  /// shrinker something to minimize.
  bool sabotage = false;
};

struct ChaosViolation {
  std::string invariant;  ///< short invariant name, e.g. "byte-conservation"
  std::string detail;
};

struct ChaosResult {
  recovery::FaultSchedule schedule;  ///< the schedule that was replayed
  std::vector<ChaosViolation> violations;

  std::uint64_t transfers_submitted = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t transfers_failed = 0;
  std::uint64_t aborted_attempts = 0;
  std::uint64_t tasks_shed = 0;
  std::uint64_t tasks_rejected = 0;
  std::uint64_t tasks_recovered = 0;
  std::uint64_t server_crashes = 0;
  std::uint64_t idc_outages = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t circuits_granted = 0;
  std::uint64_t outage_rejections = 0;
  /// Front-end accounting; all zero when ChaosConfig::tenants == 0.
  std::uint64_t front_accepted = 0;
  std::uint64_t front_rejected = 0;
  std::uint64_t front_shed = 0;
  std::uint64_t trace_events = 0;
  Seconds end_time = 0.0;

  /// One-line deterministic fingerprint of the run: identical for
  /// identical (config, seed) regardless of host thread count. Batteries
  /// compare digests across --threads to prove replay determinism.
  std::string digest;

  bool ok() const { return violations.empty(); }
};

/// One seeded chaos run: generate (or replay) the fault schedule, drive
/// the workload to drain, check every invariant.
ChaosResult run_chaos(const ChaosConfig& config, std::uint64_t seed);

/// Parallel replication battery over seeds base_seed .. base_seed+count-1.
/// Requires a null trace_sink and no schedule_override.
std::vector<ChaosResult> run_chaos_battery(const ChaosConfig& config,
                                           std::uint64_t base_seed, std::size_t count);

/// ddmin the failing run's schedule to a 1-minimal window set that still
/// violates an invariant. Requires that (config, seed) fails.
recovery::FaultSchedule shrink_chaos_schedule(const ChaosConfig& config,
                                              std::uint64_t seed);

}  // namespace gridvc::workload
