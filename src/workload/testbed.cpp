#include "workload/testbed.hpp"

#include "common/error.hpp"

namespace gridvc::workload {

using net::NodeId;
using net::NodeKind;

net::Path Testbed::path(NodeId src, NodeId dst) const {
  const auto p = net::shortest_path(topo, src, dst);
  if (!p) throw NotFoundError("testbed hosts are not connected");
  return *p;
}

Seconds Testbed::rtt(NodeId src, NodeId dst) const {
  return topo.path_delay(path(src, dst)) + topo.path_delay(path(dst, src));
}

std::vector<net::LinkId> Testbed::backbone_links(NodeId src, NodeId dst) const {
  std::vector<net::LinkId> out;
  for (net::LinkId lid : path(src, dst)) {
    const net::Link& l = topo.link(lid);
    if (topo.node(l.from).kind == NodeKind::kRouter &&
        topo.node(l.to).kind == NodeKind::kRouter) {
      out.push_back(lid);
    }
  }
  return out;
}

Testbed build_esnet_testbed() {
  Testbed tb;
  auto& topo = tb.topo;
  const BitsPerSecond wan = gbps(10.0);

  // DTN hosts.
  tb.ncar = topo.add_node("ncar-dtn", NodeKind::kHost, "ncar");
  tb.nics = topo.add_node("nics-dtn", NodeKind::kHost, "nics");
  tb.slac = topo.add_node("slac-dtn", NodeKind::kHost, "slac");
  tb.bnl = topo.add_node("bnl-dtn", NodeKind::kHost, "bnl");
  tb.nersc = topo.add_node("nersc-dtn", NodeKind::kHost, "nersc");
  tb.ornl = topo.add_node("ornl-dtn", NodeKind::kHost, "ornl");
  tb.anl = topo.add_node("anl-dtn", NodeKind::kHost, "anl");

  // Site edge (provider-edge) routers. §VII-C: "ESnet locates its own
  // (provider-edge) routers within the NERSC and ORNL campuses", so the
  // access links are part of ESnet; we tag the PEs with the site domain
  // to exercise the inter-domain machinery.
  const NodeId pe_ncar = topo.add_node("ncar-pe", NodeKind::kRouter, "ncar");
  const NodeId pe_nics = topo.add_node("nics-pe", NodeKind::kRouter, "nics");
  const NodeId pe_slac = topo.add_node("slac-pe", NodeKind::kRouter, "slac");
  const NodeId pe_bnl = topo.add_node("bnl-pe", NodeKind::kRouter, "bnl");
  const NodeId pe_nersc = topo.add_node("nersc-pe", NodeKind::kRouter, "nersc");
  const NodeId pe_ornl = topo.add_node("ornl-pe", NodeKind::kRouter, "ornl");
  const NodeId pe_anl = topo.add_node("anl-pe", NodeKind::kRouter, "anl");

  // ESnet core, laid out roughly geographically:
  //   snv (Sunnyvale) - den (Denver) - kan (Kansas City) - chi (Chicago)
  //   chi - newy (New York); chi - nash (Nashville)
  const NodeId snv = topo.add_node("es-snv", NodeKind::kRouter, "esnet");
  const NodeId den = topo.add_node("es-den", NodeKind::kRouter, "esnet");
  const NodeId kan = topo.add_node("es-kan", NodeKind::kRouter, "esnet");
  const NodeId chi = topo.add_node("es-chi", NodeKind::kRouter, "esnet");
  const NodeId nash = topo.add_node("es-nash", NodeKind::kRouter, "esnet");
  const NodeId newy = topo.add_node("es-newy", NodeKind::kRouter, "esnet");

  // Host access links (LAN, negligible delay).
  topo.add_duplex_link(tb.ncar, pe_ncar, wan, 0.0001);
  topo.add_duplex_link(tb.nics, pe_nics, wan, 0.0001);
  topo.add_duplex_link(tb.slac, pe_slac, wan, 0.0001);
  topo.add_duplex_link(tb.bnl, pe_bnl, wan, 0.0001);
  topo.add_duplex_link(tb.nersc, pe_nersc, wan, 0.0001);
  topo.add_duplex_link(tb.ornl, pe_ornl, wan, 0.0001);
  topo.add_duplex_link(tb.anl, pe_anl, wan, 0.0001);

  // PE attachment (metro).
  topo.add_duplex_link(pe_nersc, snv, wan, 0.001);
  topo.add_duplex_link(pe_slac, snv, wan, 0.001);
  topo.add_duplex_link(pe_ncar, den, wan, 0.002);
  topo.add_duplex_link(pe_anl, chi, wan, 0.001);
  topo.add_duplex_link(pe_ornl, nash, wan, 0.002);
  topo.add_duplex_link(pe_nics, nash, wan, 0.002);
  topo.add_duplex_link(pe_bnl, newy, wan, 0.001);

  // Core links. One-way delays chosen so SLAC->BNL RTT ~= 80 ms:
  //   slac: 0.0001 + 0.001 + 14 + 6 + 6 + 12 + 0.001 + 0.0001 ~= 39 ms.
  topo.add_duplex_link(snv, den, wan, 0.014);
  topo.add_duplex_link(den, kan, wan, 0.006);
  topo.add_duplex_link(kan, chi, wan, 0.006);
  topo.add_duplex_link(chi, newy, wan, 0.012);
  topo.add_duplex_link(chi, nash, wan, 0.007);

  return tb;
}

}  // namespace gridvc::workload
