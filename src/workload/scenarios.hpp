// Full event-driven scenarios for the test-transfer datasets.
//
// Two of the paper's datasets are *administrator test transfers*, and
// their analyses need data only the event-driven simulator can provide:
//
//   * NERSC–ORNL (Table V, Fig 6, Tables X-XIII): 145 transfers of 32 GB
//     launched at 2 AM / 8 AM daily, with SNMP 30-second byte counters on
//     the five monitored backbone interfaces and light general-purpose
//     cross traffic on the path.
//   * ANL–NERSC (Table VI, Figs 1, 7, 8): 334 test transfers in four
//     types (mem→mem / mem→disk / disk→mem / disk→disk) sharing the NERSC
//     DTN with a stream of background GridFTP transfers, producing the
//     concurrency structure eq. (2) is evaluated on.
//
// Both scenarios are deterministic in (config, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"
#include "net/snmp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gridvc::workload {

// ---------------------------------------------------------------------------
// NERSC–ORNL 32 GB test transfers
// ---------------------------------------------------------------------------

struct NerscOrnlConfig {
  std::size_t transfer_count = 145;
  Bytes transfer_size = 32 * GiB;
  /// Relative half-width of the per-test size jitter (the paper's "32GB"
  /// test files vary slightly; exact-constant sizes would make the
  /// byte-correlation analyses of Tables XI/XII degenerate).
  double size_spread = 0.12;
  int streams = 8;  ///< §VII-C: all 32 GB tests used 8 streams, 1 stripe
  int stripes = 1;
  /// Fraction of RETR (NERSC->ORNL) vs STOR (ORNL->NERSC) operations.
  double retrieve_fraction = 0.5;
  std::size_t days = 30;
  /// Launch hours (the paper's tests all started at 2 AM or 8 AM).
  std::vector<int> launch_hours{2, 8};

  /// DTN ceilings: tuned so throughput lands in Table V's range
  /// (min ~0.76 Gbps, max ~3.6 Gbps, IQR ~0.7 Gbps).
  BitsPerSecond nersc_nic = gbps(3.8);
  BitsPerSecond ornl_nic = gbps(4.2);
  double server_noise_sigma = 0.42;

  /// Background transfers sharing the NERSC DTN (server contention).
  Seconds background_mean_interarrival = 700.0;
  Bytes background_mean_size = 4 * GiB;

  /// Aggregate general-purpose cross traffic per backbone direction:
  /// mean rate and resample period of the time-varying aggregate.
  BitsPerSecond cross_traffic_mean = mbps(180.0);
  Seconds cross_traffic_resample = 300.0;

  Seconds snmp_bin_seconds = 30.0;

  /// Optional structured-trace destination (non-owning; must outlive the
  /// run). Null disables tracing — emission is then one branch.
  obs::TraceSink* trace_sink = nullptr;
};

struct NerscOrnlResult {
  /// The test transfers only (145 records).
  gridftp::TransferLog log;
  /// Monitored router labels rt1..rt5.
  std::vector<std::string> router_names;
  /// Per monitored router: SNMP series of the NERSC->ORNL egress
  /// interface and of the reverse direction.
  std::vector<net::SnmpSeries> forward_series;
  std::vector<net::SnmpSeries> reverse_series;
  /// End-of-run metrics (the scenario's registry dies with its simulator;
  /// this copy survives).
  obs::MetricsSnapshot metrics;
};

NerscOrnlResult run_nersc_ornl_tests(const NerscOrnlConfig& config, std::uint64_t seed);

// ---------------------------------------------------------------------------
// ANL–NERSC four-type test matrix
// ---------------------------------------------------------------------------

struct AnlNerscConfig {
  /// Test counts by type, matching §VI-B: mm 84, md 78, dm 87, dd 85.
  std::size_t mem_mem = 84;
  std::size_t mem_disk = 78;
  std::size_t disk_mem = 87;
  std::size_t disk_disk = 85;
  Bytes transfer_size = 8 * GiB;
  int streams = 8;
  std::size_t days = 10;

  BitsPerSecond nersc_nic = gbps(2.6);
  BitsPerSecond nersc_disk_read = gbps(1.9);
  /// The NERSC disk *write* path is the observed bottleneck (Fig 1).
  BitsPerSecond nersc_disk_write = gbps(1.35);
  BitsPerSecond anl_nic = gbps(2.6);
  BitsPerSecond anl_disk_read = gbps(1.9);
  BitsPerSecond anl_disk_write = gbps(1.5);
  double server_noise_sigma = 0.40;
  /// Slow drift of the NERSC DTN's deliverable capacity: every
  /// `capacity_drift_period` seconds the ceiling is resampled around its
  /// base with this log-sigma. Eq. (2) assumes a constant R, so this
  /// drift is exactly the unexplained variance that caps the paper's
  /// rho at ~0.62.
  double capacity_drift_sigma = 0.22;
  Seconds capacity_drift_period = 3600.0;

  /// Background GridFTP load on the NERSC DTN: mean inter-arrival, mean
  /// size, and the probability an arrival is a burst of several starts
  /// (bursts produce Fig 7's high-concurrency intervals).
  Seconds background_mean_interarrival = 55.0;
  Bytes background_mean_size = 3 * GiB;
  double background_burst_probability = 0.15;
  int background_burst_max = 6;

  /// Optional structured-trace destination (non-owning).
  obs::TraceSink* trace_sink = nullptr;
};

/// Transfer-type labels for the four test classes.
enum class AnlTestType : std::uint8_t { kMemMem, kMemDisk, kDiskMem, kDiskDisk };

struct AnlNerscResult {
  /// Every transfer the NERSC DTN served (tests + background), sorted by
  /// start time — the input the concurrency analysis needs.
  gridftp::TransferLog all_log;
  /// Indices into all_log for each test class.
  std::vector<std::size_t> mem_mem;
  std::vector<std::size_t> mem_disk;
  std::vector<std::size_t> disk_mem;
  std::vector<std::size_t> disk_disk;
  /// End-of-run metrics snapshot.
  obs::MetricsSnapshot metrics;
};

AnlNerscResult run_anl_nersc_tests(const AnlNerscConfig& config, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Managed VC transfer service (all four layers)
// ---------------------------------------------------------------------------

/// The §VII closing loop as a scenario: tasks queue in the
/// TransferService, each task requests a circuit from the IDC sized to
/// its estimated rate/duration, rejected requests retry once at half
/// rate (marked is_retry, so blocking stats count the demand once), and
/// transfers ride the granted guarantee. Exercises every instrumented
/// layer — sim, net, gridftp (engine + service), vc — in one run.
struct ManagedVcConfig {
  std::size_t task_count = 6;
  std::size_t files_per_task = 8;
  Bytes file_size = 2 * GiB;
  Seconds task_interarrival = 900.0;
  int streams = 8;
  /// Circuit rate the application asks for per task.
  BitsPerSecond circuit_rate = gbps(4);
  /// Mid-transfer failure probability (exercises restart-marker retries).
  double failure_probability = 0.05;
  /// kBatchedAutomatic (1-min IDC) when false, kImmediate when true.
  bool immediate_signaling = false;
  /// Bound on the service's waiting queue (0 = unbounded, the historical
  /// default). Submissions past the bound are rejected (kRejectNew).
  std::size_t queue_limit = 0;
  /// Submit circuit requests as malleable (volume-preserving) instead of
  /// fixed-window: the IDC may grant a stepwise rate profile, and the
  /// scenario drives each profile step into the data plane via
  /// TransferService::set_task_guarantee. Off by default so existing
  /// seeds replay byte-identically.
  bool malleable_reservations = false;
  /// Optional structured-trace destination (non-owning).
  obs::TraceSink* trace_sink = nullptr;
};

struct ManagedVcResult {
  std::size_t tasks_completed = 0;
  std::size_t transfers_completed = 0;
  std::size_t circuits_granted = 0;
  std::size_t circuits_rejected = 0;   ///< first rejections (not retries)
  std::size_t circuit_retries = 0;     ///< retry submissions after a rejection
  std::size_t circuits_shaped = 0;     ///< grants that used a malleable profile
  std::uint64_t tasks_rejected = 0;    ///< shed by the overload guard
  Seconds end_time = 0.0;
  double blocking_probability = 0.0;
  obs::MetricsSnapshot metrics;
};

ManagedVcResult run_managed_vc(const ManagedVcConfig& config, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Faulty WAN: circuits and transfers riding a flapping backbone
// ---------------------------------------------------------------------------

/// Failure-semantics closing loop: bulk transfers cross a two-span WAN
/// whose primary span flaps under an MTBF/MTTR fault process. Each
/// transfer requests an immediate circuit; when the primary span dies the
/// data flows abort (restart-marker retries), active circuits fail and
/// re-signal onto the backup span, and transfers degrade to best-effort
/// until their circuit is re-homed. Deterministic in (config, seed).
struct FaultyWanConfig {
  std::size_t transfer_count = 8;
  Bytes transfer_size = 32 * GiB;
  int streams = 8;
  Seconds transfer_interarrival = 120.0;
  /// Circuit rate each transfer requests.
  BitsPerSecond circuit_rate = gbps(6);
  /// Fault process on the primary span's forward links. mtbf <= 0
  /// disables injection (the scenario then runs fault-free).
  Seconds link_mtbf = 120.0;
  Seconds link_mttr = 20.0;
  Seconds fault_start_after = 5.0;
  /// No new failures at or after this time (repairs always run), so the
  /// event queue drains once the workload finishes.
  Seconds fault_horizon = 1800.0;
  /// Link-failure aborts before a transfer is declared permanently
  /// failed (TransferEngineConfig::max_aborts).
  int max_aborts = 8;
  /// Process-level fault processes, disabled by default so existing
  /// seeds replay byte-identically. server_mtbf > 0 crashes the source
  /// DTN (in-flight attempts abort; transfers park and resume from
  /// their restart markers on repair); idc_outage_mtbf > 0 adds
  /// control-plane outage windows (reservations fail fast, re-signals
  /// back off through the circuit breaker). Both draw from dedicated
  /// recovery::generate_fault_schedule streams, so enabling one never
  /// shifts the link-fault process.
  Seconds server_mtbf = 0.0;
  Seconds server_mttr = 60.0;
  Seconds idc_outage_mtbf = 0.0;
  Seconds idc_outage_mttr = 30.0;
  /// Optional structured-trace destination (non-owning).
  obs::TraceSink* trace_sink = nullptr;
};

struct FaultyWanResult {
  std::size_t transfers_completed = 0;
  std::size_t transfers_failed = 0;    ///< gave up after max_aborts
  std::uint64_t aborted_attempts = 0;  ///< attempts killed by an outage
  std::uint64_t link_failures = 0;
  std::uint64_t link_repairs = 0;
  std::size_t circuits_granted = 0;
  std::uint64_t circuits_failed = 0;      ///< active circuits that lost their path
  std::uint64_t circuits_resignaled = 0;  ///< re-homed onto the backup span
  std::uint64_t server_crashes = 0;       ///< source-DTN crash windows replayed
  std::uint64_t idc_outages = 0;          ///< control-plane outage windows
  std::uint64_t outage_rejections = 0;    ///< fail-fast rejections during outages
  Seconds end_time = 0.0;
  obs::MetricsSnapshot metrics;
};

FaultyWanResult run_faulty_wan(const FaultyWanConfig& config, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Replication batteries
// ---------------------------------------------------------------------------

/// Run `count` independent replications of the NERSC–ORNL scenario with
/// seeds base_seed, base_seed + 1, … on the execution pool. Replication i
/// is self-contained (its own simulator, network, and metrics registry),
/// so results arrive in seed order and are byte-identical at any thread
/// count. Requires config.trace_sink == nullptr — a shared sink would be
/// written from several replications at once.
std::vector<NerscOrnlResult> run_nersc_ornl_replications(const NerscOrnlConfig& config,
                                                         std::uint64_t base_seed,
                                                         std::size_t count);

/// Same battery for the ANL–NERSC four-type test matrix.
std::vector<AnlNerscResult> run_anl_nersc_replications(const AnlNerscConfig& config,
                                                       std::uint64_t base_seed,
                                                       std::size_t count);

}  // namespace gridvc::workload
