// Multi-domain federation scenario: the 20+ site topology and the
// million-user workload the sharded simulation runs.
//
// Every site is one administrative domain (tag "siteN") modeled after
// the paper's DOE sites: a cluster of DTN hosts behind an edge router,
// the edge router behind a border router, borders stitched into a WAN
// ring with cross-chords. Inter-site link delays are drawn per link from
// the seed, so the conservative lookahead (min inter-domain delay) is a
// property of the generated topology, not a constant.
//
// The workload is procedural: user u's origin host is u mod hosts, the
// arrival time and every per-file parameter come from counter-based
// stream RNGs keyed on (seed, user, file) — nothing is pre-materialized
// per transfer, so a 10M-transfer plan costs no memory and every world
// regenerates exactly the same plan regardless of shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace gridvc::workload {

struct FederationConfig {
  std::size_t sites = 21;          ///< administrative domains (>= 2)
  std::size_t hosts_per_site = 4;  ///< DTN hosts behind each edge router
  std::uint64_t users = 2000;      ///< virtual user sessions
  std::uint32_t transfers_per_user = 2;
  Bytes file_size = 256ULL << 20;  ///< median file size (256 MiB)
  double file_size_spread = 0.35;  ///< lognormal sigma of sizes
  Seconds arrival_horizon = 600.0; ///< users arrive uniformly in [0, horizon)
  Seconds think_time = 5.0;        ///< pause between a user's files
  double remote_fraction = 0.4;    ///< files bound for another site
  double vc_fraction = 0.25;       ///< files that request a VC chain first
  int streams = 4;                 ///< parallel TCP streams per transfer
  int host_concurrency = 2;        ///< simultaneous transfers per host
  BitsPerSecond host_nic = 10e9;
  BitsPerSecond relay_nic = 100e9;       ///< border relay DTN cluster
  int relay_pool = 8;
  BitsPerSecond access_capacity = 10e9;  ///< host <-> edge
  BitsPerSecond backbone_capacity = 100e9;  ///< edge <-> border
  BitsPerSecond interdomain_capacity = 40e9;
  Seconds access_delay = 0.0005;
  Seconds backbone_delay = 0.002;
  Seconds interdomain_delay_min = 0.010;  ///< == the lookahead floor
  Seconds interdomain_delay_max = 0.030;
  std::size_t chord_stride = 4;    ///< every Nth border gets a cross-chord
  BitsPerSecond chain_rate = 2e9;  ///< guarantee a chain books per segment
  Seconds chain_window = 120.0;    ///< circuit hold booked per segment
};

struct FederationSite {
  net::NodeId border = 0;
  net::NodeId edge = 0;
  std::vector<net::NodeId> hosts;
  std::vector<net::LinkId> host_up;    ///< host -> edge, by host ordinal
  std::vector<net::LinkId> host_down;  ///< edge -> host
  net::LinkId edge_up = 0;             ///< edge -> border
  net::LinkId edge_down = 0;           ///< border -> edge
};

/// One per-file decision, regenerated on demand (never stored).
struct FederationTransfer {
  std::uint32_t dst_site = 0;
  std::uint32_t dst_host = 0;  ///< ordinal within dst_site
  Bytes size = 0;
  bool wants_vc = false;
};

struct FederationScenario {
  FederationConfig config;
  std::uint64_t seed = 0;
  net::Topology topo;
  std::vector<FederationSite> sites;
  /// Border-to-border global link path between every ordered site pair
  /// (empty path on the diagonal). Shared read-only by all worlds.
  std::vector<std::vector<net::Path>> site_route;

  std::uint64_t total_transfers() const {
    return config.users * config.transfers_per_user;
  }

  /// Origin of user `u`: (site, host ordinal). Pure function.
  std::uint32_t origin_site(std::uint64_t u) const;
  std::uint32_t origin_host(std::uint64_t u) const;

  /// Arrival time of user `u`: uniform in [0, horizon). Pure function of
  /// (seed, u).
  Seconds arrival_time(std::uint64_t u) const;

  /// Parameters of user `u`'s file number `k`. Pure function of
  /// (seed, u, k); guaranteed dst != origin host.
  FederationTransfer transfer_params(std::uint64_t u, std::uint32_t k) const;

  /// Full host-to-host global path for a (user, file) pair.
  net::Path route(std::uint64_t u, const FederationTransfer& t) const;
};

/// Build the topology and route table. Deterministic in (config, seed).
FederationScenario build_federation(const FederationConfig& config, std::uint64_t seed);

}  // namespace gridvc::workload
