// The simulated multi-site testbed.
//
// A stand-in for the real-world infrastructure of the paper's study:
// seven DOE/NSF site DTNs (NERSC, SLAC, NCAR, NICS, ORNL, ANL, BNL)
// attached through site edge routers to an ESnet-like 10 Gbps backbone.
// Link delays are set so the four studied paths have round-trip times
// consistent with the paper (SLAC–BNL ≈ 80 ms — the BDP calculation of
// §VII-B — NCAR–NICS notably shorter, NERSC–ORNL in between), and the
// NERSC–ORNL path crosses five core routers whose egress interfaces are
// the monitored "rt1..rt5" of Tables X–XIII.
#pragma once

#include <string>
#include <vector>

#include "net/routing.hpp"
#include "net/topology.hpp"

namespace gridvc::workload {

struct Testbed {
  net::Topology topo;

  // Host (DTN) node ids.
  net::NodeId ncar = 0, nics = 0, slac = 0, bnl = 0, nersc = 0, ornl = 0, anl = 0;

  /// Least-delay path between two hosts. Throws NotFoundError when
  /// disconnected (never, in the built testbed).
  net::Path path(net::NodeId src, net::NodeId dst) const;

  /// Round-trip time of the least-delay path (both directions).
  Seconds rtt(net::NodeId src, net::NodeId dst) const;

  /// The router->router (backbone egress-interface) links along the
  /// src->dst path — the interfaces an SNMP study would poll.
  std::vector<net::LinkId> backbone_links(net::NodeId src, net::NodeId dst) const;
};

/// Build the seven-site, six-core-router ESnet-like testbed. All links
/// are 10 Gbps duplex.
Testbed build_esnet_testbed();

}  // namespace gridvc::workload
