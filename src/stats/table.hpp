// ASCII table renderer. Every bench binary prints its exhibit through this
// class so the output format is uniform and greppable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gridvc::stats {

/// Simple right-aligned text table with a header row and optional title.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Set the column headers. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Append a row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Render the table (title, rule, header, rule, rows, rule).
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridvc::stats
