// Correlation analysis used by §VII-C/D of the paper: Pearson coefficients
// between GridFTP byte counts and SNMP byte counts (Tables XI/XII) and
// between predicted and actual throughput (Fig 8), including the paper's
// per-quartile breakdown.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gridvc::stats {

/// Pearson product-moment correlation of paired samples. Requires both
/// spans non-empty and of equal size. Returns 0 when either variable has
/// zero variance (a degenerate but well-defined convention for reports).
double pearson(std::span<const double> x, std::span<const double> y);

/// Result of a per-quartile correlation analysis.
struct QuartileCorrelation {
  /// pearson(x, y) restricted to observations whose `key` falls in each
  /// key-quartile (1st..4th), in order.
  std::vector<double> by_quartile;
  /// Correlation over all observations.
  double overall = 0.0;
  /// Number of observations in each quartile bucket.
  std::vector<std::size_t> quartile_counts;
};

/// Split observations into four buckets by the quartiles of `key`
/// (boundaries at Q1/Q2/Q3 of key; ties go to the lower bucket), then
/// correlate x against y inside each bucket. This mirrors the paper's
/// "divided into four quartiles based on throughput" methodology.
/// Requires x, y, key of equal, non-zero size.
QuartileCorrelation correlate_by_quartile(std::span<const double> x,
                                          std::span<const double> y,
                                          std::span<const double> key);

}  // namespace gridvc::stats
