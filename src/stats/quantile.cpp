#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "exec/parallel_sort.hpp"

namespace gridvc::stats {

double quantile_sorted(std::span<const double> sorted, double p) {
  GRIDVC_REQUIRE(!sorted.empty(), "quantile of empty data");
  GRIDVC_REQUIRE(p >= 0.0 && p <= 1.0, "quantile probability out of range");
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  // R type-7: h = (n - 1) p; interpolate between floor(h) and floor(h)+1.
  const double h = static_cast<double>(n - 1) * p;
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> values, double p) {
  std::vector<double> copy(values.begin(), values.end());
  // Parallel for the million-sample throughput vectors; result is
  // identical to a serial sort at any thread count (doubles compare
  // totally here, so stability is moot).
  exec::parallel_sort(copy);
  return quantile_sorted(copy, p);
}

std::vector<double> quantiles(std::span<const double> values, std::span<const double> probs) {
  std::vector<double> copy(values.begin(), values.end());
  exec::parallel_sort(copy);
  std::vector<double> out;
  out.reserve(probs.size());
  for (double p : probs) out.push_back(quantile_sorted(copy, p));
  return out;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

}  // namespace gridvc::stats
