#include "stats/table.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gridvc::stats {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  GRIDVC_REQUIRE(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  GRIDVC_REQUIRE(!header_.empty(), "add_row before set_header");
  GRIDVC_REQUIRE(row.size() <= header_.size(), "row wider than header");
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::size_t total = header_.empty() ? 0 : (3 * header_.size() + 1);
  for (std::size_t w : widths) total += w;
  const std::string rule(total, '-');

  const auto render_row = [&](const std::vector<std::string>& cells, bool left_align) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : header_[c];
      const std::size_t pad = widths[c] - cell.size();
      line += " ";
      if (left_align) {
        line += cell + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + cell;
      }
      line += " |";
    }
    return line + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule + "\n";
  out += render_row(header_, /*left_align=*/true);
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row, /*left_align=*/false);
  out += rule + "\n";
  return out;
}

}  // namespace gridvc::stats
