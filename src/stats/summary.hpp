// Five-number summaries with mean/SD/CV — the row format of nearly every
// table in the paper (Tables I, II, V–IX, XIII).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace gridvc::stats {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q1 = 0.0;      ///< first quartile (type-7)
  double median = 0.0;
  double mean = 0.0;
  double q3 = 0.0;      ///< third quartile (type-7)
  double max = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)

  /// Inter-quartile range q3 - q1 (the paper quotes e.g. "IQR was 695 Mbps").
  double iqr() const { return q3 - q1; }

  /// Coefficient of variation stddev/mean (Table VI reports CV%); 0 when
  /// the mean is 0.
  double cv() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Compute a Summary. Requires non-empty input. For count == 1 the standard
/// deviation is 0.
Summary summarize(std::span<const double> values);

/// Render as "Min / 1st Qu. / Median / Mean / 3rd Qu. / Max" single-line
/// string with `decimals` digits (diagnostic aid; tables use stats::Table).
std::string to_string(const Summary& s, int decimals = 1);

}  // namespace gridvc::stats
