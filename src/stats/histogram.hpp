// Fixed-width histograms, used for reporting throughput and duration
// distributions in examples and ablation benches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gridvc::stats {

/// A fixed-width histogram over [lo, hi); out-of-range samples are clamped
/// into the first/last bucket so mass is never silently lost.
class Histogram {
 public:
  /// Requires lo < hi and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;

  /// Fraction of samples strictly below `value` (linear interpolation
  /// inside the containing bucket).
  double cdf(double value) const;

  /// ASCII rendering: one `#`-bar line per bucket, normalized to `width`.
  std::string render(int width = 50) const;

 private:
  double lo_, hi_, step_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace gridvc::stats
