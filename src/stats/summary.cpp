#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/quantile.hpp"

namespace gridvc::stats {

Summary summarize(std::span<const double> values) {
  GRIDVC_REQUIRE(!values.empty(), "summarize of empty data");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q3 = quantile_sorted(sorted, 0.75);

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);

  if (s.count > 1) {
    double ss = 0.0;
    for (double v : sorted) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

std::string to_string(const Summary& s, int decimals) {
  return "n=" + std::to_string(s.count) + " min=" + format_fixed(s.min, decimals) +
         " q1=" + format_fixed(s.q1, decimals) + " med=" + format_fixed(s.median, decimals) +
         " mean=" + format_fixed(s.mean, decimals) + " q3=" + format_fixed(s.q3, decimals) +
         " max=" + format_fixed(s.max, decimals) + " sd=" + format_fixed(s.stddev, decimals);
}

}  // namespace gridvc::stats
