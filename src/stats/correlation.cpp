#include "stats/correlation.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/quantile.hpp"

namespace gridvc::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  GRIDVC_REQUIRE(!x.empty(), "pearson of empty data");
  GRIDVC_REQUIRE(x.size() == y.size(), "pearson size mismatch");
  const double n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

QuartileCorrelation correlate_by_quartile(std::span<const double> x,
                                          std::span<const double> y,
                                          std::span<const double> key) {
  GRIDVC_REQUIRE(!x.empty(), "correlate_by_quartile of empty data");
  GRIDVC_REQUIRE(x.size() == y.size() && x.size() == key.size(),
                 "correlate_by_quartile size mismatch");
  const double b1 = quantile(key, 0.25);
  const double b2 = quantile(key, 0.50);
  const double b3 = quantile(key, 0.75);

  std::vector<std::vector<double>> xs(4), ys(4);
  for (std::size_t i = 0; i < key.size(); ++i) {
    std::size_t bucket;
    if (key[i] <= b1) {
      bucket = 0;
    } else if (key[i] <= b2) {
      bucket = 1;
    } else if (key[i] <= b3) {
      bucket = 2;
    } else {
      bucket = 3;
    }
    xs[bucket].push_back(x[i]);
    ys[bucket].push_back(y[i]);
  }

  QuartileCorrelation out;
  out.overall = pearson(x, y);
  for (std::size_t q = 0; q < 4; ++q) {
    out.quartile_counts.push_back(xs[q].size());
    // A quartile needs >= 2 points for a meaningful coefficient.
    out.by_quartile.push_back(xs[q].size() >= 2 ? pearson(xs[q], ys[q]) : 0.0);
  }
  return out;
}

}  // namespace gridvc::stats
