#include "stats/binning.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "stats/quantile.hpp"

namespace gridvc::stats {

using gridvc::Bytes;
using gridvc::GiB;
using gridvc::MiB;

SizeBinner SizeBinner::paper_scheme() {
  SizeBinner b;
  for (Bytes edge = 0; edge < GiB; edge += MiB) b.edges_.push_back(edge);
  for (Bytes edge = GiB; edge < 4 * GiB; edge += 100 * MiB) b.edges_.push_back(edge);
  b.edges_.push_back(4 * GiB);  // final (short) bin closes exactly at 4 GiB
  b.bins_.resize(b.edges_.size() - 1);
  for (std::size_t i = 0; i + 1 < b.edges_.size(); ++i) {
    b.bins_[i].lo = b.edges_[i];
    b.bins_[i].hi = b.edges_[i + 1];
  }
  return b;
}

SizeBinner SizeBinner::fixed(Bytes width, Bytes limit) {
  GRIDVC_REQUIRE(width > 0, "bin width must be positive");
  GRIDVC_REQUIRE(limit > width, "bin limit must exceed width");
  SizeBinner b;
  for (Bytes edge = 0; edge <= limit; edge += width) b.edges_.push_back(edge);
  if (b.edges_.back() < limit) b.edges_.push_back(limit);
  b.bins_.resize(b.edges_.size() - 1);
  for (std::size_t i = 0; i + 1 < b.edges_.size(); ++i) {
    b.bins_[i].lo = b.edges_[i];
    b.bins_[i].hi = b.edges_[i + 1];
  }
  return b;
}

std::optional<std::size_t> SizeBinner::bin_index(Bytes size) const {
  if (edges_.empty() || size < edges_.front() || size >= edges_.back()) return std::nullopt;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), size);
  return static_cast<std::size_t>(it - edges_.begin()) - 1;
}

void SizeBinner::add(Bytes size, double value) {
  const auto idx = bin_index(size);
  if (!idx) {
    ++dropped_;
    return;
  }
  bins_[*idx].values.push_back(value);
}

std::vector<BinnedMedianPoint> binned_medians(const SizeBinner& binner, std::size_t min_count) {
  std::vector<BinnedMedianPoint> out;
  for (const auto& bin : binner.bins()) {
    if (bin.values.size() < std::max<std::size_t>(min_count, 1)) continue;
    BinnedMedianPoint p;
    p.size_mb = bin.center_bytes() / static_cast<double>(MiB);
    p.median = median(bin.values);
    p.count = bin.values.size();
    out.push_back(p);
  }
  return out;
}

}  // namespace gridvc::stats
