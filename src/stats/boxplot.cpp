#include "stats/boxplot.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "stats/quantile.hpp"

namespace gridvc::stats {

BoxStats box_stats(std::span<const double> values) {
  GRIDVC_REQUIRE(!values.empty(), "box_stats of empty data");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  BoxStats b;
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.50);
  b.q3 = quantile_sorted(sorted, 0.75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;

  b.whisker_lo = sorted.back();
  b.whisker_hi = sorted.front();
  for (double v : sorted) {
    if (v >= lo_fence) {
      b.whisker_lo = v;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  for (double v : sorted) {
    if (v < lo_fence || v > hi_fence) b.outliers.push_back(v);
  }
  return b;
}

std::string render_boxplots(std::span<const BoxGroup> groups, int width) {
  if (groups.empty()) return "";
  double lo = groups[0].stats.whisker_lo, hi = groups[0].stats.whisker_hi;
  std::size_t label_width = 0;
  for (const auto& g : groups) {
    lo = std::min(lo, g.stats.whisker_lo);
    hi = std::max(hi, g.stats.whisker_hi);
    for (double o : g.stats.outliers) {
      lo = std::min(lo, o);
      hi = std::max(hi, o);
    }
    label_width = std::max(label_width, g.label.size());
  }
  if (hi <= lo) hi = lo + 1.0;

  const auto col = [&](double v) {
    const double f = (v - lo) / (hi - lo);
    return static_cast<int>(std::lround(f * (width - 1)));
  };

  std::string out;
  for (const auto& g : groups) {
    std::string line(static_cast<std::size_t>(width), ' ');
    const auto& s = g.stats;
    for (int c = col(s.whisker_lo); c <= col(s.whisker_hi); ++c) line[c] = '-';
    for (int c = col(s.q1); c <= col(s.q3); ++c) line[c] = '=';
    line[col(s.whisker_lo)] = '|';
    line[col(s.whisker_hi)] = '|';
    line[col(s.q1)] = '[';
    line[col(s.q3)] = ']';
    line[col(s.median)] = 'M';
    for (double o : s.outliers) line[col(o)] = 'o';

    std::string label = g.label;
    label.resize(label_width, ' ');
    out += label + " " + line + "\n";
  }
  out += std::string(label_width + 1, ' ') + gridvc::format_fixed(lo, 0) +
         std::string(std::max(1, width - 12), ' ') + gridvc::format_fixed(hi, 0) + "\n";
  return out;
}

}  // namespace gridvc::stats
