// Quantile estimation.
//
// Uses the R type-7 estimator (linear interpolation of order statistics),
// the default of R's quantile() — the tool the paper's five-number
// summaries were produced with — so our reproduced tables use the same
// convention.
#pragma once

#include <span>
#include <vector>

namespace gridvc::stats {

/// Quantile of `sorted` (ascending) at probability p in [0, 1], type-7.
/// Requires a non-empty, sorted input.
double quantile_sorted(std::span<const double> sorted, double p);

/// Quantile of unsorted data (copies and sorts). Requires non-empty input.
double quantile(std::span<const double> values, double p);

/// All requested quantiles in one pass over a single sorted copy.
std::vector<double> quantiles(std::span<const double> values, std::span<const double> probs);

/// Convenience: median.
double median(std::span<const double> values);

}  // namespace gridvc::stats
