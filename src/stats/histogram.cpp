#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gridvc::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), step_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  GRIDVC_REQUIRE(lo < hi, "histogram range inverted");
  GRIDVC_REQUIRE(buckets >= 1, "histogram needs at least one bucket");
}

void Histogram::add(double value) {
  double idx = std::floor((value - lo_) / step_);
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bucket_lo(std::size_t bucket) const {
  GRIDVC_REQUIRE(bucket < counts_.size(), "bucket out of range");
  return lo_ + step_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const { return bucket_lo(bucket) + step_; }

double Histogram::cdf(double value) const {
  if (total_ == 0) return 0.0;
  if (value <= lo_) return 0.0;
  if (value >= hi_) return 1.0;
  std::size_t below = 0;
  const double pos = (value - lo_) / step_;
  const std::size_t full = static_cast<std::size_t>(std::floor(pos));
  for (std::size_t i = 0; i < full && i < counts_.size(); ++i) below += counts_[i];
  double partial = 0.0;
  if (full < counts_.size()) {
    partial = (pos - static_cast<double>(full)) * static_cast<double>(counts_[full]);
  }
  return (static_cast<double>(below) + partial) / static_cast<double>(total_);
}

std::string Histogram::render(int width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(
        std::lround(static_cast<double>(counts_[i]) / static_cast<double>(peak) * width));
    out += "[" + gridvc::format_fixed(bucket_lo(i), 1) + ", " +
           gridvc::format_fixed(bucket_hi(i), 1) + ") " + std::string(bar, '#') + " " +
           std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace gridvc::stats
