// File-size binning for the parallel-TCP-stream analysis (§VII-B).
//
// The paper bins SLAC–BNL transfers by file size — 1 MB bins below 1 GB and
// 100 MB bins from 1 GB to 4 GB — then compares the median throughput of
// 1-stream vs 8-stream transfers per bin (Figs 3–5). SizeBinner implements
// that exact scheme plus a general fixed-width scheme for ablations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/units.hpp"

namespace gridvc::stats {

/// A half-open size interval [lo, hi) with accumulated sample values.
struct SizeBin {
  gridvc::Bytes lo = 0;
  gridvc::Bytes hi = 0;
  std::vector<double> values;

  double center_bytes() const { return 0.5 * (static_cast<double>(lo) + static_cast<double>(hi)); }
};

/// Bins observations keyed by size.
class SizeBinner {
 public:
  /// Paper scheme: 1 MiB bins on [0, 1 GiB), 100 MiB bins on [1 GiB, 4 GiB].
  static SizeBinner paper_scheme();

  /// Fixed-width bins covering [0, limit) with the given width.
  static SizeBinner fixed(gridvc::Bytes width, gridvc::Bytes limit);

  /// Index of the bin containing `size`, or nullopt if out of range.
  std::optional<std::size_t> bin_index(gridvc::Bytes size) const;

  /// Add an observation; sizes outside the covered range are dropped and
  /// counted in dropped().
  void add(gridvc::Bytes size, double value);

  const std::vector<SizeBin>& bins() const { return bins_; }
  std::size_t dropped() const { return dropped_; }

 private:
  SizeBinner() = default;
  // Boundaries of consecutive half-open bins: bins_[i] = [edges_[i], edges_[i+1]).
  std::vector<gridvc::Bytes> edges_;
  std::vector<SizeBin> bins_;
  std::size_t dropped_ = 0;
};

/// One point of a per-bin median series (the plotted quantity of Figs 3/4).
struct BinnedMedianPoint {
  double size_mb = 0.0;      ///< bin center in MiB
  double median = 0.0;       ///< median of the bin's values
  std::size_t count = 0;     ///< observations in the bin (Fig 5)
};

/// Medians of all non-empty bins with at least `min_count` observations.
std::vector<BinnedMedianPoint> binned_medians(const SizeBinner& binner,
                                              std::size_t min_count = 1);

}  // namespace gridvc::stats
