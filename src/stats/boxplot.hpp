// Box-plot extraction (Fig 1: ANL→NERSC throughput by transfer type).
//
// Produces the five box statistics with Tukey 1.5·IQR whiskers plus the
// outliers beyond them, and an ASCII rendering so bench binaries can print
// the figure without a plotting stack.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace gridvc::stats {

/// Tukey box-plot statistics of one group.
struct BoxStats {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_lo = 0.0;  ///< smallest value >= q1 - 1.5*IQR
  double whisker_hi = 0.0;  ///< largest value <= q3 + 1.5*IQR
  std::vector<double> outliers;
};

/// Compute box statistics. Requires non-empty input.
BoxStats box_stats(std::span<const double> values);

/// A labelled group in a multi-box chart.
struct BoxGroup {
  std::string label;
  BoxStats stats;
};

/// Render groups as horizontal ASCII box plots sharing one axis:
///   label |----[==|==]-----| o o
/// with `width` characters between the global min and max.
std::string render_boxplots(std::span<const BoxGroup> groups, int width = 60);

}  // namespace gridvc::stats
