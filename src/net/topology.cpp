#include "net/topology.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gridvc::net {

NodeId Topology::add_node(std::string name, NodeKind kind, std::string domain) {
  GRIDVC_REQUIRE(!name.empty(), "node name must not be empty");
  GRIDVC_REQUIRE(!find_node(name).has_value(), "duplicate node name: " + name);
  nodes_.push_back(Node{std::move(name), kind, std::move(domain)});
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

LinkId Topology::add_link(NodeId from, NodeId to, BitsPerSecond capacity, Seconds delay) {
  GRIDVC_REQUIRE(from < nodes_.size() && to < nodes_.size(), "link endpoint out of range");
  GRIDVC_REQUIRE(from != to, "self-loop links are not allowed");
  GRIDVC_REQUIRE(capacity > 0.0, "link capacity must be positive");
  GRIDVC_REQUIRE(delay >= 0.0, "link delay must be non-negative");
  Link l;
  l.from = from;
  l.to = to;
  l.capacity = capacity;
  l.delay = delay;
  l.name = nodes_[from].name + "->" + nodes_[to].name;
  links_.push_back(std::move(l));
  const LinkId id = static_cast<LinkId>(links_.size() - 1);
  adjacency_[from].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Topology::add_duplex_link(NodeId a, NodeId b,
                                                    BitsPerSecond capacity, Seconds delay) {
  const LinkId fwd = add_link(a, b, capacity, delay);
  const LinkId rev = add_link(b, a, capacity, delay);
  return {fwd, rev};
}

const Node& Topology::node(NodeId id) const {
  GRIDVC_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Link& Topology::link(LinkId id) const {
  GRIDVC_REQUIRE(id < links_.size(), "link id out of range");
  return links_[id];
}

std::optional<NodeId> Topology::find_node(const std::string& name) const {
  const auto it = std::find_if(nodes_.begin(), nodes_.end(),
                               [&](const Node& n) { return n.name == name; });
  if (it == nodes_.end()) return std::nullopt;
  return static_cast<NodeId>(it - nodes_.begin());
}

const std::vector<LinkId>& Topology::outgoing(NodeId from) const {
  GRIDVC_REQUIRE(from < adjacency_.size(), "node id out of range");
  return adjacency_[from];
}

Seconds Topology::path_delay(const Path& path) const {
  Seconds total = 0.0;
  for (LinkId id : path) total += link(id).delay;
  return total;
}

BitsPerSecond Topology::path_capacity(const Path& path) const {
  GRIDVC_REQUIRE(!path.empty(), "path_capacity of empty path");
  BitsPerSecond cap = link(path.front()).capacity;
  for (LinkId id : path) cap = std::min(cap, link(id).capacity);
  return cap;
}

bool Topology::is_valid_path(const Path& path, NodeId src, NodeId dst) const {
  if (path.empty()) return src == dst;
  if (link(path.front()).from != src) return false;
  for (std::size_t i = 1; i < path.size(); ++i) {
    if (link(path[i]).from != link(path[i - 1]).to) return false;
  }
  return link(path.back()).to == dst;
}

}  // namespace gridvc::net
