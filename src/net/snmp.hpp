// SNMP-style link usage collection.
//
// ESnet "configures its routers to collect byte counts (incoming and
// outgoing) on all interfaces on a 30 second basis" (§VII-C). The collector
// samples the Network's cumulative per-link byte counters on that cadence
// and stores per-bin deltas, i.e. exactly the data of Table X. The
// byte-attribution method of eq. (1) lives in src/analysis/ and consumes
// these bins.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace gridvc::net {

/// One monitored interface's time series of 30-second byte counts.
struct SnmpSeries {
  LinkId link = 0;
  Seconds bin_seconds = 30.0;
  Seconds first_bin_start = 0.0;
  /// bins[i] covers [first_bin_start + i*bin, first_bin_start + (i+1)*bin).
  std::vector<double> bins;

  /// Start time of bin `i`.
  Seconds bin_start(std::size_t i) const {
    return first_bin_start + static_cast<double>(i) * bin_seconds;
  }
};

class SnmpCollector {
 public:
  /// Monitor the given links of `network`, sampling every `bin_seconds`
  /// starting at time `start`. Sampling stops when the collector is
  /// destroyed or stop() is called.
  SnmpCollector(Network& network, std::vector<LinkId> links, Seconds bin_seconds = 30.0,
                Seconds start = 0.0);
  ~SnmpCollector();
  SnmpCollector(const SnmpCollector&) = delete;
  SnmpCollector& operator=(const SnmpCollector&) = delete;

  /// Stop sampling (finalizes the current partial bin at the next tick).
  void stop();

  /// Retrieved series for a monitored link. Throws NotFoundError for an
  /// unmonitored link.
  const SnmpSeries& series(LinkId link) const;

  const std::vector<LinkId>& monitored_links() const { return links_; }

 private:
  void sample();

  Network& network_;
  std::vector<LinkId> links_;
  std::vector<SnmpSeries> series_;
  std::vector<double> last_counter_;
  sim::EventHandle tick_;
};

}  // namespace gridvc::net
