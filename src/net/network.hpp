// Flow-level network engine.
//
// The engine simulates elastic data flows over the Topology in a
// discrete-event fashion: whenever the flow set changes (arrival,
// completion, abort, or a cap/guarantee update), it recomputes the
// max-min fair allocation (fair_share.hpp) and diffs it against the old
// one: only flows whose rate actually changed are settled (byte progress
// and per-link byte counters) and have their completion event cancelled
// and rescheduled. A flow whose rate is untouched keeps its already
// scheduled completion — its absolute ETA is invariant while the rate
// holds — so an arrival or completion costs O(affected flows) event
// churn, not O(all flows). Per-link cumulative byte counters feed the
// SNMP collector, which is how Tables X–XIII are regenerated.
//
// This is the standard fluid approximation for WAN-scale transfer studies:
// packet-level effects enter only through the TCP model's demand caps and
// slow-start penalty (see tcp_model.hpp and the transfer engine).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "net/fair_share.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace gridvc::net {

using FlowId = std::uint64_t;

/// How a flow left the network.
enum class FlowOutcome : std::uint8_t {
  kCompleted,  ///< delivered every byte
  kFailed,     ///< killed mid-flight by a link failure (fail_on_link_down)
};

/// Summary of a finished flow, passed to its completion callback.
struct FlowRecord {
  FlowId id = 0;
  Bytes size = 0;
  Bytes delivered = 0;  ///< bytes on the wire before completion or failure
  Seconds start_time = 0.0;
  Seconds end_time = 0.0;
  FlowOutcome outcome = FlowOutcome::kCompleted;
  /// Average achieved rate, size / (end - start).
  BitsPerSecond average_rate() const { return achieved_rate(size, end_time - start_time); }
};

/// Per-flow tuning knobs at start time.
struct FlowOptions {
  BitsPerSecond cap = 0.0;        ///< demand ceiling; <= 0 means unbounded
  BitsPerSecond guarantee = 0.0;  ///< reserved VC rate (0 = best effort)
  /// When true, a link failure on the flow's path aborts the flow and
  /// fires the completion callback with FlowOutcome::kFailed (GridFTP
  /// data channels want the error so they can cut a restart marker).
  /// When false (default) the flow merely stalls at rate 0 until the
  /// link is repaired — the behavior of long-lived cross traffic.
  bool fail_on_link_down = false;
};

class Network {
 public:
  using CompletionFn = std::function<void(const FlowRecord&)>;

  Network(sim::Simulator& sim, Topology topology);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topo_; }
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }

  /// Inject a flow of `size` bytes along `path`. `on_complete` (may be
  /// null) fires when the last byte is delivered. Requires a non-empty
  /// valid path and size > 0.
  FlowId start_flow(Path path, Bytes size, FlowOptions options, CompletionFn on_complete);

  /// Change a flow's demand cap (e.g. the sending server's per-transfer
  /// share changed). <= 0 removes the cap.
  void update_cap(FlowId id, BitsPerSecond cap);

  /// Batched form of update_cap: apply every (flow, cap) pair, then run a
  /// single recompute if anything changed. Server registration changes
  /// shift the share of *every* in-flight transfer at once; pushing those
  /// caps one by one would pay one allocator pass per flow.
  void update_caps(const std::vector<std::pair<FlowId, BitsPerSecond>>& caps);

  /// Change a flow's reserved rate (e.g. its VC was set up or torn down
  /// mid-flow).
  void update_guarantee(FlowId id, BitsPerSecond guarantee);

  /// Remove a flow before completion; no callback fires.
  void abort_flow(FlowId id);

  /// Take a link down or bring it back up. Going down: the link's
  /// capacity drops to zero, flows that opted into fail_on_link_down and
  /// cross it are removed with FlowOutcome::kFailed (callback fires with
  /// the bytes delivered so far), and everything else crossing it stalls.
  /// Coming up: stalled flows are re-allocated. Idempotent per state.
  void set_link_state(LinkId id, bool up);

  /// Current up/down state of a link (links start up).
  bool link_up(LinkId id) const;

  /// Instantaneous allocated rate of an active flow.
  BitsPerSecond current_rate(FlowId id) const;

  /// Bytes still to deliver for an active flow (settled to now()).
  Bytes remaining_bytes(FlowId id);

  /// Bytes already delivered for an active flow (settled to now()).
  Bytes sent_bytes(FlowId id);

  /// Ids of all currently active flows, ascending. Traffic-engineering
  /// components poll this to discover flows worth watching.
  std::vector<FlowId> active_flows() const;

  /// Total size of an active flow.
  Bytes flow_size(FlowId id) const;

  std::size_t active_flow_count() const { return flows_.size(); }

  /// Cumulative bytes carried by a directed link, settled to now().
  /// The SNMP collector samples this.
  double link_bytes(LinkId id);

  /// Bring byte accounting up to the current simulation time.
  void settle();

 private:
  struct ActiveFlow {
    Path path;
    Bytes size = 0;
    double bytes_remaining = 0.0;
    BitsPerSecond cap = 0.0;
    BitsPerSecond guarantee = 0.0;
    BitsPerSecond rate = 0.0;
    Seconds start_time = 0.0;
    Seconds last_update = 0.0;  ///< bytes_remaining is settled to this time
    bool fail_on_link_down = false;
    CompletionFn on_complete;
    sim::EventHandle completion;
  };

  // Advance one flow's byte progress (and its links' counters) to `now`.
  // Flows settle lazily at their own pace: progress is linear while the
  // rate holds, so only rate changes and reads force a settle.
  void settle_flow(ActiveFlow& f, Seconds now);
  void recompute();
  void complete_flow(FlowId id);

  sim::Simulator& sim_;
  Topology topo_;
  // std::map keeps iteration in FlowId order -> deterministic allocation.
  std::map<FlowId, ActiveFlow> flows_;
  std::vector<double> link_bytes_;
  std::vector<double> link_rate_scratch_;  ///< reused per recompute
  // Reused allocator inputs/scratch: recompute() performs zero heap
  // allocations once these reach the steady-state flow count.
  AllocWorkspace alloc_ws_;
  std::vector<FlowDemandRef> demand_scratch_;
  std::vector<FlowId> order_scratch_;
  std::vector<char> link_up_;              ///< per-link up/down state
  std::vector<Seconds> link_down_since_;   ///< valid while the link is down
  FlowId next_id_ = 1;
  obs::MetricId id_recomputes_;
  obs::MetricId id_rate_changes_;
  obs::MetricId id_flows_started_;
  obs::MetricId id_flows_completed_;
  obs::MetricId id_flows_aborted_;
  obs::MetricId id_flows_failed_;
  obs::MetricId id_active_flows_;
  obs::MetricId id_link_utilization_;
  obs::MetricId id_link_failures_;
  obs::MetricId id_link_repairs_;
  obs::MetricId id_link_downtime_;
};

}  // namespace gridvc::net
