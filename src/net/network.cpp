#include "net/network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace gridvc::net {

namespace {
// Completions within this many bytes are treated as done; absorbs fluid
// floating-point residue.
constexpr double kByteEps = 0.5;

// Allocator outputs within this relative tolerance count as "rate
// unchanged": the flow's already-scheduled completion event stands. While
// a rate holds, progress is linear and the absolute ETA is invariant, so
// skipping the reschedule is exact, not an approximation.
constexpr double kRateEps = 1e-9;

bool rate_changed(BitsPerSecond old_rate, BitsPerSecond new_rate) {
  const double scale = std::max({1.0, std::abs(old_rate), std::abs(new_rate)});
  return std::abs(old_rate - new_rate) > kRateEps * scale;
}
}  // namespace

Network::Network(sim::Simulator& sim, Topology topology)
    : sim_(sim),
      topo_(std::move(topology)),
      link_bytes_(topo_.link_count(), 0.0),
      link_rate_scratch_(topo_.link_count(), 0.0),
      link_up_(topo_.link_count(), 1),
      link_down_since_(topo_.link_count(), 0.0) {
  obs::MetricsRegistry& reg = sim_.obs().registry();
  id_recomputes_ = reg.counter("gridvc_net_recomputes",
                               "Fair-share allocator passes");
  id_rate_changes_ = reg.counter("gridvc_net_rate_changes",
                                 "Flows whose allocated rate changed in a recompute");
  id_flows_started_ = reg.counter("gridvc_net_flows_started", "Flows injected");
  id_flows_completed_ = reg.counter("gridvc_net_flows_completed",
                                    "Flows that delivered their last byte");
  id_flows_aborted_ = reg.counter("gridvc_net_flows_aborted",
                                  "Flows removed before completion");
  id_flows_failed_ = reg.counter("gridvc_net_flows_failed",
                                 "Flows killed mid-flight by a link failure");
  id_active_flows_ = reg.gauge("gridvc_net_active_flows", "Flows currently in flight");
  id_link_failures_ = reg.counter("gridvc_net_link_failures", "Links taken down");
  id_link_repairs_ = reg.counter("gridvc_net_link_repairs", "Links brought back up");
  id_link_downtime_ = reg.histogram(
      "gridvc_net_link_downtime_seconds",
      {1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 3600.0},
      "Outage duration per link failure/repair cycle");
  id_link_utilization_ = reg.histogram(
      "gridvc_net_link_utilization",
      {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0},
      "Per-link allocated-rate / capacity, sampled at each recompute over "
      "links carrying traffic");
}

FlowId Network::start_flow(Path path, Bytes size, FlowOptions options,
                           CompletionFn on_complete) {
  GRIDVC_REQUIRE(!path.empty(), "flow path must not be empty");
  GRIDVC_REQUIRE(size > 0, "flow size must be positive");
  for (std::size_t i = 1; i < path.size(); ++i) {
    GRIDVC_REQUIRE(topo_.link(path[i]).from == topo_.link(path[i - 1]).to,
                   "flow path is not a connected chain");
  }

  const FlowId id = next_id_++;
  ActiveFlow f;
  f.path = std::move(path);
  f.size = size;
  f.bytes_remaining = static_cast<double>(size);
  f.cap = options.cap;
  f.guarantee = options.guarantee;
  f.fail_on_link_down = options.fail_on_link_down;
  f.start_time = sim_.now();
  f.last_update = sim_.now();
  f.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(f));
  sim_.obs().registry().add(id_flows_started_);
  sim_.obs().registry().set(id_active_flows_, static_cast<double>(flows_.size()));
  recompute();
  return id;
}

void Network::update_cap(FlowId id, BitsPerSecond cap) {
  const auto it = flows_.find(id);
  GRIDVC_REQUIRE(it != flows_.end(), "update_cap on unknown flow");
  if (it->second.cap == cap) return;
  it->second.cap = cap;
  recompute();
}

void Network::update_caps(const std::vector<std::pair<FlowId, BitsPerSecond>>& caps) {
  bool changed = false;
  for (const auto& [id, cap] : caps) {
    const auto it = flows_.find(id);
    GRIDVC_REQUIRE(it != flows_.end(), "update_caps on unknown flow");
    if (it->second.cap == cap) continue;
    it->second.cap = cap;
    changed = true;
  }
  if (changed) recompute();
}

void Network::update_guarantee(FlowId id, BitsPerSecond guarantee) {
  const auto it = flows_.find(id);
  GRIDVC_REQUIRE(it != flows_.end(), "update_guarantee on unknown flow");
  GRIDVC_REQUIRE(guarantee >= 0.0, "negative guarantee");
  if (it->second.guarantee == guarantee) return;
  it->second.guarantee = guarantee;
  recompute();
}

void Network::abort_flow(FlowId id) {
  const auto it = flows_.find(id);
  GRIDVC_REQUIRE(it != flows_.end(), "abort_flow on unknown flow");
  settle_flow(it->second, sim_.now());
  it->second.completion.cancel();
  flows_.erase(it);
  sim_.obs().registry().add(id_flows_aborted_);
  sim_.obs().registry().set(id_active_flows_, static_cast<double>(flows_.size()));
  recompute();
}

bool Network::link_up(LinkId id) const {
  GRIDVC_REQUIRE(id < link_up_.size(), "link id out of range");
  return link_up_[id] != 0;
}

void Network::set_link_state(LinkId id, bool up) {
  GRIDVC_REQUIRE(id < link_up_.size(), "link id out of range");
  if ((link_up_[id] != 0) == up) return;
  obs::MetricsRegistry& reg = sim_.obs().registry();
  const Seconds now = sim_.now();
  if (!up) {
    link_up_[id] = 0;
    link_down_since_[id] = now;
    reg.add(id_link_failures_);

    // Pull out every opted-in flow crossing the dead link. Settle first so
    // the record carries the bytes delivered before the cut; defer the
    // callbacks until after the survivors' recompute so re-entrant
    // start_flow calls see a consistent allocation.
    std::vector<std::pair<FlowRecord, CompletionFn>> failed;
    for (auto it = flows_.begin(); it != flows_.end();) {
      ActiveFlow& f = it->second;
      const bool crosses =
          std::find(f.path.begin(), f.path.end(), id) != f.path.end();
      if (!f.fail_on_link_down || !crosses) {
        ++it;
        continue;
      }
      settle_flow(f, now);
      f.completion.cancel();
      FlowRecord record;
      record.id = it->first;
      record.size = f.size;
      record.delivered = static_cast<Bytes>(
          std::max(0.0, static_cast<double>(f.size) - f.bytes_remaining));
      record.start_time = f.start_time;
      record.end_time = now;
      record.outcome = FlowOutcome::kFailed;
      failed.emplace_back(std::move(record), std::move(f.on_complete));
      it = flows_.erase(it);
    }
    if (!failed.empty()) {
      reg.add(id_flows_failed_, static_cast<double>(failed.size()));
      reg.set(id_active_flows_, static_cast<double>(flows_.size()));
    }
    sim_.obs().emit({now, obs::TraceEventType::kLinkDown, id,
                     static_cast<std::uint64_t>(failed.size()), 0.0, 0.0});
    recompute();  // survivors re-allocate around the dead link
    for (auto& [record, callback] : failed) {
      if (callback) callback(record);
    }
  } else {
    link_up_[id] = 1;
    const Seconds downtime = now - link_down_since_[id];
    reg.add(id_link_repairs_);
    reg.observe(id_link_downtime_, downtime);
    sim_.obs().emit({now, obs::TraceEventType::kLinkUp, id, 0, downtime, 0.0});
    recompute();  // stalled flows pick their rates back up
  }
}

BitsPerSecond Network::current_rate(FlowId id) const {
  const auto it = flows_.find(id);
  GRIDVC_REQUIRE(it != flows_.end(), "current_rate on unknown flow");
  return it->second.rate;
}

Bytes Network::remaining_bytes(FlowId id) {
  const auto it = flows_.find(id);
  GRIDVC_REQUIRE(it != flows_.end(), "remaining_bytes on unknown flow");
  settle_flow(it->second, sim_.now());
  return static_cast<Bytes>(std::max(0.0, it->second.bytes_remaining));
}

Bytes Network::sent_bytes(FlowId id) {
  const auto it = flows_.find(id);
  GRIDVC_REQUIRE(it != flows_.end(), "sent_bytes on unknown flow");
  settle_flow(it->second, sim_.now());
  const double sent = static_cast<double>(it->second.size) - it->second.bytes_remaining;
  return static_cast<Bytes>(std::max(0.0, sent));
}

std::vector<FlowId> Network::active_flows() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, f] : flows_) ids.push_back(id);
  return ids;
}

Bytes Network::flow_size(FlowId id) const {
  const auto it = flows_.find(id);
  GRIDVC_REQUIRE(it != flows_.end(), "flow_size on unknown flow");
  return it->second.size;
}

double Network::link_bytes(LinkId id) {
  GRIDVC_REQUIRE(id < link_bytes_.size(), "link id out of range");
  settle();
  return link_bytes_[id];
}

void Network::settle_flow(ActiveFlow& f, Seconds now) {
  const Seconds elapsed = now - f.last_update;
  if (elapsed <= 0.0) return;
  f.last_update = now;
  const double sent = std::min(f.bytes_remaining, f.rate * elapsed / 8.0);
  if (sent <= 0.0) return;
  f.bytes_remaining -= sent;
  for (LinkId l : f.path) link_bytes_[l] += sent;
}

void Network::settle() {
  const Seconds now = sim_.now();
  for (auto& [id, f] : flows_) settle_flow(f, now);
}

void Network::recompute() {
  GRIDVC_PROF_ZONE("net.recompute");
  const Seconds now = sim_.now();

  // Borrow each flow's path rather than copying it: the flow records
  // outlive the allocator call, and the reused scratch vectors make the
  // whole pass allocation-free at steady state.
  std::vector<FlowDemandRef>& demands = demand_scratch_;
  std::vector<FlowId>& order = order_scratch_;
  demands.clear();
  order.clear();
  demands.reserve(flows_.size());
  order.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    demands.push_back(FlowDemandRef{&f.path, f.cap, f.guarantee});
    order.push_back(id);
  }
  const std::vector<BitsPerSecond>& rates =
      max_min_allocate(topo_, demands, link_up_, alloc_ws_);

  obs::MetricsRegistry& reg = sim_.obs().registry();
  reg.add(id_recomputes_);
  std::uint64_t changed = 0;

  for (std::size_t i = 0; i < order.size(); ++i) {
    ActiveFlow& f = flows_.at(order[i]);
    const BitsPerSecond new_rate = rates[i];
    const bool this_changed = rate_changed(f.rate, new_rate);
    if (this_changed) ++changed;
    if (!this_changed) {
      // Unchanged rate: the scheduled completion (if any) is still exact.
      // A stalled flow (rate 0) stays stalled with no event either way.
      if (f.completion.pending() || f.rate <= 0.0) continue;
    }
    settle_flow(f, now);  // progress so far happened at the old rate
    f.rate = new_rate;
    f.completion.cancel();
    if (f.bytes_remaining <= kByteEps) {
      // Finished (or within fluid rounding of finished): complete now.
      const FlowId id = order[i];
      f.completion = sim_.schedule_in(0.0, [this, id] { complete_flow(id); });
    } else if (f.rate > 0.0) {
      const Seconds eta = f.bytes_remaining * 8.0 / f.rate;
      const FlowId id = order[i];
      f.completion = sim_.schedule_in(eta, [this, id] { complete_flow(id); });
    }
    // rate == 0: the flow is stalled; it will be rescheduled by the next
    // recompute that gives it bandwidth.
  }

  if (changed > 0) reg.add(id_rate_changes_, changed);

  // Utilization sample: the allocation just computed is exact until the
  // next recompute, so one sample per pass per loaded link captures the
  // full utilization trajectory.
  for (std::size_t i = 0; i < order.size(); ++i) {
    const ActiveFlow& f = flows_.at(order[i]);
    for (LinkId l : f.path) link_rate_scratch_[l] += rates[i];
  }
  double peak_utilization = 0.0;
  for (LinkId l = 0; l < static_cast<LinkId>(link_rate_scratch_.size()); ++l) {
    if (link_rate_scratch_[l] <= 0.0) continue;
    const BitsPerSecond capacity = topo_.link(l).capacity;
    if (capacity > 0.0) {
      const double u = link_rate_scratch_[l] / capacity;
      reg.observe(id_link_utilization_, u);
      peak_utilization = std::max(peak_utilization, u);
    }
    link_rate_scratch_[l] = 0.0;
  }

  sim_.obs().emit({sim_.now(), obs::TraceEventType::kNetRecompute, 0, changed,
                   static_cast<double>(flows_.size()), peak_utilization});
}

void Network::complete_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;  // aborted concurrently
  settle_flow(it->second, sim_.now());
  if (it->second.bytes_remaining > kByteEps) {
    // Fluid rounding left a residue at the scheduled ETA; drain it at the
    // current rate rather than dropping the flow on the floor.
    ActiveFlow& f = it->second;
    if (f.rate > 0.0) {
      const Seconds eta = f.bytes_remaining * 8.0 / f.rate;
      f.completion = sim_.schedule_in(eta, [this, id] { complete_flow(id); });
    }
    return;
  }
  FlowRecord record;
  record.id = id;
  record.size = it->second.size;
  record.delivered = it->second.size;
  record.start_time = it->second.start_time;
  record.end_time = sim_.now();
  CompletionFn callback = std::move(it->second.on_complete);
  flows_.erase(it);
  sim_.obs().registry().add(id_flows_completed_);
  sim_.obs().registry().set(id_active_flows_, static_cast<double>(flows_.size()));
  recompute();
  if (callback) callback(record);
}

}  // namespace gridvc::net
