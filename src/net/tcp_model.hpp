// Analytic TCP throughput model for high bandwidth-delay-product paths.
//
// GridFTP raises throughput with parallel TCP streams; the paper's §VII-B
// finds (Figs 3-5) that 8-stream transfers beat 1-stream transfers for
// small files — a Slow Start effect — while for large files the two are
// equal because packet losses are rare on ESnet. This model captures
// exactly those mechanisms:
//
//   * Slow Start: each stream's cwnd starts at 1 MSS and doubles per RTT
//     until the aggregate window reaches the steady window. n streams start
//     with n MSS in flight, so small transfers finish sooner.
//   * Steady state: aggregate rate = min(n · W_stream · 8 / RTT, available
//     path share), where W_stream is the per-stream TCP buffer.
//   * Rare random loss: with a small per-transfer probability, one loss
//     event halves one stream's window for roughly one recovery period;
//     the throughput haircut is ~1/(2n), so it hurts 1-stream transfers
//     the most. With the loss probability near zero (the R&E network
//     regime), large-file throughput becomes stream-count independent.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace gridvc::net {

struct TcpConfig {
  Bytes mss = 1460;                 ///< maximum segment size
  Bytes stream_buffer = 16 * MiB;   ///< per-stream send/receive buffer
  double loss_probability = 0.0;    ///< P(a transfer experiences >=1 loss event)
  double loss_recovery_rtts = 64.0; ///< recovery window length in RTTs
  /// Multiplicative cwnd growth per RTT during Slow Start. 2.0 is
  /// textbook doubling; real stacks with delayed ACKs grow closer to
  /// ~1.5x per RTT, which lengthens the ramp and widens the small-file
  /// gap between 1- and 8-stream transfers.
  double slow_start_growth = 2.0;
  /// Per-stream slow-start threshold: above it the window grows linearly
  /// (congestion avoidance) instead of exponentially. 0 disables the
  /// congestion-avoidance phase (fresh connection, infinite ssthresh).
  /// On a loss-seasoned high-BDP path a finite ssthresh is what makes
  /// 1-stream transfers lag 8-stream transfers well into the hundreds of
  /// megabytes (Fig 3's slow climb).
  Bytes ssthresh_per_stream = 0;
  /// Aggregate window increment per RTT per stream during congestion
  /// avoidance, in MSS units. Reno is 1; CUBIC-era stacks ramp several
  /// times faster at WAN windows.
  double ca_mss_per_rtt = 1.0;
};

class TcpModel {
 public:
  explicit TcpModel(TcpConfig config = {});

  const TcpConfig& config() const { return config_; }

  /// Aggregate window-limited rate of `streams` parallel connections.
  BitsPerSecond window_cap(int streams, Seconds rtt) const;

  /// Bytes moved during the Slow Start ramp (from n·MSS in flight to the
  /// steady window implied by `steady_rate`), and the time it takes.
  struct SlowStartProfile {
    Bytes bytes = 0;
    Seconds duration = 0.0;
  };
  SlowStartProfile slow_start(int streams, Seconds rtt, BitsPerSecond steady_rate) const;

  /// Full analytic duration of a transfer of `size` bytes when the path
  /// offers a constant `share` bits/s: Slow Start ramp followed by the
  /// steady rate min(share, window_cap). Used by the fast trace
  /// synthesizer.
  Seconds transfer_duration(Bytes size, int streams, Seconds rtt, BitsPerSecond share) const;

  /// Extra latency of the Slow Start ramp relative to a constant-rate
  /// fluid model (always >= 0). The event-driven transfer engine injects
  /// flows into the network after this penalty so its completions match
  /// transfer_duration() when the share is constant.
  Seconds slow_start_penalty(Bytes size, int streams, Seconds rtt, BitsPerSecond share) const;

  /// Multiplicative throughput factor (<= 1) from random loss events,
  /// sampled per transfer. The penalty of one loss event scales like
  /// 1/(2·streams) for the duration of the recovery period.
  double loss_factor(Bytes size, int streams, Seconds rtt, BitsPerSecond rate,
                     Rng& rng) const;

 private:
  TcpConfig config_;
};

}  // namespace gridvc::net
