#include "net/tcp_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridvc::net {

TcpModel::TcpModel(TcpConfig config) : config_(config) {
  GRIDVC_REQUIRE(config_.mss > 0, "MSS must be positive");
  GRIDVC_REQUIRE(config_.stream_buffer >= config_.mss, "stream buffer smaller than MSS");
  GRIDVC_REQUIRE(config_.loss_probability >= 0.0 && config_.loss_probability <= 1.0,
                 "loss probability out of range");
  GRIDVC_REQUIRE(config_.slow_start_growth > 1.0, "slow-start growth must exceed 1");
}

BitsPerSecond TcpModel::window_cap(int streams, Seconds rtt) const {
  GRIDVC_REQUIRE(streams >= 1, "stream count must be >= 1");
  GRIDVC_REQUIRE(rtt > 0.0, "RTT must be positive");
  return static_cast<double>(streams) * static_cast<double>(config_.stream_buffer) * 8.0 / rtt;
}

namespace {

/// Piecewise ramp of the aggregate congestion window: an exponential
/// Slow Start phase up to the (aggregate) ssthresh, then a linear
/// congestion-avoidance climb to the steady window. All quantities are
/// aggregates over the parallel streams; closed forms keep the model O(1)
/// per transfer even for million-transfer trace synthesis.
struct Ramp {
  // Exponential phase: k1 rounds moving bytes1 bytes.
  double k1 = 0.0;
  double bytes1 = 0.0;
  // Linear phase: k2 rounds moving bytes2 bytes.
  double k2 = 0.0;
  double bytes2 = 0.0;
  // Parameters needed to invert the ramp for mid-ramp completions.
  double start_window = 0.0;  ///< aggregate window at round 0
  double ca_window = 0.0;     ///< aggregate window entering the CA phase
  double ca_step = 0.0;       ///< CA window increment per round

  double rounds() const { return k1 + k2; }
  double bytes() const { return bytes1 + bytes2; }
};

Ramp compute_ramp(const TcpConfig& cfg, int streams, double steady_window) {
  Ramp r;
  const double n = static_cast<double>(streams);
  r.start_window = n * static_cast<double>(cfg.mss);
  if (r.start_window >= steady_window) return r;  // ramp is instantaneous

  const double aggregate_ssthresh =
      cfg.ssthresh_per_stream > 0
          ? std::min(n * static_cast<double>(cfg.ssthresh_per_stream), steady_window)
          : steady_window;

  const double g = cfg.slow_start_growth;
  if (r.start_window < aggregate_ssthresh) {
    r.k1 = std::ceil(std::log(aggregate_ssthresh / r.start_window) / std::log(g));
    // Geometric series: start * (g^k1 - 1) / (g - 1).
    r.bytes1 = r.start_window * (std::pow(g, r.k1) - 1.0) / (g - 1.0);
    r.ca_window = aggregate_ssthresh;
  } else {
    r.ca_window = r.start_window;
  }

  if (r.ca_window < steady_window) {
    r.ca_step = cfg.ca_mss_per_rtt * n * static_cast<double>(cfg.mss);
    r.k2 = std::ceil((steady_window - r.ca_window) / r.ca_step);
    // Arithmetic series: k2 rounds starting at ca_window stepping ca_step.
    r.bytes2 = r.k2 * r.ca_window + r.ca_step * r.k2 * (r.k2 - 1.0) / 2.0;
  }
  return r;
}

/// Rounds needed to move `size` bytes when the transfer completes inside
/// the ramp.
double rounds_within_ramp(const TcpConfig& cfg, const Ramp& r, double size) {
  if (size <= r.bytes1) {
    // Invert the geometric series.
    const double g = cfg.slow_start_growth;
    return std::ceil(std::log(1.0 + size * (g - 1.0) / r.start_window) / std::log(g));
  }
  // Invert the arithmetic series for the CA remainder:
  //   (d/2) j^2 + (W0 - d/2) j - S >= 0.
  const double remainder = size - r.bytes1;
  const double d = r.ca_step;
  const double b = r.ca_window - d / 2.0;
  const double j = (-b + std::sqrt(b * b + 2.0 * d * remainder)) / d;
  return r.k1 + std::ceil(j);
}

}  // namespace

TcpModel::SlowStartProfile TcpModel::slow_start(int streams, Seconds rtt,
                                                BitsPerSecond steady_rate) const {
  GRIDVC_REQUIRE(steady_rate > 0.0, "steady rate must be positive");
  // Steady aggregate window in bytes: rate * RTT / 8.
  const double steady_window = steady_rate * rtt / 8.0;
  const Ramp r = compute_ramp(config_, streams, steady_window);
  SlowStartProfile p;
  p.bytes = static_cast<Bytes>(r.bytes());
  p.duration = r.rounds() * rtt;
  return p;
}

Seconds TcpModel::transfer_duration(Bytes size, int streams, Seconds rtt,
                                    BitsPerSecond share) const {
  GRIDVC_REQUIRE(share > 0.0, "path share must be positive");
  const BitsPerSecond steady = std::min(share, window_cap(streams, rtt));
  const double steady_window = steady * rtt / 8.0;
  const Ramp r = compute_ramp(config_, streams, steady_window);
  const double bytes = static_cast<double>(size);
  if (bytes <= r.bytes()) {
    return rounds_within_ramp(config_, r, bytes) * rtt;
  }
  return r.rounds() * rtt + transfer_time(size - static_cast<Bytes>(r.bytes()), steady);
}

Seconds TcpModel::slow_start_penalty(Bytes size, int streams, Seconds rtt,
                                     BitsPerSecond share) const {
  const Seconds actual = transfer_duration(size, streams, rtt, share);
  const BitsPerSecond steady = std::min(share, window_cap(streams, rtt));
  const Seconds fluid = transfer_time(size, steady);
  return std::max(0.0, actual - fluid);
}

double TcpModel::loss_factor(Bytes size, int streams, Seconds rtt, BitsPerSecond rate,
                             Rng& rng) const {
  if (config_.loss_probability <= 0.0) return 1.0;
  if (!rng.bernoulli(config_.loss_probability)) return 1.0;
  // One loss event: the afflicted stream runs at half rate for the
  // recovery period (loss_recovery_rtts RTTs of linear regrowth), so the
  // aggregate loses recovery * rate / (4 * streams) bit-seconds.
  const Seconds duration = std::max(transfer_time(size, rate), rtt);
  const Seconds recovery = std::min(config_.loss_recovery_rtts * rtt, duration);
  const double deficit_fraction =
      (recovery / duration) / (4.0 * static_cast<double>(streams));
  return std::clamp(1.0 - deficit_fraction, 0.05, 1.0);
}

}  // namespace gridvc::net
