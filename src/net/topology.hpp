// WAN topology model.
//
// Nodes are sites (DTN hosts) and routers; links are *directed* with a
// capacity and propagation delay. A duplex physical link is two directed
// links, which is exactly how ESnet's SNMP data is organized (per-interface
// ingress/egress byte counts) — Tables X–XIII read egress interfaces on the
// transfer path, so the directed representation is load-bearing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace gridvc::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// What a node represents; routers carry SNMP-instrumented interfaces,
/// hosts originate/terminate flows.
enum class NodeKind : std::uint8_t { kHost, kRouter };

struct Node {
  std::string name;
  NodeKind kind = NodeKind::kRouter;
  /// Administrative domain (e.g. "esnet", "ncar"); the inter-domain VC
  /// controller partitions path computation by this tag.
  std::string domain;
};

struct Link {
  NodeId from = 0;
  NodeId to = 0;
  BitsPerSecond capacity = 0.0;
  Seconds delay = 0.0;  ///< one-way propagation delay
  std::string name;     ///< e.g. "rt1->rt2"
};

/// A loop-free directed path as an ordered list of link ids.
using Path = std::vector<LinkId>;

/// Immutable-after-build topology with name lookup.
class Topology {
 public:
  /// Add a node; names must be unique. Returns its id.
  NodeId add_node(std::string name, NodeKind kind, std::string domain = "");

  /// Add one directed link. Requires distinct existing endpoints and
  /// positive capacity. Returns its id.
  LinkId add_link(NodeId from, NodeId to, BitsPerSecond capacity, Seconds delay);

  /// Add both directions with identical parameters; returns {forward, reverse}.
  std::pair<LinkId, LinkId> add_duplex_link(NodeId a, NodeId b, BitsPerSecond capacity,
                                            Seconds delay);

  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  /// Find a node id by name.
  std::optional<NodeId> find_node(const std::string& name) const;

  /// Directed links leaving `from`.
  const std::vector<LinkId>& outgoing(NodeId from) const;

  /// Total one-way propagation delay along a path.
  Seconds path_delay(const Path& path) const;

  /// Smallest link capacity along a path (the bottleneck rate).
  BitsPerSecond path_capacity(const Path& path) const;

  /// Validate that `path` is a connected chain starting at `src` and ending
  /// at `dst`.
  bool is_valid_path(const Path& path, NodeId src, NodeId dst) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace gridvc::net
